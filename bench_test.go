package apcache

// This file is the benchmark entry point for the paper reproduction: one
// Benchmark per table/figure of the SIGMOD 2001 evaluation (each iteration
// executes the registered experiment in quick mode and reports its headline
// metric), plus micro-benchmarks of the core data structures.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Full-fidelity experiment output (paper-scale durations) comes from:
//
//	go run ./cmd/apcache-sim -all

import (
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"

	"apcache/internal/bench"
	"apcache/internal/cache"
	"apcache/internal/core"
	"apcache/internal/interval"
	"apcache/internal/netproto"
	"apcache/internal/query"
	"apcache/internal/wal"
	"apcache/internal/workload"
)

// runExperiment executes a registered experiment once per iteration.
func runExperiment(b *testing.B, id string) {
	e, ok := bench.Get(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := e.Run(bench.Options{Quick: true, Seed: 42})
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if len(rep.Tables) == 0 && len(rep.Charts) == 0 {
			b.Fatalf("%s: empty report", id)
		}
	}
}

// One benchmark per paper artifact (see DESIGN.md section 4).

func BenchmarkFig2(b *testing.B)             { runExperiment(b, "fig2") }
func BenchmarkFig3(b *testing.B)             { runExperiment(b, "fig3") }
func BenchmarkConvergence(b *testing.B)      { runExperiment(b, "conv") }
func BenchmarkFig45(b *testing.B)            { runExperiment(b, "fig45") }
func BenchmarkFig6(b *testing.B)             { runExperiment(b, "fig6") }
func BenchmarkFig789(b *testing.B)           { runExperiment(b, "fig789") }
func BenchmarkSigmaSensitivity(b *testing.B) { runExperiment(b, "sigma") }
func BenchmarkMaxQueries(b *testing.B)       { runExperiment(b, "maxq") }
func BenchmarkFig1011(b *testing.B)          { runExperiment(b, "fig1011") }
func BenchmarkFig1213(b *testing.B)          { runExperiment(b, "fig1213") }
func BenchmarkFig1415(b *testing.B)          { runExperiment(b, "fig1415") }
func BenchmarkVariants(b *testing.B)         { runExperiment(b, "variants") }
func BenchmarkAblation(b *testing.B)         { runExperiment(b, "ablation") }

// --- micro-benchmarks ---

func BenchmarkControllerRefresh(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	c := core.NewController(core.Params{Cvr: 1, Cqr: 2, Alpha: 1, Lambda1: math.Inf(1)}, 4, rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			c.OnRefresh(core.ValueInitiated)
		} else {
			c.OnRefresh(core.QueryInitiated)
		}
	}
}

func BenchmarkIntervalSum(b *testing.B) {
	ivs := make([]interval.Interval, 10)
	for i := range ivs {
		ivs[i] = interval.Centered(float64(i), 2)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = interval.SumAll(ivs)
	}
}

func BenchmarkCachePutGet(b *testing.B) {
	c := cache.New(64)
	iv := interval.Centered(0, 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		key := i % 128 // half the keys fight for space
		c.Put(key, iv, float64(i%97))
		c.Get(key)
	}
}

func BenchmarkQuerySum(b *testing.B) {
	cached := map[int]interval.Interval{}
	exact := map[int]float64{}
	for k := 0; k < 10; k++ {
		exact[k] = float64(k)
		cached[k] = interval.Centered(float64(k), 4)
	}
	q := workload.Query{Kind: workload.Sum, Keys: []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, Delta: 25}
	get := func(key int) (interval.Interval, bool) { iv, ok := cached[key]; return iv, ok }
	fetch := func(key int) float64 { return exact[key] }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = query.Execute(q, get, fetch)
	}
}

func BenchmarkQueryMaxExact(b *testing.B) {
	cached := map[int]interval.Interval{}
	exact := map[int]float64{}
	for k := 0; k < 10; k++ {
		exact[k] = float64(k * 10)
		cached[k] = interval.Centered(float64(k*10), 4)
	}
	q := workload.Query{Kind: workload.Max, Keys: []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, Delta: 0}
	get := func(key int) (interval.Interval, bool) { iv, ok := cached[key]; return iv, ok }
	fetch := func(key int) float64 { return exact[key] }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = query.Execute(q, get, fetch)
	}
}

func BenchmarkProtoEncodeDecode(b *testing.B) {
	msg := &netproto.Refresh{ID: 1, Key: 7, Kind: netproto.KindValueInitiated,
		Value: 1.5, Lo: 1, Hi: 2, OriginalWidth: 1}
	b.ReportAllocs()
	var buf sliceBuf
	for i := 0; i < b.N; i++ {
		buf.b = buf.b[:0]
		if err := netproto.Write(&buf, msg); err != nil {
			b.Fatal(err)
		}
		if _, err := netproto.ReadMsg(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// sliceBuf is a minimal read/write buffer avoiding bytes.Buffer reset costs.
type sliceBuf struct {
	b []byte
	r int
}

func (s *sliceBuf) Write(p []byte) (int, error) {
	if len(s.b) == 0 {
		s.r = 0
	}
	s.b = append(s.b, p...)
	return len(p), nil
}

func (s *sliceBuf) Read(p []byte) (int, error) {
	n := copy(p, s.b[s.r:])
	s.r += n
	return n, nil
}

// BenchmarkStoreParallel measures the mixed hot path (70% Set, 25% Get, 5%
// ReadExact over 1024 keys) under b.RunParallel at 1, 4, and 8 shards. The
// 1-shard configuration is the old global-lock architecture; the scaling
// ratio 8-shard/1-shard is the headline recorded in BENCH_store.json.
func BenchmarkStoreParallel(b *testing.B) {
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s, err := NewStore(Options{InitialWidth: 10, Shards: shards})
			if err != nil {
				b.Fatal(err)
			}
			const keys = 1024
			for k := 0; k < keys; k++ {
				s.Track(k, 0)
			}
			var seed atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(seed.Add(1)))
				for pb.Next() {
					k := rng.Intn(keys)
					switch r := rng.Intn(20); {
					case r < 14:
						s.Set(k, rng.Float64()*1000)
					case r < 19:
						s.Get(k)
					default:
						if _, err := s.ReadExact(k); err != nil {
							b.Error(err)
							return
						}
					}
				}
			})
		})
	}
}

func BenchmarkStoreSet(b *testing.B) {
	s, err := NewStore(Options{InitialWidth: 10})
	if err != nil {
		b.Fatal(err)
	}
	for k := 0; k < 16; k++ {
		s.Track(k, 0)
	}
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Set(i%16, rng.Float64()*100)
	}
}

func BenchmarkStoreMix(b *testing.B) { runExperiment(b, "storemix") }

// benchmarkStoreOpMix measures one of internal/bench's store op mixes at 1,
// 4, and 8 shards, on both read paths: "lockedread" is the pre-seqlock
// baseline (every Get takes the shard mutex), "seqlock" the contention-free
// path. The 8-shard seqlock/lockedread ratio is the headline recorded in
// BENCH_store.json.
func benchmarkStoreOpMix(b *testing.B, mix bench.OpMix) {
	for _, shards := range []int{1, 4, 8} {
		for _, mode := range []struct {
			name   string
			locked bool
		}{{"lockedread", true}, {"seqlock", false}} {
			b.Run(fmt.Sprintf("shards=%d/%s", shards, mode.name), func(b *testing.B) {
				s, err := NewStore(Options{InitialWidth: 10, Shards: shards, LockedReads: mode.locked})
				if err != nil {
					b.Fatal(err)
				}
				const keys = 1024
				for k := 0; k < keys; k++ {
					s.Track(k, 0)
				}
				// Pre-draw the key schedule so the timed loop measures the
				// store, not the random number generator; goroutines walk it
				// from staggered offsets. Ops follow the mix deterministically
				// over each window of 100 (exact percentages).
				const schedule = 8192
				rng := rand.New(rand.NewSource(17))
				var zipf *workload.ZipfKeys
				if mix.ZipfS > 0 {
					zipf = workload.NewZipfKeys(keys, mix.ZipfS)
				}
				sched := make([]int, schedule)
				for i := range sched {
					if zipf != nil {
						sched[i] = zipf.Sample(rng)
					} else {
						sched[i] = rng.Intn(keys)
					}
				}
				// Servers run far more client goroutines than cores; give the
				// lock paths a realistic waiter population.
				b.SetParallelism(4)
				var seed atomic.Int64
				b.ReportAllocs()
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					// Stagger both the key walk and the op phase so the
					// goroutines' Set windows do not align.
					off := int(seed.Add(1)) * 911
					j := off
					for pb.Next() {
						k := sched[(off+j)%schedule]
						switch r := j % 100; {
						case r < mix.SetPct:
							s.Set(k, float64(j%1000))
						case r < mix.SetPct+mix.GetPct:
							s.Get(k)
						default:
							if _, err := s.ReadExact(k); err != nil {
								b.Error(err)
								return
							}
						}
						j++
					}
				})
			})
		}
	}
}

// BenchmarkStoreReadHeavy is the 90% Get / 10% Set regime the paper's cache
// optimizes for: most reads answered from the cached interval.
func BenchmarkStoreReadHeavy(b *testing.B) { benchmarkStoreOpMix(b, bench.ReadHeavy) }

// BenchmarkStoreReadSkewed adds zipf-skewed key popularity, stacking shard
// hot-spotting on top of the read-heavy mix.
func BenchmarkStoreReadSkewed(b *testing.B) { benchmarkStoreOpMix(b, bench.ZipfReadHeavy) }

// BenchmarkWALAppend measures what write-ahead durability costs the Set hot
// path: "nowal" is the plain in-memory store; the fsync variants journal
// every update through the per-shard WAL under the named policy. The
// interval-vs-nowal delta is the acceptance headline recorded in
// BENCH_store.json — group commit must keep it under 2µs/op — while
// fsync=always pays a real fsync per operation and exists to price that
// guarantee honestly.
func BenchmarkWALAppend(b *testing.B) {
	const keys = 256
	for _, mode := range []string{"nowal", "none", "interval", "always"} {
		b.Run("fsync="+mode, func(b *testing.B) {
			var (
				s   *Store
				err error
			)
			if mode == "nowal" {
				s, err = NewStore(Options{InitialWidth: 10})
			} else {
				var pol FsyncPolicy
				if pol, err = wal.ParsePolicy(mode); err != nil {
					b.Fatal(err)
				}
				s, err = OpenDurable(b.TempDir(), Options{
					InitialWidth: 10,
					Durability:   &DurabilityOptions{Fsync: pol},
				})
			}
			if err != nil {
				b.Fatal(err)
			}
			for k := 0; k < keys; k++ {
				s.Track(k, 0)
			}
			rng := rand.New(rand.NewSource(1))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Set(i%keys, rng.Float64()*1000)
			}
			b.StopTimer()
			if err := s.Close(); err != nil {
				b.Fatalf("durability broke during the benchmark: %v", err)
			}
		})
	}
}
