package apcache_test

import (
	"context"
	"errors"
	"fmt"
	"time"

	"apcache"
)

// ExampleStore_Watch shows the in-process Watch stream: the handle opens
// with the key's current approximation and then delivers every refresh the
// store installs, with per-key latest-wins coalescing if the consumer lags.
func ExampleStore_Watch() {
	s, err := apcache.NewStore(apcache.Options{InitialWidth: 10})
	if err != nil {
		panic(err)
	}
	s.Track(1, 100)

	w, err := s.Watch(1)
	if err != nil {
		panic(err)
	}
	defer w.Close()

	seed := <-w.Updates() // the current approximation
	fmt.Println("seed contains 100:", seed.Interval.Valid(100))

	s.Set(1, 1000) // escapes the width-10 interval: a refresh streams out
	for u := range w.Updates() {
		if u.Interval.Valid(1000) {
			fmt.Println("refresh contains 1000:", true)
			break
		}
	}
	// Output:
	// seed contains 100: true
	// refresh contains 1000: true
}

// ExampleClient_QueryCtx shows a context-bounded bounded-aggregate query
// over the wire and the typed error taxonomy surviving the TCP boundary.
func ExampleClient_QueryCtx() {
	srv, addr, err := apcache.Serve("127.0.0.1:0", apcache.ServerConfig{
		Params:       apcache.DefaultParams(1, 2, 0),
		InitialWidth: 10,
		Seed:         1,
	})
	if err != nil {
		panic(err)
	}
	defer srv.Close()
	for k := 0; k < 4; k++ {
		srv.SetInitial(k, float64(k*10))
	}

	c, err := apcache.Dial(addr.String(), 4)
	if err != nil {
		panic(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	ans, err := c.QueryCtx(ctx, apcache.Query{
		Kind: apcache.Sum, Keys: []int{0, 1, 2, 3}, Delta: 0,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("exact sum:", ans.Result.Lo)

	// A miss on the remote server matches the same sentinel as in-process.
	_, err = c.ReadExactCtx(ctx, 99)
	fmt.Println("typed miss across the wire:", errors.Is(err, apcache.ErrUnknownKey))
	// Output:
	// exact sum: 60
	// typed miss across the wire: true
}

// ExampleReconnectPolicy shows the fault-tolerant session layer: a client
// with reconnection enabled rides out a server restart. Calls that hit the
// outage window fail with the typed apcache.ErrConnLost — the signal to
// retry — and once the replacement server is up the redial loop replays the
// subscription, so the retried read succeeds without any re-Subscribe.
func ExampleReconnectPolicy() {
	srv, addr, err := apcache.Serve("127.0.0.1:0", apcache.ServerConfig{
		Params:       apcache.DefaultParams(1, 2, 0),
		InitialWidth: 10,
		Seed:         1,
	})
	if err != nil {
		panic(err)
	}
	srv.SetInitial(0, 42)

	c, err := apcache.DialConfig(addr.String(), apcache.ClientConfig{
		CacheSize: 4,
		Reconnect: apcache.ReconnectPolicy{
			Enabled:   true,
			BaseDelay: 5 * time.Millisecond, // exponential backoff with full jitter
			MaxDelay:  100 * time.Millisecond,
		},
	})
	if err != nil {
		panic(err)
	}
	defer c.Close()
	if err := c.Subscribe(0); err != nil {
		panic(err)
	}

	// Restart the server on the same port. The client notices the loss and
	// starts redialing in the background.
	srv.Close()
	srv2, err := restartOn(addr.String())
	if err != nil {
		panic(err)
	}
	defer srv2.Close()
	srv2.SetInitial(0, 43)

	// Retry loop: ErrConnLost is the transient, typed "try again" error.
	for {
		v, err := c.ReadExact(0)
		if errors.Is(err, apcache.ErrConnLost) {
			time.Sleep(5 * time.Millisecond)
			continue
		}
		if err != nil {
			panic(err)
		}
		fmt.Println("read after restart:", v)
		break
	}
	fmt.Println("reconnects:", c.Stats().Reconnects)
	// Output:
	// read after restart: 43
	// reconnects: 1
}

// restartOn rebinds a fresh server on a just-released address, retrying
// briefly while the kernel frees the port.
func restartOn(addr string) (srv *apcache.Server, err error) {
	for attempt := 0; attempt < 200; attempt++ {
		srv, _, err = apcache.Serve(addr, apcache.ServerConfig{
			Params:       apcache.DefaultParams(1, 2, 0),
			InitialWidth: 10,
			Seed:         2,
		})
		if err == nil {
			return srv, nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return nil, err
}
