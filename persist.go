package apcache

import (
	"encoding/gob"
	"fmt"
	"io"

	"apcache/internal/core"
)

// snapshot is the serialized form of a Store: values, per-key controller
// widths, and cached approximations. Controllers are reconstructed from
// their widths — the width is the only adaptive state the algorithm keeps.
type snapshot struct {
	Version int
	Params  Params
	Keys    []keySnapshot
	VIR     int
	QIR     int
	Cost    float64
}

type keySnapshot struct {
	Key    int
	Value  float64
	Width  float64 // controller's original width
	Cached bool
	Lo, Hi float64
	OrigW  float64 // cache entry's eviction rank
}

const snapshotVersion = 1

// Save serializes the store's state — exact values, adaptive widths, and
// cached intervals — so a restarted process can resume with the learned
// precision settings instead of re-adapting from scratch.
func (s *Store) Save(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := snapshot{
		Version: snapshotVersion,
		Params:  s.prm,
		VIR:     s.vir,
		QIR:     s.qir,
		Cost:    s.cost,
	}
	for _, e := range s.cache.Entries() {
		v, ok := s.src.Value(e.Key)
		if !ok {
			continue
		}
		ks := keySnapshot{Key: e.Key, Value: v, Cached: true,
			Lo: e.Interval.Lo, Hi: e.Interval.Hi, OrigW: e.OriginalWidth}
		if p, ok := s.src.PolicyFor(storeCacheID, e.Key); ok {
			ks.Width = p.Width()
		}
		snap.Keys = append(snap.Keys, ks)
	}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("apcache: save: %w", err)
	}
	return nil
}

// Load restores a snapshot written by Save into a fresh store built with the
// snapshot's parameters. The seed drives the restored controllers'
// probabilistic adjustments.
func Load(r io.Reader, seed int64) (*Store, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("apcache: load: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("apcache: snapshot version %d unsupported", snap.Version)
	}
	s, err := NewStore(Options{Params: snap.Params, InitialWidth: 1, Seed: seed})
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.vir, s.qir, s.cost = snap.VIR, snap.QIR, snap.Cost
	for _, ks := range snap.Keys {
		s.src.SetInitial(ks.Key, ks.Value)
		s.src.Subscribe(storeCacheID, ks.Key)
		if p, ok := s.src.PolicyFor(storeCacheID, ks.Key); ok {
			if c, ok := p.(*core.Controller); ok {
				c.SetWidth(ks.Width)
			}
		}
		if ks.Cached {
			s.cache.Put(ks.Key, Interval{Lo: ks.Lo, Hi: ks.Hi}, ks.OrigW)
		}
	}
	return s, nil
}

// decodeSnap and encodeSnap expose raw snapshot coding for version tests.
func decodeSnap(r io.Reader, snap *snapshot) error { return gob.NewDecoder(r).Decode(snap) }

func encodeSnap(w io.Writer, snap snapshot) error { return gob.NewEncoder(w).Encode(snap) }
