package apcache

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"

	"apcache/internal/aperrs"
	"apcache/internal/core"
)

// snapshot is the serialized form of a Store: values, per-key controller
// widths, and cached approximations. Controllers are reconstructed from
// their widths — the width is the only adaptive state the algorithm keeps.
// The shard layout is deliberately not serialized: keys re-hash onto
// whatever shard count the restoring store is built with.
type snapshot struct {
	Version int
	Params  Params
	Keys    []keySnapshot
	VIR     int
	QIR     int
	Cost    float64
	// LSN is the highest WAL sequence number folded into this snapshot
	// (version 2+; zero for non-durable stores and v1 snapshots). Recovery
	// replays only log records above it, which is what makes the crash
	// window between "snapshot renamed" and "log truncated" safe.
	LSN uint64
}

type keySnapshot struct {
	Key    int
	Value  float64
	Width  float64 // controller's original width
	Cached bool
	Lo, Hi float64
	OrigW  float64 // cache entry's eviction rank
}

// snapshotVersion is the current format: version 2 added the LSN field.
// Version 1 snapshots (no LSN) still load — gob leaves the field zero.
const snapshotVersion = 2

// Save serializes the store's state — exact values, adaptive widths, and
// cached intervals — so a restarted process can resume with the learned
// precision settings instead of re-adapting from scratch. All shards are
// locked (in ascending order) for the duration, so the snapshot is globally
// consistent.
//
// The walk is driven by the source's key set, not the cache's: per the
// paper the source keeps subscriptions (and their learned widths) for keys
// the cache has silently evicted, and a snapshot that walked only cached
// entries would discard exactly that state — the restored store would fail
// reads of evicted keys and re-adapt their precision from scratch. Keys are
// emitted in ascending order, so identical state yields identical bytes.
func (s *Store) Save(w io.Writer) error {
	// Hold the compaction lock for the duration: on a durable store a
	// concurrent compaction would otherwise truncate the WAL against a
	// different snapshot while this one is being encoded.
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	return s.saveNoCompactLock(w)
}

// saveNoCompactLock captures and encodes the snapshot; the caller holds the
// compaction lock (Save, SaveFile, and the compactor all route through it).
func (s *Store) saveNoCompactLock(w io.Writer) error {
	s.lockAll()
	snap, err := s.captureLocked()
	s.unlockAll()
	if err != nil {
		return err
	}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("apcache: save: %w", err)
	}
	return nil
}

// captureLocked builds the snapshot of the store's current state. The caller
// holds every shard lock (and, on a durable store, the compaction lock).
func (s *Store) captureLocked() (snapshot, error) {
	st := s.Stats()
	snap := snapshot{
		Version: snapshotVersion,
		Params:  s.prm,
		VIR:     st.ValueRefreshes,
		QIR:     st.QueryRefreshes,
		Cost:    st.Cost,
	}
	if s.wal != nil {
		// Every shard lock is held, so no Stage is in flight: LastLSN is
		// exactly the last record this snapshot folds in.
		snap.LSN = s.wal.log.LastLSN()
	}
	for i, sh := range s.shards {
		cached := 0
		sh.src.ForEach(func(key int, v float64) {
			ks := keySnapshot{Key: key, Value: v}
			if p, ok := sh.src.PolicyFor(storeCacheID, key); ok {
				ks.Width = p.Width()
			}
			if e, ok := sh.cache.Entry(key); ok {
				cached++
				ks.Cached = true
				ks.Lo, ks.Hi, ks.OrigW = e.Interval.Lo, e.Interval.Hi, e.OriginalWidth
			}
			snap.Keys = append(snap.Keys, ks)
		})
		// Every cached entry's key must be known to the source (the cache
		// only ever installs refreshes the source produced). A mismatch
		// means corrupted state; snapshotting it silently would launder
		// the corruption into the next process.
		if n := sh.cache.Len(); cached != n {
			return snapshot{}, fmt.Errorf("apcache: save: shard %d has %d cached entries but only %d known to the source", i, n, cached)
		}
	}
	sort.Slice(snap.Keys, func(a, b int) bool { return snap.Keys[a].Key < snap.Keys[b].Key })
	return snap, nil
}

// validateSnapshot rejects snapshots whose numeric state would corrupt a
// store: NaN or negative widths (SetWidth would install them verbatim) and
// inverted or NaN intervals. Validation runs to completion before any store
// state is built, so a corrupt snapshot can never yield a partially
// restored store.
func validateSnapshot(snap *snapshot) error {
	for _, ks := range snap.Keys {
		if math.IsNaN(ks.Width) || math.IsInf(ks.Width, 0) || ks.Width < 0 {
			return fmt.Errorf("apcache: load: key %d has invalid width %g", ks.Key, ks.Width)
		}
		if !ks.Cached {
			continue
		}
		if math.IsNaN(ks.Lo) || math.IsNaN(ks.Hi) || ks.Lo > ks.Hi {
			return fmt.Errorf("apcache: load: key %d has invalid interval [%g, %g]", ks.Key, ks.Lo, ks.Hi)
		}
		if math.IsNaN(ks.OrigW) || math.IsInf(ks.OrigW, 0) || ks.OrigW < 0 {
			return fmt.Errorf("apcache: load: key %d has invalid original width %g", ks.Key, ks.OrigW)
		}
	}
	return nil
}

// SaveFile writes the store's snapshot to path crash-safely. The snapshot
// goes to a temporary file in path's directory first, is fsynced, and is
// then atomically renamed over path — so a crash at any instant leaves
// either the complete previous snapshot or the complete new one on disk,
// never a truncated hybrid. (An abandoned *.tmp* sibling may survive a
// crash; it is inert — LoadFile never reads it — and the next successful
// SaveFile of the same path does not depend on it.) The directory is synced
// after the rename, on a best-effort basis, so the new name itself is
// durable.
func (s *Store) SaveFile(path string) error {
	// Coordinate with WAL compaction: a compaction running concurrently
	// with an explicit SaveFile would capture and truncate against a
	// different snapshot mid-write. The lock serializes them; on a
	// non-durable store it is uncontended.
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("apcache: save: %w", err)
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := s.saveNoCompactLock(f); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(fmt.Errorf("apcache: save: sync: %w", err))
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("apcache: save: close: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("apcache: save: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync() // best-effort: make the rename itself durable
		d.Close()
	}
	return nil
}

// LoadFile restores a snapshot written by SaveFile (or any file Save
// produced). The seed drives the restored controllers' probabilistic
// adjustments, as in Load.
func LoadFile(path string, seed int64) (*Store, error) {
	return LoadFileOptions(path, Options{Seed: seed})
}

// LoadFileOptions is LoadFile with full control over the restored store's
// options, mirroring LoadOptions.
func LoadFileOptions(path string, opts Options) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("apcache: load: %w", err)
	}
	defer f.Close()
	return LoadOptions(f, opts)
}

// Load restores a snapshot written by Save into a fresh store built with the
// snapshot's parameters and default options. The seed drives the restored
// controllers' probabilistic adjustments. Use LoadOptions to also control
// the shard count (and any other store option).
func Load(r io.Reader, seed int64) (*Store, error) {
	return LoadOptions(r, Options{Seed: seed})
}

// LoadOptions restores a snapshot written by Save into a fresh store built
// with the given options. The snapshot's algorithm parameters always win
// over opts.Params (they are part of the saved state); everything else —
// notably Shards and Seed — comes from opts, so a store saved by a
// deterministic single-shard run can be restored with the same layout
// instead of a GOMAXPROCS-dependent default.
func LoadOptions(r io.Reader, opts Options) (*Store, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("apcache: load: %w", err)
	}
	if err := checkSnapshot(&snap); err != nil {
		return nil, err
	}
	return restoreSnapshot(&snap, opts)
}

// checkSnapshot gates a decoded snapshot: a version newer than this binary
// fails with the typed ErrSnapshotVersion (the file is fine, the reader is
// old), anything else out of range or semantically invalid fails as
// corruption. Gob tolerates missing fields, so every version up to the
// current one decodes; validation runs before any store state is built.
func checkSnapshot(snap *snapshot) error {
	if snap.Version > snapshotVersion {
		return aperrs.SnapshotVersion(snap.Version, snapshotVersion)
	}
	if snap.Version < 1 {
		return fmt.Errorf("apcache: snapshot version %d invalid", snap.Version)
	}
	return validateSnapshot(snap)
}

// restoreSnapshot builds a fresh store from a validated snapshot. The
// snapshot's Params always win over opts.Params; replayed values that
// escaped their cached interval must have Cached cleared by the caller
// before this runs (the WAL overlay does), since the interval would
// otherwise violate containment.
func restoreSnapshot(snap *snapshot, opts Options) (*Store, error) {
	opts.Params = snap.Params
	s, err := NewStore(opts)
	if err != nil {
		return nil, err
	}
	// The restored totals land on stripe 0; Stats aggregates across
	// stripes, so the split is invisible to callers.
	s.counters.Store(0, cVIR, int64(snap.VIR))
	s.counters.Store(0, cQIR, int64(snap.QIR))
	s.counters.Store(0, cCost, int64(math.Float64bits(snap.Cost)))
	for _, ks := range snap.Keys {
		sh := s.shardFor(ks.Key)
		sh.mu.Lock()
		sh.src.SetInitial(ks.Key, ks.Value)
		sh.src.Subscribe(storeCacheID, ks.Key)
		// Width 0 marks a key snapshotted without a recorded policy; the
		// fresh subscription's InitialWidth stands in that case.
		if ks.Width > 0 {
			if p, ok := sh.src.PolicyFor(storeCacheID, ks.Key); ok {
				if c, ok := p.(*core.Controller); ok {
					c.SetWidth(ks.Width)
				}
			}
		}
		if ks.Cached {
			sh.cache.Put(ks.Key, Interval{Lo: ks.Lo, Hi: ks.Hi}, ks.OrigW)
		}
		sh.mu.Unlock()
	}
	return s, nil
}

// decodeSnap and encodeSnap expose raw snapshot coding for version tests.
func decodeSnap(r io.Reader, snap *snapshot) error { return gob.NewDecoder(r).Decode(snap) }

func encodeSnap(w io.Writer, snap snapshot) error { return gob.NewEncoder(w).Encode(snap) }
