package apcache

import "testing"

// TestReadAllocs locks in the read path's allocation budget: a Get hit (and
// miss) runs the seqlock probe, the interval read, and the striped counters
// without a single heap allocation. It is the store-side companion of
// netproto's TestWireAllocs and runs in the same CI allocation-regression
// gate.
func TestReadAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	const keys = 128
	s, err := NewStore(Options{InitialWidth: 10, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < keys; k++ {
		s.Track(k, float64(k))
	}
	if n := testing.AllocsPerRun(500, func() {
		for k := 0; k < keys; k++ {
			if _, ok := s.Get(k); !ok {
				t.Fatal("tracked key missed")
			}
		}
	}); n != 0 {
		t.Errorf("Get hit path: %v allocs per %d-key sweep, want 0", n, keys)
	}
	if n := testing.AllocsPerRun(500, func() {
		if _, ok := s.Get(keys + 12345); ok {
			t.Fatal("phantom hit")
		}
	}); n != 0 {
		t.Errorf("Get miss path: %v allocs/op, want 0", n)
	}
	// A cache-complete bounded query answers entirely from seqlock reads;
	// its only allocations are the query processor's own working set, not
	// per-read boxes. Lock-freedom is the claim under test here, so just
	// exercise it for the side effect of the assertion above staying true
	// while Do probes run concurrently-shaped code paths.
	qkeys := make([]int, keys)
	for k := range qkeys {
		qkeys[k] = k
	}
	if _, err := s.Do(Query{Kind: Sum, Keys: qkeys, Delta: 1e9}); err != nil {
		t.Fatalf("Do: %v", err)
	}
}
