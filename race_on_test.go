//go:build race

package apcache

// raceEnabled reports whether the race detector is active; allocation-count
// assertions are skipped under it (instrumentation changes the numbers).
const raceEnabled = true
