package apcache

import (
	"apcache/internal/aperrs"
)

// The typed error taxonomy of API v1. Every layer — the in-process Store,
// the networked Client, and the Hierarchy — fails with errors that match
// these sentinels under errors.Is, and on connections that negotiated
// protocol v3 (the default between current peers) the match survives the
// TCP boundary: the server encodes a structured code on the wire Err frame
// and the client reconstructs the same identity, so
//
//	_, err := client.ReadExactCtx(ctx, 42)
//	if errors.Is(err, apcache.ErrUnknownKey) { ... }
//
// behaves identically whether the miss happened in-process or on a remote
// server.
var (
	// ErrUnknownKey reports an operation on a key the source does not
	// host. Use errors.As with *apcache.KeyError to extract the key.
	ErrUnknownKey = aperrs.ErrUnknownKey
	// ErrClosed reports an operation on a closed Client or Watch.
	ErrClosed = aperrs.ErrClosed
	// ErrTimeout reports a call abandoned by the client's default
	// deadline (Client.SetTimeout). It also matches
	// context.DeadlineExceeded, so deadline handling is uniform whether
	// the bound came from a context or the default.
	ErrTimeout = aperrs.ErrTimeout
	// ErrBatchTooLarge reports a frame whose batch payload exceeds the
	// wire protocol's per-frame limit. It is raised locally — at encode
	// time by the sender, at decode time by the receiver; a server cannot
	// reply with it across the wire, because an oversized inbound frame
	// is rejected before its request ID is known.
	ErrBatchTooLarge = aperrs.ErrBatchTooLarge
	// ErrConnLost reports a call failed by a transport failure: the TCP
	// connection died underneath an in-flight call, or was still down
	// when the call started. With ClientConfig.Reconnect enabled the
	// condition is transient — the client redials, replays its
	// subscriptions, and resumes Watch streams — so callers should treat
	// a match as "retry", not "give up":
	//
	//	v, err := client.ReadExactCtx(ctx, key)
	//	if errors.Is(err, apcache.ErrConnLost) { /* back off and retry */ }
	//
	// Use errors.As with *apcache.ConnLostError to reach the underlying
	// transport error.
	ErrConnLost = aperrs.ErrConnLost
	// ErrSnapshotVersion reports a snapshot written by a newer format
	// version than this binary understands — an old reader meeting a new
	// file. Use errors.As with *apcache.SnapshotVersionError for both
	// version numbers. Distinct from a corrupt snapshot, which fails with
	// an untyped decode or validation error: a version mismatch is fixed by
	// upgrading the binary, not by discarding the state.
	ErrSnapshotVersion = aperrs.ErrSnapshotVersion
	// ErrQueryUnsupported reports a continuous-query registration
	// (Client.WatchQueryCtx) against a server that did not negotiate
	// protocol v4. The client raises it locally instead of sending a frame
	// the server would reject by tearing down the connection; it is also
	// the error a standing query's Watch fails with when a reconnect
	// renegotiates the session below v4.
	ErrQueryUnsupported = aperrs.ErrQueryUnsupported
)

// KeyError is the concrete unknown-key failure, carrying the offending
// key; it matches ErrUnknownKey under errors.Is.
type KeyError = aperrs.KeyError

// TimeoutError is the concrete default-deadline failure, carrying the
// deadline that expired; it matches ErrTimeout and
// context.DeadlineExceeded under errors.Is.
type TimeoutError = aperrs.TimeoutError

// ConnLostError is the concrete connection-loss failure, wrapping the
// underlying transport error; it matches ErrConnLost under errors.Is.
type ConnLostError = aperrs.ConnLostError

// SnapshotVersionError is the concrete newer-snapshot failure, carrying the
// snapshot's version and the maximum this binary supports; it matches
// ErrSnapshotVersion under errors.Is.
type SnapshotVersionError = aperrs.SnapshotVersionError
