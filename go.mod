module apcache

go 1.24
