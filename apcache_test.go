package apcache

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
)

func newStore(t *testing.T) *Store {
	t.Helper()
	s, err := NewStore(Options{
		Params:       Params{Cvr: 1, Cqr: 2, Alpha: 1, Lambda0: 0, Lambda1: math.Inf(1)},
		InitialWidth: 10,
	})
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	return s
}

func TestStoreTrackAndGet(t *testing.T) {
	s := newStore(t)
	s.Track(1, 100)
	iv, ok := s.Get(1)
	if !ok || !iv.Valid(100) {
		t.Fatalf("Get(1) = %v, %v", iv, ok)
	}
	if iv.Width() != 10 {
		t.Errorf("width %g, want 10", iv.Width())
	}
}

func TestStoreSetRefreshesOnEscape(t *testing.T) {
	s := newStore(t)
	s.Track(1, 100)
	if s.Set(1, 104) {
		t.Errorf("in-interval update refreshed")
	}
	if !s.Set(1, 200) {
		t.Errorf("escape did not refresh")
	}
	iv, _ := s.Get(1)
	if !iv.Valid(200) {
		t.Errorf("interval %v invalid after refresh", iv)
	}
	st := s.Stats()
	if st.ValueRefreshes != 1 || st.Cost != 1 {
		t.Errorf("stats %+v, want 1 VIR cost 1", st)
	}
}

func TestStoreReadExact(t *testing.T) {
	s := newStore(t)
	s.Track(1, 42)
	v, err := s.ReadExact(1)
	if err != nil || v != 42 {
		t.Fatalf("ReadExact = %g, %v", v, err)
	}
	st := s.Stats()
	if st.QueryRefreshes != 1 || st.Cost != 2 {
		t.Errorf("stats %+v, want 1 QIR cost 2", st)
	}
	if _, err := s.ReadExact(99); !errors.Is(err, ErrUnknownKey) {
		t.Errorf("ReadExact of unknown key: err = %v, want ErrUnknownKey match", err)
	} else {
		var ke *KeyError
		if !errors.As(err, &ke) || ke.Key != 99 {
			t.Errorf("errors.As KeyError = %+v, want key 99", ke)
		}
	}
}

func TestStoreQuery(t *testing.T) {
	s := newStore(t)
	for k, v := range []float64{10, 20, 30} {
		s.Track(k, v)
	}
	ans, err := s.Do(Query{Kind: Sum, Keys: []int{0, 1, 2}, Delta: 100})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if !ans.Result.Valid(60) {
		t.Errorf("result %v missing 60", ans.Result)
	}
	ans, err = s.Do(Query{Kind: Max, Keys: []int{0, 1, 2}, Delta: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Result.IsExact() || ans.Result.Lo != 30 {
		t.Errorf("MAX result %v, want [30, 30]", ans.Result)
	}
	if _, err := s.Do(Query{Kind: Sum, Keys: []int{0, 9}, Delta: 0}); !errors.Is(err, ErrUnknownKey) {
		t.Errorf("query over unknown key: err = %v, want ErrUnknownKey match", err)
	}
}

func TestStoreAdaptsWidth(t *testing.T) {
	s := newStore(t)
	s.Track(1, 0)
	// Repeated exact reads narrow the interval.
	for i := 0; i < 4; i++ {
		if _, err := s.ReadExact(1); err != nil {
			t.Fatal(err)
		}
	}
	iv, _ := s.Get(1)
	if iv.Width() >= 10 {
		t.Errorf("width %g did not shrink under read pressure", iv.Width())
	}
	// Repeated escapes widen it again.
	v := 0.0
	for i := 0; i < 6; i++ {
		v += 1000
		s.Set(1, v)
	}
	iv, _ = s.Get(1)
	if iv.Width() <= 10 {
		t.Errorf("width %g did not grow under update pressure", iv.Width())
	}
}

func TestStoreConcurrent(t *testing.T) {
	s := newStore(t)
	for k := 0; k < 4; k++ {
		s.Track(k, 0)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.Set(g, float64(i*7))
				s.Get(g)
				if i%10 == 0 {
					if _, err := s.ReadExact(g); err != nil {
						t.Errorf("ReadExact: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestNewStoreValidation(t *testing.T) {
	if _, err := NewStore(Options{Params: Params{Cvr: -1, Cqr: 1}}); err == nil {
		t.Errorf("invalid params accepted")
	}
	if _, err := NewStore(Options{InitialWidth: math.NaN()}); err == nil {
		t.Errorf("NaN width accepted")
	}
	// Zero options get defaults.
	s, err := NewStore(Options{})
	if err != nil {
		t.Fatalf("zero options rejected: %v", err)
	}
	s.Track(0, 1)
	if _, ok := s.Get(0); !ok {
		t.Errorf("default store does not cache")
	}
}

func TestDefaultParams(t *testing.T) {
	p := DefaultParams(1, 2, 5)
	if p.Alpha != 1 || p.Lambda0 != 5 || !math.IsInf(p.Lambda1, 1) {
		t.Errorf("DefaultParams = %+v", p)
	}
}

func TestServeAndDial(t *testing.T) {
	srv, addr, err := Serve("127.0.0.1:0", ServerConfig{
		Params:       DefaultParams(1, 2, 0),
		InitialWidth: 8,
	})
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()
	srv.SetInitial(0, 50)
	c, err := Dial(addr.String(), 16)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if err := c.Subscribe(0); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	iv, ok := c.Get(0)
	if !ok || !iv.Valid(50) {
		t.Errorf("Get = %v, %v", iv, ok)
	}
}

// ExampleStore demonstrates the embedded single-process API.
func ExampleStore() {
	store, err := NewStore(Options{
		Params:       DefaultParams(1, 2, 0.01),
		InitialWidth: 4,
	})
	if err != nil {
		panic(err)
	}
	store.Track(0, 20) // cached as [18, 22]

	// Updates inside the interval are free; escapes refresh it.
	store.Set(0, 21)

	// A loose query is answered from the cache alone.
	ans, _ := store.Do(Query{Kind: Sum, Keys: []int{0}, Delta: 10})
	fmt.Println("refreshes needed:", len(ans.Refreshed))

	// An exact query fetches the value.
	ans, _ = store.Do(Query{Kind: Sum, Keys: []int{0}, Delta: 0})
	fmt.Println("exact answer:", ans.Result.Lo)
	// Output:
	// refreshes needed: 0
	// exact answer: 21
}

func TestTrackReadmitsEvictedKey(t *testing.T) {
	// A 1-entry cache on one shard: key 1 loses the admission tie against
	// resident key 0 and stays uncached. After key 0's width grows past key
	// 1's, re-Tracking key 1 with a value inside its interval must re-offer
	// the entry — which now wins admission — even though no refresh fires.
	s, err := NewStore(Options{InitialWidth: 10, CacheSize: 1, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.Track(0, 0)
	s.Track(1, 1000)
	if _, ok := s.Get(1); ok {
		t.Fatal("key 1 admitted over resident key 0 on an equal-width tie")
	}
	v := 0.0
	for i := 0; i < 3; i++ { // widen key 0 with escaping updates
		v += 1000
		s.Set(0, v)
	}
	s.Track(1, 1000) // same value: inside the interval, no refresh
	if _, ok := s.Get(1); !ok {
		t.Error("key 1 still uncached after re-Track despite winning admission")
	}
}

func TestNewStoreHugeCacheSize(t *testing.T) {
	// The per-shard cap must not overflow for CacheSize near MaxInt; the
	// store should behave as effectively unlimited.
	s, err := NewStore(Options{InitialWidth: 10, CacheSize: math.MaxInt, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	const keys = 100
	for k := 0; k < keys; k++ {
		s.Track(k, float64(k))
	}
	for k := 0; k < keys; k++ {
		if _, ok := s.Get(k); !ok {
			t.Fatalf("key %d not cached despite unlimited capacity", k)
		}
	}
}

func TestCacheSizeSplitIsExact(t *testing.T) {
	// The cap must not gain ceiling slack from the per-shard split: with
	// every shard oversubscribed, the store caches exactly CacheSize
	// entries (100 over 16 shards, not 16*ceil(100/16) = 112).
	s, err := NewStore(Options{InitialWidth: 10, CacheSize: 100, Shards: 16})
	if err != nil {
		t.Fatal(err)
	}
	const keys = 4000
	for k := 0; k < keys; k++ {
		s.Track(k, float64(k))
	}
	cached := 0
	for k := 0; k < keys; k++ {
		if _, ok := s.Get(k); ok {
			cached++
		}
	}
	if cached != 100 {
		t.Errorf("cached %d entries, want exactly 100", cached)
	}
}

func TestStatsPerShardOccupancy(t *testing.T) {
	// Per-shard occupancy makes capacity skew observable. With the shared
	// admission budget each shard's capacity is elastic — a guaranteed base
	// of CacheSize/(2*Shards) plus borrowed budget slots — but the
	// aggregate bound stays exact: bases plus pool equal CacheSize.
	s, err := NewStore(Options{InitialWidth: 10, CacheSize: 32, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	const keys = 200 // oversubscribe so eviction pressure appears
	for k := 0; k < keys; k++ {
		s.Track(k, float64(k))
	}
	st := s.Stats()
	if len(st.PerShard) != 4 {
		t.Fatalf("PerShard has %d entries, want 4", len(st.PerShard))
	}
	const base = 32 / (2 * 4)
	var totLen, totCap, totEvicts, totRejects int
	for i, sh := range st.PerShard {
		if sh.Len > sh.Capacity {
			t.Errorf("shard %d: len %d exceeds capacity %d", i, sh.Len, sh.Capacity)
		}
		if sh.Capacity != base+sh.Borrowed {
			t.Errorf("shard %d: capacity %d != base %d + borrowed %d", i, sh.Capacity, base, sh.Borrowed)
		}
		totLen += sh.Len
		totCap += sh.Capacity
		totEvicts += sh.Evicts
		totRejects += sh.Rejects
	}
	if totCap != 32 {
		t.Errorf("total capacity %d, want 32 (pool fully borrowed under pressure)", totCap)
	}
	if totLen != 32 {
		t.Errorf("total occupancy %d with %d tracked keys, want full 32", totLen, keys)
	}
	if totEvicts != st.Cache.Evicts || totRejects != st.Cache.Rejects {
		t.Errorf("per-shard evicts/rejects %d/%d disagree with aggregate %d/%d",
			totEvicts, totRejects, st.Cache.Evicts, st.Cache.Rejects)
	}
}
