package apcache

// Race-focused concurrency suite: goroutine hammers over the sharded Store
// and the networked Server/Client pair, designed to run under `go test
// -race`. Beyond being race-clean, each test re-checks the paper's safety
// invariant at a quiesce point: every cached interval contains the exact
// value it approximates (Section 1.1 — approximations are always valid).

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"apcache/internal/workload"
)

// checkStoreInvariant asserts, on a quiesced store, that every cached
// interval contains the exact value. ReadExact both returns the exact value
// and re-centers the interval, so it is read after Get.
func checkStoreInvariant(t *testing.T, s *Store, keys int) {
	t.Helper()
	for k := 0; k < keys; k++ {
		iv, cached := s.Get(k)
		v, err := s.ReadExact(k)
		if err != nil {
			t.Fatalf("ReadExact(%d): %v", k, err)
		}
		if cached && !iv.Valid(v) {
			t.Errorf("key %d: cached interval %v does not contain exact value %g", k, iv, v)
		}
		if cached && (iv.Width() < 0 || math.IsNaN(iv.Width())) {
			t.Errorf("key %d: bad interval width %g", k, iv.Width())
		}
	}
}

// TestStoreHammer interleaves Track, Set, Get, ReadExact and Do from many
// goroutines over a shared key space, across shard counts (1 recovers the
// global-lock configuration).
func TestStoreHammer(t *testing.T) {
	for _, shards := range []int{1, 4, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			const (
				keys       = 64
				goroutines = 8
				opsPerG    = 400
			)
			s, err := NewStore(Options{
				Params:       Params{Cvr: 1, Cqr: 2, Alpha: 1, Lambda0: 0, Lambda1: math.Inf(1)},
				InitialWidth: 10,
				Shards:       shards,
			})
			if err != nil {
				t.Fatal(err)
			}
			for k := 0; k < keys; k++ {
				s.Track(k, float64(k))
			}
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(g) + 100))
					for i := 0; i < opsPerG; i++ {
						k := rng.Intn(keys)
						switch rng.Intn(10) {
						case 0, 1, 2, 3: // 40% updates
							s.Set(k, rng.Float64()*1000)
						case 4, 5, 6: // 30% approximate reads
							if iv, ok := s.Get(k); ok && math.IsNaN(iv.Width()) {
								t.Errorf("NaN-width interval for key %d", k)
								return
							}
						case 7: // exact reads
							if _, err := s.ReadExact(k); err != nil {
								t.Errorf("ReadExact(%d): %v", k, err)
								return
							}
						case 8: // re-track (subscribe is idempotent)
							s.Track(k, rng.Float64()*1000)
						default: // bounded-aggregate queries over random key sets
							qkeys := make([]int, 1+rng.Intn(6))
							for j := range qkeys {
								qkeys[j] = rng.Intn(keys)
							}
							kind := []AggKind{Sum, Max, Min, Avg}[rng.Intn(4)]
							delta := rng.Float64() * 50
							ans, err := s.Do(Query{Kind: kind, Keys: qkeys, Delta: delta})
							if err != nil {
								t.Errorf("Do: %v", err)
								return
							}
							if w := ans.Result.Width(); w > delta+1e-9 {
								t.Errorf("answer width %g exceeds delta %g", w, delta)
								return
							}
						}
					}
				}(g)
			}
			wg.Wait()
			checkStoreInvariant(t, s, keys)
			st := s.Stats()
			if st.Cost < 0 || math.IsNaN(st.Cost) {
				t.Errorf("bad cumulative cost %g", st.Cost)
			}
			if st.ValueRefreshes < 0 || st.QueryRefreshes < 0 {
				t.Errorf("negative refresh counters: %+v", st)
			}
		})
	}
}

// TestStoreHammerWithEviction runs the hammer against a small cache so
// admits, rejects and evictions race with refreshes.
func TestStoreHammerWithEviction(t *testing.T) {
	const keys, goroutines, opsPerG = 64, 6, 300
	s, err := NewStore(Options{InitialWidth: 10, CacheSize: 16, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < keys; k++ {
		s.Track(k, 0)
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) + 7))
			for i := 0; i < opsPerG; i++ {
				k := rng.Intn(keys)
				if rng.Intn(2) == 0 {
					s.Set(k, rng.Float64()*1000)
				} else {
					s.Get(k)
				}
			}
		}(g)
	}
	wg.Wait()
	checkStoreInvariant(t, s, keys)
}

// TestStoreSaveUnderLoad exercises the whole-store snapshot (which locks
// every shard) while the hammer is running.
func TestStoreSaveUnderLoad(t *testing.T) {
	const keys = 32
	s, err := NewStore(Options{InitialWidth: 10, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < keys; k++ {
		s.Track(k, 0)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				s.Set(rng.Intn(keys), rng.Float64()*100)
			}
		}(g)
	}
	for i := 0; i < 20; i++ {
		var sink discardWriter
		if err := s.Save(&sink); err != nil {
			t.Errorf("Save under load: %v", err)
			break
		}
	}
	close(stop)
	wg.Wait()
	checkStoreInvariant(t, s, keys)
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }

// TestNetHammerPooledWire hammers the zero-allocation wire path: pooled
// frame buffers, pooled messages, the reusing per-connection decoders, and
// the adaptive flush window all churn concurrently across several clients
// while the server pushes continuously. Unlike TestClientServerHammer it
// does not pace the updater, so push-queue overflow (drops, legal) and
// RefreshBatch coalescing under a live flush window are both exercised; the
// assertions are therefore about race-cleanliness, query-width guarantees,
// and counter sanity rather than end-state validity.
func TestNetHammerPooledWire(t *testing.T) {
	forEachConnMode(t, netHammerPooledWire)
}

// forEachConnMode runs a server-exercising test once per connection core.
// The poller subtest asserts the event-driven core actually engaged (no
// silent fallback) on platforms that support it, and is skipped elsewhere.
func forEachConnMode(t *testing.T, fn func(t *testing.T, mode string)) {
	t.Helper()
	for _, mode := range []string{ConnModeGoroutine, ConnModePoller} {
		t.Run("connmode="+mode, func(t *testing.T) {
			if mode == ConnModePoller && !PollerSupported() {
				t.Skip("poller core unsupported on this platform")
			}
			fn(t, mode)
		})
	}
}

func netHammerPooledWire(t *testing.T, mode string) {
	const (
		keys          = 48
		clients       = 3
		goroutinesPer = 3
		opsPerG       = 200
	)
	srv, addr, err := Serve("127.0.0.1:0", ServerConfig{
		Params:        DefaultParams(1, 2, 0),
		InitialWidth:  8,
		Shards:        4,
		MaxBatch:      32,
		FlushInterval: 500 * time.Microsecond,
		ConnMode:      mode,
	})
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()
	if got := srv.ConnMode(); got != mode {
		t.Fatalf("server runs ConnMode %q, want %q", got, mode)
	}
	for k := 0; k < keys; k++ {
		srv.SetInitial(k, float64(k))
	}

	cs := make([]*Client, clients)
	for i := range cs {
		c, err := DialConfig(addr.String(), ClientConfig{CacheSize: keys, MaxBatch: 16})
		if err != nil {
			t.Fatalf("Dial: %v", err)
		}
		defer c.Close()
		cs[i] = c
		all := make([]int, keys)
		for k := range all {
			all[k] = k
		}
		if err := c.SubscribeMulti(all); err != nil {
			t.Fatalf("SubscribeMulti: %v", err)
		}
	}

	// Unpaced updater: continuous churn keeps the flush window busy and
	// occasionally overflows push queues (drops are legal protocol
	// behavior).
	stop := make(chan struct{})
	var updater sync.WaitGroup
	updater.Add(1)
	go func() {
		defer updater.Done()
		rng := rand.New(rand.NewSource(42))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				srv.Set(rng.Intn(keys), rng.Float64()*1e6)
				if i%256 == 0 {
					time.Sleep(100 * time.Microsecond) // sub-window gaps: keeps coalescing live without starving the workers
				}
			}
		}
	}()

	var wg sync.WaitGroup
	for ci, c := range cs {
		for g := 0; g < goroutinesPer; g++ {
			wg.Add(1)
			go func(c *Client, seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for i := 0; i < opsPerG; i++ {
					switch rng.Intn(6) {
					case 0:
						c.Get(rng.Intn(keys))
					case 1:
						if _, err := c.ReadExact(rng.Intn(keys)); err != nil {
							t.Errorf("ReadExact: %v", err)
							return
						}
					case 2:
						qkeys := make([]int, 1+rng.Intn(8))
						for j := range qkeys {
							qkeys[j] = rng.Intn(keys)
						}
						if _, err := c.ReadMulti(qkeys); err != nil {
							t.Errorf("ReadMulti: %v", err)
							return
						}
					default:
						qkeys := make([]int, 1+rng.Intn(8))
						for j := range qkeys {
							qkeys[j] = rng.Intn(keys)
						}
						kind := []AggKind{Sum, Max, Min, Avg}[rng.Intn(4)]
						delta := rng.Float64() * 1000
						ans, err := c.Query(Query{Kind: kind, Keys: qkeys, Delta: delta})
						if err != nil {
							t.Errorf("Query: %v", err)
							return
						}
						if w := ans.Result.Width(); w > delta+1e-9 {
							t.Errorf("answer width %g exceeds delta %g", w, delta)
							return
						}
					}
				}
			}(c, int64(ci*100+g))
		}
	}
	wg.Wait()
	close(stop)
	updater.Wait()

	for ci, c := range cs {
		if err := c.Ping(); err != nil {
			t.Fatalf("client %d: Ping: %v", ci, err)
		}
		st := c.Stats()
		if st.QueryRefreshes < 0 || st.ValueRefreshes < 0 {
			t.Errorf("client %d: negative refresh counters: %+v", ci, st)
		}
		if st.FramesSent <= 0 || st.FramesReceived <= 0 {
			t.Errorf("client %d: frame counters not advancing: %+v", ci, st)
		}
	}
}

// TestClientServerHammer runs a server with a concurrent updater thread and
// several clients issuing Get/ReadExact/Query from multiple goroutines each.
// After quiescing (a Ping round trip drains each connection's in-order
// refresh stream), every client-cached interval must contain the server's
// exact value.
func TestClientServerHammer(t *testing.T) {
	const (
		keys          = 32
		clients       = 3
		goroutinesPer = 3
		opsPerG       = 150
	)
	srv, addr, err := Serve("127.0.0.1:0", ServerConfig{
		Params:       DefaultParams(1, 2, 0),
		InitialWidth: 8,
		Shards:       4,
	})
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()
	for k := 0; k < keys; k++ {
		srv.SetInitial(k, float64(k))
	}

	cs := make([]*Client, clients)
	for i := range cs {
		c, err := Dial(addr.String(), keys*2)
		if err != nil {
			t.Fatalf("Dial: %v", err)
		}
		defer c.Close()
		cs[i] = c
		for k := 0; k < keys; k++ {
			if err := c.Subscribe(k); err != nil {
				t.Fatalf("Subscribe: %v", err)
			}
		}
	}

	// Server-side updater: concurrent value churn pushing refreshes. Updates
	// run in bounded bursts with a Ping drain in between, so a connection's
	// 256-slot push queue can never overflow — a dropped refresh is legal
	// protocol behavior but would weaken the quiesce check below from "must
	// contain" to "may be stale".
	var updater sync.WaitGroup
	updater.Add(1)
	go func() {
		defer updater.Done()
		rng := rand.New(rand.NewSource(99))
		for burst := 0; burst < 20; burst++ {
			for i := 0; i < 100; i++ {
				srv.Set(rng.Intn(keys), rng.Float64()*1000)
			}
			for _, c := range cs {
				if err := c.Ping(); err != nil {
					t.Errorf("drain ping: %v", err)
					return
				}
			}
		}
	}()

	var wg sync.WaitGroup
	for ci, c := range cs {
		for g := 0; g < goroutinesPer; g++ {
			wg.Add(1)
			go func(c *Client, seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for i := 0; i < opsPerG; i++ {
					k := rng.Intn(keys)
					switch rng.Intn(4) {
					case 0:
						c.Get(k)
					case 1:
						if _, err := c.ReadExact(k); err != nil {
							t.Errorf("ReadExact: %v", err)
							return
						}
					default:
						qkeys := []int{rng.Intn(keys), rng.Intn(keys)}
						if _, err := c.Query(Query{Kind: Sum, Keys: qkeys, Delta: rng.Float64() * 100}); err != nil {
							t.Errorf("Query: %v", err)
							return
						}
					}
				}
			}(c, int64(ci*10+g))
		}
	}
	wg.Wait()
	updater.Wait()

	// Quiesce: all Sets have returned, so their refresh frames are enqueued;
	// a Ping response is enqueued after them and the client processes frames
	// in order, so once Ping returns the stream is drained.
	for _, c := range cs {
		if err := c.Ping(); err != nil {
			t.Fatalf("Ping: %v", err)
		}
	}
	for ci, c := range cs {
		for k := 0; k < keys; k++ {
			iv, cached := c.Get(k)
			if !cached {
				continue // evicted or a dropped refresh superseded; both legal
			}
			v, ok := srv.Value(k)
			if !ok {
				t.Fatalf("server lost key %d", k)
			}
			if !iv.Valid(v) {
				t.Errorf("client %d key %d: interval %v does not contain exact value %g", ci, k, iv, v)
			}
		}
	}
}

// TestStoreSkewHammer drives a zipf-skewed key distribution — the regime the
// shared admission budget exists for — from many goroutines and then checks
// the per-shard occupancy accounting against its sum invariants: every
// counter pair that must balance (admits-evicts vs occupancy, hits+misses vs
// issued Gets, elastic capacities vs the configured cap) balances exactly,
// even though every Get ran lock-free against concurrent writers.
func TestStoreSkewHammer(t *testing.T) {
	const (
		keys       = 512
		goroutines = 8
		opsPerG    = 3000
		cacheSize  = 64
		shards     = 8
	)
	s, err := NewStore(Options{InitialWidth: 10, CacheSize: cacheSize, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < keys; k++ {
		s.Track(k, float64(k))
	}
	zipf := workload.NewZipfKeys(keys, 1.2)
	var totalGets atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) + 31))
			gets := 0
			for i := 0; i < opsPerG; i++ {
				k := zipf.Sample(rng)
				if rng.Intn(2) == 0 {
					s.Set(k, rng.Float64()*1000)
				} else {
					s.Get(k)
					gets++
				}
			}
			totalGets.Add(int64(gets))
		}(g)
	}
	wg.Wait()

	st := s.Stats()
	base := cacheSize / (2 * shards)
	var totLen, totCap, totBorrowed, totEvicts, totRejects int
	for i, sh := range st.PerShard {
		if sh.Len > sh.Capacity {
			t.Errorf("shard %d: len %d exceeds capacity %d", i, sh.Len, sh.Capacity)
		}
		if sh.Capacity != base+sh.Borrowed {
			t.Errorf("shard %d: capacity %d != base %d + borrowed %d", i, sh.Capacity, base, sh.Borrowed)
		}
		totLen += sh.Len
		totCap += sh.Capacity
		totBorrowed += sh.Borrowed
		totEvicts += sh.Evicts
		totRejects += sh.Rejects
	}
	if totLen > cacheSize {
		t.Errorf("total occupancy %d exceeds CacheSize %d", totLen, cacheSize)
	}
	if totCap > cacheSize {
		t.Errorf("total elastic capacity %d exceeds CacheSize %d", totCap, cacheSize)
	}
	if totBorrowed == 0 {
		t.Errorf("no budget borrowing under a zipf-skewed load; the admission pool is inert")
	}
	if got := st.Cache.Admits - st.Cache.Evicts; got != totLen {
		t.Errorf("admits-evicts = %d disagrees with total occupancy %d", got, totLen)
	}
	if totEvicts != st.Cache.Evicts || totRejects != st.Cache.Rejects {
		t.Errorf("per-shard evicts/rejects %d/%d disagree with aggregate %d/%d",
			totEvicts, totRejects, st.Cache.Evicts, st.Cache.Rejects)
	}
	if got := int64(st.Cache.Hits + st.Cache.Misses); got != totalGets.Load() {
		t.Errorf("hits+misses = %d, want exactly the %d issued Gets", got, totalGets.Load())
	}
	checkStoreInvariant(t, s, keys)
}
