package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCostMeterWarmupDiscard(t *testing.T) {
	m := NewCostMeter(100)
	m.ValueRefresh(50, 4) // warm-up, discarded
	m.QueryRefresh(99, 2) // warm-up, discarded
	m.ValueRefresh(100, 4)
	m.QueryRefresh(150, 2)
	m.Tick(200)
	if got := m.TotalCost(); got != 6 {
		t.Errorf("TotalCost = %g, want 6", got)
	}
	if m.ValueRefreshes() != 1 || m.QueryRefreshes() != 1 {
		t.Errorf("post-warm-up counts = %d/%d, want 1/1", m.ValueRefreshes(), m.QueryRefreshes())
	}
	if m.AllValueRefreshes() != 2 || m.AllQueryRefreshes() != 2 {
		t.Errorf("all counts = %d/%d, want 2/2", m.AllValueRefreshes(), m.AllQueryRefreshes())
	}
	if got := m.Elapsed(); got != 100 {
		t.Errorf("Elapsed = %g, want 100", got)
	}
	if got := m.Rate(); math.Abs(got-0.06) > 1e-12 {
		t.Errorf("Rate = %g, want 0.06", got)
	}
}

func TestCostMeterRefreshRates(t *testing.T) {
	m := NewCostMeter(0)
	for i := 0; i < 10; i++ {
		m.ValueRefresh(float64(i), 1)
	}
	for i := 0; i < 5; i++ {
		m.QueryRefresh(float64(i), 2)
	}
	m.Tick(100)
	pvr, pqr := m.RefreshRates()
	if math.Abs(pvr-0.1) > 1e-12 || math.Abs(pqr-0.05) > 1e-12 {
		t.Errorf("rates = %g/%g, want 0.1/0.05", pvr, pqr)
	}
}

func TestCostMeterEmpty(t *testing.T) {
	m := NewCostMeter(10)
	if m.Rate() != 0 || m.Elapsed() != 0 {
		t.Errorf("empty meter: rate=%g elapsed=%g", m.Rate(), m.Elapsed())
	}
	pvr, pqr := m.RefreshRates()
	if pvr != 0 || pqr != 0 {
		t.Errorf("empty meter rates %g/%g", pvr, pqr)
	}
}

func TestSummaryMoments(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if got := s.Mean(); got != 5 {
		t.Errorf("Mean = %g, want 5", got)
	}
	if got := s.Std(); math.Abs(got-2) > 1e-12 {
		t.Errorf("Std = %g, want 2", got)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max = %g/%g, want 2/9", s.Min(), s.Max())
	}
	if s.String() == "" {
		t.Errorf("empty String()")
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Var() != 0 {
		t.Errorf("empty summary mean/var = %g/%g", s.Mean(), s.Var())
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Name = "value"
	for i := 0; i < 10; i++ {
		s.Append(float64(i), float64(i*i))
	}
	if s.Len() != 10 {
		t.Fatalf("Len = %d", s.Len())
	}
	w := s.Window(3, 6)
	if len(w) != 3 || w[0].T != 3 || w[2].T != 5 {
		t.Errorf("Window(3,6) = %+v", w)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {1, 5},
	}
	for _, tc := range cases {
		if got := Quantile(xs, tc.q); got != tc.want {
			t.Errorf("Quantile(%g) = %g, want %g", tc.q, got, tc.want)
		}
	}
	if got := Quantile(xs, 0.5); got != 3 {
		t.Errorf("median = %g", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Errorf("Quantile of empty slice should be NaN")
	}
	// Out-of-range q is clamped.
	if got := Quantile(xs, 2); got != 5 {
		t.Errorf("Quantile(2) = %g, want 5", got)
	}
	if got := Quantile(xs, -1); got != 1 {
		t.Errorf("Quantile(-1) = %g, want 1", got)
	}
	// Input must not be mutated.
	unsorted := []float64{3, 1, 2}
	Quantile(unsorted, 0.5)
	if unsorted[0] != 3 {
		t.Errorf("Quantile mutated its input")
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter("hits")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 || c.Name() != "hits" {
		t.Errorf("counter = %d %q", c.Value(), c.Name())
	}
	defer func() {
		if recover() == nil {
			t.Errorf("negative Add did not panic")
		}
	}()
	c.Add(-1)
}

func TestQuickSummaryMeanWithinBounds(t *testing.T) {
	f := func(xs []float64) bool {
		var s Summary
		ok := true
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				ok = false
				break
			}
			s.Add(x)
		}
		if !ok || s.N() == 0 {
			return true
		}
		return s.Mean() >= s.Min()-1e-9 && s.Mean() <= s.Max()+1e-9 && s.Var() >= -1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickQuantileMonotone(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(clean, q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
