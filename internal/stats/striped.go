package stats

import "sync/atomic"

// Stripes is a set of per-stripe counter blocks for hot-path accounting in
// sharded structures: one stripe per shard, each padded out to its own cache
// lines so counters bumped by different shards never false-share, with
// aggregation (Sum) done by the reader instead of the writers. Writers call
// Add/Inc/Store on their own stripe; any goroutine may Load/Sum concurrently.
//
// All operations are atomic, so Stripes is safe for fully concurrent use.
// The intended discipline, though, is the sharded-store one: each stripe has
// one writer (the shard's lock holder) and many lock-free readers, which
// keeps every Add an uncontended cache-local RMW.
type Stripes struct {
	counters int // counters per stripe (logical)
	stride   int // slots per stripe, padded to whole cache lines
	cells    []atomic.Int64
}

// cacheLineInt64s is how many int64 counters fill one 64-byte cache line.
const cacheLineInt64s = 8

// NewStripes returns a counter set with nStripes stripes of nCounters
// counters each. Both must be positive.
func NewStripes(nStripes, nCounters int) *Stripes {
	if nStripes <= 0 || nCounters <= 0 {
		panic("stats: NewStripes needs positive dimensions")
	}
	// Round the stripe up to a whole number of cache lines, plus one spare
	// line of padding so adjacent stripes cannot share a line even when the
	// logical counters exactly fill their lines.
	stride := (nCounters + cacheLineInt64s - 1) / cacheLineInt64s * cacheLineInt64s
	stride += cacheLineInt64s
	return &Stripes{
		counters: nCounters,
		stride:   stride,
		cells:    make([]atomic.Int64, nStripes*stride),
	}
}

// Stripes returns the number of stripes.
func (s *Stripes) Stripes() int { return len(s.cells) / s.stride }

// Counters returns the number of counters per stripe.
func (s *Stripes) Counters() int { return s.counters }

func (s *Stripes) cell(stripe, counter int) *atomic.Int64 {
	if counter < 0 || counter >= s.counters {
		panic("stats: counter index out of range")
	}
	return &s.cells[stripe*s.stride+counter]
}

// Add atomically adds delta to one counter of one stripe.
func (s *Stripes) Add(stripe, counter int, delta int64) {
	s.cell(stripe, counter).Add(delta)
}

// Inc atomically adds 1 to one counter of one stripe.
func (s *Stripes) Inc(stripe, counter int) { s.cell(stripe, counter).Add(1) }

// Store atomically replaces one counter of one stripe. It is the update for
// absolute gauges (occupancy, live-key counts) whose writers already know the
// new value, as opposed to the Add deltas of event counters.
func (s *Stripes) Store(stripe, counter int, v int64) {
	s.cell(stripe, counter).Store(v)
}

// Load atomically reads one counter of one stripe.
func (s *Stripes) Load(stripe, counter int) int64 {
	return s.cell(stripe, counter).Load()
}

// Sum aggregates one counter across every stripe. The result is a sum of
// individually atomic loads, not a global snapshot: concurrent writers may
// land between stripe reads, exactly like the per-shard-consistent snapshots
// elsewhere in this codebase.
func (s *Stripes) Sum(counter int) int64 {
	var total int64
	n := s.Stripes()
	for i := 0; i < n; i++ {
		total += s.Load(i, counter)
	}
	return total
}
