package stats

import (
	"sync"
	"testing"
)

func TestStripesBasics(t *testing.T) {
	s := NewStripes(4, 3)
	if s.Stripes() != 4 || s.Counters() != 3 {
		t.Fatalf("dimensions %dx%d, want 4x3", s.Stripes(), s.Counters())
	}
	s.Inc(0, 0)
	s.Add(1, 0, 9)
	s.Add(3, 0, -2)
	if got := s.Sum(0); got != 8 {
		t.Errorf("Sum(0) = %d, want 8", got)
	}
	s.Store(2, 1, 41)
	s.Store(2, 1, 7)
	if got := s.Load(2, 1); got != 7 {
		t.Errorf("Load(2,1) = %d, want 7", got)
	}
	if got := s.Sum(2); got != 0 {
		t.Errorf("untouched counter sums to %d, want 0", got)
	}
}

func TestStripesPanicsOnBadIndex(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("out-of-range counter index did not panic")
		}
	}()
	NewStripes(2, 2).Add(0, 2, 1)
}

// TestStripesConcurrentSum hammers every stripe from its own goroutine while
// a reader sums continuously; the final total must be exact.
func TestStripesConcurrentSum(t *testing.T) {
	const stripes, perStripe = 8, 5000
	s := NewStripes(stripes, 2)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent aggregation must never see torn state
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if v := s.Sum(0); v < 0 || v > stripes*perStripe {
				t.Errorf("Sum(0) = %d out of range", v)
				return
			}
		}
	}()
	var writers sync.WaitGroup
	for g := 0; g < stripes; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < perStripe; i++ {
				s.Inc(g, 0)
				s.Add(g, 1, 2)
			}
		}(g)
	}
	writers.Wait()
	close(stop)
	wg.Wait()
	if got := s.Sum(0); got != stripes*perStripe {
		t.Errorf("Sum(0) = %d, want %d", got, stripes*perStripe)
	}
	if got := s.Sum(1); got != 2*stripes*perStripe {
		t.Errorf("Sum(1) = %d, want %d", got, 2*stripes*perStripe)
	}
}
