// Package stats provides the measurement machinery for the performance
// study: refresh counters, a cost-rate meter with warm-up discard, running
// summaries, and time-series recorders for the trace figures.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// CostMeter accumulates refresh costs over simulated time and reports the
// average cost rate Omega, discarding everything before the warm-up horizon
// ("Measurements taken during an initial warm-up period were discarded",
// Section 4.2).
type CostMeter struct {
	warmup float64
	start  float64 // earliest post-warm-up instant seen
	last   float64 // latest instant seen

	cost     float64 // total post-warm-up cost
	vir, qir int     // post-warm-up refresh counts
	allVIR   int     // including warm-up
	allQIR   int
}

// NewCostMeter returns a meter that ignores costs incurred strictly before
// warmup (in simulation time units).
func NewCostMeter(warmup float64) *CostMeter {
	return &CostMeter{warmup: warmup, start: math.NaN(), last: math.NaN()}
}

// observe advances the meter clock.
func (m *CostMeter) observe(now float64) {
	if now < m.warmup {
		return
	}
	if math.IsNaN(m.start) {
		m.start = now
	}
	if math.IsNaN(m.last) || now > m.last {
		m.last = now
	}
}

// Tick advances the clock without charging any cost. Call it at simulation
// end so idle tail time counts toward the rate denominator.
func (m *CostMeter) Tick(now float64) { m.observe(now) }

// ValueRefresh charges a value-initiated refresh of the given cost at time
// now.
func (m *CostMeter) ValueRefresh(now, cost float64) {
	m.allVIR++
	if now < m.warmup {
		return
	}
	m.observe(now)
	m.vir++
	m.cost += cost
}

// QueryRefresh charges a query-initiated refresh of the given cost at time
// now.
func (m *CostMeter) QueryRefresh(now, cost float64) {
	m.allQIR++
	if now < m.warmup {
		return
	}
	m.observe(now)
	m.qir++
	m.cost += cost
}

// TotalCost returns the post-warm-up cost.
func (m *CostMeter) TotalCost() float64 { return m.cost }

// ValueRefreshes returns the post-warm-up value-initiated refresh count.
func (m *CostMeter) ValueRefreshes() int { return m.vir }

// QueryRefreshes returns the post-warm-up query-initiated refresh count.
func (m *CostMeter) QueryRefreshes() int { return m.qir }

// AllValueRefreshes returns the count including warm-up.
func (m *CostMeter) AllValueRefreshes() int { return m.allVIR }

// AllQueryRefreshes returns the count including warm-up.
func (m *CostMeter) AllQueryRefreshes() int { return m.allQIR }

// Elapsed returns the measured (post-warm-up) time span.
func (m *CostMeter) Elapsed() float64 {
	if math.IsNaN(m.start) || math.IsNaN(m.last) {
		return 0
	}
	return m.last - m.start
}

// Rate returns the average cost per time unit over the measured span, the
// metric Omega the study reports. It returns 0 before any post-warm-up
// observation.
func (m *CostMeter) Rate() float64 {
	el := m.Elapsed()
	if el <= 0 {
		return 0
	}
	return m.cost / el
}

// RefreshRates returns the post-warm-up value- and query-initiated refresh
// counts per time unit, the measured Pvr and Pqr of Section 4.2.
func (m *CostMeter) RefreshRates() (pvr, pqr float64) {
	el := m.Elapsed()
	if el <= 0 {
		return 0, 0
	}
	return float64(m.vir) / el, float64(m.qir) / el
}

// Summary accumulates running moments and extrema of a sample stream without
// storing the samples.
type Summary struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add folds a sample into the summary (Welford's update).
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the sample count.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean (0 with no samples).
func (s *Summary) Mean() float64 { return s.mean }

// Var returns the population variance.
func (s *Summary) Var() float64 {
	if s.n == 0 {
		return 0
	}
	return s.m2 / float64(s.n)
}

// Std returns the population standard deviation.
func (s *Summary) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest sample (0 with no samples).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest sample (0 with no samples).
func (s *Summary) Max() float64 { return s.max }

// String renders the summary compactly.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g min=%.4g max=%.4g", s.n, s.Mean(), s.Std(), s.min, s.max)
}

// Point is one (time, value) sample of a time series.
type Point struct {
	T float64
	V float64
}

// Series records a named time series, used to regenerate the Figure 4/5
// value-and-interval traces.
type Series struct {
	Name   string
	Points []Point
}

// Append adds a sample.
func (s *Series) Append(t, v float64) { s.Points = append(s.Points, Point{T: t, V: v}) }

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Points) }

// Window returns the sub-series with T in [lo, hi).
func (s *Series) Window(lo, hi float64) []Point {
	out := make([]Point, 0, len(s.Points))
	for _, p := range s.Points {
		if p.T >= lo && p.T < hi {
			out = append(out, p)
		}
	}
	return out
}

// Quantile returns the q-quantile (0 <= q <= 1) of arbitrary samples using
// nearest-rank interpolation. It copies and sorts; intended for small
// post-run analyses.
func Quantile(samples []float64, q float64) float64 {
	if len(samples) == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Counter is a labeled monotonically increasing event counter.
type Counter struct {
	name string
	n    int64
}

// NewCounter returns a named counter.
func NewCounter(name string) *Counter { return &Counter{name: name} }

// Inc adds 1.
func (c *Counter) Inc() { c.n++ }

// Add adds delta; negative deltas panic.
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		panic("stats: negative counter delta")
	}
	c.n += delta
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n }

// Name returns the counter label.
func (c *Counter) Name() string { return c.name }
