package sim

import "container/heap"

// eventKind distinguishes the two periodic event streams.
type eventKind int

const (
	evUpdate eventKind = iota // all sources advance one time step
	evQuery                   // one query executes at the cache
)

// event is one scheduled occurrence.
type event struct {
	t    float64
	seq  uint64 // tie-break: FIFO among equal times
	kind eventKind
}

// eventQueue is a min-heap on (t, seq).
type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].t != q[j].t {
		return q[i].t < q[j].t
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// scheduler drives the simulation clock.
type scheduler struct {
	q   eventQueue
	seq uint64
}

func (s *scheduler) schedule(t float64, kind eventKind) {
	s.seq++
	heap.Push(&s.q, event{t: t, seq: s.seq, kind: kind})
}

func (s *scheduler) next() (event, bool) {
	if s.q.Len() == 0 {
		return event{}, false
	}
	return heap.Pop(&s.q).(event), true
}
