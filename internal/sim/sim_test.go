package sim

import (
	"math"
	"testing"

	"apcache/internal/core"
	"apcache/internal/workload"
)

func walkConfig() Config {
	return Config{
		NumSources:   1,
		Params:       core.Params{Cvr: 1, Cqr: 2, Alpha: 1, Lambda0: 0, Lambda1: math.Inf(1)},
		InitialWidth: 4,
		Updates:      WalkUpdates(0.5, 1.5),
		Tq:           2,
		QueryKinds:   []workload.AggKind{workload.Sum},
		KeysPerQuery: 1,
		Constraints:  workload.ConstraintDist{Avg: 20, Sigma: 1},
		Duration:     5000,
		Warmup:       500,
		Seed:         1,
		RecordKey:    -1,
	}
}

func TestRunProducesActivity(t *testing.T) {
	res, err := Run(walkConfig())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.CostRate <= 0 {
		t.Errorf("CostRate = %g, want > 0", res.CostRate)
	}
	if res.ValueRefreshes == 0 || res.QueryRefreshes == 0 {
		t.Errorf("refreshes = %d/%d, want both > 0", res.ValueRefreshes, res.QueryRefreshes)
	}
	if res.Queries == 0 {
		t.Errorf("no queries executed")
	}
	if res.MeanWidth.N() == 0 {
		t.Errorf("no width samples")
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(walkConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(walkConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.CostRate != b.CostRate || a.ValueRefreshes != b.ValueRefreshes || a.QueryRefreshes != b.QueryRefreshes {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
	cfg := walkConfig()
	cfg.Seed = 2
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.CostRate == a.CostRate && c.ValueRefreshes == a.ValueRefreshes {
		t.Errorf("different seeds produced identical runs")
	}
}

func TestFixedWidthTradeoff(t *testing.T) {
	// The Section 4.2 premise: very narrow intervals suffer VIRs, very
	// wide intervals suffer QIRs.
	narrow := walkConfig()
	narrow.Policy = FixedWidthPolicy(0.1)
	rNarrow, err := Run(narrow)
	if err != nil {
		t.Fatal(err)
	}
	wide := walkConfig()
	wide.Policy = FixedWidthPolicy(100)
	rWide, err := Run(wide)
	if err != nil {
		t.Fatal(err)
	}
	if rNarrow.Pvr <= rWide.Pvr {
		t.Errorf("narrow Pvr %g <= wide Pvr %g", rNarrow.Pvr, rWide.Pvr)
	}
	if rWide.Pqr <= rNarrow.Pqr {
		t.Errorf("wide Pqr %g <= narrow Pqr %g", rWide.Pqr, rNarrow.Pqr)
	}
}

func TestAdaptiveNearBestFixed(t *testing.T) {
	// The headline claim (Section 4.2): in steady state the adaptive run
	// converges to near the best fixed width. A small alpha keeps the
	// multiplicative oscillation around W* tight (with alpha = 1 the width
	// swings a full octave, which costs ~20-30% on this V-shaped cost
	// curve; the paper's within-5% figure is a steady-state result).
	best := math.Inf(1)
	for w := 1.0; w <= 10; w++ {
		cfg := walkConfig()
		cfg.Policy = FixedWidthPolicy(w)
		r, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if r.CostRate < best {
			best = r.CostRate
		}
	}
	cfg := walkConfig()
	cfg.Params.Alpha = 0.1
	cfg.Duration = 20000
	cfg.Warmup = 5000
	ad, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ad.CostRate > best*1.15 {
		t.Errorf("adaptive cost %g vs best fixed %g (>15%% worse)", ad.CostRate, best)
	}
}

func TestRecordingSeries(t *testing.T) {
	cfg := walkConfig()
	cfg.RecordKey = 0
	cfg.Duration = 100
	cfg.Warmup = 0
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value.Len() == 0 {
		t.Fatalf("no value samples recorded")
	}
	if res.Lo.Len() == 0 || res.Hi.Len() == 0 {
		t.Fatalf("no interval samples recorded")
	}
	// Interval bounds must bracket: Lo <= Hi at matching times.
	for i := range res.Lo.Points {
		if res.Lo.Points[i].V > res.Hi.Points[i].V {
			t.Fatalf("Lo > Hi at t=%g", res.Lo.Points[i].T)
		}
	}
}

func TestSmallCacheEvicts(t *testing.T) {
	cfg := walkConfig()
	cfg.NumSources = 10
	cfg.CacheSize = 3
	cfg.KeysPerQuery = 5
	cfg.Duration = 2000
	cfg.Warmup = 100
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := res.CacheStats
	if st.Evicts == 0 && st.Rejects == 0 {
		t.Errorf("small cache never evicted or rejected: %+v", st)
	}
}

func TestPlaybackUpdates(t *testing.T) {
	series := [][]float64{
		make([]float64, 300),
		make([]float64, 300),
	}
	for t := range series[0] {
		series[0][t] = float64(t)
		series[1][t] = 100 - float64(t)
	}
	cfg := walkConfig()
	cfg.NumSources = 2
	cfg.KeysPerQuery = 2
	cfg.Updates = PlaybackUpdates(series)
	cfg.Duration = 250
	cfg.Warmup = 10
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ValueRefreshes == 0 {
		t.Errorf("ramp playback produced no VIRs")
	}
}

func TestConfigValidate(t *testing.T) {
	good := walkConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.NumSources = 0 },
		func(c *Config) { c.CacheSize = 5 }, // > NumSources=1
		func(c *Config) { c.Updates = nil },
		func(c *Config) { c.Tq = 0 },
		func(c *Config) { c.QueryKinds = nil },
		func(c *Config) { c.KeysPerQuery = 0 },
		func(c *Config) { c.KeysPerQuery = 2 },
		func(c *Config) { c.Duration = 0 },
		func(c *Config) { c.Warmup = -1 },
		func(c *Config) { c.Warmup = 5000 },
		func(c *Config) { c.InitialWidth = -1 },
		func(c *Config) { c.Params.Cqr = 0 },
	}
	for i, mut := range mutations {
		cfg := walkConfig()
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
		if _, err := Run(cfg); err == nil {
			t.Errorf("Run accepted mutation %d", i)
		}
	}
}

func TestCacheSizeZeroMeansAll(t *testing.T) {
	cfg := walkConfig()
	cfg.NumSources = 5
	cfg.KeysPerQuery = 3
	cfg.CacheSize = 0
	cfg.Duration = 200
	cfg.Warmup = 10
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheStats.Evicts != 0 || res.CacheStats.Rejects != 0 {
		t.Errorf("full-size cache evicted: %+v", res.CacheStats)
	}
}

func TestMaxQueriesRun(t *testing.T) {
	cfg := walkConfig()
	cfg.NumSources = 10
	cfg.KeysPerQuery = 5
	cfg.QueryKinds = []workload.AggKind{workload.Max}
	cfg.Duration = 1000
	cfg.Warmup = 100
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries == 0 {
		t.Errorf("no MAX queries executed")
	}
}

func TestExactPrecisionWorkload(t *testing.T) {
	// davg = 0 with lambda0 > 0 on a rarely-changing value: the algorithm
	// settles into exact caching (zero-width intervals) and queries hit
	// locally. A constant series makes the exact copy stable.
	series := [][]float64{make([]float64, 4000)}
	for i := range series[0] {
		series[0][i] = 42 // never changes
	}
	cfg := walkConfig()
	cfg.Constraints = workload.ConstraintDist{Avg: 0}
	cfg.Params.Lambda0 = 1
	cfg.Updates = PlaybackUpdates(series)
	cfg.Duration = 3000
	cfg.Warmup = 1000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries == 0 {
		t.Fatalf("no queries")
	}
	// After warm-up the exact copy is cached and stable: no refreshes of
	// either kind.
	if res.Pqr > 0.01 || res.Pvr > 0.01 {
		t.Errorf("stable exact copy still refreshing: Pvr=%g Pqr=%g", res.Pvr, res.Pqr)
	}
	if res.CostRate != 0 {
		t.Errorf("cost rate %g, want 0 for stable exact copy", res.CostRate)
	}
}

func TestExactPrecisionOnVolatileDataIsBounded(t *testing.T) {
	// davg = 0 on an every-second random walk: no caching strategy can
	// help; the cost rate must stay within the worst case of paying both
	// a VIR every second and a QIR every query.
	cfg := walkConfig()
	cfg.Constraints = workload.ConstraintDist{Avg: 0}
	cfg.Params.Lambda0 = 1
	cfg.Duration = 3000
	cfg.Warmup = 1000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	worst := cfg.Params.Cvr*1 + cfg.Params.Cqr/cfg.Tq
	if res.CostRate > worst*1.05 {
		t.Errorf("cost rate %g exceeds worst case %g", res.CostRate, worst)
	}
}
