// Package sim implements the discrete-event simulator of Section 4.1: n
// data sources each hosting one exact numeric value, one cache holding up to
// kappa interval approximations, updates applied every time unit (one
// second), and bounded-aggregate queries executed every Tq seconds. It
// measures the average cost rate Omega with warm-up discard, the refresh
// rates standing in for Pvr and Pqr, and optionally records the
// value-and-interval time series behind Figures 4 and 5.
package sim

import (
	"fmt"
	"math"
	"math/rand"

	"apcache/internal/cache"
	"apcache/internal/core"
	"apcache/internal/query"
	"apcache/internal/source"
	"apcache/internal/stats"
	"apcache/internal/workload"
)

// PolicyFactory builds a width policy for source key; rng is the
// simulation's RNG, shared so runs are reproducible by seed.
type PolicyFactory func(key int, rng *rand.Rand) core.WidthPolicy

// UpdateFactory builds source key's update stream.
type UpdateFactory func(key int, rng *rand.Rand) workload.UpdateSource

// Config describes one simulation run.
type Config struct {
	// NumSources is n, the number of source values.
	NumSources int
	// CacheSize is kappa; 0 means "as large as NumSources".
	CacheSize int
	// Params configures the adaptive controller (ignored when Policy is
	// set); Cvr/Cqr also define the refresh costs charged by the meter.
	Params core.Params
	// InitialWidth seeds every controller.
	InitialWidth float64
	// Policy optionally overrides the adaptive controller (fixed-width
	// sweeps, variants, baselines implementing core.WidthPolicy).
	Policy PolicyFactory
	// Updates builds each source's update stream. Required.
	Updates UpdateFactory
	// Tq is the query period in seconds.
	Tq float64
	// QueryKinds are the aggregate types to draw from.
	QueryKinds []workload.AggKind
	// KeysPerQuery is how many sources each query touches.
	KeysPerQuery int
	// Constraints is the precision-constraint distribution.
	Constraints workload.ConstraintDist
	// Duration is the simulated time in seconds.
	Duration float64
	// Warmup is the initial period excluded from measurements.
	Warmup float64
	// Seed makes the run deterministic.
	Seed int64
	// RecordKey, if >= 0, records source value and cached interval bounds
	// each second for that key (Figures 4-5).
	RecordKey int
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.NumSources <= 0:
		return fmt.Errorf("sim: NumSources must be positive, got %d", c.NumSources)
	case c.CacheSize < 0 || c.CacheSize > c.NumSources:
		return fmt.Errorf("sim: CacheSize %d out of range 0..%d", c.CacheSize, c.NumSources)
	case c.Updates == nil:
		return fmt.Errorf("sim: Updates factory is required")
	case c.Tq <= 0:
		return fmt.Errorf("sim: Tq must be positive, got %g", c.Tq)
	case len(c.QueryKinds) == 0:
		return fmt.Errorf("sim: QueryKinds is empty")
	case c.KeysPerQuery <= 0 || c.KeysPerQuery > c.NumSources:
		return fmt.Errorf("sim: KeysPerQuery %d out of range 1..%d", c.KeysPerQuery, c.NumSources)
	case c.Duration <= 0:
		return fmt.Errorf("sim: Duration must be positive, got %g", c.Duration)
	case c.Warmup < 0 || c.Warmup >= c.Duration:
		return fmt.Errorf("sim: Warmup %g out of range [0, %g)", c.Warmup, c.Duration)
	case c.InitialWidth < 0 || math.IsNaN(c.InitialWidth):
		return fmt.Errorf("sim: bad InitialWidth %g", c.InitialWidth)
	}
	// Params is always validated: even when Policy overrides the
	// controller, Params.Cvr and Params.Cqr define the costs the meter
	// charges.
	return c.Params.Validate()
}

// Result carries one run's measurements.
type Result struct {
	// CostRate is Omega, the average post-warm-up cost per second.
	CostRate float64
	// Pvr and Pqr are the measured refresh rates per second.
	Pvr, Pqr float64
	// ValueRefreshes and QueryRefreshes are post-warm-up counts.
	ValueRefreshes, QueryRefreshes int
	// Queries is the number of queries executed post-warm-up.
	Queries int
	// CacheStats snapshots the cache counters.
	CacheStats cache.Stats
	// MeanWidth summarizes the post-warm-up original widths across
	// subscribed policies, sampled each second.
	MeanWidth stats.Summary
	// Value, Lo and Hi are the recorded series for RecordKey (empty when
	// recording is disabled).
	Value, Lo, Hi stats.Series
}

// Run executes one simulation.
func Run(cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	kappa := cfg.CacheSize
	if kappa == 0 {
		kappa = cfg.NumSources
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	policy := cfg.Policy
	if policy == nil {
		policy = func(key int, rng *rand.Rand) core.WidthPolicy {
			return core.NewController(cfg.Params, cfg.InitialWidth, rng)
		}
	}
	src := source.New(func(cacheID, key int) core.WidthPolicy {
		return policy(key, rng)
	})
	updates := make([]workload.UpdateSource, cfg.NumSources)
	for i := 0; i < cfg.NumSources; i++ {
		updates[i] = cfg.Updates(i, rng)
		src.SetInitial(i, updates[i].Value())
	}

	store := cache.New(kappa)
	qgen := &workload.QueryGen{
		Kinds:        cfg.QueryKinds,
		NumSources:   cfg.NumSources,
		KeysPerQuery: cfg.KeysPerQuery,
		Constraints:  cfg.Constraints,
		RNG:          rng,
	}
	if err := qgen.Validate(); err != nil {
		return Result{}, err
	}

	meter := stats.NewCostMeter(cfg.Warmup)
	res := Result{}
	const cacheID = 0

	install := func(r source.Refresh) {
		store.Put(r.Key, r.Interval, r.OriginalWidth)
	}

	var sched scheduler
	sched.schedule(1, evUpdate)
	sched.schedule(cfg.Tq, evQuery)

	for {
		ev, ok := sched.next()
		if !ok || ev.t > cfg.Duration {
			break
		}
		now := ev.t
		switch ev.kind {
		case evUpdate:
			for i, u := range updates {
				v := u.Step()
				for _, r := range src.Set(i, v) {
					meter.ValueRefresh(now, cfg.Params.Cvr)
					install(r)
				}
			}
			if now >= cfg.Warmup {
				var widthSum float64
				var widthN int
				for i := 0; i < cfg.NumSources; i++ {
					if p, ok := src.PolicyFor(cacheID, i); ok {
						widthSum += p.Width()
						widthN++
					}
				}
				if widthN > 0 {
					res.MeanWidth.Add(widthSum / float64(widthN))
				}
			}
			if cfg.RecordKey >= 0 {
				v, _ := src.Value(cfg.RecordKey)
				res.Value.Append(now, v)
				if iv, ok := store.Peek(cfg.RecordKey); ok {
					res.Lo.Append(now, iv.Lo)
					res.Hi.Append(now, iv.Hi)
				}
			}
			sched.schedule(now+1, evUpdate)
		case evQuery:
			q := qgen.Next()
			query.Execute(q, store.Get, func(key int) float64 {
				r := src.Read(cacheID, key)
				meter.QueryRefresh(now, cfg.Params.Cqr)
				install(r)
				return r.Value
			})
			if now >= cfg.Warmup {
				res.Queries++
			}
			sched.schedule(now+cfg.Tq, evQuery)
		}
	}
	meter.Tick(cfg.Duration)

	res.CostRate = meter.Rate()
	res.Pvr, res.Pqr = meter.RefreshRates()
	res.ValueRefreshes = meter.ValueRefreshes()
	res.QueryRefreshes = meter.QueryRefreshes()
	res.CacheStats = store.Stats()
	res.Value.Name = "value"
	res.Lo.Name = "lo"
	res.Hi.Name = "hi"
	return res, nil
}

// WalkUpdates returns an UpdateFactory producing the Section 4.2 random
// walks: start 0, step uniform on [lo, hi].
func WalkUpdates(lo, hi float64) UpdateFactory {
	return func(key int, rng *rand.Rand) workload.UpdateSource {
		return workload.NewRandomWalk(0, lo, hi, rng)
	}
}

// PlaybackUpdates returns an UpdateFactory replaying series[key].
func PlaybackUpdates(series [][]float64) UpdateFactory {
	return func(key int, rng *rand.Rand) workload.UpdateSource {
		return workload.NewPlayback(series[key])
	}
}

// FixedWidthPolicy pins every approximation at width w (the Figure 3 sweep).
func FixedWidthPolicy(w float64) PolicyFactory {
	return func(key int, rng *rand.Rand) core.WidthPolicy {
		return core.NewFixedController(w)
	}
}
