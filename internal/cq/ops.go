// Streaming operators over interval streams. A continuous query is a
// pipeline of composable stages — filter → group-by → aggregate → top-k —
// in the style of streaming-iterator executors: each stage consumes keyed
// interval updates one at a time and emits the downstream updates they
// cause, so new query shapes are operator compositions, not engine
// rewrites.
package cq

import (
	"sort"

	"apcache/internal/interval"
)

// Item is one element of a keyed interval stream: a key's current
// approximation and the exact value it was refreshed at. Operators that
// emit derived streams (group-by, aggregate) reuse Key for the derived
// identity (group ID, AggKey).
type Item struct {
	Key int
	Iv  interval.Interval
	Val float64
}

// AggKey is the Key of items emitted by an Aggregate stage: the whole
// stream folded to one value.
const AggKey = -1

// Operator is one stage of a streaming pipeline. Push feeds one upstream
// update and appends the downstream updates it causes to out, returning
// the extended slice; a stage whose state absorbed the update without
// changing its output appends nothing.
type Operator interface {
	Push(it Item, out []Item) []Item
}

// Pipeline chains operators: each stage's emissions feed the next. The
// zero stages pipeline is the identity.
type Pipeline struct {
	ops  []Operator
	a, b []Item // stage scratch, reused across pushes
}

// NewPipeline returns a pipeline running ops in order.
func NewPipeline(ops ...Operator) *Pipeline { return &Pipeline{ops: ops} }

// Push feeds one item through every stage, appending the final stage's
// emissions to out.
func (p *Pipeline) Push(it Item, out []Item) []Item {
	cur := append(p.a[:0], it)
	next := p.b[:0]
	for _, op := range p.ops {
		next = next[:0]
		for _, x := range cur {
			next = op.Push(x, next)
		}
		cur, next = next, cur
	}
	p.a, p.b = cur, next
	return append(out, cur...)
}

// Filter passes through the items satisfying Pred and drops the rest.
type Filter struct {
	Pred func(Item) bool
}

// Push implements Operator.
func (f Filter) Push(it Item, out []Item) []Item {
	if f.Pred(it) {
		out = append(out, it)
	}
	return out
}

// FilterKeys returns a Filter passing only the given keys.
func FilterKeys(keys []int) Filter {
	set := make(map[int]struct{}, len(keys))
	for _, k := range keys {
		set[k] = struct{}{}
	}
	return Filter{Pred: func(it Item) bool { _, ok := set[it.Key]; return ok }}
}

// Aggregate folds every upstream item into one Aggregator and emits
// Item{Key: AggKey} whenever the aggregate interval or center estimate
// changes.
type Aggregate struct {
	Agg Aggregator

	last  interval.Interval
	lastV float64
	sent  bool
}

// Push implements Operator.
func (g *Aggregate) Push(it Item, out []Item) []Item {
	g.Agg.Update(it.Key, it.Iv, it.Val)
	res, v := g.Agg.Result(), g.Agg.Value()
	if g.sent && res == g.last && v == g.lastV {
		return out
	}
	g.sent, g.last, g.lastV = true, res, v
	return append(out, Item{Key: AggKey, Iv: res, Val: v})
}

// GroupBy routes each item to a per-group aggregate (built by New on first
// use) and emits Item{Key: group} whenever that group's aggregate changes.
type GroupBy struct {
	Group func(key int) int
	New   func() Aggregator

	groups map[int]*Aggregate
}

// Push implements Operator.
func (g *GroupBy) Push(it Item, out []Item) []Item {
	if g.groups == nil {
		g.groups = make(map[int]*Aggregate)
	}
	gid := g.Group(it.Key)
	ga := g.groups[gid]
	if ga == nil {
		ga = &Aggregate{Agg: g.New()}
		g.groups[gid] = ga
	}
	n := len(out)
	out = ga.Push(it, out)
	for i := n; i < len(out); i++ {
		out[i].Key = gid
	}
	return out
}

// TopK tracks the K largest center estimates in the stream. Whenever the
// membership of the top-K set changes, Push emits the new members in rank
// order (largest first). Ranking scans all tracked keys per update — TopK
// is a reporting stage over modest key sets, not the engine hot path.
type TopK struct {
	K int

	items map[int]Item
	rank  []Item
}

// Push implements Operator.
func (t *TopK) Push(it Item, out []Item) []Item {
	if t.items == nil {
		t.items = make(map[int]Item)
	}
	t.items[it.Key] = it
	prev := make([]int, 0, t.K)
	for _, m := range t.rank {
		prev = append(prev, m.Key)
	}
	t.rank = t.rank[:0]
	for _, x := range t.items {
		t.rank = append(t.rank, x)
	}
	sort.Slice(t.rank, func(i, j int) bool {
		if t.rank[i].Val != t.rank[j].Val {
			return t.rank[i].Val > t.rank[j].Val
		}
		return t.rank[i].Key < t.rank[j].Key
	})
	if len(t.rank) > t.K {
		t.rank = t.rank[:t.K]
	}
	same := len(prev) == len(t.rank)
	if same {
		for i, m := range t.rank {
			if prev[i] != m.Key {
				same = false
				break
			}
		}
	}
	if same {
		return out
	}
	return append(out, t.rank...)
}

// Top returns the current top-K members in rank order; the slice is owned
// by the operator and valid until the next Push.
func (t *TopK) Top() []Item { return t.rank }

// Certain reports whether the current top-K membership is unambiguous
// given the interval approximations: every member's Lo must be at least
// every non-member's Hi. A false result means a non-member's true value
// could exceed a member's.
func (t *TopK) Certain() bool {
	if len(t.rank) == 0 {
		return len(t.items) == 0
	}
	minLo := t.rank[0].Iv.Lo
	for _, m := range t.rank[1:] {
		if m.Iv.Lo < minLo {
			minLo = m.Iv.Lo
		}
	}
	member := make(map[int]struct{}, len(t.rank))
	for _, m := range t.rank {
		member[m.Key] = struct{}{}
	}
	for k, x := range t.items {
		if _, ok := member[k]; ok {
			continue
		}
		if x.Iv.Hi > minLo {
			return false
		}
	}
	return true
}
