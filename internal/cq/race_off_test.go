//go:build !race

package cq

// raceEnabled reports whether the race detector is active; allocation-count
// assertions are skipped under it (instrumentation changes the numbers).
const raceEnabled = false
