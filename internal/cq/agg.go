// Aggregators fold keyed interval streams into a running aggregate
// interval, the incremental core of the continuous-query engine: each
// update touches O(1) state (SUM/AVG running endpoint sums) or O(log n)
// (MAX/MIN winner trees), never the whole key set.
package cq

import (
	"math"

	"apcache/internal/interval"
)

// Aggregator folds keyed interval updates into a running aggregate. An
// update replaces the key's previous contribution; keys join on first
// Update and never leave. Implementations are not safe for concurrent use.
type Aggregator interface {
	// Update upserts key's current approximation and the exact value it
	// was centered on at refresh time.
	Update(key int, iv interval.Interval, val float64)
	// Result returns the tight bound on the aggregate of the exact values,
	// given every folded key's current approximation.
	Result() interval.Interval
	// Value returns the center estimate: the aggregate of the exact values
	// the approximations were refreshed at.
	Value() float64
	// Len returns the number of keys folded in.
	Len() int
}

// rebaseEvery bounds the float drift of the incremental running sums:
// after this many updates the sums are recomputed from scratch.
const rebaseEvery = 4096

// sumAgg implements SUM and AVG with O(1) running sums of the interval
// endpoints and values; AVG is SUM scaled by 1/n at read time.
type sumAgg struct {
	idx   map[int]int
	ivs   []interval.Interval
	vals  []float64
	lo    float64
	hi    float64
	sum   float64
	avg   bool
	dirty int
}

// NewSum returns a SUM aggregator: Result is the Minkowski sum of the
// per-key intervals, updated in O(1).
func NewSum() Aggregator { return &sumAgg{idx: make(map[int]int)} }

// NewAvg returns an AVG aggregator: SUM scaled by the reciprocal of the
// number of keys folded in.
func NewAvg() Aggregator { return &sumAgg{idx: make(map[int]int), avg: true} }

func (a *sumAgg) Update(key int, iv interval.Interval, val float64) {
	i, ok := a.idx[key]
	if !ok {
		i = len(a.ivs)
		a.idx[key] = i
		a.ivs = append(a.ivs, interval.Exact(0))
		a.vals = append(a.vals, 0)
	}
	old := a.ivs[i]
	a.ivs[i] = iv
	oldVal := a.vals[i]
	a.vals[i] = val
	if old.IsUnbounded() || iv.IsUnbounded() {
		// Inf - Inf is NaN; an unbounded endpoint entering or leaving the
		// fold invalidates the incremental delta, so recompute.
		a.rebase()
		return
	}
	a.lo += iv.Lo - old.Lo
	a.hi += iv.Hi - old.Hi
	a.sum += val - oldVal
	if a.dirty++; a.dirty >= rebaseEvery {
		a.rebase()
	}
}

// rebase recomputes the running sums from scratch, washing out the float
// drift that incremental add/subtract accumulates.
func (a *sumAgg) rebase() {
	a.lo, a.hi, a.sum, a.dirty = 0, 0, 0, 0
	for i, iv := range a.ivs {
		a.lo += iv.Lo
		a.hi += iv.Hi
		a.sum += a.vals[i]
	}
}

func (a *sumAgg) Result() interval.Interval {
	out := interval.Interval{Lo: a.lo, Hi: a.hi}
	if a.avg && len(a.ivs) > 0 {
		out = out.Scale(1 / float64(len(a.ivs)))
	}
	return out
}

func (a *sumAgg) Value() float64 {
	if a.avg && len(a.vals) > 0 {
		return a.sum / float64(len(a.vals))
	}
	return a.sum
}

func (a *sumAgg) Len() int { return len(a.ivs) }

// extremeAgg implements MAX and MIN with three winner trees — one per
// aggregate component (Lo endpoint, Hi endpoint, exact value) — so each
// update replays one leaf-to-root path per tree, O(log n).
type extremeAgg struct {
	idx map[int]int
	lo  tournament
	hi  tournament
	val tournament
}

// NewMax returns a MAX aggregator: Result is [max Lo, max Hi], the tight
// bound on the maximum of the exact values.
func NewMax() Aggregator {
	return &extremeAgg{idx: make(map[int]int), lo: maxTournament(), hi: maxTournament(), val: maxTournament()}
}

// NewMin returns a MIN aggregator: Result is [min Lo, min Hi].
func NewMin() Aggregator {
	return &extremeAgg{idx: make(map[int]int), lo: minTournament(), hi: minTournament(), val: minTournament()}
}

func (a *extremeAgg) Update(key int, iv interval.Interval, val float64) {
	i, ok := a.idx[key]
	if !ok {
		i = len(a.idx)
		a.idx[key] = i
	}
	a.lo.update(i, iv.Lo)
	a.hi.update(i, iv.Hi)
	a.val.update(i, val)
}

// Result panics when no key has been folded in yet, like interval.MaxAll:
// the extreme of an empty set does not exist.
func (a *extremeAgg) Result() interval.Interval {
	return interval.Interval{Lo: a.lo.best(), Hi: a.hi.best()}
}

func (a *extremeAgg) Value() float64 { return a.val.best() }

func (a *extremeAgg) Len() int { return len(a.idx) }

// tournament is a winner tree over a fixed, growable set of slots: leaves
// hold per-slot scores, internal nodes the winning slot; updating one slot
// replays its path to the root in O(log n). better(a, b) reports whether
// score a beats score b; empty slots always lose.
type tournament struct {
	base   int
	win    []int
	score  []float64
	better func(a, b float64) bool
}

func maxTournament() tournament { return tournament{better: func(a, b float64) bool { return a > b }} }
func minTournament() tournament { return tournament{better: func(a, b float64) bool { return a < b }} }

// pick returns the winner of two slot indices (-1 = empty).
func (t *tournament) pick(a, b int) int {
	if a < 0 {
		return b
	}
	if b < 0 {
		return a
	}
	if t.better(t.score[b], t.score[a]) {
		return b
	}
	return a
}

// grow rebuilds the tree with at least n leaf slots.
func (t *tournament) grow(n int) {
	base := t.base
	if base == 0 {
		base = 1
	}
	for base < n {
		base *= 2
	}
	t.base = base
	t.win = t.win[:0]
	for len(t.win) < 2*base {
		t.win = append(t.win, -1)
	}
	for i := range t.score {
		t.win[base+i] = i
	}
	for j := base - 1; j >= 1; j-- {
		t.win[j] = t.pick(t.win[2*j], t.win[2*j+1])
	}
}

// update sets slot's score (growing the tree for a new slot) and replays
// its path to the root.
func (t *tournament) update(slot int, s float64) {
	for len(t.score) <= slot {
		t.score = append(t.score, math.NaN())
	}
	t.score[slot] = s
	if slot >= t.base {
		t.grow(slot + 1)
		return
	}
	t.win[t.base+slot] = slot
	for j := (t.base + slot) / 2; j >= 1; j /= 2 {
		t.win[j] = t.pick(t.win[2*j], t.win[2*j+1])
	}
}

// winner returns the champion slot, or -1 when no slot holds a score.
func (t *tournament) winner() int {
	if t.base == 0 {
		return -1
	}
	return t.win[1]
}

// best returns the champion score; it panics on an empty tree.
func (t *tournament) best() float64 {
	w := t.winner()
	if w < 0 {
		panic("cq: extreme of empty aggregate")
	}
	return t.score[w]
}
