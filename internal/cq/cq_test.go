package cq

import (
	"math"
	"math/rand"
	"testing"

	"apcache/internal/interval"
)

func iv(lo, hi float64) interval.Interval { return interval.Interval{Lo: lo, Hi: hi} }

func TestSumAggregator(t *testing.T) {
	a := NewSum()
	a.Update(1, iv(0, 2), 1)
	a.Update(2, iv(10, 14), 12)
	if got := a.Result(); got != iv(10, 16) {
		t.Errorf("Result = %v, want [10,16]", got)
	}
	if got := a.Value(); got != 13 {
		t.Errorf("Value = %g, want 13", got)
	}
	// An update replaces the key's previous contribution.
	a.Update(1, iv(5, 6), 5.5)
	if got := a.Result(); got != iv(15, 20) {
		t.Errorf("Result after replace = %v, want [15,20]", got)
	}
	if got := a.Value(); got != 17.5 {
		t.Errorf("Value after replace = %g, want 17.5", got)
	}
	if a.Len() != 2 {
		t.Errorf("Len = %d, want 2", a.Len())
	}
}

func TestAvgAggregator(t *testing.T) {
	a := NewAvg()
	a.Update(1, iv(0, 2), 1)
	a.Update(2, iv(2, 4), 3)
	if got := a.Result(); got != iv(1, 3) {
		t.Errorf("Result = %v, want [1,3]", got)
	}
	if got := a.Value(); got != 2 {
		t.Errorf("Value = %g, want 2", got)
	}
}

func TestSumUnboundedRebase(t *testing.T) {
	a := NewSum()
	a.Update(1, iv(0, math.Inf(1)), 1)
	a.Update(2, iv(1, 2), 1.5)
	if got := a.Result(); got.Lo != 1 || !math.IsInf(got.Hi, 1) {
		t.Errorf("Result with unbounded member = %v, want [1,+Inf]", got)
	}
	// The unbounded member leaving must not poison the sums with Inf-Inf.
	a.Update(1, iv(3, 4), 3.5)
	if got := a.Result(); got != iv(4, 6) {
		t.Errorf("Result after rebase = %v, want [4,6]", got)
	}
	if got := a.Value(); got != 5 {
		t.Errorf("Value after rebase = %g, want 5", got)
	}
}

func TestSumDriftRebase(t *testing.T) {
	a := NewSum()
	a.Update(0, iv(0, 1), 0.5)
	for i := 0; i < 3*rebaseEvery; i++ {
		a.Update(0, iv(float64(i), float64(i)+0.1), float64(i))
	}
	last := float64(3*rebaseEvery - 1)
	if got := a.Result(); math.Abs(got.Lo-last) > 1e-9 {
		t.Errorf("Result after churn = %v, want Lo %g", got, last)
	}
}

func TestExtremeAggregators(t *testing.T) {
	mx, mn := NewMax(), NewMin()
	for _, u := range []struct {
		k      int
		lo, hi float64
	}{{1, 0, 2}, {2, 5, 9}, {3, -4, -1}} {
		mx.Update(u.k, iv(u.lo, u.hi), (u.lo+u.hi)/2)
		mn.Update(u.k, iv(u.lo, u.hi), (u.lo+u.hi)/2)
	}
	if got := mx.Result(); got != iv(5, 9) {
		t.Errorf("Max Result = %v, want [5,9]", got)
	}
	if got := mn.Result(); got != iv(-4, -1) {
		t.Errorf("Min Result = %v, want [-4,-1]", got)
	}
	// Replacing the champion's contribution moves the winner.
	mx.Update(2, iv(-10, -8), -9)
	if got := mx.Result(); got != iv(0, 2) {
		t.Errorf("Max Result after demotion = %v, want [0,2]", got)
	}
	if got := mx.Value(); got != 1 {
		t.Errorf("Max Value = %g, want 1", got)
	}
}

func TestExtremeEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("Result of empty MAX did not panic")
		}
	}()
	NewMax().Result()
}

// TestTournamentRandomized cross-checks the winner tree against a linear
// scan over random upserts, including slot-count growth past powers of two.
func TestTournamentRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := maxTournament()
	ref := make([]float64, 0, 100)
	for i := 0; i < 5000; i++ {
		slot := rng.Intn(cap(ref))
		if slot >= len(ref) {
			slot = len(ref)
			ref = append(ref, 0)
		}
		s := rng.NormFloat64() * 100
		ref[slot] = s
		tr.update(slot, s)
		bestSlot, best := 0, math.Inf(-1)
		for j, v := range ref {
			if v > best {
				bestSlot, best = j, v
			}
		}
		if got := tr.best(); got != best {
			t.Fatalf("step %d: best = %g, want %g", i, got, best)
		}
		if got := tr.winner(); got != bestSlot {
			t.Fatalf("step %d: winner = %d, want %d", i, got, bestSlot)
		}
	}
}

func TestFilterKeys(t *testing.T) {
	f := FilterKeys([]int{1, 3})
	var out []Item
	for _, k := range []int{1, 2, 3, 4} {
		out = f.Push(Item{Key: k}, out)
	}
	if len(out) != 2 || out[0].Key != 1 || out[1].Key != 3 {
		t.Errorf("FilterKeys passed %v, want keys 1 and 3", out)
	}
}

func TestAggregateEmitsOnChange(t *testing.T) {
	g := &Aggregate{Agg: NewSum()}
	out := g.Push(Item{Key: 1, Iv: iv(0, 2), Val: 1}, nil)
	if len(out) != 1 || out[0].Key != AggKey {
		t.Fatalf("first push emitted %v, want one AggKey item", out)
	}
	// Re-pushing the identical contribution changes nothing downstream.
	out = g.Push(Item{Key: 1, Iv: iv(0, 2), Val: 1}, out[:0])
	if len(out) != 0 {
		t.Errorf("no-op push emitted %v", out)
	}
	out = g.Push(Item{Key: 2, Iv: iv(1, 1), Val: 1}, out[:0])
	if len(out) != 1 || out[0].Iv != iv(1, 3) || out[0].Val != 2 {
		t.Errorf("second key emitted %v, want [1,3] val 2", out)
	}
}

func TestGroupBy(t *testing.T) {
	g := &GroupBy{Group: func(k int) int { return k % 2 }, New: NewSum}
	var out []Item
	out = g.Push(Item{Key: 1, Iv: iv(0, 1), Val: 0.5}, out[:0])
	if len(out) != 1 || out[0].Key != 1 {
		t.Fatalf("group-1 emit = %v", out)
	}
	out = g.Push(Item{Key: 2, Iv: iv(4, 6), Val: 5}, out[:0])
	if len(out) != 1 || out[0].Key != 0 || out[0].Iv != iv(4, 6) {
		t.Fatalf("group-0 emit = %v", out)
	}
	out = g.Push(Item{Key: 3, Iv: iv(1, 2), Val: 1.5}, out[:0])
	if len(out) != 1 || out[0].Key != 1 || out[0].Iv != iv(1, 3) {
		t.Fatalf("group-1 second emit = %v", out)
	}
}

func TestTopK(t *testing.T) {
	tk := &TopK{K: 2}
	var out []Item
	out = tk.Push(Item{Key: 1, Iv: iv(0, 2), Val: 1}, out[:0])
	out = tk.Push(Item{Key: 2, Iv: iv(4, 6), Val: 5}, out[:0])
	if len(out) != 2 || out[0].Key != 2 || out[1].Key != 1 {
		t.Fatalf("top-2 after two keys = %v", out)
	}
	// A key below the cut changes nothing.
	out = tk.Push(Item{Key: 3, Iv: iv(-2, 0.5), Val: -1}, out[:0])
	if len(out) != 0 {
		t.Errorf("below-cut push emitted %v", out)
	}
	if tk.Certain() {
		t.Errorf("Certain with overlapping member/non-member intervals")
	}
	// Tighten the straggler below every member's Lo: membership is certain.
	out = tk.Push(Item{Key: 3, Iv: iv(-2, -1.5), Val: -1.75}, out[:0])
	if len(out) != 0 {
		t.Errorf("tightening push emitted %v", out)
	}
	if !tk.Certain() {
		t.Errorf("not Certain with separated intervals: top=%v", tk.Top())
	}
	// A newcomer displacing a member re-emits the ranking.
	out = tk.Push(Item{Key: 4, Iv: iv(9, 11), Val: 10}, out[:0])
	if len(out) != 2 || out[0].Key != 4 || out[1].Key != 2 {
		t.Errorf("displacement emitted %v, want keys 4,2", out)
	}
}

func TestPipelineComposition(t *testing.T) {
	p := NewPipeline(FilterKeys([]int{1, 2}), &Aggregate{Agg: NewSum()})
	var out []Item
	out = p.Push(Item{Key: 9, Iv: iv(100, 200), Val: 150}, out[:0])
	if len(out) != 0 {
		t.Fatalf("filtered key reached the aggregate: %v", out)
	}
	out = p.Push(Item{Key: 1, Iv: iv(0, 2), Val: 1}, out[:0])
	if len(out) != 1 || out[0].Iv != iv(0, 2) {
		t.Fatalf("pipeline emit = %v", out)
	}
}

func TestInitialTarget(t *testing.T) {
	if got := InitialTarget(Sum, 8, 4); got != 2 {
		t.Errorf("Sum target = %g, want 2", got)
	}
	for _, k := range []AggKind{Max, Min, Avg} {
		if got := InitialTarget(k, 8, 4); got != 8 {
			t.Errorf("%d target = %g, want 8", k, got)
		}
	}
}

func TestEngineRegisterExtremeSeedsMidChampion(t *testing.T) {
	// The champion sits in the middle of the key list, so the last seed
	// pushed into the pipeline emits nothing (the answer did not change).
	// The registration must still report the champion, not a zero answer.
	e := NewEngine()
	spec := Spec{Owner: 1, QID: 3, Kind: Max, Delta: 2, Keys: []int{5, 6, 7}}
	up, _, _ := e.Register(spec, 50,
		[]interval.Interval{iv(1, 3), iv(8, 10), iv(4, 6)}, []float64{2, 9, 5})
	if up.Iv != iv(8, 10) || up.Value != 9 {
		t.Errorf("initial MAX answer = %v val %g, want [8,10] val 9", up.Iv, up.Value)
	}
}

func TestEngineRegisterObserveUnregister(t *testing.T) {
	e := NewEngine()
	spec := Spec{Owner: 1, QID: 7, Kind: Sum, Delta: 6, Keys: []int{10, 11, 12}}
	up, _, replaced := e.Register(spec, 100,
		[]interval.Interval{iv(0, 2), iv(1, 3), iv(2, 4)}, []float64{1, 2, 3})
	if replaced {
		t.Fatalf("fresh registration reported a replacement")
	}
	if up.Iv != iv(3, 9) || up.Value != 6 {
		t.Errorf("initial answer = %v val %g, want [3,9] val 6", up.Iv, up.Value)
	}
	if n := e.Queries(); n != 1 {
		t.Errorf("Queries = %d, want 1", n)
	}
	// A refresh that changes the answer emits; re-observing it does not.
	up, emit, _ := e.Observe(100, 10, iv(1, 3), 2, true)
	if !emit || up.Iv != iv(4, 10) || up.Value != 7 || up.Owner != 1 || up.QID != 7 {
		t.Errorf("Observe = %+v emit=%v, want [4,10] val 7 to owner 1 qid 7", up, emit)
	}
	if _, emit, _ := e.Observe(100, 10, iv(1, 3), 2, true); emit {
		t.Errorf("identical re-observe emitted")
	}
	// Refreshes for unregistered cache IDs are ignored.
	if _, emit, _ := e.Observe(999, 10, iv(0, 1), 0.5, true); emit {
		t.Errorf("unknown cacheID emitted")
	}
	d, ok := e.Unregister(1, 7)
	if !ok || d.CacheID != 100 || len(d.Keys) != 3 {
		t.Errorf("Unregister = %+v %v, want cacheID 100 with 3 keys", d, ok)
	}
	if _, ok := e.Unregister(1, 7); ok {
		t.Errorf("double Unregister succeeded")
	}
	if n := e.Queries(); n != 0 {
		t.Errorf("Queries after Unregister = %d, want 0", n)
	}
}

func TestEngineRegisterReplacesSameQID(t *testing.T) {
	e := NewEngine()
	seed := []interval.Interval{iv(0, 1)}
	_, _, _ = e.Register(Spec{Owner: 1, QID: 3, Kind: Sum, Delta: 1, Keys: []int{5}}, 50, seed, []float64{0.5})
	_, old, wasReplaced := e.Register(Spec{Owner: 1, QID: 3, Kind: Sum, Delta: 2, Keys: []int{6}}, 51, seed, []float64{0.5})
	if !wasReplaced || old.CacheID != 50 {
		t.Fatalf("replacement = %+v %v, want old cacheID 50", old, wasReplaced)
	}
	if n := e.Queries(); n != 1 {
		t.Errorf("Queries = %d, want 1", n)
	}
	ds := e.DropOwner(1)
	if len(ds) != 1 || ds[0].CacheID != 51 {
		t.Errorf("DropOwner = %+v, want the replacement's footprint", ds)
	}
}

// TestEngineResplitConvergence drives one key hot and checks that re-splits
// steer it a wide share of the budget, then flips the heat and checks the
// shares follow — the adaptivity property of the budget allocator.
func TestEngineResplitConvergence(t *testing.T) {
	e := NewEngine()
	const delta = 8.0
	spec := Spec{Owner: 1, QID: 1, Kind: Sum, Delta: delta, Keys: []int{0, 1, 2, 3}}
	seeds := make([]interval.Interval, 4)
	vals := make([]float64, 4)
	for i := range seeds {
		seeds[i] = iv(0, delta/4)
	}
	e.Register(spec, 100, seeds, vals)

	drive := func(hot int, rounds int) {
		for r := 0; r < rounds; r++ {
			for i := 0; i < resplitEvery; i++ {
				key := hot
				if i%8 == 7 {
					key = (hot + 1) % 4 // a trickle on one cold key
				}
				_, _, steers := e.Observe(100, key, iv(float64(i), float64(i)+1), float64(i), true)
				for j := 1; j < len(steers); j++ {
					a := steers[j-1].Target - targetOf(t, e, steers[j-1].Key)
					_ = a // ordering checked below via budget property
				}
			}
		}
	}
	drive(0, 6)
	tg, ok := e.Targets(1, 1)
	if !ok {
		t.Fatalf("Targets missing")
	}
	sum := 0.0
	for _, w := range tg {
		sum += w
	}
	if sum > delta*1.0001 {
		t.Fatalf("target sum %g exceeds budget %g: %v", sum, delta, tg)
	}
	if tg[0] <= tg[2] || tg[0] <= tg[3] {
		t.Fatalf("hot key 0 not favored: %v", tg)
	}
	// Shift the heat: key 3 becomes hot, key 0 cools to nothing.
	drive(3, 12)
	tg, _ = e.Targets(1, 1)
	if tg[3] <= tg[1] || tg[3] <= tg[2] {
		t.Fatalf("after rate shift, hot key 3 not favored: %v", tg)
	}
	sum = 0
	for _, w := range tg {
		sum += w
	}
	if sum > delta*1.0001 {
		t.Fatalf("target sum %g exceeds budget %g after shift: %v", sum, delta, tg)
	}
}

func targetOf(t *testing.T, e *Engine, key int) float64 {
	t.Helper()
	tg, ok := e.Targets(1, 1)
	if !ok {
		t.Fatalf("Targets missing")
	}
	return tg[key]
}

// TestEngineResplitShrinksFirst checks the steer ordering invariant: within
// one re-split, every cap shrink precedes every cap growth, so the cap sum
// never exceeds the budget mid-application.
func TestEngineResplitShrinksFirst(t *testing.T) {
	e := NewEngine()
	spec := Spec{Owner: 1, QID: 1, Kind: Sum, Delta: 4, Keys: []int{0, 1}}
	e.Register(spec, 9, []interval.Interval{iv(0, 2), iv(0, 2)}, []float64{1, 1})
	var steers []Steer
	for i := 0; i < 4*resplitEvery && len(steers) == 0; i++ {
		_, _, steers = e.Observe(9, 0, iv(float64(i), float64(i+1)), float64(i), true)
	}
	if len(steers) == 0 {
		t.Skip("no re-split triggered (shares stayed within steerMinRel)")
	}
	tg := map[int]float64{0: 2, 1: 2}
	sawGrowth := false
	for _, s := range steers {
		d := s.Target - tg[s.Key]
		if d < 0 && sawGrowth {
			t.Fatalf("shrink after growth in %v", steers)
		}
		if d > 0 {
			sawGrowth = true
		}
	}
}

func TestEngineMaxNeverResplits(t *testing.T) {
	e := NewEngine()
	spec := Spec{Owner: 1, QID: 1, Kind: Max, Delta: 4, Keys: []int{0, 1}}
	e.Register(spec, 9, []interval.Interval{iv(0, 2), iv(5, 7)}, []float64{1, 6})
	for i := 0; i < 4*resplitEvery; i++ {
		if _, _, steers := e.Observe(9, 0, iv(float64(i), float64(i+1)), float64(i), true); len(steers) != 0 {
			t.Fatalf("MAX query produced steers %v", steers)
		}
	}
}

// TestCQAllocBudget locks in the steady-state allocation budget of the
// engine hot path: once a query is registered and warm, Observe allocates
// nothing — it runs under the server's connection registry lock on every
// escaped refresh. CI runs this with the other allocation-regression gates.
func TestCQAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	e := NewEngine()
	keys := make([]int, 64)
	seeds := make([]interval.Interval, 64)
	vals := make([]float64, 64)
	for i := range keys {
		keys[i], seeds[i], vals[i] = i, iv(float64(i), float64(i+1)), float64(i)
	}
	e.Register(Spec{Owner: 1, QID: 1, Kind: Sum, Delta: 64, Keys: keys}, 7, seeds, vals)
	i := 0
	if n := testing.AllocsPerRun(2000, func() {
		i++
		k := i % 64
		// allowSteer=false isolates the per-refresh path; re-splits are
		// amortized over resplitEvery observations and allocate their
		// steer slice by design.
		e.Observe(7, k, iv(float64(i), float64(i+1)), float64(i), false)
	}); n != 0 {
		t.Errorf("Observe: %v allocs/op, want 0", n)
	}
}
