// Package cq implements the server-side continuous-query engine: standing
// bounded aggregates (SUM/AVG/MAX/MIN over a key set, precision budget
// Delta) maintained incrementally off the refresh push path.
//
// Each registered query acts as one more cache client inside the server: it
// holds its own per-key width-policy subscriptions (under an
// engine-allocated cache ID), so the paper's adaptive controllers keep
// working unchanged one level down. The engine adds the level above — it
// splits Delta into per-key width caps, folds every refresh that escapes a
// cap-clamped interval into a running aggregate (O(1) for SUM/AVG, winner
// trees for MAX/MIN), emits an update only when the answer interval
// actually changes, and re-splits the budget adaptively as observed
// refresh rates shift, steering wide shares to hot keys.
package cq

import (
	"math"
	"sort"
	"sync"

	"apcache/internal/interval"
)

// AggKind selects a query's aggregate. The numbering mirrors
// netproto.AggKind and workload.AggKind, so the three translate one-to-one.
type AggKind uint8

// Aggregates a query may request.
const (
	Sum AggKind = iota
	Max
	Min
	Avg
)

// Spec describes one standing query.
type Spec struct {
	// Owner is the connection the query belongs to; updates carry it back
	// so the server can route them without a reverse index.
	Owner int
	// QID is the client-chosen handle, unique within the owner.
	QID uint64
	// Kind selects the aggregate.
	Kind AggKind
	// Delta is the precision budget: the answer interval's width never
	// exceeds it.
	Delta float64
	// Keys is the aggregated key set, distinct.
	Keys []int
}

// Update is one change to a standing query's answer, addressed to its
// owning connection.
type Update struct {
	Owner int
	QID   uint64
	Value float64
	Iv    interval.Interval
}

// Steer directs one key's width cap at Target for the query's subscription
// (CacheID). The server applies it by re-capping the source subscription
// and force-reading the key when its current width exceeds Target. Steers
// are ordered shrinks-first so the budget invariant (cap sum <= Delta)
// holds at every instant of a gradual application.
type Steer struct {
	CacheID int
	Key     int
	Target  float64
}

// Budget re-splitting parameters: a query re-splits after resplitEvery
// observed refreshes, rate EWMAs mix half old/half new per window,
// rateFloor keeps cold keys alive, and a re-split is applied only when
// some share moved by more than steerMinRel.
const (
	resplitEvery = 64
	rateFloor    = 1.0 / 64
	steerMinRel  = 0.10
)

// InitialTarget returns the equal-split per-key width target a newly
// registered query starts from: Delta/n for SUM (the Minkowski sum of the
// widths must stay within Delta), and Delta per key for AVG (whose answer
// width is the mean of the per-key widths) and MAX/MIN (whose answer width
// is at most the widest single interval).
func InitialTarget(kind AggKind, delta float64, n int) float64 {
	if kind == Sum && n > 0 {
		return delta / float64(n)
	}
	return delta
}

// query is the engine-side state of one registered standing query.
type query struct {
	spec    Spec
	cacheID int
	idx     map[int]int
	pipe    *Pipeline
	answer  interval.Interval
	value   float64

	// Budget state, slot-indexed like spec.Keys.
	targets []float64
	counts  []float64
	rates   []float64
	scores  []float64
	events  int

	emits []Item // Observe scratch
}

// Engine maintains every registered standing query. All methods are safe
// for concurrent use; the caller's lock order is shard mutex → Engine
// (Observe runs under the updated key's shard lock) → connection registry.
type Engine struct {
	mu      sync.Mutex
	byCache map[int]*query
	byOwner map[int]map[uint64]*query
}

// NewEngine returns an empty engine.
func NewEngine() *Engine {
	return &Engine{
		byCache: make(map[int]*query),
		byOwner: make(map[int]map[uint64]*query),
	}
}

// Queries returns the number of registered standing queries.
func (e *Engine) Queries() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.byCache)
}

// Register installs a standing query under the server-allocated cacheID.
// ivs[i] and vals[i] seed key spec.Keys[i]'s current approximation (the
// caller subscribes and reads the keys first, under their shard locks).
// It replaces any previous query with the same (Owner, QID); replaced
// reports that, carrying the old query's cacheID and keys for the caller
// to unsubscribe. The returned Update is the registration's initial
// answer.
func (e *Engine) Register(spec Spec, cacheID int, ivs []interval.Interval, vals []float64) (up Update, replaced Dropped, wasReplaced bool) {
	q := &query{
		spec:    spec,
		cacheID: cacheID,
		idx:     make(map[int]int, len(spec.Keys)),
		targets: make([]float64, len(spec.Keys)),
		counts:  make([]float64, len(spec.Keys)),
		rates:   make([]float64, len(spec.Keys)),
		scores:  make([]float64, len(spec.Keys)),
	}
	t0 := InitialTarget(spec.Kind, spec.Delta, len(spec.Keys))
	for i, k := range spec.Keys {
		q.idx[k] = i
		q.targets[i] = t0
	}
	q.pipe = NewPipeline(FilterKeys(spec.Keys), &Aggregate{Agg: newAggregator(spec.Kind)})
	for i, k := range spec.Keys {
		// Fold each seed's emissions as it lands: the aggregate emits only
		// on answer change, so an extreme whose champion arrived early
		// pushes nothing for the later seeds — reading only the last
		// push's emissions would seed a zero answer.
		q.emits = q.pipe.Push(Item{Key: k, Iv: ivs[i], Val: vals[i]}, q.emits[:0])
		for _, it := range q.emits {
			q.answer, q.value = it.Iv, it.Val
		}
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	owned := e.byOwner[spec.Owner]
	if owned == nil {
		owned = make(map[uint64]*query)
		e.byOwner[spec.Owner] = owned
	}
	if old := owned[spec.QID]; old != nil {
		delete(e.byCache, old.cacheID)
		replaced = Dropped{CacheID: old.cacheID, Keys: old.spec.Keys}
		wasReplaced = true
	}
	owned[spec.QID] = q
	e.byCache[cacheID] = q
	return Update{Owner: spec.Owner, QID: spec.QID, Value: q.value, Iv: q.answer}, replaced, wasReplaced
}

func newAggregator(kind AggKind) Aggregator {
	switch kind {
	case Max:
		return NewMax()
	case Min:
		return NewMin()
	case Avg:
		return NewAvg()
	default:
		return NewSum()
	}
}

// Dropped names a torn-down query's source-side footprint: the cache ID its
// subscriptions were installed under and the keys they cover.
type Dropped struct {
	CacheID int
	Keys    []int
}

// Unregister removes the owner's query qid, reporting its footprint for
// the caller to unsubscribe.
func (e *Engine) Unregister(owner int, qid uint64) (Dropped, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	q := e.byOwner[owner][qid]
	if q == nil {
		return Dropped{}, false
	}
	delete(e.byOwner[owner], qid)
	if len(e.byOwner[owner]) == 0 {
		delete(e.byOwner, owner)
	}
	delete(e.byCache, q.cacheID)
	return Dropped{CacheID: q.cacheID, Keys: q.spec.Keys}, true
}

// DropOwner removes every query owned by the connection, returning their
// footprints; the server calls it from connection teardown.
func (e *Engine) DropOwner(owner int) []Dropped {
	e.mu.Lock()
	defer e.mu.Unlock()
	owned := e.byOwner[owner]
	if len(owned) == 0 {
		return nil
	}
	out := make([]Dropped, 0, len(owned))
	for _, q := range owned {
		delete(e.byCache, q.cacheID)
		out = append(out, Dropped{CacheID: q.cacheID, Keys: q.spec.Keys})
	}
	delete(e.byOwner, owner)
	return out
}

// Observe folds one refresh addressed to cacheID into its query: the
// engine recomputes the aggregate incrementally and reports whether the
// answer changed (emit) along with the update to push. When allowSteer is
// set and the query's re-split window has elapsed, steers carries the new
// per-key width caps for the caller to apply after releasing its shard
// lock (shrinks first); callers re-observing the refreshes those
// applications cause must pass allowSteer=false to bound the recursion.
// Refreshes whose cacheID is no registered query are ignored.
func (e *Engine) Observe(cacheID, key int, iv interval.Interval, val float64, allowSteer bool) (up Update, emit bool, steers []Steer) {
	e.mu.Lock()
	defer e.mu.Unlock()
	q := e.byCache[cacheID]
	if q == nil {
		return Update{}, false, nil
	}
	if i, ok := q.idx[key]; ok {
		q.counts[i]++
	}
	q.emits = q.pipe.Push(Item{Key: key, Iv: iv, Val: val}, q.emits[:0])
	for _, it := range q.emits {
		q.answer, q.value = it.Iv, it.Val
		up = Update{Owner: q.spec.Owner, QID: q.spec.QID, Value: it.Val, Iv: it.Iv}
		emit = true
	}
	q.events++
	if allowSteer && q.events >= resplitEvery {
		steers = q.resplit()
	}
	return up, emit, steers
}

// Answer returns the query's current answer, for tests and stats.
func (e *Engine) Answer(owner int, qid uint64) (interval.Interval, float64, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	q := e.byOwner[owner][qid]
	if q == nil {
		return interval.Interval{}, 0, false
	}
	return q.answer, q.value, true
}

// Targets returns a copy of the query's current per-key width targets in
// spec.Keys order, for tests and stats.
func (e *Engine) Targets(owner int, qid uint64) ([]float64, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	q := e.byOwner[owner][qid]
	if q == nil {
		return nil, false
	}
	out := make([]float64, len(q.targets))
	copy(out, q.targets)
	return out, true
}

// resplit re-divides the query's budget across its keys from the refresh
// rates observed since the last window.
//
// For a random-walk value with step variance sigma^2 cached at width w, the
// escape (refresh) rate scales as sigma^2/w^2; from the observed count c at
// the current width the engine infers sigma^2 ∝ c·w^2, and minimizing the
// total refresh rate subject to the width budget gives the optimum
// w ∝ (c·w^2)^(1/3) — hot keys earn wide shares, quiet keys lend theirs.
// MAX/MIN queries never re-split: a flat Delta per key already meets the
// budget, and narrowing one key cannot loosen another's requirement.
func (q *query) resplit() []Steer {
	q.events = 0
	if q.spec.Kind == Max || q.spec.Kind == Min {
		return nil
	}
	n := len(q.targets)
	total := 0.0
	for i := range q.rates {
		q.rates[i] = 0.5*q.rates[i] + 0.5*q.counts[i]
		q.counts[i] = 0
		q.scores[i] = math.Cbrt((q.rates[i] + rateFloor) * q.targets[i] * q.targets[i])
		total += q.scores[i]
	}
	if total <= 0 || math.IsNaN(total) || math.IsInf(total, 0) {
		return nil
	}
	budget := q.spec.Delta
	if q.spec.Kind == Avg {
		budget *= float64(n)
	}
	changed := false
	for i := range q.scores {
		t := budget * q.scores[i] / total
		if d := math.Abs(t - q.targets[i]); d > steerMinRel*q.targets[i] {
			changed = true
		}
		q.scores[i] = t
	}
	if !changed {
		return nil
	}
	// Steer every key, not just the movers: a partial application would
	// break the cap-sum invariant. Shrinks first (most negative move
	// first), so the sum of applied caps never exceeds the budget at any
	// instant of a gradual application.
	type move struct {
		s     Steer
		delta float64
	}
	moves := make([]move, 0, n)
	for i, k := range q.spec.Keys {
		moves = append(moves, move{
			s:     Steer{CacheID: q.cacheID, Key: k, Target: q.scores[i]},
			delta: q.scores[i] - q.targets[i],
		})
		q.targets[i] = q.scores[i]
	}
	sort.Slice(moves, func(a, b int) bool { return moves[a].delta < moves[b].delta })
	steers := make([]Steer, 0, n)
	for _, m := range moves {
		steers = append(steers, m.s)
	}
	return steers
}
