package trace

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV serializes the trace with one row per second and one column per
// host; the header row names hosts host0..hostN-1.
func (tr *Trace) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	cw := csv.NewWriter(bw)
	header := make([]string, tr.Hosts())
	for h := range header {
		header[h] = fmt.Sprintf("host%d", h)
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	row := make([]string, tr.Hosts())
	for t := 0; t < tr.Duration(); t++ {
		for h := 0; h < tr.Hosts(); h++ {
			row[h] = strconv.FormatFloat(tr.Series[h][t], 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: write row %d: %w", t, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("trace: flush: %w", err)
	}
	return bw.Flush()
}

// ReadCSV parses a trace written by WriteCSV.
func ReadCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: read header: %w", err)
	}
	hosts := len(header)
	if hosts == 0 {
		return nil, fmt.Errorf("trace: empty header")
	}
	tr := &Trace{Series: make([][]float64, hosts)}
	t := 0
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: read row %d: %w", t, err)
		}
		if len(row) != hosts {
			return nil, fmt.Errorf("trace: row %d has %d columns, want %d", t, len(row), hosts)
		}
		for h, cell := range row {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, fmt.Errorf("trace: row %d host %d: %w", t, h, err)
			}
			tr.Series[h] = append(tr.Series[h], v)
		}
		t++
	}
	if t == 0 {
		return nil, fmt.Errorf("trace: no samples")
	}
	return tr, nil
}
