package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func smallConfig(seed int64) Config {
	return Config{Hosts: 8, Duration: 600, Window: 60, MaxRate: DefaultMaxRate, Seed: seed}
}

func TestGenerateShape(t *testing.T) {
	tr, err := Generate(smallConfig(1))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if tr.Hosts() != 8 {
		t.Fatalf("Hosts = %d", tr.Hosts())
	}
	if tr.Duration() != 600 {
		t.Fatalf("Duration = %d", tr.Duration())
	}
	for h := 0; h < tr.Hosts(); h++ {
		for _, v := range tr.Host(h) {
			if v < 0 || v > DefaultMaxRate || math.IsNaN(v) {
				t.Fatalf("host %d sample %g out of [0, %g]", h, v, DefaultMaxRate)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	for h := range a.Series {
		for i := range a.Series[h] {
			if a.Series[h][i] != b.Series[h][i] {
				t.Fatalf("trace differs at host %d sample %d", h, i)
			}
		}
	}
	c, err := Generate(smallConfig(43))
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for h := range a.Series {
		for i := range a.Series[h] {
			if a.Series[h][i] != c.Series[h][i] {
				same = false
			}
		}
	}
	if same {
		t.Errorf("different seeds produced identical traces")
	}
}

func TestGenerateHasBursts(t *testing.T) {
	// The defining property: hosts alternate between inactivity and
	// activity (Figures 4-5 show a host "became active after a period of
	// inactivity"). Check at least one host has both a zero-traffic second
	// and a substantial one.
	tr, err := Generate(Config{Hosts: 20, Duration: 2000, Window: 60, MaxRate: DefaultMaxRate, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for h := 0; h < tr.Hosts(); h++ {
		s := tr.Host(h)
		var hasZero, hasBig bool
		var peak float64
		for _, v := range s {
			if v == 0 {
				hasZero = true
			}
			if v > peak {
				peak = v
			}
		}
		hasBig = peak > 1000
		if hasZero && hasBig {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("no host exhibits idle/burst alternation")
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig(1)
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{Hosts: 0, Duration: 10, Window: 5, MaxRate: 1},
		{Hosts: 1, Duration: 0, Window: 5, MaxRate: 1},
		{Hosts: 1, Duration: 10, Window: 0, MaxRate: 1},
		{Hosts: 1, Duration: 10, Window: 20, MaxRate: 1},
		{Hosts: 1, Duration: 10, Window: 5, MaxRate: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d validated: %+v", i, c)
		}
		if _, err := Generate(c); err == nil {
			t.Errorf("Generate accepted config %d", i)
		}
	}
}

func TestMovingAverage(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	got := MovingAverage(xs, 2)
	want := []float64{1, 1.5, 2.5, 3.5, 4.5}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("MA[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	// Window 1 is the identity.
	id := MovingAverage(xs, 1)
	for i := range xs {
		if id[i] != xs[i] {
			t.Errorf("window-1 MA changed sample %d", i)
		}
	}
	// Window larger than series: prefix averages.
	big := MovingAverage([]float64{2, 4}, 10)
	if big[0] != 2 || big[1] != 3 {
		t.Errorf("large-window MA = %v", big)
	}
	defer func() {
		if recover() == nil {
			t.Errorf("window 0 did not panic")
		}
	}()
	MovingAverage(xs, 0)
}

func TestMovingAverageSmooths(t *testing.T) {
	// A spike of height 60 smoothed over 60 seconds contributes at most 1
	// per averaged sample more than its neighbours' baseline.
	xs := make([]float64, 200)
	xs[100] = 60
	out := MovingAverage(xs, 60)
	for i, v := range out {
		if v > 1+1e-9 {
			t.Fatalf("MA[%d] = %g, want <= 1", i, v)
		}
	}
	if out[100] != 1 {
		t.Errorf("MA at spike = %g, want 1", out[100])
	}
}

func TestTopN(t *testing.T) {
	tr := &Trace{Series: [][]float64{
		{1, 1}, // total 2
		{5, 5}, // total 10
		{3, 3}, // total 6
	}}
	top := tr.TopN(2)
	if top.Hosts() != 2 {
		t.Fatalf("TopN(2).Hosts = %d", top.Hosts())
	}
	if top.Series[0][0] != 5 || top.Series[1][0] != 3 {
		t.Errorf("TopN order wrong: %v", top.Series)
	}
	defer func() {
		if recover() == nil {
			t.Errorf("TopN(0) did not panic")
		}
	}()
	tr.TopN(0)
}

func TestTotals(t *testing.T) {
	tr := &Trace{Series: [][]float64{{1, 2, 3}, {10, 0, 0}}}
	got := tr.Totals()
	if got[0] != 6 || got[1] != 10 {
		t.Errorf("Totals = %v", got)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	orig, err := Generate(Config{Hosts: 3, Duration: 100, Window: 10, MaxRate: 1000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if back.Hosts() != orig.Hosts() || back.Duration() != orig.Duration() {
		t.Fatalf("shape mismatch: %dx%d vs %dx%d", back.Hosts(), back.Duration(), orig.Hosts(), orig.Duration())
	}
	for h := range orig.Series {
		for i := range orig.Series[h] {
			if back.Series[h][i] != orig.Series[h][i] {
				t.Fatalf("sample mismatch host %d t %d: %g vs %g", h, i, back.Series[h][i], orig.Series[h][i])
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",                      // no header
		"host0\n",               // header only, no samples
		"host0,host1\n1.0\n",    // short row
		"host0\nnot-a-number\n", // bad float
	}
	for i, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: ReadCSV accepted %q", i, in)
		}
	}
}

func TestEmptyTraceAccessors(t *testing.T) {
	tr := &Trace{}
	if tr.Hosts() != 0 || tr.Duration() != 0 {
		t.Errorf("empty trace: %d hosts, %d duration", tr.Hosts(), tr.Duration())
	}
}

func TestQuickMovingAverageBounds(t *testing.T) {
	f := func(raw []uint16, wRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		w := int(wRaw)%32 + 1
		xs := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, r := range raw {
			xs[i] = float64(r)
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		for _, v := range MovingAverage(xs, w) {
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMovingAveragePreservesMass(t *testing.T) {
	// With window 1 the MA is the identity, so total mass is preserved.
	f := func(raw []uint8) bool {
		xs := make([]float64, len(raw))
		var want float64
		for i, r := range raw {
			xs[i] = float64(r)
			want += xs[i]
		}
		var got float64
		for _, v := range MovingAverage(xs, 1) {
			got += v
		}
		return math.Abs(got-want) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
