// Package trace provides the network-monitoring data substrate for the
// performance study. The paper used the publicly available Paxson/Floyd
// wide-area traffic traces [PF95]: per-host traffic levels over a two-hour
// period, sampled every second as a one-minute moving-window average, with
// the 50 most heavily trafficked hosts selected (levels 0 to 5.2e6 B/s).
//
// Those traces are not redistributable here, so this package synthesizes the
// closest equivalent the algorithm can observe: bursty on/off traffic with
// heavy-tailed burst durations (the defining property Paxson and Floyd
// report — wide-area traffic is not Poisson), smoothed by the same 60 s
// moving window, with the same host count, duration, sampling interval and
// magnitude range. Generation is deterministic given the seed.
package trace

import (
	"fmt"
	"math"
	"math/rand"
)

// DefaultMaxRate matches the paper's reported peak traffic level of
// 5.2e6 bytes per second.
const DefaultMaxRate = 5.2e6

// Config controls synthetic trace generation.
type Config struct {
	// Hosts is the number of simulated hosts (the paper uses 50).
	Hosts int
	// Duration is the trace length in seconds (the paper uses two hours).
	Duration int
	// Window is the moving-average window in seconds (the paper uses one
	// minute).
	Window int
	// MaxRate caps the per-host instantaneous rate in bytes/second.
	MaxRate float64
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultConfig mirrors the paper's data set shape: 50 hosts, 7200 seconds,
// 60-second window, 5.2e6 B/s ceiling.
func DefaultConfig(seed int64) Config {
	return Config{Hosts: 50, Duration: 7200, Window: 60, MaxRate: DefaultMaxRate, Seed: seed}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.Hosts <= 0:
		return fmt.Errorf("trace: Hosts must be positive, got %d", c.Hosts)
	case c.Duration <= 0:
		return fmt.Errorf("trace: Duration must be positive, got %d", c.Duration)
	case c.Window <= 0 || c.Window > c.Duration:
		return fmt.Errorf("trace: Window %d out of range 1..%d", c.Window, c.Duration)
	case c.MaxRate <= 0 || math.IsNaN(c.MaxRate):
		return fmt.Errorf("trace: MaxRate must be positive, got %g", c.MaxRate)
	}
	return nil
}

// Trace holds per-host traffic level series at one-second resolution.
type Trace struct {
	// Series[h][t] is host h's smoothed traffic level at second t.
	Series [][]float64
}

// Hosts returns the number of hosts.
func (tr *Trace) Hosts() int { return len(tr.Series) }

// Duration returns the number of per-host samples.
func (tr *Trace) Duration() int {
	if len(tr.Series) == 0 {
		return 0
	}
	return len(tr.Series[0])
}

// Host returns host h's series.
func (tr *Trace) Host(h int) []float64 { return tr.Series[h] }

// Totals returns each host's total traffic, used for top-N selection.
func (tr *Trace) Totals() []float64 {
	totals := make([]float64, len(tr.Series))
	for h, s := range tr.Series {
		for _, v := range s {
			totals[h] += v
		}
	}
	return totals
}

// TopN returns a new trace containing the n most heavily trafficked hosts
// ("we picked the 50 most heavily trafficked hosts as our simulated data
// sources"). Order is by decreasing total traffic.
func (tr *Trace) TopN(n int) *Trace {
	if n <= 0 || n > tr.Hosts() {
		panic(fmt.Sprintf("trace: TopN(%d) out of range 1..%d", n, tr.Hosts()))
	}
	totals := tr.Totals()
	order := make([]int, len(totals))
	for i := range order {
		order[i] = i
	}
	// Selection by repeated max keeps this dependency-free and is fine for
	// tens of hosts.
	for i := 0; i < n; i++ {
		best := i
		for j := i + 1; j < len(order); j++ {
			if totals[order[j]] > totals[order[best]] {
				best = j
			}
		}
		order[i], order[best] = order[best], order[i]
	}
	out := &Trace{Series: make([][]float64, n)}
	for i := 0; i < n; i++ {
		out.Series[i] = tr.Series[order[i]]
	}
	return out
}

// Generate synthesizes a trace per the configuration. Each host alternates
// idle and burst periods; burst durations are Pareto-distributed (heavy
// tail), idle durations geometric, and burst intensity varies by host and by
// burst. The instantaneous rate sequence is then smoothed with the
// Window-second moving average, matching the paper's "one minute moving
// window average of network traffic every second".
func Generate(cfg Config) (*Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	tr := &Trace{Series: make([][]float64, cfg.Hosts)}
	for h := 0; h < cfg.Hosts; h++ {
		raw := generateHost(cfg, rng)
		smoothed := MovingAverage(raw, cfg.Window)
		// The running-sum moving average can leave tiny negative residue
		// on all-zero stretches; traffic levels are nonnegative.
		for i, v := range smoothed {
			if v < 0 {
				smoothed[i] = 0
			}
		}
		tr.Series[h] = smoothed
	}
	return tr, nil
}

// generateHost produces one host's instantaneous per-second rates as a
// superposition of on/off flows with heavy-tailed (Pareto) on-durations —
// the structural explanation Paxson and Floyd give for wide-area traffic
// being self-similar rather than Poisson. With several flows per host, a
// heavily trafficked host fluctuates nearly every second (as the paper's
// top-50 hosts do) while still exhibiting occasional full lulls and abrupt
// activations (the transitions visible in Figures 4-5).
func generateHost(cfg Config, rng *rand.Rand) []float64 {
	raw := make([]float64, cfg.Duration)
	// Host personality: activity level spans orders of magnitude so top-N
	// selection is meaningful, mimicking the skew of real host traffic.
	hostScale := cfg.MaxRate * math.Pow(rng.Float64(), 2.5)
	const flows = 4
	for f := 0; f < flows; f++ {
		meanOff := 60 + rng.Float64()*240 // seconds
		t := int(rng.Float64() * 60)      // stagger flow starts
		for t < cfg.Duration {
			// Off period: geometric with the flow's mean.
			off := 1 + int(-meanOff*math.Log(1-rng.Float64()))
			t += off
			if t >= cfg.Duration {
				break
			}
			// On period: Pareto(xm=15, alpha=1.3) — the heavy tail.
			dur := int(15 * math.Pow(1-rng.Float64(), -1/1.3))
			if dur < 1 {
				dur = 1
			}
			// Flow intensity with per-second jitter.
			level := hostScale / flows * (0.3 + 0.7*rng.Float64())
			for i := 0; i < dur && t < cfg.Duration; i, t = i+1, t+1 {
				raw[t] += level * (0.7 + 0.6*rng.Float64())
			}
		}
	}
	for i := range raw {
		if raw[i] > cfg.MaxRate {
			raw[i] = cfg.MaxRate
		}
	}
	return raw
}

// MovingAverage returns the trailing w-sample moving average of xs: out[t]
// averages xs[max(0,t-w+1)..t]. The result has the same length as the input.
func MovingAverage(xs []float64, w int) []float64 {
	if w <= 0 {
		panic("trace: window must be positive")
	}
	out := make([]float64, len(xs))
	var sum float64
	for t := range xs {
		sum += xs[t]
		if t >= w {
			sum -= xs[t-w]
		}
		n := t + 1
		if n > w {
			n = w
		}
		out[t] = sum / float64(n)
	}
	return out
}
