// Package aperrs defines the typed error taxonomy shared by every layer of
// the system — the in-process Store, the networked client and server, and
// the wire protocol. The sentinels here are re-exported by the root apcache
// package; internal packages import this one so the same identities flow
// through errors.Is/As whether a failure happened in-process or was decoded
// off a wire frame.
package aperrs

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Sentinel errors of the public API. Match with errors.Is; the concrete
// error types below carry the structured detail for errors.As.
var (
	// ErrUnknownKey reports an operation on a key the source does not host.
	// Concrete instances are *KeyError values carrying the key.
	ErrUnknownKey = errors.New("apcache: unknown key")
	// ErrClosed reports an operation on a closed client, server, or watch.
	ErrClosed = errors.New("apcache: closed")
	// ErrTimeout reports a call abandoned by the client's default deadline
	// (see Client.SetTimeout). Concrete instances are *TimeoutError values
	// and also match context.DeadlineExceeded, so callers can treat default
	// and per-context deadlines uniformly.
	ErrTimeout = errors.New("apcache: timeout")
	// ErrBatchTooLarge reports a frame whose batch payload exceeds the wire
	// protocol's per-frame item limit.
	ErrBatchTooLarge = errors.New("apcache: batch too large")
	// ErrConnLost reports a call failed by a transport failure: the
	// connection died underneath it, or was still down when the call
	// started. Concrete instances are *ConnLostError values carrying the
	// transport cause. The condition is transient when the client
	// reconnects automatically (see the client's ReconnectPolicy), so
	// callers should errors.Is for this sentinel and retry.
	ErrConnLost = errors.New("apcache: connection lost")
	// ErrSnapshotVersion reports a snapshot written by a newer format
	// version than this binary understands. Concrete instances are
	// *SnapshotVersionError values carrying both versions. Distinct from
	// corruption: the file is fine, the reader is old — upgrade it rather
	// than discarding the state.
	ErrSnapshotVersion = errors.New("apcache: snapshot version unsupported")
	// ErrQueryUnsupported reports a continuous-query registration against
	// a peer that did not negotiate protocol v4. Raised locally by the
	// client library — sending the frame would tear down the connection on
	// an unknown frame type — and also when a reconnect renegotiates the
	// session below v4, failing the standing query's watch stream.
	ErrQueryUnsupported = errors.New("apcache: continuous queries unsupported by peer")
)

// KeyError is the concrete unknown-key failure: it carries the offending
// key and matches ErrUnknownKey under errors.Is.
type KeyError struct {
	Key int
}

func (e *KeyError) Error() string { return fmt.Sprintf("apcache: unknown key %d", e.Key) }

// Is matches the ErrUnknownKey sentinel.
func (e *KeyError) Is(target error) bool { return target == ErrUnknownKey }

// UnknownKey returns the typed unknown-key error for key.
func UnknownKey(key int) error { return &KeyError{Key: key} }

// TimeoutError is the concrete default-deadline failure: it records the
// deadline that expired and matches both ErrTimeout and
// context.DeadlineExceeded under errors.Is.
type TimeoutError struct {
	After time.Duration
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("apcache: request timed out after %v", e.After)
}

// Is matches ErrTimeout and context.DeadlineExceeded.
func (e *TimeoutError) Is(target error) bool {
	return target == ErrTimeout || target == context.DeadlineExceeded
}

// ConnLostError is the concrete connection-loss failure: it matches
// ErrConnLost under errors.Is and carries the underlying transport error
// (reachable through errors.Unwrap/As) for diagnostics.
type ConnLostError struct {
	Cause error
}

func (e *ConnLostError) Error() string {
	if e.Cause == nil {
		return "apcache: connection lost"
	}
	return "apcache: connection lost: " + e.Cause.Error()
}

// Is matches the ErrConnLost sentinel.
func (e *ConnLostError) Is(target error) bool { return target == ErrConnLost }

// Unwrap exposes the transport cause.
func (e *ConnLostError) Unwrap() error { return e.Cause }

// ConnLost wraps a transport failure into the typed connection-loss error.
func ConnLost(cause error) error { return &ConnLostError{Cause: cause} }

// SnapshotVersionError is the concrete newer-snapshot failure: a snapshot
// claims format version Got but this binary only understands up to Max. It
// matches ErrSnapshotVersion under errors.Is.
type SnapshotVersionError struct {
	Got, Max int
}

func (e *SnapshotVersionError) Error() string {
	return fmt.Sprintf("apcache: snapshot version %d newer than supported %d", e.Got, e.Max)
}

// Is matches the ErrSnapshotVersion sentinel.
func (e *SnapshotVersionError) Is(target error) bool { return target == ErrSnapshotVersion }

// SnapshotVersion returns the typed newer-snapshot error.
func SnapshotVersion(got, max int) error { return &SnapshotVersionError{Got: got, Max: max} }
