package query

import (
	"context"
	"errors"
	"testing"

	"apcache/internal/interval"
	"apcache/internal/workload"
)

// cancelAfter returns a BatchFetch that cancels ctx after n calls, plus a
// counter of rounds actually issued.
func cancelAfter(cancel context.CancelFunc, n int, rounds *int) BatchFetch {
	return func(keys []int) []float64 {
		*rounds++
		if *rounds >= n {
			cancel()
		}
		out := make([]float64, len(keys))
		for i, k := range keys {
			out[i] = float64(k)
		}
		return out
	}
}

func TestExecuteBatchRampCtxStopsMidRamp(t *testing.T) {
	// 64 uncached keys, MAX, delta 0, ramp 1: one key per round, 64 rounds
	// uncancelled. Cancelling inside round 2 must stop the refinement
	// before round 3 is issued.
	keys := make([]int, 64)
	for i := range keys {
		keys[i] = i
	}
	none := func(int) (interval.Interval, bool) { return interval.Interval{}, false }
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rounds := 0
	_, err := ExecuteBatchRampCtx(ctx, workload.Query{Kind: workload.Max, Keys: keys, Delta: 0},
		none, cancelAfter(cancel, 2, &rounds), 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rounds != 2 {
		t.Errorf("refinement issued %d rounds after cancel-in-round-2, want exactly 2", rounds)
	}
}

func TestExecuteCtxSumCancelledBeforeFetch(t *testing.T) {
	keys := []int{0, 1, 2}
	none := func(int) (interval.Interval, bool) { return interval.Interval{}, false }
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	fetched := 0
	_, err := ExecuteCtx(ctx, workload.Query{Kind: workload.Sum, Keys: keys, Delta: 0},
		none, func(k int) float64 { fetched++; return 0 })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if fetched != 0 {
		t.Errorf("cancelled SUM still fetched %d keys", fetched)
	}
}

func TestExecuteCtxBackgroundMatchesExecute(t *testing.T) {
	keys := []int{3, 1, 2}
	get := func(k int) (interval.Interval, bool) {
		return interval.Interval{Lo: float64(k) - 1, Hi: float64(k) + 1}, true
	}
	fetch := func(k int) float64 { return float64(k) }
	want := Execute(workload.Query{Kind: workload.Max, Keys: keys, Delta: 0}, get, fetch)
	got, err := ExecuteCtx(context.Background(), workload.Query{Kind: workload.Max, Keys: keys, Delta: 0}, get, fetch)
	if err != nil {
		t.Fatal(err)
	}
	if got.Result != want.Result || len(got.Refreshed) != len(want.Refreshed) {
		t.Errorf("ExecuteCtx = %+v, Execute = %+v", got, want)
	}
}
