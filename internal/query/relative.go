package query

import (
	"fmt"
	"math"

	"apcache/internal/interval"
	"apcache/internal/workload"
)

// This file extends the bounded-aggregate processor with the two query
// capabilities the paper defers to future work: relative precision
// constraints (footnote 1: "Converting relative precision constraints to
// absolute ones is discussed in [OW00, YV00]") and bounded threshold
// (selection) queries over interval data.

// ExecuteRelative runs a bounded-aggregate query whose constraint is
// relative: the result interval's width must be at most rel * |estimate|,
// where the estimate is the result's midpoint. Because the acceptable
// absolute width depends on the answer itself, the processor iterates:
// execute with the absolute constraint implied by the current estimate,
// re-derive the estimate, and repeat until the constraint stabilizes (it
// tightens monotonically, so the loop terminates — each round either
// accepts the current answer or fetches at least one more exact value).
//
// rel must be in [0, 1); rel = 0 demands an exact answer. A result whose
// estimate is 0 also degenerates to an exact answer, as no nonzero width
// can satisfy width <= 0.
func ExecuteRelative(kind workload.AggKind, keys []int, rel float64, get Lookup, fetch Fetch) Answer {
	if rel < 0 || rel >= 1 || math.IsNaN(rel) {
		panic(fmt.Sprintf("query: relative constraint %g out of [0, 1)", rel))
	}
	// Fetches must be idempotent within one query execution: wrap fetch
	// with a memo so iterations never re-fetch (and re-charge) a key.
	memo := make(map[int]float64)
	var order []int
	mfetch := func(key int) float64 {
		if v, ok := memo[key]; ok {
			return v
		}
		v := fetch(key)
		memo[key] = v
		order = append(order, key)
		return v
	}
	mget := func(key int) (interval.Interval, bool) {
		if v, ok := memo[key]; ok {
			return interval.Exact(v), true
		}
		return get(key)
	}
	// Start from the loosest reading: the all-cache answer.
	ans := Execute(workload.Query{Kind: kind, Keys: keys, Delta: math.Inf(1)}, mget, mfetch)
	for i := 0; i < len(keys)+1; i++ {
		target := rel * math.Abs(ans.Estimate())
		if math.IsNaN(target) {
			// Unbounded or half-bounded answer: no estimate exists yet;
			// demand exactness for this round.
			target = 0
		}
		if !ans.Result.IsUnbounded() && ans.Result.Width() <= target {
			break
		}
		prevFetches := len(order)
		ans = Execute(workload.Query{Kind: kind, Keys: keys, Delta: target}, mget, mfetch)
		if len(order) == prevFetches {
			// Nothing further to fetch: the answer is as exact as it gets.
			break
		}
	}
	ans.Refreshed = append([]int(nil), order...)
	return ans
}

// ThresholdResult classifies keys against a threshold using only interval
// endpoints plus the fetches needed to respect the ambiguity budget.
type ThresholdResult struct {
	// Above holds keys whose value is certainly > the threshold.
	Above []int
	// Below holds keys whose value is certainly <= the threshold.
	Below []int
	// Uncertain holds keys whose interval straddles the threshold and that
	// the ambiguity budget allowed to remain unresolved.
	Uncertain []int
	// Refreshed lists the keys fetched, in fetch order.
	Refreshed []int
}

// ExecuteThreshold answers a bounded selection query: classify each key as
// above or not-above the threshold, fetching exact values until at most
// maxUncertain keys remain ambiguous. It resolves the widest straddling
// intervals first (they are the least likely to resolve on their own).
// This is the monitoring-style "which hosts exceed T" query the paper's
// motivating application implies; it uses the same candidate-elimination
// property as MAX: intervals wholly on one side of the threshold cost
// nothing.
func ExecuteThreshold(keys []int, threshold float64, maxUncertain int, get Lookup, fetch Fetch) ThresholdResult {
	if maxUncertain < 0 {
		panic("query: negative ambiguity budget")
	}
	if get == nil || fetch == nil {
		panic("query: nil Lookup or Fetch")
	}
	entries := load(keys, get)
	var res ThresholdResult
	// Collect straddlers; certain keys classify immediately.
	var straddle []int // indices into entries
	for i, e := range entries {
		switch {
		case e.iv.Lo > threshold:
			res.Above = append(res.Above, e.key)
		case e.iv.Hi <= threshold:
			res.Below = append(res.Below, e.key)
		default:
			straddle = append(straddle, i)
		}
	}
	// Resolve widest-first until within budget.
	for len(straddle) > maxUncertain {
		widest := 0
		for j := 1; j < len(straddle); j++ {
			if widthRank(entries[straddle[j]].iv) > widthRank(entries[straddle[widest]].iv) {
				widest = j
			}
		}
		i := straddle[widest]
		v := fetch(entries[i].key)
		res.Refreshed = append(res.Refreshed, entries[i].key)
		if v > threshold {
			res.Above = append(res.Above, entries[i].key)
		} else {
			res.Below = append(res.Below, entries[i].key)
		}
		straddle = append(straddle[:widest], straddle[widest+1:]...)
	}
	for _, i := range straddle {
		res.Uncertain = append(res.Uncertain, entries[i].key)
	}
	return res
}
