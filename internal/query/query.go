// Package query implements bounded-aggregate query processing over cached
// interval approximations, in the style of Olston and Widom's TRAPP system
// [OW00], which the SIGMOD 2001 study uses to generate its query load
// (Section 4.1): each query computes SUM or MAX (here also MIN and AVG) over
// a set of approximate values and carries a precision constraint delta, the
// maximum acceptable width of the result interval. If the cached intervals
// cannot meet the constraint, a subset of the values is refreshed from their
// sources (query-initiated refreshes) until the constraint is guaranteed.
//
// The refresh-set selection is the package's core: for SUM/AVG the result
// width is the (scaled) sum of the input widths, so refreshing the widest
// intervals first minimizes the number of refreshes; for MAX/MIN candidates
// are eliminated using interval endpoints, so caching non-exact intervals
// helps even for exact-answer queries (Section 4.4's observation that
// lambda1 = Inf is best for MAX even at davg = 0).
package query

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"apcache/internal/interval"
	"apcache/internal/workload"
)

// Lookup returns the cached approximation for a key. ok is false when the
// key is not cached, in which case the processor treats the approximation as
// unbounded (no information).
type Lookup func(key int) (iv interval.Interval, ok bool)

// Fetch performs a query-initiated refresh for a key and returns the exact
// value. The callee is responsible for cost accounting and for installing
// whatever new interval its width policy produces in the cache; the query
// processor uses the returned exact value directly.
type Fetch func(key int) float64

// BatchFetch performs query-initiated refreshes for a set of keys in one
// round trip, returning the exact values in key order (len(result) ==
// len(keys)). The networked client backs it with a single ReadMulti frame;
// like Fetch, the callee handles cost accounting and interval installation.
type BatchFetch func(keys []int) []float64

// Answer is the result of executing a bounded-aggregate query.
type Answer struct {
	// Result bounds the aggregate; its width is <= the query's Delta.
	Result interval.Interval
	// Refreshed lists the keys fetched from sources, in fetch order.
	Refreshed []int
}

// Estimate returns the midpoint of the result interval, the conventional
// scalar estimate.
func (a Answer) Estimate() float64 { return a.Result.Center() }

// Execute runs one bounded-aggregate query to completion: it reads the
// cached intervals, fetches exact values until the precision constraint is
// guaranteed, and returns the bounding answer. It panics on an unsupported
// aggregate kind or empty key set (programming errors, not data errors).
//
// DefaultRamp is the geometric growth factor of the batched MAX/MIN
// refinement rounds: each round fetches DefaultRamp times as many top
// candidates as the last. 2 bounds the over-fetch at about twice the minimal
// refresh set while keeping the round count O(log K).
const DefaultRamp = 2.0

// AdaptiveRamp derives the MAX/MIN refinement ramp from measured costs:
// each refinement round pays one round trip of latency plus one refresh
// cost per fetched key, so the cost-balanced ramp is 1 + rtt/cqrCost,
// clamped to [1, max] — a high-latency link over-fetches aggressively to
// save rounds, while a link whose refreshes are as expensive as its round
// trips stays near the paper-minimal one-key-per-round sequence. Both
// inputs are measurements (the connection's smoothed RTT and the refresh
// latency the source observes); with either missing the static DefaultRamp
// applies.
func AdaptiveRamp(rtt, cqrCost time.Duration, max float64) float64 {
	if rtt <= 0 || cqrCost <= 0 {
		return DefaultRamp
	}
	r := 1 + float64(rtt)/float64(cqrCost)
	if r > max {
		r = max
	}
	return r
}

// Execute fetches strictly one key at a time and refreshes the paper's
// minimal sets; ExecuteBatch is the round-trip-efficient variant for remote
// sources.
func Execute(q workload.Query, get Lookup, fetch Fetch) Answer {
	ans, _ := ExecuteCtx(context.Background(), q, get, fetch)
	return ans
}

// ExecuteCtx is Execute bounded by ctx: the processor checks for
// cancellation before every fetch, so a cancelled query stops refreshing
// mid-sequence and returns the context's error with a zero Answer. With a
// never-cancelled context it is exactly Execute.
func ExecuteCtx(ctx context.Context, q workload.Query, get Lookup, fetch Fetch) (Answer, error) {
	if fetch == nil {
		panic("query: nil Lookup or Fetch")
	}
	one := func(keys []int) []float64 {
		out := make([]float64, len(keys))
		for i, k := range keys {
			out[i] = fetch(k)
		}
		return out
	}
	return execute(ctx, q, get, one, 0)
}

// ExecuteBatch is Execute against a batched fetch path: it groups the
// refresh set into as few BatchFetch calls as possible. SUM and AVG decide
// their whole refresh set from the cached widths upfront, so they issue at
// most one call. MAX and MIN are inherently iterative (each exact value can
// eliminate remaining candidates), so they fetch in geometrically growing
// rounds — 1, 2, 4, ... top candidates per round with the DefaultRamp factor
// — which bounds the number of rounds by O(log K) while fetching at most
// about twice the minimal set.
func ExecuteBatch(q workload.Query, get Lookup, fetch BatchFetch) Answer {
	return ExecuteBatchRamp(q, get, fetch, DefaultRamp)
}

// ExecuteBatchRamp is ExecuteBatch with an explicit refinement ramp factor
// for the MAX/MIN rounds, trading round trips against over-fetching: round r
// fetches ceil(ramp^r) top candidates, so larger factors finish in fewer
// rounds but may refresh more keys past the minimal set, and ramp = 1
// reproduces the paper's one-key-per-round candidate elimination (minimal
// fetches, O(K) round trips). The factor is the knob a cost-aware policy
// tunes from the Cqr-to-RTT ratio; ramp must be >= 1. SUM and AVG are
// unaffected — their single upfront round is already minimal.
func ExecuteBatchRamp(q workload.Query, get Lookup, fetch BatchFetch, ramp float64) Answer {
	ans, _ := ExecuteBatchRampCtx(context.Background(), q, get, fetch, ramp)
	return ans
}

// ExecuteBatchRampCtx is ExecuteBatchRamp bounded by ctx. Cancellation is
// checked before every refinement round, so a cancelled MAX/MIN query stops
// mid-ramp — no further fetch rounds are issued — and returns the context's
// error with a zero Answer.
func ExecuteBatchRampCtx(ctx context.Context, q workload.Query, get Lookup, fetch BatchFetch, ramp float64) (Answer, error) {
	if fetch == nil {
		panic("query: nil Lookup or Fetch")
	}
	if ramp < 1 || math.IsNaN(ramp) || math.IsInf(ramp, 1) {
		panic(fmt.Sprintf("query: ramp factor %g outside [1, +Inf)", ramp))
	}
	return execute(ctx, q, get, fetch, ramp)
}

// execute dispatches one query. ramp > 0 selects the batched geometric
// refinement for the extreme aggregates; ramp = 0 the sequential
// one-at-a-time scan.
func execute(ctx context.Context, q workload.Query, get Lookup, fetch BatchFetch, ramp float64) (Answer, error) {
	if len(q.Keys) == 0 {
		panic("query: empty key set")
	}
	if get == nil {
		panic("query: nil Lookup or Fetch")
	}
	switch q.Kind {
	case workload.Sum:
		return executeSum(ctx, q.Keys, q.Delta, 1, get, fetch)
	case workload.Avg:
		return executeSum(ctx, q.Keys, q.Delta, 1/float64(len(q.Keys)), get, fetch)
	case workload.Max:
		return executeExtreme(ctx, q.Keys, q.Delta, false, get, fetch, ramp)
	case workload.Min:
		return executeExtreme(ctx, q.Keys, q.Delta, true, get, fetch, ramp)
	default:
		panic(fmt.Sprintf("query: unsupported aggregate %v", q.Kind))
	}
}

// entry is one key's working state during execution.
type entry struct {
	key int
	iv  interval.Interval
}

// load reads the working intervals, treating uncached keys as unbounded.
func load(keys []int, get Lookup) []entry {
	entries := make([]entry, len(keys))
	for i, k := range keys {
		iv, ok := get(k)
		if !ok {
			iv = interval.Unbounded()
		}
		entries[i] = entry{key: k, iv: iv}
	}
	return entries
}

// executeSum handles SUM (scale 1) and AVG (scale 1/n). The result width is
// scale * sum of widths, so the minimal refresh set is the widest intervals:
// sort by width descending and refresh until the residual width meets the
// constraint. The whole refresh set is known before any value is fetched, so
// it always costs exactly one BatchFetch call (one network round trip on the
// batched client).
func executeSum(ctx context.Context, keys []int, delta, scale float64, get Lookup, fetch BatchFetch) (Answer, error) {
	entries := load(keys, get)
	// Order indices by width descending; unbounded first.
	order := make([]int, len(entries))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return widthRank(entries[order[a]].iv) > widthRank(entries[order[b]].iv)
	})
	var residual float64 // total width of intervals we keep
	for _, i := range order {
		w := entries[i].iv.Width()
		if !math.IsInf(w, 1) {
			residual += w
		}
	}
	// Collect the refresh set, widest first, then fetch it in one pass.
	var toFetch []int // indices into entries
	for _, i := range order {
		w := entries[i].iv.Width()
		if !math.IsInf(w, 1) && residual*scale <= delta {
			break
		}
		toFetch = append(toFetch, i)
		if !math.IsInf(w, 1) {
			residual -= w
		}
	}
	var refreshed []int
	if len(toFetch) > 0 {
		if err := ctx.Err(); err != nil {
			return Answer{}, err
		}
		refreshed = make([]int, len(toFetch))
		for j, i := range toFetch {
			refreshed[j] = entries[i].key
		}
		vals := fetch(refreshed)
		for j, i := range toFetch {
			entries[i].iv = interval.Exact(vals[j])
		}
	}
	sum := interval.Exact(0)
	for _, e := range entries {
		sum = sum.Add(e.iv)
	}
	return Answer{Result: sum.Scale(scale), Refreshed: refreshed}, nil
}

// widthRank orders widths with +Inf greatest.
func widthRank(iv interval.Interval) float64 {
	w := iv.Width()
	if math.IsInf(w, 1) {
		return math.MaxFloat64
	}
	return w
}

// executeExtreme handles MAX (and MIN by negation). The bound on the
// maximum is [max Lo_i, max Hi_i]; while it is too wide, fetch the key with
// the greatest upper endpoint among non-exact entries. Each fetch pins that
// entry to a point, which either lowers the collective upper bound or raises
// the lower bound, and intervals wholly below the current lower bound are
// never fetched — the candidate-elimination property that makes interval
// caching profitable for MAX queries even under exact-answer constraints.
//
// With ramp 0 each round fetches exactly one key, reproducing the paper's
// minimal refresh sequence. With ramp >= 1 (the batched client) round r
// fetches the top min(ceil(ramp^r), candidates) keys in one BatchFetch call:
// the refresh set may exceed the minimal one, but the number of round trips
// drops from O(K) to O(log K) for any factor > 1 (ramp = 1 keeps the
// minimal one-per-round sequence over the batched transport).
func executeExtreme(ctx context.Context, keys []int, delta float64, minimize bool, get Lookup, fetch BatchFetch, ramp float64) (Answer, error) {
	entries := load(keys, get)
	if minimize {
		for i := range entries {
			entries[i].iv = negate(entries[i].iv)
		}
	}
	var refreshed []int
	var roundBuf []int // reused across rounds; fetch does not retain it
	batchSize := 1
	for {
		bound := entries[0].iv
		for _, e := range entries[1:] {
			bound = bound.Max(e.iv)
		}
		if bound.Width() <= delta {
			result := bound
			if minimize {
				result = negate(result)
			}
			return Answer{Result: result, Refreshed: refreshed}, nil
		}
		// Honor cancellation between refinement rounds: only once the
		// constraint is known unmet, and before the next fetch is issued,
		// so a cancelled query stops mid-ramp.
		if err := ctx.Err(); err != nil {
			return Answer{}, err
		}
		// Candidates: non-exact entries that can still move either bound,
		// i.e. whose upper endpoint is not below the collective lower
		// bound. Ties broken by wider interval to maximize information
		// gained.
		var cands []int
		if ramp == 0 {
			// One fetch per round: a single linear scan for the greatest
			// upper endpoint, the sequential hot path (Store.Do, simulator).
			best := -1
			for i, e := range entries {
				if e.iv.IsExact() {
					continue
				}
				if best == -1 || e.iv.Hi > entries[best].iv.Hi ||
					(e.iv.Hi == entries[best].iv.Hi && widthRank(e.iv) > widthRank(entries[best].iv)) {
					best = i
				}
			}
			if best != -1 {
				cands = append(cands, best)
			}
		} else {
			for i, e := range entries {
				if e.iv.IsExact() || e.iv.Hi < bound.Lo {
					continue
				}
				cands = append(cands, i)
			}
			sort.SliceStable(cands, func(a, b int) bool {
				ia, ib := entries[cands[a]].iv, entries[cands[b]].iv
				if ia.Hi != ib.Hi {
					return ia.Hi > ib.Hi
				}
				return widthRank(ia) > widthRank(ib)
			})
		}
		if len(cands) == 0 {
			// All entries exact: the bound width is 0 <= delta; cannot
			// happen unless delta < 0.
			result := bound
			if minimize {
				result = negate(result)
			}
			return Answer{Result: result, Refreshed: refreshed}, nil
		}
		n := 1
		if ramp > 0 {
			n = batchSize
			if n > len(cands) {
				n = len(cands)
			}
			// Geometric growth by the ramp factor; ceil keeps fractional
			// factors growing and a factor of exactly 1 fixed at one key
			// per round. Clamp the float product before converting: a huge
			// factor would otherwise overflow int to a negative bound.
			next := math.Ceil(float64(batchSize) * ramp)
			if next > float64(len(keys)) {
				next = float64(len(keys))
			}
			batchSize = int(next)
		}
		round := roundBuf[:0]
		for _, i := range cands[:n] {
			round = append(round, entries[i].key)
		}
		roundBuf = round
		vals := fetch(round)
		refreshed = append(refreshed, round...)
		for j, i := range cands[:n] {
			v := vals[j]
			if minimize {
				v = -v
			}
			entries[i].iv = interval.Exact(v)
		}
	}
}

// negate mirrors an interval about zero, mapping MIN onto MAX.
func negate(iv interval.Interval) interval.Interval {
	return interval.Interval{Lo: -iv.Hi, Hi: -iv.Lo}
}

// PlanSum returns, without fetching, the keys a SUM query with constraint
// delta would refresh given the current cache contents. It is the static
// analysis used by tests and by capacity planning; Execute remains the
// operational path.
func PlanSum(keys []int, delta float64, get Lookup) []int {
	ans, _ := executeSum(context.Background(), keys, delta, 1, get, func(ks []int) []float64 { return make([]float64, len(ks)) })
	return ans.Refreshed
}
