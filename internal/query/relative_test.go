package query

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"apcache/internal/interval"
	"apcache/internal/workload"
)

func TestRelativeAnsweredFromCache(t *testing.T) {
	f := &fixture{
		cached: map[int]interval.Interval{
			0: {Lo: 99, Hi: 101}, // estimate ~100, width 2
		},
		exact: map[int]float64{0: 100},
	}
	// 5% of 100 = 5 >= width 2: no fetch needed.
	ans := ExecuteRelative(workload.Sum, []int{0}, 0.05, f.get, f.fetch)
	if len(ans.Refreshed) != 0 {
		t.Fatalf("fetched %v, want none", ans.Refreshed)
	}
	if !ans.Result.Valid(100) {
		t.Errorf("result %v excludes 100", ans.Result)
	}
}

func TestRelativeTightensUntilSatisfied(t *testing.T) {
	f := &fixture{
		cached: map[int]interval.Interval{
			0: {Lo: 50, Hi: 150}, // width 100, estimate 100
			1: {Lo: 90, Hi: 110}, // width 20
		},
		exact: map[int]float64{0: 100, 1: 100},
	}
	// Target: 10% of ~200 = 20; initial width 120 -> must fetch key 0
	// (residual 20 <= 20 after).
	ans := ExecuteRelative(workload.Sum, []int{0, 1}, 0.1, f.get, f.fetch)
	if !ans.Result.Valid(200) {
		t.Fatalf("result %v excludes 200", ans.Result)
	}
	if got := ans.Result.Width(); got > 0.1*math.Abs(ans.Estimate())+1e-9 {
		t.Errorf("width %g violates relative constraint at estimate %g", got, ans.Estimate())
	}
	if len(ans.Refreshed) == 0 || len(ans.Refreshed) > 2 {
		t.Errorf("refreshed %v", ans.Refreshed)
	}
}

func TestRelativeZeroDemandsExact(t *testing.T) {
	f := &fixture{
		cached: map[int]interval.Interval{
			0: {Lo: 1, Hi: 3},
			1: {Lo: 5, Hi: 9},
		},
		exact: map[int]float64{0: 2, 1: 7},
	}
	ans := ExecuteRelative(workload.Sum, []int{0, 1}, 0, f.get, f.fetch)
	if !ans.Result.IsExact() || ans.Result.Lo != 9 {
		t.Errorf("result %v, want exact [9, 9]", ans.Result)
	}
}

func TestRelativeNeverDoubleFetches(t *testing.T) {
	f := &fixture{
		cached: map[int]interval.Interval{},
		exact:  map[int]float64{0: 10, 1: -10, 2: 0.5},
	}
	// Sum near zero forces the relative target toward 0: everything gets
	// fetched, but each key exactly once.
	ExecuteRelative(workload.Sum, []int{0, 1, 2}, 0.01, f.get, f.fetch)
	seen := map[int]bool{}
	for _, k := range f.fetched {
		if seen[k] {
			t.Fatalf("key %d fetched twice: %v", k, f.fetched)
		}
		seen[k] = true
	}
}

func TestRelativeMax(t *testing.T) {
	f := &fixture{
		cached: map[int]interval.Interval{
			0: {Lo: 90, Hi: 110},
			1: {Lo: 0, Hi: 5},
		},
		exact: map[int]float64{0: 95, 1: 3},
	}
	ans := ExecuteRelative(workload.Max, []int{0, 1}, 0.25, f.get, f.fetch)
	if !ans.Result.Valid(95) {
		t.Fatalf("result %v excludes true max 95", ans.Result)
	}
	if ans.Result.Width() > 0.25*math.Abs(ans.Estimate())+1e-9 {
		t.Errorf("relative constraint violated: %v", ans.Result)
	}
}

func TestRelativePanicsOnBadRel(t *testing.T) {
	f := &fixture{cached: map[int]interval.Interval{}, exact: map[int]float64{}}
	for _, rel := range []float64{-0.1, 1, 1.5, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("rel=%g accepted", rel)
				}
			}()
			ExecuteRelative(workload.Sum, []int{0}, rel, f.get, f.fetch)
		}()
	}
}

func TestQuickRelativeSound(t *testing.T) {
	f := func(seed int64, nRaw uint8, relRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%6 + 1
		fx := buildRandom(rng, n)
		rel := float64(relRaw%90+1) / 100 // (0, 0.9]
		keys := make([]int, n)
		var truth float64
		for k := 0; k < n; k++ {
			keys[k] = k
			truth += fx.exact[k]
		}
		ans := ExecuteRelative(workload.Sum, keys, rel, fx.get, fx.fetch)
		if !ans.Result.Valid(truth) && math.Abs(truth-ans.Result.Clamp(truth)) > 1e-9 {
			return false
		}
		// Constraint: width <= rel*|estimate| or fully exact.
		return ans.Result.Width() <= rel*math.Abs(ans.Estimate())+1e-9 || ans.Result.IsExact()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestThresholdCertainClassification(t *testing.T) {
	f := &fixture{
		cached: map[int]interval.Interval{
			0: {Lo: 50, Hi: 60}, // above 40
			1: {Lo: 0, Hi: 10},  // below 40
			2: {Lo: 30, Hi: 55}, // straddles
		},
		exact: map[int]float64{0: 55, 1: 5, 2: 45},
	}
	res := ExecuteThreshold([]int{0, 1, 2}, 40, 0, f.get, f.fetch)
	if len(res.Above) != 2 || len(res.Below) != 1 || len(res.Uncertain) != 0 {
		t.Fatalf("result %+v", res)
	}
	if len(res.Refreshed) != 1 || res.Refreshed[0] != 2 {
		t.Errorf("refreshed %v, want only straddler 2", res.Refreshed)
	}
}

func TestThresholdBudgetLeavesUncertain(t *testing.T) {
	f := &fixture{
		cached: map[int]interval.Interval{
			0: {Lo: 30, Hi: 55},
			1: {Lo: 35, Hi: 45},
		},
		exact: map[int]float64{0: 50, 1: 38},
	}
	res := ExecuteThreshold([]int{0, 1}, 40, 2, f.get, f.fetch)
	if len(res.Refreshed) != 0 {
		t.Fatalf("budget 2 still fetched %v", res.Refreshed)
	}
	if len(res.Uncertain) != 2 {
		t.Errorf("uncertain %v, want both", res.Uncertain)
	}
	// Budget 1 resolves the widest straddler (key 0, width 25).
	f2 := &fixture{cached: f.cached, exact: f.exact}
	res = ExecuteThreshold([]int{0, 1}, 40, 1, f2.get, f2.fetch)
	if len(res.Refreshed) != 1 || res.Refreshed[0] != 0 {
		t.Errorf("refreshed %v, want widest straddler 0", res.Refreshed)
	}
}

func TestThresholdBoundaryIsBelow(t *testing.T) {
	// Hi == threshold classifies as below (value <= threshold).
	f := &fixture{
		cached: map[int]interval.Interval{0: {Lo: 10, Hi: 40}},
		exact:  map[int]float64{0: 40},
	}
	res := ExecuteThreshold([]int{0}, 40, 0, f.get, f.fetch)
	if len(res.Below) != 1 || len(res.Refreshed) != 0 {
		t.Errorf("result %+v", res)
	}
}

func TestThresholdUncachedKeysFetch(t *testing.T) {
	f := &fixture{
		cached: map[int]interval.Interval{},
		exact:  map[int]float64{0: 100},
	}
	res := ExecuteThreshold([]int{0}, 40, 0, f.get, f.fetch)
	if len(res.Above) != 1 || len(res.Refreshed) != 1 {
		t.Errorf("result %+v", res)
	}
}

func TestThresholdPanics(t *testing.T) {
	f := &fixture{cached: map[int]interval.Interval{}, exact: map[int]float64{}}
	cases := []func(){
		func() { ExecuteThreshold([]int{0}, 1, -1, f.get, f.fetch) },
		func() { ExecuteThreshold([]int{0}, 1, 0, nil, f.fetch) },
		func() { ExecuteThreshold([]int{0}, 1, 0, f.get, nil) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestQuickThresholdSound(t *testing.T) {
	f := func(seed int64, nRaw, thRaw, budgetRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%8 + 1
		fx := buildRandom(rng, n)
		threshold := float64(thRaw) - 128
		budget := int(budgetRaw) % (n + 1)
		keys := make([]int, n)
		for k := 0; k < n; k++ {
			keys[k] = k
		}
		res := ExecuteThreshold(keys, threshold, budget, fx.get, fx.fetch)
		if len(res.Uncertain) > budget {
			return false
		}
		for _, k := range res.Above {
			if fx.exact[k] <= threshold {
				return false
			}
		}
		for _, k := range res.Below {
			if fx.exact[k] > threshold {
				return false
			}
		}
		return len(res.Above)+len(res.Below)+len(res.Uncertain) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
