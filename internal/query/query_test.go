package query

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"apcache/internal/interval"
	"apcache/internal/workload"
)

// fixture builds a Lookup over a static map and a Fetch that returns true
// values while recording fetches.
type fixture struct {
	cached  map[int]interval.Interval
	exact   map[int]float64
	fetched []int
}

func (f *fixture) get(key int) (interval.Interval, bool) {
	iv, ok := f.cached[key]
	return iv, ok
}

func (f *fixture) fetch(key int) float64 {
	f.fetched = append(f.fetched, key)
	return f.exact[key]
}

func TestSumAnswerableFromCache(t *testing.T) {
	f := &fixture{
		cached: map[int]interval.Interval{
			0: {Lo: 1, Hi: 3},
			1: {Lo: 10, Hi: 12},
		},
		exact: map[int]float64{0: 2, 1: 11},
	}
	q := workload.Query{Kind: workload.Sum, Keys: []int{0, 1}, Delta: 5}
	ans := Execute(q, f.get, f.fetch)
	if len(ans.Refreshed) != 0 {
		t.Fatalf("refreshed %v, want none (width 4 <= delta 5)", ans.Refreshed)
	}
	if ans.Result.Lo != 11 || ans.Result.Hi != 15 {
		t.Errorf("result %v, want [11, 15]", ans.Result)
	}
	if ans.Estimate() != 13 {
		t.Errorf("estimate %g, want 13", ans.Estimate())
	}
}

func TestSumRefreshesWidestFirst(t *testing.T) {
	f := &fixture{
		cached: map[int]interval.Interval{
			0: {Lo: 0, Hi: 8},  // width 8
			1: {Lo: 0, Hi: 2},  // width 2
			2: {Lo: 0, Hi: 16}, // width 16
		},
		exact: map[int]float64{0: 4, 1: 1, 2: 8},
	}
	// Total width 26; delta 10 requires dropping to <= 10: refresh key 2
	// (residual 10 <= 10). Widest-first means exactly one fetch.
	q := workload.Query{Kind: workload.Sum, Keys: []int{0, 1, 2}, Delta: 10}
	ans := Execute(q, f.get, f.fetch)
	if len(ans.Refreshed) != 1 || ans.Refreshed[0] != 2 {
		t.Fatalf("refreshed %v, want [2]", ans.Refreshed)
	}
	if got := ans.Result.Width(); got > 10 {
		t.Errorf("result width %g > delta", got)
	}
	// Result must contain the true sum 4+1+8 = 13.
	if !ans.Result.Valid(13) {
		t.Errorf("result %v does not contain true sum 13", ans.Result)
	}
}

func TestSumExactConstraintFetchesEverything(t *testing.T) {
	f := &fixture{
		cached: map[int]interval.Interval{
			0: {Lo: 0, Hi: 1},
			1: {Lo: 5, Hi: 6},
		},
		exact: map[int]float64{0: 0.5, 1: 5.5},
	}
	q := workload.Query{Kind: workload.Sum, Keys: []int{0, 1}, Delta: 0}
	ans := Execute(q, f.get, f.fetch)
	if len(ans.Refreshed) != 2 {
		t.Fatalf("refreshed %v, want both keys", ans.Refreshed)
	}
	if !ans.Result.IsExact() || ans.Result.Lo != 6 {
		t.Errorf("result %v, want exact [6, 6]", ans.Result)
	}
}

func TestSumZeroWidthEntriesNeedNoFetch(t *testing.T) {
	f := &fixture{
		cached: map[int]interval.Interval{
			0: interval.Exact(3),
			1: interval.Exact(4),
		},
		exact: map[int]float64{0: 3, 1: 4},
	}
	q := workload.Query{Kind: workload.Sum, Keys: []int{0, 1}, Delta: 0}
	ans := Execute(q, f.get, f.fetch)
	if len(ans.Refreshed) != 0 {
		t.Fatalf("exact cache entries still fetched: %v", ans.Refreshed)
	}
	if ans.Result.Lo != 7 {
		t.Errorf("result %v, want [7, 7]", ans.Result)
	}
}

func TestSumUncachedKeyTreatedAsUnbounded(t *testing.T) {
	f := &fixture{
		cached: map[int]interval.Interval{0: {Lo: 1, Hi: 2}},
		exact:  map[int]float64{0: 1.5, 1: 100},
	}
	q := workload.Query{Kind: workload.Sum, Keys: []int{0, 1}, Delta: 50}
	ans := Execute(q, f.get, f.fetch)
	if len(ans.Refreshed) != 1 || ans.Refreshed[0] != 1 {
		t.Fatalf("refreshed %v, want uncached key 1 only", ans.Refreshed)
	}
	if !ans.Result.Valid(101.5) {
		t.Errorf("result %v missing true sum 101.5", ans.Result)
	}
}

func TestAvgScalesConstraint(t *testing.T) {
	f := &fixture{
		cached: map[int]interval.Interval{
			0: {Lo: 0, Hi: 10},
			1: {Lo: 0, Hi: 10},
		},
		exact: map[int]float64{0: 5, 1: 5},
	}
	// AVG width = (10+10)/2 = 10; delta 10 is satisfiable from cache.
	q := workload.Query{Kind: workload.Avg, Keys: []int{0, 1}, Delta: 10}
	ans := Execute(q, f.get, f.fetch)
	if len(ans.Refreshed) != 0 {
		t.Fatalf("AVG fetched %v, want none", ans.Refreshed)
	}
	if ans.Result.Lo != 0 || ans.Result.Hi != 10 {
		t.Errorf("result %v, want [0, 10]", ans.Result)
	}
	// delta 5 forces exactly one refresh: initial AVG width 10 > 5, and one
	// fetch leaves residual 10/2 = 5 <= 5.
	f2 := &fixture{cached: map[int]interval.Interval{
		0: {Lo: 0, Hi: 10},
		1: {Lo: 0, Hi: 10},
	}, exact: map[int]float64{0: 5, 1: 5}}
	q.Delta = 5
	ans = Execute(q, f2.get, f2.fetch)
	if len(ans.Refreshed) != 1 {
		t.Errorf("AVG delta=5 fetched %v, want exactly 1", ans.Refreshed)
	}
}

func TestMaxAnswerableFromCache(t *testing.T) {
	f := &fixture{
		cached: map[int]interval.Interval{
			0: {Lo: 10, Hi: 12}, // dominates
			1: {Lo: 0, Hi: 2},
		},
		exact: map[int]float64{0: 11, 1: 1},
	}
	q := workload.Query{Kind: workload.Max, Keys: []int{0, 1}, Delta: 2}
	ans := Execute(q, f.get, f.fetch)
	if len(ans.Refreshed) != 0 {
		t.Fatalf("refreshed %v, want none", ans.Refreshed)
	}
	if ans.Result.Lo != 10 || ans.Result.Hi != 12 {
		t.Errorf("result %v, want [10, 12]", ans.Result)
	}
}

func TestMaxCandidateElimination(t *testing.T) {
	// Key 1's interval [0,2] lies entirely below key 0's lower bound 10,
	// so an exact MAX answer needs only key 0 fetched (Section 4.4: for
	// MAX, approximate values are useful even when exact precision is
	// required).
	f := &fixture{
		cached: map[int]interval.Interval{
			0: {Lo: 10, Hi: 14},
			1: {Lo: 0, Hi: 2},
		},
		exact: map[int]float64{0: 12, 1: 1},
	}
	q := workload.Query{Kind: workload.Max, Keys: []int{0, 1}, Delta: 0}
	ans := Execute(q, f.get, f.fetch)
	if len(ans.Refreshed) != 1 || ans.Refreshed[0] != 0 {
		t.Fatalf("refreshed %v, want [0] only (candidate elimination)", ans.Refreshed)
	}
	if !ans.Result.IsExact() || ans.Result.Lo != 12 {
		t.Errorf("result %v, want exact [12, 12]", ans.Result)
	}
}

func TestMaxOverlappingCandidates(t *testing.T) {
	f := &fixture{
		cached: map[int]interval.Interval{
			0: {Lo: 5, Hi: 15},
			1: {Lo: 8, Hi: 12},
			2: {Lo: 0, Hi: 1},
		},
		exact: map[int]float64{0: 7, 1: 11, 2: 0.5},
	}
	q := workload.Query{Kind: workload.Max, Keys: []int{0, 1, 2}, Delta: 0}
	ans := Execute(q, f.get, f.fetch)
	// True max is 11. Key 2 must never be fetched.
	for _, k := range ans.Refreshed {
		if k == 2 {
			t.Fatalf("fetched dominated key 2")
		}
	}
	if !ans.Result.IsExact() || ans.Result.Lo != 11 {
		t.Errorf("result %v, want exact [11, 11]", ans.Result)
	}
}

func TestMinMirrorsMax(t *testing.T) {
	f := &fixture{
		cached: map[int]interval.Interval{
			0: {Lo: 10, Hi: 14}, // dominated for MIN
			1: {Lo: 0, Hi: 4},
		},
		exact: map[int]float64{0: 12, 1: 2},
	}
	q := workload.Query{Kind: workload.Min, Keys: []int{0, 1}, Delta: 0}
	ans := Execute(q, f.get, f.fetch)
	if len(ans.Refreshed) != 1 || ans.Refreshed[0] != 1 {
		t.Fatalf("refreshed %v, want [1] only", ans.Refreshed)
	}
	if !ans.Result.IsExact() || ans.Result.Lo != 2 {
		t.Errorf("result %v, want exact [2, 2]", ans.Result)
	}
}

func TestMinAnswerableFromCache(t *testing.T) {
	f := &fixture{
		cached: map[int]interval.Interval{
			0: {Lo: 1, Hi: 2},
			1: {Lo: 10, Hi: 30},
		},
		exact: map[int]float64{0: 1.5, 1: 20},
	}
	q := workload.Query{Kind: workload.Min, Keys: []int{0, 1}, Delta: 1}
	ans := Execute(q, f.get, f.fetch)
	if len(ans.Refreshed) != 0 {
		t.Fatalf("refreshed %v, want none", ans.Refreshed)
	}
	if ans.Result.Lo != 1 || ans.Result.Hi != 2 {
		t.Errorf("result %v, want [1, 2]", ans.Result)
	}
}

func TestExecutePanics(t *testing.T) {
	f := &fixture{cached: map[int]interval.Interval{}, exact: map[int]float64{}}
	cases := []func(){
		func() { Execute(workload.Query{Kind: workload.Sum}, f.get, f.fetch) },
		func() {
			Execute(workload.Query{Kind: workload.AggKind(9), Keys: []int{0}}, f.get, f.fetch)
		},
		func() { Execute(workload.Query{Kind: workload.Sum, Keys: []int{0}}, nil, f.fetch) },
		func() { Execute(workload.Query{Kind: workload.Sum, Keys: []int{0}}, f.get, nil) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestPlanSum(t *testing.T) {
	f := &fixture{
		cached: map[int]interval.Interval{
			0: {Lo: 0, Hi: 8},
			1: {Lo: 0, Hi: 2},
		},
	}
	plan := PlanSum([]int{0, 1}, 3, f.get)
	if len(plan) != 1 || plan[0] != 0 {
		t.Errorf("plan %v, want [0]", plan)
	}
	if plan := PlanSum([]int{0, 1}, 100, f.get); len(plan) != 0 {
		t.Errorf("plan %v, want empty at loose constraint", plan)
	}
}

// buildRandom creates a random fixture with nKeys entries whose intervals
// genuinely contain the exact values.
func buildRandom(rng *rand.Rand, nKeys int) *fixture {
	f := &fixture{cached: map[int]interval.Interval{}, exact: map[int]float64{}}
	for k := 0; k < nKeys; k++ {
		v := rng.Float64()*200 - 100
		f.exact[k] = v
		switch rng.Intn(4) {
		case 0: // exact copy
			f.cached[k] = interval.Exact(v)
		case 1, 2: // proper interval containing v
			below := rng.Float64() * 50
			above := rng.Float64() * 50
			f.cached[k] = interval.Interval{Lo: v - below, Hi: v + above}
		case 3: // uncached
		}
	}
	return f
}

func TestQuickSumSoundAndPrecise(t *testing.T) {
	f := func(seed int64, nRaw, deltaRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%8 + 1
		fx := buildRandom(rng, n)
		delta := float64(deltaRaw)
		keys := make([]int, n)
		var truth float64
		for k := 0; k < n; k++ {
			keys[k] = k
			truth += fx.exact[k]
		}
		ans := Execute(workload.Query{Kind: workload.Sum, Keys: keys, Delta: delta}, fx.get, fx.fetch)
		// Soundness: the result contains the true sum (allow float slack).
		if !ans.Result.Valid(truth) && math.Abs(truth-ans.Result.Clamp(truth)) > 1e-9 {
			return false
		}
		// Precision: the constraint is met.
		return ans.Result.Width() <= delta+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMaxSoundAndPrecise(t *testing.T) {
	f := func(seed int64, nRaw, deltaRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%8 + 1
		fx := buildRandom(rng, n)
		delta := float64(deltaRaw)
		keys := make([]int, n)
		truth := math.Inf(-1)
		for k := 0; k < n; k++ {
			keys[k] = k
			truth = math.Max(truth, fx.exact[k])
		}
		ans := Execute(workload.Query{Kind: workload.Max, Keys: keys, Delta: delta}, fx.get, fx.fetch)
		if !ans.Result.Valid(truth) && math.Abs(truth-ans.Result.Clamp(truth)) > 1e-9 {
			return false
		}
		return ans.Result.Width() <= delta+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMinSoundAndPrecise(t *testing.T) {
	f := func(seed int64, nRaw, deltaRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%8 + 1
		fx := buildRandom(rng, n)
		delta := float64(deltaRaw)
		keys := make([]int, n)
		truth := math.Inf(1)
		for k := 0; k < n; k++ {
			keys[k] = k
			truth = math.Min(truth, fx.exact[k])
		}
		ans := Execute(workload.Query{Kind: workload.Min, Keys: keys, Delta: delta}, fx.get, fx.fetch)
		if !ans.Result.Valid(truth) && math.Abs(truth-ans.Result.Clamp(truth)) > 1e-9 {
			return false
		}
		return ans.Result.Width() <= delta+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickNoDuplicateFetches(t *testing.T) {
	f := func(seed int64, nRaw uint8, kindRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%8 + 1
		fx := buildRandom(rng, n)
		kinds := []workload.AggKind{workload.Sum, workload.Max, workload.Min, workload.Avg}
		kind := kinds[int(kindRaw)%len(kinds)]
		keys := make([]int, n)
		for k := 0; k < n; k++ {
			keys[k] = k
		}
		Execute(workload.Query{Kind: kind, Keys: keys, Delta: 0}, fx.get, fx.fetch)
		seen := map[int]bool{}
		for _, k := range fx.fetched {
			if seen[k] {
				return false
			}
			seen[k] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// batchFetch adapts the fixture to BatchFetch, recording each round's size.
func (f *fixture) batchFetch(rounds *[][]int) BatchFetch {
	return func(keys []int) []float64 {
		*rounds = append(*rounds, append([]int(nil), keys...))
		out := make([]float64, len(keys))
		for i, k := range keys {
			f.fetched = append(f.fetched, k)
			out[i] = f.exact[k]
		}
		return out
	}
}

func TestExecuteBatchSumSingleRound(t *testing.T) {
	// Five keys all needing refresh: the whole set must arrive in ONE
	// BatchFetch call, widest first.
	f := &fixture{
		cached: map[int]interval.Interval{},
		exact:  map[int]float64{0: 1, 1: 2, 2: 3, 3: 4, 4: 5},
	}
	var rounds [][]int
	q := workload.Query{Kind: workload.Sum, Keys: []int{0, 1, 2, 3, 4}, Delta: 0}
	ans := ExecuteBatch(q, f.get, f.batchFetch(&rounds))
	if len(rounds) != 1 || len(rounds[0]) != 5 {
		t.Fatalf("rounds %v, want one round of 5 keys", rounds)
	}
	if !ans.Result.IsExact() || ans.Result.Lo != 15 {
		t.Errorf("result %v, want [15, 15]", ans.Result)
	}
}

func TestExecuteBatchSumMatchesExecute(t *testing.T) {
	// Randomized equivalence: SUM/AVG batch execution must produce the same
	// answer and the same refresh set (in the same order) as the sequential
	// path — the refresh set is decided upfront either way.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(10) + 1
		f1 := &fixture{cached: map[int]interval.Interval{}, exact: map[int]float64{}}
		f2 := &fixture{cached: map[int]interval.Interval{}, exact: map[int]float64{}}
		keys := make([]int, n)
		for k := 0; k < n; k++ {
			keys[k] = k
			v := rng.Float64() * 100
			f1.exact[k], f2.exact[k] = v, v
			if rng.Float64() < 0.8 {
				w := rng.Float64() * 20
				iv := interval.Interval{Lo: v - w*rng.Float64(), Hi: v + w}
				f1.cached[k], f2.cached[k] = iv, iv
			}
		}
		kind := workload.Sum
		if trial%2 == 1 {
			kind = workload.Avg
		}
		q := workload.Query{Kind: kind, Keys: keys, Delta: rng.Float64() * 40}
		seq := Execute(q, f1.get, f1.fetch)
		var rounds [][]int
		bat := ExecuteBatch(q, f2.get, f2.batchFetch(&rounds))
		if len(rounds) > 1 {
			t.Fatalf("trial %d: SUM/AVG used %d rounds", trial, len(rounds))
		}
		if seq.Result != bat.Result {
			t.Fatalf("trial %d: results differ: %v vs %v", trial, seq.Result, bat.Result)
		}
		if len(seq.Refreshed) != len(bat.Refreshed) {
			t.Fatalf("trial %d: refresh sets differ: %v vs %v", trial, seq.Refreshed, bat.Refreshed)
		}
		for i := range seq.Refreshed {
			if seq.Refreshed[i] != bat.Refreshed[i] {
				t.Fatalf("trial %d: refresh order differs: %v vs %v", trial, seq.Refreshed, bat.Refreshed)
			}
		}
	}
}

func TestExecuteBatchMaxLogRounds(t *testing.T) {
	// MAX over K uncached keys with an exact constraint: the geometric ramp
	// must finish in O(log K) BatchFetch rounds, and the answer must still
	// be sound and exact.
	const K = 64
	f := &fixture{cached: map[int]interval.Interval{}, exact: map[int]float64{}}
	keys := make([]int, K)
	for k := 0; k < K; k++ {
		keys[k] = k
		f.exact[k] = float64(k * 3)
	}
	var rounds [][]int
	q := workload.Query{Kind: workload.Max, Keys: keys, Delta: 0}
	ans := ExecuteBatch(q, f.get, f.batchFetch(&rounds))
	if !ans.Result.IsExact() || ans.Result.Lo != float64((K-1)*3) {
		t.Fatalf("result %v, want exact %d", ans.Result, (K-1)*3)
	}
	// 1+2+4+... covers 64 keys within 7 rounds.
	if len(rounds) > 7 {
		t.Errorf("MAX over %d keys took %d rounds: %v", K, len(rounds), rounds)
	}
}

func TestExecuteBatchMaxSoundAndPrecise(t *testing.T) {
	// Randomized soundness: batched MAX/MIN answers must bound the truth and
	// meet the constraint, and may over-fetch only against the candidate
	// set (never fetch an interval wholly below the collective lower bound
	// at its round start — checked indirectly via soundness + width here).
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(12) + 1
		f := &fixture{cached: map[int]interval.Interval{}, exact: map[int]float64{}}
		keys := make([]int, n)
		truthMax, truthMin := math.Inf(-1), math.Inf(1)
		for k := 0; k < n; k++ {
			keys[k] = k
			v := rng.NormFloat64() * 50
			f.exact[k] = v
			truthMax = math.Max(truthMax, v)
			truthMin = math.Min(truthMin, v)
			if rng.Float64() < 0.7 {
				wLo, wHi := rng.Float64()*30, rng.Float64()*30
				f.cached[k] = interval.Interval{Lo: v - wLo, Hi: v + wHi}
			}
		}
		kind, truth := workload.Max, truthMax
		if trial%2 == 1 {
			kind, truth = workload.Min, truthMin
		}
		delta := rng.Float64() * 25
		var rounds [][]int
		ans := ExecuteBatch(workload.Query{Kind: kind, Keys: keys, Delta: delta}, f.get, f.batchFetch(&rounds))
		if !ans.Result.Valid(truth) {
			t.Fatalf("trial %d: %v answer %v excludes truth %g", trial, kind, ans.Result, truth)
		}
		if ans.Result.Width() > delta {
			t.Fatalf("trial %d: width %g > delta %g", trial, ans.Result.Width(), delta)
		}
		seen := map[int]bool{}
		for _, k := range ans.Refreshed {
			if seen[k] {
				t.Fatalf("trial %d: key %d fetched twice", trial, k)
			}
			seen[k] = true
		}
	}
}

// rampFixture builds n keys whose intervals all straddle the collective
// lower bound, so an exact MAX query must fetch every key and the round
// structure depends only on the ramp factor.
func rampFixture(n int) *fixture {
	f := &fixture{cached: map[int]interval.Interval{}, exact: map[int]float64{}}
	for k := 0; k < n; k++ {
		f.cached[k] = interval.Interval{Lo: 0, Hi: 100 + float64(k)}
		f.exact[k] = float64(k)
	}
	return f
}

func TestExecuteBatchRampRoundSizes(t *testing.T) {
	cases := []struct {
		ramp   float64
		rounds []int // expected per-round fetch counts over 8 keys
	}{
		{1, []int{1, 1, 1, 1, 1, 1, 1, 1}}, // paper-minimal elimination
		{2, []int{1, 2, 4, 1}},             // default geometric doubling
		{4, []int{1, 4, 3}},
		{1.5, []int{1, 2, 3, 2}}, // ceil(1.5^r): 1, 2, 3, ...
	}
	for _, c := range cases {
		const n = 8
		f := rampFixture(n)
		keys := make([]int, n)
		for k := range keys {
			keys[k] = k
		}
		var rounds [][]int
		q := workload.Query{Kind: workload.Max, Keys: keys, Delta: 0}
		ans := ExecuteBatchRamp(q, f.get, f.batchFetch(&rounds), c.ramp)
		if ans.Result.Lo != n-1 || ans.Result.Hi != n-1 {
			t.Errorf("ramp %g: result %v, want exact max %d", c.ramp, ans.Result, n-1)
		}
		got := make([]int, len(rounds))
		for i, r := range rounds {
			got[i] = len(r)
		}
		if len(got) != len(c.rounds) {
			t.Errorf("ramp %g: %d rounds %v, want %v", c.ramp, len(got), got, c.rounds)
			continue
		}
		for i := range got {
			if got[i] != c.rounds[i] {
				t.Errorf("ramp %g: round sizes %v, want %v", c.ramp, got, c.rounds)
				break
			}
		}
	}
}

func TestExecuteBatchUsesDefaultRamp(t *testing.T) {
	const n = 8
	f1, f2 := rampFixture(n), rampFixture(n)
	keys := make([]int, n)
	for k := range keys {
		keys[k] = k
	}
	q := workload.Query{Kind: workload.Max, Keys: keys, Delta: 0}
	var viaDefault, viaExplicit [][]int
	ExecuteBatch(q, f1.get, f1.batchFetch(&viaDefault))
	ExecuteBatchRamp(q, f2.get, f2.batchFetch(&viaExplicit), DefaultRamp)
	if len(viaDefault) != len(viaExplicit) {
		t.Fatalf("ExecuteBatch made %d rounds, DefaultRamp %d", len(viaDefault), len(viaExplicit))
	}
}

func TestExecuteBatchRampRejectsSubUnity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("ramp factor below 1 did not panic")
		}
	}()
	f := rampFixture(2)
	var rounds [][]int
	q := workload.Query{Kind: workload.Max, Keys: []int{0, 1}, Delta: 0}
	ExecuteBatchRamp(q, f.get, f.batchFetch(&rounds), 0.5)
}

func TestExecuteBatchRampHugeFactorClamps(t *testing.T) {
	// A huge (but finite) factor must clamp to the key-set size instead of
	// overflowing the int round size: round 1 fetches 1, round 2 the rest.
	const n = 8
	f := rampFixture(n)
	keys := make([]int, n)
	for k := range keys {
		keys[k] = k
	}
	var rounds [][]int
	q := workload.Query{Kind: workload.Max, Keys: keys, Delta: 0}
	ans := ExecuteBatchRamp(q, f.get, f.batchFetch(&rounds), 1e18)
	if ans.Result.Lo != n-1 {
		t.Errorf("result %v, want exact max %d", ans.Result, n-1)
	}
	if len(rounds) != 2 || len(rounds[0]) != 1 || len(rounds[1]) != n-1 {
		t.Errorf("round sizes %v, want [1 %d]", rounds, n-1)
	}
}

func TestExecuteBatchRampRejectsInf(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("+Inf ramp factor did not panic")
		}
	}()
	f := rampFixture(2)
	var rounds [][]int
	q := workload.Query{Kind: workload.Max, Keys: []int{0, 1}, Delta: 0}
	ExecuteBatchRamp(q, f.get, f.batchFetch(&rounds), math.Inf(1))
}
