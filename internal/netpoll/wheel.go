package netpoll

import (
	"sync"
	"time"
)

// Wheel is a hashed timer wheel: many connections' flush deadlines
// multiplexed onto one goroutine and one ticker, so arming a coalescing
// window costs a list insertion instead of a runtime timer per connection.
// Deadlines fire with up to one tick of slack — fine for flush windows,
// which trade exactly that kind of latency for batching anyway.
//
// Timers are intrusive: the caller embeds a Timer in its per-connection
// state and the wheel links it into a slot, so scheduling allocates
// nothing. A Timer may be scheduled from any goroutine; its callback runs
// on the wheel goroutine and must not block.
type Wheel struct {
	tick  time.Duration
	mu    sync.Mutex
	slots [][]*Timer
	pos   int // slot the next advance will fire
	fired []*Timer
	stop  chan struct{}
	done  chan struct{}
}

// Timer is one schedulable deadline, embedded in its owner's state. The
// zero value is an unscheduled timer; set Fn before first use.
type Timer struct {
	// Fn runs on the wheel goroutine when the deadline expires. It must be
	// cheap and non-blocking (typically: enqueue the owner somewhere).
	Fn func()

	when int64 // absolute deadline, ns; 0 = unscheduled
	slot int
}

// NewWheel starts a wheel with the given tick granularity and slot count.
// The horizon (tick × slots) only bounds precision, not delay: a deadline
// past the horizon stays linked and fires on a later rotation.
func NewWheel(tick time.Duration, slots int) *Wheel {
	if tick <= 0 {
		tick = time.Millisecond
	}
	if slots < 2 {
		slots = 2
	}
	w := &Wheel{
		tick:  tick,
		slots: make([][]*Timer, slots),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go w.run()
	return w
}

// Schedule arms t to fire after d. If t is already armed the earlier
// deadline wins and Schedule is a no-op — exactly the semantics a flush
// window wants: the first pending push opens the window, later pushes ride
// it. d is clamped to one tick minimum.
func (w *Wheel) Schedule(t *Timer, d time.Duration) {
	if d < w.tick {
		d = w.tick
	}
	when := time.Now().Add(d).UnixNano()
	w.mu.Lock()
	if t.when != 0 {
		w.mu.Unlock()
		return // armed: the earlier deadline stands
	}
	ticks := int(d / w.tick)
	slot := (w.pos + ticks) % len(w.slots)
	t.when = when
	t.slot = slot
	w.slots[slot] = append(w.slots[slot], t)
	w.mu.Unlock()
}

// Cancel disarms t if it is armed. The callback may still run if it was
// already being fired concurrently; owners must tolerate a spurious fire.
func (w *Wheel) Cancel(t *Timer) {
	w.mu.Lock()
	if t.when != 0 {
		w.unlink(t)
	}
	w.mu.Unlock()
}

// unlink removes t from its slot; the caller holds mu.
func (w *Wheel) unlink(t *Timer) {
	s := w.slots[t.slot]
	for i, st := range s {
		if st == t {
			last := len(s) - 1
			s[i] = s[last]
			s[last] = nil
			w.slots[t.slot] = s[:last]
			break
		}
	}
	t.when = 0
}

// Stop shuts the wheel down. Armed timers never fire; Stop waits for the
// wheel goroutine to exit.
func (w *Wheel) Stop() {
	close(w.stop)
	<-w.done
}

func (w *Wheel) run() {
	defer close(w.done)
	tick := time.NewTicker(w.tick)
	defer tick.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-tick.C:
			w.advance(time.Now().UnixNano())
		}
	}
}

// advance fires the current slot's expired timers and moves the cursor.
// Timers whose deadline lies a full rotation (or more) ahead stay linked
// for a later pass. Callbacks run outside the lock.
func (w *Wheel) advance(now int64) {
	w.mu.Lock()
	s := w.slots[w.pos]
	kept := s[:0]
	for _, t := range s {
		if t.when <= now {
			t.when = 0
			w.fired = append(w.fired, t)
		} else {
			kept = append(kept, t)
		}
	}
	for i := len(kept); i < len(s); i++ {
		s[i] = nil
	}
	w.slots[w.pos] = kept
	w.pos = (w.pos + 1) % len(w.slots)
	fired := w.fired
	w.mu.Unlock()
	for i, t := range fired {
		t.Fn()
		fired[i] = nil
	}
	w.fired = fired[:0]
}
