//go:build !linux

package netpoll

import "syscall"

// ErrClosed is returned by Wait after Close.
var ErrClosed = ErrUnsupported

// ConnIO is unavailable without a poller implementation.
type ConnIO struct{}

func NewConnIO(rc syscall.RawConn) *ConnIO       { return &ConnIO{} }
func (io *ConnIO) Read(buf []byte) (int, error)  { return 0, ErrUnsupported }
func (io *ConnIO) Write(buf []byte) (int, error) { return 0, ErrUnsupported }

// Poller is the stub for platforms without an implementation; New always
// fails and the server stays on its goroutine-per-connection core.
type Poller struct{}

// Supported reports whether this platform has a poller implementation.
func Supported() bool { return false }

// New always returns ErrUnsupported on this platform.
func New() (*Poller, error) { return nil, ErrUnsupported }

func (p *Poller) Add(fd int, token uint32) error   { return ErrUnsupported }
func (p *Poller) Rearm(fd int, token uint32) error { return ErrUnsupported }
func (p *Poller) Remove(fd int) error              { return ErrUnsupported }
func (p *Poller) Wait(evs []Event) (int, error)    { return 0, ErrUnsupported }
func (p *Poller) Wake()                            {}
func (p *Poller) Close() error                     { return nil }
