//go:build linux

package netpoll

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
)

// ErrClosed is returned by Wait after Close.
var ErrClosed = errors.New("netpoll: poller closed")

// wakeToken is the reserved token for the poller's internal wakeup pipe;
// caller tokens must stay below it.
const wakeToken = ^uint32(0)

// Poller multiplexes read-readiness for many descriptors over one epoll
// instance. Add/Rearm/Remove/Wake are safe from any goroutine; Wait must be
// called from a single owner goroutine, which also performs the final
// teardown when Wait observes Close.
type Poller struct {
	// fdMu orders concurrent Add/Rearm/Remove/Wake against the final
	// destroy: control callers hold it shared and bail once destroyed is
	// set, so the descriptors can never be recycled under a control call.
	fdMu      sync.RWMutex
	destroyed bool
	epfd      int
	wakeR     int // wakeup pipe, read end (registered in the epoll set)
	wakeW     int

	// epf wraps epfd so the wait loop can park on it through the runtime
	// netpoller instead of blocking an OS thread in epoll_wait. An epoll
	// descriptor is itself pollable — it reads as ready whenever its
	// interest set has pending events — so readiness propagates through
	// the runtime's own poller and a waking event loop is scheduled like
	// any other goroutine, with no kernel thread wakeup on the hot path.
	epf  *os.File
	eprc syscall.RawConn

	// collect's raw-read callback and its in/out slots, built once so the
	// steady-state wait loop does not allocate a closure per park. Owned
	// by the Wait goroutine.
	parkEvs []syscall.EpollEvent
	parkN   int
	parkErr error
	parkFn  func(uintptr) bool

	closed atomic.Bool
	raw    []syscall.EpollEvent // kernel event scratch; owned by the Wait goroutine
}

// Supported reports whether this platform has a poller implementation.
func Supported() bool { return true }

// New creates a Poller.
func New() (*Poller, error) {
	epfd, err := syscall.EpollCreate1(syscall.EPOLL_CLOEXEC)
	if err != nil {
		return nil, fmt.Errorf("netpoll: epoll_create1: %w", err)
	}
	var pipeFds [2]int
	if err := syscall.Pipe2(pipeFds[:], syscall.O_NONBLOCK|syscall.O_CLOEXEC); err != nil {
		syscall.Close(epfd)
		return nil, fmt.Errorf("netpoll: pipe2: %w", err)
	}
	p := &Poller{epfd: epfd, wakeR: pipeFds[0], wakeW: pipeFds[1]}
	ev := syscall.EpollEvent{Events: syscall.EPOLLIN, Fd: -1} // int32(-1) reads back as wakeToken
	if err := syscall.EpollCtl(epfd, syscall.EPOLL_CTL_ADD, p.wakeR, &ev); err != nil {
		p.destroy()
		return nil, fmt.Errorf("netpoll: register wakeup pipe: %w", err)
	}
	// Hand the epoll descriptor to the runtime netpoller. os.NewFile only
	// registers pollable descriptors that are already non-blocking; the flag
	// is harmless for epoll_wait itself, which takes an explicit timeout.
	if err := syscall.SetNonblock(epfd, true); err != nil {
		p.destroy()
		return nil, fmt.Errorf("netpoll: set epoll fd non-blocking: %w", err)
	}
	p.epf = os.NewFile(uintptr(epfd), "netpoll-epoll")
	rc, err := p.epf.SyscallConn()
	if err != nil {
		p.destroy()
		return nil, fmt.Errorf("netpoll: raw conn for epoll fd: %w", err)
	}
	p.eprc = rc
	p.parkFn = func(uintptr) bool {
		for {
			n, cerr := syscall.EpollWait(p.epfd, p.parkEvs, 0)
			if cerr == syscall.EINTR {
				continue
			}
			p.parkN, p.parkErr = n, cerr
			// Empty and healthy: stay parked until the runtime reports
			// the epoll descriptor readable again.
			return n != 0 || cerr != nil
		}
	}
	return p, nil
}

// readyFlags is the event set every descriptor is armed with: read
// readiness plus peer-hangup, one-shot so a descriptor reports at most once
// until its owner re-arms it.
const readyFlags = syscall.EPOLLIN | syscall.EPOLLRDHUP | syscall.EPOLLONESHOT

// Add registers fd with the poller under token. The descriptor is armed
// one-shot: after its first event it is disarmed until Rearm.
func (p *Poller) Add(fd int, token uint32) error {
	if token == wakeToken {
		return fmt.Errorf("netpoll: token %d is reserved", token)
	}
	ev := syscall.EpollEvent{Events: readyFlags, Fd: int32(token)}
	if err := p.ctl(syscall.EPOLL_CTL_ADD, fd, &ev); err != nil {
		return fmt.Errorf("netpoll: add fd %d: %w", fd, err)
	}
	return nil
}

// ctl issues an epoll_ctl while holding the descriptor lock shared, so the
// epoll fd cannot be destroyed (and its number recycled) under the call.
func (p *Poller) ctl(op int, fd int, ev *syscall.EpollEvent) error {
	p.fdMu.RLock()
	defer p.fdMu.RUnlock()
	if p.destroyed {
		return ErrClosed
	}
	return syscall.EpollCtl(p.epfd, op, fd, ev)
}

// Rearm re-enables a one-shot descriptor after its owner drained it. With
// level-triggered semantics a descriptor that still has buffered bytes
// fires again immediately, so a bounded read budget never strands data.
func (p *Poller) Rearm(fd int, token uint32) error {
	ev := syscall.EpollEvent{Events: readyFlags, Fd: int32(token)}
	if err := p.ctl(syscall.EPOLL_CTL_MOD, fd, &ev); err != nil {
		return fmt.Errorf("netpoll: rearm fd %d: %w", fd, err)
	}
	return nil
}

// Remove deregisters fd. Removing a descriptor that the kernel already
// dropped (it was closed), or removing after the poller shut down, is not an
// error.
func (p *Poller) Remove(fd int) error {
	err := p.ctl(syscall.EPOLL_CTL_DEL, fd, nil)
	if err != nil && !errors.Is(err, ErrClosed) &&
		!errors.Is(err, syscall.EBADF) && !errors.Is(err, syscall.ENOENT) {
		return fmt.Errorf("netpoll: remove fd %d: %w", fd, err)
	}
	return nil
}

// Wait blocks until at least one registered descriptor is ready, filling
// evs and returning the count. It returns ErrClosed (after releasing the
// poller's descriptors) once Close has been called; only the owning
// goroutine may call it. The kernel event scratch is retained on the
// Poller, so the steady-state loop does not allocate.
func (p *Poller) Wait(evs []Event) (int, error) {
	if len(p.raw) < len(evs) {
		p.raw = make([]syscall.EpollEvent, len(evs))
	}
	raw := p.raw[:len(evs)]
	for {
		if p.closed.Load() {
			p.destroy()
			return 0, ErrClosed
		}
		n, err := p.collect(raw)
		if err != nil {
			if p.closed.Load() {
				continue // destroy and report ErrClosed on the next pass
			}
			return 0, err
		}
		out := 0
		for i := 0; i < n; i++ {
			token := uint32(raw[i].Fd)
			if token == wakeToken {
				p.drainWake()
				continue
			}
			evs[out] = Event{
				Token:  token,
				Hangup: raw[i].Events&(syscall.EPOLLRDHUP|syscall.EPOLLHUP|syscall.EPOLLERR) != 0,
			}
			out++
		}
		if out > 0 {
			return out, nil
		}
		// Only the wakeup pipe fired: loop back, re-checking closed.
	}
}

// collect fills raw with pending epoll events, parking the calling
// goroutine — in the runtime netpoller, not an OS thread — while the set is
// empty. The zero-timeout epoll_wait runs inside the raw-read callback,
// which the runtime invokes only after re-arming its readiness latch for
// the descriptor: an event that lands between an empty poll and the park
// sets the latch and wakes us. Polling first and parking second would
// discard exactly that event — the latch reset precedes the wait — and
// with the inner ready list non-empty the outer edge-triggered poller would
// never fire again: a permanent stall.
func (p *Poller) collect(raw []syscall.EpollEvent) (int, error) {
	p.parkEvs = raw
	err := p.eprc.Read(p.parkFn)
	n, werr := p.parkN, p.parkErr
	p.parkEvs, p.parkErr = nil, nil
	if err != nil {
		return 0, fmt.Errorf("netpoll: park: %w", err)
	}
	if werr != nil {
		return 0, fmt.Errorf("netpoll: epoll_wait: %w", werr)
	}
	return n, nil
}

// Wake forces a blocked Wait to return (used by Close and by callers that
// changed state the wait loop must observe). Safe from any goroutine.
func (p *Poller) Wake() {
	p.fdMu.RLock()
	defer p.fdMu.RUnlock()
	if p.destroyed {
		return // nothing left to wake
	}
	var b [1]byte
	syscall.Write(p.wakeW, b[:]) // EAGAIN means a wake is already pending
}

func (p *Poller) drainWake() {
	var buf [64]byte
	for {
		n, err := syscall.Read(p.wakeR, buf[:])
		if n < len(buf) || err != nil {
			return
		}
	}
}

// Close marks the poller closed and wakes the wait loop, which releases the
// kernel resources on its way out. Safe from any goroutine, idempotent.
func (p *Poller) Close() error {
	if p.closed.CompareAndSwap(false, true) {
		p.Wake()
	}
	return nil
}

// ConnIO performs non-blocking reads and writes on one connection through
// its RawConn. The raw-conn callbacks are built once at construction and
// reused for the connection's lifetime: RawConn methods take the callback
// through an interface, so a closure built per call escapes to the heap —
// at one read and one write per served frame that was a measurable share of
// the request path's allocations. The RawConn detour itself is what keeps
// the runtime holding a reference on the descriptor, so a concurrent Close
// cannot recycle the fd under an I/O attempt. Not safe for concurrent use;
// the connection's single-drainer invariants provide the exclusion.
type ConnIO struct {
	rc syscall.RawConn

	rbuf []byte
	rn   int
	rerr error
	rfn  func(uintptr) bool

	wbuf []byte
	wn   int
	werr error
	wfn  func(uintptr) bool
}

// NewConnIO builds the reusable I/O state for one connection.
func NewConnIO(rc syscall.RawConn) *ConnIO {
	io := &ConnIO{rc: rc}
	io.rfn = func(fd uintptr) bool {
		io.rn, io.rerr = syscall.Read(int(fd), io.rbuf)
		return true // one attempt only: never let the runtime park this goroutine
	}
	io.wfn = func(fd uintptr) bool {
		for io.wn < len(io.wbuf) {
			n, e := syscall.Write(int(fd), io.wbuf[io.wn:])
			if n > 0 {
				io.wn += n
			}
			if e != nil {
				if e == syscall.EINTR {
					continue
				}
				if e != syscall.EAGAIN {
					io.werr = e
				}
				return true // one pass only: report the short write instead of parking
			}
		}
		return true
	}
	return io
}

// Read performs exactly one non-blocking read into buf. It returns ErrAgain
// when no bytes are available (re-arm and wait), (0, nil) on EOF, and any
// other error when the connection is closed or broken.
func (io *ConnIO) Read(buf []byte) (int, error) {
	io.rbuf = buf
	err := io.rc.Read(io.rfn)
	n, rerr := io.rn, io.rerr
	io.rbuf, io.rerr = nil, nil
	if err != nil {
		return 0, err // connection closed under us
	}
	if rerr != nil {
		if rerr == syscall.EAGAIN || rerr == syscall.EINTR {
			// EINTR maps to "try later" too: the level-triggered poller
			// re-fires immediately on re-arm while bytes remain.
			return 0, ErrAgain
		}
		return 0, rerr
	}
	return n, nil
}

// Write writes as much of buf as the socket accepts without blocking,
// returning the byte count. A short count with a nil error means the socket
// buffer filled (EAGAIN): the caller must hand the remainder to a goroutine
// that may block. Like Read it never lets the runtime park the calling
// goroutine.
func (io *ConnIO) Write(buf []byte) (int, error) {
	io.wbuf, io.wn, io.werr = buf, 0, nil
	err := io.rc.Write(io.wfn)
	n, werr := io.wn, io.werr
	io.wbuf, io.werr = nil, nil
	if err != nil {
		return n, err // connection closed under us
	}
	return n, werr
}

// destroy releases the poller's descriptors. Called by the Wait owner after
// observing Close, or by New on a failed construction; never while a wait
// is in flight. Taking fdMu exclusively fences out in-flight control calls,
// so no epoll_ctl can run on a recycled descriptor number.
func (p *Poller) destroy() {
	p.fdMu.Lock()
	defer p.fdMu.Unlock()
	if p.destroyed {
		return
	}
	p.destroyed = true
	if p.epf != nil {
		p.epf.Close() // closes epfd and deregisters it from the runtime
	} else {
		syscall.Close(p.epfd)
	}
	syscall.Close(p.wakeR)
	syscall.Close(p.wakeW)
}
