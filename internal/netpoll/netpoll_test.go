package netpoll

import (
	"net"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

// connFD extracts the file descriptor backing a TCP connection.
func connFD(t *testing.T, c net.Conn) int {
	t.Helper()
	sc, err := c.(*net.TCPConn).SyscallConn()
	if err != nil {
		t.Fatalf("SyscallConn: %v", err)
	}
	fd := -1
	if err := sc.Control(func(f uintptr) { fd = int(f) }); err != nil {
		t.Fatalf("Control: %v", err)
	}
	return fd
}

// tcpPair returns the two ends of a loopback TCP connection.
func tcpPair(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	a, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatalf("accept: %v", r.err)
	}
	t.Cleanup(func() { a.Close(); r.c.Close() })
	return a, r.c
}

func TestPollerReadinessAndRearm(t *testing.T) {
	if !Supported() {
		t.Skip("netpoll unsupported on this platform")
	}
	p, err := New()
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer p.Close()
	local, remote := tcpPair(t)
	fd := connFD(t, local)
	if err := p.Add(fd, 7); err != nil {
		t.Fatalf("Add: %v", err)
	}

	events := make(chan Event, 16)
	go func() {
		evs := make([]Event, 8)
		for {
			n, err := p.Wait(evs)
			if err != nil {
				close(events)
				return
			}
			for i := 0; i < n; i++ {
				events <- evs[i]
			}
		}
	}()

	if _, err := remote.Write([]byte("x")); err != nil {
		t.Fatalf("write: %v", err)
	}
	select {
	case ev := <-events:
		if ev.Token != 7 {
			t.Fatalf("event token = %d, want 7", ev.Token)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no readiness event after write")
	}

	// One-shot: more bytes without a rearm must not produce an event.
	if _, err := remote.Write([]byte("y")); err != nil {
		t.Fatalf("write: %v", err)
	}
	select {
	case ev := <-events:
		t.Fatalf("unexpected event %+v before rearm", ev)
	case <-time.After(50 * time.Millisecond):
	}

	// Rearm with unread bytes still buffered: level-triggered semantics
	// fire immediately.
	if err := p.Rearm(fd, 7); err != nil {
		t.Fatalf("Rearm: %v", err)
	}
	select {
	case ev := <-events:
		if ev.Token != 7 {
			t.Fatalf("event token = %d, want 7", ev.Token)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no readiness event after rearm with buffered bytes")
	}

	// Drain, rearm, close the peer: the hangup must surface.
	buf := make([]byte, 16)
	syscall.Read(fd, buf)
	if err := p.Rearm(fd, 7); err != nil {
		t.Fatalf("Rearm: %v", err)
	}
	remote.Close()
	select {
	case ev := <-events:
		if ev.Token != 7 || !ev.Hangup {
			t.Fatalf("event = %+v, want token 7 with Hangup", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no hangup event after peer close")
	}

	p.Close()
	select {
	case _, ok := <-events:
		if ok {
			t.Fatal("event after Close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Wait did not observe Close")
	}
}

func TestWheelFiresAndCancels(t *testing.T) {
	w := NewWheel(time.Millisecond, 16)
	defer w.Stop()

	var fired atomic.Int32
	done := make(chan struct{})
	tm := &Timer{Fn: func() { fired.Add(1); close(done) }}
	w.Schedule(tm, 3*time.Millisecond)
	// Re-scheduling an armed timer keeps the earlier deadline and must not
	// double-fire.
	w.Schedule(tm, time.Hour)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("timer did not fire")
	}
	time.Sleep(20 * time.Millisecond)
	if got := fired.Load(); got != 1 {
		t.Fatalf("timer fired %d times, want 1", got)
	}

	// A cancelled timer never fires.
	var cancelled atomic.Int32
	tc := &Timer{Fn: func() { cancelled.Add(1) }}
	w.Schedule(tc, 5*time.Millisecond)
	w.Cancel(tc)
	time.Sleep(30 * time.Millisecond)
	if got := cancelled.Load(); got != 0 {
		t.Fatalf("cancelled timer fired %d times", got)
	}

	// A deadline past the wheel horizon (tick*slots = 16ms) still fires,
	// on a later rotation.
	farDone := make(chan struct{})
	tf := &Timer{Fn: func() { close(farDone) }}
	w.Schedule(tf, 40*time.Millisecond)
	select {
	case <-farDone:
	case <-time.After(5 * time.Second):
		t.Fatal("past-horizon timer did not fire")
	}

	// After firing, the timer is reusable.
	again := make(chan struct{})
	tm.Fn = func() { close(again) }
	w.Schedule(tm, 2*time.Millisecond)
	select {
	case <-again:
	case <-time.After(5 * time.Second):
		t.Fatal("reused timer did not fire")
	}
}
