// Package netpoll provides the readiness machinery for the server's
// event-driven connection core: an OS poller that watches many connection
// file descriptors from one goroutine (epoll on Linux; other platforms
// report Supported() == false and the server falls back to its
// goroutine-per-connection core), and a hashed timer wheel that multiplexes
// per-connection flush deadlines onto a single goroutine.
//
// The poller is deliberately one-shot: every registered descriptor is
// disarmed when its readiness is reported and must be re-armed with Rearm
// once its owner has drained it. That gives the dispatch layer exactly-one
// in-flight read per connection without any per-connection locking, and it
// composes with level-triggered semantics — re-arming a descriptor that
// still has buffered bytes fires again immediately.
//
// Registering a socket here does not conflict with the Go runtime's own
// netpoller: an fd may be a member of any number of epoll sets, and the
// connections driven through this package never block in conn.Read, so the
// runtime's poller simply has no read waiters for them.
package netpoll

import "errors"

// ErrUnsupported is returned by New on platforms without a poller
// implementation. Callers are expected to fall back to a
// goroutine-per-connection design.
var ErrUnsupported = errors.New("netpoll: not supported on this platform")

// ErrAgain is returned by ReadConn when the descriptor has no bytes
// available: the owner should re-arm it and wait for the next readiness
// event instead of retrying.
var ErrAgain = errors.New("netpoll: read would block")

// Event reports readiness for one registered descriptor.
type Event struct {
	// Token is the caller's identifier for the descriptor, as passed to
	// Add.
	Token uint32
	// Hangup is set when the peer closed or the descriptor errored; the
	// owner should read until EOF/error and tear the connection down. A
	// hangup event may also carry readable bytes.
	Hangup bool
}
