// Package faultnet is a scriptable fault-injection TCP proxy for chaos
// testing the networked client/server pair. A Proxy listens on an ephemeral
// loopback port and forwards byte streams to a retargetable backend, with
// knobs for the failure modes a long-lived cache session meets in practice:
//
//   - latency injection (SetLatency): every forwarded chunk is delayed,
//     simulating a slow link without breaking it;
//   - hard drop (Sever): every live link is cut at once, the TCP-RST-style
//     failure of a crashing server;
//   - mid-frame truncation (TruncateAfter): a link dies after forwarding an
//     exact byte count, so decoders on both sides observe a partial frame;
//   - blackhole (SetBlackhole): connections accept and then stall —
//     forwarding stops but sockets stay open, the worst failure mode for a
//     client, which sees neither data nor an error;
//   - flapping (Flap): scripted up/down cycling for reconnect storms.
//
// Retargeting (SetTarget) is the piece that makes server-restart chaos
// tests possible: the client dials the proxy's stable address once, the
// test kills the server, starts a replacement on a fresh port, points the
// proxy at it, and the client's redial loop recovers none the wiser.
//
// The zero configuration is a transparent pass-through proxy.
package faultnet

import (
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Proxy is a scriptable TCP proxy. All methods are safe for concurrent use;
// knob changes apply to live links (per forwarded chunk) as well as to
// links accepted later.
type Proxy struct {
	ln net.Listener

	// target is the current backend address (a string, swapped atomically
	// so per-chunk forwarding never takes the registry mutex).
	target atomic.Value // string

	// latency delays every forwarded chunk; blackhole stalls forwarding
	// entirely until cleared or the link dies.
	latency   atomic.Int64 // time.Duration
	blackhole atomic.Bool

	// truncateAt, when positive, severs a link once its server->client
	// forwarding has shipped that many bytes — mid-frame for any frame
	// spanning the boundary. Counted per link, armed per SetTruncate call.
	truncateAt atomic.Int64

	mu     sync.Mutex
	links  map[int]*link
	nextID int
	closed bool
	wg     sync.WaitGroup
}

// link is one proxied connection pair.
type link struct {
	client net.Conn
	server net.Conn
	once   sync.Once
	done   chan struct{} // closed by drop

	// sent counts server->client bytes for the truncation knob.
	sent atomic.Int64
}

func (l *link) drop() {
	l.once.Do(func() {
		l.client.Close()
		l.server.Close()
		close(l.done)
	})
}

// dead reports whether the link has been dropped.
func (l *link) dead() bool {
	select {
	case <-l.done:
		return true
	default:
		return false
	}
}

// Listen starts a proxy on an ephemeral loopback port, forwarding to
// target.
func Listen(target string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{ln: ln, links: make(map[int]*link)}
	p.target.Store(target)
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address — the stable address chaos-test
// clients dial instead of any particular server's.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// SetTarget points the proxy at a new backend. Live links keep forwarding
// to the old one until they die; new connections dial the new target.
func (p *Proxy) SetTarget(addr string) { p.target.Store(addr) }

// SetLatency delays every forwarded chunk by d (both directions). 0
// restores transparent forwarding.
func (p *Proxy) SetLatency(d time.Duration) { p.latency.Store(int64(d)) }

// SetBlackhole stalls forwarding on every link — connections stay open and
// accept keeps working, but no byte moves — until cleared. The cruelest
// failure mode for a client: no data, no error.
func (p *Proxy) SetBlackhole(on bool) { p.blackhole.Store(on) }

// TruncateAfter arms the mid-frame truncation knob: each link (current and
// future) is severed once its server->client stream has forwarded n more
// bytes past each link's current position, so a frame spanning the boundary
// reaches the client incomplete. n <= 0 disarms.
func (p *Proxy) TruncateAfter(n int64) {
	p.mu.Lock()
	for _, l := range p.links {
		l.sent.Store(0)
	}
	p.mu.Unlock()
	p.truncateAt.Store(n)
}

// Sever drops every live link at once — the failure a crashing server
// inflicts on its clients. The listener stays up; new connections proceed
// (against the current target) unless blackholed or closed.
func (p *Proxy) Sever() {
	p.mu.Lock()
	links := make([]*link, 0, len(p.links))
	for _, l := range p.links {
		links = append(links, l)
	}
	p.mu.Unlock()
	for _, l := range links {
		l.drop()
	}
}

// Flap cycles the proxy between up and down states: up of forwarding, then
// a Sever plus down of blackhole, repeating until the returned stop
// function is called. stop leaves the proxy up.
func (p *Proxy) Flap(up, down time.Duration) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-time.After(up):
			case <-done:
				return
			}
			p.SetBlackhole(true)
			p.Sever()
			select {
			case <-time.After(down):
			case <-done:
				p.SetBlackhole(false)
				return
			}
			p.SetBlackhole(false)
		}
	}()
	return func() {
		close(done)
		wg.Wait()
		p.SetBlackhole(false)
	}
}

// Close stops the proxy: the listener closes and every live link drops.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	links := make([]*link, 0, len(p.links))
	for _, l := range p.links {
		links = append(links, l)
	}
	p.mu.Unlock()
	err := p.ln.Close()
	for _, l := range links {
		l.drop()
	}
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		target, _ := p.target.Load().(string)
		backend, err := net.Dial("tcp", target)
		if err != nil {
			conn.Close()
			continue
		}
		l := &link{client: conn, server: backend, done: make(chan struct{})}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			l.drop()
			continue
		}
		p.nextID++
		id := p.nextID
		p.links[id] = l
		p.mu.Unlock()
		p.wg.Add(2)
		go p.pump(l, id, l.client, l.server, false)
		go p.pump(l, id, l.server, l.client, true)
	}
}

// pump forwards one direction of a link chunk by chunk, consulting the
// fault knobs between chunks. fromServer marks the server->client direction
// the truncation knob counts.
func (p *Proxy) pump(l *link, id int, src, dst net.Conn, fromServer bool) {
	defer p.wg.Done()
	defer p.reap(id)
	defer l.drop()
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			chunk := buf[:n]
			if fromServer {
				if lim := p.truncateAt.Load(); lim > 0 {
					already := l.sent.Load()
					if already >= lim {
						return // boundary hit: sever mid-stream
					}
					if int64(len(chunk)) > lim-already {
						chunk = chunk[:lim-already]
						// Ship the partial chunk, then sever: the client
						// sees a clean prefix ending mid-frame.
						l.sent.Add(int64(len(chunk)))
						p.stall(l)
						dst.Write(chunk)
						return
					}
				}
				l.sent.Add(int64(len(chunk)))
			}
			if !p.stall(l) {
				return // link died while blackholed
			}
			if _, werr := dst.Write(chunk); werr != nil {
				return
			}
		}
		if err != nil {
			return
		}
	}
}

// stall applies the latency and blackhole knobs before a forward. It
// reports false when the link died while waiting.
func (p *Proxy) stall(l *link) bool {
	if d := time.Duration(p.latency.Load()); d > 0 {
		select {
		case <-time.After(d):
		case <-l.done:
			return false
		}
	}
	for p.blackhole.Load() {
		select {
		case <-time.After(time.Millisecond):
		case <-l.done:
			return false
		}
	}
	return !l.dead()
}

// reap removes a finished link from the registry.
func (p *Proxy) reap(id int) {
	p.mu.Lock()
	delete(p.links, id)
	p.mu.Unlock()
}
