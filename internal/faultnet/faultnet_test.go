package faultnet

import (
	"bytes"
	"io"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// echoServer accepts connections and echoes every byte back, optionally
// tagging each chunk so tests can tell which backend served them.
func echoServer(t *testing.T, tag byte) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var closed atomic.Bool
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 4096)
				for {
					n, err := c.Read(buf)
					if n > 0 {
						out := buf[:n]
						if tag != 0 {
							out = append([]byte{tag}, out...)
						}
						if _, werr := c.Write(out); werr != nil {
							return
						}
					}
					if err != nil {
						return
					}
				}
			}(c)
		}
	}()
	return ln.Addr().String(), func() {
		if closed.CompareAndSwap(false, true) {
			ln.Close()
		}
	}
}

func dialProxy(t *testing.T, p *Proxy) net.Conn {
	t.Helper()
	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func roundTrip(t *testing.T, c net.Conn, payload string) string {
	t.Helper()
	if _, err := c.Write([]byte(payload)); err != nil {
		t.Fatalf("write: %v", err)
	}
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, len(payload)+1)
	n, err := io.ReadAtLeast(c, buf, len(payload))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	return string(buf[:n])
}

func TestPassThrough(t *testing.T) {
	addr, stop := echoServer(t, 0)
	defer stop()
	p, err := Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dialProxy(t, p)
	if got := roundTrip(t, c, "hello"); got != "hello" {
		t.Fatalf("echo through proxy = %q, want %q", got, "hello")
	}
}

func TestSeverDropsLiveLinks(t *testing.T) {
	addr, stop := echoServer(t, 0)
	defer stop()
	p, err := Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dialProxy(t, p)
	roundTrip(t, c, "warm")
	p.Sever()
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 16)
	if _, err := c.Read(buf); err == nil {
		t.Fatalf("read after Sever succeeded; want connection error")
	}
	// The listener survives: a fresh connection works.
	c2 := dialProxy(t, p)
	if got := roundTrip(t, c2, "again"); got != "again" {
		t.Fatalf("post-sever echo = %q, want %q", got, "again")
	}
}

func TestTruncateAfterCutsMidStream(t *testing.T) {
	addr, stop := echoServer(t, 0)
	defer stop()
	p, err := Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dialProxy(t, p)
	p.TruncateAfter(3)
	if _, err := c.Write([]byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	got, _ := io.ReadAll(c) // reads until the severed link EOFs/errors
	if len(got) > 3 {
		t.Fatalf("received %d bytes (%q) past a 3-byte truncation", len(got), got)
	}
	if !bytes.HasPrefix([]byte("abcdef"), got) {
		t.Fatalf("truncated stream %q is not a prefix of the payload", got)
	}
}

func TestSetLatencyDelaysForwarding(t *testing.T) {
	addr, stop := echoServer(t, 0)
	defer stop()
	p, err := Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dialProxy(t, p)
	roundTrip(t, c, "warm")
	const lat = 30 * time.Millisecond
	p.SetLatency(lat)
	start := time.Now()
	roundTrip(t, c, "slow")
	// Both directions pay the latency once per chunk.
	if elapsed := time.Since(start); elapsed < lat {
		t.Fatalf("round trip took %v with %v injected latency", elapsed, lat)
	}
}

func TestBlackholeStallsThenReleases(t *testing.T) {
	addr, stop := echoServer(t, 0)
	defer stop()
	p, err := Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dialProxy(t, p)
	roundTrip(t, c, "warm")
	p.SetBlackhole(true)
	if _, err := c.Write([]byte("void")); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	buf := make([]byte, 16)
	if n, err := c.Read(buf); err == nil {
		t.Fatalf("read %d bytes through a blackhole", n)
	}
	p.SetBlackhole(false)
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	n, err := io.ReadAtLeast(c, buf, 4)
	if err != nil || string(buf[:n]) != "void" {
		t.Fatalf("post-blackhole read = %q, %v; want the stalled payload", buf[:n], err)
	}
}

func TestSetTargetRedirectsNewConnections(t *testing.T) {
	addrA, stopA := echoServer(t, 'A')
	defer stopA()
	addrB, stopB := echoServer(t, 'B')
	defer stopB()
	p, err := Listen(addrA)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dialProxy(t, p)
	if got := roundTrip(t, c, "x"); !strings.HasPrefix(got, "A") {
		t.Fatalf("first backend reply = %q, want tag A", got)
	}
	stopA()
	p.SetTarget(addrB)
	p.Sever()
	c2 := dialProxy(t, p)
	if got := roundTrip(t, c2, "y"); !strings.HasPrefix(got, "B") {
		t.Fatalf("retargeted reply = %q, want tag B", got)
	}
}

func TestFlapCycles(t *testing.T) {
	addr, stop := echoServer(t, 0)
	defer stop()
	p, err := Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	stopFlap := p.Flap(10*time.Millisecond, 10*time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	sawDrop, sawRecover := false, false
	for time.Now().Before(deadline) && !(sawDrop && sawRecover) {
		c, err := net.Dial("tcp", p.Addr())
		if err != nil {
			time.Sleep(5 * time.Millisecond)
			continue
		}
		c.SetDeadline(time.Now().Add(100 * time.Millisecond))
		_, werr := c.Write([]byte("ping"))
		buf := make([]byte, 4)
		_, rerr := io.ReadAtLeast(c, buf, 4)
		if werr != nil || rerr != nil {
			sawDrop = true
		} else {
			sawRecover = true
		}
		c.Close()
	}
	stopFlap()
	if !sawDrop || !sawRecover {
		t.Fatalf("flap cycle incomplete: sawDrop=%v sawRecover=%v", sawDrop, sawRecover)
	}
	// After stop the proxy must be reliably up again.
	c := dialProxy(t, p)
	if got := roundTrip(t, c, "done"); got != "done" {
		t.Fatalf("post-flap echo = %q", got)
	}
}
