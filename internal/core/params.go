// Package core implements the adaptive precision-setting algorithm of
// Olston, Loo and Widom (SIGMOD 2001) for cached interval approximations,
// together with the algorithm variants evaluated in Section 4.5, the
// stale-count specialization used against Divergence Caching (Section 4.7),
// and the Appendix A analytical cost model.
//
// The central object is the Controller, which maintains the width W of one
// cached approximation and nudges it on every refresh: grown by a factor
// (1+alpha) with probability min(theta, 1) on a value-initiated refresh,
// shrunk by the same factor with probability min(1/theta, 1) on a
// query-initiated refresh, where theta = 2*Cvr/Cqr. The fixed point of this
// process is the width W* minimizing the expected cost rate
// Omega(W) = Cvr*Pvr(W) + Cqr*Pqr(W).
package core

import (
	"errors"
	"fmt"
	"math"
)

// Mode selects how the cost factor theta is derived from the refresh costs.
type Mode int

const (
	// ModeInterval is the paper's primary setting: interval approximations
	// to numeric values, for which Pvr ~ 1/W^2 and hence theta = 2*Cvr/Cqr
	// (Section 2, justified in Section 3 and Appendix A).
	ModeInterval Mode = iota
	// ModeStaleCount is the Divergence Caching specialization (Section 4.7):
	// the "value" counted is the number of unpropagated updates, for which
	// Pvr ~ 1/W and hence theta' = Cvr/Cqr.
	ModeStaleCount
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case ModeInterval:
		return "interval"
	case ModeStaleCount:
		return "stale-count"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Params carries the five algorithm parameters of Section 2 (Table 1).
// Cvr and Cqr are fixed by the environment; Alpha, Lambda0 and Lambda1 tune
// the algorithm.
type Params struct {
	// Cvr is the cost of a value-initiated refresh.
	Cvr float64
	// Cqr is the cost of a query-initiated refresh.
	Cqr float64
	// Alpha >= 0 is the adaptivity parameter: widths are multiplied or
	// divided by (1+Alpha). The paper's recommended setting is 1.
	Alpha float64
	// Lambda0 >= 0 is the lower threshold: computed widths below Lambda0
	// are used as 0 (exact caching).
	Lambda0 float64
	// Lambda1 >= Lambda0 is the upper threshold: computed widths at or
	// above Lambda1 are used as +Inf (effectively uncached). Use
	// math.Inf(1) to disable.
	Lambda1 float64
	// Mode selects the theta formula; the zero value is ModeInterval.
	Mode Mode
}

// DefaultParams returns the settings the performance study recommends for
// general workloads (Section 4.4): alpha = 1, lambda0 = epsilon, lambda1 =
// +Inf. epsilon should be a small width below the smallest meaningful
// nonzero precision constraint (1K for the paper's network data).
func DefaultParams(cvr, cqr, epsilon float64) Params {
	return Params{Cvr: cvr, Cqr: cqr, Alpha: 1, Lambda0: epsilon, Lambda1: math.Inf(1)}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	switch {
	case p.Cvr < 0 || math.IsNaN(p.Cvr):
		return fmt.Errorf("core: Cvr must be >= 0, got %g", p.Cvr)
	case p.Cqr <= 0 || math.IsNaN(p.Cqr):
		return fmt.Errorf("core: Cqr must be > 0, got %g", p.Cqr)
	case p.Alpha < 0 || math.IsNaN(p.Alpha):
		return fmt.Errorf("core: Alpha must be >= 0, got %g", p.Alpha)
	case p.Lambda0 < 0 || math.IsNaN(p.Lambda0):
		return fmt.Errorf("core: Lambda0 must be >= 0, got %g", p.Lambda0)
	case p.Lambda1 < p.Lambda0:
		return fmt.Errorf("core: Lambda1 (%g) must be >= Lambda0 (%g)", p.Lambda1, p.Lambda0)
	case p.Mode != ModeInterval && p.Mode != ModeStaleCount:
		return fmt.Errorf("core: unknown mode %d", int(p.Mode))
	}
	return nil
}

// Theta returns the cost factor: 2*Cvr/Cqr in interval mode (Section 2) and
// Cvr/Cqr in stale-count mode (Section 4.7).
func (p Params) Theta() float64 {
	switch p.Mode {
	case ModeStaleCount:
		return p.Cvr / p.Cqr
	default:
		return 2 * p.Cvr / p.Cqr
	}
}

// GrowProbability returns min(theta, 1), the probability that a
// value-initiated refresh widens the interval.
func (p Params) GrowProbability() float64 { return math.Min(p.Theta(), 1) }

// ShrinkProbability returns min(1/theta, 1), the probability that a
// query-initiated refresh narrows the interval. A theta of zero (free
// value-initiated refreshes) yields probability 1.
func (p Params) ShrinkProbability() float64 {
	th := p.Theta()
	if th <= 0 {
		return 1
	}
	return math.Min(1/th, 1)
}

// ErrUnsetWidth is returned by operations that require the controller to have
// been seeded with an initial width.
var ErrUnsetWidth = errors.New("core: controller width not initialized")
