package core

import (
	"math"
	"testing"
)

func TestParamsValidate(t *testing.T) {
	valid := Params{Cvr: 1, Cqr: 2, Alpha: 1, Lambda0: 0, Lambda1: math.Inf(1)}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	cases := []struct {
		name string
		p    Params
	}{
		{"negative Cvr", Params{Cvr: -1, Cqr: 2}},
		{"zero Cqr", Params{Cvr: 1, Cqr: 0}},
		{"negative Cqr", Params{Cvr: 1, Cqr: -2}},
		{"negative alpha", Params{Cvr: 1, Cqr: 2, Alpha: -0.5}},
		{"negative lambda0", Params{Cvr: 1, Cqr: 2, Lambda0: -1}},
		{"lambda1 below lambda0", Params{Cvr: 1, Cqr: 2, Lambda0: 5, Lambda1: 4}},
		{"NaN Cvr", Params{Cvr: math.NaN(), Cqr: 2}},
		{"NaN alpha", Params{Cvr: 1, Cqr: 2, Alpha: math.NaN()}},
		{"bad mode", Params{Cvr: 1, Cqr: 2, Mode: Mode(99)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.p.Validate(); err == nil {
				t.Errorf("Validate() accepted %+v", tc.p)
			}
		})
	}
}

func TestTheta(t *testing.T) {
	// Section 4.3: two-phase locking gives Cvr=4, Cqr=2, theta=4;
	// plain update propagation gives Cvr=1, Cqr=2, theta=1.
	cases := []struct {
		cvr, cqr float64
		mode     Mode
		want     float64
	}{
		{4, 2, ModeInterval, 4},
		{1, 2, ModeInterval, 1},
		{3, 2, ModeInterval, 3},
		{1, 2, ModeStaleCount, 0.5}, // Section 4.7: theta' = Cvr/Cqr
		{4, 2, ModeStaleCount, 2},
	}
	for _, tc := range cases {
		p := Params{Cvr: tc.cvr, Cqr: tc.cqr, Mode: tc.mode}
		if got := p.Theta(); got != tc.want {
			t.Errorf("Theta(Cvr=%g, Cqr=%g, %v) = %g, want %g", tc.cvr, tc.cqr, tc.mode, got, tc.want)
		}
	}
}

func TestProbabilities(t *testing.T) {
	cases := []struct {
		theta             float64
		wantGrow, wantShr float64
	}{
		{1, 1, 1},
		{4, 1, 0.25},
		{0.5, 0.5, 1},
	}
	for _, tc := range cases {
		// theta = 2*Cvr/Cqr; pick Cqr = 2 so Cvr = theta.
		p := Params{Cvr: tc.theta, Cqr: 2}
		if got := p.GrowProbability(); math.Abs(got-tc.wantGrow) > 1e-12 {
			t.Errorf("theta=%g GrowProbability = %g, want %g", tc.theta, got, tc.wantGrow)
		}
		if got := p.ShrinkProbability(); math.Abs(got-tc.wantShr) > 1e-12 {
			t.Errorf("theta=%g ShrinkProbability = %g, want %g", tc.theta, got, tc.wantShr)
		}
	}
}

func TestShrinkProbabilityZeroTheta(t *testing.T) {
	p := Params{Cvr: 0, Cqr: 2}
	if got := p.ShrinkProbability(); got != 1 {
		t.Errorf("ShrinkProbability with theta=0 = %g, want 1", got)
	}
	if got := p.GrowProbability(); got != 0 {
		t.Errorf("GrowProbability with theta=0 = %g, want 0", got)
	}
}

func TestDefaultParams(t *testing.T) {
	p := DefaultParams(1, 2, 1000)
	if p.Alpha != 1 {
		t.Errorf("Alpha = %g, want 1", p.Alpha)
	}
	if p.Lambda0 != 1000 {
		t.Errorf("Lambda0 = %g, want 1000", p.Lambda0)
	}
	if !math.IsInf(p.Lambda1, 1) {
		t.Errorf("Lambda1 = %g, want +Inf", p.Lambda1)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("DefaultParams invalid: %v", err)
	}
}

func TestModeString(t *testing.T) {
	if ModeInterval.String() != "interval" || ModeStaleCount.String() != "stale-count" {
		t.Errorf("mode names wrong: %q %q", ModeInterval, ModeStaleCount)
	}
	if got := Mode(7).String(); got != "Mode(7)" {
		t.Errorf("unknown mode string = %q", got)
	}
}

func TestRefreshKindString(t *testing.T) {
	if ValueInitiated.String() != "value-initiated" {
		t.Errorf("ValueInitiated.String() = %q", ValueInitiated)
	}
	if QueryInitiated.String() != "query-initiated" {
		t.Errorf("QueryInitiated.String() = %q", QueryInitiated)
	}
}
