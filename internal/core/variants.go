package core

import (
	"math"

	"apcache/internal/interval"
)

// This file implements the algorithm variants of Section 4.5, all of which
// the paper found unsuccessful in the general case but worth reporting:
// uncentered intervals, time-varying intervals, and refresh-history windows.

// UncenteredController maintains independent lower and upper widths
// (Section 4.5): a value-initiated refresh caused by the value exceeding the
// upper bound grows only the upper width (with probability min(theta,1)),
// one caused by dropping below the lower bound grows only the lower width,
// and a query-initiated refresh shrinks both widths (with probability
// min(1/theta,1)).
type UncenteredController struct {
	params Params
	lower  float64
	upper  float64
	rng    Rand
}

// NewUncenteredController returns an uncentered controller with both widths
// set to half the given total initial width, matching the centered starting
// point.
func NewUncenteredController(params Params, initialWidth float64, rng Rand) *UncenteredController {
	if err := params.Validate(); err != nil {
		panic(err)
	}
	if rng == nil {
		panic("core: nil Rand")
	}
	return &UncenteredController{params: params, lower: initialWidth / 2, upper: initialWidth / 2, rng: rng}
}

// Width returns the total stored width (lower + upper).
func (u *UncenteredController) Width() float64 { return u.lower + u.upper }

// LowerWidth returns the stored distance from the exact value down to Lo.
func (u *UncenteredController) LowerWidth() float64 { return u.lower }

// UpperWidth returns the stored distance from the exact value up to Hi.
func (u *UncenteredController) UpperWidth() float64 { return u.upper }

// EffectiveWidth applies thresholding to the total width.
func (u *UncenteredController) EffectiveWidth() float64 {
	return EffectiveWidth(u.params, u.Width())
}

// OnValueRefreshAbove handles a value-initiated refresh triggered by the
// value exceeding the upper bound.
func (u *UncenteredController) OnValueRefreshAbove() {
	if u.rng.Float64() < u.params.GrowProbability() {
		u.upper = growWidth(u.params, u.upper)
	}
}

// OnValueRefreshBelow handles a value-initiated refresh triggered by the
// value dropping below the lower bound.
func (u *UncenteredController) OnValueRefreshBelow() {
	if u.rng.Float64() < u.params.GrowProbability() {
		u.lower = growWidth(u.params, u.lower)
	}
}

// OnRefresh satisfies WidthPolicy. Value-initiated refreshes without
// direction information grow both sides with the grow probability; the
// source engine prefers the directional methods.
func (u *UncenteredController) OnRefresh(kind RefreshKind) float64 {
	if kind == ValueInitiated {
		if u.rng.Float64() < u.params.GrowProbability() {
			u.upper = growWidth(u.params, u.upper)
			u.lower = growWidth(u.params, u.lower)
		}
	} else {
		if u.rng.Float64() < u.params.ShrinkProbability() {
			u.upper /= 1 + u.params.Alpha
			u.lower /= 1 + u.params.Alpha
		}
	}
	return u.EffectiveWidth()
}

// NewInterval builds the (possibly asymmetric) interval around v with
// thresholds applied to the total width: a total below Lambda0 collapses to
// the exact copy and a total at or above Lambda1 becomes unbounded.
func (u *UncenteredController) NewInterval(v float64) interval.Interval {
	total := u.Width()
	if total < u.params.Lambda0 {
		return interval.Exact(v)
	}
	if total >= u.params.Lambda1 {
		return interval.Unbounded()
	}
	return interval.Uncentered(v, u.lower, u.upper)
}

// RefreshInterval is OnRefresh followed by NewInterval.
func (u *UncenteredController) RefreshInterval(kind RefreshKind, v float64) interval.Interval {
	u.OnRefresh(kind)
	return u.NewInterval(v)
}

// RefreshIntervalDirectional applies the directional adjustment: above
// reports whether the escape was past the upper bound (only meaningful for
// value-initiated refreshes).
func (u *UncenteredController) RefreshIntervalDirectional(kind RefreshKind, above bool, v float64) interval.Interval {
	if kind == ValueInitiated {
		if above {
			u.OnValueRefreshAbove()
		} else {
			u.OnValueRefreshBelow()
		}
	} else {
		if u.rng.Float64() < u.params.ShrinkProbability() {
			u.upper /= 1 + u.params.Alpha
			u.lower /= 1 + u.params.Alpha
		}
	}
	return u.NewInterval(v)
}

func growWidth(p Params, w float64) float64 {
	if w == 0 {
		if p.Lambda0 > 0 {
			return p.Lambda0 / 2
		}
		return 0.5
	}
	return w * (1 + p.Alpha)
}

var _ WidthPolicy = (*UncenteredController)(nil)

// GrowthFunc describes how a time-varying interval's half-width expands with
// the time elapsed since the last refresh (Section 4.5's second variant).
type GrowthFunc func(elapsed float64) float64

// SqrtGrowth returns k*sqrt(t) growth (the paper's t^(1/2) variant).
func SqrtGrowth(k float64) GrowthFunc {
	return func(t float64) float64 { return k * math.Sqrt(math.Max(t, 0)) }
}

// CbrtGrowth returns k*t^(1/3) growth.
func CbrtGrowth(k float64) GrowthFunc {
	return func(t float64) float64 { return k * math.Cbrt(math.Max(t, 0)) }
}

// LinearGrowth returns k*t growth — the variant the paper found best for
// biased (drifting) random walks, with k matched to the drift rate.
func LinearGrowth(k float64) GrowthFunc {
	return func(t float64) float64 { return k * math.Max(t, 0) }
}

// TimeVaryingController wraps a base adaptive controller and widens the
// shipped interval as a function of time since the last refresh. The base
// width still adapts on refreshes; the growth term is added symmetrically to
// both endpoints at evaluation time.
type TimeVaryingController struct {
	base    *Controller
	growth  GrowthFunc
	refresh float64 // time of last refresh
	now     func() float64
}

// NewTimeVaryingController builds a time-varying controller. now supplies the
// current simulation time; growth supplies the extra half-width.
func NewTimeVaryingController(base *Controller, growth GrowthFunc, now func() float64) *TimeVaryingController {
	if base == nil || growth == nil || now == nil {
		panic("core: nil argument to NewTimeVaryingController")
	}
	return &TimeVaryingController{base: base, growth: growth, now: now}
}

// Width returns the base stored width.
func (tv *TimeVaryingController) Width() float64 { return tv.base.Width() }

// EffectiveWidth returns the base effective width plus twice the current
// growth term.
func (tv *TimeVaryingController) EffectiveWidth() float64 {
	w := tv.base.EffectiveWidth()
	if math.IsInf(w, 1) {
		return w
	}
	return w + 2*tv.growth(tv.now()-tv.refresh)
}

// OnRefresh resets the growth clock and delegates the adjustment.
func (tv *TimeVaryingController) OnRefresh(kind RefreshKind) float64 {
	tv.base.OnRefresh(kind)
	tv.refresh = tv.now()
	return tv.EffectiveWidth()
}

// NewInterval ships an interval of the current (time-grown) width.
func (tv *TimeVaryingController) NewInterval(v float64) interval.Interval {
	return interval.Centered(v, tv.EffectiveWidth())
}

// RefreshInterval is OnRefresh followed by NewInterval.
func (tv *TimeVaryingController) RefreshInterval(kind RefreshKind, v float64) interval.Interval {
	tv.OnRefresh(kind)
	return tv.NewInterval(v)
}

var _ WidthPolicy = (*TimeVaryingController)(nil)

// HistoryController implements the third Section 4.5 variant: it considers
// the r most recent refreshes and grows the width when the majority were
// value-initiated, shrinking it otherwise. The paper's main algorithm is the
// r = 1 special case (with the probabilistic gates added); this variant is
// deterministic over the window.
type HistoryController struct {
	params Params
	width  float64
	window []RefreshKind
	r      int
}

// NewHistoryController returns a history-window controller considering the
// last r refreshes.
func NewHistoryController(params Params, initialWidth float64, r int) *HistoryController {
	if err := params.Validate(); err != nil {
		panic(err)
	}
	if r < 1 {
		panic("core: history window must be >= 1")
	}
	return &HistoryController{params: params, width: initialWidth, r: r}
}

// Width returns the stored width.
func (h *HistoryController) Width() float64 { return h.width }

// EffectiveWidth applies thresholds.
func (h *HistoryController) EffectiveWidth() float64 { return EffectiveWidth(h.params, h.width) }

// OnRefresh records the refresh and applies the majority rule once the
// window is full.
func (h *HistoryController) OnRefresh(kind RefreshKind) float64 {
	h.window = append(h.window, kind)
	if len(h.window) > h.r {
		h.window = h.window[1:]
	}
	vir := 0
	for _, k := range h.window {
		if k == ValueInitiated {
			vir++
		}
	}
	if 2*vir > len(h.window) {
		if h.width == 0 {
			h.width = math.Max(h.params.Lambda0, 1)
		} else {
			h.width *= 1 + h.params.Alpha
		}
	} else {
		h.width /= 1 + h.params.Alpha
	}
	return h.EffectiveWidth()
}

// NewInterval ships the current-width interval centered on v.
func (h *HistoryController) NewInterval(v float64) interval.Interval {
	return interval.Centered(v, h.EffectiveWidth())
}

// RefreshInterval is OnRefresh followed by NewInterval.
func (h *HistoryController) RefreshInterval(kind RefreshKind, v float64) interval.Interval {
	h.OnRefresh(kind)
	return h.NewInterval(v)
}

var _ WidthPolicy = (*HistoryController)(nil)
