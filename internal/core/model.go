package core

import "math"

// This file implements the Appendix A analytical model. For a value
// performing a one-dimensional random walk with step size s, queried every Tq
// time steps with precision constraints uniform on [0, deltaMax], the
// per-time-step refresh probabilities for a cached interval of width W are
//
//	Pvr(W) = K1 / W^2        (value-initiated; Chebyshev bound on the walk)
//	Pqr(W) = K2 * W          (query-initiated; constraint below W)
//
// with K2 = 1/(Tq*deltaMax). The expected cost rate is
// Omega(W) = Cvr*Pvr(W) + Cqr*Pqr(W), minimized at
// W* = (theta*K1/K2)^(1/3) with theta = 2*Cvr/Cqr — exactly the width at
// which theta*Pvr = Pqr, which is the condition the adaptive controller
// drives the system toward.

// Model carries the analytical model parameters.
type Model struct {
	// K1 scales the value-initiated refresh probability K1/W^2. It depends
	// on the update step distribution.
	K1 float64
	// K2 scales the query-initiated refresh probability K2*W. For the
	// Appendix A workload K2 = 1/(Tq*deltaMax).
	K2 float64
	// Cvr and Cqr are the refresh costs.
	Cvr float64
	// Cqr is the query-initiated refresh cost.
	Cqr float64
}

// K2FromWorkload derives K2 from the query period and the maximum precision
// constraint: a query arrives with probability 1/Tq per step and trips a
// refresh with probability W/deltaMax.
func K2FromWorkload(tq, deltaMax float64) float64 {
	if tq <= 0 || deltaMax <= 0 {
		panic("core: Tq and deltaMax must be positive")
	}
	return 1 / (tq * deltaMax)
}

// K1FromStep derives a rough K1 from the random-walk step size and the mean
// inter-refresh time t, following the Chebyshev bound Pvr <= t*(2s/W)^2 of
// Appendix A with the bound treated as an approximation at t = 1.
func K1FromStep(s float64) float64 { return 4 * s * s }

// Pvr returns the value-initiated refresh probability at width w, clamped to
// [0, 1]. A zero width yields probability 1 (every update escapes a
// zero-width interval); an infinite width yields 0.
func (m Model) Pvr(w float64) float64 {
	if w == 0 {
		return 1
	}
	if math.IsInf(w, 1) {
		return 0
	}
	return math.Min(m.K1/(w*w), 1)
}

// Pqr returns the query-initiated refresh probability at width w, clamped to
// [0, 1]. An infinite width trips every query.
func (m Model) Pqr(w float64) float64 {
	if math.IsInf(w, 1) {
		return 1
	}
	return math.Min(m.K2*w, 1)
}

// Omega returns the expected cost rate Cvr*Pvr(w) + Cqr*Pqr(w).
func (m Model) Omega(w float64) float64 {
	return m.Cvr*m.Pvr(w) + m.Cqr*m.Pqr(w)
}

// Theta returns the interval-mode cost factor 2*Cvr/Cqr.
func (m Model) Theta() float64 { return 2 * m.Cvr / m.Cqr }

// OptimalWidth returns the width W* = (theta*K1/K2)^(1/3) minimizing Omega
// (the root of dOmega/dW; Section 3).
func (m Model) OptimalWidth() float64 {
	return math.Cbrt(m.Theta() * m.K1 / m.K2)
}

// CrossoverWidth returns the width at which theta*Pvr = Pqr. For this model
// it coincides with OptimalWidth; it is exposed separately so tests can
// assert the identity that justifies the balancing algorithm.
func (m Model) CrossoverWidth() float64 {
	// theta*K1/W^2 = K2*W  =>  W^3 = theta*K1/K2.
	return math.Cbrt(m.Theta() * m.K1 / m.K2)
}

// Curve samples Pvr, Pqr and Omega at n evenly spaced widths in [lo, hi],
// returning parallel slices. It regenerates the data behind Figure 2.
func (m Model) Curve(lo, hi float64, n int) (ws, pvr, pqr, omega []float64) {
	if n < 2 || hi <= lo {
		panic("core: Curve needs n >= 2 and hi > lo")
	}
	ws = make([]float64, n)
	pvr = make([]float64, n)
	pqr = make([]float64, n)
	omega = make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := 0; i < n; i++ {
		w := lo + float64(i)*step
		ws[i] = w
		pvr[i] = m.Pvr(w)
		pqr[i] = m.Pqr(w)
		omega[i] = m.Omega(w)
	}
	return ws, pvr, pqr, omega
}

// StaleModel is the Divergence Caching analog (Section 4.7): for stale-count
// approximations the value-initiated refresh probability is proportional to
// 1/W rather than 1/W^2 (updates arrive at a rate independent of the bound,
// and a bound of W updates trips every W-th update), so the optimal balance
// uses theta' = Cvr/Cqr.
type StaleModel struct {
	// UpdateRate is the expected updates per time step.
	UpdateRate float64
	// K2 scales Pqr = K2*W as in Model.
	K2 float64
	// Cvr and Cqr are the refresh costs.
	Cvr float64
	// Cqr is the query-initiated refresh cost.
	Cqr float64
}

// Pvr returns UpdateRate/W clamped to [0, 1]; a zero bound refreshes on every
// update.
func (m StaleModel) Pvr(w float64) float64 {
	if w <= 0 {
		return math.Min(m.UpdateRate, 1)
	}
	if math.IsInf(w, 1) {
		return 0
	}
	return math.Min(m.UpdateRate/w, 1)
}

// Pqr returns K2*W clamped to [0, 1].
func (m StaleModel) Pqr(w float64) float64 {
	if math.IsInf(w, 1) {
		return 1
	}
	return math.Min(m.K2*w, 1)
}

// Omega returns the expected cost rate.
func (m StaleModel) Omega(w float64) float64 {
	return m.Cvr*m.Pvr(w) + m.Cqr*m.Pqr(w)
}

// OptimalWidth minimizes Omega: W* = sqrt(theta'*UpdateRate/K2) with
// theta' = Cvr/Cqr.
func (m StaleModel) OptimalWidth() float64 {
	return math.Sqrt(m.Cvr / m.Cqr * m.UpdateRate / m.K2)
}
