package core

import (
	"math"
	"testing"
)

func TestUncenteredDirectionalGrowth(t *testing.T) {
	u := NewUncenteredController(theta1Params(), 8, alwaysLow)
	if u.LowerWidth() != 4 || u.UpperWidth() != 4 {
		t.Fatalf("initial widths %g/%g, want 4/4", u.LowerWidth(), u.UpperWidth())
	}
	u.OnValueRefreshAbove()
	if u.UpperWidth() != 8 || u.LowerWidth() != 4 {
		t.Errorf("after above-escape: %g/%g, want lower 4 upper 8", u.LowerWidth(), u.UpperWidth())
	}
	u.OnValueRefreshBelow()
	if u.LowerWidth() != 8 {
		t.Errorf("after below-escape: lower %g, want 8", u.LowerWidth())
	}
}

func TestUncenteredShrinkBothSides(t *testing.T) {
	u := NewUncenteredController(theta1Params(), 8, alwaysLow)
	u.OnRefresh(QueryInitiated)
	if u.LowerWidth() != 2 || u.UpperWidth() != 2 {
		t.Errorf("after QIR: %g/%g, want 2/2", u.LowerWidth(), u.UpperWidth())
	}
}

func TestUncenteredInterval(t *testing.T) {
	u := NewUncenteredController(theta1Params(), 8, alwaysLow)
	u.OnValueRefreshAbove() // lower 4, upper 8
	iv := u.NewInterval(100)
	if iv.Lo != 96 || iv.Hi != 108 {
		t.Errorf("interval = %v, want [96, 108]", iv)
	}
	if !iv.Valid(100) {
		t.Errorf("interval does not contain exact value")
	}
}

func TestUncenteredThresholds(t *testing.T) {
	p := theta1Params()
	p.Lambda0 = 6
	p.Lambda1 = 100
	u := NewUncenteredController(p, 8, alwaysLow)
	u.OnRefresh(QueryInitiated) // total 4 < lambda0
	iv := u.NewInterval(10)
	if !iv.IsExact() {
		t.Errorf("total below lambda0 should ship exact copy, got %v", iv)
	}
	for i := 0; i < 10; i++ {
		u.OnRefresh(ValueInitiated)
	}
	iv = u.NewInterval(10)
	if !iv.IsUnbounded() {
		t.Errorf("total above lambda1 should ship unbounded, got %v", iv)
	}
}

func TestUncenteredDirectionalRefreshInterval(t *testing.T) {
	u := NewUncenteredController(theta1Params(), 8, alwaysLow)
	iv := u.RefreshIntervalDirectional(ValueInitiated, true, 50)
	if iv.Hi-50 != 8 || 50-iv.Lo != 4 {
		t.Errorf("directional refresh interval = %v, want upper 8 lower 4 around 50", iv)
	}
	iv = u.RefreshIntervalDirectional(QueryInitiated, false, 50)
	if 50-iv.Lo != 2 || iv.Hi-50 != 4 {
		t.Errorf("after shrink: %v, want lower 2 upper 4", iv)
	}
}

func TestUncenteredGrowFromZero(t *testing.T) {
	p := theta1Params()
	p.Lambda0 = 3
	u := NewUncenteredController(p, 0, alwaysLow)
	u.OnValueRefreshAbove()
	if u.UpperWidth() != 1.5 {
		t.Errorf("upper width after grow from 0 = %g, want lambda0/2 = 1.5", u.UpperWidth())
	}
	u2 := NewUncenteredController(theta1Params(), 0, alwaysLow)
	u2.OnValueRefreshBelow()
	if u2.LowerWidth() != 0.5 {
		t.Errorf("lower width after grow from 0 with lambda0=0 = %g, want 0.5", u2.LowerWidth())
	}
}

func TestTimeVaryingGrowth(t *testing.T) {
	now := 0.0
	base := NewController(theta1Params(), 4, alwaysLow)
	tv := NewTimeVaryingController(base, LinearGrowth(1), func() float64 { return now })
	if got := tv.EffectiveWidth(); got != 4 {
		t.Fatalf("width at t=0 = %g, want 4", got)
	}
	now = 3
	if got := tv.EffectiveWidth(); got != 10 { // 4 + 2*3
		t.Errorf("width at t=3 = %g, want 10", got)
	}
	iv := tv.NewInterval(0)
	if iv.Lo != -5 || iv.Hi != 5 {
		t.Errorf("interval = %v, want [-5, 5]", iv)
	}
	// Refresh resets the clock.
	tv.OnRefresh(QueryInitiated) // base 4 -> 2
	if got := tv.EffectiveWidth(); got != 2 {
		t.Errorf("width right after refresh = %g, want 2", got)
	}
}

func TestTimeVaryingGrowthFuncs(t *testing.T) {
	if got := SqrtGrowth(2)(9); got != 6 {
		t.Errorf("SqrtGrowth(2)(9) = %g, want 6", got)
	}
	if got := CbrtGrowth(3)(8); got != 6 {
		t.Errorf("CbrtGrowth(3)(8) = %g, want 6", got)
	}
	if got := LinearGrowth(2)(5); got != 10 {
		t.Errorf("LinearGrowth(2)(5) = %g, want 10", got)
	}
	// Negative elapsed times are clamped.
	if got := SqrtGrowth(1)(-4); got != 0 {
		t.Errorf("SqrtGrowth at negative t = %g, want 0", got)
	}
}

func TestTimeVaryingUnboundedStaysUnbounded(t *testing.T) {
	p := theta1Params()
	p.Lambda1 = 3
	base := NewController(p, 5, alwaysLow)
	tv := NewTimeVaryingController(base, LinearGrowth(1), func() float64 { return 10 })
	if !math.IsInf(tv.EffectiveWidth(), 1) {
		t.Errorf("unbounded base width should stay unbounded")
	}
}

func TestHistoryControllerMajorityRule(t *testing.T) {
	h := NewHistoryController(theta1Params(), 8, 3)
	// Window fills: VIR, VIR -> majority VIR each time -> grow twice.
	h.OnRefresh(ValueInitiated) // window [V] -> grow -> 16
	h.OnRefresh(ValueInitiated) // window [V,V] -> grow -> 32
	if h.Width() != 32 {
		t.Fatalf("width = %g, want 32", h.Width())
	}
	h.OnRefresh(QueryInitiated) // [V,V,Q]: majority VIR -> grow -> 64
	if h.Width() != 64 {
		t.Fatalf("width = %g, want 64 (majority still VIR)", h.Width())
	}
	h.OnRefresh(QueryInitiated) // [V,Q,Q]: majority QIR -> shrink -> 32
	if h.Width() != 32 {
		t.Fatalf("width = %g, want 32", h.Width())
	}
	h.OnRefresh(QueryInitiated) // [Q,Q,Q] -> shrink -> 16
	if h.Width() != 16 {
		t.Fatalf("width = %g, want 16", h.Width())
	}
}

func TestHistoryControllerTieShrinks(t *testing.T) {
	h := NewHistoryController(theta1Params(), 8, 2)
	h.OnRefresh(ValueInitiated) // [V] majority -> 16
	h.OnRefresh(QueryInitiated) // [V,Q] tie -> shrink -> 8
	if h.Width() != 8 {
		t.Errorf("width after tie = %g, want 8", h.Width())
	}
}

func TestHistoryControllerInterval(t *testing.T) {
	h := NewHistoryController(theta1Params(), 8, 1)
	iv := h.RefreshInterval(QueryInitiated, 1)
	if iv.Width() != 4 || !iv.Valid(1) {
		t.Errorf("history interval = %v, want width 4 containing 1", iv)
	}
}

func TestHistoryControllerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("r=0 did not panic")
		}
	}()
	NewHistoryController(theta1Params(), 1, 0)
}

func TestVariantPanics(t *testing.T) {
	base := NewController(theta1Params(), 1, alwaysLow)
	cases := []func(){
		func() { NewUncenteredController(Params{Cvr: -1, Cqr: 1}, 1, alwaysLow) },
		func() { NewUncenteredController(theta1Params(), 1, nil) },
		func() { NewTimeVaryingController(nil, LinearGrowth(1), func() float64 { return 0 }) },
		func() { NewTimeVaryingController(base, nil, func() float64 { return 0 }) },
		func() { NewTimeVaryingController(base, LinearGrowth(1), nil) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}
