package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// seqRand replays a fixed sequence of variates, then repeats the last one.
type seqRand struct {
	vals []float64
	i    int
}

func (s *seqRand) Float64() float64 {
	if s.i < len(s.vals) {
		v := s.vals[s.i]
		s.i++
		return v
	}
	if len(s.vals) == 0 {
		return 0
	}
	return s.vals[len(s.vals)-1]
}

// alwaysLow always fires probabilistic adjustments; alwaysHigh never does.
var (
	alwaysLow  = &seqRand{vals: []float64{0}}
	alwaysHigh = &seqRand{vals: []float64{0.999999}}
)

func theta1Params() Params {
	return Params{Cvr: 1, Cqr: 2, Alpha: 1, Lambda0: 0, Lambda1: math.Inf(1)}
}

func TestControllerGrowOnValueRefresh(t *testing.T) {
	c := NewController(theta1Params(), 4, &seqRand{vals: []float64{0}})
	got := c.OnRefresh(ValueInitiated)
	if got != 8 {
		t.Fatalf("width after VIR = %g, want 8 (doubled with alpha=1)", got)
	}
	if c.Grows() != 1 || c.Shrinks() != 0 {
		t.Errorf("grows=%d shrinks=%d, want 1, 0", c.Grows(), c.Shrinks())
	}
}

func TestControllerShrinkOnQueryRefresh(t *testing.T) {
	c := NewController(theta1Params(), 4, &seqRand{vals: []float64{0}})
	got := c.OnRefresh(QueryInitiated)
	if got != 2 {
		t.Fatalf("width after QIR = %g, want 2 (halved with alpha=1)", got)
	}
}

func TestControllerAlphaControlsMagnitude(t *testing.T) {
	p := theta1Params()
	p.Alpha = 0.5
	c := NewController(p, 8, alwaysLow)
	if got := c.OnRefresh(ValueInitiated); got != 12 {
		t.Errorf("alpha=0.5 grow: width = %g, want 12", got)
	}
	c2 := NewController(p, 12, alwaysLow)
	if got := c2.OnRefresh(QueryInitiated); got != 8 {
		t.Errorf("alpha=0.5 shrink: width = %g, want 8", got)
	}
}

func TestControllerAlphaZeroFreezes(t *testing.T) {
	p := theta1Params()
	p.Alpha = 0
	c := NewController(p, 5, alwaysLow)
	c.OnRefresh(ValueInitiated)
	c.OnRefresh(QueryInitiated)
	if c.Width() != 5 {
		t.Errorf("alpha=0 changed width to %g", c.Width())
	}
}

func TestThetaGatesAdjustments(t *testing.T) {
	// theta = 4: grow always, shrink with probability 1/4.
	p := Params{Cvr: 4, Cqr: 2, Alpha: 1, Lambda1: math.Inf(1)}
	// Variate 0.3 >= 1/4 so the shrink must NOT fire.
	c := NewController(p, 8, &seqRand{vals: []float64{0.3}})
	if got := c.OnRefresh(QueryInitiated); got != 8 {
		t.Errorf("shrink fired with variate 0.3 >= 1/theta=0.25: width %g", got)
	}
	// Variate 0.2 < 1/4 so the shrink must fire.
	c2 := NewController(p, 8, &seqRand{vals: []float64{0.2}})
	if got := c2.OnRefresh(QueryInitiated); got != 4 {
		t.Errorf("shrink missed with variate 0.2 < 0.25: width %g", got)
	}
	// Grows are unconditional at theta >= 1 even with a high variate.
	c3 := NewController(p, 8, alwaysHigh)
	if got := c3.OnRefresh(ValueInitiated); got != 16 {
		t.Errorf("grow suppressed at theta=4: width %g", got)
	}
}

func TestThetaBelowOneGatesGrow(t *testing.T) {
	// theta = 0.5: shrink always, grow with probability 1/2.
	p := Params{Cvr: 0.5, Cqr: 2, Alpha: 1, Lambda1: math.Inf(1)}
	c := NewController(p, 8, &seqRand{vals: []float64{0.7}})
	if got := c.OnRefresh(ValueInitiated); got != 8 {
		t.Errorf("grow fired with variate 0.7 >= theta=0.5: width %g", got)
	}
	c2 := NewController(p, 8, &seqRand{vals: []float64{0.7}})
	if got := c2.OnRefresh(QueryInitiated); got != 4 {
		t.Errorf("shrink suppressed at theta=0.5: width %g", got)
	}
}

func TestLowerThreshold(t *testing.T) {
	p := theta1Params()
	p.Lambda0 = 3
	c := NewController(p, 4, alwaysLow)
	// 4/2 = 2 < lambda0=3 -> effective 0, original retained at 2.
	if got := c.OnRefresh(QueryInitiated); got != 0 {
		t.Fatalf("effective width = %g, want 0 below lambda0", got)
	}
	if c.Width() != 2 {
		t.Fatalf("original width = %g, want 2 retained", c.Width())
	}
	// Next VIR doubles the original 2 -> 4 >= lambda0, back to real interval.
	if got := c.OnRefresh(ValueInitiated); got != 4 {
		t.Errorf("width after recovery = %g, want 4", got)
	}
}

func TestUpperThreshold(t *testing.T) {
	p := theta1Params()
	p.Lambda1 = 10
	c := NewController(p, 6, alwaysLow)
	// 6*2 = 12 >= lambda1 -> effective +Inf, original retained at 12.
	got := c.OnRefresh(ValueInitiated)
	if !math.IsInf(got, 1) {
		t.Fatalf("effective width = %g, want +Inf at/above lambda1", got)
	}
	if c.Width() != 12 {
		t.Fatalf("original width = %g, want 12 retained", c.Width())
	}
	// Shrinks resume from the original width: 12/2 = 6 < lambda1.
	if got := c.OnRefresh(QueryInitiated); got != 6 {
		t.Errorf("width after shrink = %g, want 6", got)
	}
}

func TestExactCachingSpecialCase(t *testing.T) {
	// lambda1 = lambda0 forces every width to 0 or Inf: the algorithm
	// degenerates to a cache/don't-cache decision (Section 2, Section 4.6).
	p := theta1Params()
	p.Lambda0 = 5
	p.Lambda1 = 5
	c := NewController(p, 1, alwaysLow)
	for i := 0; i < 50; i++ {
		var w float64
		if i%2 == 0 {
			w = c.OnRefresh(ValueInitiated)
		} else {
			w = c.OnRefresh(QueryInitiated)
		}
		if w != 0 && !math.IsInf(w, 1) {
			t.Fatalf("effective width %g is neither 0 nor Inf with lambda0=lambda1", w)
		}
	}
}

func TestGrowFromZeroWidthReseeds(t *testing.T) {
	p := theta1Params()
	p.Lambda0 = 2
	c := NewController(p, 0, alwaysLow)
	c.OnRefresh(ValueInitiated)
	if c.Width() != 2 {
		t.Errorf("width after grow from 0 = %g, want lambda0=2", c.Width())
	}
	// With lambda0 = 0 the reseed falls back to 1.
	c2 := NewController(theta1Params(), 0, alwaysLow)
	c2.OnRefresh(ValueInitiated)
	if c2.Width() != 1 {
		t.Errorf("width after grow from 0 with lambda0=0 = %g, want 1", c2.Width())
	}
}

func TestNewIntervalCentered(t *testing.T) {
	c := NewController(theta1Params(), 10, alwaysLow)
	iv := c.NewInterval(100)
	if iv.Lo != 95 || iv.Hi != 105 {
		t.Errorf("NewInterval(100) = %v, want [95, 105]", iv)
	}
	if iv.Center() != 100 {
		t.Errorf("center = %g, want 100", iv.Center())
	}
}

func TestRefreshInterval(t *testing.T) {
	c := NewController(theta1Params(), 10, alwaysLow)
	iv := c.RefreshInterval(QueryInitiated, 100)
	if iv.Width() != 5 {
		t.Errorf("refreshed width = %g, want 5", iv.Width())
	}
	if !iv.Valid(100) {
		t.Errorf("refreshed interval %v does not contain the exact value", iv)
	}
}

func TestFixedController(t *testing.T) {
	f := NewFixedController(7)
	f.OnRefresh(ValueInitiated)
	f.OnRefresh(QueryInitiated)
	if f.Width() != 7 || f.EffectiveWidth() != 7 {
		t.Errorf("fixed width drifted: %g / %g", f.Width(), f.EffectiveWidth())
	}
	iv := f.RefreshInterval(ValueInitiated, 0)
	if iv.Lo != -3.5 || iv.Hi != 3.5 {
		t.Errorf("fixed interval = %v, want [-3.5, 3.5]", iv)
	}
}

func TestControllerPanicsOnBadInput(t *testing.T) {
	cases := []func(){
		func() { NewController(Params{Cvr: -1, Cqr: 1}, 1, alwaysLow) },
		func() { NewController(theta1Params(), -1, alwaysLow) },
		func() { NewController(theta1Params(), 1, nil) },
		func() { NewFixedController(-1) },
		func() { NewFixedController(math.NaN()) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestSetWidth(t *testing.T) {
	c := NewController(theta1Params(), 1, alwaysLow)
	c.SetWidth(42)
	if c.Width() != 42 {
		t.Errorf("SetWidth did not stick: %g", c.Width())
	}
	defer func() {
		if recover() == nil {
			t.Errorf("SetWidth(-1) did not panic")
		}
	}()
	c.SetWidth(-1)
}

// TestConvergenceToOptimum drives a controller with refresh events sampled
// from the analytical model and checks the width settles near the model's
// optimum. This is a direct check of the Section 3 argument: balancing
// theta*Pvr against Pqr finds W*.
func TestConvergenceToOptimum(t *testing.T) {
	for _, theta := range []float64{1, 4} {
		model := Model{K1: 1, K2: 1.0 / 200, Cvr: theta, Cqr: 2}
		p := Params{Cvr: theta, Cqr: 2, Alpha: 0.05, Lambda1: math.Inf(1)}
		rng := rand.New(rand.NewSource(7))
		c := NewController(p, 1, rng)
		// Simulate: at each step a VIR occurs with model.Pvr, a QIR with
		// model.Pqr, evaluated at the current width.
		var sum float64
		var n int
		for step := 0; step < 400000; step++ {
			w := c.Width()
			if rng.Float64() < model.Pvr(w) {
				c.OnRefresh(ValueInitiated)
			}
			if rng.Float64() < model.Pqr(w) {
				c.OnRefresh(QueryInitiated)
			}
			if step > 200000 {
				sum += c.Width()
				n++
			}
		}
		avg := sum / float64(n)
		opt := model.OptimalWidth()
		if math.Abs(avg-opt)/opt > 0.25 {
			t.Errorf("theta=%g: converged width %.3g, optimum %.3g (>25%% off)", theta, avg, opt)
		}
	}
}

func TestQuickWidthStaysPositive(t *testing.T) {
	f := func(seed int64, steps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewController(theta1Params(), 1, rng)
		for i := 0; i < int(steps); i++ {
			if rng.Intn(2) == 0 {
				c.OnRefresh(ValueInitiated)
			} else {
				c.OnRefresh(QueryInitiated)
			}
			if c.Width() <= 0 || math.IsNaN(c.Width()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickEffectiveWidthThresholding(t *testing.T) {
	f := func(w, l0, l1 float64) bool {
		w = math.Abs(w)
		l0 = math.Abs(l0)
		l1 = math.Abs(l1)
		if math.IsNaN(w) || math.IsNaN(l0) || math.IsNaN(l1) {
			return true
		}
		if l1 < l0 {
			l0, l1 = l1, l0
		}
		p := Params{Cvr: 1, Cqr: 2, Lambda0: l0, Lambda1: l1}
		got := EffectiveWidth(p, w)
		switch {
		case w < l0:
			return got == 0
		case w >= l1:
			return math.IsInf(got, 1)
		default:
			return got == w
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickShippedIntervalAlwaysValid(t *testing.T) {
	f := func(seed int64, v float64) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e150 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		p := Params{Cvr: 1, Cqr: 2, Alpha: 1, Lambda0: 0.5, Lambda1: 100}
		c := NewController(p, 1, rng)
		for i := 0; i < 32; i++ {
			kind := ValueInitiated
			if rng.Intn(2) == 0 {
				kind = QueryInitiated
			}
			iv := c.RefreshInterval(kind, v)
			if !iv.Valid(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
