package core

import (
	"math"
	"testing"
	"testing/quick"
)

// fig2Model reproduces the Figure 2 setting: K1 = 1, K2 = 1/200, theta = 1
// ("values set based roughly on a query period of 10 seconds and an average
// precision constraint of 10").
func fig2Model() Model {
	return Model{K1: 1, K2: 1.0 / 200, Cvr: 1, Cqr: 2}
}

func TestOptimalWidthFormula(t *testing.T) {
	m := fig2Model()
	want := math.Cbrt(1 * 1 / (1.0 / 200)) // (theta*K1/K2)^(1/3) = 200^(1/3)
	if got := m.OptimalWidth(); math.Abs(got-want) > 1e-12 {
		t.Errorf("OptimalWidth = %g, want %g", got, want)
	}
}

func TestOptimalWidthIsMinimum(t *testing.T) {
	m := fig2Model()
	wopt := m.OptimalWidth()
	best := m.Omega(wopt)
	for w := 0.5; w <= 40; w += 0.25 {
		if m.Omega(w) < best-1e-12 {
			t.Fatalf("Omega(%g) = %g below Omega(W*) = %g", w, m.Omega(w), best)
		}
	}
}

func TestCrossoverEqualsOptimum(t *testing.T) {
	// Section 3: W* is exactly where theta*Pvr = Pqr.
	for _, theta := range []float64{0.5, 1, 2, 4} {
		m := Model{K1: 1, K2: 1.0 / 200, Cvr: theta, Cqr: 2}
		w := m.CrossoverWidth()
		if math.Abs(w-m.OptimalWidth()) > 1e-12 {
			t.Errorf("theta=%g: crossover %g != optimum %g", theta, w, m.OptimalWidth())
		}
		lhs := m.Theta() * m.Pvr(w)
		rhs := m.Pqr(w)
		if math.Abs(lhs-rhs) > 1e-9 {
			t.Errorf("theta=%g: theta*Pvr(W*)=%g != Pqr(W*)=%g", theta, lhs, rhs)
		}
	}
}

func TestPvrPqrShapes(t *testing.T) {
	m := fig2Model()
	if m.Pvr(0) != 1 {
		t.Errorf("Pvr(0) = %g, want 1", m.Pvr(0))
	}
	if m.Pvr(math.Inf(1)) != 0 {
		t.Errorf("Pvr(Inf) = %g, want 0", m.Pvr(math.Inf(1)))
	}
	if m.Pqr(math.Inf(1)) != 1 {
		t.Errorf("Pqr(Inf) = %g, want 1", m.Pqr(math.Inf(1)))
	}
	if m.Pqr(0) != 0 {
		t.Errorf("Pqr(0) = %g, want 0", m.Pqr(0))
	}
	// Monotonicity.
	prevV, prevQ := m.Pvr(1.0), m.Pqr(1.0)
	for w := 2.0; w < 100; w++ {
		v, q := m.Pvr(w), m.Pqr(w)
		if v > prevV {
			t.Fatalf("Pvr increased at w=%g", w)
		}
		if q < prevQ {
			t.Fatalf("Pqr decreased at w=%g", w)
		}
		prevV, prevQ = v, q
	}
}

func TestProbabilitiesClamped(t *testing.T) {
	m := Model{K1: 1e6, K2: 1e6, Cvr: 1, Cqr: 2}
	if got := m.Pvr(0.001); got != 1 {
		t.Errorf("Pvr not clamped: %g", got)
	}
	if got := m.Pqr(1e9); got != 1 {
		t.Errorf("Pqr not clamped: %g", got)
	}
}

func TestK2FromWorkload(t *testing.T) {
	// Appendix A: K2 = 1/(Tq*deltaMax). Figure 2 caption: Tq=10, davg=10
	// (deltaMax=20) gives K2 = 1/200.
	if got := K2FromWorkload(10, 20); math.Abs(got-1.0/200) > 1e-15 {
		t.Errorf("K2FromWorkload(10, 20) = %g, want 1/200", got)
	}
	defer func() {
		if recover() == nil {
			t.Errorf("K2FromWorkload(0, 1) did not panic")
		}
	}()
	K2FromWorkload(0, 1)
}

func TestK1FromStep(t *testing.T) {
	if got := K1FromStep(1); got != 4 {
		t.Errorf("K1FromStep(1) = %g, want 4 (Chebyshev (2s/W)^2 numerator)", got)
	}
}

func TestCurve(t *testing.T) {
	m := fig2Model()
	ws, pvr, pqr, omega := m.Curve(2, 20, 10)
	if len(ws) != 10 || len(pvr) != 10 || len(pqr) != 10 || len(omega) != 10 {
		t.Fatalf("curve lengths wrong")
	}
	if ws[0] != 2 || ws[9] != 20 {
		t.Errorf("curve endpoints: %g..%g, want 2..20", ws[0], ws[9])
	}
	for i, w := range ws {
		if math.Abs(omega[i]-(m.Cvr*pvr[i]+m.Cqr*pqr[i])) > 1e-12 {
			t.Errorf("omega[%d] inconsistent at w=%g", i, w)
		}
	}
	defer func() {
		if recover() == nil {
			t.Errorf("Curve with n=1 did not panic")
		}
	}()
	m.Curve(0, 1, 1)
}

func TestStaleModelOptimum(t *testing.T) {
	m := StaleModel{UpdateRate: 1, K2: 0.05, Cvr: 1, Cqr: 2}
	wopt := m.OptimalWidth()
	best := m.Omega(wopt)
	for w := 0.25; w < 50; w += 0.25 {
		if m.Omega(w) < best-1e-12 {
			t.Fatalf("stale Omega(%g)=%g below optimum %g", w, m.Omega(w), best)
		}
	}
	// At the stale optimum theta'*Pvr = Pqr with theta' = Cvr/Cqr.
	lhs := m.Cvr / m.Cqr * m.Pvr(wopt)
	rhs := m.Pqr(wopt)
	if math.Abs(lhs-rhs) > 1e-9 {
		t.Errorf("stale crossover mismatch: %g vs %g", lhs, rhs)
	}
}

func TestStaleModelEdges(t *testing.T) {
	m := StaleModel{UpdateRate: 0.5, K2: 0.05, Cvr: 1, Cqr: 2}
	if got := m.Pvr(0); got != 0.5 {
		t.Errorf("stale Pvr(0) = %g, want update rate 0.5", got)
	}
	if got := m.Pvr(math.Inf(1)); got != 0 {
		t.Errorf("stale Pvr(Inf) = %g, want 0", got)
	}
	if got := m.Pqr(math.Inf(1)); got != 1 {
		t.Errorf("stale Pqr(Inf) = %g, want 1", got)
	}
}

func TestQuickOmegaNonNegative(t *testing.T) {
	f := func(w float64) bool {
		w = math.Abs(w)
		if math.IsNaN(w) || math.IsInf(w, 0) {
			return true
		}
		m := fig2Model()
		om := m.Omega(w)
		return om >= 0 && !math.IsNaN(om)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickOptimalBeatsNeighbours(t *testing.T) {
	f := func(k1raw, k2raw uint16) bool {
		k1 := 0.01 + float64(k1raw)/100
		k2 := 0.0001 + float64(k2raw)/1e6
		m := Model{K1: k1, K2: k2, Cvr: 1, Cqr: 2}
		w := m.OptimalWidth()
		if w <= 0 {
			return false
		}
		// Only meaningful where the probabilities are unclamped at the
		// optimum and at both probe points.
		eps := w * 0.05
		for _, probe := range []float64{w - eps, w, w + eps} {
			if m.K1/(probe*probe) >= 1 || m.K2*probe >= 1 {
				return true
			}
		}
		tol := 1e-9 * m.Omega(w)
		return m.Omega(w) <= m.Omega(w-eps)+tol && m.Omega(w) <= m.Omega(w+eps)+tol
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
