package core
