package core

import (
	"math"

	"apcache/internal/interval"
)

// Rand is the source of uniform variates in [0, 1) used for the probabilistic
// width adjustments. *math/rand.Rand satisfies it; tests substitute
// deterministic sequences.
type Rand interface {
	Float64() float64
}

// RefreshKind distinguishes the two refresh types of Section 1.1.
type RefreshKind int

const (
	// ValueInitiated marks a refresh pushed by the source because the exact
	// value escaped the cached interval ("too narrow").
	ValueInitiated RefreshKind = iota
	// QueryInitiated marks a refresh pulled by a query that found the
	// cached interval too wide.
	QueryInitiated
)

// String returns the refresh kind name.
func (k RefreshKind) String() string {
	if k == ValueInitiated {
		return "value-initiated"
	}
	return "query-initiated"
}

// Controller holds the adaptive width state for a single cached
// approximation. The source keeps one Controller per (cache, value) pair;
// the controller's stored width is always the "original" pre-threshold width
// (Section 2: "The source still retains the original width, and uses it when
// setting the next width").
//
// Controller is not safe for concurrent use; the source engine serializes
// access per value.
type Controller struct {
	params Params
	width  float64 // original (pre-threshold) width; may be 0
	rng    Rand
	set    bool

	// adjustment counters, useful for diagnostics and tests
	grows   int
	shrinks int
}

// NewController returns a controller with the given parameters, initial width
// and randomness source. NewController panics if params are invalid (callers
// validate configuration at the API boundary).
func NewController(params Params, initialWidth float64, rng Rand) *Controller {
	if err := params.Validate(); err != nil {
		panic(err)
	}
	if rng == nil {
		panic("core: nil Rand")
	}
	if initialWidth < 0 || math.IsNaN(initialWidth) {
		panic("core: negative or NaN initial width")
	}
	return &Controller{params: params, width: initialWidth, rng: rng, set: true}
}

// Params returns the controller's parameters.
func (c *Controller) Params() Params { return c.params }

// Width returns the current original (pre-threshold) width.
func (c *Controller) Width() float64 { return c.width }

// SetWidth overrides the stored original width.
func (c *Controller) SetWidth(w float64) {
	if w < 0 || math.IsNaN(w) {
		panic("core: negative or NaN width")
	}
	c.width = w
}

// Grows returns how many grow adjustments have been applied.
func (c *Controller) Grows() int { return c.grows }

// Shrinks returns how many shrink adjustments have been applied.
func (c *Controller) Shrinks() int { return c.shrinks }

// EffectiveWidth applies the lower and upper thresholds to the stored width:
// widths below Lambda0 become 0 (exact copy) and widths at or above Lambda1
// become +Inf (effectively uncached). This is the width actually shipped to
// the cache.
func (c *Controller) EffectiveWidth() float64 {
	return EffectiveWidth(c.params, c.width)
}

// EffectiveWidth applies the Lambda0/Lambda1 thresholding of Section 2 to an
// arbitrary width.
func EffectiveWidth(p Params, w float64) float64 {
	if w < p.Lambda0 {
		return 0
	}
	if w >= p.Lambda1 {
		return math.Inf(1)
	}
	return w
}

// OnRefresh applies the width-adjustment rule for a refresh of the given
// kind and returns the new effective width to ship. The stored original
// width is updated; the returned value has thresholds applied.
func (c *Controller) OnRefresh(kind RefreshKind) float64 {
	if kind == ValueInitiated {
		if c.rng.Float64() < c.params.GrowProbability() {
			c.grow()
		}
	} else {
		if c.rng.Float64() < c.params.ShrinkProbability() {
			c.shrink()
		}
	}
	return c.EffectiveWidth()
}

// grow multiplies the width by (1+alpha). A zero width is re-seeded from
// Lambda0 (or 1 if Lambda0 is zero) so the multiplicative update can escape
// the absorbing state W = 0.
func (c *Controller) grow() {
	c.grows++
	if c.width == 0 {
		if c.params.Lambda0 > 0 {
			c.width = c.params.Lambda0
		} else {
			c.width = 1
		}
		return
	}
	c.width *= 1 + c.params.Alpha
}

// shrink divides the width by (1+alpha).
func (c *Controller) shrink() {
	c.shrinks++
	c.width /= 1 + c.params.Alpha
}

// NewInterval centers an interval of the current effective width on the
// exact value v. This is the approximation shipped on a refresh (Section 2
// assumes centered intervals; see Uncentered for the 4.5 variant).
func (c *Controller) NewInterval(v float64) interval.Interval {
	return interval.Centered(v, c.EffectiveWidth())
}

// RefreshInterval applies the adjustment for the given refresh kind and
// returns the new interval centered on v.
func (c *Controller) RefreshInterval(kind RefreshKind, v float64) interval.Interval {
	c.OnRefresh(kind)
	return c.NewInterval(v)
}

// FixedController implements the same shipping interface as Controller but
// never adjusts its width. It is used by the fixed-width sweeps of Section
// 4.2 (Figure 3) and as the exact-copy policy (width 0).
type FixedController struct {
	w float64
}

// NewFixedController returns a controller pinned at width w.
func NewFixedController(w float64) *FixedController {
	if w < 0 || math.IsNaN(w) {
		panic("core: negative or NaN fixed width")
	}
	return &FixedController{w: w}
}

// Width returns the pinned width.
func (f *FixedController) Width() float64 { return f.w }

// EffectiveWidth returns the pinned width (no thresholds apply).
func (f *FixedController) EffectiveWidth() float64 { return f.w }

// OnRefresh ignores the refresh and returns the pinned width.
func (f *FixedController) OnRefresh(RefreshKind) float64 { return f.w }

// NewInterval centers an interval of the pinned width on v.
func (f *FixedController) NewInterval(v float64) interval.Interval {
	return interval.Centered(v, f.w)
}

// RefreshInterval returns the pinned-width interval centered on v.
func (f *FixedController) RefreshInterval(_ RefreshKind, v float64) interval.Interval {
	return f.NewInterval(v)
}

// WidthPolicy is the interface shared by all width controllers: the paper's
// adaptive controller, the fixed-width controller, and the 4.5 variants.
// The source engine programs against this interface.
type WidthPolicy interface {
	// OnRefresh applies the policy's adjustment for a refresh of the given
	// kind and returns the new effective width.
	OnRefresh(kind RefreshKind) float64
	// NewInterval builds the interval to ship for exact value v using the
	// current effective width.
	NewInterval(v float64) interval.Interval
	// RefreshInterval is OnRefresh followed by NewInterval.
	RefreshInterval(kind RefreshKind, v float64) interval.Interval
	// Width returns the policy's stored (pre-threshold) width, used for
	// eviction ranking.
	Width() float64
	// EffectiveWidth returns the width with thresholds applied.
	EffectiveWidth() float64
}

var (
	_ WidthPolicy = (*Controller)(nil)
	_ WidthPolicy = (*FixedController)(nil)
)
