package divergence

import (
	"math"
	"testing"

	"apcache/internal/core"
	"apcache/internal/workload"
)

func baseConfig() Config {
	return Config{
		NumSources:  5,
		Cvr:         1,
		Cqr:         2,
		K:           23,
		GMax:        200,
		Tq:          1,
		Constraints: workload.ConstraintDist{Avg: 8, Sigma: 1},
		Duration:    3000,
		Warmup:      300,
		Seed:        1,
	}
}

func TestRunProducesActivity(t *testing.T) {
	res, err := Run(baseConfig())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.CostRate <= 0 {
		t.Errorf("CostRate = %g", res.CostRate)
	}
	if len(res.FinalLimits) != 5 {
		t.Errorf("FinalLimits = %v", res.FinalLimits)
	}
	for _, g := range res.FinalLimits {
		if g < 0 || g > 200 {
			t.Errorf("limit %d out of [0, 200]", g)
		}
	}
}

func TestDeterministic(t *testing.T) {
	a, _ := Run(baseConfig())
	b, _ := Run(baseConfig())
	if a.CostRate != b.CostRate {
		t.Errorf("same-seed runs differ: %g vs %g", a.CostRate, b.CostRate)
	}
}

func TestLooseConstraintsLowerCost(t *testing.T) {
	tight := baseConfig()
	tight.Constraints = workload.ConstraintDist{Avg: 1, Sigma: 1}
	loose := baseConfig()
	loose.Constraints = workload.ConstraintDist{Avg: 14, Sigma: 1}
	rTight, err := Run(tight)
	if err != nil {
		t.Fatal(err)
	}
	rLoose, err := Run(loose)
	if err != nil {
		t.Fatal(err)
	}
	if rLoose.CostRate >= rTight.CostRate {
		t.Errorf("loose constraints cost %g >= tight %g", rLoose.CostRate, rTight.CostRate)
	}
}

func TestLimitsGrowWithLooseConstraints(t *testing.T) {
	loose := baseConfig()
	loose.Constraints = workload.ConstraintDist{Avg: 14, Sigma: 0}
	res, err := Run(loose)
	if err != nil {
		t.Fatal(err)
	}
	// With every constraint at 14, a limit of 14 never trips a QIR and
	// amortizes VIRs; limits should sit well above 1.
	for i, g := range res.FinalLimits {
		if g < 5 {
			t.Errorf("source %d limit %d, want >= 5 under loose constraints", i, g)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	good := baseConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.NumSources = 0 },
		func(c *Config) { c.Cqr = 0 },
		func(c *Config) { c.K = 0 },
		func(c *Config) { c.GMax = 0 },
		func(c *Config) { c.Tq = 0 },
		func(c *Config) { c.Duration = 0 },
		func(c *Config) { c.Warmup = 99999 },
	}
	for i, mut := range mutations {
		cfg := baseConfig()
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
		if _, err := Run(cfg); err == nil {
			t.Errorf("Run accepted mutation %d", i)
		}
	}
}

func TestWindow(t *testing.T) {
	w := newWindow(3)
	if w.full() {
		t.Fatalf("empty window full")
	}
	w.add(10)
	w.add(20)
	w.add(30)
	if !w.full() {
		t.Fatalf("filled window not full")
	}
	if got := w.span(); got != 20 {
		t.Errorf("span = %g, want 20", got)
	}
	if got := w.rate(); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("rate = %g, want 0.1 (2 intervals over 20)", got)
	}
	// Ring overwrite: adding 40 drops 10.
	w.add(40)
	if got := w.span(); got != 20 {
		t.Errorf("span after wrap = %g, want 20", got)
	}
}

func TestWindowFractionBelow(t *testing.T) {
	w := newWindow(4)
	if got := w.fractionBelow(5); got != 0.5 {
		t.Errorf("empty-window prior = %g, want 0.5", got)
	}
	for _, v := range []float64{1, 2, 3, 4} {
		w.add(v)
	}
	if got := w.fractionBelow(3); got != 0.5 {
		t.Errorf("fractionBelow(3) = %g, want 0.5", got)
	}
	if got := w.fractionBelow(100); got != 1 {
		t.Errorf("fractionBelow(100) = %g, want 1", got)
	}
}

func TestWindowDegenerate(t *testing.T) {
	w := newWindow(3)
	w.add(5)
	if w.span() != 0 || w.rate() != 0 {
		t.Errorf("single-sample window span/rate = %g/%g", w.span(), w.rate())
	}
}

func TestChooseLimitBalances(t *testing.T) {
	// High write rate, low read rate, loose constraints: big limit.
	cw := newWindow(8)
	for i := 0; i < 8; i++ {
		cw.add(50) // all constraints at 50
	}
	g := chooseLimit(1, 2, 1.0, 0.01, cw, 200)
	if g < 40 {
		t.Errorf("limit %d, want >= 40 under loose constraints", g)
	}
	// Tight constraints at 1: any g >= 2 trips every read; with reads
	// dominating, keep g at most 1.
	tight := newWindow(8)
	for i := 0; i < 8; i++ {
		tight.add(1)
	}
	g = chooseLimit(1, 2, 0.01, 1.0, tight, 200)
	if g > 1 {
		t.Errorf("limit %d, want <= 1 under tight constraints", g)
	}
	// Write-heavy with exact constraints: exact caching (g = 0) wins.
	exactC := newWindow(4)
	for i := 0; i < 4; i++ {
		exactC.add(0)
	}
	g = chooseLimit(1, 2, 0.2, 1.0, exactC, 200)
	if g != 0 {
		t.Errorf("limit %d, want 0 (exact caching) for exact constraints with busy reads", g)
	}
}

// alwaysFire forces every probabilistic adjustment.
type alwaysFire struct{}

func (alwaysFire) Float64() float64 { return 0 }

func staleParams() core.Params {
	return core.Params{Cvr: 1, Cqr: 2, Alpha: 1, Lambda0: 1, Lambda1: math.Inf(1), Mode: core.ModeStaleCount}
}

func TestStalePolicyIntervalShape(t *testing.T) {
	p := NewStalePolicy(core.NewController(staleParams(), 4, alwaysFire{}))
	iv := p.NewInterval(100)
	if iv.Lo != 100 || iv.Hi != 104 {
		t.Errorf("interval %v, want [100, 104]", iv)
	}
}

func TestStalePolicyUnboundedAboveOnly(t *testing.T) {
	params := staleParams()
	params.Lambda1 = 2
	p := NewStalePolicy(core.NewController(params, 10, alwaysFire{}))
	iv := p.NewInterval(100)
	if iv.Lo != 100 || !math.IsInf(iv.Hi, 1) {
		t.Errorf("interval %v, want [100, +Inf)", iv)
	}
}

func TestStalePolicyThetaPrime(t *testing.T) {
	// theta' = Cvr/Cqr = 0.5: grow probability 0.5, shrink always.
	p := staleParams()
	if got := p.GrowProbability(); got != 0.5 {
		t.Errorf("grow probability %g, want 0.5", got)
	}
	if got := p.ShrinkProbability(); got != 1 {
		t.Errorf("shrink probability %g, want 1", got)
	}
}

func TestStalePolicyRefresh(t *testing.T) {
	p := NewStalePolicy(core.NewController(staleParams(), 4, alwaysFire{}))
	iv := p.RefreshInterval(core.QueryInitiated, 10)
	if iv.Hi-iv.Lo != 2 {
		t.Errorf("width after QIR = %g, want 2", iv.Hi-iv.Lo)
	}
	if p.Width() != 2 || p.EffectiveWidth() != 2 {
		t.Errorf("widths %g/%g", p.Width(), p.EffectiveWidth())
	}
}

func TestStalePolicyRequiresStaleMode(t *testing.T) {
	params := staleParams()
	params.Mode = core.ModeInterval
	defer func() {
		if recover() == nil {
			t.Fatalf("interval-mode controller accepted")
		}
	}()
	NewStalePolicy(core.NewController(params, 1, alwaysFire{}))
}
