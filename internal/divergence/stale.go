package divergence

import (
	"math"

	"apcache/internal/core"
	"apcache/internal/interval"
)

// StalePolicy specializes the paper's adaptive algorithm to the Divergence
// Caching setting (Section 2.1, Section 4.7): the "value" is the cumulative
// update count, which only grows, so the shipped approximation is the
// one-sided interval [v, v+W] — a promise of at most W unseen updates. The
// wrapped controller must use core.ModeStaleCount so the cost factor is
// theta' = Cvr/Cqr (the value-initiated refresh probability is ~1/W here,
// not ~1/W^2).
type StalePolicy struct {
	ctrl *core.Controller
}

// NewStalePolicy wraps a stale-count controller. It panics if the
// controller is not in stale-count mode — a silent wrong theta would
// invalidate the comparison.
func NewStalePolicy(ctrl *core.Controller) *StalePolicy {
	if ctrl.Params().Mode != core.ModeStaleCount {
		panic("divergence: StalePolicy requires core.ModeStaleCount")
	}
	return &StalePolicy{ctrl: ctrl}
}

// Width returns the controller's stored width.
func (p *StalePolicy) Width() float64 { return p.ctrl.Width() }

// EffectiveWidth returns the thresholded width.
func (p *StalePolicy) EffectiveWidth() float64 { return p.ctrl.EffectiveWidth() }

// OnRefresh delegates the probabilistic adjustment.
func (p *StalePolicy) OnRefresh(kind core.RefreshKind) float64 { return p.ctrl.OnRefresh(kind) }

// NewInterval ships [v, v+W]: the update counter can only grow.
func (p *StalePolicy) NewInterval(v float64) interval.Interval {
	w := p.ctrl.EffectiveWidth()
	if math.IsInf(w, 1) {
		return interval.Interval{Lo: v, Hi: math.Inf(1)}
	}
	return interval.Interval{Lo: v, Hi: v + w}
}

// RefreshInterval is OnRefresh followed by NewInterval.
func (p *StalePolicy) RefreshInterval(kind core.RefreshKind, v float64) interval.Interval {
	p.OnRefresh(kind)
	return p.NewInterval(v)
}

var _ core.WidthPolicy = (*StalePolicy)(nil)
