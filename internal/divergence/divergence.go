// Package divergence implements the Divergence Caching baseline of Huang,
// Sloan and Wolfson [HSW94] that Section 4.7 compares against, together with
// the stale-count width policy that specializes the paper's adaptive
// algorithm to the Divergence Caching setting.
//
// In Divergence Caching the approximation is a stale copy whose precision is
// the number of source updates not yet reflected in the cache: a divergence
// limit g promises at most g unseen updates. The source pushes a refresh
// after the g-th unseen update (value-initiated); a query whose staleness
// constraint is tighter than g fetches the exact value (query-initiated).
// Rather than adjusting g incrementally, the HSW94 algorithm continually
// re-derives it from projections of read and write rates estimated over
// moving windows of the k most recent reads and writes (k = 23 in the
// paper's trials), choosing the g that minimizes the projected cost rate
//
//	cost(g) = Cvr * writeRate / g  +  Cqr * readRate * P(constraint < g)
//
// where P is estimated from a window of recently observed constraints. The
// original publication is not reproduced here; this reconstruction follows
// the SIGMOD 2001 paper's description of the mechanism it benchmarks.
package divergence

import (
	"fmt"
	"math"
	"math/rand"

	"apcache/internal/stats"
	"apcache/internal/workload"
)

// Config describes one Divergence Caching simulation run.
type Config struct {
	// NumSources is n.
	NumSources int
	// Cvr and Cqr are the refresh costs. Section 4.7 uses Cvr=1, Cqr=2.
	Cvr, Cqr float64
	// K is the moving-window size (23 in the paper).
	K int
	// GMax bounds the divergence-limit search.
	GMax int
	// Updates per second per source: every update increments each value's
	// unseen-update count. The study's stale-count workload updates every
	// value every second.
	Tq float64
	// Constraints is the staleness-constraint distribution (davg swept
	// 0..14 in Figures 14-15).
	Constraints workload.ConstraintDist
	// UpdateGate, when non-nil, decides whether source key receives an
	// update at time now. It lets comparisons drive both algorithms with
	// the same (possibly regime-switching) update process; nil means an
	// update every second.
	UpdateGate func(now float64, key int) bool
	// Duration and Warmup are in seconds.
	Duration, Warmup float64
	// Seed makes the run deterministic.
	Seed int64
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.NumSources <= 0:
		return fmt.Errorf("divergence: NumSources must be positive, got %d", c.NumSources)
	case c.Cvr < 0 || c.Cqr <= 0:
		return fmt.Errorf("divergence: bad costs Cvr=%g Cqr=%g", c.Cvr, c.Cqr)
	case c.K < 1:
		return fmt.Errorf("divergence: K must be >= 1, got %d", c.K)
	case c.GMax < 1:
		return fmt.Errorf("divergence: GMax must be >= 1, got %d", c.GMax)
	case c.Tq <= 0:
		return fmt.Errorf("divergence: Tq must be positive, got %g", c.Tq)
	case c.Duration <= 0:
		return fmt.Errorf("divergence: Duration must be positive, got %g", c.Duration)
	case c.Warmup < 0 || c.Warmup >= c.Duration:
		return fmt.Errorf("divergence: Warmup %g out of range [0, %g)", c.Warmup, c.Duration)
	}
	return nil
}

// Result carries one run's measurements.
type Result struct {
	// CostRate is the post-warm-up average cost per second.
	CostRate float64
	// Pvr and Pqr are the measured refresh rates per second.
	Pvr, Pqr float64
	// FinalLimits holds each source's divergence limit at run end.
	FinalLimits []int
}

// window is a fixed-size ring of float64 observations.
type window struct {
	buf  []float64
	n    int
	next int
}

func newWindow(k int) *window { return &window{buf: make([]float64, k)} }

func (w *window) add(x float64) {
	w.buf[w.next] = x
	w.next = (w.next + 1) % len(w.buf)
	if w.n < len(w.buf) {
		w.n++
	}
}

func (w *window) full() bool { return w.n == len(w.buf) }

// span returns newest-minus-oldest among the recorded times.
func (w *window) span() float64 {
	if w.n < 2 {
		return 0
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < w.n; i++ {
		v := w.buf[i]
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	return hi - lo
}

// rate returns events per time unit estimated from the window.
func (w *window) rate() float64 {
	sp := w.span()
	if sp <= 0 {
		return 0
	}
	return float64(w.n-1) / sp
}

// fractionBelow returns the fraction of recorded values strictly below x.
func (w *window) fractionBelow(x float64) float64 {
	if w.n == 0 {
		return 0.5 // uninformed prior
	}
	c := 0
	for i := 0; i < w.n; i++ {
		if w.buf[i] < x {
			c++
		}
	}
	return float64(c) / float64(w.n)
}

// sourceState is one value's Divergence Caching state.
type sourceState struct {
	limit       int     // current divergence limit g
	staleness   int     // updates not reflected at the cache
	writeTimes  *window // source-side window of write times
	readTimes   *window // cache-side window of read times
	constraints *window // recently observed staleness constraints
}

// chooseLimit minimizes the projected cost over g in [0, gmax]. g = 0 is
// exact caching: every update is pushed (cost Cvr*writeRate) and every read
// is served locally; g > 0 amortizes pushes over g updates but pays a remote
// read for every query whose constraint is tighter than g.
func chooseLimit(cvr, cqr, writeRate, readRate float64, constraints *window, gmax int) int {
	bestG, bestCost := 0, cvr*writeRate
	for g := 1; g <= gmax; g++ {
		cost := cvr*writeRate/float64(g) + cqr*readRate*constraints.fractionBelow(float64(g))
		if cost < bestCost {
			bestG, bestCost = g, cost
		}
	}
	return bestG
}

// Run executes one Divergence Caching simulation. Each query touches one
// randomly chosen source, matching the single-item stale-value setting of
// HSW94.
func Run(cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	states := make([]*sourceState, cfg.NumSources)
	for i := range states {
		states[i] = &sourceState{
			limit:       1,
			writeTimes:  newWindow(cfg.K),
			readTimes:   newWindow(cfg.K),
			constraints: newWindow(cfg.K),
		}
	}
	meter := stats.NewCostMeter(cfg.Warmup)

	recompute := func(st *sourceState) {
		st.limit = chooseLimit(cfg.Cvr, cfg.Cqr, st.writeTimes.rate(), st.readTimes.rate(), st.constraints, cfg.GMax)
	}

	nextUpdate, nextQuery := 1.0, cfg.Tq
	for {
		now := math.Min(nextUpdate, nextQuery)
		if now > cfg.Duration {
			break
		}
		if nextUpdate <= nextQuery {
			for key, st := range states {
				if cfg.UpdateGate != nil && !cfg.UpdateGate(now, key) {
					continue
				}
				st.writeTimes.add(now)
				st.staleness++
				if st.staleness > st.limit {
					meter.ValueRefresh(now, cfg.Cvr)
					st.staleness = 0
					// A refresh is the opportunity to reset the limit from
					// scratch using the current window projections.
					recompute(st)
				}
			}
			nextUpdate++
		} else {
			st := states[rng.Intn(cfg.NumSources)]
			delta := cfg.Constraints.Sample(rng)
			st.readTimes.add(now)
			st.constraints.add(delta)
			if float64(st.limit) > delta {
				meter.QueryRefresh(now, cfg.Cqr)
				st.staleness = 0
				recompute(st)
			}
			nextQuery += cfg.Tq
		}
	}
	meter.Tick(cfg.Duration)

	res := Result{CostRate: meter.Rate(), FinalLimits: make([]int, cfg.NumSources)}
	res.Pvr, res.Pqr = meter.RefreshRates()
	for i, st := range states {
		res.FinalLimits[i] = st.limit
	}
	return res, nil
}
