// Package shard provides the key-partitioning scheme shared by the sharded
// Store and the networked server: integer keys are spread over a power-of-two
// number of shards by a 64-bit finalizer hash, so each shard can be guarded
// by its own lock and the adaptive-precision controllers — which are
// inherently per-key — run without global serialization.
package shard

import "runtime"

// MaxShards bounds the shard count; beyond this, lock striping gains nothing
// and per-shard state (RNGs, cache slices) only wastes memory.
const MaxShards = 256

// Count normalizes a requested shard count: values <= 0 select a default
// scaled to GOMAXPROCS, and any request is rounded up to the next power of
// two and clamped to [1, MaxShards]. The result is always a power of two so
// shard selection is a mask, not a modulo.
func Count(requested int) int {
	n := requested
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > MaxShards {
		n = MaxShards
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Index maps a key to a shard in [0, n) for a power-of-two n. Keys are mixed
// through the splitmix64 finalizer first: sequential keys (the common case in
// the paper's workloads) would otherwise land on consecutive shards and any
// stride-of-n access pattern would collapse onto one lock.
func Index(key, n int) int {
	z := uint64(key)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int(z & uint64(n-1))
}
