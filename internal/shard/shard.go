// Package shard provides the key-partitioning scheme shared by the sharded
// Store and the networked server: integer keys are spread over a power-of-two
// number of shards by a 64-bit finalizer hash, so each shard can be guarded
// by its own lock and the adaptive-precision controllers — which are
// inherently per-key — run without global serialization.
package shard

import "runtime"

// MaxShards bounds the shard count; beyond this, lock striping gains nothing
// and per-shard state (RNGs, cache slices) only wastes memory.
const MaxShards = 256

// Count normalizes a requested shard count: values <= 0 select a default
// scaled to GOMAXPROCS, and any request is rounded up to the next power of
// two and clamped to [1, MaxShards]. The result is always a power of two so
// shard selection is a mask, not a modulo.
func Count(requested int) int {
	n := requested
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > MaxShards {
		n = MaxShards
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Mix runs a key through the splitmix64 finalizer, producing 64 well-mixed
// bits. Index takes the low bits for shard selection; in-shard structures
// (the seqlock cache's probe table) must therefore hash with the HIGH bits —
// within one shard every key shares the same low log2(shards) mixed bits, so
// reusing them would collapse the whole shard onto one probe chain.
func Mix(key int) uint64 {
	z := uint64(key)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// Index maps a key to a shard in [0, n) for a power-of-two n. Keys are mixed
// through the splitmix64 finalizer first: sequential keys (the common case in
// the paper's workloads) would otherwise land on consecutive shards and any
// stride-of-n access pattern would collapse onto one lock.
func Index(key, n int) int {
	return int(Mix(key) & uint64(n-1))
}
