package shard

import "testing"

func TestCountPowerOfTwo(t *testing.T) {
	cases := []struct{ in, want int }{
		{1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {7, 8}, {8, 8},
		{9, 16}, {100, 128}, {MaxShards, MaxShards}, {MaxShards + 1, MaxShards},
		{1 << 20, MaxShards},
	}
	for _, c := range cases {
		if got := Count(c.in); got != c.want {
			t.Errorf("Count(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestCountDefaultIsPowerOfTwo(t *testing.T) {
	for _, req := range []int{0, -1, -100} {
		n := Count(req)
		if n < 1 || n > MaxShards || n&(n-1) != 0 {
			t.Errorf("Count(%d) = %d, want a power of two in [1, %d]", req, n, MaxShards)
		}
	}
}

func TestIndexInRange(t *testing.T) {
	for _, n := range []int{1, 2, 8, 64, MaxShards} {
		for key := -1000; key < 1000; key++ {
			i := Index(key, n)
			if i < 0 || i >= n {
				t.Fatalf("Index(%d, %d) = %d out of range", key, n, i)
			}
		}
	}
}

func TestIndexSpreadsSequentialKeys(t *testing.T) {
	// Sequential keys — the paper's workloads number values 0..n-1 — must not
	// pile onto a few shards. Demand every shard gets within 2x of fair share.
	const n, keys = 16, 16384
	var counts [n]int
	for k := 0; k < keys; k++ {
		counts[Index(k, n)]++
	}
	fair := keys / n
	for s, c := range counts {
		if c < fair/2 || c > fair*2 {
			t.Errorf("shard %d holds %d of %d keys (fair share %d)", s, c, keys, fair)
		}
	}
}

// TestMixHighBitsSpread checks the property the in-shard probe tables rely
// on: for keys that all land on ONE shard (identical low mixed bits), the
// high bits of Mix still spread them evenly.
func TestMixHighBitsSpread(t *testing.T) {
	const shards, buckets = 16, 16
	var counts [buckets]int
	total := 0
	for k := 0; total < 8192; k++ {
		if Index(k, shards) != 3 {
			continue // keep only one shard's keys
		}
		counts[Mix(k)>>60]++ // top 4 bits
		total++
	}
	fair := total / buckets
	for b, c := range counts {
		if c < fair/2 || c > fair*2 {
			t.Errorf("bucket %d holds %d of %d same-shard keys (fair share %d)", b, c, total, fair)
		}
	}
}

func TestMixMatchesIndex(t *testing.T) {
	for key := -100; key < 100; key++ {
		if int(Mix(key)&7) != Index(key, 8) {
			t.Fatalf("Index(%d) disagrees with Mix low bits", key)
		}
	}
}

func TestIndexDeterministic(t *testing.T) {
	for key := 0; key < 100; key++ {
		if Index(key, 8) != Index(key, 8) {
			t.Fatalf("Index not deterministic for key %d", key)
		}
	}
}
