package server

// Tests of the adaptive per-connection flush window: a deterministic unit
// test of the EWMA/window computation driven by synthetic timestamps, and
// integration tests over real connections showing that a bursty push stream
// coalesces into few RefreshBatch frames while a quiet connection's pushes
// flush immediately, at far less added latency than the static window.

import (
	"testing"
	"time"

	"apcache/internal/netproto"
)

// TestFlushWindowAdapts drives observePush with an injected clock (synthetic
// nanosecond timestamps — no real time involved) and checks the derived
// window at both extremes and in between.
func TestFlushWindowAdapts(t *testing.T) {
	const max = 10 * time.Millisecond
	c := &clientConn{}

	// No history: the full static window applies.
	if w := c.flushWindow(max); w != max {
		t.Errorf("cold window = %v, want %v", w, max)
	}
	// FlushInterval 0 disables the window regardless of history.
	if w := c.flushWindow(0); w != 0 {
		t.Errorf("disabled window = %v, want 0", w)
	}

	// Bursty: pushes 100µs apart. EWMA converges to ~100µs, so the window
	// stays within a hair of the full cap.
	now := int64(1_000_000)
	for i := 0; i < 50; i++ {
		c.observePush(now, max)
		now += int64(100 * time.Microsecond)
	}
	bursty := c.flushWindow(max)
	if bursty < max-200*time.Microsecond || bursty > max {
		t.Errorf("bursty window = %v, want ≈%v", bursty, max)
	}

	// Quiet: pushes 50ms apart — beyond the cap. The EWMA crosses it and
	// the window collapses to zero: flush immediately.
	c2 := &clientConn{}
	now = int64(1_000_000)
	for i := 0; i < 50; i++ {
		c2.observePush(now, max)
		now += int64(50 * time.Millisecond)
	}
	if w := c2.flushWindow(max); w != 0 {
		t.Errorf("quiet window = %v, want 0", w)
	}

	// In between: gaps of 4ms against a 10ms cap leave a ~6ms window —
	// clamped to [0, max], monotone in the gap.
	c3 := &clientConn{}
	now = int64(1_000_000)
	for i := 0; i < 50; i++ {
		c3.observePush(now, max)
		now += int64(4 * time.Millisecond)
	}
	mid := c3.flushWindow(max)
	if mid <= 0 || mid >= max {
		t.Errorf("mid window = %v, want in (0, %v)", mid, max)
	}
	if mid < 5*time.Millisecond || mid > 7*time.Millisecond {
		t.Errorf("mid window = %v, want ≈6ms", mid)
	}

	// A connection turning bursty after a quiet phase re-opens its window.
	for i := 0; i < 50; i++ {
		c2.observePush(now, max)
		now += int64(100 * time.Microsecond)
	}
	if w := c2.flushWindow(max); w == 0 {
		t.Errorf("window stayed closed after the connection turned bursty")
	}

	// Idle-then-burst: a single multi-second idle gap is clamped before it
	// enters the EWMA, so the first pushes of the following burst still see
	// an open window (an unclamped gap would close it for dozens of
	// pushes).
	c4 := &clientConn{}
	now = int64(1_000_000)
	for i := 0; i < 10; i++ {
		c4.observePush(now, max)
		now += int64(100 * time.Microsecond)
	}
	now += int64(5 * time.Second) // idle period
	c4.observePush(now, max)      // first push of the new burst
	if w := c4.flushWindow(max); w < max/2 {
		t.Errorf("post-idle window = %v, want ≥%v (idle gap must not close the burst window)", w, max/2)
	}
}

// collectPushFrames reads frames until n pushed refreshes have arrived,
// returning how many frames carried them.
func collectPushFrames(t *testing.T, d *netproto.Decoder, n int) int {
	t.Helper()
	frames, got := 0, 0
	for got < n {
		msg, err := d.Decode()
		if err != nil {
			t.Fatalf("after %d/%d refreshes: %v", got, n, err)
		}
		frames++
		switch m := msg.(type) {
		case *netproto.RefreshBatch:
			if m.ID != 0 {
				t.Fatalf("push batch with ID %d", m.ID)
			}
			got += len(m.Items)
		case *netproto.Refresh:
			if m.ID != 0 {
				t.Fatalf("push frame with ID %d", m.ID)
			}
			got++
		default:
			t.Fatalf("unexpected frame %#v", msg)
		}
	}
	return frames
}

// TestAdaptiveFlushBurstyCoalesces: a push stream whose gaps are far below
// FlushInterval must coalesce into far fewer frames than pushes — the
// adaptive window holds (nearly) the whole static budget open.
func TestAdaptiveFlushBurstyCoalesces(t *testing.T) {
	cfg := testConfig()
	cfg.Params.Alpha = 0 // freeze widths so every 1e9 jump escapes and pushes
	cfg.FlushInterval = 100 * time.Millisecond
	s := New(cfg)
	s.SetInitial(0, 0)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	conn := rawDial(t, addr.String())
	hello(t, conn, 128)
	if err := netproto.Write(conn, &netproto.Subscribe{ID: 1, Key: 0}); err != nil {
		t.Fatal(err)
	}
	d := netproto.NewDecoder(conn)
	if _, err := d.Decode(); err != nil { // initial refresh
		t.Fatal(err)
	}

	// Trickle pushes at ~1ms gaps: each Set escapes the interval (huge
	// jumps), so each pushes exactly one refresh. 40 pushes span ~40ms,
	// well inside the 100ms window — they must not arrive one frame each.
	const pushes = 40
	go func() {
		v := 1e9
		for i := 0; i < pushes; i++ {
			s.Set(0, v)
			v += 1e9
			time.Sleep(time.Millisecond)
		}
	}()
	frames := collectPushFrames(t, d, pushes)
	if frames > pushes/4 {
		t.Errorf("bursty stream: %d pushes arrived in %d frames; expected aggressive coalescing", pushes, frames)
	}
}

// TestAdaptiveFlushQuietLowLatency: once a connection's observed gaps exceed
// FlushInterval, each push must flush immediately instead of being held for
// the static window.
func TestAdaptiveFlushQuietLowLatency(t *testing.T) {
	cfg := testConfig()
	cfg.Params.Alpha = 0 // freeze widths so every 1e9 jump escapes and pushes
	cfg.FlushInterval = 300 * time.Millisecond
	s := New(cfg)
	s.SetInitial(0, 0)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	conn := rawDial(t, addr.String())
	conn.SetDeadline(time.Now().Add(30 * time.Second))
	hello(t, conn, 128)
	if err := netproto.Write(conn, &netproto.Subscribe{ID: 1, Key: 0}); err != nil {
		t.Fatal(err)
	}
	d := netproto.NewDecoder(conn)
	if _, err := d.Decode(); err != nil {
		t.Fatal(err)
	}

	// Warm the gap EWMA past FlushInterval: pushes ~400ms apart. The first
	// couple still pay the static window; measure only after warm-up.
	v := 1e9
	push := func() time.Duration {
		s.Set(0, v)
		start := time.Now()
		v += 1e9
		if _, err := d.Decode(); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	for i := 0; i < 3; i++ {
		push()
		time.Sleep(400 * time.Millisecond)
	}
	// Quiet steady state: each push must arrive far sooner than the static
	// 300ms window would allow.
	for i := 0; i < 3; i++ {
		if lat := push(); lat > 150*time.Millisecond {
			t.Errorf("quiet push %d took %v; adaptive window should flush immediately (static window is %v)",
				i, lat, cfg.FlushInterval)
		}
		time.Sleep(400 * time.Millisecond)
	}
}
