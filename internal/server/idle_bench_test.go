//go:build linux

package server

// BenchmarkIdleConnections measures what a parked connection costs the
// server under each connection core. The goroutine core pays two goroutine
// stacks and a 1024-slot channel per connection; the event-driven core pays
// one registered one-shot descriptor plus a compact pollConn. The dialer
// runs in a re-exec'd child process so the client half of each socket pair
// does not count against this process's descriptor limit, which is what
// makes the 10k tier fit inside a 20k RLIMIT_NOFILE. Headline numbers are
// recorded in BENCH_net.json at the repo root:
//
//	go test -run '^$' -bench BenchmarkIdleConnections -benchtime 1x ./internal/server

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"apcache/internal/netpoll"
)

// TestIdleDialHelper is the dial child: re-exec'd by BenchmarkIdleConnections
// with the target address and connection count in the environment, it opens
// the connections, reports readiness on stdout, and parks them until the
// parent closes its stdin. A normal test run skips it.
func TestIdleDialHelper(t *testing.T) {
	addr := os.Getenv("APCACHE_IDLE_DIAL_ADDR")
	if addr == "" {
		t.Skip("dial helper: only meaningful re-exec'd by BenchmarkIdleConnections")
	}
	n, err := strconv.Atoi(os.Getenv("APCACHE_IDLE_DIAL_N"))
	if err != nil || n <= 0 {
		t.Fatalf("dial helper: bad APCACHE_IDLE_DIAL_N: %v", err)
	}
	conns := make([]net.Conn, 0, n)
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	for i := 0; i < n; i++ {
		c, err := net.DialTimeout("tcp", addr, 10*time.Second)
		if err != nil {
			t.Fatalf("dial helper: conn %d: %v", i, err)
		}
		conns = append(conns, c)
	}
	fmt.Println("DIALED")
	io.Copy(io.Discard, os.Stdin) // park until the parent hangs up
}

func BenchmarkIdleConnections(b *testing.B) {
	for _, n := range []int{10_000, 100_000} {
		for _, mode := range []string{ConnModeGoroutine, ConnModePoller} {
			b.Run(fmt.Sprintf("conns=%d/connmode=%s", n, mode), func(b *testing.B) {
				if mode == ConnModePoller && !netpoll.Supported() {
					b.Skip("poller core unsupported on this platform")
				}
				var lim syscall.Rlimit
				if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &lim); err == nil && uint64(n)+512 > lim.Cur {
					b.Skipf("need %d descriptors for %d conns, RLIMIT_NOFILE is %d", n+512, n, lim.Cur)
				}
				for i := 0; i < b.N; i++ {
					measureIdleConns(b, mode, n)
				}
			})
		}
	}
}

// measureIdleConns runs one sample: park n idle connections dialed from a
// child process, then report the server-side memory and goroutine cost per
// connection.
func measureIdleConns(b *testing.B, mode string, n int) {
	cfg := testConfig()
	cfg.ConnMode = mode
	s := New(cfg)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatalf("Listen: %v", err)
	}
	defer s.Close()
	if got := s.ConnMode(); got != mode {
		b.Skipf("conn mode %q downgraded to %q", mode, got)
	}

	g0 := runtime.NumGoroutine()
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)

	cmd := exec.Command(os.Args[0], "-test.run=^TestIdleDialHelper$", "-test.v")
	cmd.Env = append(os.Environ(),
		"APCACHE_IDLE_DIAL_ADDR="+addr.String(),
		"APCACHE_IDLE_DIAL_N="+strconv.Itoa(n))
	stdin, err := cmd.StdinPipe()
	if err != nil {
		b.Fatal(err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		b.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		b.Fatalf("start dial child: %v", err)
	}
	defer func() {
		stdin.Close() // unparks the child; its conns close on exit
		cmd.Wait()
	}()

	dialed := make(chan error, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if strings.HasPrefix(sc.Text(), "DIALED") {
				dialed <- nil
				io.Copy(io.Discard, stdout)
				return
			}
		}
		dialed <- fmt.Errorf("dial child exited before DIALED: %v", sc.Err())
	}()
	select {
	case err := <-dialed:
		if err != nil {
			b.Fatal(err)
		}
	case <-time.After(2 * time.Minute):
		b.Fatal("dial child timed out")
	}
	deadline := time.Now().Add(time.Minute)
	for s.Clients() != n {
		if time.Now().After(deadline) {
			b.Fatalf("%d/%d connections registered", s.Clients(), n)
		}
		time.Sleep(5 * time.Millisecond)
	}

	runtime.GC()
	runtime.ReadMemStats(&m1)
	used := int64(m1.HeapInuse+m1.StackInuse) - int64(m0.HeapInuse+m0.StackInuse)
	if used < 0 {
		used = 0
	}
	b.ReportMetric(float64(used)/float64(n), "B/conn")
	b.ReportMetric(float64(runtime.NumGoroutine()-g0)/float64(n), "goroutines/conn")
}
