package server

// Durability tests for the server's write-ahead journal: values and learned
// widths survive a restart, recovered widths seed new subscriptions, the
// background compactor folds the log, and shard-layout changes are absorbed
// on open. The full client-facing contract (drain + restart + resubscribe)
// lives in the root package's chaos suite.

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"apcache/internal/wal"
)

func durableConfig(dir string) Config {
	cfg := testConfig()
	cfg.WALDir = dir
	cfg.Shards = 4
	return cfg
}

func TestOpenRecoversValues(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir)
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	const keys = 100
	for k := 0; k < keys; k++ {
		s.SetInitial(k, float64(k))
	}
	for k := 0; k < keys; k += 2 {
		s.Set(k, float64(k)+0.5)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, err := Open(cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	for k := 0; k < keys; k++ {
		want := float64(k)
		if k%2 == 0 {
			want += 0.5
		}
		got, ok := s2.Value(k)
		if !ok {
			t.Fatalf("key %d lost across restart", k)
		}
		if got != want {
			t.Fatalf("key %d recovered as %g, want %g", k, got, want)
		}
	}
}

func TestOpenSeedsSubscriptionsAtLearnedWidth(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir)
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	s.SetInitial(5, 50)
	// Journal a learned width the way the read path does.
	sh := s.shardFor(5)
	sh.mu.Lock()
	s.walWidthLocked(sh, 5, 3.25)
	sh.mu.Unlock()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, err := Open(cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if w, ok := s2.LearnedWidth(5); !ok || w != 3.25 {
		t.Fatalf("LearnedWidth(5) = %g, %v; want 3.25, true", w, ok)
	}
	// A fresh subscription must start at the learned width, not
	// InitialWidth (10 in testConfig).
	sh2 := s2.shardFor(5)
	sh2.mu.Lock()
	r := sh2.src.Subscribe(1, 5)
	sh2.mu.Unlock()
	if r.OriginalWidth != 3.25 {
		t.Fatalf("resubscription started at width %g, want learned 3.25", r.OriginalWidth)
	}
}

func TestWALCompactionFoldsLog(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir)
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	const keys = 8
	for k := 0; k < keys; k++ {
		s.SetInitial(k, 0)
	}
	// Push well past the compaction floor so the post-commit kick fires.
	final := make(map[int]float64, keys)
	for i := 0; i < 2*walCompactMin; i++ {
		k := i % keys
		v := float64(i)
		s.Set(k, v)
		final[k] = v
	}
	// Compaction is asynchronous; a clean Close joins the compactor, after
	// which the log either folded or Close's sync covered it. Force one
	// deterministic fold to assert the mechanism itself.
	if err := s.compactWAL(); err != nil {
		t.Fatalf("compactWAL: %v", err)
	}
	if got := s.wal.Records(); got > int64(2*keys) {
		t.Fatalf("compaction left %d records for %d keys", got, keys)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, err := Open(cfg)
	if err != nil {
		t.Fatalf("reopen after compaction: %v", err)
	}
	defer s2.Close()
	for k, want := range final {
		if got, ok := s2.Value(k); !ok || got != want {
			t.Fatalf("key %d recovered as %g (ok=%v), want %g", k, got, ok, want)
		}
	}
}

func TestOpenAbsorbsShardCountChange(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir) // 4 shards
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for k := 0; k < 32; k++ {
		s.SetInitial(k, float64(100+k))
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	cfg.Shards = 1
	s2, err := Open(cfg)
	if err != nil {
		t.Fatalf("reopen with 1 shard: %v", err)
	}
	defer s2.Close()
	for k := 0; k < 32; k++ {
		if got, ok := s2.Value(k); !ok || got != float64(100+k) {
			t.Fatalf("key %d recovered as %g (ok=%v) after shard change", k, got, ok)
		}
	}
	// The three stale shard files from the 4-shard layout must be gone once
	// their records were folded into the single current file.
	names, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range names {
		if wal.IsLogName(e.Name()) && e.Name() != wal.FileName(0) {
			t.Fatalf("stale shard file %s survived the layout change", e.Name())
		}
	}
}

func TestAbandonedServerRecovers(t *testing.T) {
	// No clean Close: with fsync=always everything a returned Set journaled
	// must already be on disk, so a second process recovers it all.
	dir := t.TempDir()
	cfg := durableConfig(dir)
	cfg.WALFsync = wal.FsyncAlways
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	for k := 0; k < 16; k++ {
		s.SetInitial(k, float64(k))
		s.Set(k, float64(k)*2)
	}

	cfg2 := durableConfig(filepath.Join(dir)) // same dir, fresh server
	s2, err := Open(cfg2)
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer s2.Close()
	for k := 0; k < 16; k++ {
		if got, ok := s2.Value(k); !ok || got != float64(k)*2 {
			t.Fatalf("key %d recovered as %g (ok=%v), want %g", k, got, ok, float64(k)*2)
		}
	}
}

func TestCloseSurfacesBrokenDurability(t *testing.T) {
	ffs := wal.NewFaultFS(nil)
	cfg := durableConfig(t.TempDir())
	cfg.WALFS = ffs
	cfg.WALFsync = wal.FsyncAlways
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	diskGone := errors.New("disk gone")
	ffs.FailSyncs(diskGone)
	s.SetInitial(1, 1) // commit hits the failing fsync; error is sticky
	if err := s.Close(); !errors.Is(err, diskGone) {
		t.Fatalf("Close = %v, want the sticky fsync failure", err)
	}
}
