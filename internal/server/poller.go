// The event-driven connection core (Config.ConnMode == ConnModePoller).
//
// Instead of two goroutines per connection, a fixed set of goroutines
// serves every connection. Connections are sharded across a small set of
// event loops, each owning its own epoll instance (internal/netpoll). A
// loop serves readiness inline: it performs the non-blocking reads,
// incremental frame decoding (netproto.StreamDecoder), the same dispatch
// the goroutine core's read loop runs, and — for the replies that dispatch
// produced — an inline flush through the shared pooled-buffer/
// single-syscall encode machinery (appendFrames) ending in a non-blocking
// write. Only when a socket's buffer fills does the remainder hand off to a
// shared pool of writers, which also flushes value-initiated pushes (they
// originate on Set's goroutine, not a loop) and timer-window flushes. Flush
// windows ride a hashed timer wheel rather than a runtime timer per
// connection. Keeping the request/response path on one goroutine is what
// makes its latency competitive with the goroutine core: no cross-goroutine
// wakeups sit between the readiness event and the reply syscall.
//
// The cost of an idle connection collapses to a registered one-shot
// descriptor plus a compact pollConn: no goroutine stacks, no buffered
// channel, and — because stream decoders are pooled and only borrowed while
// a frame actually spans reads — no decode state either.
//
// Concurrency invariants:
//   - One-shot registration gives each connection at most one in-flight
//     read dispatch; the loop owns the connection's decoder and request
//     scratch until it re-arms the descriptor.
//   - pc.scheduled (guarded by pc.wmu) gives each connection at most one
//     pending drain — a writer work-queue slot or the loop's inline drain;
//     whoever holds it owns pc.w, pc.spare, and pc.pend until it clears
//     the flag or (keeping it set) hands the drain on through the work
//     queue.
//   - Lock order: c.ovMu before pc.wmu (only flushOverflow nests them);
//     pushers take each alone. Writers take no shard locks and the work
//     queue push never blocks, so reply/push stay safe under shard locks.
//   - Loops never block: reads and inline writes are single non-blocking
//     syscall attempts, and a full socket defers to the writer pool.
//   - Teardown from any path funnels through Server.dropClient, which is
//     idempotent and marks pc.wclosed so late enqueues are released.
package server

import (
	"fmt"
	"math"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"apcache/internal/netpoll"
	"apcache/internal/netproto"
)

const (
	// pollOutWatermark is the out-queue depth beyond which pushes divert
	// into the merge buffer — the same congestion point as the goroutine
	// core's channel watermark, so both cores share backpressure behavior.
	pollOutWatermark = 1024 - replyHeadroom
	// pollOutCap is the hard out-queue bound for replies; beyond it the
	// peer's TCP stream is wedged and the connection is severed, matching
	// the goroutine core's full-channel behavior.
	pollOutCap = 1024
	// pollReadBudget caps the bytes one readiness event may drain before
	// the descriptor is re-armed, so one firehose connection cannot
	// monopolize a decode worker. Level-triggered re-arm fires again
	// immediately while bytes remain.
	pollReadBudget = 256 << 10
	// pollWriteTimeout bounds one flush on a shared writer. A peer that
	// cannot accept a frame for this long is severed — a wedged peer must
	// not be able to park a pooled writer indefinitely.
	pollWriteTimeout = 10 * time.Second
)

// decPool lends stream decoders to connections mid-frame; a connection
// whose byte stream is between frames holds none.
var decPool = sync.Pool{New: func() any { return netproto.NewStreamDecoder() }}

// pollConn is a connection's poller-core state: the descriptor identity,
// the borrowed decode state, and the writer-side out queue. It replaces the
// goroutine core's two goroutines and buffered channel.
type pollConn struct {
	c     *clientConn
	fd    int
	token uint32
	io    *netpoll.ConnIO // reusable non-blocking read/write state
	lp    *netpoll.Poller // the event loop's poller this conn is sharded onto

	// dec is borrowed from decPool while a frame spans reads; nil when the
	// connection sits between frames (the idle steady state).
	dec *netproto.StreamDecoder

	// wmu guards the out queue and scheduling flags. outq is the delivery
	// queue (replies and pushes, in enqueue order); spare is the draining
	// writer's swap buffer; scheduled means the connection occupies a
	// writer work-queue slot, has a pending inline drain, or is being
	// drained; wclosed marks teardown.
	//
	// inRead marks the window in which a read worker owns this
	// connection's dispatch; replies enqueued inside it claim the
	// scheduled slot via localDrain instead of the writer work queue, and
	// the read worker flushes them itself before re-arming — the worker is
	// already hot, so the request/response path skips a goroutine wakeup.
	wmu        sync.Mutex
	outq       []netproto.Message
	spare      []netproto.Message
	scheduled  bool
	inRead     bool
	localDrain bool
	wclosed    bool

	// w is the flush state (frame buffer, push-run scratch) and pend the
	// tail of an inline flush the socket would not accept without
	// blocking; both are owned by whichever drainer holds scheduled.
	// timer is the connection's flush deadline on the shared wheel.
	w     connWriter
	pend  []byte
	timer netpoll.Timer
}

// pollCore is the server-wide event-driven machinery: the event loops'
// pollers, timer wheel, token registry, and the writer pool.
type pollCore struct {
	s     *Server
	loops []*netpoll.Poller
	wheel *netpoll.Wheel // nil when FlushInterval is 0 (no windows to arm)

	mu        sync.Mutex
	byToken   map[uint32]*clientConn
	nextToken uint32
	nextLoop  int

	wq     workq
	closed atomic.Bool

	loopWG   sync.WaitGroup
	writerWG sync.WaitGroup
}

// startPollCore builds and starts the event-driven core. The caller falls
// back to the goroutine core on error.
func (s *Server) startPollCore() (*pollCore, error) {
	loops := s.cfg.PollWorkers
	if loops <= 0 {
		loops = runtime.GOMAXPROCS(0)
	}
	writers := s.cfg.PollWriters
	if writers <= 0 {
		writers = runtime.GOMAXPROCS(0) / 2
		if writers < 1 {
			writers = 1
		}
	}
	core := &pollCore{
		s:       s,
		byToken: make(map[uint32]*clientConn),
	}
	for i := 0; i < loops; i++ {
		p, err := netpoll.New()
		if err != nil {
			for _, prev := range core.loops {
				prev.Close()
				prev.Wait(nil) // observe closed and release the descriptors
			}
			return nil, err
		}
		core.loops = append(core.loops, p)
	}
	core.wq.init(writers)
	if fi := s.cfg.FlushInterval; fi > 0 {
		// Tick at a quarter of the window for acceptable slack, clamped so
		// pathological configs neither spin the wheel nor fire windows
		// with multi-tick error.
		tick := fi / 4
		if tick < 100*time.Microsecond {
			tick = 100 * time.Microsecond
		}
		if tick > 5*time.Millisecond {
			tick = 5 * time.Millisecond
		}
		core.wheel = netpoll.NewWheel(tick, 64)
	}
	for _, p := range core.loops {
		core.loopWG.Add(1)
		go core.eventLoop(p)
	}
	for i := 0; i < writers; i++ {
		core.writerWG.Add(1)
		go core.writeWorker()
	}
	return core, nil
}

// shutdown stops the core's goroutines and releases the pollers. The caller
// has already dropped every connection, so nothing can schedule new work.
func (core *pollCore) shutdown() {
	core.closed.Store(true)
	for _, p := range core.loops {
		p.Close() // each loop's Wait returns ErrClosed and releases its poller
	}
	core.loopWG.Wait()
	if core.wheel != nil {
		core.wheel.Stop()
	}
	core.wq.close()
	core.writerWG.Wait()
}

// attach creates c's poller state and registers it in the token table. It
// runs before c enters the connection registry (under connMu), so c.pc is
// immutable by the time any other goroutine can see the connection; the
// descriptor is not armed yet.
func (core *pollCore) attach(c *clientConn) error {
	if core.closed.Load() {
		return fmt.Errorf("server: poller core is shut down")
	}
	tcp, ok := c.conn.(*net.TCPConn)
	if !ok {
		return fmt.Errorf("server: poller core needs *net.TCPConn, got %T", c.conn)
	}
	rc, err := tcp.SyscallConn()
	if err != nil {
		return err
	}
	fd := -1
	if err := rc.Control(func(f uintptr) { fd = int(f) }); err != nil {
		return err
	}
	pc := &pollConn{c: c, fd: fd, io: netpoll.NewConnIO(rc)}
	pc.timer.Fn = func() { core.schedule(c) }
	core.mu.Lock()
	core.nextToken++
	if core.nextToken == ^uint32(0) {
		core.nextToken = 1 // the top token is the poller's reserved wake token
	}
	pc.token = core.nextToken
	pc.lp = core.loops[core.nextLoop]
	core.nextLoop = (core.nextLoop + 1) % len(core.loops)
	c.pc = pc
	core.byToken[pc.token] = c
	core.mu.Unlock()
	return nil
}

// arm registers c's descriptor with its event loop's poller; from here on
// readiness events flow. Called after c entered the connection registry.
func (core *pollCore) arm(c *clientConn) error {
	return c.pc.lp.Add(c.pc.fd, c.pc.token)
}

// unregister tears down c's poller state: token mapping, epoll membership,
// flush timer, and any undelivered messages. Idempotent; called from
// dropClient with the descriptor already closed or closing.
func (core *pollCore) unregister(c *clientConn) {
	pc := c.pc
	core.mu.Lock()
	delete(core.byToken, pc.token)
	core.mu.Unlock()
	pc.lp.Remove(pc.fd)
	if core.wheel != nil {
		core.wheel.Cancel(&pc.timer)
	}
	pc.wmu.Lock()
	pc.wclosed = true
	msgs := pc.outq
	pc.outq = nil
	pc.wmu.Unlock()
	for _, m := range msgs {
		netproto.Release(m)
	}
}

// eventLoop serves one poller's readiness events inline. Tokens are
// resolved under the registry lock; a token that no longer resolves belongs
// to a connection torn down after the kernel queued the event. Everything
// the loop does per event — read, decode, dispatch, inline reply flush — is
// non-blocking at the socket layer, so one wedged peer cannot stall its
// loop-mates.
func (core *pollCore) eventLoop(p *netpoll.Poller) {
	defer core.loopWG.Done()
	evs := make([]netpoll.Event, 128)
	buf := make([]byte, 64<<10)
	for {
		n, err := p.Wait(evs)
		if err != nil {
			return // poller closed (or broken beyond use)
		}
		for i := 0; i < n; i++ {
			core.mu.Lock()
			c := core.byToken[evs[i].Token]
			core.mu.Unlock()
			if c == nil {
				continue
			}
			// A hangup still routes through the read path: RDHUP may
			// arrive with undrained bytes, and serveRead discovers the
			// EOF after consuming them.
			core.serveRead(c, buf)
		}
	}
}

// serveRead drains up to pollReadBudget bytes from c, feeding them through
// the connection's stream decoder into the shared dispatch, then flushes
// the replies dispatch produced without leaving the calling goroutine.
// One-shot registration guarantees exclusive ownership of the connection's
// decoder and request scratch until the re-arm.
func (core *pollCore) serveRead(c *clientConn, buf []byte) {
	s := core.s
	pc := c.pc
	pc.wmu.Lock()
	pc.inRead = true
	pc.wmu.Unlock()
	budget := pollReadBudget
	for {
		n, err := pc.io.Read(buf)
		if err == netpoll.ErrAgain {
			break
		}
		if err != nil || n == 0 {
			pc.dec = nil // any partial frame dies with the connection
			s.dropClient(c)
			return
		}
		if pc.dec == nil {
			pc.dec = decPool.Get().(*netproto.StreamDecoder)
		}
		ferr := pc.dec.Feed(buf[:n], func(m netproto.Message) error {
			s.dispatch(c, m)
			return nil
		})
		if ferr != nil {
			s.logf("client %d: read: %v", c.id, ferr)
			pc.dec = nil
			s.dropClient(c)
			return
		}
		budget -= n
		if budget <= 0 {
			break
		}
	}
	if pc.dec != nil && pc.dec.Pending() == 0 {
		// Between frames: return the decode state so an idle connection
		// holds none of it.
		decPool.Put(pc.dec)
		pc.dec = nil
	}
	pc.wmu.Lock()
	pc.inRead = false
	local := pc.localDrain
	pc.localDrain = false
	pc.wmu.Unlock()
	if local {
		// The loop claimed the scheduled slot when dispatch enqueued its
		// replies; draining before the re-arm keeps the connection
		// single-threaded through serveRead.
		core.drainInline(c)
	}
	if err := pc.lp.Rearm(pc.fd, pc.token); err != nil {
		s.dropClient(c)
	}
}

// schedule claims c's writer work-queue slot if it is free. Safe from any
// goroutine; never blocks (callers may hold shard locks or run on the
// wheel goroutine).
func (core *pollCore) schedule(c *clientConn) {
	pc := c.pc
	pc.wmu.Lock()
	if pc.wclosed || pc.scheduled {
		pc.wmu.Unlock()
		return
	}
	pc.scheduled = true
	pc.wmu.Unlock()
	core.wq.push(c)
}

// writeWorker drains scheduled connections until the core shuts down.
func (core *pollCore) writeWorker() {
	defer core.writerWG.Done()
	for {
		c, ok := core.wq.pop()
		if !ok {
			return
		}
		core.drain(c)
	}
}

// drainInline is the event loop's drain: same chunking as drain, but the
// socket write is a single non-blocking attempt. A write the socket will
// not accept hands the connection — scheduled flag still held — to the
// writer pool, which ships the pending bytes with a blocking write. The
// merge buffer is also left to the writer pool: flushing it takes blocking
// semantics, and a backlogged connection is past latency-sensitivity
// anyway.
func (core *pollCore) drainInline(c *clientConn) {
	pc := c.pc
	for {
		pc.wmu.Lock()
		if pc.wclosed {
			pc.scheduled = false
			pc.wmu.Unlock()
			return
		}
		if len(pc.outq) == 0 {
			pc.scheduled = false
			pc.wmu.Unlock()
			if c.overflowPending() {
				core.schedule(c)
			}
			return
		}
		max := int(c.batchLimit.Load())
		n := len(pc.outq)
		if n > max {
			n = max
		}
		msgs := append(pc.spare[:0], pc.outq[:n]...)
		rem := copy(pc.outq, pc.outq[n:])
		for i := rem; i < len(pc.outq); i++ {
			pc.outq[i] = nil
		}
		pc.outq = pc.outq[:rem]
		pc.wmu.Unlock()
		res := core.flushInline(c, msgs)
		pc.spare = msgs[:0]
		switch res {
		case flushBlocked:
			// The remainder sits in pc.pend and scheduled stays claimed:
			// hand the drain on to a writer that may block on the socket.
			core.wq.push(c)
			return
		case flushDead:
			return
		}
	}
}

type flushResult int

const (
	flushDone flushResult = iota
	flushBlocked
	flushDead
)

// flushInline encodes one batch and offers it to the socket without
// blocking. On a short write the unsent tail is copied into pc.pend (the
// encode buffer is reused by the next flush) and flushBlocked tells the
// caller to hand the connection to the writer pool.
func (core *pollCore) flushInline(c *clientConn, msgs []netproto.Message) flushResult {
	s := core.s
	pc := c.pc
	if len(msgs) == 0 {
		return flushDone
	}
	if err := s.appendFrames(c, &pc.w, msgs); err != nil {
		s.logf("client %d: encode: %v", c.id, err)
		s.dropClient(c)
		return flushDead
	}
	n, err := pc.io.Write(pc.w.buf)
	if err != nil {
		s.dropClient(c)
		return flushDead
	}
	if n < len(pc.w.buf) {
		pc.pend = append(pc.pend[:0], pc.w.buf[n:]...)
		return flushBlocked
	}
	if cap(pc.w.buf) > 1<<20 {
		pc.w.buf = nil
	}
	return flushDone
}

// drain flushes c's out queue (in chunks of the negotiated batch limit),
// then the push merge buffer, and releases the scheduled slot only once
// both are empty — with a re-check after the release so a racing park can
// never strand entries. Writers run it with blocking (deadline-bounded)
// writes; any bytes an inline flush left behind ship first, preserving
// stream order.
func (core *pollCore) drain(c *clientConn) {
	pc := c.pc
	if len(pc.pend) > 0 { // owned via scheduled; no lock needed
		c.conn.SetWriteDeadline(time.Now().Add(pollWriteTimeout))
		_, err := c.conn.Write(pc.pend)
		pc.pend = pc.pend[:0]
		if cap(pc.pend) > 1<<20 {
			pc.pend = nil
		}
		if err != nil {
			core.s.dropClient(c)
			return
		}
	}
	for {
		pc.wmu.Lock()
		if pc.wclosed {
			pc.scheduled = false
			pc.wmu.Unlock()
			return
		}
		if len(pc.outq) == 0 {
			pc.wmu.Unlock()
			if core.flushOverflow(c) {
				continue
			}
			pc.wmu.Lock()
			if len(pc.outq) > 0 {
				pc.wmu.Unlock()
				continue
			}
			pc.scheduled = false
			pc.wmu.Unlock()
			// Lost-wakeup guard: a push parked after flushOverflow's look
			// saw scheduled still true and skipped its own schedule call.
			if c.overflowPending() {
				core.schedule(c)
			}
			return
		}
		max := int(c.batchLimit.Load())
		n := len(pc.outq)
		if n > max {
			n = max
		}
		msgs := append(pc.spare[:0], pc.outq[:n]...)
		rem := copy(pc.outq, pc.outq[n:])
		for i := rem; i < len(pc.outq); i++ {
			pc.outq[i] = nil
		}
		pc.outq = pc.outq[:rem]
		pc.wmu.Unlock()
		ok := core.flush(c, msgs)
		pc.spare = msgs[:0]
		if !ok {
			return
		}
	}
}

// flush encodes one batch through the shared appendFrames machinery and
// hands it to the kernel in a single deadline-bounded write. Returns false
// after tearing the connection down.
func (core *pollCore) flush(c *clientConn, msgs []netproto.Message) bool {
	s := core.s
	pc := c.pc
	if len(msgs) == 0 {
		return true
	}
	if err := s.appendFrames(c, &pc.w, msgs); err != nil {
		s.logf("client %d: encode: %v", c.id, err)
		s.dropClient(c)
		return false
	}
	c.conn.SetWriteDeadline(time.Now().Add(pollWriteTimeout))
	if _, err := c.conn.Write(pc.w.buf); err != nil {
		s.dropClient(c)
		return false
	}
	if cap(pc.w.buf) > 1<<20 {
		// Don't pin one exceptional burst's high-water mark for the
		// connection's lifetime.
		pc.w.buf = nil
	}
	return true
}

// flushOverflow moves parked pushes into a flush, mirroring the goroutine
// core's drainOverflow ordering rule: parked entries may only ship while
// the out queue is empty, verified under ovMu — the same mutex the
// merge-or-park decision runs under — so nothing newer-queued can precede
// them. Returns true when it flushed something (the drain loop comes back
// for the rest).
func (core *pollCore) flushOverflow(c *clientConn) bool {
	pc := c.pc
	max := int(c.batchLimit.Load())
	c.ovMu.Lock()
	if len(c.overflow) == 0 {
		c.ovMu.Unlock()
		return false
	}
	pc.wmu.Lock()
	empty := len(pc.outq) == 0 && !pc.wclosed
	pc.wmu.Unlock()
	if !empty {
		c.ovMu.Unlock()
		return false // the drain loop services the queue first, then retries
	}
	batch := pc.spare[:0]
	for k, m := range c.overflow {
		if len(batch) >= max {
			break
		}
		delete(c.overflow, k)
		batch = append(batch, m)
	}
	c.ovMu.Unlock()
	if len(batch) == 0 {
		return false
	}
	ok := core.flush(c, batch)
	pc.spare = batch[:0]
	return ok
}

// pendingDelivery reports whether the connection still holds undelivered
// traffic: queued messages, or a claimed drain in progress (scheduled also
// covers the writer-owned pc.pend tail — it is only ever non-empty while
// the slot is held, so the flag is the one signal needed). Shutdown's drain
// phase polls it under wmu.
func (pc *pollConn) pendingDelivery() bool {
	pc.wmu.Lock()
	defer pc.wmu.Unlock()
	if pc.wclosed {
		return false
	}
	return len(pc.outq) > 0 || pc.scheduled
}

// pushPoll is the poller core's half of push: same merge-instead-of-drop
// contract as the goroutine core, with the out queue watermark standing in
// for channel congestion and the timer wheel standing in for the writer's
// flush-window wait.
func (s *Server) pushPoll(c *clientConn, m *netproto.Refresh) {
	core := s.poll
	pc := c.pc
	c.ovMu.Lock()
	if p, ok := c.overflow[m.Key]; ok {
		p.Lo = math.Min(p.Lo, m.Lo)
		p.Hi = math.Max(p.Hi, m.Hi)
		p.Value = m.Value
		p.OriginalWidth = m.OriginalWidth
		c.ovMu.Unlock()
		netproto.Release(m)
		s.pushMerges.Add(1)
		core.schedule(c)
		return
	}
	c.ovMu.Unlock()
	pc.wmu.Lock()
	if pc.wclosed {
		pc.wmu.Unlock()
		netproto.Release(m)
		return
	}
	if len(pc.outq) < pollOutWatermark {
		pc.outq = append(pc.outq, m)
		kick := !pc.scheduled
		pc.wmu.Unlock()
		if kick {
			// The first push opens the connection's adaptive flush window
			// on the shared wheel; followers ride it (Schedule keeps the
			// earlier deadline). A zero window schedules immediately.
			if win := c.flushWindow(s.cfg.FlushInterval); win > 0 && core.wheel != nil {
				core.wheel.Schedule(&pc.timer, win)
			} else {
				core.schedule(c)
			}
		}
		return
	}
	pc.wmu.Unlock()
	c.ovMu.Lock()
	if c.overflow == nil {
		c.overflow = make(map[int64]*netproto.Refresh)
	}
	c.overflow[m.Key] = m
	c.ovMu.Unlock()
	s.pushOverflows.Add(1)
	core.schedule(c)
}

// replyPoll is the poller core's half of reply: enqueue and schedule
// immediately (a response always ends any open flush window). The queue
// bound mirrors the goroutine core's full-channel sever; teardown is
// deferred to a fresh goroutine because callers hold shard locks that
// dropClient's subscription sweep needs.
func (s *Server) replyPoll(c *clientConn, m netproto.Message) {
	core := s.poll
	pc := c.pc
	pc.wmu.Lock()
	if pc.wclosed {
		pc.wmu.Unlock()
		netproto.Release(m)
		return
	}
	if len(pc.outq) >= pollOutCap {
		pc.wmu.Unlock()
		netproto.Release(m)
		s.logf("client %d: reply queue overflow, dropping connection", c.id)
		go s.dropClient(c)
		return
	}
	pc.outq = append(pc.outq, m)
	if pc.inRead && !pc.scheduled {
		// Replying from the dispatch the read worker is running: claim the
		// slot for its end-of-read inline drain instead of waking a writer.
		pc.scheduled = true
		pc.localDrain = true
		pc.wmu.Unlock()
		return
	}
	pc.wmu.Unlock()
	core.schedule(c)
}

// workq is the writer pool's work queue: an unbounded mutex-guarded FIFO
// with a token channel for sleeping consumers. push never blocks — that is
// the property reply/push need under shard locks — and the scheduled flag
// bounds occupancy to one slot per connection.
type workq struct {
	mu     sync.Mutex
	q      []*clientConn
	head   int
	wake   chan struct{}
	closed bool
}

func (w *workq) init(consumers int) {
	w.wake = make(chan struct{}, consumers)
}

func (w *workq) push(c *clientConn) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.q = append(w.q, c)
	w.mu.Unlock()
	select {
	case w.wake <- struct{}{}:
	default:
		// Token channel saturated: every consumer already has a pending
		// wake, and consumers always re-check the queue before sleeping.
	}
}

func (w *workq) pop() (*clientConn, bool) {
	for {
		w.mu.Lock()
		if w.head < len(w.q) {
			c := w.q[w.head]
			w.q[w.head] = nil
			w.head++
			if w.head == len(w.q) {
				w.q = w.q[:0]
				w.head = 0
			}
			w.mu.Unlock()
			return c, true
		}
		closed := w.closed
		w.mu.Unlock()
		if closed {
			return nil, false
		}
		<-w.wake
	}
}

func (w *workq) close() {
	w.mu.Lock()
	w.closed = true
	w.mu.Unlock()
	for i := 0; i < cap(w.wake); i++ {
		select {
		case w.wake <- struct{}{}:
		default:
		}
	}
}
