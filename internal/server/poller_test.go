package server

import (
	"bytes"
	"context"
	"net"
	"runtime"
	"testing"
	"time"

	"apcache/internal/netpoll"
	"apcache/internal/netproto"
)

// forEachConnMode runs fn once per connection core, skipping the poller on
// platforms without an implementation. The protocol-level behavior of the
// server must be identical under both cores.
func forEachConnMode(t *testing.T, fn func(t *testing.T, mode string)) {
	t.Helper()
	for _, mode := range []string{ConnModeGoroutine, ConnModePoller} {
		t.Run("connmode="+mode, func(t *testing.T) {
			if mode == ConnModePoller && !netpoll.Supported() {
				t.Skip("poller core unsupported on this platform")
			}
			fn(t, mode)
		})
	}
}

func listenMode(t *testing.T, cfg Config, mode string) (*Server, string) {
	t.Helper()
	cfg.ConnMode = mode
	s := New(cfg)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	if got := s.ConnMode(); got != mode {
		t.Fatalf("ConnMode = %q, want %q", got, mode)
	}
	return s, addr.String()
}

// TestPartialFrameTorture drips an entire session — handshake, subscribes,
// reads, a multi-read, and a batch — one byte at a time, so nearly every
// poller read wakes with a fragment of a frame. The responses must be
// byte-for-byte what a well-chunked client would get.
func TestPartialFrameTorture(t *testing.T) {
	forEachConnMode(t, func(t *testing.T, mode string) {
		s, addr := listenMode(t, testConfig(), mode)
		for k := 0; k < 4; k++ {
			s.SetInitial(k, float64(k*10))
		}
		conn := rawDial(t, addr)

		var wire bytes.Buffer
		reqs := []netproto.Message{
			&netproto.Hello{ID: 1, Version: netproto.Version3, MaxBatch: 64},
			&netproto.Subscribe{ID: 2, Key: 0},
			&netproto.Read{ID: 3, Key: 1},
			&netproto.ReadMulti{ID: 4, Keys: []int64{0, 1, 2, 3}},
			&netproto.Batch{Msgs: []netproto.Message{
				&netproto.Ping{ID: 5},
				&netproto.Read{ID: 6, Key: 2},
			}},
			&netproto.Ping{ID: 7},
		}
		for _, m := range reqs {
			if err := netproto.Write(&wire, m); err != nil {
				t.Fatal(err)
			}
		}
		writeErr := make(chan error, 1)
		go func() {
			raw := wire.Bytes()
			for i := range raw {
				if _, err := conn.Write(raw[i : i+1]); err != nil {
					writeErr <- err
					return
				}
			}
			writeErr <- nil
		}()

		read := func() netproto.Message {
			t.Helper()
			msg, err := netproto.ReadMsg(conn)
			if err != nil {
				t.Fatalf("ReadMsg: %v", err)
			}
			return msg
		}
		if ack, ok := read().(*netproto.HelloAck); !ok || ack.ID != 1 || ack.Version != netproto.Version3 {
			t.Fatalf("handshake reply wrong: %#v", ack)
		}
		if r, ok := read().(*netproto.Refresh); !ok || r.ID != 2 || r.Kind != netproto.KindInitial || r.Value != 0 {
			t.Fatalf("subscribe reply wrong: %#v", r)
		}
		if r, ok := read().(*netproto.Refresh); !ok || r.ID != 3 || r.Kind != netproto.KindQueryInitiated || r.Value != 10 {
			t.Fatalf("read reply wrong: %#v", r)
		}
		rb, ok := read().(*netproto.RefreshBatch)
		if !ok || rb.ID != 4 || len(rb.Items) != 4 {
			t.Fatalf("multi reply wrong: %#v", rb)
		}
		for i, item := range rb.Items {
			if item.Key != int64(i) || item.Value != float64(i*10) {
				t.Errorf("multi item %d: %#v", i, item)
			}
		}
		b, ok := read().(*netproto.Batch)
		if !ok || len(b.Msgs) != 2 {
			t.Fatalf("batch reply wrong: %#v", b)
		}
		if p, ok := b.Msgs[0].(*netproto.Pong); !ok || p.ID != 5 {
			t.Errorf("batch resp 0: %#v", b.Msgs[0])
		}
		if r, ok := b.Msgs[1].(*netproto.Refresh); !ok || r.ID != 6 || r.Value != 20 {
			t.Errorf("batch resp 1: %#v", b.Msgs[1])
		}
		if p, ok := read().(*netproto.Pong); !ok || p.ID != 7 {
			t.Fatalf("final ping reply wrong: %#v", p)
		}
		if err := <-writeErr; err != nil {
			t.Fatalf("dripped write: %v", err)
		}
	})
}

// connContexts snapshots the registered connections' contexts.
func (s *Server) connContexts() []context.Context {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	out := make([]context.Context, 0, len(s.conns))
	for _, c := range s.conns {
		out = append(out, c.ctx)
	}
	return out
}

// TestDisconnectCancelsConnContext pins the cancellation plumbing the
// multi-key fan-out relies on: once a peer drops, its connection context —
// polled by in-flight source reads — must be cancelled promptly.
func TestDisconnectCancelsConnContext(t *testing.T) {
	forEachConnMode(t, func(t *testing.T, mode string) {
		srv, addr := listenMode(t, testConfig(), mode)
		conn := rawDial(t, addr)
		if err := netproto.Write(conn, &netproto.Ping{ID: 1}); err != nil {
			t.Fatal(err)
		}
		if _, err := netproto.ReadMsg(conn); err != nil {
			t.Fatal(err)
		}
		ctxs := srv.connContexts()
		if len(ctxs) != 1 {
			t.Fatalf("%d registered conns, want 1", len(ctxs))
		}
		select {
		case <-ctxs[0].Done():
			t.Fatal("connection context cancelled while the peer is alive")
		default:
		}
		conn.Close()
		select {
		case <-ctxs[0].Done():
		case <-time.After(5 * time.Second):
			t.Fatal("connection context not cancelled after disconnect")
		}
	})
}

// TestIdleConnSmoke is the CI tier for the event-driven core's headline
// claim: parking a thousand idle connections must cost dramatically less
// memory under the poller (one registered fd and a compact struct per conn)
// than under the goroutine core (two goroutine stacks and a 1024-slot
// channel per conn). BenchmarkIdleConnections measures the same thing at
// 10k connections with a child-process dialer.
func TestIdleConnSmoke(t *testing.T) {
	if !netpoll.Supported() {
		t.Skip("poller core unsupported on this platform")
	}
	const n = 1000
	measure := func(mode string) (perConn float64, goroutines int) {
		cfg := testConfig()
		cfg.ConnMode = mode
		s := New(cfg)
		addr, err := s.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatalf("Listen: %v", err)
		}
		defer s.Close()
		g0 := runtime.NumGoroutine()
		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)
		conns := make([]net.Conn, 0, n)
		defer func() {
			for _, c := range conns {
				c.Close()
			}
		}()
		for i := 0; i < n; i++ {
			c, err := net.DialTimeout("tcp", addr.String(), 5*time.Second)
			if err != nil {
				t.Fatalf("dial %d: %v", i, err)
			}
			conns = append(conns, c)
		}
		deadline := time.Now().Add(10 * time.Second)
		for s.Clients() != n {
			if time.Now().After(deadline) {
				t.Fatalf("%s: %d/%d conns registered", mode, s.Clients(), n)
			}
			time.Sleep(time.Millisecond)
		}
		runtime.GC()
		runtime.ReadMemStats(&m1)
		used := int64(m1.HeapInuse+m1.StackInuse) - int64(m0.HeapInuse+m0.StackInuse)
		if used < 0 {
			used = 0
		}
		return float64(used) / n, runtime.NumGoroutine() - g0
	}
	pollerMem, pollerG := measure(ConnModePoller)
	goroMem, goroG := measure(ConnModeGoroutine)
	t.Logf("idle cost per conn: poller %.0f B (%d goroutines), goroutine %.0f B (%d goroutines)",
		pollerMem, pollerG, goroMem, goroG)
	if pollerMem >= goroMem {
		t.Errorf("poller idle memory %.0f B/conn not below goroutine core's %.0f B/conn", pollerMem, goroMem)
	}
	if pollerG >= n {
		t.Errorf("poller core used %d goroutines for %d idle conns", pollerG, n)
	}
	if goroG < 2*n {
		t.Errorf("goroutine core used %d goroutines for %d conns, expected 2 per conn", goroG, n)
	}
}

// TestMaybeAdvertiseCostDriftGate pins the mid-connection re-advertisement
// policy: first measurement always ships, small EWMA drift stays quiet,
// >25% drift re-advertises, and pre-v3 peers never see the field.
func TestMaybeAdvertiseCostDriftGate(t *testing.T) {
	s := New(testConfig())
	sh := s.shardFor(0)

	c := &clientConn{}
	c.proto.Store(int32(netproto.Version3))
	var rb netproto.RefreshBatch

	s.maybeAdvertiseCost(c, &rb)
	if rb.CqrCost != 0 {
		t.Fatalf("advertised %d before any measurement", rb.CqrCost)
	}

	s.observeCost(sh, 1000*time.Nanosecond)
	s.maybeAdvertiseCost(c, &rb)
	if rb.CqrCost == 0 {
		t.Fatal("first measurement not advertised")
	}
	last := int64(rb.CqrCost)

	// Drift within 25%: stay quiet.
	rb.CqrCost = 0
	s.shardStats.Store(sh.idx, sCost, last+last/5)
	s.maybeAdvertiseCost(c, &rb)
	if rb.CqrCost != 0 {
		t.Errorf("re-advertised %d on a 20%% drift", rb.CqrCost)
	}

	// Drift beyond 25%: re-advertise the new value.
	s.shardStats.Store(sh.idx, sCost, last*2)
	s.maybeAdvertiseCost(c, &rb)
	if rb.CqrCost != uint64(last*2) {
		t.Errorf("after 2x drift advertised %d, want %d", rb.CqrCost, last*2)
	}

	// A v2 peer must never get the trailing field: its decoder rejects it.
	c2 := &clientConn{}
	c2.proto.Store(int32(netproto.Version2))
	var rb2 netproto.RefreshBatch
	s.maybeAdvertiseCost(c2, &rb2)
	if rb2.CqrCost != 0 {
		t.Errorf("v2 peer got cost advertisement %d", rb2.CqrCost)
	}
}

// TestPingAllocBudget enforces the serve path's allocation budget under
// both connection cores: a warmed-up ping round trip costs three small
// allocations (all on the test's own decode side), so the budget of six
// catches any regression that adds per-frame allocation to the server —
// e.g. a raw-conn callback closure built per syscall instead of per
// connection, which alone costs about ten allocations per frame.
func TestPingAllocBudget(t *testing.T) {
	forEachConnMode(t, func(t *testing.T, mode string) {
		_, addr := listenMode(t, testConfig(), mode)
		conn := rawDial(t, addr)
		ping := func(id uint64) {
			if err := netproto.Write(conn, &netproto.Ping{ID: id}); err != nil {
				t.Fatal(err)
			}
			if _, err := netproto.ReadMsg(conn); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 200; i++ {
			ping(uint64(i)) // warm the pools and the connection's flush state
		}
		const rounds = 2000
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		for i := 0; i < rounds; i++ {
			ping(uint64(200 + i))
		}
		runtime.ReadMemStats(&m1)
		perOp := float64(m1.Mallocs-m0.Mallocs) / rounds
		t.Logf("%s: %.2f allocs per ping round trip", mode, perOp)
		if perOp > 6 {
			t.Errorf("%s: %.2f allocs per ping round trip, budget is 6", mode, perOp)
		}
	})
}

// BenchmarkPingRTT measures the raw request/response round trip through
// each connection core with no client-side machinery: one connection, one
// Ping frame out, one Pong frame back.
func BenchmarkPingRTT(b *testing.B) {
	for _, mode := range []string{ConnModeGoroutine, ConnModePoller} {
		b.Run("connmode="+mode, func(b *testing.B) {
			if mode == ConnModePoller && !netpoll.Supported() {
				b.Skip("poller core unsupported on this platform")
			}
			cfg := testConfig()
			cfg.ConnMode = mode
			s := New(cfg)
			addr, err := s.Listen("127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			conn, err := net.Dial("tcp", addr.String())
			if err != nil {
				b.Fatal(err)
			}
			defer conn.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := netproto.Write(conn, &netproto.Ping{ID: uint64(i)}); err != nil {
					b.Fatal(err)
				}
				if _, err := netproto.ReadMsg(conn); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
