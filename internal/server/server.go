// Package server implements a networked data source: it hosts exact numeric
// values, accepts cache clients over TCP, runs one adaptive width controller
// per (client, key) subscription, pushes value-initiated refreshes when
// updates escape cached intervals, and answers exact reads (query-initiated
// refreshes). One goroutine serves each connection's requests; pushes are
// serialized per connection by a dedicated writer goroutine.
//
// The key space is partitioned over Config.Shards lock shards (default
// scaled to GOMAXPROCS), each owning a source.Source and random stream
// behind its own mutex, so requests from different connections contend only
// when they touch keys on the same shard. The connection registry has its
// own lock; the only nested acquisition is shard lock → connection lock
// (never the reverse), so the ordering is deadlock-free. Refresh frames for
// a key are enqueued while its shard lock is held, which guarantees each
// client observes that key's intervals in generation order — installing them
// in arrival order preserves the validity invariant.
package server

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"

	"apcache/internal/core"
	"apcache/internal/netproto"
	"apcache/internal/shard"
	"apcache/internal/source"
)

// Config parameterizes a server.
type Config struct {
	// Params configures the per-subscription adaptive controllers.
	Params core.Params
	// InitialWidth seeds each new controller.
	InitialWidth float64
	// Seed drives the controllers' probabilistic adjustments. Each shard
	// derives its own stream from it.
	Seed int64
	// Shards sets the number of lock shards the key space is partitioned
	// over. 0 selects a default scaled to GOMAXPROCS; any value is rounded
	// up to a power of two and capped at 256.
	Shards int
	// Logf, when non-nil, receives diagnostic messages.
	Logf func(format string, args ...interface{})
}

// srcShard owns the values, subscriptions, and controllers for one slice of
// the key space, guarded by mu.
type srcShard struct {
	mu  sync.Mutex
	src *source.Source
	_   [64 - 16]byte // pad past one cache line; see storeShard in apcache.go
}

// Server hosts values and serves cache clients.
type Server struct {
	cfg    Config
	shards []*srcShard

	// connMu guards the connection registry and listener lifecycle. It is
	// only ever acquired after a shard lock, never before one.
	connMu  sync.Mutex
	conns   map[int]*clientConn
	nextID  int
	ln      net.Listener
	closed  bool
	serveWG sync.WaitGroup
}

// clientConn is one connected cache.
type clientConn struct {
	id   int
	conn net.Conn
	out  chan netproto.Message
	done chan struct{}
}

// lockedRand adapts a shard's mutex-guarded RNG to core.Rand. The shard
// mutex is always held when its controllers run, so plain access is safe;
// this type exists to document that invariant.
type lockedRand struct{ r *rand.Rand }

func (l lockedRand) Float64() float64 { return l.r.Float64() }

// New creates a server. It panics on invalid Params (configuration error).
func New(cfg Config) *Server {
	if err := cfg.Params.Validate(); err != nil {
		panic(err)
	}
	if cfg.InitialWidth < 0 {
		panic("server: negative initial width")
	}
	n := shard.Count(cfg.Shards)
	s := &Server{
		cfg:    cfg,
		shards: make([]*srcShard, n),
		conns:  make(map[int]*clientConn),
	}
	for i := range s.shards {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)))
		sh := &srcShard{}
		sh.src = source.New(func(cacheID, key int) core.WidthPolicy {
			return core.NewController(cfg.Params, cfg.InitialWidth, lockedRand{rng})
		})
		s.shards[i] = sh
	}
	return s
}

// Shards returns the number of lock shards the server was built with.
func (s *Server) Shards() int { return len(s.shards) }

// shardFor returns the shard owning key.
func (s *Server) shardFor(key int) *srcShard {
	return s.shards[shard.Index(key, len(s.shards))]
}

// SetInitial seeds a value without generating refreshes.
func (s *Server) SetInitial(key int, v float64) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.src.SetInitial(key, v)
}

// Set updates a value, pushing value-initiated refreshes to every client
// whose interval the update invalidates. It returns the number of refreshes
// pushed. Only the key's shard is locked; the frames are enqueued under that
// lock so each client sees the key's intervals in generation order.
func (s *Server) Set(key int, v float64) int {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	refreshes := sh.src.Set(key, v)
	if len(refreshes) == 0 {
		return 0
	}
	// One connMu acquisition for the whole batch: taking it per refresh
	// would put a global lock back on the sharded hot path. send is a
	// non-blocking enqueue, so holding connMu across the loop is cheap.
	s.connMu.Lock()
	defer s.connMu.Unlock()
	for _, r := range refreshes {
		c, ok := s.conns[r.CacheID]
		if !ok {
			continue // client disconnected; subscription reaped below
		}
		c.send(&netproto.Refresh{
			ID:            0,
			Key:           int64(r.Key),
			Kind:          netproto.KindValueInitiated,
			Value:         r.Value,
			Lo:            r.Interval.Lo,
			Hi:            r.Interval.Hi,
			OriginalWidth: r.OriginalWidth,
		})
	}
	return len(refreshes)
}

// Value returns the current exact value.
func (s *Server) Value(key int) (float64, bool) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.src.Value(key)
}

// Clients returns the number of connected caches.
func (s *Server) Clients() int {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	return len(s.conns)
}

// Listen starts accepting connections on addr (e.g. "127.0.0.1:0") and
// returns the bound address.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: listen %s: %w", addr, err)
	}
	s.connMu.Lock()
	s.ln = ln
	s.connMu.Unlock()
	s.serveWG.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.serveWG.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.connMu.Lock()
		if s.closed {
			s.connMu.Unlock()
			conn.Close()
			return
		}
		s.nextID++
		c := &clientConn{
			id:   s.nextID,
			conn: conn,
			out:  make(chan netproto.Message, 256),
			done: make(chan struct{}),
		}
		s.conns[c.id] = c
		s.connMu.Unlock()
		s.serveWG.Add(2)
		go s.writeLoop(c)
		go s.readLoop(c)
	}
}

// send enqueues a message; a slow client's queue overflowing drops the
// message (the next refresh supersedes it anyway).
func (c *clientConn) send(m netproto.Message) {
	select {
	case c.out <- m:
	case <-c.done:
	default:
		// Queue full: drop. Validity is preserved because a dropped
		// value-initiated refresh is followed by another as soon as the
		// value escapes the (still-stored) interval again — or, in the
		// worst case, the client's next query fetches the exact value.
	}
}

func (s *Server) writeLoop(c *clientConn) {
	defer s.serveWG.Done()
	w := bufio.NewWriter(c.conn)
	for {
		select {
		case m := <-c.out:
			if err := netproto.Write(w, m); err != nil {
				c.conn.Close()
				return
			}
			// Drain anything queued before flushing.
			for {
				select {
				case m := <-c.out:
					if err := netproto.Write(w, m); err != nil {
						c.conn.Close()
						return
					}
					continue
				default:
				}
				break
			}
			if err := w.Flush(); err != nil {
				c.conn.Close()
				return
			}
		case <-c.done:
			return
		}
	}
}

func (s *Server) readLoop(c *clientConn) {
	defer s.serveWG.Done()
	defer s.dropClient(c)
	r := bufio.NewReader(c.conn)
	for {
		msg, err := netproto.ReadMsg(r)
		if err != nil {
			if !errors.Is(err, net.ErrClosed) {
				s.logf("client %d: read: %v", c.id, err)
			}
			return
		}
		switch m := msg.(type) {
		case *netproto.Subscribe:
			s.handleSubscribe(c, m)
		case *netproto.Unsubscribe:
			sh := s.shardFor(int(m.Key))
			sh.mu.Lock()
			sh.src.Unsubscribe(c.id, int(m.Key))
			sh.mu.Unlock()
		case *netproto.Read:
			s.handleRead(c, m)
		case *netproto.Ping:
			c.send(&netproto.Pong{ID: m.ID})
		default:
			c.send(&netproto.ErrorMsg{Msg: fmt.Sprintf("unexpected %T", msg)})
		}
	}
}

func (s *Server) handleSubscribe(c *clientConn, m *netproto.Subscribe) {
	sh := s.shardFor(int(m.Key))
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.src.Value(int(m.Key)); !ok {
		c.send(&netproto.ErrorMsg{ID: m.ID, Msg: fmt.Sprintf("unknown key %d", m.Key)})
		return
	}
	r := sh.src.Subscribe(c.id, int(m.Key))
	// Enqueued under the shard lock: a concurrent Set on this key cannot
	// slip its (newer) refresh frame ahead of this one.
	c.send(&netproto.Refresh{
		ID:            m.ID,
		Key:           m.Key,
		Kind:          netproto.KindInitial,
		Value:         r.Value,
		Lo:            r.Interval.Lo,
		Hi:            r.Interval.Hi,
		OriginalWidth: r.OriginalWidth,
	})
}

func (s *Server) handleRead(c *clientConn, m *netproto.Read) {
	sh := s.shardFor(int(m.Key))
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.src.Value(int(m.Key)); !ok {
		c.send(&netproto.ErrorMsg{ID: m.ID, Msg: fmt.Sprintf("unknown key %d", m.Key)})
		return
	}
	r := sh.src.Read(c.id, int(m.Key))
	c.send(&netproto.Refresh{
		ID:            m.ID,
		Key:           m.Key,
		Kind:          netproto.KindQueryInitiated,
		Value:         r.Value,
		Lo:            r.Interval.Lo,
		Hi:            r.Interval.Hi,
		OriginalWidth: r.OriginalWidth,
	})
}

// dropClient removes a disconnected client and its subscriptions.
func (s *Server) dropClient(c *clientConn) {
	s.connMu.Lock()
	if _, ok := s.conns[c.id]; !ok {
		s.connMu.Unlock()
		return
	}
	delete(s.conns, c.id)
	close(c.done)
	c.conn.Close()
	s.connMu.Unlock()
	// Reap the client's subscriptions shard by shard so Set stops preparing
	// refreshes for it. (Within the protocol this is connection teardown,
	// not the cache-eviction notification the paper's algorithm avoids.)
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.src.UnsubscribeCache(c.id)
		sh.mu.Unlock()
	}
}

// Close shuts the server down and waits for its goroutines.
func (s *Server) Close() error {
	s.connMu.Lock()
	s.closed = true
	ln := s.ln
	conns := make([]*clientConn, 0, len(s.conns))
	for _, c := range s.conns {
		conns = append(conns, c)
	}
	s.connMu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		s.dropClient(c)
	}
	s.serveWG.Wait()
	return nil
}

func (s *Server) logf(format string, args ...interface{}) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}
