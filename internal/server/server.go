// Package server implements a networked data source: it hosts exact numeric
// values, accepts cache clients over TCP, runs one adaptive width controller
// per (client, key) subscription, pushes value-initiated refreshes when
// updates escape cached intervals, and answers exact reads (query-initiated
// refreshes). One goroutine serves each connection's requests; pushes are
// serialized per connection by a dedicated writer goroutine.
package server

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"

	"apcache/internal/core"
	"apcache/internal/netproto"
	"apcache/internal/source"
)

// Config parameterizes a server.
type Config struct {
	// Params configures the per-subscription adaptive controllers.
	Params core.Params
	// InitialWidth seeds each new controller.
	InitialWidth float64
	// Seed drives the controllers' probabilistic adjustments.
	Seed int64
	// Logf, when non-nil, receives diagnostic messages.
	Logf func(format string, args ...interface{})
}

// Server hosts values and serves cache clients.
type Server struct {
	cfg Config

	mu      sync.Mutex
	src     *source.Source
	conns   map[int]*clientConn
	nextID  int
	rng     *rand.Rand
	ln      net.Listener
	closed  bool
	serveWG sync.WaitGroup
}

// clientConn is one connected cache.
type clientConn struct {
	id   int
	conn net.Conn
	out  chan netproto.Message
	done chan struct{}
}

// lockedRand adapts the server's mutex-guarded RNG to core.Rand. The server
// mutex is always held when controllers run, so plain access is safe; this
// type exists to document that invariant.
type lockedRand struct{ r *rand.Rand }

func (l lockedRand) Float64() float64 { return l.r.Float64() }

// New creates a server. It panics on invalid Params (configuration error).
func New(cfg Config) *Server {
	if err := cfg.Params.Validate(); err != nil {
		panic(err)
	}
	if cfg.InitialWidth < 0 {
		panic("server: negative initial width")
	}
	s := &Server{
		cfg:   cfg,
		conns: make(map[int]*clientConn),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
	s.src = source.New(func(cacheID, key int) core.WidthPolicy {
		return core.NewController(cfg.Params, cfg.InitialWidth, lockedRand{s.rng})
	})
	return s
}

// SetInitial seeds a value without generating refreshes.
func (s *Server) SetInitial(key int, v float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.src.SetInitial(key, v)
}

// Set updates a value, pushing value-initiated refreshes to every client
// whose interval the update invalidates. It returns the number of refreshes
// pushed.
func (s *Server) Set(key int, v float64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	refreshes := s.src.Set(key, v)
	for _, r := range refreshes {
		c, ok := s.conns[r.CacheID]
		if !ok {
			continue // client disconnected; subscription reaped below
		}
		c.send(&netproto.Refresh{
			ID:            0,
			Key:           int64(r.Key),
			Kind:          netproto.KindValueInitiated,
			Value:         r.Value,
			Lo:            r.Interval.Lo,
			Hi:            r.Interval.Hi,
			OriginalWidth: r.OriginalWidth,
		})
	}
	return len(refreshes)
}

// Value returns the current exact value.
func (s *Server) Value(key int) (float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.src.Value(key)
}

// Clients returns the number of connected caches.
func (s *Server) Clients() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// Listen starts accepting connections on addr (e.g. "127.0.0.1:0") and
// returns the bound address.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.serveWG.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.serveWG.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.nextID++
		c := &clientConn{
			id:   s.nextID,
			conn: conn,
			out:  make(chan netproto.Message, 256),
			done: make(chan struct{}),
		}
		s.conns[c.id] = c
		s.mu.Unlock()
		s.serveWG.Add(2)
		go s.writeLoop(c)
		go s.readLoop(c)
	}
}

// send enqueues a message; a slow client's queue overflowing drops the
// message (the next refresh supersedes it anyway).
func (c *clientConn) send(m netproto.Message) {
	select {
	case c.out <- m:
	case <-c.done:
	default:
		// Queue full: drop. Validity is preserved because a dropped
		// value-initiated refresh is followed by another as soon as the
		// value escapes the (still-stored) interval again — or, in the
		// worst case, the client's next query fetches the exact value.
	}
}

func (s *Server) writeLoop(c *clientConn) {
	defer s.serveWG.Done()
	w := bufio.NewWriter(c.conn)
	for {
		select {
		case m := <-c.out:
			if err := netproto.Write(w, m); err != nil {
				c.conn.Close()
				return
			}
			// Drain anything queued before flushing.
			for {
				select {
				case m := <-c.out:
					if err := netproto.Write(w, m); err != nil {
						c.conn.Close()
						return
					}
					continue
				default:
				}
				break
			}
			if err := w.Flush(); err != nil {
				c.conn.Close()
				return
			}
		case <-c.done:
			return
		}
	}
}

func (s *Server) readLoop(c *clientConn) {
	defer s.serveWG.Done()
	defer s.dropClient(c)
	r := bufio.NewReader(c.conn)
	for {
		msg, err := netproto.ReadMsg(r)
		if err != nil {
			if !errors.Is(err, net.ErrClosed) {
				s.logf("client %d: read: %v", c.id, err)
			}
			return
		}
		switch m := msg.(type) {
		case *netproto.Subscribe:
			s.handleSubscribe(c, m)
		case *netproto.Unsubscribe:
			s.mu.Lock()
			s.src.Unsubscribe(c.id, int(m.Key))
			s.mu.Unlock()
		case *netproto.Read:
			s.handleRead(c, m)
		case *netproto.Ping:
			c.send(&netproto.Pong{ID: m.ID})
		default:
			c.send(&netproto.ErrorMsg{Msg: fmt.Sprintf("unexpected %T", msg)})
		}
	}
}

func (s *Server) handleSubscribe(c *clientConn, m *netproto.Subscribe) {
	s.mu.Lock()
	if _, ok := s.src.Value(int(m.Key)); !ok {
		s.mu.Unlock()
		c.send(&netproto.ErrorMsg{ID: m.ID, Msg: fmt.Sprintf("unknown key %d", m.Key)})
		return
	}
	r := s.src.Subscribe(c.id, int(m.Key))
	s.mu.Unlock()
	c.send(&netproto.Refresh{
		ID:            m.ID,
		Key:           m.Key,
		Kind:          netproto.KindInitial,
		Value:         r.Value,
		Lo:            r.Interval.Lo,
		Hi:            r.Interval.Hi,
		OriginalWidth: r.OriginalWidth,
	})
}

func (s *Server) handleRead(c *clientConn, m *netproto.Read) {
	s.mu.Lock()
	if _, ok := s.src.Value(int(m.Key)); !ok {
		s.mu.Unlock()
		c.send(&netproto.ErrorMsg{ID: m.ID, Msg: fmt.Sprintf("unknown key %d", m.Key)})
		return
	}
	r := s.src.Read(c.id, int(m.Key))
	s.mu.Unlock()
	c.send(&netproto.Refresh{
		ID:            m.ID,
		Key:           m.Key,
		Kind:          netproto.KindQueryInitiated,
		Value:         r.Value,
		Lo:            r.Interval.Lo,
		Hi:            r.Interval.Hi,
		OriginalWidth: r.OriginalWidth,
	})
}

// dropClient removes a disconnected client and its subscriptions.
func (s *Server) dropClient(c *clientConn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.conns[c.id]; !ok {
		return
	}
	delete(s.conns, c.id)
	close(c.done)
	c.conn.Close()
	// Reap the client's subscriptions so Set stops preparing refreshes for
	// it. (Within the protocol this is connection teardown, not the
	// cache-eviction notification the paper's algorithm avoids.)
	for key := 0; ; key++ {
		if _, ok := s.src.Value(key); !ok {
			break
		}
		s.src.Unsubscribe(c.id, key)
	}
}

// Close shuts the server down and waits for its goroutines.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	conns := make([]*clientConn, 0, len(s.conns))
	for _, c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		s.dropClient(c)
	}
	s.serveWG.Wait()
	return nil
}

func (s *Server) logf(format string, args ...interface{}) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}
