// Package server implements a networked data source: it hosts exact numeric
// values, accepts cache clients over TCP, runs one adaptive width controller
// per (client, key) subscription, pushes value-initiated refreshes when
// updates escape cached intervals, and answers exact reads (query-initiated
// refreshes). One goroutine serves each connection's requests; pushes are
// serialized per connection by a dedicated writer goroutine.
//
// The key space is partitioned over Config.Shards lock shards (default
// scaled to GOMAXPROCS), each owning a source.Source and random stream
// behind its own mutex, so requests from different connections contend only
// when they touch keys on the same shard. The connection registry has its
// own lock; the only nested acquisition is shard lock → connection lock
// (never the reverse), so the ordering is deadlock-free. Refresh frames for
// a key are enqueued while its shard lock is held, which guarantees each
// client observes that key's intervals in generation order — installing them
// in arrival order preserves the validity invariant. Multi-key requests
// (ReadMulti, SubscribeMulti, Batch) hold all their shards' locks, acquired
// in ascending index order, while the single response frame is enqueued, so
// the same ordering guarantee extends to batches.
//
// Protocol v2 (negotiated by a Hello/HelloAck handshake, see
// internal/netproto) batches at both ends of a connection: the request loop
// decodes a Batch or multi-key frame, fans its sub-requests out across the
// shards they hash to, and replies with one frame; the writer goroutine
// coalesces queued value-initiated pushes into RefreshBatch frames, flushing
// on size (the negotiated batch limit), when a response is waiting, or when
// the per-connection adaptive flush window expires. Peers that never send
// Hello speak v1 — one message per frame — and are never sent v2 frames.
//
// A slow client's pushes are never silently dropped: when its queue is
// congested, refreshes park in a per-connection merge buffer — one entry per
// key, newer refreshes folded in by interval union with latest-wins value —
// that the writer flushes once the queue backlog drains, preserving per-key
// delivery order at a memory bound of one pending entry per key. Stats
// counts the diversions (PushOverflows) and folds (PushMerges).
//
// The wire path is allocation-free in steady state and syscall-minimal: the
// read loop decodes through a netproto.Decoder (reused buffers and message
// boxes), responses and pushes travel as pooled netproto messages that the
// writer releases after encoding, and each flush encodes its entire batch
// into one reused buffer written with a single conn.Write call. The flush
// window adapts per connection: an EWMA of observed inter-push gaps shrinks
// the configured FlushInterval so quiet connections flush immediately while
// bursty ones coalesce aggressively.
package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"apcache/internal/cache"
	"apcache/internal/core"
	"apcache/internal/cq"
	"apcache/internal/interval"
	"apcache/internal/netpoll"
	"apcache/internal/netproto"
	"apcache/internal/shard"
	"apcache/internal/source"
	"apcache/internal/stats"
	"apcache/internal/wal"
)

// DefaultMaxBatch is the batch limit offered when Config.MaxBatch is 0.
const DefaultMaxBatch = 128

// Connection-core selectors for Config.ConnMode.
const (
	// ConnModeGoroutine serves each connection with a read goroutine and a
	// write goroutine — the classic core, and the benchmark baseline.
	ConnModeGoroutine = "goroutine"
	// ConnModePoller serves every connection from a shared event-driven
	// core: a small set of event loops owns read readiness through epoll
	// and serves reads, decode, dispatch, and inline reply flushes, with a
	// shared writer pool taking only the flushes that may block, so an
	// idle connection costs a registered descriptor plus its state
	// instead of two goroutine stacks.
	ConnModePoller = "poller"
)

// Config parameterizes a server.
type Config struct {
	// Params configures the per-subscription adaptive controllers.
	Params core.Params
	// InitialWidth seeds each new controller.
	InitialWidth float64
	// Seed drives the controllers' probabilistic adjustments. Each shard
	// derives its own stream from it.
	Seed int64
	// Shards sets the number of lock shards the key space is partitioned
	// over. 0 selects a default scaled to GOMAXPROCS; any value is rounded
	// up to a power of two and capped at 256.
	Shards int
	// MaxBatch caps the messages coalesced into one Batch/RefreshBatch
	// frame. 0 selects DefaultMaxBatch; any value is clamped to
	// [1, netproto.MaxBatchItems]. The per-connection limit is the min of
	// this and the client's Hello offer.
	MaxBatch int
	// FlushInterval caps how long the per-connection writer may hold a
	// value-initiated push to coalesce it with successors. The actual
	// window adapts per connection: it is FlushInterval shrunk by the
	// EWMA of that connection's inter-push gaps (clamped to
	// [0, FlushInterval]), so a connection receiving sparse pushes flushes
	// immediately while a bursty one uses the whole window. 0 disables
	// the window entirely (flush as soon as the queue drains); responses
	// to requests always flush immediately regardless.
	FlushInterval time.Duration
	// ProtoVersion caps the protocol the server speaks: 0 negotiates up
	// to v4 with clients that send Hello (each connection lands on the
	// minimum of both peers' offers); netproto.Version3 caps negotiation
	// below continuous queries and tagged pushes; netproto.Version2 caps
	// at v2 (free-text error frames); netproto.Version1 declines every
	// Hello, forcing all clients onto v1 single-message frames (the
	// compatibility/testing escape hatch).
	ProtoVersion int
	// ConnMode selects the connection-serving core: ConnModeGoroutine (or
	// "") keeps two dedicated goroutines per connection; ConnModePoller
	// multiplexes all connections over the event-driven core in
	// internal/netpoll. On platforms without a poller implementation (or
	// when the poller fails to start) the server logs the downgrade and
	// falls back to the goroutine core, preserving today's behavior.
	ConnMode string
	// PollWorkers is the number of event loops the poller core runs;
	// connections are sharded across them round-robin and each loop
	// serves its connections' reads, decodes, dispatch, and inline reply
	// flushes. 0 scales to GOMAXPROCS. Ignored by the goroutine core.
	PollWorkers int
	// PollWriters is the number of shared writer goroutines the poller
	// core runs for the flushes that may block: value-initiated pushes,
	// flush-window expiries, and inline-flush remainders a full socket
	// deferred. 0 scales to GOMAXPROCS/2, minimum 1. Ignored by the
	// goroutine core.
	PollWriters int
	// LockedValueReads routes Value and the request paths' key-existence
	// checks through the shard mutex instead of the lock-free value table.
	// It exists purely as a benchmark baseline for the pre-lock-free
	// architecture, like Options.LockedReads on the Store.
	LockedValueReads bool
	// WALDir, when non-empty, makes Open journal the server's durable state
	// — hosted values and per-key learned widths — to a write-ahead log
	// under this directory. A restarted server recovers the journal before
	// listening, so reconnecting clients find their keys at the values and
	// precision the previous process had learned instead of a cold start.
	// New ignores it (only Open attaches the log).
	WALDir string
	// WALFsync selects when journal appends reach stable storage (default
	// wal.FsyncInterval; see the wal.Policy constants). With wal.FsyncAlways
	// every Set and exact read waits for an fsync covering its records.
	WALFsync wal.Policy
	// WALFsyncInterval is the journal's group-commit window for the
	// interval/none policies (default 2ms).
	WALFsyncInterval time.Duration
	// WALFS overrides the journal's filesystem (fault-injection tests).
	WALFS wal.FS
	// Logf, when non-nil, receives diagnostic messages.
	Logf func(format string, args ...interface{})
}

// srcShard owns the values, subscriptions, and controllers for one slice of
// the key space, guarded by mu. vals mirrors src's exact values in a
// lock-free table (cache.SeqValues): writers update it under mu, strictly
// after the source map, so any key visible in vals is already known to src;
// readers (Value, the request paths' existence checks) probe it without
// touching mu at all.
type srcShard struct {
	mu   sync.Mutex
	src  *source.Source
	vals *cache.SeqValues
	idx  int // this shard's stripe in the server's occupancy counters

	// walWidths mirrors the last width journaled per key, under mu. On a
	// durable server it serves double duty: the controller factory seeds new
	// subscriptions from it (so a client resubscribing after a restart — or
	// to a key another client already adapted — starts at the learned
	// precision instead of InitialWidth), and the WAL compactor re-emits it
	// when folding the log. Empty and inert on a non-durable server.
	walWidths map[int]float64

	_ [64 - 40]byte // pad past one cache line; see storeShard in apcache.go
}

// Stripe counter indices in Server.shardStats.
const (
	sKeys = iota // hosted values
	sSubs        // live (client, key) subscriptions
	sCost        // EWMA of measured per-key refresh latency, nanoseconds
	srvCounters
)

// Server hosts values and serves cache clients.
type Server struct {
	cfg      Config
	maxBatch int
	connMode string // resolved ConnMode (never empty)
	shards   []*srcShard

	// poll is the shared event-driven connection core; nil when the
	// server runs the goroutine core.
	poll *pollCore

	// engine maintains the registered continuous queries (protocol v4).
	// Each query holds source subscriptions under an engine-allocated cache
	// ID disjoint from connection IDs, so Set's push loop routes refreshes
	// that resolve to no connection here.
	engine *cq.Engine

	// shardStats holds each shard's occupancy gauges in its own padded
	// counter stripe, published by the shard's lock holder after every
	// mutation so Stats can read them without touching any shard mutex.
	shardStats *stats.Stripes

	// Push backpressure accounting (see push): how many refreshes were
	// diverted into per-connection merge buffers on queue congestion, and
	// how many later refreshes were folded into an already-diverted entry.
	pushOverflows atomic.Int64
	pushMerges    atomic.Int64

	// wal is the write-ahead journal a durable server (Open with WALDir)
	// appends hosted values and learned widths to; nil otherwise. walKick
	// nudges the background compactor (lossy); walStop/walDone bound its
	// lifetime; walErrOnce rate-limits the broken-durability diagnostic —
	// append failures are sticky inside the log and surfaced by Shutdown
	// and Close, the server keeps serving from memory regardless.
	wal        *wal.Log
	walKick    chan struct{}
	walStop    chan struct{}
	walDone    chan struct{}
	walErrOnce sync.Once

	// connMu guards the connection registry and listener lifecycle. It is
	// only ever acquired after a shard lock, never before one.
	connMu  sync.Mutex
	conns   map[int]*clientConn
	nextID  int
	ln      net.Listener
	closed  bool
	serveWG sync.WaitGroup
}

// clientConn is one connected cache.
type clientConn struct {
	id   int
	conn net.Conn
	out  chan netproto.Message // goroutine core's delivery queue; nil in poller mode
	done chan struct{}

	// ctx is cancelled the moment the connection leaves the registry, so
	// in-flight work on its behalf — in particular the multi-key fan-out
	// goroutines — stops generating source reads for a dead peer.
	ctx    context.Context
	cancel context.CancelFunc

	// pc is the connection's poller-core state; nil under the goroutine
	// core. Its presence selects the event-driven push/reply paths.
	pc *pollConn

	// costAdv is the refresh cost (ns) last advertised to this peer — in
	// the HelloAck, then piggybacked on RefreshBatch frames whenever the
	// measured EWMA drifts more than 25% from it. v3 connections only.
	costAdv atomic.Int64

	// proto is the negotiated protocol version: netproto.Version1 until a
	// Hello is accepted, the negotiated version (v2 or v3) after.
	// batchLimit is the negotiated per-frame batch cap. Both are written
	// by the read loop and read by the writer, hence atomics.
	proto      atomic.Int32
	batchLimit atomic.Int32

	// lastPush and gapEWMA drive the adaptive flush window: the enqueue
	// time of the last value-initiated push (UnixNano) and the EWMA of the
	// gaps between successive enqueues. Written under connMu by Set's push
	// loop, read lock-free by the writer goroutine.
	lastPush atomic.Int64
	gapEWMA  atomic.Int64

	// writeBusy marks the window in which the goroutine core's writer holds
	// dequeued messages it has not yet written to the socket, so Shutdown's
	// drain phase does not mistake an empty queue for a flushed connection.
	// Always false in poller mode (pc.scheduled covers the same window).
	writeBusy atomic.Bool

	// overflow is the push merge buffer: when the out queue is congested,
	// value-initiated refreshes are parked here — at most one entry per
	// key, newer refreshes folded in by interval union with latest-wins
	// value — instead of being dropped. ovMu guards it (connMu may be held
	// when it is taken, never the reverse); kick wakes the writer when the
	// buffer gains an entry while the queue is idle.
	ovMu     sync.Mutex
	overflow map[int64]*netproto.Refresh
	kick     chan struct{}

	// scratch is the read loop's per-request working storage, reused
	// across requests; only the read-loop goroutine touches it.
	scratch reqScratch

	// tags maps key → the watch tag the client's latest tagged Subscribe
	// (protocol v4) attached; value-initiated pushes for the key carry the
	// tag back so the client attributes them to a watch without guessing.
	// tagMu guards the map; nTags lets Set's push loop skip the lookup on
	// the (common) untagged connection entirely.
	tagMu sync.Mutex
	tags  map[int64]uint64
	nTags atomic.Int32
}

// setTag records (tag != 0) or clears (tag == 0) the watch tag pushes for
// key should carry. The latest Subscribe for the key wins.
func (c *clientConn) setTag(key int64, tag uint64) {
	c.tagMu.Lock()
	if tag == 0 {
		if _, ok := c.tags[key]; ok {
			delete(c.tags, key)
			c.nTags.Add(-1)
		}
	} else {
		if c.tags == nil {
			c.tags = make(map[int64]uint64)
		}
		if _, ok := c.tags[key]; !ok {
			c.nTags.Add(1)
		}
		c.tags[key] = tag
	}
	c.tagMu.Unlock()
}

// tagFor returns the watch tag pushes for key carry, 0 for none.
func (c *clientConn) tagFor(key int64) uint64 {
	if c.nTags.Load() == 0 {
		return 0
	}
	c.tagMu.Lock()
	t := c.tags[key]
	c.tagMu.Unlock()
	return t
}

// wake nudges the writer goroutine to drain the overflow buffer; a pending
// nudge is enough, so the send never blocks.
func (c *clientConn) wake() {
	select {
	case c.kick <- struct{}{}:
	default:
	}
}

// reqScratch groups a request's keys (or batch sub-requests) by the shard
// they hash to without allocating: byShard is indexed by shard and holds key
// positions, shardSet lists the touched shards, resp collects batch
// responses by position.
type reqScratch struct {
	resp     []netproto.Message
	shardSet []int
	byShard  [][]int
}

// v2 reports whether the connection completed the v2 handshake.
func (c *clientConn) v2() bool { return c.proto.Load() >= netproto.Version2 }

// observePush feeds one push-enqueue timestamp into the connection's
// inter-push gap EWMA (alpha = 1/8). Gaps are clamped to twice the flush
// cap before entering the EWMA: beyond that a gap only means "quiet", and
// an unclamped idle period (seconds) would swamp the average and keep the
// window closed for dozens of pushes into the very burst coalescing exists
// for. The clamp still lets sustained quiet drive the EWMA past the cap
// (closing the window) within a handful of observations.
func (c *clientConn) observePush(now int64, maxFlush time.Duration) {
	last := c.lastPush.Swap(now)
	if last == 0 {
		return
	}
	gap := now - last
	if gap < 0 {
		gap = 0
	}
	if lim := 2 * int64(maxFlush); gap > lim {
		gap = lim
	}
	old := c.gapEWMA.Load()
	if old == 0 {
		c.gapEWMA.Store(gap)
		return
	}
	c.gapEWMA.Store(old + (gap-old)/8)
}

// flushWindow returns how long the writer may hold a pending push run to
// coalesce successors: the static cap shrunk by the expected wait for the
// next push (the gap EWMA), clamped to [0, max]. A bursty connection (gaps
// near zero) keeps nearly the whole window; a quiet one (gaps at or beyond
// the cap) flushes immediately and pays no added latency. Before any gap
// has been observed the full cap applies, matching the static behavior.
func (c *clientConn) flushWindow(max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	ewma := time.Duration(c.gapEWMA.Load())
	if ewma == 0 {
		return max
	}
	if ewma >= max {
		return 0
	}
	return max - ewma
}

// lockedRand adapts a shard's mutex-guarded RNG to core.Rand. The shard
// mutex is always held when its controllers run, so plain access is safe;
// this type exists to document that invariant.
type lockedRand struct{ r *rand.Rand }

func (l lockedRand) Float64() float64 { return l.r.Float64() }

// New creates a server. It panics on invalid Params (configuration error).
func New(cfg Config) *Server {
	if err := cfg.Params.Validate(); err != nil {
		panic(err)
	}
	if cfg.InitialWidth < 0 {
		panic("server: negative initial width")
	}
	if cfg.ProtoVersion != 0 && (cfg.ProtoVersion < netproto.Version1 || cfg.ProtoVersion > netproto.Version4) {
		panic(fmt.Sprintf("server: unsupported protocol version %d", cfg.ProtoVersion))
	}
	mode := cfg.ConnMode
	switch mode {
	case "":
		mode = ConnModeGoroutine
	case ConnModeGoroutine, ConnModePoller:
	default:
		panic(fmt.Sprintf("server: unknown ConnMode %q", cfg.ConnMode))
	}
	maxBatch := cfg.MaxBatch
	if maxBatch <= 0 {
		maxBatch = DefaultMaxBatch
	}
	if maxBatch > netproto.MaxBatchItems {
		maxBatch = netproto.MaxBatchItems
	}
	n := shard.Count(cfg.Shards)
	s := &Server{
		cfg:        cfg,
		maxBatch:   maxBatch,
		connMode:   mode,
		shards:     make([]*srcShard, n),
		shardStats: stats.NewStripes(n, srvCounters),
		conns:      make(map[int]*clientConn),
		engine:     cq.NewEngine(),
	}
	if mode == ConnModePoller && !netpoll.Supported() {
		s.connMode = ConnModeGoroutine
		s.logf("server: netpoll unsupported on this platform; using goroutine connection core")
	}
	for i := range s.shards {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)))
		sh := &srcShard{idx: i, vals: cache.NewSeqValues(), walWidths: make(map[int]float64)}
		sh.src = source.New(func(cacheID, key int) core.WidthPolicy {
			w := cfg.InitialWidth
			if lw, ok := sh.walWidths[key]; ok && lw > 0 {
				w = lw // durable server: warm-start at the key's learned width
			}
			return core.NewController(cfg.Params, w, lockedRand{rng})
		})
		s.shards[i] = sh
	}
	return s
}

// Shards returns the number of lock shards the server was built with.
func (s *Server) Shards() int { return len(s.shards) }

// ConnMode reports the connection core actually in use — the configured
// mode, downgraded to ConnModeGoroutine when the poller is unavailable.
// Meaningful after Listen.
func (s *Server) ConnMode() string { return s.connMode }

// shardFor returns the shard owning key.
func (s *Server) shardFor(key int) *srcShard {
	return s.shards[shard.Index(key, len(s.shards))]
}

// syncShard publishes a shard's occupancy gauges to its counter stripe. The
// caller holds the shard lock, so each stripe has one writer at a time while
// Stats reads all of them lock-free.
func (s *Server) syncShard(sh *srcShard) {
	s.shardStats.Store(sh.idx, sKeys, int64(sh.src.Keys()))
	s.shardStats.Store(sh.idx, sSubs, int64(sh.src.Subscriptions()))
}

// SetInitial seeds a value without generating refreshes.
func (s *Server) SetInitial(key int, v float64) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	sh.src.SetInitial(key, v)
	sh.vals.Store(key, v)
	s.syncShard(sh)
	var tok uint64
	if s.wal != nil {
		tok = s.wal.Stage(sh.idx, wal.Record{Op: wal.OpValue, Key: int64(key), Val: v})
	}
	sh.mu.Unlock()
	s.walCommit(sh, tok)
}

// Set updates a value, pushing value-initiated refreshes to every client
// whose interval the update invalidates. It returns the number of refreshes
// pushed. Only the key's shard is locked; the frames are enqueued under that
// lock so each client sees the key's intervals in generation order.
func (s *Server) Set(key int, v float64) int {
	sh := s.shardFor(key)
	sh.mu.Lock()
	refreshes := sh.src.Set(key, v)
	sh.vals.Store(key, v)
	s.syncShard(sh)
	// Journal the update and the width adjustments its refreshes carry while
	// the lock still orders the buffer against other writers; the commit —
	// the part that may fsync — waits until the lock is released.
	var tok uint64
	if s.wal != nil {
		recs := make([]wal.Record, 0, 1+len(refreshes))
		recs = append(recs, wal.Record{Op: wal.OpValue, Key: int64(key), Val: v})
		for _, r := range refreshes {
			sh.walWidths[r.Key] = r.OriginalWidth
			recs = append(recs, wal.Record{Op: wal.OpWidth, Key: int64(r.Key), Val: r.OriginalWidth})
		}
		tok = s.wal.Stage(sh.idx, recs...)
	}
	if len(refreshes) == 0 {
		sh.mu.Unlock()
		s.walCommit(sh, tok)
		return 0
	}
	// One connMu acquisition for the whole batch: taking it per refresh
	// would put a global lock back on the sharded hot path. send is a
	// non-blocking enqueue, so holding connMu across the loop is cheap.
	var now int64
	if s.cfg.FlushInterval > 0 {
		now = time.Now().UnixNano()
	}
	var steers []cq.Steer
	s.connMu.Lock()
	for _, r := range refreshes {
		c, ok := s.conns[r.CacheID]
		if !ok {
			// No such connection: the subscription is either a disconnected
			// client's (reaped by dropClient eventually) or a standing
			// query's, held under an engine-allocated cache ID. Observing
			// under connMu serializes concurrent Sets on a query's member
			// keys, so its QueryUpdates are enqueued in answer order.
			steers = s.observeCQLocked(r, true, steers)
			continue
		}
		if now != 0 {
			c.observePush(now, s.cfg.FlushInterval)
		}
		m := netproto.GetRefresh()
		*m = netproto.Refresh{
			ID:            0,
			Key:           int64(r.Key),
			Kind:          netproto.KindValueInitiated,
			Value:         r.Value,
			Lo:            r.Interval.Lo,
			Hi:            r.Interval.Hi,
			OriginalWidth: r.OriginalWidth,
			Tag:           c.tagFor(int64(r.Key)),
		}
		s.push(c, m)
	}
	s.connMu.Unlock()
	sh.mu.Unlock()
	s.walCommit(sh, tok)
	if len(steers) > 0 {
		s.applySteers(steers)
	}
	return len(refreshes)
}

// observeCQLocked folds one refresh addressed to an engine-owned cache ID
// into its standing query and, when the answer interval changed, enqueues a
// QueryUpdate to the owning connection. The caller holds the key's shard
// lock and connMu; steers the engine's budget re-split requested are
// appended for the caller to apply after releasing the shard lock.
func (s *Server) observeCQLocked(r source.Refresh, allowSteer bool, steers []cq.Steer) []cq.Steer {
	up, emit, st := s.engine.Observe(r.CacheID, r.Key, r.Interval, r.Value, allowSteer)
	if emit {
		if c, ok := s.conns[up.Owner]; ok {
			m := netproto.GetQueryUpdate()
			*m = netproto.QueryUpdate{QID: up.QID, Value: up.Value, Lo: up.Iv.Lo, Hi: up.Iv.Hi}
			s.reply(c, m)
		}
	}
	return append(steers, st...)
}

// applySteers re-caps a standing query's per-key width shares after a budget
// re-split. Steers arrive shrinks-first from the engine and each is applied
// under its key's shard lock alone, so the sum of live caps never exceeds
// the query's budget at any instant. A key whose shipped interval is wider
// than its tightened cap is force-read to bring it under; the resulting
// refresh folds back into the engine with steering disabled, bounding the
// recursion at one level.
func (s *Server) applySteers(steers []cq.Steer) {
	for _, st := range steers {
		sh := s.shardFor(st.Key)
		sh.mu.Lock()
		cur, ok := sh.src.SetWidthCap(st.CacheID, st.Key, st.Target)
		if ok && cur > st.Target {
			r := sh.src.Read(st.CacheID, st.Key)
			s.connMu.Lock()
			s.observeCQLocked(r, false, nil)
			s.connMu.Unlock()
		}
		sh.mu.Unlock()
	}
}

// Value returns the current exact value. The default path probes the
// shard's lock-free value table and takes no mutex; a concurrent Set may or
// may not be visible yet, exactly as if the read had been serialized an
// instant earlier (the same linearization slack the old mutex hid). With
// Config.LockedValueReads the pre-lock-free path through the shard mutex is
// used instead, as a benchmark baseline.
func (s *Server) Value(key int) (float64, bool) {
	sh := s.shardFor(key)
	if s.cfg.LockedValueReads {
		sh.mu.Lock()
		defer sh.mu.Unlock()
		return sh.src.Value(key)
	}
	return sh.vals.Load(key)
}

// hasKeyLocked reports whether the shard hosts key; the caller holds sh.mu.
// The lock-free table is authoritative on the default path (it is written
// under the same lock, after the source map, so it can never trail src while
// mu is held); the baseline flag routes through the source map itself.
func (s *Server) hasKeyLocked(sh *srcShard, key int) bool {
	if s.cfg.LockedValueReads {
		_, ok := sh.src.Value(key)
		return ok
	}
	return sh.vals.Contains(key)
}

// observeCost folds one measured query-initiated refresh latency into the
// shard's cost EWMA (alpha = 1/8, nanoseconds). The caller holds the shard
// lock, so the stripe keeps its single-writer discipline; RefreshCost reads
// all stripes lock-free.
func (s *Server) observeCost(sh *srcShard, d time.Duration) {
	ns := int64(d)
	if ns <= 0 {
		ns = 1 // clock granularity floor: a measured refresh is never free
	}
	old := s.shardStats.Load(sh.idx, sCost)
	if old == 0 {
		s.shardStats.Store(sh.idx, sCost, ns)
		return
	}
	s.shardStats.Store(sh.idx, sCost, old+(ns-old)/8)
}

// RefreshCost returns the server's measured per-key refresh latency: the
// mean of the shards' cost EWMAs, skipping shards that have served no reads
// yet. Zero means no measurement exists. Handshakes advertise this to v3
// clients (HelloAck.CqrCost) so their ramp heuristic can weigh real refresh
// cost against observed RTT instead of a hardcoded constant.
func (s *Server) RefreshCost() time.Duration {
	var sum, n int64
	for i := range s.shards {
		if c := s.shardStats.Load(i, sCost); c > 0 {
			sum += c
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return time.Duration(sum / n)
}

// Clients returns the number of connected caches.
func (s *Server) Clients() int {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	return len(s.conns)
}

// ShardStats describes one shard's occupancy: how many keys it hosts and how
// many live (client, key) subscriptions it maintains. Skew across shards is
// the signal the per-shard eviction question in ROADMAP.md needs.
type ShardStats struct {
	Keys          int
	Subscriptions int
}

// Stats is a snapshot of the server's occupancy and push backpressure.
type Stats struct {
	Clients  int
	PerShard []ShardStats
	// PushOverflows counts value-initiated refreshes diverted into a
	// connection's merge buffer because its queue was congested;
	// PushMerges counts later refreshes folded into an already-diverted
	// entry (interval union, latest value). Before the merge buffer these
	// would all have been dropped outright.
	PushOverflows int
	PushMerges    int
	// RefreshCost is the measured per-key query-initiated refresh latency
	// (mean of the shards' EWMAs); zero until the server has served reads.
	RefreshCost time.Duration
	// Queries is the number of registered standing continuous queries.
	Queries int
}

// Stats reports per-shard occupancy. The gauges are read from the per-shard
// counter stripes their lock holders publish, so the snapshot takes no shard
// lock and is per-shard-consistent rather than global.
func (s *Server) Stats() Stats {
	st := Stats{
		Clients:       s.Clients(),
		PerShard:      make([]ShardStats, len(s.shards)),
		PushOverflows: int(s.pushOverflows.Load()),
		PushMerges:    int(s.pushMerges.Load()),
		RefreshCost:   s.RefreshCost(),
		Queries:       s.engine.Queries(),
	}
	for i := range s.shards {
		st.PerShard[i] = ShardStats{
			Keys:          int(s.shardStats.Load(i, sKeys)),
			Subscriptions: int(s.shardStats.Load(i, sSubs)),
		}
	}
	return st
}

// Listen starts accepting connections on addr (e.g. "127.0.0.1:0") and
// returns the bound address.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: listen %s: %w", addr, err)
	}
	if s.connMode == ConnModePoller && s.poll == nil {
		core, perr := s.startPollCore()
		if perr != nil {
			s.connMode = ConnModeGoroutine
			s.logf("server: poller core unavailable (%v); using goroutine connection core", perr)
		} else {
			s.poll = core
		}
	}
	s.connMu.Lock()
	s.ln = ln
	s.connMu.Unlock()
	s.serveWG.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.serveWG.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.connMu.Lock()
		if s.closed {
			s.connMu.Unlock()
			conn.Close()
			return
		}
		s.nextID++
		c := &clientConn{
			id:   s.nextID,
			conn: conn,
			done: make(chan struct{}),
		}
		c.ctx, c.cancel = context.WithCancel(context.Background())
		if s.poll != nil {
			// Attach before the registry insert so every registered conn
			// has its poller state (c.pc is immutable once visible); the
			// descriptor is armed only after the insert, so a readiness
			// event can never beat the registry.
			if err := s.poll.attach(c); err != nil {
				s.connMu.Unlock()
				s.logf("client %d: poller attach: %v", c.id, err)
				c.cancel()
				conn.Close()
				continue
			}
		} else {
			// The goroutine core's delivery queue and overflow kick; the
			// poller core replaces both with the shared writer pool's
			// per-connection out slice, saving ~16KB per idle connection.
			c.out = make(chan netproto.Message, 1024)
			c.kick = make(chan struct{}, 1)
		}
		c.proto.Store(netproto.Version1)
		c.batchLimit.Store(int32(s.maxBatch))
		s.conns[c.id] = c
		s.connMu.Unlock()
		if s.poll != nil {
			if err := s.poll.arm(c); err != nil {
				s.logf("client %d: poller register: %v", c.id, err)
				s.dropClient(c)
			}
			continue
		}
		s.serveWG.Add(2)
		go s.writeLoop(c)
		go s.readLoop(c)
	}
}

// replyHeadroom is the slice of the out queue reserved for request
// responses: pushes stop enqueuing before the queue is completely full so a
// burst of value-initiated traffic cannot starve replies.
const replyHeadroom = 128

// fanoutThreshold is the minimum sub-request count before a multi-key or
// batch request is fanned out across per-shard goroutines; below it the
// spawn/join overhead exceeds the per-key source work and the sequential
// loop wins.
const fanoutThreshold = 32

// push enqueues a value-initiated refresh for delivery. The fast path is a
// non-blocking send on the out queue. When the queue is congested the
// refresh is not dropped: it is parked in the connection's merge buffer, one
// pending entry per key, and any newer refresh for a parked key is folded in
// — interval union (the union contains the newest interval, so it is valid
// for the newest value), latest-wins value and width. The writer flushes the
// buffer only once the queue backlog has drained, so a key's intervals still
// reach the client in generation order: while an entry is parked, every
// newer refresh for its key lands in the same entry, never behind it in the
// queue.
//
// Pushes are serialized by connMu (Set holds it across its refresh loop), so
// push never races itself; ovMu protects the buffer from the writer's
// concurrent drain. Ownership of m passes to the queue, the buffer, or back
// to the pool on merge.
func (s *Server) push(c *clientConn, m *netproto.Refresh) {
	if c.pc != nil {
		s.pushPoll(c, m)
		return
	}
	c.ovMu.Lock()
	if p, ok := c.overflow[m.Key]; ok {
		p.Lo = math.Min(p.Lo, m.Lo)
		p.Hi = math.Max(p.Hi, m.Hi)
		p.Value = m.Value
		p.OriginalWidth = m.OriginalWidth
		c.ovMu.Unlock()
		netproto.Release(m)
		s.pushMerges.Add(1)
		c.wake()
		return
	}
	c.ovMu.Unlock()
	if len(c.out) < cap(c.out)-replyHeadroom {
		// Pushes stop short of the queue's capacity so a burst of
		// value-initiated traffic cannot starve request replies.
		select {
		case c.out <- m:
			return
		case <-c.done:
			netproto.Release(m)
			return
		default:
			// Raced to full between the check and the send; park it below.
		}
	}
	c.ovMu.Lock()
	if c.overflow == nil {
		c.overflow = make(map[int64]*netproto.Refresh)
	}
	c.overflow[m.Key] = m
	c.ovMu.Unlock()
	s.pushOverflows.Add(1)
	c.wake()
}

// drainOverflow moves parked pushes into the writer's batch, up to max
// entries. Per-key delivery order requires that everything still queued is
// older than any parked entry — true only while the queue is empty, since a
// push parked during a later congestion episode may be newer than pushes
// queued just before it. The caller observed an empty queue, but that
// observation is stale by now, so it is re-verified under ovMu (push parks
// and merges under the same mutex): if pushes have been queued meanwhile,
// the drain is skipped and retried after the queue empties again.
func (c *clientConn) drainOverflow(batch []netproto.Message, max int) []netproto.Message {
	c.ovMu.Lock()
	if len(c.out) > 0 {
		again := len(c.overflow) > 0
		c.ovMu.Unlock()
		if again {
			c.wake()
		}
		return batch
	}
	for k, m := range c.overflow {
		if len(batch) >= max {
			break
		}
		delete(c.overflow, k)
		batch = append(batch, m)
	}
	again := len(c.overflow) > 0
	c.ovMu.Unlock()
	if again {
		c.wake() // batch budget ran out; come back for the rest
	}
	return batch
}

// overflowPending reports whether any pushes are parked in the merge buffer.
func (c *clientConn) overflowPending() bool {
	c.ovMu.Lock()
	n := len(c.overflow)
	c.ovMu.Unlock()
	return n > 0
}

// reply enqueues the response to a request. Unlike pushes, responses can
// neither be merged nor deferred — the client would stall a pipelined call until
// its timeout while the server's subscription/controller state has already
// advanced. The queue has headroom reserved past the push watermark, and
// the writer drains it without ever taking shard locks; if it is full
// anyway the peer's TCP stream is wedged, so the connection is severed —
// the client sees a clean connection loss instead of silent divergence.
// reply never blocks, because callers hold shard locks.
func (s *Server) reply(c *clientConn, m netproto.Message) {
	if c.pc != nil {
		s.replyPoll(c, m)
		return
	}
	select {
	case c.out <- m:
	case <-c.done:
		netproto.Release(m)
	default:
		netproto.Release(m)
		s.logf("client %d: reply queue overflow, dropping connection", c.id)
		c.conn.Close()
	}
}

// errFrame builds the error frame for one failed request, matching the
// connection's negotiated protocol: v3 peers get the structured Error2 (so
// their errors.Is/As resolves the failure against the apcache taxonomy
// across the wire), older peers the free-text ErrorMsg they understand —
// an unnegotiated frame type would tear their connection down.
func errFrame(c *clientConn, id uint64, code netproto.ErrCode, key int64, msg string) netproto.Message {
	if c.proto.Load() >= netproto.Version3 {
		return &netproto.Error2{ID: id, Code: code, Key: key, Msg: msg}
	}
	return &netproto.ErrorMsg{ID: id, Msg: msg}
}

// errUnknownKey builds the typed unknown-key error frame.
func errUnknownKey(c *clientConn, id uint64, key int64) netproto.Message {
	return errFrame(c, id, netproto.CodeUnknownKey, key, fmt.Sprintf("unknown key %d", key))
}

// isPush reports whether m is a value-initiated push (as opposed to the
// response to a request), the only traffic the writer may hold back to
// coalesce.
func isPush(m netproto.Message) bool {
	r, ok := m.(*netproto.Refresh)
	return ok && r.ID == 0 && r.Kind == netproto.KindValueInitiated
}

// connWriter is a connection writer's reusable state: the frame-assembly
// buffer, the scratch for coalescing push runs, and the flush timer. One
// flush encodes the whole drained batch into buf and hands it to the kernel
// with a single conn.Write; nothing here allocates in steady state.
type connWriter struct {
	buf   []byte
	run   []netproto.RefreshItem
	rb    netproto.RefreshBatch // reused RefreshBatch envelope for push runs
	one   netproto.Refresh      // reused envelope for singleton pushes
	timer *time.Timer           // reused flush timer, armed per window
}

// armWindow (re)arms the reused flush timer. Under Go 1.23+ timer
// semantics Reset discards any pending fire, so no drain is needed between
// windows (a drain would deadlock when the expiry races the window exit).
func (w *connWriter) armWindow(d time.Duration) <-chan time.Time {
	if w.timer == nil {
		w.timer = time.NewTimer(d)
	} else {
		w.timer.Reset(d)
	}
	return w.timer.C
}

func (s *Server) writeLoop(c *clientConn) {
	defer s.serveWG.Done()
	var w connWriter
	defer func() {
		if w.timer != nil {
			w.timer.Stop()
		}
	}()
	var batch []netproto.Message
	for {
		var first netproto.Message
		select {
		case first = <-c.out:
		case <-c.kick:
			// Overflowed pushes are parked in the merge buffer; fall
			// through with an empty batch and collect them below.
		case <-c.done:
			return
		}
		c.writeBusy.Store(true)
		batch = batch[:0]
		if first != nil {
			batch = append(batch, first)
		}
		max := int(c.batchLimit.Load())
		// While everything pending is a push, the adaptive flush window
		// stays open so bursts coalesce into one RefreshBatch. The first
		// response to arrive ends the window: request-reply latency is
		// never traded for batching. A quiet connection's window is zero
		// and skips the wait entirely.
		if first != nil && c.v2() && isPush(first) {
			if win := c.flushWindow(s.cfg.FlushInterval); win > 0 {
				expire := w.armWindow(win)
			window:
				for len(batch) < max {
					select {
					case m := <-c.out:
						batch = append(batch, m)
						if !isPush(m) {
							break window
						}
					case <-expire:
						break window
					case <-c.done:
						w.timer.Stop()
						return
					}
				}
				w.timer.Stop() // no-op if it fired; Reset needs no drain
			}
		}
		// Drain whatever else is already queued, without blocking.
	drain:
		for len(batch) < max {
			select {
			case m := <-c.out:
				batch = append(batch, m)
			default:
				break drain
			}
		}
		// Only once the queue is momentarily empty (the drain loop broke on
		// default, i.e. the batch is not full) may parked overflow pushes
		// join: everything still queued is older than any parked entry, so
		// flushing the buffer earlier could reorder a key's refreshes.
		// When the batch filled instead, this iteration may have consumed
		// the kick without touching the buffer — re-arm it so parked
		// entries are never stranded once the backlog drains.
		if len(batch) < max {
			batch = c.drainOverflow(batch, max)
		} else if c.overflowPending() {
			c.wake()
		}
		if len(batch) == 0 {
			c.writeBusy.Store(false)
			continue // spurious kick: the buffer was drained meanwhile
		}
		if err := s.appendFrames(c, &w, batch); err != nil {
			c.conn.Close()
			return
		}
		if _, err := c.conn.Write(w.buf); err != nil {
			c.conn.Close()
			return
		}
		c.writeBusy.Store(false)
		if cap(w.buf) > 1<<20 {
			// Don't pin one exceptional burst's high-water mark for the
			// connection's lifetime.
			w.buf = nil
		}
	}
}

// appendFrames encodes a drained run of messages into w.buf (reset first)
// and releases each message back to its pool. On a v1 connection every
// message is its own frame. On a v2 connection consecutive value-initiated
// pushes are coalesced into RefreshBatch frames; everything else passes
// through unchanged. Message order — in particular per-key refresh order —
// is preserved exactly.
func (s *Server) appendFrames(c *clientConn, w *connWriter, msgs []netproto.Message) error {
	w.buf = w.buf[:0]
	var err error
	if !c.v2() {
		for _, m := range msgs {
			w.buf, err = netproto.AppendFrame(w.buf, m)
			netproto.Release(m)
			if err != nil {
				return err
			}
		}
		return nil
	}
	w.run = w.run[:0]
	flushRun := func() error {
		switch len(w.run) {
		case 0:
			return nil
		case 1:
			// A lone push is cheaper as a plain Refresh frame. w.one and
			// w.rb are writer-owned envelopes, never released to the pools.
			one := w.run[0]
			w.run = w.run[:0]
			w.one = netproto.Refresh{
				ID: 0, Key: one.Key, Kind: one.Kind,
				Value: one.Value, Lo: one.Lo, Hi: one.Hi, OriginalWidth: one.OriginalWidth,
			}
			w.buf, err = netproto.AppendFrame(w.buf, &w.one)
			return err
		default:
			w.rb.ID = 0
			w.rb.Items = w.run
			s.maybeAdvertiseCost(c, &w.rb)
			w.buf, err = netproto.AppendFrame(w.buf, &w.rb)
			w.rb.Items = nil
			w.rb.CqrCost = 0 // the envelope is reused; never carry a stale advert
			w.run = w.run[:0]
			return err
		}
	}
	for _, m := range msgs {
		// Tagged pushes (r.Tag != 0) stay standalone frames: RefreshBatch
		// items carry no tag, so folding one into a run would drop it.
		if r, ok := m.(*netproto.Refresh); ok && isPush(r) && r.Tag == 0 {
			w.run = append(w.run, r.Item())
			netproto.Release(r)
			continue
		}
		if err := flushRun(); err != nil {
			return err
		}
		if rb, ok := m.(*netproto.RefreshBatch); ok {
			s.maybeAdvertiseCost(c, rb)
		}
		w.buf, err = netproto.AppendFrame(w.buf, m)
		netproto.Release(m)
		if err != nil {
			return err
		}
	}
	return flushRun()
}

// maybeAdvertiseCost piggybacks a refresh-cost update on an outgoing
// RefreshBatch when the measured EWMA has drifted more than 25% from the
// value this peer last saw (the HelloAck advertisement, or an earlier
// piggyback). Long-lived connections thereby track the server's real load
// instead of trusting a handshake-time snapshot forever. Only v3 peers get
// the field: it rides as a trailing optional, and pre-v3 decoders reject
// trailing bytes.
func (s *Server) maybeAdvertiseCost(c *clientConn, rb *netproto.RefreshBatch) {
	if c.proto.Load() < netproto.Version3 {
		return
	}
	cur := int64(s.RefreshCost())
	if cur <= 0 {
		return
	}
	last := c.costAdv.Load()
	drift := cur - last
	if drift < 0 {
		drift = -drift
	}
	if last != 0 && drift*4 <= last {
		return
	}
	rb.CqrCost = uint64(cur)
	c.costAdv.Store(cur)
}

// readLoop decodes and dispatches inbound frames. It owns a reusing
// netproto.Decoder: every decoded message is valid only until the next
// Decode call, which is safe because all handlers consume their request
// synchronously (multi-key fan-out joins before returning) and responses
// are built as separate pooled messages.
func (s *Server) readLoop(c *clientConn) {
	defer s.serveWG.Done()
	defer s.dropClient(c)
	d := netproto.NewDecoder(bufio.NewReader(c.conn))
	for {
		msg, err := d.Decode()
		if err != nil {
			if !errors.Is(err, net.ErrClosed) {
				s.logf("client %d: read: %v", c.id, err)
			}
			return
		}
		s.dispatch(c, msg)
	}
}

// dispatch routes one decoded request to its handler. Both cores call it —
// the goroutine core from the connection's read loop, the poller core from
// a decode worker — under the same ownership rule: one goroutine per
// connection at a time, and the message is consumed before it returns.
func (s *Server) dispatch(c *clientConn, msg netproto.Message) {
	switch m := msg.(type) {
	case *netproto.Subscribe:
		s.handleKeyed(c, m, int(m.Key))
	case *netproto.Unsubscribe:
		s.handleKeyed(c, m, int(m.Key))
	case *netproto.Read:
		s.handleKeyed(c, m, int(m.Key))
	case *netproto.Ping:
		s.reply(c, &netproto.Pong{ID: m.ID})
	case *netproto.Hello:
		s.handleHello(c, m)
	case *netproto.ReadMulti:
		s.handleMulti(c, m.ID, m.Keys, true)
	case *netproto.SubscribeMulti:
		s.handleMulti(c, m.ID, m.Keys, false)
	case *netproto.Batch:
		s.handleBatch(c, m)
	case *netproto.RegisterQuery:
		s.handleRegisterQuery(c, m)
	case *netproto.UnregisterQuery:
		s.handleUnregisterQuery(c, m)
	default:
		s.reply(c, errFrame(c, 0, netproto.CodeUnsupported, 0, fmt.Sprintf("unexpected %T", msg)))
	}
}

// handleHello negotiates the protocol version: the connection lands on the
// minimum of the client's offer and the server's cap (v3 unless Config
// pins lower). A server pinned to v1 declines; the client then stays on
// single-message frames.
func (s *Server) handleHello(c *clientConn, m *netproto.Hello) {
	if s.cfg.ProtoVersion == netproto.Version1 || m.Version < netproto.Version2 {
		s.reply(c, errFrame(c, m.ID, netproto.CodeUnsupported, 0, "protocol v2 unsupported"))
		return
	}
	ver := netproto.Version4
	if s.cfg.ProtoVersion != 0 && s.cfg.ProtoVersion < ver {
		ver = s.cfg.ProtoVersion
	}
	if int(m.Version) < ver {
		ver = int(m.Version)
	}
	limit := s.maxBatch
	if int(m.MaxBatch) > 0 && int(m.MaxBatch) < limit {
		limit = int(m.MaxBatch)
	}
	c.batchLimit.Store(int32(limit))
	c.proto.Store(int32(ver))
	ack := &netproto.HelloAck{ID: m.ID, Version: uint8(ver), MaxBatch: uint16(limit)}
	if ver >= netproto.Version3 {
		// Advertise the measured query-initiated refresh cost so the
		// client's ramp heuristic can use it in place of its built-in
		// default. Zero (no reads served yet) tells the client to keep
		// its default; v2 and v1 peers never see the field at all.
		// Later drift beyond 25% is re-advertised on RefreshBatch frames
		// (maybeAdvertiseCost), anchored on this value.
		ack.CqrCost = uint64(s.RefreshCost())
		c.costAdv.Store(int64(ack.CqrCost))
	}
	s.reply(c, ack)
}

// handleKeyed serves a single-key request: lock the key's shard, compute the
// response, and enqueue it under the lock (per-key refresh order).
func (s *Server) handleKeyed(c *clientConn, m netproto.Message, key int) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if resp := s.respondLocked(c, m); resp != nil {
		s.reply(c, resp)
	}
}

// respondLocked computes the response for one simple sub-request. The
// caller holds the lock of the shard the request's key hashes to (Ping needs
// no shard). A nil return means the request has no response (Unsubscribe).
func (s *Server) respondLocked(c *clientConn, msg netproto.Message) netproto.Message {
	switch m := msg.(type) {
	case *netproto.Subscribe:
		sh := s.shardFor(int(m.Key))
		if !s.hasKeyLocked(sh, int(m.Key)) {
			return errUnknownKey(c, m.ID, m.Key)
		}
		r := sh.src.Subscribe(c.id, int(m.Key))
		s.syncShard(sh)
		if c.proto.Load() >= netproto.Version4 {
			// v4 watch fan-out: the latest Subscribe's tag (possibly 0,
			// clearing it) is stamped on the key's future pushes.
			c.setTag(m.Key, m.Tag)
		}
		resp := netproto.GetRefresh()
		*resp = netproto.Refresh{
			ID:            m.ID,
			Key:           m.Key,
			Kind:          netproto.KindInitial,
			Value:         r.Value,
			Lo:            r.Interval.Lo,
			Hi:            r.Interval.Hi,
			OriginalWidth: r.OriginalWidth,
		}
		return resp
	case *netproto.Read:
		sh := s.shardFor(int(m.Key))
		if !s.hasKeyLocked(sh, int(m.Key)) {
			return errUnknownKey(c, m.ID, m.Key)
		}
		start := time.Now()
		r := sh.src.Read(c.id, int(m.Key))
		s.observeCost(sh, time.Since(start))
		s.syncShard(sh)
		if s.wal != nil {
			s.walWidthLocked(sh, int(m.Key), r.OriginalWidth)
		}
		resp := netproto.GetRefresh()
		*resp = netproto.Refresh{
			ID:            m.ID,
			Key:           m.Key,
			Kind:          netproto.KindQueryInitiated,
			Value:         r.Value,
			Lo:            r.Interval.Lo,
			Hi:            r.Interval.Hi,
			OriginalWidth: r.OriginalWidth,
		}
		return resp
	case *netproto.Unsubscribe:
		sh := s.shardFor(int(m.Key))
		sh.src.Unsubscribe(c.id, int(m.Key))
		s.syncShard(sh)
		c.setTag(m.Key, 0)
		return nil
	case *netproto.Ping:
		return &netproto.Pong{ID: m.ID}
	default:
		return errFrame(c, 0, netproto.CodeUnsupported, 0, fmt.Sprintf("unexpected %T", msg))
	}
}

// lockShardSet locks the distinct shards in idx order. idx must be sorted
// ascending — the global lock order that keeps overlapping multi-key
// requests deadlock-free.
func (s *Server) lockShardSet(idx []int) {
	for _, i := range idx {
		s.shards[i].mu.Lock()
	}
}

func (s *Server) unlockShardSet(idx []int) {
	for _, i := range idx {
		s.shards[i].mu.Unlock()
	}
}

// shardScratch resets and returns c's shard-grouping scratch. Only the read
// loop calls it, once per multi-key or batch request.
func (s *Server) shardScratch(c *clientConn) *reqScratch {
	sc := &c.scratch
	if sc.byShard == nil {
		sc.byShard = make([][]int, len(s.shards))
	}
	for _, i := range sc.shardSet {
		sc.byShard[i] = sc.byShard[i][:0]
	}
	sc.shardSet = sc.shardSet[:0]
	return sc
}

// shardSetFor fills c's scratch with the sorted distinct shard indices the
// keys hash to, plus the key positions grouped by shard (so per-shard
// workers touch each key exactly once). The returned slices are valid until
// the connection's next multi-key or batch request.
func (s *Server) shardSetFor(c *clientConn, keys []int64) (sorted []int, byShard [][]int) {
	sc := s.shardScratch(c)
	n := len(s.shards)
	for pos, k := range keys {
		i := shard.Index(int(k), n)
		if len(sc.byShard[i]) == 0 {
			sc.shardSet = append(sc.shardSet, i)
		}
		sc.byShard[i] = append(sc.byShard[i], pos)
	}
	sort.Ints(sc.shardSet)
	return sc.shardSet, sc.byShard
}

// handleMulti serves ReadMulti (read=true) and SubscribeMulti (read=false):
// it locks every involved shard in ascending order, validates the whole key
// set, fans the per-shard work out across goroutines, and enqueues a single
// RefreshBatch — still under the locks, so no concurrent Set can interleave
// a newer push before this response for any of the keys.
func (s *Server) handleMulti(c *clientConn, id uint64, keys []int64, read bool) {
	if !c.v2() {
		s.reply(c, errFrame(c, id, netproto.CodeUnsupported, 0, "batched request before handshake"))
		return
	}
	// Validate the key set lock-free, before any shard lock is taken: the
	// value tables are safe from any goroutine, and source keys are never
	// deleted, so a key present at check time is still present when the
	// locked fill runs. (A key added between the check and the fill fails
	// the whole request, exactly as if the request had been serialized
	// before the Set — the same linearization the locked check provided.)
	if !s.cfg.LockedValueReads {
		for _, k := range keys {
			if !s.shardFor(int(k)).vals.Contains(int(k)) {
				s.reply(c, errUnknownKey(c, id, k))
				return
			}
		}
	}
	shardSet, byShard := s.shardSetFor(c, keys)
	s.lockShardSet(shardSet)
	defer s.unlockShardSet(shardSet)
	if s.cfg.LockedValueReads {
		for _, k := range keys {
			if _, ok := s.shardFor(int(k)).src.Value(int(k)); !ok {
				s.reply(c, errUnknownKey(c, id, k))
				return
			}
		}
	}
	rb := netproto.GetRefreshBatch()
	rb.ID = id
	if cap(rb.Items) < len(keys) {
		rb.Items = make([]netproto.RefreshItem, len(keys))
	} else {
		rb.Items = rb.Items[:len(keys)]
	}
	items := rb.Items
	// A connection that dies mid-request cancels its context (dropClient);
	// the fill loops poll it per key so a large fan-out stops generating
	// source reads for a dead peer instead of running to completion.
	dying := c.ctx.Done()
	fill := func(shardIdx int) {
		sh := s.shards[shardIdx]
		var start time.Time
		if read {
			start = time.Now()
		}
		var wrecs []wal.Record
		for _, pos := range byShard[shardIdx] {
			select {
			case <-dying:
				return
			default:
			}
			k := keys[pos]
			var r source.Refresh
			kind := netproto.KindInitial
			if read {
				r = sh.src.Read(c.id, int(k))
				kind = netproto.KindQueryInitiated
				if s.wal != nil {
					sh.walWidths[int(k)] = r.OriginalWidth
					wrecs = append(wrecs, wal.Record{Op: wal.OpWidth, Key: k, Val: r.OriginalWidth})
				}
			} else {
				r = sh.src.Subscribe(c.id, int(k))
			}
			items[pos] = netproto.RefreshItem{
				Key:           k,
				Kind:          kind,
				Value:         r.Value,
				Lo:            r.Interval.Lo,
				Hi:            r.Interval.Hi,
				OriginalWidth: r.OriginalWidth,
			}
		}
		if len(wrecs) > 0 {
			// One journal append for the shard's whole slice; see
			// walWidthLocked for why this is inline under the lock.
			s.walNote(s.wal.Append(shardIdx, wrecs...))
			s.maybeKickWAL()
		}
		if n := len(byShard[shardIdx]); read && n > 0 {
			// Amortize the batch's timer reads: one measurement for the
			// shard's whole slice, folded in at per-key granularity.
			s.observeCost(sh, time.Since(start)/time.Duration(n))
		}
		s.syncShard(sh)
	}
	if len(shardSet) == 1 || len(keys) < fanoutThreshold {
		for _, i := range shardSet {
			fill(i)
		}
	} else {
		// Fan out: each goroutine works one shard's slice of the key set.
		// The shard locks are already held, so the goroutines touch
		// disjoint state; items positions are disjoint by construction.
		var wg sync.WaitGroup
		for _, i := range shardSet {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				fill(i)
			}(i)
		}
		wg.Wait()
	}
	select {
	case <-dying:
		// The fills bailed early, so items may be partially filled; the
		// peer is gone anyway. Subscriptions already created are reaped by
		// dropClient's UnsubscribeCache sweep.
		netproto.Release(rb)
		return
	default:
	}
	s.reply(c, rb)
}

// handleBatch serves a Batch of independent simple sub-requests: it locks
// the union of their shards in ascending order, fans the sub-requests out
// across per-shard goroutines, and replies with one Batch frame carrying the
// responses in request order. Multi-key and handshake frames do not nest
// inside a Batch; such sub-requests get per-message errors.
func (s *Server) handleBatch(c *clientConn, b *netproto.Batch) {
	if !c.v2() {
		s.reply(c, errFrame(c, 0, netproto.CodeUnsupported, 0, "batched request before handshake"))
		return
	}
	sc := s.shardScratch(c)
	if cap(sc.resp) < len(b.Msgs) {
		sc.resp = make([]netproto.Message, len(b.Msgs))
	}
	resp := sc.resp[:len(b.Msgs)]
	// Partition sub-requests: keyed ones by shard, keyless ones inline.
	for i, sub := range b.Msgs {
		var key int
		switch m := sub.(type) {
		case *netproto.Subscribe:
			key = int(m.Key)
		case *netproto.Read:
			key = int(m.Key)
		case *netproto.Unsubscribe:
			key = int(m.Key)
		case *netproto.Ping:
			resp[i] = &netproto.Pong{ID: m.ID}
			continue
		default:
			resp[i] = errFrame(c, 0, netproto.CodeUnsupported, 0, fmt.Sprintf("unexpected %T in batch", sub))
			continue
		}
		idx := shard.Index(key, len(s.shards))
		if len(sc.byShard[idx]) == 0 {
			sc.shardSet = append(sc.shardSet, idx)
		}
		sc.byShard[idx] = append(sc.byShard[idx], i)
	}
	sort.Ints(sc.shardSet)
	shardSet, byShard := sc.shardSet, sc.byShard
	s.lockShardSet(shardSet)
	dying := c.ctx.Done()
	if len(shardSet) <= 1 || len(b.Msgs) < fanoutThreshold {
		for _, idx := range shardSet {
			for _, i := range byShard[idx] {
				resp[i] = s.respondLocked(c, b.Msgs[i])
			}
		}
	} else {
		var wg sync.WaitGroup
		for _, idx := range shardSet {
			positions := byShard[idx]
			wg.Add(1)
			go func(positions []int) {
				defer wg.Done()
				for _, i := range positions {
					select {
					case <-dying:
						return // peer gone: stop generating source work
					default:
					}
					resp[i] = s.respondLocked(c, b.Msgs[i])
				}
			}(positions)
		}
		wg.Wait()
		select {
		case <-dying:
			// The workers bailed early; release what they did produce and
			// send nothing — the peer cannot receive it.
			for i := range resp {
				if resp[i] != nil {
					netproto.Release(resp[i])
					resp[i] = nil
				}
			}
			s.unlockShardSet(shardSet)
			return
		default:
		}
	}
	// Assemble the reply while the shard locks are still held, preserving
	// per-key refresh order against concurrent Sets. The scratch resp slice
	// stays with the connection; the responses move into a pooled Batch the
	// writer releases after encoding.
	n := 0
	var only netproto.Message
	for _, m := range resp {
		if m != nil {
			n++
			only = m
		}
	}
	switch n {
	case 0: // all sub-requests were fire-and-forget (Unsubscribe)
	case 1:
		s.reply(c, only)
	default:
		out := netproto.GetBatch()
		for _, m := range resp {
			if m != nil {
				out.Msgs = append(out.Msgs, m)
			}
		}
		s.reply(c, out)
	}
	for i := range resp {
		resp[i] = nil // don't retain handed-off messages in the scratch
	}
	s.unlockShardSet(shardSet)
}

// handleRegisterQuery installs a standing continuous query (protocol v4):
// the server subscribes the engine — acting as one more cache client, under
// a freshly allocated cache ID — to every member key with an equal-split
// width cap, force-reads each key for an exact seed, registers the
// aggregate with the engine, and acks with a QueryUpdate carrying the
// initial answer. The seed reads and the ack happen under all member
// shards' locks, so no concurrent Set can slip a member update between the
// seeded answer and the ack.
func (s *Server) handleRegisterQuery(c *clientConn, m *netproto.RegisterQuery) {
	if c.proto.Load() < netproto.Version4 {
		s.reply(c, errFrame(c, m.ID, netproto.CodeUnsupported, 0, "continuous queries need protocol v4"))
		return
	}
	seen := make(map[int64]struct{}, len(m.Keys))
	for _, k := range m.Keys {
		if _, dup := seen[k]; dup {
			s.reply(c, errFrame(c, m.ID, netproto.CodeUnsupported, k, fmt.Sprintf("duplicate key %d in query", k)))
			return
		}
		seen[k] = struct{}{}
	}
	// Validate the key set lock-free first, exactly like handleMulti: keys
	// are never deleted, so presence at check time still holds at fill time.
	if !s.cfg.LockedValueReads {
		for _, k := range m.Keys {
			if !s.shardFor(int(k)).vals.Contains(int(k)) {
				s.reply(c, errUnknownKey(c, m.ID, k))
				return
			}
		}
	}
	s.connMu.Lock()
	s.nextID++
	qcid := s.nextID // cache IDs and connection IDs share one sequence, so they never collide
	s.connMu.Unlock()
	spec := cq.Spec{Owner: c.id, QID: m.QID, Kind: cq.AggKind(m.Kind), Delta: m.Delta, Keys: make([]int, len(m.Keys))}
	for i, k := range m.Keys {
		spec.Keys[i] = int(k)
	}
	t0 := cq.InitialTarget(spec.Kind, spec.Delta, len(spec.Keys))
	shardSet, _ := s.shardSetFor(c, m.Keys)
	s.lockShardSet(shardSet)
	if s.cfg.LockedValueReads {
		for _, k := range m.Keys {
			if _, ok := s.shardFor(int(k)).src.Value(int(k)); !ok {
				s.reply(c, errUnknownKey(c, m.ID, k))
				s.unlockShardSet(shardSet)
				return
			}
		}
	}
	ivs := make([]interval.Interval, len(spec.Keys))
	vals := make([]float64, len(spec.Keys))
	for i, k := range spec.Keys {
		sh := s.shardFor(k)
		sh.src.Subscribe(qcid, k)
		sh.src.SetWidthCap(qcid, k, t0)
		r := sh.src.Read(qcid, k) // query-initiated: exact seed, already under the cap
		ivs[i], vals[i] = r.Interval, r.Value
	}
	for _, i := range shardSet {
		s.syncShard(s.shards[i])
	}
	up, replaced, wasReplaced := s.engine.Register(spec, qcid, ivs, vals)
	s.connMu.Lock()
	_, alive := s.conns[c.id]
	if alive {
		ack := netproto.GetQueryUpdate()
		*ack = netproto.QueryUpdate{ID: m.ID, QID: m.QID, Value: up.Value, Lo: up.Iv.Lo, Hi: up.Iv.Hi}
		s.reply(c, ack)
	}
	s.connMu.Unlock()
	s.unlockShardSet(shardSet)
	if !alive {
		// The connection died mid-registration. dropClient's engine sweep
		// may have run before our Register made the query visible, so tear
		// it down here; if the sweep did catch it, reaping twice is benign.
		if d, ok := s.engine.Unregister(c.id, m.QID); ok {
			s.reapQuery(d)
		} else {
			s.reapQuery(cq.Dropped{CacheID: qcid, Keys: spec.Keys})
		}
	}
	if wasReplaced {
		s.reapQuery(replaced)
	}
}

// handleUnregisterQuery tears down a standing query. Like Unsubscribe it is
// fire-and-forget; an unknown QID is ignored (the unregister may race the
// connection's own teardown).
func (s *Server) handleUnregisterQuery(c *clientConn, m *netproto.UnregisterQuery) {
	if c.proto.Load() < netproto.Version4 {
		return
	}
	if d, ok := s.engine.Unregister(c.id, m.QID); ok {
		s.reapQuery(d)
	}
}

// reapQuery removes a torn-down standing query's source-side subscriptions,
// which live under the query's own cache ID and are therefore missed by the
// per-connection UnsubscribeCache sweep.
func (s *Server) reapQuery(d cq.Dropped) {
	for _, k := range d.Keys {
		sh := s.shardFor(k)
		sh.mu.Lock()
		sh.src.Unsubscribe(d.CacheID, k)
		s.syncShard(sh)
		sh.mu.Unlock()
	}
}

// dropClient removes a disconnected client and its subscriptions. It is
// the single teardown path for both cores: the goroutine core reaches it
// from the read loop's exit, the poller core from read/write errors, reply
// overflow, and Close. Idempotent; concurrent callers race benignly on the
// registry check.
func (s *Server) dropClient(c *clientConn) {
	// Cancel before anything else: in-flight fan-out work for this peer
	// (handleMulti, handleBatch) polls the context and bails, releasing
	// the shard locks the subscription sweep below needs.
	c.cancel()
	s.connMu.Lock()
	if _, ok := s.conns[c.id]; !ok {
		s.connMu.Unlock()
		return
	}
	delete(s.conns, c.id)
	close(c.done)
	c.conn.Close()
	s.connMu.Unlock()
	if c.pc != nil {
		s.poll.unregister(c)
	}
	// Release any pushes still parked in the merge buffer; no new ones can
	// arrive because the connection is out of the registry.
	c.ovMu.Lock()
	for k, m := range c.overflow {
		delete(c.overflow, k)
		netproto.Release(m)
	}
	c.ovMu.Unlock()
	// Tear down the connection's standing queries before the subscription
	// sweep: their source subscriptions live under engine-allocated cache
	// IDs the per-connection sweep cannot see.
	for _, d := range s.engine.DropOwner(c.id) {
		s.reapQuery(d)
	}
	// Reap the client's subscriptions shard by shard so Set stops preparing
	// refreshes for it. (Within the protocol this is connection teardown,
	// not the cache-eviction notification the paper's algorithm avoids.)
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.src.UnsubscribeCache(c.id)
		s.syncShard(sh)
		sh.mu.Unlock()
	}
}

// Close shuts the server down immediately and waits for its goroutines.
// Coalesced pushes still queued or parked for delivery are dropped with the
// connections; Shutdown is the graceful variant that flushes them first.
func (s *Server) Close() error {
	return s.shutdown(nil)
}

// Shutdown drains the server gracefully: the listener closes (no new
// connections), every connection's queued and coalesced pushes are flushed
// to the kernel — including merge-buffer entries parked under backpressure
// and open flush windows, on either connection core — and only then are the
// connections dropped and the goroutines joined. ctx bounds the drain: on
// expiry the remaining traffic is abandoned, teardown proceeds exactly as
// in Close, and ctx's error is returned. A nil ctx drains without bound.
func (s *Server) Shutdown(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	return s.shutdown(ctx)
}

// shutdown is the shared teardown: nil ctx skips the drain phase (Close
// semantics). Only the first caller drains and stops the poll core;
// followers still wait for the goroutines, so every returned call means a
// fully stopped server.
func (s *Server) shutdown(ctx context.Context) error {
	s.connMu.Lock()
	wasClosed := s.closed
	s.closed = true
	ln := s.ln
	conns := make([]*clientConn, 0, len(s.conns))
	for _, c := range s.conns {
		conns = append(conns, c)
	}
	s.connMu.Unlock()
	if ln != nil {
		ln.Close()
	}
	var err error
	if ctx != nil && !wasClosed {
		err = s.drainConns(ctx, conns)
	}
	if s.wal != nil && !wasClosed {
		// The drain is not complete until the journal covers everything the
		// connections were just promised: flush it before they drop, so the
		// recovered server serves exactly the final delivered values.
		if werr := s.wal.Sync(); werr != nil && err == nil {
			err = werr
		}
	}
	for _, c := range conns {
		s.dropClient(c)
	}
	if s.poll != nil && !wasClosed {
		// Every connection is out of the registry (the accept loop refuses
		// new ones once closed is set), so no goroutine can schedule new
		// work on the core; shut its loops down and join them.
		s.poll.shutdown()
	}
	s.serveWG.Wait()
	if s.wal != nil && !wasClosed {
		close(s.walStop)
		<-s.walDone
		if werr := s.wal.Close(); werr != nil && err == nil {
			err = werr
		}
	}
	return err
}

// drainConns blocks until every connection's delivery state — out queues,
// writer batches in progress, merge-buffer pushes parked under
// backpressure — has reached the kernel, or ctx is done. Writers are woken
// once so an idle connection's parked pushes flush without waiting for
// traffic; a connection that dies mid-drain stops counting as pending.
func (s *Server) drainConns(ctx context.Context, conns []*clientConn) error {
	for _, c := range conns {
		if c.pc != nil {
			s.poll.schedule(c)
		} else {
			c.wake()
		}
	}
	// Require consecutive idle observations: the goroutine core's writer
	// has an instant between dequeuing a batch and raising writeBusy in
	// which the connection looks flushed; re-observing across poll gaps
	// closes that window.
	const settle = 3
	streak := 0
	tick := time.NewTicker(500 * time.Microsecond)
	defer tick.Stop()
	for {
		idle := true
		for _, c := range conns {
			if !s.connFlushed(c) {
				idle = false
				break
			}
		}
		if idle {
			if streak++; streak >= settle {
				return nil
			}
		} else {
			streak = 0
		}
		select {
		case <-tick.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// connFlushed reports whether c holds no undelivered traffic — or is
// already torn down, which ends the drain's interest in it just as surely.
func (s *Server) connFlushed(c *clientConn) bool {
	select {
	case <-c.done:
		return true
	default:
	}
	if c.overflowPending() {
		return false
	}
	if c.pc != nil {
		return !c.pc.pendingDelivery()
	}
	return len(c.out) == 0 && !c.writeBusy.Load()
}

func (s *Server) logf(format string, args ...interface{}) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}
