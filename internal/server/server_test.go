package server

import (
	"math"
	"net"
	"testing"
	"time"

	"apcache/internal/core"
	"apcache/internal/netproto"
)

func testConfig() Config {
	return Config{
		Params:       core.Params{Cvr: 1, Cqr: 2, Alpha: 1, Lambda0: 0, Lambda1: math.Inf(1)},
		InitialWidth: 10,
		Seed:         1,
	}
}

func TestNewValidatesParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("invalid params accepted")
		}
	}()
	New(Config{Params: core.Params{Cvr: -1, Cqr: 1}})
}

func TestNewRejectsNegativeWidth(t *testing.T) {
	cfg := testConfig()
	cfg.InitialWidth = -1
	defer func() {
		if recover() == nil {
			t.Fatalf("negative width accepted")
		}
	}()
	New(cfg)
}

func TestSetWithoutClients(t *testing.T) {
	s := New(testConfig())
	s.SetInitial(0, 5)
	if n := s.Set(0, 100); n != 0 {
		t.Errorf("Set with no clients pushed %d refreshes", n)
	}
	if v, ok := s.Value(0); !ok || v != 100 {
		t.Errorf("Value = %g, %v", v, ok)
	}
	if s.Clients() != 0 {
		t.Errorf("Clients = %d", s.Clients())
	}
}

func TestListenBadAddress(t *testing.T) {
	s := New(testConfig())
	if _, err := s.Listen("256.256.256.256:99999"); err == nil {
		t.Fatalf("bad address accepted")
	}
}

func TestCloseIdempotentAndStopsAccept(t *testing.T) {
	s := New(testConfig())
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	// New connections must be refused or immediately dropped.
	conn, err := net.DialTimeout("tcp", addr.String(), time.Second)
	if err == nil {
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := netproto.ReadMsg(conn); err == nil {
			t.Errorf("closed server answered a frame")
		}
		conn.Close()
	}
}

// rawDial speaks the protocol directly to exercise the server's framing
// paths without the client package.
func rawDial(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { conn.Close() })
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	return conn
}

func TestRawSubscribeReadFlow(t *testing.T) {
	s := New(testConfig())
	s.SetInitial(2, 40)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	conn := rawDial(t, addr.String())

	if err := netproto.Write(conn, &netproto.Subscribe{ID: 1, Key: 2}); err != nil {
		t.Fatal(err)
	}
	msg, err := netproto.ReadMsg(conn)
	if err != nil {
		t.Fatal(err)
	}
	r, ok := msg.(*netproto.Refresh)
	if !ok || r.ID != 1 || r.Kind != netproto.KindInitial || r.Value != 40 {
		t.Fatalf("subscribe response %#v", msg)
	}
	if r.Lo != 35 || r.Hi != 45 {
		t.Errorf("interval [%g, %g], want [35, 45]", r.Lo, r.Hi)
	}

	if err := netproto.Write(conn, &netproto.Read{ID: 2, Key: 2}); err != nil {
		t.Fatal(err)
	}
	msg, err = netproto.ReadMsg(conn)
	if err != nil {
		t.Fatal(err)
	}
	r, ok = msg.(*netproto.Refresh)
	if !ok || r.ID != 2 || r.Kind != netproto.KindQueryInitiated {
		t.Fatalf("read response %#v", msg)
	}
	// theta=1, alpha=1: the read halves the width to 5.
	if r.Hi-r.Lo != 5 {
		t.Errorf("width after read %g, want 5", r.Hi-r.Lo)
	}
}

func TestRawUnknownKeyError(t *testing.T) {
	s := New(testConfig())
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	conn := rawDial(t, addr.String())
	if err := netproto.Write(conn, &netproto.Read{ID: 9, Key: 123}); err != nil {
		t.Fatal(err)
	}
	msg, err := netproto.ReadMsg(conn)
	if err != nil {
		t.Fatal(err)
	}
	e, ok := msg.(*netproto.ErrorMsg)
	if !ok || e.ID != 9 {
		t.Fatalf("expected ErrorMsg with ID 9, got %#v", msg)
	}
}

func TestRawPing(t *testing.T) {
	s := New(testConfig())
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	conn := rawDial(t, addr.String())
	if err := netproto.Write(conn, &netproto.Ping{ID: 3}); err != nil {
		t.Fatal(err)
	}
	msg, err := netproto.ReadMsg(conn)
	if err != nil {
		t.Fatal(err)
	}
	if p, ok := msg.(*netproto.Pong); !ok || p.ID != 3 {
		t.Fatalf("expected Pong 3, got %#v", msg)
	}
}

func TestClientDisconnectReapsSubscriptions(t *testing.T) {
	s := New(testConfig())
	s.SetInitial(0, 10)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	conn := rawDial(t, addr.String())
	if err := netproto.Write(conn, &netproto.Subscribe{ID: 1, Key: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := netproto.ReadMsg(conn); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	deadline := time.Now().Add(5 * time.Second)
	for s.Clients() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("client not reaped")
		}
		time.Sleep(time.Millisecond)
	}
	// After the reap no refreshes are prepared for the dead client.
	s.SetInitial(0, 10)
	if n := s.Set(0, 1e9); n != 0 {
		t.Errorf("Set pushed %d refreshes after disconnect", n)
	}
}

func TestGarbageFrameDisconnects(t *testing.T) {
	s := New(testConfig())
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	conn := rawDial(t, addr.String())
	if _, err := conn.Write([]byte{0xff, 0xff, 0xff, 0xff, 0x01}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Clients() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("server kept a client that sent garbage")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSetPushesToSubscribedClient(t *testing.T) {
	// Covers the Set push path end-to-end at the protocol level.
	s := New(testConfig())
	s.SetInitial(0, 10)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	conn := rawDial(t, addr.String())
	if err := netproto.Write(conn, &netproto.Subscribe{ID: 1, Key: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := netproto.ReadMsg(conn); err != nil {
		t.Fatal(err)
	}
	if n := s.Set(0, 1000); n != 1 {
		t.Fatalf("Set pushed %d refreshes", n)
	}
	msg, err := netproto.ReadMsg(conn)
	if err != nil {
		t.Fatal(err)
	}
	r, ok := msg.(*netproto.Refresh)
	if !ok || r.Kind != netproto.KindValueInitiated || r.ID != 0 {
		t.Fatalf("push frame %#v", msg)
	}
	if r.Value != 1000 || r.Lo > 1000 || r.Hi < 1000 {
		t.Errorf("push carries %g in [%g, %g]", r.Value, r.Lo, r.Hi)
	}
}

func TestSubscribeUnknownKeyAtProtocolLevel(t *testing.T) {
	s := New(testConfig())
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	conn := rawDial(t, addr.String())
	if err := netproto.Write(conn, &netproto.Subscribe{ID: 4, Key: 77}); err != nil {
		t.Fatal(err)
	}
	msg, err := netproto.ReadMsg(conn)
	if err != nil {
		t.Fatal(err)
	}
	if e, ok := msg.(*netproto.ErrorMsg); !ok || e.ID != 4 {
		t.Fatalf("expected error frame, got %#v", msg)
	}
}

func TestUnexpectedFrameGetsError(t *testing.T) {
	// A client sending a server-to-client frame gets an error back.
	s := New(testConfig())
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	conn := rawDial(t, addr.String())
	if err := netproto.Write(conn, &netproto.Pong{ID: 1}); err != nil {
		t.Fatal(err)
	}
	msg, err := netproto.ReadMsg(conn)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := msg.(*netproto.ErrorMsg); !ok {
		t.Fatalf("expected ErrorMsg, got %#v", msg)
	}
}

func TestLogfGoesToConfiguredSink(t *testing.T) {
	var got []string
	cfg := testConfig()
	cfg.Logf = func(format string, args ...interface{}) {
		got = append(got, format)
	}
	s := New(cfg)
	s.logf("hello %d", 1)
	if len(got) != 1 {
		t.Errorf("log sink got %v", got)
	}
	// Nil sink must not panic.
	s2 := New(testConfig())
	s2.logf("dropped")
}

// hello performs the v2 handshake on a raw connection.
func hello(t *testing.T, conn net.Conn, maxBatch uint16) *netproto.HelloAck {
	t.Helper()
	return helloVersion(t, conn, netproto.Version3, maxBatch)
}

// helloVersion runs the handshake offering an explicit protocol version,
// modeling clients from older releases.
func helloVersion(t *testing.T, conn net.Conn, version uint8, maxBatch uint16) *netproto.HelloAck {
	t.Helper()
	if err := netproto.Write(conn, &netproto.Hello{ID: 1, Version: version, MaxBatch: maxBatch}); err != nil {
		t.Fatal(err)
	}
	msg, err := netproto.ReadMsg(conn)
	if err != nil {
		t.Fatal(err)
	}
	ack, ok := msg.(*netproto.HelloAck)
	if !ok {
		t.Fatalf("handshake response %#v", msg)
	}
	return ack
}

func TestHelloHandshakeNegotiatesBatchLimit(t *testing.T) {
	cfg := testConfig()
	cfg.MaxBatch = 64
	s := New(cfg)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	conn := rawDial(t, addr.String())
	ack := hello(t, conn, 16)
	if ack.Version != netproto.Version3 {
		t.Errorf("negotiated version %d", ack.Version)
	}
	if ack.MaxBatch != 16 {
		t.Errorf("negotiated batch %d, want min(64, 16) = 16", ack.MaxBatch)
	}
	// A second connection offering more than the server's cap gets capped.
	conn2 := rawDial(t, addr.String())
	if ack2 := hello(t, conn2, 1000); ack2.MaxBatch != 64 {
		t.Errorf("negotiated batch %d, want 64", ack2.MaxBatch)
	}
}

func TestHelloDeclinedWhenPinnedToV1(t *testing.T) {
	cfg := testConfig()
	cfg.ProtoVersion = netproto.Version1
	s := New(cfg)
	s.SetInitial(0, 5)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	conn := rawDial(t, addr.String())
	if err := netproto.Write(conn, &netproto.Hello{ID: 7, Version: netproto.Version2, MaxBatch: 8}); err != nil {
		t.Fatal(err)
	}
	msg, err := netproto.ReadMsg(conn)
	if err != nil {
		t.Fatal(err)
	}
	e, ok := msg.(*netproto.ErrorMsg)
	if !ok || e.ID != 7 {
		t.Fatalf("expected decline ErrorMsg, got %#v", msg)
	}
	// The connection keeps working on v1 frames.
	if err := netproto.Write(conn, &netproto.Read{ID: 8, Key: 0}); err != nil {
		t.Fatal(err)
	}
	msg, err = netproto.ReadMsg(conn)
	if err != nil {
		t.Fatal(err)
	}
	if r, ok := msg.(*netproto.Refresh); !ok || r.ID != 8 || r.Value != 5 {
		t.Fatalf("v1 read after decline: %#v", msg)
	}
}

func TestMultiBeforeHandshakeRejected(t *testing.T) {
	s := New(testConfig())
	s.SetInitial(0, 5)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	conn := rawDial(t, addr.String())
	if err := netproto.Write(conn, &netproto.ReadMulti{ID: 3, Keys: []int64{0}}); err != nil {
		t.Fatal(err)
	}
	msg, err := netproto.ReadMsg(conn)
	if err != nil {
		t.Fatal(err)
	}
	if e, ok := msg.(*netproto.ErrorMsg); !ok || e.ID != 3 {
		t.Fatalf("expected handshake-required error, got %#v", msg)
	}
}

func TestReadMultiSingleResponseFrame(t *testing.T) {
	s := New(testConfig())
	const keys = 16 // spread across several shards
	for k := 0; k < keys; k++ {
		s.SetInitial(k, float64(k*10))
	}
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	conn := rawDial(t, addr.String())
	hello(t, conn, 128)

	want := make([]int64, keys)
	for k := range want {
		want[k] = int64(keys - 1 - k) // deliberately not ascending
	}
	if err := netproto.Write(conn, &netproto.ReadMulti{ID: 5, Keys: want}); err != nil {
		t.Fatal(err)
	}
	msg, err := netproto.ReadMsg(conn)
	if err != nil {
		t.Fatal(err)
	}
	rb, ok := msg.(*netproto.RefreshBatch)
	if !ok || rb.ID != 5 {
		t.Fatalf("expected RefreshBatch ID 5, got %#v", msg)
	}
	if len(rb.Items) != keys {
		t.Fatalf("%d items, want %d", len(rb.Items), keys)
	}
	for i, it := range rb.Items {
		if it.Key != want[i] {
			t.Errorf("item %d key %d, want %d (request order must be preserved)", i, it.Key, want[i])
		}
		if it.Kind != netproto.KindQueryInitiated {
			t.Errorf("item %d kind %v", i, it.Kind)
		}
		if it.Value != float64(want[i]*10) {
			t.Errorf("item %d value %g, want %g", i, it.Value, float64(want[i]*10))
		}
		if it.Lo > it.Value || it.Hi < it.Value {
			t.Errorf("item %d interval [%g, %g] excludes %g", i, it.Lo, it.Hi, it.Value)
		}
	}
}

func TestSubscribeMultiUnknownKeyWholeRequestErrors(t *testing.T) {
	s := New(testConfig())
	s.SetInitial(0, 1)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	conn := rawDial(t, addr.String())
	hello(t, conn, 128)
	if err := netproto.Write(conn, &netproto.SubscribeMulti{ID: 6, Keys: []int64{0, 999}}); err != nil {
		t.Fatal(err)
	}
	msg, err := netproto.ReadMsg(conn)
	if err != nil {
		t.Fatal(err)
	}
	if e, ok := msg.(*netproto.Error2); !ok || e.ID != 6 || e.Code != netproto.CodeUnknownKey || e.Key != 999 {
		t.Fatalf("expected Error2 ID 6 code unknown-key key 999, got %#v", msg)
	}
	// A peer that only negotiated v2 (an older release) must keep getting
	// the free-text ErrorMsg: sending Error2 would hit its decoder as an
	// unknown frame type and tear the connection down mid-upgrade.
	conn2 := rawDial(t, addr.String())
	if ack := helloVersion(t, conn2, netproto.Version2, 128); ack.Version != netproto.Version2 {
		t.Fatalf("v2 offer negotiated version %d, want 2", ack.Version)
	}
	if err := netproto.Write(conn2, &netproto.SubscribeMulti{ID: 7, Keys: []int64{0, 999}}); err != nil {
		t.Fatal(err)
	}
	msg2, err := netproto.ReadMsg(conn2)
	if err != nil {
		t.Fatal(err)
	}
	if e, ok := msg2.(*netproto.ErrorMsg); !ok || e.ID != 7 {
		t.Fatalf("v2 peer expected ErrorMsg 7, got %#v", msg2)
	}
	// The failed request must not leave a half-subscribed state that
	// pushes to this client.
	s.SetInitial(0, 1)
	if n := s.Set(0, 1e9); n != 0 {
		t.Errorf("failed SubscribeMulti left %d live subscriptions", n)
	}
}

func TestBatchRequestOneReplyFrame(t *testing.T) {
	s := New(testConfig())
	for k := 0; k < 4; k++ {
		s.SetInitial(k, float64(k))
	}
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	conn := rawDial(t, addr.String())
	hello(t, conn, 128)

	req := &netproto.Batch{Msgs: []netproto.Message{
		&netproto.Subscribe{ID: 10, Key: 0},
		&netproto.Read{ID: 11, Key: 1},
		&netproto.Ping{ID: 12},
		&netproto.Subscribe{ID: 13, Key: 999}, // unknown: per-message error
	}}
	if err := netproto.Write(conn, req); err != nil {
		t.Fatal(err)
	}
	msg, err := netproto.ReadMsg(conn)
	if err != nil {
		t.Fatal(err)
	}
	b, ok := msg.(*netproto.Batch)
	if !ok {
		t.Fatalf("expected one Batch reply, got %#v", msg)
	}
	if len(b.Msgs) != 4 {
		t.Fatalf("%d responses, want 4", len(b.Msgs))
	}
	if r, ok := b.Msgs[0].(*netproto.Refresh); !ok || r.ID != 10 || r.Kind != netproto.KindInitial {
		t.Errorf("resp 0: %#v", b.Msgs[0])
	}
	if r, ok := b.Msgs[1].(*netproto.Refresh); !ok || r.ID != 11 || r.Kind != netproto.KindQueryInitiated || r.Value != 1 {
		t.Errorf("resp 1: %#v", b.Msgs[1])
	}
	if p, ok := b.Msgs[2].(*netproto.Pong); !ok || p.ID != 12 {
		t.Errorf("resp 2: %#v", b.Msgs[2])
	}
	if e, ok := b.Msgs[3].(*netproto.Error2); !ok || e.ID != 13 || e.Code != netproto.CodeUnknownKey || e.Key != 999 {
		t.Errorf("resp 3: %#v", b.Msgs[3])
	}
}

func TestWriterCoalescesPushesIntoRefreshBatch(t *testing.T) {
	cfg := testConfig()
	cfg.FlushInterval = 150 * time.Millisecond
	s := New(cfg)
	const keys = 8
	for k := 0; k < keys; k++ {
		s.SetInitial(k, 0)
	}
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	conn := rawDial(t, addr.String())
	hello(t, conn, 128)
	if err := netproto.Write(conn, &netproto.SubscribeMulti{ID: 2, Keys: []int64{0, 1, 2, 3, 4, 5, 6, 7}}); err != nil {
		t.Fatal(err)
	}
	if _, err := netproto.ReadMsg(conn); err != nil {
		t.Fatal(err)
	}
	// Escape every interval in a burst well inside the flush window.
	for k := 0; k < keys; k++ {
		if n := s.Set(k, 1e6); n != 1 {
			t.Fatalf("Set(%d) pushed %d refreshes", k, n)
		}
	}
	// Collect frames until all keys' pushes arrived; the coalescing writer
	// must use fewer frames than pushes (the burst fits one window).
	got := map[int64]bool{}
	frames := 0
	for len(got) < keys {
		msg, err := netproto.ReadMsg(conn)
		if err != nil {
			t.Fatal(err)
		}
		frames++
		switch m := msg.(type) {
		case *netproto.RefreshBatch:
			if m.ID != 0 {
				t.Fatalf("push batch with ID %d", m.ID)
			}
			for _, it := range m.Items {
				if it.Kind != netproto.KindValueInitiated {
					t.Fatalf("push item kind %v", it.Kind)
				}
				got[it.Key] = true
			}
		case *netproto.Refresh:
			if m.ID != 0 {
				t.Fatalf("push frame with ID %d", m.ID)
			}
			got[m.Key] = true
		default:
			t.Fatalf("unexpected frame %#v", msg)
		}
	}
	if frames >= keys {
		t.Errorf("%d pushes arrived in %d frames; expected coalescing", keys, frames)
	}
}

func TestServerStatsPerShard(t *testing.T) {
	cfg := testConfig()
	cfg.Shards = 4
	s := New(cfg)
	const keys = 64
	for k := 0; k < keys; k++ {
		s.SetInitial(k, float64(k))
	}
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	conn := rawDial(t, addr.String())
	hello(t, conn, 128)
	all := make([]int64, keys)
	for k := range all {
		all[k] = int64(k)
	}
	if err := netproto.Write(conn, &netproto.SubscribeMulti{ID: 1, Keys: all}); err != nil {
		t.Fatal(err)
	}
	if _, err := netproto.ReadMsg(conn); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Clients != 1 {
		t.Errorf("Clients = %d", st.Clients)
	}
	if len(st.PerShard) != 4 {
		t.Fatalf("PerShard has %d entries, want 4", len(st.PerShard))
	}
	var totKeys, totSubs int
	for i, sh := range st.PerShard {
		if sh.Keys == 0 {
			t.Errorf("shard %d hosts no keys; splitmix spread should hit all 4 shards with 64 keys", i)
		}
		totKeys += sh.Keys
		totSubs += sh.Subscriptions
	}
	if totKeys != keys || totSubs != keys {
		t.Errorf("totals keys=%d subs=%d, want %d each", totKeys, totSubs, keys)
	}
}

// TestPushOverflowMergesInsteadOfDropping wedges a subscriber (it never
// reads), floods its keys with escaping updates until the push queue and the
// TCP stream jam, and checks that the overflow is absorbed by the merge
// buffer — counted in Stats — rather than dropped. Once the reader resumes,
// the last refresh it observes for each key must carry an interval that
// contains that key's final value: the union/latest-wins fold preserves
// validity end to end.
func TestPushOverflowMergesInsteadOfDropping(t *testing.T) {
	cfg := testConfig()
	cfg.Params.Alpha = 0 // freeze widths so every escaping update keeps pushing
	s := New(cfg)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const keys = 4
	final := make(map[int64]float64, keys)
	for k := 0; k < keys; k++ {
		s.SetInitial(k, 0)
	}
	conn := rawDial(t, addr.String())
	for k := 0; k < keys; k++ {
		if err := netproto.Write(conn, &netproto.Subscribe{ID: uint64(k + 1), Key: int64(k)}); err != nil {
			t.Fatal(err)
		}
		if _, err := netproto.ReadMsg(conn); err != nil {
			t.Fatal(err)
		}
	}

	// Flood without reading. Every update jumps far outside the current
	// interval, so each Set produces one push. Stop once merges are
	// observed (the queue plus socket buffers must jam first).
	v := 0.0
	for i := 0; i < 500000; i++ {
		v += 1e9 // always escapes, regardless of how wide the interval grew
		k := int64(i % keys)
		s.Set(int(k), v)
		final[k] = v
		if i%1024 == 0 && s.Stats().PushMerges > 0 {
			break
		}
	}
	st := s.Stats()
	if st.PushOverflows == 0 || st.PushMerges == 0 {
		t.Fatalf("no backpressure observed: %+v (flood too small for this socket configuration?)", st)
	}

	// Resume reading: with merging instead of dropping, the stream must
	// end with a refresh per key whose interval contains the final value.
	last := make(map[int64]netproto.RefreshItem, keys)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	for {
		done := true
		for k := range final {
			if it, ok := last[k]; !ok || it.Lo > final[k] || final[k] > it.Hi {
				done = false
			}
		}
		if done {
			break
		}
		msg, err := netproto.ReadMsg(conn)
		if err != nil {
			t.Fatalf("stream ended before every key converged (last=%v): %v", last, err)
		}
		if r, ok := msg.(*netproto.Refresh); ok {
			last[r.Key] = r.Item()
		}
	}
}
