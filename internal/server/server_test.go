package server

import (
	"math"
	"net"
	"testing"
	"time"

	"apcache/internal/core"
	"apcache/internal/netproto"
)

func testConfig() Config {
	return Config{
		Params:       core.Params{Cvr: 1, Cqr: 2, Alpha: 1, Lambda0: 0, Lambda1: math.Inf(1)},
		InitialWidth: 10,
		Seed:         1,
	}
}

func TestNewValidatesParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("invalid params accepted")
		}
	}()
	New(Config{Params: core.Params{Cvr: -1, Cqr: 1}})
}

func TestNewRejectsNegativeWidth(t *testing.T) {
	cfg := testConfig()
	cfg.InitialWidth = -1
	defer func() {
		if recover() == nil {
			t.Fatalf("negative width accepted")
		}
	}()
	New(cfg)
}

func TestSetWithoutClients(t *testing.T) {
	s := New(testConfig())
	s.SetInitial(0, 5)
	if n := s.Set(0, 100); n != 0 {
		t.Errorf("Set with no clients pushed %d refreshes", n)
	}
	if v, ok := s.Value(0); !ok || v != 100 {
		t.Errorf("Value = %g, %v", v, ok)
	}
	if s.Clients() != 0 {
		t.Errorf("Clients = %d", s.Clients())
	}
}

func TestListenBadAddress(t *testing.T) {
	s := New(testConfig())
	if _, err := s.Listen("256.256.256.256:99999"); err == nil {
		t.Fatalf("bad address accepted")
	}
}

func TestCloseIdempotentAndStopsAccept(t *testing.T) {
	s := New(testConfig())
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	// New connections must be refused or immediately dropped.
	conn, err := net.DialTimeout("tcp", addr.String(), time.Second)
	if err == nil {
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := netproto.ReadMsg(conn); err == nil {
			t.Errorf("closed server answered a frame")
		}
		conn.Close()
	}
}

// rawDial speaks the protocol directly to exercise the server's framing
// paths without the client package.
func rawDial(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { conn.Close() })
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	return conn
}

func TestRawSubscribeReadFlow(t *testing.T) {
	s := New(testConfig())
	s.SetInitial(2, 40)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	conn := rawDial(t, addr.String())

	if err := netproto.Write(conn, &netproto.Subscribe{ID: 1, Key: 2}); err != nil {
		t.Fatal(err)
	}
	msg, err := netproto.ReadMsg(conn)
	if err != nil {
		t.Fatal(err)
	}
	r, ok := msg.(*netproto.Refresh)
	if !ok || r.ID != 1 || r.Kind != netproto.KindInitial || r.Value != 40 {
		t.Fatalf("subscribe response %#v", msg)
	}
	if r.Lo != 35 || r.Hi != 45 {
		t.Errorf("interval [%g, %g], want [35, 45]", r.Lo, r.Hi)
	}

	if err := netproto.Write(conn, &netproto.Read{ID: 2, Key: 2}); err != nil {
		t.Fatal(err)
	}
	msg, err = netproto.ReadMsg(conn)
	if err != nil {
		t.Fatal(err)
	}
	r, ok = msg.(*netproto.Refresh)
	if !ok || r.ID != 2 || r.Kind != netproto.KindQueryInitiated {
		t.Fatalf("read response %#v", msg)
	}
	// theta=1, alpha=1: the read halves the width to 5.
	if r.Hi-r.Lo != 5 {
		t.Errorf("width after read %g, want 5", r.Hi-r.Lo)
	}
}

func TestRawUnknownKeyError(t *testing.T) {
	s := New(testConfig())
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	conn := rawDial(t, addr.String())
	if err := netproto.Write(conn, &netproto.Read{ID: 9, Key: 123}); err != nil {
		t.Fatal(err)
	}
	msg, err := netproto.ReadMsg(conn)
	if err != nil {
		t.Fatal(err)
	}
	e, ok := msg.(*netproto.ErrorMsg)
	if !ok || e.ID != 9 {
		t.Fatalf("expected ErrorMsg with ID 9, got %#v", msg)
	}
}

func TestRawPing(t *testing.T) {
	s := New(testConfig())
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	conn := rawDial(t, addr.String())
	if err := netproto.Write(conn, &netproto.Ping{ID: 3}); err != nil {
		t.Fatal(err)
	}
	msg, err := netproto.ReadMsg(conn)
	if err != nil {
		t.Fatal(err)
	}
	if p, ok := msg.(*netproto.Pong); !ok || p.ID != 3 {
		t.Fatalf("expected Pong 3, got %#v", msg)
	}
}

func TestClientDisconnectReapsSubscriptions(t *testing.T) {
	s := New(testConfig())
	s.SetInitial(0, 10)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	conn := rawDial(t, addr.String())
	if err := netproto.Write(conn, &netproto.Subscribe{ID: 1, Key: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := netproto.ReadMsg(conn); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	deadline := time.Now().Add(5 * time.Second)
	for s.Clients() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("client not reaped")
		}
		time.Sleep(time.Millisecond)
	}
	// After the reap no refreshes are prepared for the dead client.
	s.SetInitial(0, 10)
	if n := s.Set(0, 1e9); n != 0 {
		t.Errorf("Set pushed %d refreshes after disconnect", n)
	}
}

func TestGarbageFrameDisconnects(t *testing.T) {
	s := New(testConfig())
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	conn := rawDial(t, addr.String())
	if _, err := conn.Write([]byte{0xff, 0xff, 0xff, 0xff, 0x01}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Clients() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("server kept a client that sent garbage")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSetPushesToSubscribedClient(t *testing.T) {
	// Covers the Set push path end-to-end at the protocol level.
	s := New(testConfig())
	s.SetInitial(0, 10)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	conn := rawDial(t, addr.String())
	if err := netproto.Write(conn, &netproto.Subscribe{ID: 1, Key: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := netproto.ReadMsg(conn); err != nil {
		t.Fatal(err)
	}
	if n := s.Set(0, 1000); n != 1 {
		t.Fatalf("Set pushed %d refreshes", n)
	}
	msg, err := netproto.ReadMsg(conn)
	if err != nil {
		t.Fatal(err)
	}
	r, ok := msg.(*netproto.Refresh)
	if !ok || r.Kind != netproto.KindValueInitiated || r.ID != 0 {
		t.Fatalf("push frame %#v", msg)
	}
	if r.Value != 1000 || r.Lo > 1000 || r.Hi < 1000 {
		t.Errorf("push carries %g in [%g, %g]", r.Value, r.Lo, r.Hi)
	}
}

func TestSubscribeUnknownKeyAtProtocolLevel(t *testing.T) {
	s := New(testConfig())
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	conn := rawDial(t, addr.String())
	if err := netproto.Write(conn, &netproto.Subscribe{ID: 4, Key: 77}); err != nil {
		t.Fatal(err)
	}
	msg, err := netproto.ReadMsg(conn)
	if err != nil {
		t.Fatal(err)
	}
	if e, ok := msg.(*netproto.ErrorMsg); !ok || e.ID != 4 {
		t.Fatalf("expected error frame, got %#v", msg)
	}
}

func TestUnexpectedFrameGetsError(t *testing.T) {
	// A client sending a server-to-client frame gets an error back.
	s := New(testConfig())
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	conn := rawDial(t, addr.String())
	if err := netproto.Write(conn, &netproto.Pong{ID: 1}); err != nil {
		t.Fatal(err)
	}
	msg, err := netproto.ReadMsg(conn)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := msg.(*netproto.ErrorMsg); !ok {
		t.Fatalf("expected ErrorMsg, got %#v", msg)
	}
}

func TestLogfGoesToConfiguredSink(t *testing.T) {
	var got []string
	cfg := testConfig()
	cfg.Logf = func(format string, args ...interface{}) {
		got = append(got, format)
	}
	s := New(cfg)
	s.logf("hello %d", 1)
	if len(got) != 1 {
		t.Errorf("log sink got %v", got)
	}
	// Nil sink must not panic.
	s2 := New(testConfig())
	s2.logf("dropped")
}
