package server

import (
	"fmt"
	"path/filepath"
	"strings"

	"apcache/internal/wal"
)

// WAL compaction thresholds: the background compactor folds the journal back
// to live state once it holds more than walCompactRatio records per hosted
// key, but never before walCompactMin records — a small server is not
// rewritten every handful of updates, and a large one is not allowed to grow
// an unbounded replay tail.
const (
	walCompactMin   = 1024
	walCompactRatio = 4
)

// Open builds a server like New and, when cfg.WALDir is set, attaches its
// write-ahead journal: state recorded by a previous process under that
// directory — every hosted value and the last learned width per key — is
// recovered first, with a torn or corrupted log tail truncated rather than
// rejected, and then folded into fresh per-shard log files before the server
// accepts traffic (compaction on open, which makes recovery idempotent and
// absorbs shard-count changes between runs). Subscriptions are not journaled:
// they name ephemeral connection IDs, and reconnecting clients replay their
// own — landing on controllers seeded at the recovered widths.
//
// Like New, Open panics on invalid configuration; errors are reserved for
// the journal (unreadable directory, failed recovery rewrite).
func Open(cfg Config) (*Server, error) {
	s := New(cfg)
	if cfg.WALDir == "" {
		return s, nil
	}
	if err := s.attachWAL(cfg); err != nil {
		return nil, err
	}
	return s, nil
}

// attachWAL recovers the journal under cfg.WALDir into s (which must not be
// serving yet) and opens the live log. See Open for the protocol.
func (s *Server) attachWAL(cfg Config) error {
	fsys := cfg.WALFS
	if fsys == nil {
		fsys = wal.OSFS
	}
	if err := fsys.MkdirAll(cfg.WALDir, 0o755); err != nil {
		return fmt.Errorf("server: wal: %w", err)
	}
	scan, err := wal.ScanDir(fsys, cfg.WALDir)
	if err != nil {
		return fmt.Errorf("server: wal: %w", err)
	}
	// Fold the journal: records arrive in LSN order, so the last value and
	// last learned width per key win. Width records whose value fell into a
	// truncated tail are dropped — a width without a key is meaningless.
	vals := make(map[int]float64)
	widths := make(map[int]float64)
	for _, r := range scan.Records {
		switch r.Op {
		case wal.OpValue:
			vals[int(r.Key)] = r.Val
		case wal.OpWidth:
			widths[int(r.Key)] = r.Val
		}
	}
	for k, v := range vals {
		sh := s.shardFor(k)
		sh.src.SetInitial(k, v)
		sh.vals.Store(k, v)
		s.syncShard(sh)
	}
	for k, w := range widths {
		if _, ok := vals[k]; ok && w > 0 {
			s.shardFor(k).walWidths[k] = w
		}
	}
	log, err := wal.Open(wal.Options{
		Dir:      cfg.WALDir,
		Shards:   len(s.shards),
		Policy:   cfg.WALFsync,
		Interval: cfg.WALFsyncInterval,
		FS:       fsys,
		StartLSN: scan.MaxLSN,
	})
	if err != nil {
		return fmt.Errorf("server: wal: %w", err)
	}
	// Compaction on open: rewrite each shard file to exactly the recovered
	// state. The rewritten records carry LSNs above everything scanned, so
	// a crash mid-rewrite recovers — old and new files merge per key with
	// the rewritten state winning. Files from a previous, larger shard
	// layout are removed only after this point, when their records are
	// already folded into the current files.
	if err := log.Rewrite(0, s.walShardState); err != nil {
		log.Close()
		return fmt.Errorf("server: wal: %w", err)
	}
	if names, derr := fsys.ReadDir(cfg.WALDir); derr == nil {
		for _, name := range names {
			stale := strings.HasSuffix(name, ".tmp")
			if wal.IsLogName(name) && !s.ownsLogName(name) {
				stale = true
			}
			if stale {
				fsys.Remove(filepath.Join(cfg.WALDir, name))
			}
		}
	}
	s.wal = log
	s.walKick = make(chan struct{}, 1)
	s.walStop = make(chan struct{})
	s.walDone = make(chan struct{})
	go s.walCompactLoop()
	return nil
}

// ownsLogName reports whether name is one of this server's shard log files.
func (s *Server) ownsLogName(name string) bool {
	for i := range s.shards {
		if name == wal.FileName(i) {
			return true
		}
	}
	return false
}

// walShardState returns the journal records that reproduce one shard's live
// state: every hosted value plus the key's last journaled width. The caller
// holds the shard's lock (or the server is not serving yet).
func (s *Server) walShardState(shard int) []wal.Record {
	sh := s.shards[shard]
	recs := make([]wal.Record, 0, 2*sh.src.Keys())
	sh.src.ForEach(func(key int, v float64) {
		recs = append(recs, wal.Record{Op: wal.OpValue, Key: int64(key), Val: v})
		if w, ok := sh.walWidths[key]; ok && w > 0 {
			recs = append(recs, wal.Record{Op: wal.OpWidth, Key: int64(key), Val: w})
		}
	})
	return recs
}

// walCommit completes a journal append staged under sh's lock, after that
// lock is released: with WALFsync=always it waits for the group commit
// covering the token. Failures are sticky inside the log and surfaced by
// Shutdown/Close; the in-memory server stays correct regardless, so the
// write path does not fail the caller.
func (s *Server) walCommit(sh *srcShard, token uint64) {
	if s.wal == nil || token == 0 {
		return
	}
	s.walNote(s.wal.Commit(sh.idx, token))
	s.maybeKickWAL()
}

// walWidthLocked journals one learned width; the caller holds sh.mu. The
// append commits inline — with WALFsync=always an exact read therefore pays
// its fsync inside the shard section. That is the price of never replying
// with a width shrink a crash would forget; the interval/none policies keep
// the call a buffered memcpy.
func (s *Server) walWidthLocked(sh *srcShard, key int, w float64) {
	sh.walWidths[key] = w
	s.walNote(s.wal.Append(sh.idx, wal.Record{Op: wal.OpWidth, Key: int64(key), Val: w}))
	s.maybeKickWAL()
}

// walNote logs the first broken-durability error; later ones are the same
// sticky failure repeating.
func (s *Server) walNote(err error) {
	if err == nil {
		return
	}
	s.walErrOnce.Do(func() {
		s.logf("server: wal: durability broken (serving continues from memory): %v", err)
	})
}

// maybeKickWAL nudges the compactor when the journal has outgrown the live
// state. The key-count sum only runs once the cheap record floor has passed.
func (s *Server) maybeKickWAL() {
	if s.walKick == nil {
		return
	}
	rec := s.wal.Records()
	if rec <= walCompactMin {
		return
	}
	var keys int64
	for _, sh := range s.shards {
		keys += s.shardStats.Load(sh.idx, sKeys)
	}
	if rec <= walCompactRatio*keys {
		return
	}
	select {
	case s.walKick <- struct{}{}:
	default:
	}
}

// walCompactLoop runs background journal compaction until shutdown.
func (s *Server) walCompactLoop() {
	defer close(s.walDone)
	for {
		select {
		case <-s.walStop:
			return
		case <-s.walKick:
			s.walNote(s.compactWAL())
		}
	}
}

// compactWAL folds the journal back to the live state: with every shard lock
// held (stop-the-world, no Stage can be in flight) each shard file is
// rewritten to its current values and widths via temp file, fsync, and
// atomic rename. A crash between shards leaves a mix of old and new files;
// replay merges them per key with the higher-LSN rewritten records winning.
func (s *Server) compactWAL() error {
	for _, sh := range s.shards {
		sh.mu.Lock()
	}
	err := s.wal.Rewrite(0, s.walShardState)
	for i := len(s.shards) - 1; i >= 0; i-- {
		s.shards[i].mu.Unlock()
	}
	return err
}

// LearnedWidth reports the last width journaled for key — the precision a
// subscription created now would start at on a durable server. ok is false
// for keys with no journaled width (or on a non-durable server).
func (s *Server) LearnedWidth(key int) (float64, bool) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	w, ok := sh.walWidths[key]
	return w, ok
}
