package server

import (
	"testing"
	"time"

	"apcache/internal/netproto"
)

// TestValueLockFree proves Server.Value takes no shard mutex: it is called
// while the test itself holds the key's shard lock, which would deadlock
// (Go mutexes are not reentrant) if Value still went through the mutex.
func TestValueLockFree(t *testing.T) {
	s := New(testConfig())
	s.SetInitial(5, 42)
	sh := s.shardFor(5)
	sh.mu.Lock()
	v, ok := s.Value(5)
	if _, miss := s.Value(6); miss {
		t.Errorf("unknown key reported present")
	}
	sh.mu.Unlock()
	if !ok || v != 42 {
		t.Fatalf("Value under held shard lock = %g, %v; want 42, true", v, ok)
	}
}

// TestValueSeesUpdates checks the lock-free table tracks Set exactly, not
// just SetInitial.
func TestValueSeesUpdates(t *testing.T) {
	s := New(testConfig())
	for k := 0; k < 64; k++ {
		s.SetInitial(k, float64(k))
	}
	for k := 0; k < 64; k++ {
		s.Set(k, float64(k)*10)
	}
	for k := 0; k < 64; k++ {
		if v, ok := s.Value(k); !ok || v != float64(k)*10 {
			t.Fatalf("Value(%d) = %g, %v; want %g", k, v, ok, float64(k)*10)
		}
	}
}

// TestLockedValueReadsBaseline exercises the benchmark-baseline path end to
// end: the mutex route must answer exactly like the lock-free one.
func TestLockedValueReadsBaseline(t *testing.T) {
	cfg := testConfig()
	cfg.LockedValueReads = true
	s := New(cfg)
	s.SetInitial(3, 7)
	if v, ok := s.Value(3); !ok || v != 7 {
		t.Fatalf("locked Value = %g, %v", v, ok)
	}
	if _, ok := s.Value(4); ok {
		t.Fatalf("locked Value reported unknown key present")
	}
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	conn := rawDial(t, addr.String())
	hello(t, conn, 16)
	if err := netproto.Write(conn, &netproto.ReadMulti{ID: 2, Keys: []int64{3, 999}}); err != nil {
		t.Fatal(err)
	}
	msg, err := netproto.ReadMsg(conn)
	if err != nil {
		t.Fatal(err)
	}
	if e, ok := msg.(*netproto.Error2); !ok || e.Code != netproto.CodeUnknownKey {
		t.Fatalf("locked multi-key validation: got %#v, want unknown-key error", msg)
	}
}

// TestRefreshCostMeasured drives query-initiated reads through the wire path
// and checks the server distills them into a nonzero cost estimate.
func TestRefreshCostMeasured(t *testing.T) {
	s := New(testConfig())
	s.SetInitial(1, 10)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.RefreshCost(); got != 0 {
		t.Fatalf("RefreshCost before any read = %v, want 0", got)
	}

	conn := rawDial(t, addr.String())
	for i := 0; i < 4; i++ {
		if err := netproto.Write(conn, &netproto.Read{ID: uint64(i + 1), Key: 1}); err != nil {
			t.Fatal(err)
		}
		if _, err := netproto.ReadMsg(conn); err != nil {
			t.Fatal(err)
		}
	}
	cost := s.RefreshCost()
	if cost <= 0 {
		t.Fatalf("RefreshCost after reads = %v, want > 0", cost)
	}
	if cost > time.Second {
		t.Fatalf("RefreshCost absurdly large: %v", cost)
	}
	if st := s.Stats(); st.RefreshCost != cost {
		t.Errorf("Stats.RefreshCost = %v, RefreshCost() = %v", st.RefreshCost, cost)
	}
}

// TestHelloAckAdvertisesRefreshCost checks the handshake carries the
// measured cost to v3 peers once one exists, and that v2 peers — whose
// HelloAck has no such field — still negotiate cleanly afterward.
func TestHelloAckAdvertisesRefreshCost(t *testing.T) {
	s := New(testConfig())
	s.SetInitial(1, 10)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// First client handshakes before any read has been served: no
	// measurement to advertise yet.
	first := rawDial(t, addr.String())
	if ack := hello(t, first, 16); ack.CqrCost != 0 {
		t.Fatalf("first handshake advertised cost %d before any read", ack.CqrCost)
	}
	for i := 0; i < 4; i++ {
		if err := netproto.Write(first, &netproto.Read{ID: uint64(i + 1), Key: 1}); err != nil {
			t.Fatal(err)
		}
		if _, err := netproto.ReadMsg(first); err != nil {
			t.Fatal(err)
		}
	}

	// A v3 client connecting now receives the measurement.
	second := rawDial(t, addr.String())
	ack := hello(t, second, 16)
	if ack.CqrCost == 0 {
		t.Fatalf("second handshake advertised no cost after reads were served")
	}
	if got, want := time.Duration(ack.CqrCost), s.RefreshCost(); got != want {
		t.Errorf("advertised cost %v, server RefreshCost %v", got, want)
	}

	// A v2 client negotiates cleanly: its ack frame has no cost field and
	// the connection keeps working.
	third := rawDial(t, addr.String())
	ack2 := helloVersion(t, third, netproto.Version2, 16)
	if ack2.Version != netproto.Version2 {
		t.Fatalf("v2 offer negotiated version %d", ack2.Version)
	}
	if ack2.CqrCost != 0 {
		t.Errorf("v2 ack decoded cost %d, want 0 (field absent on the wire)", ack2.CqrCost)
	}
	if err := netproto.Write(third, &netproto.Read{ID: 9, Key: 1}); err != nil {
		t.Fatal(err)
	}
	if msg, err := netproto.ReadMsg(third); err != nil {
		t.Fatal(err)
	} else if r, ok := msg.(*netproto.Refresh); !ok || r.ID != 9 {
		t.Fatalf("v2 read after handshake: %#v", msg)
	}
}

// BenchmarkServerValue compares the lock-free value read against the
// pre-lock-free mutex baseline under concurrent readers.
func BenchmarkServerValue(b *testing.B) {
	run := func(b *testing.B, locked bool) {
		cfg := testConfig()
		cfg.LockedValueReads = locked
		s := New(cfg)
		const keys = 1024
		for k := 0; k < keys; k++ {
			s.SetInitial(k, float64(k))
		}
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			k := 0
			for pb.Next() {
				if _, ok := s.Value(k & (keys - 1)); !ok {
					b.Fatal("missing key")
				}
				k++
			}
		})
	}
	b.Run("lockfree", func(b *testing.B) { run(b, false) })
	b.Run("locked", func(b *testing.B) { run(b, true) })
}
