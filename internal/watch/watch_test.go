package watch

import (
	"errors"
	"sync"
	"testing"
	"time"

	"apcache/internal/aperrs"
	"apcache/internal/interval"
)

func iv(lo, hi float64) interval.Interval { return interval.Interval{Lo: lo, Hi: hi} }

func recv(t *testing.T, w *Watch) Update {
	t.Helper()
	select {
	case u, ok := <-w.Updates():
		if !ok {
			t.Fatalf("Updates closed while an update was expected (Err: %v)", w.Err())
		}
		return u
	case <-time.After(5 * time.Second):
		t.Fatalf("no update within 5s")
		panic("unreachable")
	}
}

func TestDeliversInArrivalOrder(t *testing.T) {
	w := New(nil)
	defer w.Close()
	w.Notify(3, iv(0, 1))
	w.Notify(1, iv(2, 3))
	w.Notify(7, iv(4, 5))
	for _, want := range []int{3, 1, 7} {
		if u := recv(t, w); u.Key != want {
			t.Fatalf("got key %d, want %d", u.Key, want)
		}
	}
}

func TestLatestWinsCoalescing(t *testing.T) {
	// With no consumer draining, repeated notifies for one key must fold
	// into a single pending entry holding the newest interval. Saturate the
	// out buffer with sacrificial keys first so the pump cannot drain the
	// key under test early.
	w := New(nil)
	defer w.Close()
	for k := 1000; k < 1000+outBuffer+2; k++ {
		w.Notify(k, iv(0, 1))
	}
	// Give the pump a moment to park on the full out channel.
	time.Sleep(10 * time.Millisecond)
	for i := 0; i < 50; i++ {
		w.Notify(5, iv(float64(i), float64(i)+1))
	}
	// Drain: the newest state must eventually be delivered, and key 5 may
	// appear at most twice on the way there (once if its first state was
	// already grabbed by the pump when the rest of the burst folded in,
	// plus the folded newest state).
	seen := 0
	deadline := time.After(5 * time.Second)
	for {
		select {
		case u := <-w.Updates():
			if u.Key != 5 {
				continue
			}
			seen++
			if u.Interval == iv(49, 50) {
				if seen > 2 {
					t.Fatalf("key 5 delivered %d times; latest-wins should bound it at 2", seen)
				}
				if w.Coalesced() == 0 {
					t.Fatalf("no folds counted despite the burst")
				}
				return
			}
		case <-deadline:
			t.Fatalf("newest state never delivered (saw %d updates for key 5)", seen)
		}
	}
}

func TestCloseEndsStreamCleanly(t *testing.T) {
	closed := make(chan struct{})
	w := New(func(*Watch) { close(closed) })
	w.Notify(1, iv(0, 1))
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case <-closed:
	default:
		t.Fatalf("onClose hook did not run")
	}
	// The stream terminates (possibly after delivering buffered updates).
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-w.Updates():
			if !ok {
				if err := w.Err(); err != nil {
					t.Fatalf("Err after clean Close: %v", err)
				}
				return
			}
		case <-deadline:
			t.Fatalf("Updates never closed")
		}
	}
}

func TestFailReportsCause(t *testing.T) {
	w := New(nil)
	w.Fail(errors.New("feed died"))
	for range w.Updates() {
	}
	if err := w.Err(); err == nil || err.Error() != "feed died" {
		t.Fatalf("Err = %v, want feed died", err)
	}
	// Fail with nil maps to ErrClosed.
	w2 := New(nil)
	w2.Fail(nil)
	for range w2.Updates() {
	}
	if !errors.Is(w2.Err(), aperrs.ErrClosed) {
		t.Fatalf("Err = %v, want ErrClosed", w2.Err())
	}
}

func TestNotifyAfterCloseIsNoop(t *testing.T) {
	w := New(nil)
	w.Close()
	w.Notify(1, iv(0, 1)) // must not panic or deadlock
	for range w.Updates() {
	}
}

func TestConcurrentNotifyCloseRace(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		w := New(nil)
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 100; i++ {
					w.Notify(g, iv(float64(i), float64(i+1)))
				}
			}(g)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range w.Updates() {
			}
		}()
		w.Close()
		wg.Wait()
	}
}
