// Package watch implements the streaming subscription handle of API v1: a
// Watch turns the refreshes a cache applies behind the reader's back into an
// observable stream of Update values, one handle per caller.
//
// The design mirrors the server's push merge buffer on the consumer side: a
// producer (the client read loop, or a Store writer holding a shard lock)
// hands refreshes to Notify, which never blocks — it records the latest
// interval per key in a pending map and wakes a pump goroutine. The pump
// delivers updates in arrival order on a channel the consumer ranges over.
// While the consumer is slow, newer refreshes for a pending key overwrite
// the older ones (latest-wins coalescing), so the producer is never stalled
// and memory stays bounded at one pending entry per watched key. Every
// interval a consumer observes was a valid approximation when it was
// produced; coalescing only ever skips intermediate states, never the
// newest one.
package watch

import (
	"sync"

	"apcache/internal/aperrs"
	"apcache/internal/interval"
)

// EventKind classifies an Update: a per-key refresh, or a connection
// lifecycle event of the feed the watch rides on.
type EventKind uint8

const (
	// EventRefresh is an ordinary refresh: Key carries the observed key
	// and Interval its freshly installed approximation.
	EventRefresh EventKind = iota
	// EventDisconnected reports that the feed's connection dropped and an
	// automatic reconnect is in progress. Intervals delivered before this
	// event may go stale until EventReconnected arrives; the stream itself
	// stays open. Key is -1 and Interval is zero.
	EventDisconnected
	// EventReconnected reports that the feed's connection is back and the
	// watch's subscriptions have been replayed; the refreshes that follow
	// are live again. Key is -1 and Interval is zero.
	EventReconnected
)

// Update is one observed refresh (EventRefresh: the key and the freshly
// installed interval approximation) or a connection lifecycle event
// (EventDisconnected/EventReconnected: Key is -1).
type Update struct {
	Key      int
	Interval interval.Interval
	// Value is the exact-value estimate accompanying the interval on feeds
	// that supply one (continuous-query answer streams, via NotifyVal);
	// 0 on plain key-refresh feeds.
	Value float64
	Event EventKind
}

// outBuffer is the capacity of the Updates channel: enough to ride out
// consumer scheduling hiccups without coalescing, small enough that a truly
// slow consumer falls back to latest-wins promptly.
const outBuffer = 16

// Watch is a live subscription stream. Consumers range over Updates(); the
// channel closes when the watch is closed or its feed dies, and Err()
// reports which. All methods are safe for concurrent use.
type Watch struct {
	mu        sync.Mutex
	pending   map[int]Update // latest undelivered update per key
	order     []int          // pending keys in arrival order
	events    []EventKind    // undelivered lifecycle events, in order
	err       error          // terminal failure, if any
	closed    bool
	coalesced int // updates folded into a pending entry (latest-wins)

	kick chan struct{} // wakes the pump; capacity 1
	done chan struct{} // closed exactly once by Close/Fail
	out  chan Update   // closed by the pump on exit

	onClose func(*Watch) // unregisters the watch from its feed
}

// New returns a running watch. onClose, if non-nil, is called exactly once
// — before the stream shuts down — when the watch is closed or failed, so
// the feed can unregister it.
func New(onClose func(*Watch)) *Watch {
	w := &Watch{
		pending: make(map[int]Update),
		kick:    make(chan struct{}, 1),
		done:    make(chan struct{}),
		out:     make(chan Update, outBuffer),
		onClose: onClose,
	}
	go w.pump()
	return w
}

// Updates returns the stream of observed refreshes. The channel is closed
// when the watch is closed (Err returns nil) or its feed fails (Err returns
// the cause). Consumers that fall behind lose only intermediate states of a
// key, never its newest delivered so far.
func (w *Watch) Updates() <-chan Update { return w.out }

// Err returns the terminal error after Updates is closed: nil for a clean
// Close, the connection or feed failure otherwise.
func (w *Watch) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Coalesced reports how many notifications were folded into a pending entry
// instead of delivered individually — the observability hook for the
// latest-wins policy.
func (w *Watch) Coalesced() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.coalesced
}

// Notify records a refresh for delivery. It never blocks: if an update for
// key is already pending, the newer interval replaces it (latest-wins).
// Safe to call from producers holding unrelated locks; calls after
// Close/Fail are no-ops.
func (w *Watch) Notify(key int, iv interval.Interval) {
	w.NotifyVal(key, iv, 0)
}

// NotifyVal is Notify carrying an exact-value estimate alongside the
// interval — the continuous-query answer feed, where the center estimate is
// part of the answer. Latest-wins coalescing applies to the pair as a unit.
func (w *Watch) NotifyVal(key int, iv interval.Interval, val float64) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	if _, ok := w.pending[key]; ok {
		w.coalesced++
	} else {
		w.order = append(w.order, key)
	}
	w.pending[key] = Update{Key: key, Interval: iv, Value: val}
	w.mu.Unlock()
	select {
	case w.kick <- struct{}{}:
	default:
	}
}

// NotifyEvent records a connection lifecycle event for delivery. Unlike
// refreshes, events are never coalesced — a disconnect/reconnect pair is
// always observed as two updates, in order. Like Notify it never blocks and
// is a no-op after Close/Fail. Events are delivered ahead of the refreshes
// pending in the same pump run (a reconnect's replayed refreshes typically
// arrive after the event that announces them anyway).
func (w *Watch) NotifyEvent(ev EventKind) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.events = append(w.events, ev)
	w.mu.Unlock()
	select {
	case w.kick <- struct{}{}:
	default:
	}
}

// Close detaches the watch from its feed and ends the stream. Updates is
// closed (pending entries are discarded); Err stays nil. Closing twice, or
// after a failure, is a no-op. It never blocks on the consumer.
func (w *Watch) Close() error {
	w.shutdown(nil)
	return nil
}

// Fail ends the stream with a terminal error: the feed died underneath the
// watch (connection lost, client closed). Like Close, but Err reports why.
func (w *Watch) Fail(err error) {
	if err == nil {
		err = aperrs.ErrClosed
	}
	w.shutdown(err)
}

// shutdown runs the close-once protocol shared by Close and Fail.
func (w *Watch) shutdown(err error) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	w.err = err
	w.mu.Unlock()
	if w.onClose != nil {
		w.onClose(w)
	}
	close(w.done)
}

// Registry maps keys to the watches observing them: the bookkeeping both
// feeds (the networked client and the in-process store) share. It is not
// goroutine-safe — each feed guards its registry with its own lock, which
// also serializes Add/Remove against that feed's Notify calls.
type Registry struct {
	byKey map[int][]*Watch
}

// Add registers w under every key in keys.
func (r *Registry) Add(w *Watch, keys []int) {
	if r.byKey == nil {
		r.byKey = make(map[int][]*Watch)
	}
	for _, k := range keys {
		r.byKey[k] = append(r.byKey[k], w)
	}
}

// Remove deletes w from every key in keys, dropping emptied entries so
// Empty reports the feed may skip notification entirely.
func (r *Registry) Remove(w *Watch, keys []int) {
	for _, k := range keys {
		ws := r.byKey[k]
		for i, cand := range ws {
			if cand == w {
				r.byKey[k] = append(ws[:i], ws[i+1:]...)
				break
			}
		}
		if len(r.byKey[k]) == 0 {
			delete(r.byKey, k)
		}
	}
}

// Empty reports whether no watch is registered.
func (r *Registry) Empty() bool { return len(r.byKey) == 0 }

// Notify streams one refresh to every watch observing key. Never blocks.
func (r *Registry) Notify(key int, iv interval.Interval) {
	for _, w := range r.byKey[key] {
		w.Notify(key, iv)
	}
}

// All returns the deduplicated watches currently registered (a watch
// observing several keys appears once), leaving the registry intact: the
// broadcast path for connection lifecycle events, where every live watch is
// notified but stays subscribed.
func (r *Registry) All() []*Watch {
	var all []*Watch
	seen := make(map[*Watch]bool)
	for _, ws := range r.byKey {
		for _, w := range ws {
			if !seen[w] {
				seen[w] = true
				all = append(all, w)
			}
		}
	}
	return all
}

// Detach empties the registry and returns the deduplicated watches that
// were registered: the teardown path, where every live watch is failed with
// the feed's error.
func (r *Registry) Detach() []*Watch {
	all := r.All()
	r.byKey = nil
	return all
}

// pump moves pending updates onto the out channel in arrival order. It
// grabs the whole pending run under the lock, then delivers it; updates
// arriving while a delivery blocks coalesce into the next run. It owns the
// out channel and closes it on exit.
func (w *Watch) pump() {
	defer close(w.out)
	var run []Update
	for {
		select {
		case <-w.kick:
		case <-w.done:
			return
		}
		w.mu.Lock()
		run = run[:0]
		for _, ev := range w.events {
			run = append(run, Update{Key: -1, Event: ev})
		}
		w.events = w.events[:0]
		for _, k := range w.order {
			run = append(run, w.pending[k])
			delete(w.pending, k)
		}
		w.order = w.order[:0]
		w.mu.Unlock()
		for _, u := range run {
			select {
			case w.out <- u:
			case <-w.done:
				return
			}
		}
	}
}
