package plot

import (
	"math"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("beta", "2.5")
	out := tb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "name") || !strings.Contains(lines[0], "value") {
		t.Errorf("header missing: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "| ---") && !strings.Contains(lines[1], "-") {
		t.Errorf("separator missing: %q", lines[1])
	}
	if !strings.Contains(lines[2], "alpha") {
		t.Errorf("row missing: %q", lines[2])
	}
}

func TestTableShortRowPadded(t *testing.T) {
	tb := NewTable("a", "b", "c")
	tb.AddRow("only")
	if len(tb.Rows[0]) != 3 {
		t.Errorf("row not padded: %v", tb.Rows[0])
	}
}

func TestTableLongRowPanics(t *testing.T) {
	tb := NewTable("a")
	defer func() {
		if recover() == nil {
			t.Fatalf("long row accepted")
		}
	}()
	tb.AddRow("1", "2")
}

func TestTableAddFloats(t *testing.T) {
	tb := NewTable("run", "cost", "pvr")
	tb.AddFloats("r1", 1.23456789, math.Inf(1))
	if tb.Rows[0][0] != "r1" {
		t.Errorf("label wrong: %v", tb.Rows[0])
	}
	if tb.Rows[0][2] != "inf" {
		t.Errorf("inf formatting: %v", tb.Rows[0])
	}
}

func TestFormatG(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{1.5, "1.5"},
		{math.Inf(1), "inf"},
		{math.Inf(-1), "-inf"},
		{0, "0"},
	}
	for _, tc := range cases {
		if got := FormatG(tc.in); got != tc.want {
			t.Errorf("FormatG(%g) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestChartRender(t *testing.T) {
	c := &Chart{Title: "cost vs width", XLabel: "W", YLabel: "omega", Width: 40, Height: 10}
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{5, 3, 2, 3, 5}
	c.Add("omega", x, y)
	out := c.String()
	if !strings.Contains(out, "cost vs width") {
		t.Errorf("title missing:\n%s", out)
	}
	if !strings.Contains(out, "*") {
		t.Errorf("marker missing:\n%s", out)
	}
	if !strings.Contains(out, "omega") {
		t.Errorf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "x: W") {
		t.Errorf("axis labels missing:\n%s", out)
	}
}

func TestChartMultipleSeriesDistinctMarkers(t *testing.T) {
	c := &Chart{Width: 30, Height: 8}
	c.Add("a", []float64{0, 1}, []float64{0, 1})
	c.Add("b", []float64{0, 1}, []float64{1, 0})
	out := c.String()
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Errorf("markers missing:\n%s", out)
	}
}

func TestChartEmptyFails(t *testing.T) {
	c := &Chart{}
	var b strings.Builder
	if err := c.Render(&b); err == nil {
		t.Errorf("empty chart rendered")
	}
}

func TestChartDegenerateRanges(t *testing.T) {
	c := &Chart{Width: 20, Height: 5}
	c.Add("flat", []float64{1, 1, 1}, []float64{2, 2, 2})
	out := c.String()
	if strings.Contains(out, "error") {
		t.Errorf("flat series failed:\n%s", out)
	}
}

func TestChartSkipsNonFinite(t *testing.T) {
	c := &Chart{Width: 20, Height: 5}
	c.Add("s", []float64{1, 2, 3}, []float64{1, math.Inf(1), 2})
	out := c.String()
	if strings.Contains(out, "error") {
		t.Errorf("non-finite point broke chart:\n%s", out)
	}
}

func TestChartAddPanicsOnMismatch(t *testing.T) {
	c := &Chart{}
	defer func() {
		if recover() == nil {
			t.Fatalf("mismatched series accepted")
		}
	}()
	c.Add("bad", []float64{1, 2}, []float64{1})
}
