// Package plot renders experiment results as markdown tables and ASCII
// line charts for terminal output and EXPERIMENTS.md.
package plot

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Table is a simple markdown table builder.
type Table struct {
	Headers []string
	Rows    [][]string
}

// NewTable returns a table with the given headers.
func NewTable(headers ...string) *Table { return &Table{Headers: headers} }

// AddRow appends a row; short rows are padded with empty cells and long rows
// panic (a programming error in the experiment code).
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.Headers) {
		panic(fmt.Sprintf("plot: row has %d cells, table has %d columns", len(cells), len(t.Headers)))
	}
	row := make([]string, len(t.Headers))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// AddFloats appends a row of %.4g-formatted numbers prefixed by a label.
func (t *Table) AddFloats(label string, vals ...float64) {
	cells := make([]string, 0, len(vals)+1)
	cells = append(cells, label)
	for _, v := range vals {
		cells = append(cells, FormatG(v))
	}
	t.AddRow(cells...)
}

// Render writes the table as github-flavored markdown.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		b.WriteString("|")
		for i, c := range cells {
			b.WriteString(" ")
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			b.WriteString(" |")
		}
		return b.String()
	}
	if _, err := fmt.Fprintln(w, line(t.Headers)); err != nil {
		return err
	}
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintln(w, line(sep)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

// FormatG formats a float compactly, using "inf" for infinities.
func FormatG(v float64) string {
	if math.IsInf(v, 1) {
		return "inf"
	}
	if math.IsInf(v, -1) {
		return "-inf"
	}
	return strconv.FormatFloat(v, 'g', 4, 64)
}

// Series is one named curve for Chart.
type Series struct {
	Name string
	X, Y []float64
}

// Chart renders one or more series as an ASCII line chart. Series are
// marked with distinct runes in legend order.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // plot columns (default 64)
	Height int // plot rows (default 16)
	Series []Series
}

var markers = []rune{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// Add appends a series; X and Y must have equal nonzero length.
func (c *Chart) Add(name string, x, y []float64) {
	if len(x) != len(y) || len(x) == 0 {
		panic(fmt.Sprintf("plot: series %q has %d x / %d y points", name, len(x), len(y)))
	}
	c.Series = append(c.Series, Series{Name: name, X: x, Y: y})
}

// Render writes the chart.
func (c *Chart) Render(w io.Writer) error {
	if len(c.Series) == 0 {
		return fmt.Errorf("plot: chart has no series")
	}
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 64
	}
	if height <= 0 {
		height = 16
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) || math.IsInf(s.Y[i], 0) {
				continue
			}
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if math.IsInf(xmin, 1) {
		return fmt.Errorf("plot: chart has no finite points")
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", width))
	}
	for si, s := range c.Series {
		mark := markers[si%len(markers)]
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) || math.IsInf(s.Y[i], 0) {
				continue
			}
			col := int((s.X[i] - xmin) / (xmax - xmin) * float64(width-1))
			row := height - 1 - int((s.Y[i]-ymin)/(ymax-ymin)*float64(height-1))
			if col >= 0 && col < width && row >= 0 && row < height {
				grid[row][col] = mark
			}
		}
	}
	if c.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", c.Title); err != nil {
			return err
		}
	}
	yLo, yHi := FormatG(ymin), FormatG(ymax)
	labelW := len(yLo)
	if len(yHi) > labelW {
		labelW = len(yHi)
	}
	for r, row := range grid {
		label := strings.Repeat(" ", labelW)
		if r == 0 {
			label = fmt.Sprintf("%*s", labelW, yHi)
		} else if r == height-1 {
			label = fmt.Sprintf("%*s", labelW, yLo)
		}
		if _, err := fmt.Fprintf(w, "%s |%s\n", label, string(row)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", labelW), strings.Repeat("-", width)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s  %-*s%s\n", strings.Repeat(" ", labelW), width-len(FormatG(xmax)), FormatG(xmin), FormatG(xmax)); err != nil {
		return err
	}
	if c.XLabel != "" || c.YLabel != "" {
		if _, err := fmt.Fprintf(w, "x: %s   y: %s\n", c.XLabel, c.YLabel); err != nil {
			return err
		}
	}
	for si, s := range c.Series {
		if _, err := fmt.Fprintf(w, "  %c %s\n", markers[si%len(markers)], s.Name); err != nil {
			return err
		}
	}
	return nil
}

// String renders the chart to a string; errors render as text.
func (c *Chart) String() string {
	var b strings.Builder
	if err := c.Render(&b); err != nil {
		return "plot error: " + err.Error()
	}
	return b.String()
}
