// Package client implements the cache side of the networked deployment: it
// maintains a local store of interval approximations fed by server pushes
// (value-initiated refreshes), fetches exact values on demand
// (query-initiated refreshes), and executes bounded-aggregate queries
// against the combination, mirroring the simulator's cache but over TCP.
//
// The client core is pipelined: requests are enqueued onto a send queue and
// matched to responses through a correlation table keyed by request ID, so
// any number of calls may be in flight on the one connection at a time. A
// dedicated writer goroutine drains the queue, coalescing backed-up requests
// into Batch frames (protocol v2), encoding the whole drain into one reused
// buffer, and flushing it with a single write. Queries collect every key
// needing refinement in one pass and fetch them with a single ReadMulti
// instead of one blocking round trip per key.
//
// The wire path is allocation-free in steady state: outbound requests and
// inbound responses travel as pooled netproto messages (released by the
// writer after encoding and by callers after reading), the read loop decodes
// through a reusing netproto.Decoder, and per-call timers and result
// channels are pooled.
//
// The protocol version is negotiated at Dial time: the client offers v2 with
// a Hello frame and falls back to v1 single-message frames if the server
// declines, so it interoperates with v1-pinned servers.
//
// # API v1
//
// Every blocking method has a context variant (ReadExactCtx, ReadMultiCtx,
// QueryCtx, ...): a context deadline or cancellation bounds the call — an
// already-done context fails before a frame is written, and cancellation
// mid-call frees the correlation slot immediately while a late response is
// applied as unsolicited traffic. Calls whose context carries no deadline
// fall back to the SetTimeout default. Watch turns the pushes the read loop
// applies into an observable stream with per-key latest-wins coalescing,
// and failures carry the apcache error taxonomy: on connections that
// negotiate protocol v3, the server's structured error frame makes
// errors.Is(err, aperrs.ErrUnknownKey) hold across the TCP boundary.
//
// # Fault-tolerant sessions
//
// The connection is a session that can outlive any single TCP stream. With
// Config.Reconnect enabled, a transport failure does not kill the client:
// in-flight calls fail promptly with an error matching aperrs.ErrConnLost
// (so callers can errors.Is and retry), and a redial loop — exponential
// backoff with full jitter, capped, optionally bounded by MaxAttempts —
// re-establishes the connection, re-runs the protocol handshake (the new
// peer may negotiate a different version), and replays the client's desired
// state: every live subscription goes back out in batched SubscribeMulti
// chunks, so learned approximations flow again without caller involvement.
// Open Watch streams are not failed; they observe an EventDisconnected /
// EventReconnected pair and keep streaming across the gap. Config.StaleReads
// additionally serves degraded local reads during the outage: the
// last-known interval, flagged stale, its width optionally growing at a
// configured rate — principled in this system because an interval's width
// is an explicit statement of its uncertainty.
package client

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"apcache/internal/aperrs"
	"apcache/internal/cache"
	"apcache/internal/interval"
	"apcache/internal/netproto"
	"apcache/internal/query"
	"apcache/internal/watch"
	"apcache/internal/workload"
)

// ErrClosed is returned by operations on a closed client. It is the shared
// apcache sentinel, so errors.Is(err, apcache.ErrClosed) holds.
var ErrClosed = aperrs.ErrClosed

// ServerError is a request failure reported by the server, as opposed to a
// transport failure. On a v3 connection it carries the structured code and
// key from the wire Error2 frame, so errors.Is/As resolves it against the
// apcache error taxonomy (ErrUnknownKey and friends) across the TCP
// boundary; v1/v2 servers send free text only (Code stays CodeGeneric).
// The Dial handshake uses the type to fall back to protocol v1 when a
// server declines Hello.
type ServerError struct {
	Code netproto.ErrCode
	Key  int64
	Msg  string
}

func (e *ServerError) Error() string { return "client: server error: " + e.Msg }

// Is maps the wire error code onto the apcache sentinels. No current
// server path emits CodeBatchTooLarge (an oversized inbound frame is
// rejected at decode time, before its request ID is known); the mapping
// exists so a future server that can reply before teardown needs no
// client change.
func (e *ServerError) Is(target error) bool {
	switch e.Code {
	case netproto.CodeUnknownKey:
		return target == aperrs.ErrUnknownKey
	case netproto.CodeBatchTooLarge:
		return target == aperrs.ErrBatchTooLarge
	case netproto.CodeUnsupported:
		return target == aperrs.ErrQueryUnsupported
	default:
		return false
	}
}

// As extracts the structured unknown-key detail into an *aperrs.KeyError.
func (e *ServerError) As(target any) bool {
	if e.Code != netproto.CodeUnknownKey {
		return false
	}
	if ke, ok := target.(**aperrs.KeyError); ok {
		*ke = &aperrs.KeyError{Key: int(e.Key)}
		return true
	}
	return false
}

// Stats counts the refreshes and frames a client has processed.
type Stats struct {
	// ValueRefreshes counts server pushes (value-initiated).
	ValueRefreshes int
	// QueryRefreshes counts exact reads (query-initiated).
	QueryRefreshes int
	// FramesSent and FramesReceived count wire frames in each direction; a
	// Batch or RefreshBatch is one frame however many messages it carries.
	FramesSent, FramesReceived int
	// SmoothedRTT is the EWMA of observed request round-trip times, the
	// signal the adaptive MAX/MIN refinement ramp is derived from. Zero
	// until the first call completes.
	SmoothedRTT time.Duration
	// ServerCqrCost is the per-key refresh cost the server most recently
	// advertised (its measured query-initiated refresh latency): the v3
	// HelloAck value, superseded by any update piggybacked on a later
	// RefreshBatch. Zero when the server sent no measurement or the
	// connection negotiated a protocol below v3.
	ServerCqrCost time.Duration
	// Reconnects counts completed automatic reconnections: sessions that
	// redialed, renegotiated the protocol, and replayed the subscription
	// set after a transport failure (see Config.Reconnect).
	Reconnects int
	// TaggedPushes counts inbound value-initiated refreshes carrying a
	// nonzero watch tag (see WatchTagged); always 0 below protocol v4.
	TaggedPushes int
	// Queries is the number of standing continuous queries currently
	// registered (see WatchQuery).
	Queries int
	// Degraded reports that the connection is currently down: local reads
	// are serving last-known state while the redial loop (if enabled)
	// works on recovery. It clears once the subscription set has been
	// replayed.
	Degraded bool
	// Cache snapshots the local store's counters.
	Cache cache.Stats
}

// Config parameterizes DialConfig.
type Config struct {
	// CacheSize caps the local store of interval approximations. Required
	// (must be positive).
	CacheSize int
	// MaxBatch caps the messages the client coalesces into one Batch frame
	// and the keys per ReadMulti/SubscribeMulti chunk; it is also offered
	// to the server as the largest batch the client will accept. 0 selects
	// 128; values are clamped to [1, netproto.MaxBatchItems].
	MaxBatch int
	// ProtoVersion caps the protocol: 0 offers v4 (continuous queries and
	// tagged watches) with a Hello at Dial time, landing on the minimum of
	// both peers' versions and falling back to v1 if the server declines;
	// netproto.Version2/Version3/Version4 cap the offer at that version;
	// netproto.Version1 skips the handshake and speaks v1 only.
	ProtoVersion int
	// Timeout is the default per-request deadline (default 10s), applied
	// to calls whose context carries no deadline of its own; see
	// Client.SetTimeout.
	Timeout time.Duration
	// RampFactor sets the geometric growth of the batched MAX/MIN
	// refinement rounds (see query.ExecuteBatchRamp): round r fetches
	// ceil(RampFactor^r) top candidates, so larger factors spend fewer
	// round trips and more over-fetching. 1 reproduces the paper's minimal
	// one-key-per-round elimination. 0 (the default) selects the adaptive
	// policy: the ramp is derived per query from the connection's smoothed
	// RTT and CqrCost as 1 + RTT/CqrCost, clamped to [1, MaxAdaptiveRamp]
	// (query.DefaultRamp until the first RTT sample exists) — so
	// high-latency links ramp aggressively (fewer round trips, more
	// over-fetch) while low-latency ones stay near the paper-minimal
	// sequence. Values below 1 (other than 0), NaN, and +Inf are rejected
	// by DialConfig.
	RampFactor float64
	// CqrCost is the modeled cost of one query-initiated refresh at the
	// source, expressed in time units. It is used only by the adaptive
	// ramp policy (RampFactor 0) as the denominator of the Cqr-to-RTT
	// ratio. 0 lets the server's advertised measurement (v3 HelloAck)
	// drive the ramp, falling back to DefaultCqrCost when no measurement
	// arrives; a positive value pins the cost and ignores the server.
	CqrCost time.Duration
	// Reconnect configures automatic redial after a transport failure. The
	// zero value disables it — a transport failure then closes the client,
	// exactly the historical behavior; set Enabled to opt in. See
	// ReconnectPolicy.
	Reconnect ReconnectPolicy
	// StaleReads keeps Get/GetCtx/GetApprox answering from the last-known
	// approximations while the connection is down, instead of the caller
	// having to treat an outage as a cold cache. GetApprox flags such
	// answers Stale and reports the outage's age. Typically combined with
	// Reconnect; without it the degradation is permanent once the
	// connection dies.
	StaleReads bool
	// StaleWidthGrowth widens stale intervals at this rate — value units
	// per second of outage, split evenly between both bounds — so a
	// degraded answer's width keeps stating honest uncertainty about a
	// source that may be drifting unobserved. 0 leaves widths frozen.
	// Requires StaleReads; must be finite and non-negative.
	StaleWidthGrowth float64
}

// DefaultReconnectBase and DefaultReconnectCap are the backoff bounds an
// Enabled but otherwise zero ReconnectPolicy uses.
const (
	DefaultReconnectBase = 50 * time.Millisecond
	DefaultReconnectCap  = 5 * time.Second
)

// ReconnectPolicy drives the client's automatic redial loop. When a live
// connection dies, in-flight calls fail with an error matching
// aperrs.ErrConnLost, and — with Enabled set — the client redials in the
// background: each attempt re-dials the original address, re-runs the
// protocol handshake (the replacement peer may negotiate a different
// version), and replays every live subscription in batched SubscribeMulti
// chunks before the session is considered recovered. Open Watch streams
// ride across the gap, observing an EventDisconnected/EventReconnected
// pair instead of failing. Calls started during the outage fail fast with
// the same typed loss, so callers retry on errors.Is(err, ErrConnLost).
type ReconnectPolicy struct {
	// Enabled turns automatic reconnection on. Off by default: a client
	// that has not opted in observes the historical semantics, where a
	// transport failure closes the client and fails its watches.
	Enabled bool
	// BaseDelay seeds the exponential backoff: attempt n (0-based) waits a
	// uniformly random duration in [0, min(MaxDelay, BaseDelay·2ⁿ)] — full
	// jitter, so a fleet of clients losing one server does not reconnect
	// in lockstep. 0 selects DefaultReconnectBase.
	BaseDelay time.Duration
	// MaxDelay caps the backoff bound. 0 selects DefaultReconnectCap.
	MaxDelay time.Duration
	// MaxAttempts bounds consecutive failed attempts before the client
	// gives up: it closes, and the surviving watches fail with the typed
	// loss. 0 retries until the client is closed.
	MaxAttempts int
}

// delay computes the backoff before attempt (0-based) from a jitter draw r
// in [0, 1): full jitter over an exponentially growing bound, clamped to
// [BaseDelay, MaxDelay].
func (p ReconnectPolicy) delay(attempt int, r float64) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = DefaultReconnectBase
	}
	ceil := p.MaxDelay
	if ceil <= 0 {
		ceil = DefaultReconnectCap
	}
	if ceil < base {
		ceil = base
	}
	bound := base
	for i := 0; i < attempt && bound < ceil; i++ {
		bound *= 2
	}
	if bound > ceil {
		bound = ceil
	}
	d := time.Duration(r * float64(bound))
	if d < 0 {
		d = 0
	}
	if d > bound {
		d = bound
	}
	return d
}

// Approx is a locally served approximation together with its degradation
// status: Stale reports it was read during an outage (Config.StaleReads)
// and Age how long the connection has been down. A stale interval's width
// grows at Config.StaleWidthGrowth, so it remains an honest statement of
// uncertainty about a source that may be drifting unobserved.
type Approx struct {
	Interval interval.Interval
	Stale    bool
	Age      time.Duration
}

// DefaultCqrCost is the modeled per-key refresh cost used by the adaptive
// ramp when Config.CqrCost is unset and the server advertised no
// measurement of its own. On loopback (RTT in the same order) the derived
// ramp lands near query.DefaultRamp; across a real network the RTT
// dominates and the ramp grows toward MaxAdaptiveRamp.
const DefaultCqrCost = 100 * time.Microsecond

// MaxAdaptiveRamp caps the RTT-derived refinement ramp: past 8 the
// over-fetch roughly octuples the minimal refresh set, which outweighs any
// further round-trip savings.
const MaxAdaptiveRamp = 8.0

// callResult resolves one in-flight request: the matching response message,
// or the error the server reported for it. at is the read loop's receive
// timestamp, so the RTT sample measures send-to-receive even when the
// caller consumes pipelined responses sequentially (awaiting chunk k only
// after chunks 1..k-1 would otherwise inflate the smoothed RTT that drives
// the adaptive refinement ramp).
type callResult struct {
	msg netproto.Message
	err error
	at  time.Time
}

// sess is one TCP stream of the client's logical session. The redial loop
// replaces the whole struct under mu, so the read and write loops of a dead
// stream never share channels — or the writer's scratch buffer — with its
// replacement.
type sess struct {
	conn      net.Conn
	sendq     chan netproto.Message // feeds this stream's writer goroutine
	dead      chan struct{}         // closed when the stream's read loop exits
	writeDone chan struct{}         // closed when the stream's writer exits
	runBuf    []netproto.Message    // writer scratch for batchable runs
}

func newSess(conn net.Conn) *sess {
	return &sess{
		conn:      conn,
		sendq:     make(chan netproto.Message, 256),
		dead:      make(chan struct{}),
		writeDone: make(chan struct{}),
	}
}

// Client is a networked approximate cache. All methods are safe for
// concurrent use.
type Client struct {
	// addr is the dial target, kept for the redial loop. The knobs below
	// it are immutable after DialConfig.
	addr        string
	policy      ReconnectPolicy
	staleReads  bool
	staleGrowth float64
	offerProto  int // protocol ceiling offered on every handshake; Version1 = none
	offerBatch  int // batch limit offered on every handshake

	// mu guards the local store, the correlation table, the watch
	// registry, the counters, and the session/reconnect state. It is
	// never held across a network operation.
	mu       sync.Mutex
	sess     *sess
	store    *cache.Cache
	pending  map[uint64]chan callResult
	watchers watch.Registry       // watches by observed key
	subs     map[int]struct{}     // desired-state subscriptions, replayed on reconnect
	queries  map[uint64]*queryReg // standing continuous queries by QID, replayed on reconnect
	tags     map[int]uint64       // per-key push tags (v4), re-stamped on reconnect
	nextQID  uint64
	nextID   uint64
	closed   bool
	byUser   bool // closed by an explicit Close, not a transport failure
	vir      int
	qir      int
	tagged   int // pushes received with a nonzero tag
	readErr  error

	// down marks the gap between a stream dying and the redial loop
	// publishing its replacement: calls started inside it fail fast with
	// the typed loss. reconnecting is true while a redial goroutine runs;
	// downSince anchors the outage's age for stale reads and clears only
	// once the subscription set has been replayed.
	down         bool
	reconnecting bool
	downSince    time.Time
	reconnects   int

	// closeCh aborts the redial loop's backoff sleeps; redialWG lets
	// Close join the loop.
	closeCh   chan struct{}
	closeOnce sync.Once
	redialWG  sync.WaitGroup

	// defTimeout is the default per-call deadline in nanoseconds, applied
	// when a call's context carries no deadline. Atomic so SetTimeout can
	// race in-flight calls without a lock: each call snapshots it once.
	defTimeout atomic.Int64

	// rttEWMA smooths observed call round-trip times (alpha = 1/8),
	// feeding the adaptive refinement ramp. Nanoseconds; 0 = no sample yet.
	rttEWMA atomic.Int64

	ramp    float64       // configured MAX/MIN ramp factor; 0 = adaptive from RTT
	cqrCost time.Duration // modeled per-key refresh cost for the adaptive ramp
	cqrSet  bool          // Config.CqrCost was explicit: ignore the server's advertisement

	// srvCqrCost is the refresh cost the server most recently advertised,
	// nanoseconds; 0 until (unless) a measurement arrives. Seeded by the
	// v3 HelloAck and refreshed by cost updates piggybacked on
	// RefreshBatch frames when the server's measurement drifts. Written by
	// the handshake and the read loop, read by every rampFor call.
	srvCqrCost atomic.Int64

	// proto is the negotiated protocol version, maxBatch the negotiated
	// batch limit. Written during the Dial handshake, read by the writer
	// goroutine and the multi-key paths, hence atomics.
	proto    atomic.Int32
	maxBatch atomic.Int32

	framesSent atomic.Int64
	framesRecv atomic.Int64
}

// Dial connects to a server and returns a cache of the given capacity,
// negotiating the batched v2 protocol when the server supports it.
func Dial(addr string, cacheSize int) (*Client, error) {
	return DialConfig(addr, Config{CacheSize: cacheSize})
}

// DialConfig connects to a server with explicit protocol knobs.
func DialConfig(addr string, cfg Config) (*Client, error) {
	maxBatch := cfg.MaxBatch
	if maxBatch <= 0 {
		maxBatch = 128
	}
	if maxBatch > netproto.MaxBatchItems {
		maxBatch = netproto.MaxBatchItems
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	if cfg.ProtoVersion != 0 && (cfg.ProtoVersion < netproto.Version1 || cfg.ProtoVersion > netproto.Version4) {
		return nil, fmt.Errorf("client: unsupported protocol version %d", cfg.ProtoVersion)
	}
	ramp := cfg.RampFactor
	if ramp != 0 && (ramp < 1 || math.IsNaN(ramp) || math.IsInf(ramp, 1)) {
		return nil, fmt.Errorf("client: ramp factor %g outside [1, +Inf)", ramp)
	}
	cqrCost := cfg.CqrCost
	if cqrCost <= 0 {
		cqrCost = DefaultCqrCost
	}
	if cfg.StaleWidthGrowth < 0 || math.IsNaN(cfg.StaleWidthGrowth) || math.IsInf(cfg.StaleWidthGrowth, 1) {
		return nil, fmt.Errorf("client: stale width growth %g outside [0, +Inf)", cfg.StaleWidthGrowth)
	}
	offerProto := netproto.Version1
	if cfg.ProtoVersion != netproto.Version1 {
		offerProto = netproto.Version4
		if cfg.ProtoVersion != 0 && cfg.ProtoVersion < offerProto {
			offerProto = cfg.ProtoVersion
		}
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	c := &Client{
		addr:        addr,
		policy:      cfg.Reconnect,
		staleReads:  cfg.StaleReads,
		staleGrowth: cfg.StaleWidthGrowth,
		offerProto:  offerProto,
		offerBatch:  maxBatch,
		store:       cache.New(cfg.CacheSize),
		pending:     make(map[uint64]chan callResult),
		subs:        make(map[int]struct{}),
		queries:     make(map[uint64]*queryReg),
		tags:        make(map[int]uint64),
		ramp:        ramp,
		cqrCost:     cqrCost,
		cqrSet:      cfg.CqrCost > 0,
		closeCh:     make(chan struct{}),
	}
	c.defTimeout.Store(int64(timeout))
	c.proto.Store(netproto.Version1)
	c.maxBatch.Store(int32(maxBatch))
	s := newSess(conn)
	c.sess = s
	go c.readLoop(s)
	go c.writeLoop(s)
	if offerProto != netproto.Version1 {
		if err := c.handshake(context.Background(), offerProto, maxBatch); err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

// handshake offers protocol version offer (v2 or v3); the connection lands
// on the minimum of the offer and the server's ack. A ServerError reply
// means the server declined — the client stays on v1 frames; transport
// failures abort. It runs at Dial time and again on every reconnect, since
// the replacement peer may speak an older protocol.
func (c *Client) handshake(ctx context.Context, offer, maxBatch int) error {
	msg, err := c.call(ctx, &netproto.Hello{Version: uint8(offer), MaxBatch: uint16(maxBatch)})
	if err != nil {
		var se *ServerError
		if errors.As(err, &se) {
			return nil // declined: v1 fallback
		}
		return fmt.Errorf("client: handshake: %w", err)
	}
	ack, ok := msg.(*netproto.HelloAck)
	if !ok || ack.Version < netproto.Version2 {
		return nil // incoherent ack: stay on v1
	}
	ver := int(ack.Version)
	if ver > offer {
		ver = offer // a peer may never raise the negotiated version
	}
	limit := int(ack.MaxBatch)
	if limit < 1 || limit > maxBatch {
		limit = maxBatch
	}
	c.maxBatch.Store(int32(limit))
	c.proto.Store(int32(ver))
	if ver >= netproto.Version3 && ack.CqrCost > 0 {
		// The server measured its own query-initiated refresh latency and
		// advertised it; the adaptive ramp prefers the measurement over
		// the modeled DefaultCqrCost (unless Config.CqrCost pinned one).
		c.srvCqrCost.Store(int64(ack.CqrCost))
	}
	return nil
}

// Proto returns the negotiated protocol version (netproto.Version1 through
// Version4).
func (c *Client) Proto() int { return int(c.proto.Load()) }

// SetTimeout adjusts the default per-request deadline (default 10s). The
// default applies only to calls whose context carries no deadline of its
// own: a per-call context deadline or cancellation always wins, and such
// calls fail with the context's error (context.DeadlineExceeded /
// context.Canceled) while default-deadline expiries fail with an error
// matching both ErrTimeout and context.DeadlineExceeded. d <= 0 disables
// the default entirely — calls without a context deadline then wait until
// the response arrives or the connection dies. SetTimeout is safe to call
// concurrently with in-flight calls; each call snapshots the value once
// when it starts.
func (c *Client) SetTimeout(d time.Duration) {
	c.defTimeout.Store(int64(d))
}

// observeRTT folds one completed call's round-trip time into the smoothed
// per-connection RTT (EWMA, alpha = 1/8).
func (c *Client) observeRTT(d time.Duration) {
	if d <= 0 {
		return
	}
	for {
		old := c.rttEWMA.Load()
		next := int64(d)
		if old != 0 {
			next = old + (int64(d)-old)/8
		}
		if c.rttEWMA.CompareAndSwap(old, next) {
			return
		}
	}
}

// effectiveCqrCost resolves the per-key refresh cost the adaptive ramp
// divides the RTT by, in precedence order: an explicit Config.CqrCost, then
// the cost the server most recently measured and advertised (HelloAck, or a
// later RefreshBatch piggyback), then the modeled DefaultCqrCost.
func (c *Client) effectiveCqrCost() time.Duration {
	if c.cqrSet {
		return c.cqrCost
	}
	if srv := c.srvCqrCost.Load(); srv > 0 {
		return time.Duration(srv)
	}
	return c.cqrCost
}

// rampFor resolves the MAX/MIN refinement ramp for one query: the
// configured RampFactor when set, otherwise the adaptive policy — 1 +
// smoothedRTT/CqrCost, clamped to [1, MaxAdaptiveRamp] — falling back to
// query.DefaultRamp before the first RTT sample exists. Rationale: each
// refinement round costs one RTT of latency plus Cqr per fetched key, so
// when the RTT dwarfs the per-key cost the cheapest strategy is to
// over-fetch aggressively and save rounds; when refreshes are as expensive
// as round trips, the paper-minimal sequence wins. The cost side is the
// server's measured refresh latency when one was advertised, so the
// trade-off tracks the deployment instead of a hardcoded model.
func (c *Client) rampFor() float64 {
	if c.ramp != 0 {
		return c.ramp
	}
	return query.AdaptiveRamp(time.Duration(c.rttEWMA.Load()), c.effectiveCqrCost(), MaxAdaptiveRamp)
}

// readLoop dispatches one stream's inbound frames: responses to waiting
// requests, pushes into the local store. It owns a reusing netproto.Decoder,
// so handleMsg must never hand a decoded message itself to a waiter —
// waiters get copies. On a decode error the stream is gone: connLost fails
// the in-flight calls and decides between teardown and reconnection.
func (c *Client) readLoop(s *sess) {
	defer close(s.dead)
	d := netproto.NewDecoder(bufio.NewReader(s.conn))
	for {
		msg, err := d.Decode()
		if err != nil {
			c.connLost(s, err)
			return
		}
		c.framesRecv.Add(1)
		c.handleMsg(msg)
	}
}

// connLost is the single teardown path for a dead stream, run by its read
// loop. Every in-flight call fails (their result channels close; awaiters
// surface the typed loss via closeReason). Then, either the client closes —
// reconnect disabled, or the user closed it — and the watches fail; or
// recovery is handed to the redial loop and the watches stay attached,
// observing EventDisconnected instead.
func (c *Client) connLost(s *sess, err error) {
	c.mu.Lock()
	if c.sess != s {
		// A stream the redial loop already replaced; its state is gone.
		c.mu.Unlock()
		return
	}
	c.readErr = err
	c.down = true
	if !c.byUser && c.downSince.IsZero() {
		c.downSince = time.Now()
	}
	retry := c.policy.Enabled && !c.byUser && !c.closed
	if !retry {
		c.closed = true
	}
	for _, ch := range c.pending {
		close(ch)
	}
	c.pending = map[uint64]chan callResult{}
	// Collect the live watches (deduplicated: one watch may observe many
	// keys). The terminal path detaches the registry so late Notify calls
	// are no-ops; the retry path leaves it intact — the same watches
	// resume when the replayed subscriptions start refreshing again.
	var failed, live []*watch.Watch
	spawn := false
	if retry {
		if !c.reconnecting {
			// First loss of an established session: announce the outage
			// and start the redial loop. A half-established reconnect
			// attempt dying lands here too and changes nothing — the
			// running loop already owns recovery.
			c.reconnecting = true
			spawn = true
			live = c.watchers.All()
			for _, q := range c.queries {
				live = append(live, q.w)
			}
		}
	} else {
		failed = c.watchers.Detach()
		failed = append(failed, c.detachQueriesLocked()...)
	}
	byUser := c.byUser
	c.mu.Unlock()
	s.conn.Close() // stop the stream's writer when the loss was a decode error, not a dead socket
	// Fail the watches outside mu (Fail runs the unregister hook, which
	// relocks). An explicitly closed client surfaces as ErrClosed;
	// anything else as the typed connection loss.
	werr := err
	if byUser || errors.Is(err, net.ErrClosed) {
		werr = ErrClosed
	} else {
		werr = aperrs.ConnLost(err)
	}
	for _, w := range failed {
		w.Fail(werr)
	}
	for _, w := range live {
		w.NotifyEvent(watch.EventDisconnected)
	}
	if spawn {
		c.redialWG.Add(1)
		go c.redial()
	}
}

// redial re-establishes the session: exponential backoff with full jitter
// between attempts, each attempt a fresh dial, handshake, and replay of the
// desired-state subscription set. It exits when a reconnect succeeds, the
// client closes, or MaxAttempts consecutive failures exhaust the policy.
func (c *Client) redial() {
	defer c.redialWG.Done()
	for attempt := 0; ; attempt++ {
		if c.policy.MaxAttempts > 0 && attempt >= c.policy.MaxAttempts {
			c.giveUp()
			return
		}
		if d := c.policy.delay(attempt, rand.Float64()); d > 0 {
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-c.closeCh:
				t.Stop()
				return
			}
		}
		select {
		case <-c.closeCh:
			return
		default:
		}
		if c.tryReconnect() {
			return
		}
	}
}

// tryReconnect runs one reconnection attempt end to end. It reports true
// when the redial loop should stop: the session is back, or the client
// closed underneath the attempt.
func (c *Client) tryReconnect() bool {
	conn, err := net.Dial("tcp", c.addr)
	if err != nil {
		return false
	}
	s := newSess(conn)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		conn.Close()
		return true
	}
	c.sess = s
	c.down = false
	// The replacement peer negotiates from scratch: back to v1 until the
	// handshake lands, with the configured offer restored.
	c.proto.Store(netproto.Version1)
	c.maxBatch.Store(int32(c.offerBatch))
	keys := make([]int, 0, len(c.subs))
	for k := range c.subs {
		keys = append(keys, k)
	}
	tagged := make([]int, 0, len(c.tags))
	for k := range c.tags {
		tagged = append(tagged, k)
	}
	c.mu.Unlock()
	go c.readLoop(s)
	go c.writeLoop(s)
	if c.offerProto != netproto.Version1 {
		ctx, cancel := context.WithTimeout(context.Background(), c.stepTimeout())
		err := c.handshake(ctx, c.offerProto, c.offerBatch)
		cancel()
		if err != nil {
			c.failSession(s)
			return false
		}
	}
	if len(keys) > 0 {
		sort.Ints(keys) // deterministic replay order
		ctx, cancel := context.WithTimeout(context.Background(), c.stepTimeout())
		err := c.SubscribeMultiCtx(ctx, keys)
		cancel()
		if err != nil {
			c.failSession(s)
			return false
		}
	}
	if !c.replayV4(s, tagged) {
		return false
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return true
	}
	c.reconnecting = false
	c.downSince = time.Time{}
	c.readErr = nil
	c.reconnects++
	live := c.watchers.All()
	for _, q := range c.queries {
		live = append(live, q.w)
	}
	c.mu.Unlock()
	for _, w := range live {
		w.NotifyEvent(watch.EventReconnected)
	}
	return true
}

// replayV4 restores the v4-only desired state after a reconnect: per-key
// push tags are re-stamped with tagged Subscribe calls, and standing
// continuous queries are re-registered under their original QIDs, so open
// WatchQuery streams resume without caller involvement. When the
// replacement peer renegotiated below v4 the queries cannot be replayed:
// their watches fail with the typed aperrs.ErrQueryUnsupported while the
// session itself recovers — plain subscriptions, reads, and untagged
// watches keep working on the older protocol. It reports false when a
// transport failure killed the attempt (failSession has run).
func (c *Client) replayV4(s *sess, tagged []int) bool {
	if c.proto.Load() < netproto.Version4 {
		c.mu.Lock()
		failed := c.detachQueriesLocked()
		c.mu.Unlock()
		if len(failed) > 0 {
			err := fmt.Errorf("client: reconnect renegotiated protocol v%d: %w", c.Proto(), aperrs.ErrQueryUnsupported)
			for _, w := range failed {
				w.Fail(err)
			}
		}
		return true
	}
	sort.Ints(tagged) // deterministic replay order
	for _, k := range tagged {
		c.mu.Lock()
		tag := c.tags[k]
		c.mu.Unlock()
		if tag == 0 {
			continue // untagged since the snapshot
		}
		ctx, cancel := context.WithTimeout(context.Background(), c.stepTimeout())
		msg, err := c.call(ctx, &netproto.Subscribe{Key: int64(k), Tag: tag})
		cancel()
		if err != nil {
			c.failSession(s)
			return false
		}
		netproto.Release(msg)
	}
	c.mu.Lock()
	regs := make([]*queryReg, 0, len(c.queries))
	for _, q := range c.queries {
		regs = append(regs, q)
	}
	c.mu.Unlock()
	sort.Slice(regs, func(i, j int) bool { return regs[i].qid < regs[j].qid })
	for _, q := range regs {
		ctx, cancel := context.WithTimeout(context.Background(), c.stepTimeout())
		msg, err := c.call(ctx, q.registerMsg())
		cancel()
		if err != nil {
			c.failSession(s)
			return false
		}
		netproto.Release(msg)
	}
	return true
}

// failSession abandons a half-established reconnect attempt: kill the
// stream and wait for its loops, so consecutive attempts never overlap. The
// stream's connLost sees reconnecting already set and leaves recovery to
// the caller.
func (c *Client) failSession(s *sess) {
	s.conn.Close()
	<-s.dead
	<-s.writeDone
}

// giveUp makes an exhausted redial policy terminal: the client closes and
// the surviving watches fail with the typed loss.
func (c *Client) giveUp() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.reconnecting = false
	err := c.readErr
	failed := c.watchers.Detach()
	failed = append(failed, c.detachQueriesLocked()...)
	c.mu.Unlock()
	werr := aperrs.ConnLost(err)
	for _, w := range failed {
		w.Fail(werr)
	}
}

// detachQueriesLocked empties the standing-query table and returns the
// watches that were attached, for the caller to fail outside mu. Clearing
// the table first makes each watch's unregister hook a no-op. Caller holds
// mu.
func (c *Client) detachQueriesLocked() []*watch.Watch {
	if len(c.queries) == 0 {
		return nil
	}
	ws := make([]*watch.Watch, 0, len(c.queries))
	for qid, q := range c.queries {
		delete(c.queries, qid)
		ws = append(ws, q.w)
	}
	return ws
}

// stepTimeout bounds one reconnection step (handshake, subscription
// replay): the default call timeout when one is set, a conservative
// constant when the default is disabled.
func (c *Client) stepTimeout() time.Duration {
	if t := time.Duration(c.defTimeout.Load()); t > 0 {
		return t
	}
	return 10 * time.Second
}

// handleMsg routes one inbound message. Batch frames recurse one level (the
// decoder rejects deeper nesting). msg is owned by the read loop's Decoder
// and valid only for this call: a waiting request gets a copy — pooled for
// the hot response types, released by the awaiting caller — never the
// decoder's box. The push path (no waiter) installs and copies nothing.
func (c *Client) handleMsg(msg netproto.Message) {
	switch m := msg.(type) {
	case *netproto.Batch:
		for _, sub := range m.Msgs {
			c.handleMsg(sub)
		}
	case *netproto.Refresh:
		c.mu.Lock()
		c.installLocked(m.Key, m.Lo, m.Hi, m.OriginalWidth)
		if m.Kind == netproto.KindValueInitiated {
			c.vir++
		}
		if m.Tag != 0 {
			c.tagged++
		}
		ch := c.takeLocked(m.ID)
		c.mu.Unlock()
		if ch != nil {
			cp := netproto.GetRefresh()
			*cp = *m
			ch <- callResult{msg: cp, at: time.Now()}
		}
	case *netproto.RefreshBatch:
		if m.CqrCost > 0 {
			// The server re-advertised its measured refresh cost (it
			// drifted >25% from what this connection last saw); fold it
			// into the adaptive ramp exactly like the HelloAck value. An
			// explicit Config.CqrCost still wins in effectiveCqrCost.
			c.srvCqrCost.Store(int64(m.CqrCost))
		}
		c.mu.Lock()
		for _, it := range m.Items {
			c.installLocked(it.Key, it.Lo, it.Hi, it.OriginalWidth)
			if it.Kind == netproto.KindValueInitiated {
				c.vir++
			}
		}
		ch := c.takeLocked(m.ID)
		c.mu.Unlock()
		if ch != nil {
			cp := netproto.GetRefreshBatch()
			cp.ID = m.ID
			cp.Items = append(cp.Items[:0], m.Items...)
			ch <- callResult{msg: cp, at: time.Now()}
		}
	case *netproto.QueryUpdate:
		// Route the fresh answer to the standing query's watch whether or
		// not a registration call is waiting (the ack carries the initial
		// answer; pushes have ID 0 and only the watch).
		iv := interval.Interval{Lo: m.Lo, Hi: m.Hi}
		c.mu.Lock()
		q := c.queries[m.QID]
		ch := c.takeLocked(m.ID)
		c.mu.Unlock()
		if q != nil {
			q.w.NotifyVal(int(m.QID), iv, m.Value)
		}
		if ch != nil {
			cp := netproto.GetQueryUpdate()
			*cp = *m
			ch <- callResult{msg: cp, at: time.Now()}
		}
	case *netproto.Pong:
		c.resolve(m.ID, callResult{msg: &netproto.Pong{ID: m.ID}})
	case *netproto.HelloAck:
		cp := *m
		c.resolve(m.ID, callResult{msg: &cp})
	case *netproto.ErrorMsg:
		c.resolve(m.ID, callResult{err: &ServerError{Msg: m.Msg}})
	case *netproto.Error2:
		c.resolve(m.ID, callResult{err: &ServerError{Code: m.Code, Key: m.Key, Msg: m.Msg}})
	}
}

// takeLocked removes and returns the waiter for id, nil if none (push
// traffic uses ID 0; a late response whose call timed out has no waiter but
// its interval is still installed). Caller holds mu.
func (c *Client) takeLocked(id uint64) chan callResult {
	if id == 0 {
		return nil
	}
	ch, ok := c.pending[id]
	if !ok {
		return nil
	}
	delete(c.pending, id)
	return ch
}

// resolve hands a result to the waiter for id, if any, stamping the
// receive time for the waiter's RTT sample.
func (c *Client) resolve(id uint64, res callResult) {
	c.mu.Lock()
	ch := c.takeLocked(id)
	c.mu.Unlock()
	if ch != nil {
		res.at = time.Now()
		ch <- res
	}
}

// installLocked puts a refresh's interval into the local store and streams
// it to any watches observing the key. Caller holds mu; Notify never blocks
// (latest-wins coalescing), so a slow watch consumer cannot stall the read
// loop.
func (c *Client) installLocked(key int64, lo, hi, originalWidth float64) {
	iv := interval.Interval{Lo: lo, Hi: hi}
	c.store.Put(int(key), iv, originalWidth)
	c.watchers.Notify(int(key), iv)
}

// writeLoop drains one stream's send queue onto the wire. Backed-up simple
// requests are coalesced into one Batch frame on v2 connections; multi-key
// requests are already batches and go out as their own frames. Either way
// one drain is encoded into one pooled buffer and flushed with a single
// write, so concurrent callers share syscalls.
func (c *Client) writeLoop(s *sess) {
	defer close(s.writeDone)
	bp := netproto.GetBuf()
	defer netproto.PutBuf(bp)
	var drained []netproto.Message
	for {
		var first netproto.Message
		select {
		case first = <-s.sendq:
		case <-s.dead:
			return
		}
		drained = append(drained[:0], first)
		max := int(c.maxBatch.Load())
	drain:
		for len(drained) < max {
			select {
			case m := <-s.sendq:
				drained = append(drained, m)
			default:
				break drain
			}
		}
		buf, err := c.appendFrames(s, (*bp)[:0], drained)
		*bp = buf
		if err != nil {
			s.conn.Close() // wakes the stream's readLoop, which fails the pending calls
			return
		}
		if _, err := s.conn.Write(buf); err != nil {
			s.conn.Close()
			return
		}
		if cap(buf) > 1<<20 {
			// Don't pin one exceptional drain's high-water mark for the
			// connection's lifetime.
			*bp = nil
		}
	}
}

// batchable reports whether m may ride inside a Batch frame (multi-key and
// handshake messages are frames of their own).
func batchable(m netproto.Message) bool {
	switch m.(type) {
	case *netproto.Subscribe, *netproto.Unsubscribe, *netproto.Read, *netproto.Ping:
		return true
	default:
		return false
	}
}

// appendFrames encodes a drained run into buf, preserving order: on v2,
// consecutive batchable messages collapse into one Batch frame. Every
// message is released back to its pool once encoded (the writer owns
// enqueued messages outright).
func (c *Client) appendFrames(s *sess, buf []byte, msgs []netproto.Message) ([]byte, error) {
	var err error
	if c.proto.Load() < netproto.Version2 || len(msgs) == 1 {
		for _, m := range msgs {
			buf, err = netproto.AppendFrame(buf, m)
			netproto.Release(m)
			if err != nil {
				return buf, err
			}
			c.framesSent.Add(1)
		}
		return buf, nil
	}
	run := s.runBuf[:0]
	flushRun := func() error {
		var err error
		switch len(run) {
		case 0:
			return nil
		case 1:
			buf, err = netproto.AppendFrame(buf, run[0])
			netproto.Release(run[0])
		default:
			// Wrap the run in a pooled Batch; releasing it releases the
			// sub-messages too.
			wrap := netproto.GetBatch()
			wrap.Msgs = append(wrap.Msgs[:0], run...)
			buf, err = netproto.AppendFrame(buf, wrap)
			netproto.Release(wrap)
		}
		run = run[:0]
		if err == nil {
			c.framesSent.Add(1)
		}
		return err
	}
	for _, m := range msgs {
		if batchable(m) {
			run = append(run, m)
			continue
		}
		if err := flushRun(); err != nil {
			s.runBuf = run
			return buf, err
		}
		buf, err = netproto.AppendFrame(buf, m)
		netproto.Release(m)
		if err != nil {
			s.runBuf = run
			return buf, err
		}
		c.framesSent.Add(1)
	}
	err = flushRun()
	s.runBuf = run
	return buf, err
}

// stampID assigns the request ID on an outbound request message.
func stampID(m netproto.Message, id uint64) {
	switch v := m.(type) {
	case *netproto.Read:
		v.ID = id
	case *netproto.ReadMulti:
		v.ID = id
	case *netproto.Subscribe:
		v.ID = id
	case *netproto.SubscribeMulti:
		v.ID = id
	case *netproto.Ping:
		v.ID = id
	case *netproto.Hello:
		v.ID = id
	case *netproto.RegisterQuery:
		v.ID = id
	default:
		panic(fmt.Sprintf("client: request %T cannot carry an ID", m))
	}
}

// resultChanPool recycles the one-shot response channels. A channel is
// returned to the pool only on the success path — after its single send was
// received — so a pooled channel can never see a stray late send.
var resultChanPool = sync.Pool{New: func() any { return make(chan callResult, 1) }}

// timerPool recycles await's timeout timers. Pooled timers are stopped;
// Reset is safe without draining under Go 1.23+ timer semantics.
var timerPool sync.Pool

// startCall registers a waiter, stamps m with a fresh request ID, and
// enqueues it without blocking on the network: the pipelined half of a
// call. A context that is already done fails the call before anything
// touches the wire — no frame is written, no correlation slot survives.
// Ownership of m passes to the writer goroutine on success, which releases
// pooled messages after encoding; on failure startCall releases m itself —
// either way the caller must not touch m afterwards.
func (c *Client) startCall(ctx context.Context, m netproto.Message) (uint64, chan callResult, time.Time, error) {
	if err := ctx.Err(); err != nil {
		netproto.Release(m)
		return 0, nil, time.Time{}, err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		netproto.Release(m)
		return 0, nil, time.Time{}, ErrClosed
	}
	if c.down {
		// The stream is down and the redial loop owns recovery; fail fast
		// with the typed loss instead of parking the call on a dead queue.
		err := c.closeReasonLocked()
		c.mu.Unlock()
		netproto.Release(m)
		return 0, nil, time.Time{}, err
	}
	s := c.sess
	c.nextID++
	id := c.nextID
	ch := resultChanPool.Get().(chan callResult)
	c.pending[id] = ch
	c.mu.Unlock()
	stampID(m, id)
	start := time.Now()

	select {
	case s.sendq <- m:
		return id, ch, start, nil
	case <-ctx.Done():
		c.abandon(id)
		netproto.Release(m)
		return 0, nil, start, ctx.Err()
	case <-s.dead:
		c.abandon(id)
		netproto.Release(m)
		return 0, nil, start, c.closeReason()
	}
}

// await blocks for a started call's response, bounded by the call's context
// and — when the context carries no deadline — the client's default
// timeout. Cancellation and expiry both abandon the waiter: the correlation
// slot is freed immediately, and a response arriving later is treated as
// unsolicited push traffic (its interval is still installed). The result
// channel is returned to the pool only on the response path; an abandoned
// channel may still receive the late response's single buffered send and is
// left to the garbage collector.
func (c *Client) await(ctx context.Context, id uint64, ch chan callResult, start time.Time) (netproto.Message, error) {
	var t *time.Timer
	var expire <-chan time.Time
	var timeout time.Duration
	if _, hasDeadline := ctx.Deadline(); !hasDeadline {
		if timeout = time.Duration(c.defTimeout.Load()); timeout > 0 {
			t, _ = timerPool.Get().(*time.Timer)
			if t == nil {
				t = time.NewTimer(timeout)
			} else {
				t.Reset(timeout)
			}
			expire = t.C
		}
	}
	select {
	case res, ok := <-ch:
		// Go 1.23+ timer semantics: receives after Stop block and Reset
		// discards stale fires, so no drain — it would deadlock when the
		// response races the expiry.
		if t != nil {
			t.Stop()
			timerPool.Put(t)
		}
		if !ok {
			// Closed by the read loop's teardown; the channel is dead.
			return nil, c.closeReason()
		}
		resultChanPool.Put(ch)
		if !res.at.IsZero() {
			c.observeRTT(res.at.Sub(start))
		}
		return res.msg, res.err
	case <-expire:
		timerPool.Put(t)
		c.abandon(id)
		return nil, &aperrs.TimeoutError{After: timeout}
	case <-ctx.Done():
		if t != nil {
			t.Stop()
			timerPool.Put(t)
		}
		c.abandon(id)
		return nil, ctx.Err()
	}
}

// abandon forgets a request that will no longer be awaited. A response
// arriving later is handled as unsolicited: its interval is still installed.
func (c *Client) abandon(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// call sends a request and waits for the matching response. Ownership of m
// passes to the writer; a returned hot-type response (Refresh/RefreshBatch)
// is a pooled copy the caller should Release once read.
func (c *Client) call(ctx context.Context, m netproto.Message) (netproto.Message, error) {
	id, ch, start, err := c.startCall(ctx, m)
	if err != nil {
		return nil, err
	}
	return c.await(ctx, id, ch, start)
}

func (c *Client) closeReason() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closeReasonLocked()
}

// closeReasonLocked types the failure a dead stream imposes on a call: the
// connection loss (matching aperrs.ErrConnLost, with the transport cause
// wrapped for errors.As) unless the user closed the client. Caller holds mu.
func (c *Client) closeReasonLocked() error {
	if !c.byUser && c.readErr != nil {
		return aperrs.ConnLost(c.readErr)
	}
	return ErrClosed
}

// Subscribe registers interest in key; the initial approximation lands in
// the local store.
func (c *Client) Subscribe(key int) error {
	return c.SubscribeCtx(context.Background(), key)
}

// SubscribeCtx is Subscribe bounded by ctx: cancellation or expiry abandons
// the call (the subscription may still take effect server-side; its initial
// refresh is then applied as unsolicited traffic).
func (c *Client) SubscribeCtx(ctx context.Context, key int) error {
	msg, err := c.call(ctx, &netproto.Subscribe{Key: int64(key)})
	if err != nil {
		return err
	}
	netproto.Release(msg)
	c.noteSubscribed(key)
	return nil
}

// noteSubscribed records keys in the desired-state set the redial loop
// replays after a reconnect. Only acknowledged subscriptions are recorded,
// so replay never asks a server for keys it might have rejected.
func (c *Client) noteSubscribed(keys ...int) {
	c.mu.Lock()
	for _, k := range keys {
		c.subs[k] = struct{}{}
	}
	c.mu.Unlock()
}

// SubscribeMulti registers interest in all keys with one request per
// MaxBatch chunk (all chunks in flight together), installing the initial
// approximations. On a v1 connection it falls back to sequential Subscribe
// calls, stopping at the first error.
func (c *Client) SubscribeMulti(keys []int) error {
	return c.SubscribeMultiCtx(context.Background(), keys)
}

// SubscribeMultiCtx is SubscribeMulti bounded by ctx.
func (c *Client) SubscribeMultiCtx(ctx context.Context, keys []int) error {
	if len(keys) == 0 {
		return nil
	}
	if c.proto.Load() < netproto.Version2 {
		for _, k := range keys {
			if err := c.SubscribeCtx(ctx, k); err != nil {
				return err
			}
		}
		return nil
	}
	calls, err := c.startMulti(ctx, keys, func(chunk []int) netproto.Message {
		ks := make([]int64, len(chunk))
		for i, k := range chunk {
			ks[i] = int64(k)
		}
		return &netproto.SubscribeMulti{Keys: ks}
	})
	if err != nil {
		return err
	}
	var firstErr error
	for _, cc := range calls {
		if firstErr != nil {
			// Fail fast: abandon the remaining chunks instead of awaiting
			// each in turn (their slots are freed now; late responses are
			// applied as unsolicited traffic).
			c.abandon(cc.id)
			continue
		}
		msg, err := c.await(ctx, cc.id, cc.ch, cc.start)
		if err != nil {
			firstErr = err
			continue
		}
		rb, ok := msg.(*netproto.RefreshBatch)
		if !ok || len(rb.Items) != cc.n {
			firstErr = fmt.Errorf("client: malformed SubscribeMulti response")
			netproto.Release(msg)
			continue
		}
		netproto.Release(rb)
		c.noteSubscribed(keys[cc.off : cc.off+cc.n]...)
	}
	return firstErr
}

// Unsubscribe withdraws interest and drops the local entry.
func (c *Client) Unsubscribe(key int) error {
	return c.UnsubscribeCtx(context.Background(), key)
}

// UnsubscribeCtx is Unsubscribe bounded by ctx. The request is
// fire-and-forget; ctx bounds only the (rare) wait for send-queue space.
// During an outage, with reconnection enabled, removing the key from the
// replay set is the whole job — the server side of the subscription died
// with the stream — so the call succeeds without touching the network.
func (c *Client) UnsubscribeCtx(ctx context.Context, key int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.store.Drop(key)
	delete(c.subs, key)
	delete(c.tags, key)
	if c.down && c.policy.Enabled {
		c.mu.Unlock()
		return nil
	}
	if c.down {
		err := c.closeReasonLocked()
		c.mu.Unlock()
		return err
	}
	s := c.sess
	c.mu.Unlock()
	select {
	case s.sendq <- &netproto.Unsubscribe{Key: int64(key)}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-s.dead:
		if c.policy.Enabled {
			return nil
		}
		return c.closeReason()
	}
}

// Get returns the locally cached approximation. With Config.StaleReads set
// and the connection down, the answer is the last-known interval, widened
// by Config.StaleWidthGrowth for the age of the outage; see GetApprox for
// the variant that reports the degradation explicitly.
func (c *Client) Get(key int) (interval.Interval, bool) {
	a, ok := c.approx(key)
	return a.Interval, ok
}

// GetCtx is Get with the context convention of the rest of API v1. The
// lookup is purely local and never blocks; ctx is consulted only so a
// cancelled call chain reads as not-found instead of serving a value its
// caller no longer wants.
func (c *Client) GetCtx(ctx context.Context, key int) (interval.Interval, bool) {
	if ctx.Err() != nil {
		return interval.Interval{}, false
	}
	return c.Get(key)
}

// GetApprox is Get with the degradation status made explicit: with
// Config.StaleReads enabled and the connection down, the answer is the
// last-known approximation flagged Stale, its width grown by
// Config.StaleWidthGrowth for the Age of the outage. While connected (or
// without StaleReads) the answer is the live local entry with Stale false.
// The ctx convention matches GetCtx: a done context reads as not-found.
func (c *Client) GetApprox(ctx context.Context, key int) (Approx, bool) {
	if ctx.Err() != nil {
		return Approx{}, false
	}
	return c.approx(key)
}

// approx serves one local read under the stale-read policy. The interval
// widens symmetrically: without observations the source may have drifted
// either way, so the bound loosens but keeps its claim to contain the true
// value under the configured drift model.
func (c *Client) approx(key int) (Approx, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	iv, ok := c.store.Get(key)
	if !ok {
		return Approx{}, false
	}
	if !c.staleReads || c.downSince.IsZero() {
		return Approx{Interval: iv}, true
	}
	age := time.Since(c.downSince)
	if c.staleGrowth > 0 {
		half := c.staleGrowth * age.Seconds() / 2
		iv.Lo -= half
		iv.Hi += half
	}
	return Approx{Interval: iv, Stale: true, Age: age}, true
}

// ReadExact fetches the exact value of key from the server — a
// query-initiated refresh. The accompanying fresh interval is installed
// locally.
func (c *Client) ReadExact(key int) (float64, error) {
	return c.ReadExactCtx(context.Background(), key)
}

// ReadExactCtx is ReadExact bounded by ctx: an already-done context fails
// before any frame is written, and cancellation mid-call frees the
// correlation slot immediately (a late response is applied as unsolicited
// traffic).
func (c *Client) ReadExactCtx(ctx context.Context, key int) (float64, error) {
	m := netproto.GetRead()
	m.Key = int64(key)
	msg, err := c.call(ctx, m)
	if err != nil {
		return 0, err
	}
	r, ok := msg.(*netproto.Refresh)
	if !ok {
		netproto.Release(msg)
		return 0, fmt.Errorf("client: malformed Read response %T", msg)
	}
	v := r.Value
	netproto.Release(r)
	c.mu.Lock()
	c.qir++
	c.mu.Unlock()
	return v, nil
}

// multiCall tracks one in-flight chunk of a multi-key request.
type multiCall struct {
	id     uint64
	ch     chan callResult
	start  time.Time
	off, n int
}

// startMulti pipelines a multi-key request as MaxBatch-sized chunks, issuing
// every chunk before awaiting any: the round-trip cost is one RTT however
// many chunks the key set spans. build turns one chunk of keys into the
// request message (whose ownership passes to the writer).
func (c *Client) startMulti(ctx context.Context, keys []int, build func(chunk []int) netproto.Message) ([]multiCall, error) {
	max := int(c.maxBatch.Load())
	var calls []multiCall
	for off := 0; off < len(keys); off += max {
		end := off + max
		if end > len(keys) {
			end = len(keys)
		}
		id, ch, start, err := c.startCall(ctx, build(keys[off:end]))
		if err != nil {
			// Abandon the chunks already in flight: the caller gets the
			// error without awaiting them, so free their slots here.
			for _, cc := range calls {
				c.abandon(cc.id)
			}
			return nil, err
		}
		calls = append(calls, multiCall{id: id, ch: ch, start: start, off: off, n: end - off})
	}
	return calls, nil
}

// ReadMulti fetches the exact values of all keys — query-initiated
// refreshes — in one pipelined round trip, installing the accompanying
// fresh intervals. The result is in keys order. On a v1 connection it falls
// back to sequential ReadExact calls, stopping at the first error.
func (c *Client) ReadMulti(keys []int) ([]float64, error) {
	return c.ReadMultiCtx(context.Background(), keys)
}

// ReadMultiCtx is ReadMulti bounded by ctx: an already-done context fails
// before any frame is written, and cancellation mid-flight abandons every
// outstanding chunk (their correlation slots are freed; late responses are
// applied as unsolicited traffic).
func (c *Client) ReadMultiCtx(ctx context.Context, keys []int) ([]float64, error) {
	if len(keys) == 0 {
		return nil, ctx.Err()
	}
	if c.proto.Load() < netproto.Version2 {
		out := make([]float64, len(keys))
		for i, k := range keys {
			v, err := c.ReadExactCtx(ctx, k)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	calls, err := c.startMulti(ctx, keys, func(chunk []int) netproto.Message {
		m := netproto.GetReadMulti()
		for _, k := range chunk {
			m.Keys = append(m.Keys, int64(k))
		}
		return m
	})
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(keys))
	fetched := 0
	var firstErr error
	for _, cc := range calls {
		if firstErr != nil {
			// Fail fast: abandon the remaining chunks instead of awaiting
			// each in turn (their slots are freed now; late responses are
			// applied as unsolicited traffic).
			c.abandon(cc.id)
			continue
		}
		msg, err := c.await(ctx, cc.id, cc.ch, cc.start)
		if err != nil {
			firstErr = err
			continue
		}
		rb, ok := msg.(*netproto.RefreshBatch)
		if !ok || len(rb.Items) != cc.n {
			firstErr = fmt.Errorf("client: malformed ReadMulti response")
			netproto.Release(msg)
			continue
		}
		for j, it := range rb.Items {
			out[cc.off+j] = it.Value
		}
		netproto.Release(rb)
		fetched += cc.n
	}
	c.mu.Lock()
	c.qir += fetched
	c.mu.Unlock()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// Ping round-trips a liveness probe.
func (c *Client) Ping() error {
	return c.PingCtx(context.Background())
}

// PingCtx is Ping bounded by ctx.
func (c *Client) PingCtx(ctx context.Context) error {
	_, err := c.call(ctx, &netproto.Ping{})
	return err
}

// Query executes a bounded-aggregate query against the local cache,
// fetching exact values from the server as needed to meet q.Delta. On a v2
// connection, all keys needing refinement within a fetch round are read with
// one ReadMulti (SUM and AVG always need exactly one round), so the
// round-trip count does not grow with the refresh-set size; on v1 the
// sequential paper-minimal refinement runs unchanged (batching the extreme
// aggregates' rounds would over-fetch with no round trips saved). It
// returns the bounding answer and any network error encountered while
// fetching; after the first fetch error no further fetches are issued.
func (c *Client) Query(q workload.Query) (query.Answer, error) {
	return c.QueryCtx(context.Background(), q)
}

// QueryCtx is Query bounded by ctx. Cancellation is honored between
// refinement rounds as well as inside each fetch: a cancelled MAX/MIN query
// stops mid-ramp instead of running its remaining rounds against a context
// its caller has abandoned.
func (c *Client) QueryCtx(ctx context.Context, q workload.Query) (query.Answer, error) {
	var fetchErr error
	get := func(key int) (interval.Interval, bool) { return c.Get(key) }
	var ans query.Answer
	var err error
	if c.proto.Load() < netproto.Version2 {
		ans, err = query.ExecuteCtx(ctx, q, get, func(key int) float64 {
			if fetchErr != nil {
				// Short-circuit: a failed connection would otherwise be
				// retried once per remaining key.
				return 0
			}
			v, ferr := c.ReadExactCtx(ctx, key)
			if ferr != nil {
				fetchErr = ferr
				return 0
			}
			return v
		})
	} else {
		ans, err = query.ExecuteBatchRampCtx(ctx, q, get, func(keys []int) []float64 {
			if fetchErr != nil {
				// Short-circuit: a failed connection would otherwise be
				// retried once per remaining fetch round.
				return make([]float64, len(keys))
			}
			vals, ferr := c.ReadMultiCtx(ctx, keys)
			if ferr != nil {
				fetchErr = ferr
				return make([]float64, len(keys))
			}
			return vals
		}, c.rampFor())
	}
	if fetchErr != nil {
		return query.Answer{}, fetchErr
	}
	if err != nil {
		return query.Answer{}, err
	}
	return ans, nil
}

// Watch opens a streaming subscription over keys: the handle's Updates
// channel delivers every refresh the client applies for them — the initial
// approximations, pushed value-initiated refreshes, and the intervals
// accompanying exact reads — as Update values. See WatchCtx.
func (c *Client) Watch(keys ...int) (*watch.Watch, error) {
	return c.WatchCtx(context.Background(), keys...)
}

// WatchCtx is Watch with ctx bounding the initial subscription round trip.
//
// The stream applies per-key latest-wins coalescing when the consumer falls
// behind — mirroring the server's push merge buffer — so a slow consumer
// never stalls the connection's read loop and never observes a key's state
// older than the last one it was shown. Close detaches the stream (it does
// not unsubscribe the keys: the local cache keeps receiving their pushes);
// if the connection dies the stream ends and Err reports why. Watching a
// key the server does not host fails with an error matching ErrUnknownKey
// on connections that negotiated protocol v3; older servers report only a
// generic *ServerError.
func (c *Client) WatchCtx(ctx context.Context, keys ...int) (*watch.Watch, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("client: watch of no keys")
	}
	ks := append([]int(nil), keys...) // detach from the caller's backing array
	var w *watch.Watch
	w = watch.New(func(*watch.Watch) { c.unwatch(w, ks) })
	// Register before subscribing so the initial refreshes — and any push
	// racing them — are observed from the first frame on.
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		w.Close()
		return nil, c.closeReason()
	}
	c.watchers.Add(w, ks)
	c.mu.Unlock()
	if err := c.SubscribeMultiCtx(ctx, ks); err != nil {
		w.Close()
		return nil, err
	}
	return w, nil
}

// unwatch removes w from the registry entries of its keys.
func (c *Client) unwatch(w *watch.Watch, keys []int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.watchers.Remove(w, keys)
}

// WatchTagged is WatchTaggedCtx with a background context.
func (c *Client) WatchTagged(tag uint64, keys ...int) (*watch.Watch, error) {
	return c.WatchTaggedCtx(context.Background(), tag, keys...)
}

// WatchTaggedCtx is WatchCtx with a caller-chosen fan-out tag stamped on
// the keys' subscriptions: every push the server sends for them carries the
// tag back (Stats.TaggedPushes counts arrivals), so multiplexing consumers
// can attribute refresh traffic to the watch that caused it without a
// client-side reverse index. Tags ride the subscription, not the watch:
// they survive the watch's Close (the subscription does too) and are
// re-stamped on the replacement connection after a reconnect. A zero tag
// degrades to a plain WatchCtx. Tags need protocol v4; on older connections
// the call fails with an error matching ErrQueryUnsupported.
func (c *Client) WatchTaggedCtx(ctx context.Context, tag uint64, keys ...int) (*watch.Watch, error) {
	if tag == 0 {
		return c.WatchCtx(ctx, keys...)
	}
	if len(keys) == 0 {
		return nil, fmt.Errorf("client: watch of no keys")
	}
	if c.proto.Load() < netproto.Version4 {
		return nil, fmt.Errorf("client: tagged watch needs protocol v4, negotiated v%d: %w", c.Proto(), aperrs.ErrQueryUnsupported)
	}
	ks := append([]int(nil), keys...)
	var w *watch.Watch
	w = watch.New(func(*watch.Watch) { c.unwatch(w, ks) })
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		w.Close()
		return nil, c.closeReason()
	}
	c.watchers.Add(w, ks)
	c.mu.Unlock()
	// Pipelined tagged subscribes: SubscribeMulti carries no tags, so each
	// key goes out as its own Subscribe frame, all in flight together.
	calls := make([]multiCall, 0, len(ks))
	var firstErr error
	for _, k := range ks {
		id, ch, start, err := c.startCall(ctx, &netproto.Subscribe{Key: int64(k), Tag: tag})
		if err != nil {
			firstErr = err
			break
		}
		calls = append(calls, multiCall{id: id, ch: ch, start: start})
	}
	for _, cc := range calls {
		if firstErr != nil {
			c.abandon(cc.id)
			continue
		}
		msg, err := c.await(ctx, cc.id, cc.ch, cc.start)
		if err != nil {
			firstErr = err
			continue
		}
		netproto.Release(msg)
	}
	if firstErr != nil {
		w.Close()
		return nil, firstErr
	}
	c.noteSubscribed(ks...)
	c.mu.Lock()
	for _, k := range ks {
		c.tags[k] = tag
	}
	c.mu.Unlock()
	return w, nil
}

// queryReg is the client-side desired state of one standing continuous
// query: enough to re-register it under the same QID after a reconnect,
// plus the watch its QueryUpdate stream feeds.
type queryReg struct {
	qid   uint64
	kind  workload.AggKind
	delta float64
	keys  []int
	w     *watch.Watch
}

// registerMsg builds the wire registration for the query.
func (q *queryReg) registerMsg() *netproto.RegisterQuery {
	m := &netproto.RegisterQuery{QID: q.qid, Kind: netproto.AggKind(q.kind), Delta: q.delta, Keys: make([]int64, len(q.keys))}
	for i, k := range q.keys {
		m.Keys[i] = int64(k)
	}
	return m
}

// WatchQuery is WatchQueryCtx with a background context.
func (c *Client) WatchQuery(kind workload.AggKind, delta float64, keys ...int) (*watch.Watch, error) {
	return c.WatchQueryCtx(context.Background(), kind, delta, keys...)
}

// WatchQueryCtx registers a standing continuous query — a bounded aggregate
// (SUM/MAX/MIN/AVG) over keys with precision budget delta — and returns a
// watch streaming its answer: the server maintains the aggregate
// incrementally off the push path and sends an update only when the answer
// interval actually changes, so a standing query costs a fraction of the
// refresh traffic of polling Query in a loop. Each Update carries the
// answer interval (guaranteed to contain the true aggregate, width at most
// delta) and the server's center estimate in Value; Update.Key is the
// query's internal handle, not a source key. ctx bounds the registration
// round trip.
//
// Close withdraws the registration from the server. Across a reconnect the
// registration is replayed automatically; if the replacement peer
// negotiates below protocol v4 the watch fails with an error matching
// ErrQueryUnsupported (plain watches and reads keep working), which is also
// the immediate error when this connection is below v4.
func (c *Client) WatchQueryCtx(ctx context.Context, kind workload.AggKind, delta float64, keys ...int) (*watch.Watch, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("client: query watch of no keys")
	}
	if delta < 0 || math.IsNaN(delta) || math.IsInf(delta, 1) {
		return nil, fmt.Errorf("client: query delta %g outside [0, +Inf)", delta)
	}
	if c.proto.Load() < netproto.Version4 {
		return nil, fmt.Errorf("client: continuous query needs protocol v4, negotiated v%d: %w", c.Proto(), aperrs.ErrQueryUnsupported)
	}
	q := &queryReg{kind: kind, delta: delta, keys: append([]int(nil), keys...)}
	q.w = watch.New(func(*watch.Watch) { c.unwatchQuery(q) })
	// Publish the registration before the call so the ack's initial answer
	// — and any push racing it — reaches the watch from the first frame on.
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		q.w.Close()
		return nil, c.closeReason()
	}
	c.nextQID++
	q.qid = c.nextQID
	c.queries[q.qid] = q
	c.mu.Unlock()
	msg, err := c.call(ctx, q.registerMsg())
	if err != nil {
		q.w.Close()
		return nil, err
	}
	if _, ok := msg.(*netproto.QueryUpdate); !ok {
		netproto.Release(msg)
		q.w.Close()
		return nil, fmt.Errorf("client: malformed RegisterQuery response %T", msg)
	}
	netproto.Release(msg)
	return q.w, nil
}

// unwatchQuery is the query watch's unregister hook: it removes the
// desired-state entry and withdraws the server-side registration
// (fire-and-forget, like Unsubscribe). During an outage the registration
// died with the stream, so removing it from the replay set is the whole
// job.
func (c *Client) unwatchQuery(q *queryReg) {
	c.mu.Lock()
	if c.queries[q.qid] != q {
		// Already detached (teardown, downgrade, or a replaced entry).
		c.mu.Unlock()
		return
	}
	delete(c.queries, q.qid)
	if c.closed || c.down {
		c.mu.Unlock()
		return
	}
	s := c.sess
	c.mu.Unlock()
	select {
	case s.sendq <- &netproto.UnregisterQuery{QID: q.qid}:
	case <-s.dead:
	}
}

// Stats snapshots the client's counters.
func (c *Client) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		ValueRefreshes: c.vir,
		QueryRefreshes: c.qir,
		FramesSent:     int(c.framesSent.Load()),
		FramesReceived: int(c.framesRecv.Load()),
		SmoothedRTT:    time.Duration(c.rttEWMA.Load()),
		ServerCqrCost:  time.Duration(c.srvCqrCost.Load()),
		Reconnects:     c.reconnects,
		TaggedPushes:   c.tagged,
		Queries:        len(c.queries),
		Degraded:       !c.downSince.IsZero(),
		Cache:          c.store.Stats(),
	}
}

// Close tears down the connection, cancels any reconnection in progress,
// and waits for the client's goroutines.
func (c *Client) Close() error {
	c.mu.Lock()
	already := c.closed
	c.closed = true
	c.byUser = true
	s := c.sess
	failed := c.watchers.Detach()
	failed = append(failed, c.detachQueriesLocked()...)
	c.mu.Unlock()
	c.closeOnce.Do(func() { close(c.closeCh) })
	for _, w := range failed {
		w.Fail(ErrClosed)
	}
	err := s.conn.Close()
	<-s.dead
	<-s.writeDone
	c.redialWG.Wait()
	if already {
		return nil
	}
	return err
}
