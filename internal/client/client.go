// Package client implements the cache side of the networked deployment: it
// maintains a local store of interval approximations fed by server pushes
// (value-initiated refreshes), fetches exact values on demand
// (query-initiated refreshes), and executes bounded-aggregate queries
// against the combination, mirroring the simulator's cache but over TCP.
//
// The client core is pipelined: requests are enqueued onto a send queue and
// matched to responses through a correlation table keyed by request ID, so
// any number of calls may be in flight on the one connection at a time. A
// dedicated writer goroutine drains the queue, coalescing backed-up requests
// into Batch frames (protocol v2), encoding the whole drain into one reused
// buffer, and flushing it with a single write. Queries collect every key
// needing refinement in one pass and fetch them with a single ReadMulti
// instead of one blocking round trip per key.
//
// The wire path is allocation-free in steady state: outbound requests and
// inbound responses travel as pooled netproto messages (released by the
// writer after encoding and by callers after reading), the read loop decodes
// through a reusing netproto.Decoder, and per-call timers and result
// channels are pooled.
//
// The protocol version is negotiated at Dial time: the client offers v2 with
// a Hello frame and falls back to v1 single-message frames if the server
// declines, so it interoperates with v1-pinned servers.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"apcache/internal/cache"
	"apcache/internal/interval"
	"apcache/internal/netproto"
	"apcache/internal/query"
	"apcache/internal/workload"
)

// ErrClosed is returned by operations on a closed client.
var ErrClosed = errors.New("client: closed")

// ServerError is a request failure reported by the server, as opposed to a
// transport failure. The Dial handshake uses the distinction to fall back to
// protocol v1 when a server declines Hello.
type ServerError struct{ Msg string }

func (e *ServerError) Error() string { return "client: server error: " + e.Msg }

// Stats counts the refreshes and frames a client has processed.
type Stats struct {
	// ValueRefreshes counts server pushes (value-initiated).
	ValueRefreshes int
	// QueryRefreshes counts exact reads (query-initiated).
	QueryRefreshes int
	// FramesSent and FramesReceived count wire frames in each direction; a
	// Batch or RefreshBatch is one frame however many messages it carries.
	FramesSent, FramesReceived int
	// Cache snapshots the local store's counters.
	Cache cache.Stats
}

// Config parameterizes DialConfig.
type Config struct {
	// CacheSize caps the local store of interval approximations. Required
	// (must be positive).
	CacheSize int
	// MaxBatch caps the messages the client coalesces into one Batch frame
	// and the keys per ReadMulti/SubscribeMulti chunk; it is also offered
	// to the server as the largest batch the client will accept. 0 selects
	// 128; values are clamped to [1, netproto.MaxBatchItems].
	MaxBatch int
	// ProtoVersion pins the protocol: 0 or netproto.Version2 offer v2 with
	// a Hello at Dial time (falling back to v1 if the server declines);
	// netproto.Version1 skips the handshake and speaks v1 only.
	ProtoVersion int
	// Timeout is the per-request timeout (default 10s).
	Timeout time.Duration
	// RampFactor sets the geometric growth of the batched MAX/MIN
	// refinement rounds (see query.ExecuteBatchRamp): round r fetches
	// ceil(RampFactor^r) top candidates, so larger factors spend fewer
	// round trips and more over-fetching. 0 selects query.DefaultRamp (2);
	// 1 reproduces the paper's minimal one-key-per-round elimination.
	// Values below 1 (other than 0), NaN, and +Inf are rejected by
	// DialConfig.
	RampFactor float64
}

// callResult resolves one in-flight request: the matching response message,
// or the error the server reported for it.
type callResult struct {
	msg netproto.Message
	err error
}

// Client is a networked approximate cache. All methods are safe for
// concurrent use.
type Client struct {
	conn net.Conn

	// mu guards the local store, the correlation table, and the counters.
	// It is never held across a network operation.
	mu      sync.Mutex
	store   *cache.Cache
	pending map[uint64]chan callResult
	nextID  uint64
	closed  bool
	vir     int
	qir     int
	readErr error
	timeout time.Duration
	ramp    float64 // MAX/MIN refinement ramp factor, fixed at Dial time

	// sendq feeds the writer goroutine; readDone/writeDone close when the
	// respective loop exits (readDone doubles as the connection-dead
	// signal for enqueuers).
	sendq     chan netproto.Message
	readDone  chan struct{}
	writeDone chan struct{}

	// runBuf is the writer goroutine's scratch for collecting batchable
	// runs; only writeLoop touches it.
	runBuf []netproto.Message

	// proto is the negotiated protocol version, maxBatch the negotiated
	// batch limit. Written during the Dial handshake, read by the writer
	// goroutine and the multi-key paths, hence atomics.
	proto    atomic.Int32
	maxBatch atomic.Int32

	framesSent atomic.Int64
	framesRecv atomic.Int64
}

// Dial connects to a server and returns a cache of the given capacity,
// negotiating the batched v2 protocol when the server supports it.
func Dial(addr string, cacheSize int) (*Client, error) {
	return DialConfig(addr, Config{CacheSize: cacheSize})
}

// DialConfig connects to a server with explicit protocol knobs.
func DialConfig(addr string, cfg Config) (*Client, error) {
	maxBatch := cfg.MaxBatch
	if maxBatch <= 0 {
		maxBatch = 128
	}
	if maxBatch > netproto.MaxBatchItems {
		maxBatch = netproto.MaxBatchItems
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	ramp := cfg.RampFactor
	if ramp == 0 {
		ramp = query.DefaultRamp
	}
	if ramp < 1 || math.IsNaN(ramp) || math.IsInf(ramp, 1) {
		return nil, fmt.Errorf("client: ramp factor %g outside [1, +Inf)", ramp)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	c := &Client{
		conn:      conn,
		store:     cache.New(cfg.CacheSize),
		pending:   make(map[uint64]chan callResult),
		timeout:   timeout,
		ramp:      ramp,
		sendq:     make(chan netproto.Message, 256),
		readDone:  make(chan struct{}),
		writeDone: make(chan struct{}),
	}
	c.proto.Store(netproto.Version1)
	c.maxBatch.Store(int32(maxBatch))
	go c.readLoop()
	go c.writeLoop()
	if cfg.ProtoVersion != netproto.Version1 {
		if err := c.handshake(maxBatch); err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

// handshake offers protocol v2. A ServerError reply means the server
// declined — the client stays on v1 frames; transport failures abort.
func (c *Client) handshake(maxBatch int) error {
	msg, err := c.call(&netproto.Hello{Version: netproto.Version2, MaxBatch: uint16(maxBatch)})
	if err != nil {
		var se *ServerError
		if errors.As(err, &se) {
			return nil // declined: v1 fallback
		}
		return fmt.Errorf("client: handshake: %w", err)
	}
	ack, ok := msg.(*netproto.HelloAck)
	if !ok || ack.Version < netproto.Version2 {
		return nil // incoherent ack: stay on v1
	}
	limit := int(ack.MaxBatch)
	if limit < 1 || limit > maxBatch {
		limit = maxBatch
	}
	c.maxBatch.Store(int32(limit))
	c.proto.Store(netproto.Version2)
	return nil
}

// Proto returns the negotiated protocol version (netproto.Version1 or
// netproto.Version2).
func (c *Client) Proto() int { return int(c.proto.Load()) }

// SetTimeout adjusts the per-request timeout (default 10s).
func (c *Client) SetTimeout(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.timeout = d
}

// readLoop dispatches inbound frames: responses to waiting requests, pushes
// into the local store. It owns a reusing netproto.Decoder, so handleMsg
// must never hand a decoded message itself to a waiter — waiters get copies.
func (c *Client) readLoop() {
	defer close(c.readDone)
	d := netproto.NewDecoder(bufio.NewReader(c.conn))
	for {
		msg, err := d.Decode()
		if err != nil {
			c.mu.Lock()
			c.readErr = err
			c.closed = true
			for _, ch := range c.pending {
				close(ch)
			}
			c.pending = map[uint64]chan callResult{}
			c.mu.Unlock()
			return
		}
		c.framesRecv.Add(1)
		c.handleMsg(msg)
	}
}

// handleMsg routes one inbound message. Batch frames recurse one level (the
// decoder rejects deeper nesting). msg is owned by the read loop's Decoder
// and valid only for this call: a waiting request gets a copy — pooled for
// the hot response types, released by the awaiting caller — never the
// decoder's box. The push path (no waiter) installs and copies nothing.
func (c *Client) handleMsg(msg netproto.Message) {
	switch m := msg.(type) {
	case *netproto.Batch:
		for _, sub := range m.Msgs {
			c.handleMsg(sub)
		}
	case *netproto.Refresh:
		c.mu.Lock()
		c.installLocked(m.Key, m.Lo, m.Hi, m.OriginalWidth)
		if m.Kind == netproto.KindValueInitiated {
			c.vir++
		}
		ch := c.takeLocked(m.ID)
		c.mu.Unlock()
		if ch != nil {
			cp := netproto.GetRefresh()
			*cp = *m
			ch <- callResult{msg: cp}
		}
	case *netproto.RefreshBatch:
		c.mu.Lock()
		for _, it := range m.Items {
			c.installLocked(it.Key, it.Lo, it.Hi, it.OriginalWidth)
			if it.Kind == netproto.KindValueInitiated {
				c.vir++
			}
		}
		ch := c.takeLocked(m.ID)
		c.mu.Unlock()
		if ch != nil {
			cp := netproto.GetRefreshBatch()
			cp.ID = m.ID
			cp.Items = append(cp.Items[:0], m.Items...)
			ch <- callResult{msg: cp}
		}
	case *netproto.Pong:
		c.resolve(m.ID, callResult{msg: &netproto.Pong{ID: m.ID}})
	case *netproto.HelloAck:
		cp := *m
		c.resolve(m.ID, callResult{msg: &cp})
	case *netproto.ErrorMsg:
		c.resolve(m.ID, callResult{err: &ServerError{Msg: m.Msg}})
	}
}

// takeLocked removes and returns the waiter for id, nil if none (push
// traffic uses ID 0; a late response whose call timed out has no waiter but
// its interval is still installed). Caller holds mu.
func (c *Client) takeLocked(id uint64) chan callResult {
	if id == 0 {
		return nil
	}
	ch, ok := c.pending[id]
	if !ok {
		return nil
	}
	delete(c.pending, id)
	return ch
}

// resolve hands a result to the waiter for id, if any.
func (c *Client) resolve(id uint64, res callResult) {
	c.mu.Lock()
	ch := c.takeLocked(id)
	c.mu.Unlock()
	if ch != nil {
		ch <- res
	}
}

// installLocked puts a refresh's interval into the local store. Caller
// holds mu.
func (c *Client) installLocked(key int64, lo, hi, originalWidth float64) {
	c.store.Put(int(key), interval.Interval{Lo: lo, Hi: hi}, originalWidth)
}

// writeLoop drains the send queue onto the wire. Backed-up simple requests
// are coalesced into one Batch frame on v2 connections; multi-key requests
// are already batches and go out as their own frames. Either way one drain
// is encoded into one pooled buffer and flushed with a single write, so
// concurrent callers share syscalls.
func (c *Client) writeLoop() {
	defer close(c.writeDone)
	bp := netproto.GetBuf()
	defer netproto.PutBuf(bp)
	var drained []netproto.Message
	for {
		var first netproto.Message
		select {
		case first = <-c.sendq:
		case <-c.readDone:
			return
		}
		drained = append(drained[:0], first)
		max := int(c.maxBatch.Load())
	drain:
		for len(drained) < max {
			select {
			case m := <-c.sendq:
				drained = append(drained, m)
			default:
				break drain
			}
		}
		buf, err := c.appendFrames((*bp)[:0], drained)
		*bp = buf
		if err != nil {
			c.conn.Close() // wakes readLoop, which fails the pending calls
			return
		}
		if _, err := c.conn.Write(buf); err != nil {
			c.conn.Close()
			return
		}
		if cap(buf) > 1<<20 {
			// Don't pin one exceptional drain's high-water mark for the
			// connection's lifetime.
			*bp = nil
		}
	}
}

// batchable reports whether m may ride inside a Batch frame (multi-key and
// handshake messages are frames of their own).
func batchable(m netproto.Message) bool {
	switch m.(type) {
	case *netproto.Subscribe, *netproto.Unsubscribe, *netproto.Read, *netproto.Ping:
		return true
	default:
		return false
	}
}

// appendFrames encodes a drained run into buf, preserving order: on v2,
// consecutive batchable messages collapse into one Batch frame. Every
// message is released back to its pool once encoded (the writer owns
// enqueued messages outright).
func (c *Client) appendFrames(buf []byte, msgs []netproto.Message) ([]byte, error) {
	var err error
	if c.proto.Load() < netproto.Version2 || len(msgs) == 1 {
		for _, m := range msgs {
			buf, err = netproto.AppendFrame(buf, m)
			netproto.Release(m)
			if err != nil {
				return buf, err
			}
			c.framesSent.Add(1)
		}
		return buf, nil
	}
	run := c.runBuf[:0]
	flushRun := func() error {
		var err error
		switch len(run) {
		case 0:
			return nil
		case 1:
			buf, err = netproto.AppendFrame(buf, run[0])
			netproto.Release(run[0])
		default:
			// Wrap the run in a pooled Batch; releasing it releases the
			// sub-messages too.
			wrap := netproto.GetBatch()
			wrap.Msgs = append(wrap.Msgs[:0], run...)
			buf, err = netproto.AppendFrame(buf, wrap)
			netproto.Release(wrap)
		}
		run = run[:0]
		if err == nil {
			c.framesSent.Add(1)
		}
		return err
	}
	for _, m := range msgs {
		if batchable(m) {
			run = append(run, m)
			continue
		}
		if err := flushRun(); err != nil {
			c.runBuf = run
			return buf, err
		}
		buf, err = netproto.AppendFrame(buf, m)
		netproto.Release(m)
		if err != nil {
			c.runBuf = run
			return buf, err
		}
		c.framesSent.Add(1)
	}
	err = flushRun()
	c.runBuf = run
	return buf, err
}

// stampID assigns the request ID on an outbound request message.
func stampID(m netproto.Message, id uint64) {
	switch v := m.(type) {
	case *netproto.Read:
		v.ID = id
	case *netproto.ReadMulti:
		v.ID = id
	case *netproto.Subscribe:
		v.ID = id
	case *netproto.SubscribeMulti:
		v.ID = id
	case *netproto.Ping:
		v.ID = id
	case *netproto.Hello:
		v.ID = id
	default:
		panic(fmt.Sprintf("client: request %T cannot carry an ID", m))
	}
}

// resultChanPool recycles the one-shot response channels. A channel is
// returned to the pool only on the success path — after its single send was
// received — so a pooled channel can never see a stray late send.
var resultChanPool = sync.Pool{New: func() any { return make(chan callResult, 1) }}

// timerPool recycles await's timeout timers. Pooled timers are stopped;
// Reset is safe without draining under Go 1.23+ timer semantics.
var timerPool sync.Pool

// startCall registers a waiter, stamps m with a fresh request ID, and
// enqueues it without blocking on the network: the pipelined half of a
// call. Ownership of m passes to the writer goroutine, which releases
// pooled messages after encoding — the caller must not touch m afterwards.
func (c *Client) startCall(m netproto.Message) (uint64, chan callResult, time.Duration, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0, nil, 0, ErrClosed
	}
	c.nextID++
	id := c.nextID
	ch := resultChanPool.Get().(chan callResult)
	c.pending[id] = ch
	timeout := c.timeout
	c.mu.Unlock()
	stampID(m, id)

	select {
	case c.sendq <- m:
		return id, ch, timeout, nil
	case <-c.readDone:
		c.abandon(id)
		return 0, nil, 0, c.closeReason()
	}
}

// await blocks for a started call's response.
func (c *Client) await(id uint64, ch chan callResult, timeout time.Duration) (netproto.Message, error) {
	t, _ := timerPool.Get().(*time.Timer)
	if t == nil {
		t = time.NewTimer(timeout)
	} else {
		t.Reset(timeout)
	}
	select {
	case res, ok := <-ch:
		// Go 1.23+ timer semantics: receives after Stop block and Reset
		// discards stale fires, so no drain — it would deadlock when the
		// response races the expiry.
		t.Stop()
		timerPool.Put(t)
		if !ok {
			// Closed by the read loop's teardown; the channel is dead.
			return nil, c.closeReason()
		}
		resultChanPool.Put(ch)
		return res.msg, res.err
	case <-t.C:
		timerPool.Put(t)
		c.abandon(id)
		// The channel is not pooled: a late response may still send into it.
		return nil, fmt.Errorf("client: request timed out after %v", timeout)
	}
}

// abandon forgets a request that will no longer be awaited. A response
// arriving later is handled as unsolicited: its interval is still installed.
func (c *Client) abandon(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// call sends a request and waits for the matching response. Ownership of m
// passes to the writer; a returned hot-type response (Refresh/RefreshBatch)
// is a pooled copy the caller should Release once read.
func (c *Client) call(m netproto.Message) (netproto.Message, error) {
	id, ch, timeout, err := c.startCall(m)
	if err != nil {
		return nil, err
	}
	return c.await(id, ch, timeout)
}

func (c *Client) closeReason() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.readErr != nil {
		return fmt.Errorf("client: connection lost: %w", c.readErr)
	}
	return ErrClosed
}

// Subscribe registers interest in key; the initial approximation lands in
// the local store.
func (c *Client) Subscribe(key int) error {
	msg, err := c.call(&netproto.Subscribe{Key: int64(key)})
	if err != nil {
		return err
	}
	netproto.Release(msg)
	return nil
}

// SubscribeMulti registers interest in all keys with one request per
// MaxBatch chunk (all chunks in flight together), installing the initial
// approximations. On a v1 connection it falls back to sequential Subscribe
// calls, stopping at the first error.
func (c *Client) SubscribeMulti(keys []int) error {
	if len(keys) == 0 {
		return nil
	}
	if c.proto.Load() < netproto.Version2 {
		for _, k := range keys {
			if err := c.Subscribe(k); err != nil {
				return err
			}
		}
		return nil
	}
	calls, err := c.startMulti(keys, func(chunk []int) netproto.Message {
		ks := make([]int64, len(chunk))
		for i, k := range chunk {
			ks[i] = int64(k)
		}
		return &netproto.SubscribeMulti{Keys: ks}
	})
	if err != nil {
		return err
	}
	for _, cc := range calls {
		msg, err := c.await(cc.id, cc.ch, cc.timeout)
		if err != nil {
			return err
		}
		rb, ok := msg.(*netproto.RefreshBatch)
		if !ok || len(rb.Items) != cc.n {
			return fmt.Errorf("client: malformed SubscribeMulti response")
		}
		netproto.Release(rb)
	}
	return nil
}

// Unsubscribe withdraws interest and drops the local entry.
func (c *Client) Unsubscribe(key int) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.store.Drop(key)
	c.mu.Unlock()
	select {
	case c.sendq <- &netproto.Unsubscribe{Key: int64(key)}:
		return nil
	case <-c.readDone:
		return c.closeReason()
	}
}

// Get returns the locally cached approximation.
func (c *Client) Get(key int) (interval.Interval, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.store.Get(key)
}

// ReadExact fetches the exact value of key from the server — a
// query-initiated refresh. The accompanying fresh interval is installed
// locally.
func (c *Client) ReadExact(key int) (float64, error) {
	m := netproto.GetRead()
	m.Key = int64(key)
	msg, err := c.call(m)
	if err != nil {
		return 0, err
	}
	r, ok := msg.(*netproto.Refresh)
	if !ok {
		return 0, fmt.Errorf("client: malformed Read response %T", msg)
	}
	v := r.Value
	netproto.Release(r)
	c.mu.Lock()
	c.qir++
	c.mu.Unlock()
	return v, nil
}

// multiCall tracks one in-flight chunk of a multi-key request.
type multiCall struct {
	id      uint64
	ch      chan callResult
	timeout time.Duration
	off, n  int
}

// startMulti pipelines a multi-key request as MaxBatch-sized chunks, issuing
// every chunk before awaiting any: the round-trip cost is one RTT however
// many chunks the key set spans. build turns one chunk of keys into the
// request message (whose ownership passes to the writer).
func (c *Client) startMulti(keys []int, build func(chunk []int) netproto.Message) ([]multiCall, error) {
	max := int(c.maxBatch.Load())
	var calls []multiCall
	for off := 0; off < len(keys); off += max {
		end := off + max
		if end > len(keys) {
			end = len(keys)
		}
		id, ch, timeout, err := c.startCall(build(keys[off:end]))
		if err != nil {
			return nil, err
		}
		calls = append(calls, multiCall{id: id, ch: ch, timeout: timeout, off: off, n: end - off})
	}
	return calls, nil
}

// ReadMulti fetches the exact values of all keys — query-initiated
// refreshes — in one pipelined round trip, installing the accompanying
// fresh intervals. The result is in keys order. On a v1 connection it falls
// back to sequential ReadExact calls, stopping at the first error.
func (c *Client) ReadMulti(keys []int) ([]float64, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	if c.proto.Load() < netproto.Version2 {
		out := make([]float64, len(keys))
		for i, k := range keys {
			v, err := c.ReadExact(k)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	calls, err := c.startMulti(keys, func(chunk []int) netproto.Message {
		m := netproto.GetReadMulti()
		for _, k := range chunk {
			m.Keys = append(m.Keys, int64(k))
		}
		return m
	})
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(keys))
	fetched := 0
	for _, cc := range calls {
		msg, err := c.await(cc.id, cc.ch, cc.timeout)
		if err != nil {
			return nil, err
		}
		rb, ok := msg.(*netproto.RefreshBatch)
		if !ok || len(rb.Items) != cc.n {
			return nil, fmt.Errorf("client: malformed ReadMulti response")
		}
		for j, it := range rb.Items {
			out[cc.off+j] = it.Value
		}
		netproto.Release(rb)
		fetched += cc.n
	}
	c.mu.Lock()
	c.qir += fetched
	c.mu.Unlock()
	return out, nil
}

// Ping round-trips a liveness probe.
func (c *Client) Ping() error {
	_, err := c.call(&netproto.Ping{})
	return err
}

// Query executes a bounded-aggregate query against the local cache,
// fetching exact values from the server as needed to meet q.Delta. On a v2
// connection, all keys needing refinement within a fetch round are read with
// one ReadMulti (SUM and AVG always need exactly one round), so the
// round-trip count does not grow with the refresh-set size; on v1 the
// sequential paper-minimal refinement runs unchanged (batching the extreme
// aggregates' rounds would over-fetch with no round trips saved). It
// returns the bounding answer and any network error encountered while
// fetching; after the first fetch error no further fetches are issued.
func (c *Client) Query(q workload.Query) (query.Answer, error) {
	var fetchErr error
	get := func(key int) (interval.Interval, bool) { return c.Get(key) }
	var ans query.Answer
	if c.proto.Load() < netproto.Version2 {
		ans = query.Execute(q, get, func(key int) float64 {
			if fetchErr != nil {
				// Short-circuit: a failed connection would otherwise be
				// retried once per remaining key.
				return 0
			}
			v, err := c.ReadExact(key)
			if err != nil {
				fetchErr = err
				return 0
			}
			return v
		})
	} else {
		ans = query.ExecuteBatchRamp(q, get, func(keys []int) []float64 {
			if fetchErr != nil {
				// Short-circuit: a failed connection would otherwise be
				// retried once per remaining fetch round.
				return make([]float64, len(keys))
			}
			vals, err := c.ReadMulti(keys)
			if err != nil {
				fetchErr = err
				return make([]float64, len(keys))
			}
			return vals
		}, c.ramp)
	}
	if fetchErr != nil {
		return query.Answer{}, fetchErr
	}
	return ans, nil
}

// Stats snapshots the client's counters.
func (c *Client) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		ValueRefreshes: c.vir,
		QueryRefreshes: c.qir,
		FramesSent:     int(c.framesSent.Load()),
		FramesReceived: int(c.framesRecv.Load()),
		Cache:          c.store.Stats(),
	}
}

// Close tears down the connection and waits for the client's goroutines.
func (c *Client) Close() error {
	c.mu.Lock()
	already := c.closed
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	<-c.readDone
	<-c.writeDone
	if already {
		return nil
	}
	return err
}
