// Package client implements the cache side of the networked deployment: it
// maintains a local store of interval approximations fed by server pushes
// (value-initiated refreshes), fetches exact values on demand
// (query-initiated refreshes), and executes bounded-aggregate queries
// against the combination, mirroring the simulator's cache but over TCP.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"apcache/internal/cache"
	"apcache/internal/interval"
	"apcache/internal/netproto"
	"apcache/internal/query"
	"apcache/internal/workload"
)

// ErrClosed is returned by operations on a closed client.
var ErrClosed = errors.New("client: closed")

// Stats counts the refreshes a client has processed.
type Stats struct {
	// ValueRefreshes counts server pushes (value-initiated).
	ValueRefreshes int
	// QueryRefreshes counts exact reads (query-initiated).
	QueryRefreshes int
	// Cache snapshots the local store's counters.
	Cache cache.Stats
}

// Client is a networked approximate cache. All methods are safe for
// concurrent use.
type Client struct {
	conn net.Conn

	// wmu serializes frame writes to conn: net.Conn permits concurrent
	// Write calls but may split a large buffer across several, so two
	// goroutines writing frames (a call racing an Unsubscribe) could
	// interleave partial frames and corrupt the stream. wmu is never held
	// together with mu.
	wmu sync.Mutex

	mu      sync.Mutex
	store   *cache.Cache
	pending map[uint64]chan *netproto.Refresh
	errs    map[uint64]chan string
	nextID  uint64
	closed  bool
	vir     int
	qir     int

	readErr  error
	readDone chan struct{}

	timeout time.Duration
}

// Dial connects to a server and returns a cache of the given capacity.
func Dial(addr string, cacheSize int) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	c := &Client{
		conn:     conn,
		store:    cache.New(cacheSize),
		pending:  make(map[uint64]chan *netproto.Refresh),
		errs:     make(map[uint64]chan string),
		readDone: make(chan struct{}),
		timeout:  10 * time.Second,
	}
	go c.readLoop()
	return c, nil
}

// SetTimeout adjusts the per-request timeout (default 10s).
func (c *Client) SetTimeout(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.timeout = d
}

// readLoop dispatches inbound frames: responses to waiting requests, pushes
// into the local store.
func (c *Client) readLoop() {
	defer close(c.readDone)
	r := bufio.NewReader(c.conn)
	for {
		msg, err := netproto.ReadMsg(r)
		if err != nil {
			c.mu.Lock()
			c.readErr = err
			c.closed = true
			for _, ch := range c.pending {
				close(ch)
			}
			for _, ch := range c.errs {
				close(ch)
			}
			c.pending = map[uint64]chan *netproto.Refresh{}
			c.errs = map[uint64]chan string{}
			c.mu.Unlock()
			return
		}
		switch m := msg.(type) {
		case *netproto.Refresh:
			c.mu.Lock()
			c.install(m)
			if m.Kind == netproto.KindValueInitiated {
				c.vir++
			}
			if ch, ok := c.pending[m.ID]; ok {
				delete(c.pending, m.ID)
				delete(c.errs, m.ID)
				c.mu.Unlock()
				ch <- m
				continue
			}
			c.mu.Unlock()
		case *netproto.ErrorMsg:
			c.mu.Lock()
			if ch, ok := c.errs[m.ID]; ok {
				delete(c.pending, m.ID)
				delete(c.errs, m.ID)
				c.mu.Unlock()
				ch <- m.Msg
				continue
			}
			c.mu.Unlock()
		case *netproto.Pong:
			c.mu.Lock()
			if ch, ok := c.pending[m.ID]; ok {
				delete(c.pending, m.ID)
				delete(c.errs, m.ID)
				c.mu.Unlock()
				ch <- nil
				continue
			}
			c.mu.Unlock()
		}
	}
}

// install puts a refresh's interval into the local store. Caller holds mu.
func (c *Client) install(m *netproto.Refresh) {
	c.store.Put(int(m.Key), interval.Interval{Lo: m.Lo, Hi: m.Hi}, m.OriginalWidth)
}

// call sends a request and waits for the matching Refresh/Pong.
func (c *Client) call(build func(id uint64) netproto.Message) (*netproto.Refresh, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	c.nextID++
	id := c.nextID
	ch := make(chan *netproto.Refresh, 1)
	ech := make(chan string, 1)
	c.pending[id] = ch
	c.errs[id] = ech
	timeout := c.timeout
	msg := build(id)
	c.mu.Unlock()

	if err := c.writeMsg(msg); err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		delete(c.errs, id)
		c.mu.Unlock()
		return nil, err
	}
	select {
	case r, ok := <-ch:
		if !ok {
			return nil, c.closeReason()
		}
		return r, nil
	case emsg, ok := <-ech:
		if !ok {
			return nil, c.closeReason()
		}
		return nil, fmt.Errorf("client: server error: %s", emsg)
	case <-time.After(timeout):
		c.mu.Lock()
		delete(c.pending, id)
		delete(c.errs, id)
		c.mu.Unlock()
		return nil, fmt.Errorf("client: request timed out after %v", timeout)
	}
}

func (c *Client) closeReason() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.readErr != nil {
		return fmt.Errorf("client: connection lost: %w", c.readErr)
	}
	return ErrClosed
}

// Subscribe registers interest in key; the initial approximation lands in
// the local store.
func (c *Client) Subscribe(key int) error {
	_, err := c.call(func(id uint64) netproto.Message {
		return &netproto.Subscribe{ID: id, Key: int64(key)}
	})
	return err
}

// Unsubscribe withdraws interest and drops the local entry.
func (c *Client) Unsubscribe(key int) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.store.Drop(key)
	c.mu.Unlock()
	return c.writeMsg(&netproto.Unsubscribe{Key: int64(key)})
}

// writeMsg frames and writes one message under the write lock.
func (c *Client) writeMsg(m netproto.Message) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return netproto.Write(c.conn, m)
}

// Get returns the locally cached approximation.
func (c *Client) Get(key int) (interval.Interval, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.store.Get(key)
}

// ReadExact fetches the exact value of key from the server — a
// query-initiated refresh. The accompanying fresh interval is installed
// locally.
func (c *Client) ReadExact(key int) (float64, error) {
	r, err := c.call(func(id uint64) netproto.Message {
		return &netproto.Read{ID: id, Key: int64(key)}
	})
	if err != nil {
		return 0, err
	}
	c.mu.Lock()
	c.qir++
	c.mu.Unlock()
	return r.Value, nil
}

// Ping round-trips a liveness probe.
func (c *Client) Ping() error {
	_, err := c.call(func(id uint64) netproto.Message {
		return &netproto.Ping{ID: id}
	})
	return err
}

// Query executes a bounded-aggregate query against the local cache,
// fetching exact values from the server as needed to meet q.Delta. It
// returns the bounding answer and any network error encountered while
// fetching.
func (c *Client) Query(q workload.Query) (query.Answer, error) {
	var fetchErr error
	ans := query.Execute(q,
		func(key int) (interval.Interval, bool) { return c.Get(key) },
		func(key int) float64 {
			v, err := c.ReadExact(key)
			if err != nil && fetchErr == nil {
				fetchErr = err
			}
			return v
		})
	if fetchErr != nil {
		return query.Answer{}, fetchErr
	}
	return ans, nil
}

// Stats snapshots the client's counters.
func (c *Client) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{ValueRefreshes: c.vir, QueryRefreshes: c.qir, Cache: c.store.Stats()}
}

// Close tears down the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	<-c.readDone
	return err
}
