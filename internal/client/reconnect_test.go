package client

// Edge cases of the fault-tolerant session layer: deterministic backoff
// bounds, Close racing an active redial loop, protocol renegotiation
// against a downgraded replacement server, degraded stale reads during an
// outage, redial exhaustion, and desired-state bookkeeping for keys
// unsubscribed while down. The happy-path restart scenario (full replay
// under 1k subscriptions) lives in the root chaos suite.

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"apcache/internal/aperrs"
	"apcache/internal/core"
	"apcache/internal/faultnet"
	"apcache/internal/netproto"
	"apcache/internal/server"
)

// expectedBound mirrors the documented backoff ceiling: min(MaxDelay,
// BaseDelay doubled attempt times), with the policy's defaulting rules.
func expectedBound(p ReconnectPolicy, attempt int) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = DefaultReconnectBase
	}
	ceil := p.MaxDelay
	if ceil <= 0 {
		ceil = DefaultReconnectCap
	}
	if ceil < base {
		ceil = base
	}
	bound := base
	for i := 0; i < attempt && bound < ceil; i++ {
		bound *= 2
	}
	if bound > ceil {
		bound = ceil
	}
	return bound
}

func TestBackoffDelayBounds(t *testing.T) {
	p := ReconnectPolicy{Enabled: true, BaseDelay: 10 * time.Millisecond, MaxDelay: 75 * time.Millisecond}
	for attempt := 0; attempt < 70; attempt++ {
		bound := expectedBound(p, attempt)
		if got := BackoffDelay(p, attempt, 1); got != bound {
			t.Fatalf("attempt %d: delay(r=1) = %v, want the full bound %v", attempt, got, bound)
		}
		if got := BackoffDelay(p, attempt, 0); got != 0 {
			t.Fatalf("attempt %d: delay(r=0) = %v, want 0 (full jitter reaches zero)", attempt, got)
		}
		if got := BackoffDelay(p, attempt, 0.5); got != bound/2 {
			t.Fatalf("attempt %d: delay(r=0.5) = %v, want %v", attempt, got, bound/2)
		}
	}
	// Far past any doubling horizon the bound is exactly the cap — no
	// overflow, no negative sleeps.
	if got := BackoffDelay(p, 1<<20, 1); got != 75*time.Millisecond {
		t.Fatalf("huge attempt: delay = %v, want the 75ms cap", got)
	}
	// The zero policy gets the documented defaults.
	var zero ReconnectPolicy
	if got := BackoffDelay(zero, 0, 1); got != DefaultReconnectBase {
		t.Fatalf("zero policy first delay = %v, want DefaultReconnectBase %v", got, DefaultReconnectBase)
	}
	if got := BackoffDelay(zero, 1<<20, 1); got != DefaultReconnectCap {
		t.Fatalf("zero policy capped delay = %v, want DefaultReconnectCap %v", got, DefaultReconnectCap)
	}
	// A cap below the base is raised to the base rather than inverting the
	// range.
	inv := ReconnectPolicy{BaseDelay: 20 * time.Millisecond, MaxDelay: 5 * time.Millisecond}
	for _, attempt := range []int{0, 1, 8} {
		if got := BackoffDelay(inv, attempt, 1); got != 20*time.Millisecond {
			t.Fatalf("inverted policy attempt %d: delay = %v, want the 20ms base", attempt, got)
		}
	}
}

// proxied dials a client through a fresh fault proxy in front of addr.
func proxied(t *testing.T, addr string, cfg Config) (*faultnet.Proxy, *Client) {
	t.Helper()
	p, err := faultnet.Listen(addr)
	if err != nil {
		t.Fatalf("faultnet.Listen: %v", err)
	}
	t.Cleanup(func() { p.Close() })
	return p, dialCfg(t, p.Addr(), cfg)
}

// waitDown polls until the client observes the outage (a call fails).
func waitDown(t *testing.T, c *Client) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := c.ReadExact(0); err != nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("client never observed the outage")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCloseRacesRedial closes the client while its redial loop is spinning
// against a dead target — in the backoff sleep, mid-dial, or before the
// outage is even noticed. Close must win promptly, calls after it must be
// ErrClosed, and no correlation-table entries may leak.
func TestCloseRacesRedial(t *testing.T) {
	forEachConnMode(t, testCloseRacesRedial)
}

func testCloseRacesRedial(t *testing.T, mode string) {
	for i := 0; i < 8; i++ {
		srv, addr := newServerMode(t, mode)
		srv.SetInitial(0, 1)
		p, c := proxied(t, addr, Config{CacheSize: 8, Reconnect: ReconnectPolicy{
			Enabled:   true,
			BaseDelay: time.Millisecond,
			MaxDelay:  4 * time.Millisecond,
		}})
		if err := c.Subscribe(0); err != nil {
			t.Fatalf("Subscribe: %v", err)
		}
		srv.Close()
		p.Sever()
		if i%2 == 0 {
			// Half the iterations let the redial loop get going before the
			// close; the other half race it against outage detection.
			waitDown(t, c)
		}
		done := make(chan error, 1)
		go func() { done <- c.Close() }()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatalf("iteration %d: Close blocked on an active redial loop", i)
		}
		if err := c.Subscribe(0); !errors.Is(err, ErrClosed) {
			t.Fatalf("iteration %d: Subscribe after Close = %v, want ErrClosed", i, err)
		}
		if n := c.PendingCalls(); n != 0 {
			t.Fatalf("iteration %d: %d correlation entries leaked across Close", i, n)
		}
		p.Close()
	}
}

// TestReconnectRenegotiatesProtocol replaces a v3 server with a v2-capped
// one behind the same proxy address. The reconnect handshake must land on
// v2 — not assume the old session's negotiated version — and calls must
// work on the downgraded wire.
func TestReconnectRenegotiatesProtocol(t *testing.T) {
	srv1, addr1 := newServer(t)
	srv1.SetInitial(0, 5)
	p, c := proxied(t, addr1, Config{CacheSize: 8, Reconnect: ReconnectPolicy{
		Enabled:   true,
		BaseDelay: time.Millisecond,
		MaxDelay:  10 * time.Millisecond,
	}})
	if err := c.Subscribe(0); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	if got := c.Proto(); got != netproto.Version4 {
		t.Fatalf("fresh session negotiated v%d, want v%d", got, netproto.Version4)
	}
	srv1.Close()
	p.Sever()

	srv2 := server.New(server.Config{
		Params:       core.Params{Cvr: 1, Cqr: 2, Alpha: 1, Lambda0: 0, Lambda1: math.Inf(1)},
		InitialWidth: 10,
		Seed:         2,
		ProtoVersion: netproto.Version2,
	})
	srv2.SetInitial(0, 6)
	addr2, err := srv2.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { srv2.Close() })
	p.SetTarget(addr2.String())

	deadline := time.Now().Add(10 * time.Second)
	for c.Stats().Reconnects < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("client never reconnected to the replacement server")
		}
		time.Sleep(time.Millisecond)
	}
	if got := c.Proto(); got != netproto.Version2 {
		t.Fatalf("reconnected session negotiated v%d, want v%d (replacement server's cap)", got, netproto.Version2)
	}
	if v, err := c.ReadExact(0); err != nil || v != 6 {
		t.Fatalf("ReadExact over renegotiated session = %g, %v; want 6", v, err)
	}
}

// TestStaleReadsWidenDuringOutage: with StaleReads enabled, cached
// approximations stay readable during an outage but their intervals widen
// at StaleWidthGrowth units/second — uncertainty about the unreachable
// source made explicit, midpoint untouched.
func TestStaleReadsWidenDuringOutage(t *testing.T) {
	srv, addr := newServer(t)
	srv.SetInitial(0, 50)
	p, c := proxied(t, addr, Config{
		CacheSize:        8,
		StaleReads:       true,
		StaleWidthGrowth: 1000,
		// A huge backoff holds the outage open for the duration of the
		// test; Close must still cut the sleep short at cleanup.
		Reconnect: ReconnectPolicy{Enabled: true, BaseDelay: time.Hour, MaxDelay: time.Hour},
	})
	if err := c.Subscribe(0); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	ctx := context.Background()
	a0, ok := c.GetApprox(ctx, 0)
	if !ok || a0.Stale || a0.Age != 0 {
		t.Fatalf("healthy approx = %+v, %v; want fresh", a0, ok)
	}
	if st := c.Stats(); st.Degraded {
		t.Fatalf("healthy client reports Degraded")
	}
	mid0 := (a0.Interval.Lo + a0.Interval.Hi) / 2

	srv.Close()
	p.Sever()
	waitDown(t, c)

	a1, ok := c.GetApprox(ctx, 0)
	if !ok || !a1.Stale {
		t.Fatalf("outage approx = %+v, %v; want a stale read", a1, ok)
	}
	if a1.Age <= 0 {
		t.Fatalf("stale read carries age %v, want > 0", a1.Age)
	}
	if !c.Stats().Degraded {
		t.Fatalf("client in outage does not report Degraded")
	}
	time.Sleep(20 * time.Millisecond)
	a2, ok := c.GetApprox(ctx, 0)
	if !ok || !a2.Stale {
		t.Fatalf("second outage approx = %+v, %v; want stale", a2, ok)
	}
	if a2.Age <= a1.Age {
		t.Fatalf("age did not advance: %v then %v", a1.Age, a2.Age)
	}
	// 20ms at 1000 units/s is 20 units of extra width; allow generous
	// scheduling slack but demand real growth.
	if grew := a2.Interval.Width() - a1.Interval.Width(); grew < 5 {
		t.Fatalf("interval width grew %g over 20ms, want >= 5 (growth rate 1000/s)", grew)
	}
	if a2.Interval.Width() <= a0.Interval.Width() {
		t.Fatalf("stale width %g not wider than fresh width %g", a2.Interval.Width(), a0.Interval.Width())
	}
	if mid := (a2.Interval.Lo + a2.Interval.Hi) / 2; math.Abs(mid-mid0) > 1e-9 {
		t.Fatalf("stale widening moved the midpoint: %g -> %g", mid0, mid)
	}
	if !a2.Interval.Valid(50) {
		t.Fatalf("widened interval %v no longer contains the last known value", a2.Interval)
	}
}

// TestRedialGivesUpAfterMaxAttempts: an exhausted policy is terminal — the
// watches fail with the typed connection loss and the client behaves as
// closed afterwards.
func TestRedialGivesUpAfterMaxAttempts(t *testing.T) {
	srv, addr := newServer(t)
	srv.SetInitial(0, 1)
	p, c := proxied(t, addr, Config{CacheSize: 8, Reconnect: ReconnectPolicy{
		Enabled:     true,
		BaseDelay:   time.Millisecond,
		MaxDelay:    2 * time.Millisecond,
		MaxAttempts: 3,
	}})
	if err := c.Subscribe(0); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	w, err := c.Watch(0)
	if err != nil {
		t.Fatalf("Watch: %v", err)
	}
	defer w.Close()
	srv.Close()
	p.Sever()

	deadline := time.Now().Add(10 * time.Second)
	for w.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatalf("watch never failed; redial loop did not give up")
		}
		time.Sleep(time.Millisecond)
	}
	if err := w.Err(); !errors.Is(err, aperrs.ErrConnLost) {
		t.Fatalf("give-up failed the watch with %v, want errors.Is(err, ErrConnLost)", err)
	}
	if st := c.Stats(); st.Reconnects != 0 {
		t.Fatalf("%d reconnects recorded against an unreachable target", st.Reconnects)
	}
	if err := c.Subscribe(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("call after give-up = %v, want ErrClosed", err)
	}
}

// TestUnsubscribeDuringOutageNotReplayed: Unsubscribe while down succeeds
// locally (the whole job is updating desired state) and the key must not be
// replayed to the replacement server.
func TestUnsubscribeDuringOutageNotReplayed(t *testing.T) {
	srv1, addr1 := newServer(t)
	srv1.SetInitial(0, 1)
	srv1.SetInitial(1, 2)
	p, c := proxied(t, addr1, Config{CacheSize: 8, Reconnect: ReconnectPolicy{
		Enabled:   true,
		BaseDelay: time.Millisecond,
		MaxDelay:  10 * time.Millisecond,
	}})
	if err := c.SubscribeMulti([]int{0, 1}); err != nil {
		t.Fatalf("SubscribeMulti: %v", err)
	}
	srv1.Close()
	p.Sever()
	waitDown(t, c)
	if err := c.Unsubscribe(1); err != nil {
		t.Fatalf("Unsubscribe during outage = %v, want local success", err)
	}
	if _, cached := c.Get(1); cached {
		t.Fatalf("unsubscribed key still cached during the outage")
	}

	srv2, addr2 := newServer(t)
	srv2.SetInitial(0, 3)
	srv2.SetInitial(1, 4)
	p.SetTarget(addr2)

	deadline := time.Now().Add(10 * time.Second)
	for c.Stats().Reconnects < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("client never reconnected")
		}
		time.Sleep(time.Millisecond)
	}
	subs := 0
	for _, sh := range srv2.Stats().PerShard {
		subs += sh.Subscriptions
	}
	if subs != 1 {
		t.Fatalf("replacement server holds %d subscriptions, want 1 (key 1 was unsubscribed while down)", subs)
	}
	if _, cached := c.Get(1); cached {
		t.Fatalf("unsubscribed key reappeared after the reconnect replay")
	}
	if v, err := c.ReadExact(0); err != nil || v != 3 {
		t.Fatalf("surviving key reads %g, %v; want 3", v, err)
	}
}
