package client

import (
	"math"
	"net"
	"testing"
	"time"

	"apcache/internal/netproto"
	"apcache/internal/query"
)

// newHelloCostStub is a raw v3 server that advertises an arbitrary refresh
// cost in its HelloAck — the "slow refresh" deployments the adaptive ramp
// must adjust to — and answers Pings so the connection stays healthy.
func newHelloCostStub(t *testing.T, cost time.Duration) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				for {
					msg, err := netproto.ReadMsg(conn)
					if err != nil {
						return
					}
					switch m := msg.(type) {
					case *netproto.Hello:
						netproto.Write(conn, &netproto.HelloAck{
							ID: m.ID, Version: netproto.Version3,
							MaxBatch: m.MaxBatch, CqrCost: uint64(cost),
						})
					case *netproto.Ping:
						netproto.Write(conn, &netproto.Pong{ID: m.ID})
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// TestRampUsesAdvertisedCost checks the adaptive ramp divides the smoothed
// RTT by the server's measured refresh cost instead of the modeled default:
// against a server advertising slow (10ms) refreshes, a 1ms-RTT link must
// stay near the paper-minimal sequence, where the 100µs default would have
// slammed the ramp to its cap.
func TestRampUsesAdvertisedCost(t *testing.T) {
	addr := newHelloCostStub(t, 10*time.Millisecond)
	c := dialCfg(t, addr, Config{CacheSize: 4})
	if got := c.Stats().ServerCqrCost; got != 10*time.Millisecond {
		t.Fatalf("ServerCqrCost = %v, want 10ms", got)
	}
	c.SeedSmoothedRTT(time.Millisecond)
	if got, want := c.ResolvedRamp(), 1.1; math.Abs(got-want) > 1e-9 {
		t.Errorf("ramp with advertised 10ms cost = %g, want %g", got, want)
	}
}

// TestRampDefaultCostWithoutAdvertisement pins the fallback: a server that
// advertises no measurement (CqrCost 0) leaves the client on DefaultCqrCost,
// under which a 1ms RTT clamps the ramp to MaxAdaptiveRamp.
func TestRampDefaultCostWithoutAdvertisement(t *testing.T) {
	addr := newHelloCostStub(t, 0)
	c := dialCfg(t, addr, Config{CacheSize: 4})
	if got := c.Stats().ServerCqrCost; got != 0 {
		t.Fatalf("ServerCqrCost = %v, want 0", got)
	}
	c.SeedSmoothedRTT(time.Millisecond)
	if got := c.ResolvedRamp(); got != MaxAdaptiveRamp {
		t.Errorf("ramp without advertisement = %g, want clamp at %g", got, MaxAdaptiveRamp)
	}
}

// TestConfiguredCostBeatsAdvertised pins the precedence: an explicit
// Config.CqrCost is an operator decision and the server's advertisement
// must not override it.
func TestConfiguredCostBeatsAdvertised(t *testing.T) {
	addr := newHelloCostStub(t, 10*time.Millisecond)
	c := dialCfg(t, addr, Config{CacheSize: 4, CqrCost: time.Millisecond})
	c.SeedSmoothedRTT(time.Millisecond)
	if got, want := c.ResolvedRamp(), 2.0; got != want {
		t.Errorf("ramp with configured 1ms cost = %g, want %g (advertised 10ms ignored)", got, want)
	}
}

// TestRampBeforeFirstRTTSample: with no RTT sample the ramp stays at
// query.DefaultRamp whatever the advertised cost.
func TestRampBeforeFirstRTTSample(t *testing.T) {
	addr := newHelloCostStub(t, 10*time.Millisecond)
	c := dialCfg(t, addr, Config{CacheSize: 4})
	c.SeedSmoothedRTT(0)
	if got := c.ResolvedRamp(); got != query.DefaultRamp {
		t.Errorf("ramp before first RTT sample = %g, want %g", got, query.DefaultRamp)
	}
}

// TestServerMeasuredCostReachesSecondClient closes the loop end to end over
// a real server: reads served to one client produce a measurement that the
// next client's handshake picks up and feeds into its ramp.
func TestServerMeasuredCostReachesSecondClient(t *testing.T) {
	srv, addr := newServer(t)
	srv.SetInitial(1, 10)
	a := dial(t, addr, 4)
	for i := 0; i < 4; i++ {
		if _, err := a.ReadExact(1); err != nil {
			t.Fatal(err)
		}
	}
	b := dial(t, addr, 4)
	cost := b.Stats().ServerCqrCost
	if cost <= 0 {
		t.Fatalf("second client received no advertised cost after reads were served")
	}
	// With an RTT pinned far above the measured cost the ramp clamps; far
	// below, it stays paper-minimal — proving the advertised value, not
	// the static default, is the denominator.
	b.SeedSmoothedRTT(1000 * cost)
	if got := b.ResolvedRamp(); got != MaxAdaptiveRamp {
		t.Errorf("ramp at RTT >> advertised cost = %g, want %g", got, MaxAdaptiveRamp)
	}
	// Fast machines can measure a sub-microsecond cost, where cost/1000
	// truncates to 0 and would read as "no RTT sample yet"; clamp to 1ns.
	tiny := cost / 1000
	if tiny <= 0 {
		tiny = time.Nanosecond
	}
	b.SeedSmoothedRTT(tiny)
	if got := b.ResolvedRamp(); got >= 1.1 {
		t.Errorf("ramp at RTT << advertised cost = %g, want near 1", got)
	}
}

// TestV2HandshakeCarriesNoCost: a v2-capped client negotiates cleanly and
// simply never learns the server's measurement.
func TestV2HandshakeCarriesNoCost(t *testing.T) {
	srv, addr := newServer(t)
	srv.SetInitial(1, 10)
	a := dial(t, addr, 4)
	for i := 0; i < 4; i++ {
		if _, err := a.ReadExact(1); err != nil {
			t.Fatal(err)
		}
	}
	c := dialCfg(t, addr, Config{CacheSize: 4, ProtoVersion: netproto.Version2})
	if c.Proto() != netproto.Version2 {
		t.Fatalf("negotiated proto %d, want v2", c.Proto())
	}
	if got := c.Stats().ServerCqrCost; got != 0 {
		t.Errorf("v2 client reports advertised cost %v, want 0", got)
	}
	if _, err := c.ReadExact(1); err != nil {
		t.Errorf("v2 read after handshake: %v", err)
	}
}

// newMidConnCostStub is a raw v3 server that advertises no cost at the
// handshake and instead piggybacks one on the RefreshBatch answering each
// ReadMulti — the mid-connection re-advertisement a long-lived client must
// pick up.
func newMidConnCostStub(t *testing.T, cost time.Duration) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				for {
					msg, err := netproto.ReadMsg(conn)
					if err != nil {
						return
					}
					switch m := msg.(type) {
					case *netproto.Hello:
						netproto.Write(conn, &netproto.HelloAck{
							ID: m.ID, Version: netproto.Version3, MaxBatch: m.MaxBatch,
						})
					case *netproto.ReadMulti:
						rb := &netproto.RefreshBatch{ID: m.ID, CqrCost: uint64(cost)}
						for _, k := range m.Keys {
							rb.Items = append(rb.Items, netproto.RefreshItem{
								Key: k, Kind: netproto.KindQueryInitiated,
								Value: 1, Lo: 0, Hi: 2, OriginalWidth: 2,
							})
						}
						netproto.Write(conn, rb)
					case *netproto.Ping:
						netproto.Write(conn, &netproto.Pong{ID: m.ID})
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// TestMidConnectionAdvertUpdatesRamp: a cost advertised on a RefreshBatch
// mid-connection replaces the handshake-time value (here: none) as the
// ramp's denominator.
func TestMidConnectionAdvertUpdatesRamp(t *testing.T) {
	addr := newMidConnCostStub(t, 10*time.Millisecond)
	c := dialCfg(t, addr, Config{CacheSize: 4})
	if got := c.Stats().ServerCqrCost; got != 0 {
		t.Fatalf("ServerCqrCost = %v before any advertisement, want 0", got)
	}
	if _, err := c.ReadMulti([]int{1, 2}); err != nil {
		t.Fatalf("ReadMulti: %v", err)
	}
	if got := c.Stats().ServerCqrCost; got != 10*time.Millisecond {
		t.Fatalf("ServerCqrCost after piggybacked advert = %v, want 10ms", got)
	}
	c.SeedSmoothedRTT(time.Millisecond)
	if got, want := c.ResolvedRamp(), 1.1; math.Abs(got-want) > 1e-9 {
		t.Errorf("ramp with mid-connection 10ms cost = %g, want %g", got, want)
	}
}

// TestConfiguredCostBeatsMidConnectionAdvert: the precedence that holds at
// the handshake holds for re-advertisements too — an explicit Config.CqrCost
// is never overridden by the server.
func TestConfiguredCostBeatsMidConnectionAdvert(t *testing.T) {
	addr := newMidConnCostStub(t, 10*time.Millisecond)
	c := dialCfg(t, addr, Config{CacheSize: 4, CqrCost: time.Millisecond})
	if _, err := c.ReadMulti([]int{1}); err != nil {
		t.Fatalf("ReadMulti: %v", err)
	}
	// The advertisement is still recorded (observable in Stats)...
	if got := c.Stats().ServerCqrCost; got != 10*time.Millisecond {
		t.Fatalf("ServerCqrCost = %v, want 10ms", got)
	}
	// ...but the configured cost drives the ramp: 1 + 1ms/1ms = 2.
	c.SeedSmoothedRTT(time.Millisecond)
	if got, want := c.ResolvedRamp(), 2.0; got != want {
		t.Errorf("ramp with configured 1ms cost = %g, want %g (advert ignored)", got, want)
	}
}
