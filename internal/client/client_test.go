// Package client's tests double as the integration tests of the networked
// deployment: a real server and real clients over loopback TCP.
package client

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"apcache/internal/core"
	"apcache/internal/server"
	"apcache/internal/workload"
)

func newServer(t *testing.T) (*server.Server, string) {
	t.Helper()
	srv := server.New(server.Config{
		Params:       core.Params{Cvr: 1, Cqr: 2, Alpha: 1, Lambda0: 0, Lambda1: math.Inf(1)},
		InitialWidth: 10,
		Seed:         1,
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr.String()
}

func dial(t *testing.T, addr string, size int) *Client {
	t.Helper()
	c, err := Dial(addr, size)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestSubscribeInstallsInterval(t *testing.T) {
	srv, addr := newServer(t)
	srv.SetInitial(0, 100)
	c := dial(t, addr, 10)
	if err := c.Subscribe(0); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	iv, ok := c.Get(0)
	if !ok {
		t.Fatalf("no cached interval after subscribe")
	}
	if !iv.Valid(100) {
		t.Errorf("interval %v invalid for 100", iv)
	}
	if iv.Width() != 10 {
		t.Errorf("width %g, want 10", iv.Width())
	}
}

func TestSubscribeUnknownKey(t *testing.T) {
	_, addr := newServer(t)
	c := dial(t, addr, 10)
	if err := c.Subscribe(42); err == nil {
		t.Fatalf("Subscribe to unknown key succeeded")
	}
}

func TestValueInitiatedPush(t *testing.T) {
	srv, addr := newServer(t)
	srv.SetInitial(0, 100)
	c := dial(t, addr, 10)
	if err := c.Subscribe(0); err != nil {
		t.Fatal(err)
	}
	// In-interval update: no push.
	if n := srv.Set(0, 104); n != 0 {
		t.Fatalf("in-interval update pushed %d refreshes", n)
	}
	// Escape: exactly one push, eventually visible in the local cache.
	if n := srv.Set(0, 200); n != 1 {
		t.Fatalf("escape pushed %d refreshes, want 1", n)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		iv, ok := c.Get(0)
		if ok && iv.Valid(200) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("push never arrived; cached %v", iv)
		}
		time.Sleep(time.Millisecond)
	}
	st := c.Stats()
	if st.ValueRefreshes != 1 {
		t.Errorf("client counted %d VIRs, want 1", st.ValueRefreshes)
	}
}

func TestReadExact(t *testing.T) {
	srv, addr := newServer(t)
	srv.SetInitial(3, 77)
	c := dial(t, addr, 10)
	v, err := c.ReadExact(3)
	if err != nil {
		t.Fatalf("ReadExact: %v", err)
	}
	if v != 77 {
		t.Errorf("value %g, want 77", v)
	}
	// The accompanying interval lands in the cache.
	iv, ok := c.Get(3)
	if !ok || !iv.Valid(77) {
		t.Errorf("interval after read: %v %v", iv, ok)
	}
	if c.Stats().QueryRefreshes != 1 {
		t.Errorf("QIR count %d, want 1", c.Stats().QueryRefreshes)
	}
}

func TestReadUnknownKey(t *testing.T) {
	_, addr := newServer(t)
	c := dial(t, addr, 10)
	if _, err := c.ReadExact(9); err == nil {
		t.Fatalf("ReadExact of unknown key succeeded")
	}
}

func TestPing(t *testing.T) {
	_, addr := newServer(t)
	c := dial(t, addr, 10)
	if err := c.Ping(); err != nil {
		t.Fatalf("Ping: %v", err)
	}
}

func TestQueryThroughNetwork(t *testing.T) {
	srv, addr := newServer(t)
	for k, v := range []float64{10, 20, 30} {
		srv.SetInitial(k, v)
	}
	c := dial(t, addr, 10)
	for k := 0; k < 3; k++ {
		if err := c.Subscribe(k); err != nil {
			t.Fatal(err)
		}
	}
	// Loose constraint: answered from cache (3 intervals of width 10 sum
	// to width 30).
	ans, err := c.Query(workload.Query{Kind: workload.Sum, Keys: []int{0, 1, 2}, Delta: 50})
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(ans.Refreshed) != 0 {
		t.Errorf("loose query refreshed %v", ans.Refreshed)
	}
	if !ans.Result.Valid(60) {
		t.Errorf("result %v missing true sum 60", ans.Result)
	}
	// Exact constraint: everything fetched; answer exact.
	ans, err = c.Query(workload.Query{Kind: workload.Sum, Keys: []int{0, 1, 2}, Delta: 0})
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if !ans.Result.IsExact() || ans.Result.Lo != 60 {
		t.Errorf("exact query result %v, want [60, 60]", ans.Result)
	}
}

func TestUnsubscribeStopsPushes(t *testing.T) {
	srv, addr := newServer(t)
	srv.SetInitial(0, 0)
	c := dial(t, addr, 10)
	if err := c.Subscribe(0); err != nil {
		t.Fatal(err)
	}
	if err := c.Unsubscribe(0); err != nil {
		t.Fatal(err)
	}
	// Allow the unsubscribe to land; pushes racing ahead of it may
	// legitimately re-install the entry, so the contract under test is
	// only that the server eventually stops pushing.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Set(0, 1e9) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("server still pushing after unsubscribe")
		}
		time.Sleep(time.Millisecond)
		srv.SetInitial(0, 0)
	}
	// Once quiesced, a further escape generates no refresh.
	srv.SetInitial(0, 0)
	if n := srv.Set(0, 1e9); n != 0 {
		t.Errorf("server pushed %d refreshes after unsubscribe", n)
	}
}

func TestMultipleClientsIndependentWidths(t *testing.T) {
	srv, addr := newServer(t)
	srv.SetInitial(0, 100)
	c1 := dial(t, addr, 10)
	c2 := dial(t, addr, 10)
	if err := c1.Subscribe(0); err != nil {
		t.Fatal(err)
	}
	if err := c2.Subscribe(0); err != nil {
		t.Fatal(err)
	}
	if srv.Clients() != 2 {
		t.Fatalf("Clients = %d", srv.Clients())
	}
	// c1 reads repeatedly: its subscription's width shrinks; c2's stays.
	for i := 0; i < 3; i++ {
		if _, err := c1.ReadExact(0); err != nil {
			t.Fatal(err)
		}
	}
	iv1, _ := c1.Get(0)
	iv2, _ := c2.Get(0)
	if iv1.Width() >= iv2.Width() {
		t.Errorf("c1 width %g not narrower than c2 width %g after reads", iv1.Width(), iv2.Width())
	}
}

func TestConcurrentReads(t *testing.T) {
	srv, addr := newServer(t)
	for k := 0; k < 8; k++ {
		srv.SetInitial(k, float64(k*10))
	}
	c := dial(t, addr, 8)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				v, err := c.ReadExact(g)
				if err != nil {
					errs <- err
					return
				}
				if v != float64(g*10) {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent read: %v", err)
	}
}

func TestUpdatesDuringQueries(t *testing.T) {
	// Stress: a writer goroutine updates while clients query; intervals
	// must never yield answers excluding the exact value at fetch time.
	srv, addr := newServer(t)
	srv.SetInitial(0, 0)
	c := dial(t, addr, 4)
	if err := c.Subscribe(0); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		v := 0.0
		for {
			select {
			case <-stop:
				return
			default:
			}
			v += 1
			srv.Set(0, v)
		}
	}()
	for i := 0; i < 50; i++ {
		if _, err := c.ReadExact(0); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestClosedClientErrors(t *testing.T) {
	_, addr := newServer(t)
	c := dial(t, addr, 4)
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := c.Subscribe(0); err == nil {
		t.Errorf("Subscribe after close succeeded")
	}
	if _, err := c.ReadExact(0); err == nil {
		t.Errorf("ReadExact after close succeeded")
	}
	if err := c.Close(); err != nil {
		t.Errorf("double Close: %v", err)
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	srv, addr := newServer(t)
	srv.SetInitial(0, 1)
	c := dial(t, addr, 4)
	if err := c.Subscribe(0); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	// The next request must fail rather than hang.
	c.SetTimeout(2 * time.Second)
	if _, err := c.ReadExact(0); err == nil {
		t.Errorf("read against closed server succeeded")
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", 4); err == nil {
		t.Errorf("Dial to dead port succeeded")
	}
}

func TestEndToEndQuerySoundnessAfterChurn(t *testing.T) {
	// Full-system check: drive real updates through the server while two
	// clients query concurrently, then quiesce and verify every aggregate
	// against server-side ground truth.
	srv, addr := newServer(t)
	const keys = 12
	values := make([]float64, keys)
	for k := 0; k < keys; k++ {
		values[k] = float64(k * 10)
		srv.SetInitial(k, values[k])
	}
	c1 := dial(t, addr, keys)
	c2 := dial(t, addr, keys)
	for k := 0; k < keys; k++ {
		if err := c1.Subscribe(k); err != nil {
			t.Fatal(err)
		}
		if err := c2.Subscribe(k); err != nil {
			t.Fatal(err)
		}
	}

	// Churn phase: updates and queries interleave.
	rng := rand.New(rand.NewSource(13))
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		wrng := rand.New(rand.NewSource(14))
		for {
			select {
			case <-stop:
				return
			default:
			}
			k := wrng.Intn(keys)
			values[k] += wrng.Float64()*20 - 10
			srv.Set(k, values[k])
		}
	}()
	for i := 0; i < 30; i++ {
		q := workload.Query{
			Kind:  workload.Sum,
			Keys:  []int{rng.Intn(keys), (rng.Intn(keys-1) + 1 + rng.Intn(keys)) % keys},
			Delta: rng.Float64() * 100,
		}
		if q.Keys[0] == q.Keys[1] {
			q.Keys = q.Keys[:1]
		}
		if _, err := c1.Query(q); err != nil {
			t.Fatalf("churn query: %v", err)
		}
	}
	close(stop)
	wg.Wait()

	// Quiesce: let in-flight pushes drain.
	time.Sleep(100 * time.Millisecond)

	// Verification phase: no more updates; answers must bound the truth.
	for trial := 0; trial < 40; trial++ {
		n := rng.Intn(keys-1) + 1
		perm := rng.Perm(keys)[:n]
		kind := []workload.AggKind{workload.Sum, workload.Max, workload.Min, workload.Avg}[trial%4]
		delta := rng.Float64() * 50
		cli := c1
		if trial%2 == 1 {
			cli = c2
		}
		ans, err := cli.Query(workload.Query{Kind: kind, Keys: perm, Delta: delta})
		if err != nil {
			t.Fatalf("verify query: %v", err)
		}
		var truth float64
		switch kind {
		case workload.Sum, workload.Avg:
			for _, k := range perm {
				truth += values[k]
			}
			if kind == workload.Avg {
				truth /= float64(n)
			}
		case workload.Max:
			truth = math.Inf(-1)
			for _, k := range perm {
				truth = math.Max(truth, values[k])
			}
		case workload.Min:
			truth = math.Inf(1)
			for _, k := range perm {
				truth = math.Min(truth, values[k])
			}
		}
		if !ans.Result.Valid(truth) && math.Abs(truth-ans.Result.Clamp(truth)) > 1e-6 {
			t.Fatalf("trial %d: %v over %v answer %v excludes truth %g", trial, kind, perm, ans.Result, truth)
		}
		if ans.Result.Width() > delta+1e-9 {
			t.Fatalf("trial %d: width %g > delta %g", trial, ans.Result.Width(), delta)
		}
	}
}
