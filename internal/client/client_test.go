// Package client's tests double as the integration tests of the networked
// deployment: a real server and real clients over loopback TCP.
package client

import (
	"math"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"apcache/internal/core"
	"apcache/internal/netproto"
	"apcache/internal/server"
	"apcache/internal/workload"
)

func newServer(t *testing.T) (*server.Server, string) {
	t.Helper()
	return newServerMode(t, "")
}

func newServerMode(t *testing.T, connMode string) (*server.Server, string) {
	t.Helper()
	srv := server.New(server.Config{
		Params:       core.Params{Cvr: 1, Cqr: 2, Alpha: 1, Lambda0: 0, Lambda1: math.Inf(1)},
		InitialWidth: 10,
		Seed:         1,
		ConnMode:     connMode,
	})
	if connMode != "" && srv.ConnMode() != connMode {
		t.Skipf("conn mode %q unsupported on this platform", connMode)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr.String()
}

// forEachConnMode runs fn against a server under each connection core. The
// client must be unable to tell the cores apart, so the lifecycle tests —
// push delivery, close, server-side teardown — run under both.
func forEachConnMode(t *testing.T, fn func(t *testing.T, mode string)) {
	t.Helper()
	for _, mode := range []string{server.ConnModeGoroutine, server.ConnModePoller} {
		t.Run("connmode="+mode, func(t *testing.T) {
			fn(t, mode)
		})
	}
}

func dial(t *testing.T, addr string, size int) *Client {
	t.Helper()
	c, err := Dial(addr, size)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestSubscribeInstallsInterval(t *testing.T) {
	srv, addr := newServer(t)
	srv.SetInitial(0, 100)
	c := dial(t, addr, 10)
	if err := c.Subscribe(0); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	iv, ok := c.Get(0)
	if !ok {
		t.Fatalf("no cached interval after subscribe")
	}
	if !iv.Valid(100) {
		t.Errorf("interval %v invalid for 100", iv)
	}
	if iv.Width() != 10 {
		t.Errorf("width %g, want 10", iv.Width())
	}
}

func TestSubscribeUnknownKey(t *testing.T) {
	_, addr := newServer(t)
	c := dial(t, addr, 10)
	if err := c.Subscribe(42); err == nil {
		t.Fatalf("Subscribe to unknown key succeeded")
	}
}

func TestValueInitiatedPush(t *testing.T) {
	forEachConnMode(t, testValueInitiatedPush)
}

func testValueInitiatedPush(t *testing.T, mode string) {
	srv, addr := newServerMode(t, mode)
	srv.SetInitial(0, 100)
	c := dial(t, addr, 10)
	if err := c.Subscribe(0); err != nil {
		t.Fatal(err)
	}
	// In-interval update: no push.
	if n := srv.Set(0, 104); n != 0 {
		t.Fatalf("in-interval update pushed %d refreshes", n)
	}
	// Escape: exactly one push, eventually visible in the local cache.
	if n := srv.Set(0, 200); n != 1 {
		t.Fatalf("escape pushed %d refreshes, want 1", n)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		iv, ok := c.Get(0)
		if ok && iv.Valid(200) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("push never arrived; cached %v", iv)
		}
		time.Sleep(time.Millisecond)
	}
	st := c.Stats()
	if st.ValueRefreshes != 1 {
		t.Errorf("client counted %d VIRs, want 1", st.ValueRefreshes)
	}
}

func TestReadExact(t *testing.T) {
	srv, addr := newServer(t)
	srv.SetInitial(3, 77)
	c := dial(t, addr, 10)
	v, err := c.ReadExact(3)
	if err != nil {
		t.Fatalf("ReadExact: %v", err)
	}
	if v != 77 {
		t.Errorf("value %g, want 77", v)
	}
	// The accompanying interval lands in the cache.
	iv, ok := c.Get(3)
	if !ok || !iv.Valid(77) {
		t.Errorf("interval after read: %v %v", iv, ok)
	}
	if c.Stats().QueryRefreshes != 1 {
		t.Errorf("QIR count %d, want 1", c.Stats().QueryRefreshes)
	}
}

func TestReadUnknownKey(t *testing.T) {
	_, addr := newServer(t)
	c := dial(t, addr, 10)
	if _, err := c.ReadExact(9); err == nil {
		t.Fatalf("ReadExact of unknown key succeeded")
	}
}

func TestPing(t *testing.T) {
	_, addr := newServer(t)
	c := dial(t, addr, 10)
	if err := c.Ping(); err != nil {
		t.Fatalf("Ping: %v", err)
	}
}

func TestQueryThroughNetwork(t *testing.T) {
	srv, addr := newServer(t)
	for k, v := range []float64{10, 20, 30} {
		srv.SetInitial(k, v)
	}
	c := dial(t, addr, 10)
	for k := 0; k < 3; k++ {
		if err := c.Subscribe(k); err != nil {
			t.Fatal(err)
		}
	}
	// Loose constraint: answered from cache (3 intervals of width 10 sum
	// to width 30).
	ans, err := c.Query(workload.Query{Kind: workload.Sum, Keys: []int{0, 1, 2}, Delta: 50})
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(ans.Refreshed) != 0 {
		t.Errorf("loose query refreshed %v", ans.Refreshed)
	}
	if !ans.Result.Valid(60) {
		t.Errorf("result %v missing true sum 60", ans.Result)
	}
	// Exact constraint: everything fetched; answer exact.
	ans, err = c.Query(workload.Query{Kind: workload.Sum, Keys: []int{0, 1, 2}, Delta: 0})
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if !ans.Result.IsExact() || ans.Result.Lo != 60 {
		t.Errorf("exact query result %v, want [60, 60]", ans.Result)
	}
}

func TestUnsubscribeStopsPushes(t *testing.T) {
	srv, addr := newServer(t)
	srv.SetInitial(0, 0)
	c := dial(t, addr, 10)
	if err := c.Subscribe(0); err != nil {
		t.Fatal(err)
	}
	if err := c.Unsubscribe(0); err != nil {
		t.Fatal(err)
	}
	// Allow the unsubscribe to land; pushes racing ahead of it may
	// legitimately re-install the entry, so the contract under test is
	// only that the server eventually stops pushing.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Set(0, 1e9) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("server still pushing after unsubscribe")
		}
		time.Sleep(time.Millisecond)
		srv.SetInitial(0, 0)
	}
	// Once quiesced, a further escape generates no refresh.
	srv.SetInitial(0, 0)
	if n := srv.Set(0, 1e9); n != 0 {
		t.Errorf("server pushed %d refreshes after unsubscribe", n)
	}
}

func TestMultipleClientsIndependentWidths(t *testing.T) {
	srv, addr := newServer(t)
	srv.SetInitial(0, 100)
	c1 := dial(t, addr, 10)
	c2 := dial(t, addr, 10)
	if err := c1.Subscribe(0); err != nil {
		t.Fatal(err)
	}
	if err := c2.Subscribe(0); err != nil {
		t.Fatal(err)
	}
	if srv.Clients() != 2 {
		t.Fatalf("Clients = %d", srv.Clients())
	}
	// c1 reads repeatedly: its subscription's width shrinks; c2's stays.
	for i := 0; i < 3; i++ {
		if _, err := c1.ReadExact(0); err != nil {
			t.Fatal(err)
		}
	}
	iv1, _ := c1.Get(0)
	iv2, _ := c2.Get(0)
	if iv1.Width() >= iv2.Width() {
		t.Errorf("c1 width %g not narrower than c2 width %g after reads", iv1.Width(), iv2.Width())
	}
}

func TestConcurrentReads(t *testing.T) {
	srv, addr := newServer(t)
	for k := 0; k < 8; k++ {
		srv.SetInitial(k, float64(k*10))
	}
	c := dial(t, addr, 8)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				v, err := c.ReadExact(g)
				if err != nil {
					errs <- err
					return
				}
				if v != float64(g*10) {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent read: %v", err)
	}
}

func TestUpdatesDuringQueries(t *testing.T) {
	// Stress: a writer goroutine updates while clients query; intervals
	// must never yield answers excluding the exact value at fetch time.
	srv, addr := newServer(t)
	srv.SetInitial(0, 0)
	c := dial(t, addr, 4)
	if err := c.Subscribe(0); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		v := 0.0
		for {
			select {
			case <-stop:
				return
			default:
			}
			v += 1
			srv.Set(0, v)
		}
	}()
	for i := 0; i < 50; i++ {
		if _, err := c.ReadExact(0); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestClosedClientErrors(t *testing.T) {
	forEachConnMode(t, testClosedClientErrors)
}

func testClosedClientErrors(t *testing.T, mode string) {
	_, addr := newServerMode(t, mode)
	c := dial(t, addr, 4)
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := c.Subscribe(0); err == nil {
		t.Errorf("Subscribe after close succeeded")
	}
	if _, err := c.ReadExact(0); err == nil {
		t.Errorf("ReadExact after close succeeded")
	}
	if err := c.Close(); err != nil {
		t.Errorf("double Close: %v", err)
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	forEachConnMode(t, testServerCloseUnblocksClients)
}

func testServerCloseUnblocksClients(t *testing.T, mode string) {
	srv, addr := newServerMode(t, mode)
	srv.SetInitial(0, 1)
	c := dial(t, addr, 4)
	if err := c.Subscribe(0); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	// The next request must fail rather than hang.
	c.SetTimeout(2 * time.Second)
	if _, err := c.ReadExact(0); err == nil {
		t.Errorf("read against closed server succeeded")
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", 4); err == nil {
		t.Errorf("Dial to dead port succeeded")
	}
}

func TestDialConfigRejectsBadProtoVersion(t *testing.T) {
	_, addr := newServer(t)
	for _, ver := range []int{-1, 5, 255} {
		if _, err := DialConfig(addr, Config{CacheSize: 4, ProtoVersion: ver}); err == nil {
			t.Errorf("ProtoVersion %d accepted", ver)
		}
	}
}

func TestEndToEndQuerySoundnessAfterChurn(t *testing.T) {
	// Full-system check: drive real updates through the server while two
	// clients query concurrently, then quiesce and verify every aggregate
	// against server-side ground truth.
	srv, addr := newServer(t)
	const keys = 12
	values := make([]float64, keys)
	for k := 0; k < keys; k++ {
		values[k] = float64(k * 10)
		srv.SetInitial(k, values[k])
	}
	c1 := dial(t, addr, keys)
	c2 := dial(t, addr, keys)
	for k := 0; k < keys; k++ {
		if err := c1.Subscribe(k); err != nil {
			t.Fatal(err)
		}
		if err := c2.Subscribe(k); err != nil {
			t.Fatal(err)
		}
	}

	// Churn phase: updates and queries interleave.
	rng := rand.New(rand.NewSource(13))
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		wrng := rand.New(rand.NewSource(14))
		for {
			select {
			case <-stop:
				return
			default:
			}
			k := wrng.Intn(keys)
			values[k] += wrng.Float64()*20 - 10
			srv.Set(k, values[k])
		}
	}()
	for i := 0; i < 30; i++ {
		q := workload.Query{
			Kind:  workload.Sum,
			Keys:  []int{rng.Intn(keys), (rng.Intn(keys-1) + 1 + rng.Intn(keys)) % keys},
			Delta: rng.Float64() * 100,
		}
		if q.Keys[0] == q.Keys[1] {
			q.Keys = q.Keys[:1]
		}
		if _, err := c1.Query(q); err != nil {
			t.Fatalf("churn query: %v", err)
		}
	}
	close(stop)
	wg.Wait()

	// Quiesce: let in-flight pushes drain.
	time.Sleep(100 * time.Millisecond)

	// Verification phase: no more updates; answers must bound the truth.
	for trial := 0; trial < 40; trial++ {
		n := rng.Intn(keys-1) + 1
		perm := rng.Perm(keys)[:n]
		kind := []workload.AggKind{workload.Sum, workload.Max, workload.Min, workload.Avg}[trial%4]
		delta := rng.Float64() * 50
		cli := c1
		if trial%2 == 1 {
			cli = c2
		}
		ans, err := cli.Query(workload.Query{Kind: kind, Keys: perm, Delta: delta})
		if err != nil {
			t.Fatalf("verify query: %v", err)
		}
		var truth float64
		switch kind {
		case workload.Sum, workload.Avg:
			for _, k := range perm {
				truth += values[k]
			}
			if kind == workload.Avg {
				truth /= float64(n)
			}
		case workload.Max:
			truth = math.Inf(-1)
			for _, k := range perm {
				truth = math.Max(truth, values[k])
			}
		case workload.Min:
			truth = math.Inf(1)
			for _, k := range perm {
				truth = math.Min(truth, values[k])
			}
		}
		if !ans.Result.Valid(truth) && math.Abs(truth-ans.Result.Clamp(truth)) > 1e-6 {
			t.Fatalf("trial %d: %v over %v answer %v excludes truth %g", trial, kind, perm, ans.Result, truth)
		}
		if ans.Result.Width() > delta+1e-9 {
			t.Fatalf("trial %d: width %g > delta %g", trial, ans.Result.Width(), delta)
		}
	}
}

func dialCfg(t *testing.T, addr string, cfg Config) *Client {
	t.Helper()
	c, err := DialConfig(addr, cfg)
	if err != nil {
		t.Fatalf("DialConfig: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestHandshakeNegotiatesV2(t *testing.T) {
	_, addr := newServer(t)
	c := dial(t, addr, 10)
	if c.Proto() != netproto.Version4 {
		t.Errorf("negotiated proto %d, want v4", c.Proto())
	}
	// A client capped at v2 lands on v2 against a v3 server.
	c2 := dialCfg(t, addr, Config{CacheSize: 10, ProtoVersion: netproto.Version2})
	if c2.Proto() != netproto.Version2 {
		t.Errorf("v2-capped client negotiated proto %d, want v2", c2.Proto())
	}
}

func TestHandshakeFallbackToV1Server(t *testing.T) {
	// A server pinned to v1 declines Hello; the client must fall back and
	// still serve subscriptions, reads, and queries on v1 frames.
	srv := server.New(server.Config{
		Params:       core.Params{Cvr: 1, Cqr: 2, Alpha: 1, Lambda0: 0, Lambda1: math.Inf(1)},
		InitialWidth: 10,
		Seed:         1,
		ProtoVersion: netproto.Version1,
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	for k := 0; k < 4; k++ {
		srv.SetInitial(k, float64(k*10))
	}
	c := dialCfg(t, addr.String(), Config{CacheSize: 10})
	if c.Proto() != netproto.Version1 {
		t.Fatalf("proto %d after decline, want v1", c.Proto())
	}
	if err := c.SubscribeMulti([]int{0, 1, 2, 3}); err != nil {
		t.Fatalf("SubscribeMulti on v1: %v", err)
	}
	vals, err := c.ReadMulti([]int{3, 1})
	if err != nil {
		t.Fatalf("ReadMulti on v1: %v", err)
	}
	if vals[0] != 30 || vals[1] != 10 {
		t.Errorf("values %v, want [30 10]", vals)
	}
	ans, err := c.Query(workload.Query{Kind: workload.Sum, Keys: []int{0, 1, 2, 3}, Delta: 0})
	if err != nil {
		t.Fatalf("Query on v1: %v", err)
	}
	if !ans.Result.IsExact() || ans.Result.Lo != 60 {
		t.Errorf("result %v, want [60, 60]", ans.Result)
	}
}

func TestClientPinnedToV1(t *testing.T) {
	srv, addr := newServer(t)
	srv.SetInitial(0, 7)
	c := dialCfg(t, addr, Config{CacheSize: 10, ProtoVersion: netproto.Version1})
	if c.Proto() != netproto.Version1 {
		t.Fatalf("proto %d, want pinned v1", c.Proto())
	}
	v, err := c.ReadExact(0)
	if err != nil || v != 7 {
		t.Errorf("ReadExact = %g, %v", v, err)
	}
}

func TestSubscribeMultiInstallsAll(t *testing.T) {
	srv, addr := newServer(t)
	const keys = 300 // forces chunking past MaxBatch
	want := make([]int, keys)
	for k := 0; k < keys; k++ {
		want[k] = k
		srv.SetInitial(k, float64(k))
	}
	c := dialCfg(t, addr, Config{CacheSize: keys, MaxBatch: 128})
	if err := c.SubscribeMulti(want); err != nil {
		t.Fatalf("SubscribeMulti: %v", err)
	}
	for k := 0; k < keys; k++ {
		iv, ok := c.Get(k)
		if !ok || !iv.Valid(float64(k)) {
			t.Fatalf("key %d: cached %v %v", k, iv, ok)
		}
	}
}

func TestSubscribeMultiUnknownKey(t *testing.T) {
	srv, addr := newServer(t)
	srv.SetInitial(0, 1)
	c := dial(t, addr, 10)
	if err := c.SubscribeMulti([]int{0, 42}); err == nil {
		t.Fatalf("SubscribeMulti with unknown key succeeded")
	}
}

func TestReadMultiInstallsIntervals(t *testing.T) {
	srv, addr := newServer(t)
	for k := 0; k < 5; k++ {
		srv.SetInitial(k, float64(k*2))
	}
	c := dial(t, addr, 10)
	vals, err := c.ReadMulti([]int{4, 0, 2})
	if err != nil {
		t.Fatalf("ReadMulti: %v", err)
	}
	if vals[0] != 8 || vals[1] != 0 || vals[2] != 4 {
		t.Errorf("values %v, want [8 0 4]", vals)
	}
	if st := c.Stats(); st.QueryRefreshes != 3 {
		t.Errorf("QIR count %d, want 3", st.QueryRefreshes)
	}
	for _, k := range []int{0, 2, 4} {
		if iv, ok := c.Get(k); !ok || !iv.Valid(float64(k*2)) {
			t.Errorf("key %d interval %v %v", k, iv, ok)
		}
	}
}

func TestQuerySingleRoundTrip(t *testing.T) {
	// The acceptance property of the batched protocol: a bounded-aggregate
	// query refining K keys costs one request frame and one response frame,
	// not K round trips.
	srv, addr := newServer(t)
	const keys = 24
	all := make([]int, keys)
	var sum float64
	for k := 0; k < keys; k++ {
		all[k] = k
		srv.SetInitial(k, float64(k))
		sum += float64(k)
	}
	c := dial(t, addr, keys)
	if err := c.SubscribeMulti(all); err != nil {
		t.Fatal(err)
	}
	before := c.Stats()
	ans, err := c.Query(workload.Query{Kind: workload.Sum, Keys: all, Delta: 0})
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if !ans.Result.IsExact() || ans.Result.Lo != sum {
		t.Fatalf("result %v, want exact %g", ans.Result, sum)
	}
	if len(ans.Refreshed) != keys {
		t.Fatalf("refreshed %d keys, want all %d", len(ans.Refreshed), keys)
	}
	after := c.Stats()
	if sent := after.FramesSent - before.FramesSent; sent != 1 {
		t.Errorf("query refining %d keys sent %d frames, want 1 (single ReadMulti)", keys, sent)
	}
	if recv := after.FramesReceived - before.FramesReceived; recv != 1 {
		t.Errorf("query received %d frames, want 1 (single RefreshBatch)", recv)
	}
}

func TestQueryErrorShortCircuits(t *testing.T) {
	// After the first fetch error the query must stop issuing reads for the
	// remaining keys instead of burning a timeout per key. Pin the client
	// to v1 so fetches are sequential ReadExact calls, the shape the old
	// bug lived in.
	srv, addr := newServer(t)
	srv.SetInitial(0, 1)
	srv.SetInitial(2, 3) // key 1 is unknown: its fetch fails
	c := dialCfg(t, addr, Config{CacheSize: 10, ProtoVersion: netproto.Version1})
	_, err := c.Query(workload.Query{Kind: workload.Sum, Keys: []int{0, 1, 2}, Delta: 0})
	if err == nil {
		t.Fatalf("query over unknown key succeeded")
	}
	if st := c.Stats(); st.QueryRefreshes != 1 {
		t.Errorf("QIR count %d after failed fetch, want 1 (no fetches past the error)", st.QueryRefreshes)
	}
}

// stubServer speaks raw netproto for timeout tests: it answers Read frames
// only after being released, and Pongs immediately.
type stubServer struct {
	ln       net.Listener
	release  chan struct{}
	accepted chan net.Conn
}

func newStubServer(t *testing.T) (*stubServer, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &stubServer{ln: ln, release: make(chan struct{}), accepted: make(chan net.Conn, 1)}
	t.Cleanup(func() { ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.accepted <- conn
		for {
			msg, err := netproto.ReadMsg(conn)
			if err != nil {
				conn.Close()
				return
			}
			switch m := msg.(type) {
			case *netproto.Ping:
				netproto.Write(conn, &netproto.Pong{ID: m.ID})
			case *netproto.Read:
				go func(m *netproto.Read) {
					<-s.release
					netproto.Write(conn, &netproto.Refresh{
						ID: m.ID, Key: m.Key, Kind: netproto.KindQueryInitiated,
						Value: 42, Lo: 41, Hi: 43, OriginalWidth: 2,
					})
				}(m)
			}
		}
	}()
	return s, ln.Addr().String()
}

func TestLateResponseAfterTimeout(t *testing.T) {
	s, addr := newStubServer(t)
	c := dialCfg(t, addr, Config{CacheSize: 4, ProtoVersion: netproto.Version1, Timeout: 50 * time.Millisecond})
	if _, err := c.ReadExact(9); err == nil {
		t.Fatalf("read against stalled server succeeded")
	}
	// Release the stalled response; it arrives with no waiter. The client
	// must treat it as unsolicited — no panic, no stuck correlation state —
	// and still install the (valid) interval.
	close(s.release)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if iv, ok := c.Get(9); ok && iv.Valid(42) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("late response's interval never installed")
		}
		time.Sleep(time.Millisecond)
	}
	// The connection still works.
	c.SetTimeout(5 * time.Second)
	if err := c.Ping(); err != nil {
		t.Errorf("Ping after late response: %v", err)
	}
}

func TestCloseRacesInflightCalls(t *testing.T) {
	forEachConnMode(t, testCloseRacesInflightCalls)
}

func testCloseRacesInflightCalls(t *testing.T, mode string) {
	srv, addr := newServerMode(t, mode)
	for k := 0; k < 8; k++ {
		srv.SetInitial(k, float64(k))
	}
	c, err := DialConfig(addr, Config{CacheSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var err error
				switch g % 3 {
				case 0:
					_, err = c.ReadExact(g)
				case 1:
					_, err = c.ReadMulti([]int{0, 1, 2, 3})
				default:
					_, err = c.Query(workload.Query{Kind: workload.Sum, Keys: []int{4, 5, 6}, Delta: 0})
				}
				if err != nil {
					return // closed underneath us: expected
				}
			}
		}(g)
	}
	time.Sleep(20 * time.Millisecond)
	if err := c.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	close(stop)
	wg.Wait()
	// Every post-close call fails fast.
	if _, err := c.ReadMulti([]int{0}); err == nil {
		t.Errorf("ReadMulti after close succeeded")
	}
}

func TestWriterCoalescesBackedUpRequests(t *testing.T) {
	// The writer coalesces only when the queue backs up — blocking callers
	// on an idle loopback never outpace it, so build the backlog with
	// fire-and-forget Unsubscribe enqueues: a tight enqueue loop is orders
	// of magnitude faster than the writer's per-frame syscalls, so most
	// messages must leave in shared Batch frames.
	srv, addr := newServer(t)
	const keys = 200
	all := make([]int, keys)
	for k := 0; k < keys; k++ {
		all[k] = k
		srv.SetInitial(k, float64(k))
	}
	c := dial(t, addr, keys)
	if err := c.SubscribeMulti(all); err != nil {
		t.Fatal(err)
	}
	before := c.Stats()
	for k := 0; k < keys; k++ {
		if err := c.Unsubscribe(k); err != nil {
			t.Fatalf("Unsubscribe(%d): %v", k, err)
		}
	}
	// A final Ping drains the queue (its response proves everything ahead
	// of it was written).
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	after := c.Stats()
	sent := after.FramesSent - before.FramesSent
	if sent >= keys {
		t.Errorf("%d enqueued messages used %d frames; expected Batch coalescing", keys+1, sent)
	}
	// The batched unsubscribes all took effect server-side.
	deadline := time.Now().Add(5 * time.Second)
	for {
		subs := 0
		for _, sh := range srv.Stats().PerShard {
			subs += sh.Subscriptions
		}
		if subs == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d subscriptions survived the batched unsubscribes", subs)
		}
		time.Sleep(time.Millisecond)
	}
}
