// Tests of the Watch streaming subscription over the networked client:
// lifecycle, pushed-refresh delivery, slow-consumer coalescing, and
// teardown races.
package client

import (
	"errors"
	"testing"
	"time"

	"apcache/internal/aperrs"
	"apcache/internal/watch"
)

func collectUntil(t *testing.T, w *watch.Watch, stop func(u watch.Update) bool) []watch.Update {
	t.Helper()
	var got []watch.Update
	deadline := time.After(10 * time.Second)
	for {
		select {
		case u, ok := <-w.Updates():
			if !ok {
				t.Fatalf("Updates closed early (Err: %v)", w.Err())
			}
			got = append(got, u)
			if stop(u) {
				return got
			}
		case <-deadline:
			t.Fatalf("condition never reached; got %d updates", len(got))
		}
	}
}

func TestWatchDeliversInitialAndPushedRefreshes(t *testing.T) {
	srv, addr := newServer(t)
	srv.SetInitial(1, 100)
	srv.SetInitial(2, 200)
	c := dial(t, addr, 10)
	w, err := c.Watch(1, 2)
	if err != nil {
		t.Fatalf("Watch: %v", err)
	}
	defer w.Close()
	// The stream opens with the initial approximations.
	seen := map[int]bool{}
	collectUntil(t, w, func(u watch.Update) bool {
		switch u.Key {
		case 1:
			if !u.Interval.Valid(100) {
				t.Errorf("key 1 initial %v invalid for 100", u.Interval)
			}
		case 2:
			if !u.Interval.Valid(200) {
				t.Errorf("key 2 initial %v invalid for 200", u.Interval)
			}
		default:
			t.Errorf("update for unwatched key %d", u.Key)
		}
		seen[u.Key] = true
		return len(seen) == 2
	})
	// An escaping update is pushed and observed with a valid interval.
	if n := srv.Set(1, 1e6); n != 1 {
		t.Fatalf("escape pushed %d refreshes, want 1", n)
	}
	collectUntil(t, w, func(u watch.Update) bool {
		return u.Key == 1 && u.Interval.Valid(1e6)
	})
}

func TestWatchUnknownKeyTyped(t *testing.T) {
	srv, addr := newServer(t)
	srv.SetInitial(0, 1)
	c := dial(t, addr, 10)
	_, err := c.Watch(0, 77)
	if !errors.Is(err, aperrs.ErrUnknownKey) {
		t.Fatalf("Watch err = %v, want ErrUnknownKey match", err)
	}
	// The failed watch must not leave registry entries behind: a later
	// push for key 0 reaches the cache without panicking into a dead watch.
	if n := c.PendingCalls(); n != 0 {
		t.Errorf("%d correlation slots leaked", n)
	}
}

func TestWatchSlowConsumerCoalesces(t *testing.T) {
	// A burst of pushes against a consumer that reads nothing must coalesce
	// per key (latest-wins) instead of stalling the read loop: the client
	// keeps serving calls, and once the consumer wakes it observes each
	// key's newest state within a bounded number of updates.
	srv, addr := newServer(t)
	const keys = 4
	for k := 0; k < keys; k++ {
		srv.SetInitial(k, 0)
	}
	c := dial(t, addr, keys)
	w, err := c.Watch(0, 1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	// Burst: every Set escapes (width 10, steps of 1000).
	const rounds = 200
	finals := make([]float64, keys)
	for i := 1; i <= rounds; i++ {
		for k := 0; k < keys; k++ {
			v := float64(i * 1000 * (k + 1))
			srv.Set(k, v)
			finals[k] = v
		}
	}
	// The read loop must not be stalled by the unread watch: a pipelined
	// call completes promptly.
	if err := c.Ping(); err != nil {
		t.Fatalf("Ping during unconsumed burst: %v", err)
	}
	// Wake the consumer: each key's newest interval must arrive.
	current := make(map[int]watch.Update)
	seenFinal := map[int]bool{}
	total := 0
	collectUntil(t, w, func(u watch.Update) bool {
		total++
		current[u.Key] = u
		if u.Interval.Valid(finals[u.Key]) {
			seenFinal[u.Key] = true
		}
		return len(seenFinal) == keys
	})
	// Latest-wins: far fewer deliveries than rounds*keys pushes were sent.
	if total >= rounds*keys {
		t.Errorf("slow consumer received %d updates for %d pushes; expected coalescing", total, rounds*keys)
	}
}

func TestWatchCloseMidPush(t *testing.T) {
	srv, addr := newServer(t)
	srv.SetInitial(0, 0)
	c := dial(t, addr, 4)
	for trial := 0; trial < 25; trial++ {
		w, err := c.Watch(0)
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			for i := 1; i <= 40; i++ {
				srv.Set(0, float64(trial*1_000_000+i*1000))
			}
		}()
		// Consume a little, then close while pushes are in flight.
		select {
		case <-w.Updates():
		case <-time.After(5 * time.Second):
			t.Fatalf("no update")
		}
		if err := w.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		<-done
		// The stream terminates; the client stays healthy.
		deadline := time.After(5 * time.Second)
	drain:
		for {
			select {
			case _, ok := <-w.Updates():
				if !ok {
					break drain
				}
			case <-deadline:
				t.Fatalf("Updates never closed after Close")
			}
		}
		if err := w.Err(); err != nil {
			t.Fatalf("Err after clean Close: %v", err)
		}
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("client unhealthy after close storm: %v", err)
	}
}

func TestWatchFailsOnConnectionLoss(t *testing.T) {
	srv, addr := newServer(t)
	srv.SetInitial(0, 1)
	c := dial(t, addr, 4)
	w, err := c.Watch(0)
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	deadline := time.After(10 * time.Second)
	for {
		select {
		case _, ok := <-w.Updates():
			if !ok {
				if w.Err() == nil {
					t.Fatalf("watch ended without error after connection loss")
				}
				return
			}
		case <-deadline:
			t.Fatalf("watch never ended after server close")
		}
	}
}

func TestWatchAfterClientCloseFails(t *testing.T) {
	srv, addr := newServer(t)
	srv.SetInitial(0, 1)
	c := dial(t, addr, 4)
	w, err := c.Watch(0)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	// The open watch ends with an error...
	deadline := time.After(10 * time.Second)
	for {
		closed := false
		select {
		case _, ok := <-w.Updates():
			closed = !ok
		case <-deadline:
			t.Fatalf("watch never ended after client close")
		}
		if closed {
			break
		}
	}
	if w.Err() == nil {
		t.Errorf("watch Err nil after client close")
	}
	// ...and new watches are refused.
	if _, err := c.Watch(0); !errors.Is(err, ErrClosed) {
		t.Errorf("Watch after close err = %v, want ErrClosed", err)
	}
}
