package client

import "time"

// PendingCalls reports the correlation table's live entry count — the leak
// check used by the cancellation tests.
func (c *Client) PendingCalls() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// SeedSmoothedRTT overwrites the RTT EWMA, letting ramp-policy tests model
// arbitrary link latencies without a real slow network.
func (c *Client) SeedSmoothedRTT(d time.Duration) { c.rttEWMA.Store(int64(d)) }

// ResolvedRamp exposes rampFor, the per-query refinement ramp resolution.
func (c *Client) ResolvedRamp() float64 { return c.rampFor() }

// BackoffDelay exposes ReconnectPolicy's delay computation with the jitter
// draw r pinned, so the backoff tests are deterministic.
func BackoffDelay(p ReconnectPolicy, attempt int, r float64) time.Duration {
	return p.delay(attempt, r)
}
