// Continuous-query integration tests: standing bounded aggregates
// registered over the wire, their answer streams, budget soundness under
// random-walk workloads, refresh-traffic advantage over polling, and
// fault-tolerance across reconnects and protocol downgrades.
package client

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"apcache/internal/aperrs"
	"apcache/internal/core"
	"apcache/internal/netproto"
	"apcache/internal/server"
	"apcache/internal/watch"
	"apcache/internal/workload"
)

// drainAnswers consumes every update currently queued on the watch,
// returning the newest answer seen (ok=false if none arrived).
func drainAnswers(w *watch.Watch) (last watch.Update, ok bool) {
	for {
		select {
		case u, open := <-w.Updates():
			if !open {
				return last, ok
			}
			if u.Event == watch.EventRefresh {
				last, ok = u, true
			}
		default:
			return last, ok
		}
	}
}

// TestWatchQuerySoundness registers SUM/MAX/AVG queries, drives random
// walks through the server, and checks the budget contract on both
// connection cores: every delivered answer interval has width at most
// Delta, and at quiescent checkpoints the answer contains the true
// aggregate.
func TestWatchQuerySoundness(t *testing.T) {
	forEachConnMode(t, func(t *testing.T, mode string) {
		srv, addr := newServerMode(t, mode)
		const nKeys = 16
		const delta = 24.0
		values := make([]float64, nKeys)
		keys := make([]int, nKeys)
		for k := 0; k < nKeys; k++ {
			values[k] = float64(100 + k)
			srv.SetInitial(k, values[k])
			keys[k] = k
		}
		c := dial(t, addr, nKeys)
		for _, q := range []struct {
			kind workload.AggKind
			agg  func([]float64) float64
		}{
			{workload.Sum, func(v []float64) float64 {
				s := 0.0
				for _, x := range v {
					s += x
				}
				return s
			}},
			{workload.Max, func(v []float64) float64 {
				m := math.Inf(-1)
				for _, x := range v {
					m = math.Max(m, x)
				}
				return m
			}},
			{workload.Avg, func(v []float64) float64 {
				s := 0.0
				for _, x := range v {
					s += x
				}
				return s / float64(len(v))
			}},
		} {
			t.Run(q.kind.String(), func(t *testing.T) {
				w, err := c.WatchQueryCtx(context.Background(), q.kind, delta, keys...)
				if err != nil {
					t.Fatalf("WatchQuery(%v): %v", q.kind, err)
				}
				defer w.Close()
				var last watch.Update
				var seen bool
				rng := rand.New(rand.NewSource(42))
				for step := 0; step < 400; step++ {
					k := rng.Intn(nKeys)
					values[k] += rng.Float64()*8 - 4
					srv.Set(k, values[k])
					if step%100 != 99 {
						continue
					}
					// Quiescent checkpoint: once in-flight updates land, the
					// newest delivered answer is the engine's current one,
					// which must contain the true aggregate within budget.
					truth := q.agg(values)
					deadline := time.Now().Add(5 * time.Second)
					for {
						if u, ok := drainAnswers(w); ok {
							last, seen = u, true
						}
						if seen {
							if last.Interval.Width() > delta+1e-9 {
								t.Fatalf("step %d: answer width %g > delta %g", step, last.Interval.Width(), delta)
							}
							if last.Interval.Valid(truth) {
								break
							}
						}
						if time.Now().After(deadline) {
							t.Fatalf("step %d: answer %v (seen=%v) never converged to contain truth %g", step, last.Interval, seen, truth)
						}
						time.Sleep(time.Millisecond)
					}
				}
			})
		}
	})
}

// TestStandingQueryBeatsPolling is the acceptance property of the CQ
// engine: a standing SUM over 64 random-walk keys costs measurably fewer
// refresh messages than the poll-equivalent Query loop at the same
// precision budget. The poller subscribes to the keys (the cheapest polling
// setup: pushes keep its cache warm) and runs one bounded Query per update
// step; the watcher holds one registration and receives only answer
// changes.
func TestStandingQueryBeatsPolling(t *testing.T) {
	srv, addr := newServer(t)
	const nKeys = 64
	const delta = 64.0
	values := make([]float64, nKeys)
	keys := make([]int, nKeys)
	walks := make([]*workload.RandomWalk, nKeys)
	for k := 0; k < nKeys; k++ {
		values[k] = 100
		srv.SetInitial(k, values[k])
		keys[k] = k
		walks[k] = workload.NewRandomWalk(values[k], 0.5, 4, rand.New(rand.NewSource(int64(k))))
	}

	watcher := dial(t, addr, nKeys)
	w, err := watcher.WatchQueryCtx(context.Background(), workload.Sum, delta, keys...)
	if err != nil {
		t.Fatalf("WatchQuery: %v", err)
	}
	defer w.Close()

	poller := dial(t, addr, nKeys)
	if err := poller.SubscribeMulti(keys); err != nil {
		t.Fatalf("SubscribeMulti: %v", err)
	}

	q := workload.Query{Kind: workload.Sum, Keys: keys, Delta: delta}
	const steps = 512
	for step := 0; step < steps; step++ {
		k := step % nKeys
		srv.Set(k, walks[k].Step())
		if step%4 == 3 {
			if _, err := poller.Query(q); err != nil {
				t.Fatalf("poll Query: %v", err)
			}
		}
	}
	// Quiesce so in-flight pushes land before the traffic comparison.
	time.Sleep(100 * time.Millisecond)

	ws, ps := watcher.Stats(), poller.Stats()
	cqTraffic := ws.FramesReceived
	pollTraffic := ps.ValueRefreshes + ps.QueryRefreshes
	t.Logf("standing CQ: %d frames (%d value refreshes); poll loop: %d refreshes (%d pushes + %d reads)",
		cqTraffic, ws.ValueRefreshes, pollTraffic, ps.ValueRefreshes, ps.QueryRefreshes)
	if ws.ValueRefreshes != 0 {
		t.Errorf("CQ watcher received %d per-key pushes; the aggregate should be maintained server-side", ws.ValueRefreshes)
	}
	if cqTraffic*2 >= pollTraffic {
		t.Errorf("standing CQ traffic %d not measurably below poll traffic %d", cqTraffic, pollTraffic)
	}
	if ws.Queries != 1 {
		t.Errorf("watcher Stats.Queries = %d, want 1", ws.Queries)
	}
}

// TestWatchQueryUnsupportedBelowV4 checks the typed downgrade: a client on
// a sub-v4 connection gets ErrQueryUnsupported from WatchQuery and
// WatchTagged immediately, and the connection stays fully usable.
func TestWatchQueryUnsupportedBelowV4(t *testing.T) {
	srv, addr := newServer(t)
	srv.SetInitial(0, 5)
	c := dialCfg(t, addr, Config{CacheSize: 4, ProtoVersion: netproto.Version3})
	if _, err := c.WatchQuery(workload.Sum, 1.0, 0); !errors.Is(err, aperrs.ErrQueryUnsupported) {
		t.Fatalf("WatchQuery on v3 = %v, want ErrQueryUnsupported match", err)
	}
	if _, err := c.WatchTagged(9, 0); !errors.Is(err, aperrs.ErrQueryUnsupported) {
		t.Fatalf("WatchTagged on v3 = %v, want ErrQueryUnsupported match", err)
	}
	if v, err := c.ReadExact(0); err != nil || v != 5 {
		t.Fatalf("connection unusable after rejected registration: %g, %v", v, err)
	}
	if st := c.Stats(); st.Queries != 0 {
		t.Errorf("Stats.Queries = %d after rejected registration", st.Queries)
	}
}

// TestReconnectDowngradeFailsQueryWatch replaces a v4 server with a
// v3-capped one behind the same proxy: the reconnect handshake lands on v3,
// the standing query cannot be replayed, so its watch fails with the typed
// ErrQueryUnsupported — while plain subscriptions and reads keep working on
// the downgraded wire. The renegotiation counterpart of
// TestReconnectRenegotiatesProtocol.
func TestReconnectDowngradeFailsQueryWatch(t *testing.T) {
	srv1, addr1 := newServer(t)
	srv1.SetInitial(0, 5)
	srv1.SetInitial(1, 6)
	p, c := proxied(t, addr1, Config{CacheSize: 8, Reconnect: ReconnectPolicy{
		Enabled:   true,
		BaseDelay: time.Millisecond,
		MaxDelay:  10 * time.Millisecond,
	}})
	if err := c.Subscribe(0); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	w, err := c.WatchQuery(workload.Sum, 4.0, 0, 1)
	if err != nil {
		t.Fatalf("WatchQuery: %v", err)
	}
	srv1.Close()
	p.Sever()

	srv2 := server.New(server.Config{
		Params:       core.Params{Cvr: 1, Cqr: 2, Alpha: 1, Lambda0: 0, Lambda1: math.Inf(1)},
		InitialWidth: 10,
		Seed:         2,
		ProtoVersion: netproto.Version3,
	})
	srv2.SetInitial(0, 7)
	srv2.SetInitial(1, 8)
	addr2, err := srv2.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { srv2.Close() })
	p.SetTarget(addr2.String())

	// The watch must terminate with the typed downgrade error.
	deadline := time.After(10 * time.Second)
	for open := true; open; {
		select {
		case _, ok := <-w.Updates():
			open = ok
		case <-deadline:
			t.Fatalf("query watch never closed after downgrade")
		}
	}
	if err := w.Err(); !errors.Is(err, aperrs.ErrQueryUnsupported) {
		t.Fatalf("downgraded query watch Err = %v, want ErrQueryUnsupported match", err)
	}
	if got := c.Proto(); got != netproto.Version3 {
		t.Fatalf("reconnected session negotiated v%d, want v3", got)
	}
	if v, err := c.ReadExact(0); err != nil || v != 7 {
		t.Fatalf("ReadExact over downgraded session = %g, %v; want 7", v, err)
	}
	if st := c.Stats(); st.Queries != 0 {
		t.Errorf("Stats.Queries = %d after downgrade, want 0", st.Queries)
	}
}

// TestStandingQuerySurvivesServerRestart is the chaos property: a
// registered continuous query rides a server kill + reconnect via
// registration replay — the watch observes the outage as a
// Disconnected/Reconnected pair, then resumes delivering answers from the
// replacement server, never failing.
func TestStandingQuerySurvivesServerRestart(t *testing.T) {
	srv1, addr1 := newServer(t)
	srv1.SetInitial(0, 10)
	srv1.SetInitial(1, 20)
	p, c := proxied(t, addr1, Config{CacheSize: 8, Reconnect: ReconnectPolicy{
		Enabled:   true,
		BaseDelay: time.Millisecond,
		MaxDelay:  10 * time.Millisecond,
	}})
	w, err := c.WatchQuery(workload.Sum, 6.0, 0, 1)
	if err != nil {
		t.Fatalf("WatchQuery: %v", err)
	}
	defer w.Close()
	srv1.Close()
	p.Sever()

	srv2 := server.New(server.Config{
		Params:       core.Params{Cvr: 1, Cqr: 2, Alpha: 1, Lambda0: 0, Lambda1: math.Inf(1)},
		InitialWidth: 10,
		Seed:         3,
	})
	srv2.SetInitial(0, 100)
	srv2.SetInitial(1, 200)
	addr2, err := srv2.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { srv2.Close() })
	p.SetTarget(addr2.String())

	// The replayed registration's ack re-seeds the answer from the new
	// server's values; drive one more update for good measure.
	sawDisc, sawRecon := false, false
	deadline := time.Now().Add(10 * time.Second)
	for {
		srv2.Set(0, 100+float64(time.Now().UnixNano()%7))
		select {
		case u, ok := <-w.Updates():
			if !ok {
				t.Fatalf("query watch died across restart: %v", w.Err())
			}
			switch u.Event {
			case watch.EventDisconnected:
				sawDisc = true
			case watch.EventReconnected:
				sawRecon = true
			case watch.EventRefresh:
				if sawRecon && u.Interval.Lo >= 250 {
					if u.Interval.Width() > 6.0+1e-9 {
						t.Fatalf("post-restart answer width %g > delta", u.Interval.Width())
					}
					if !sawDisc {
						t.Errorf("no EventDisconnected before recovery")
					}
					if c.Stats().Queries != 1 {
						t.Errorf("Stats.Queries = %d after replay, want 1", c.Stats().Queries)
					}
					return
				}
			}
		case <-time.After(5 * time.Millisecond):
		}
		if time.Now().After(deadline) {
			t.Fatalf("no post-restart answer (sawDisc=%v sawRecon=%v)", sawDisc, sawRecon)
		}
	}
}

// TestWatchTaggedFanout checks the push fan-out tag satellite: pushes for a
// tagged watch's keys carry the tag back on v4 connections, visible in
// Stats.TaggedPushes, and the tag is cleared with the subscription.
func TestWatchTaggedFanout(t *testing.T) {
	forEachConnMode(t, func(t *testing.T, mode string) {
		srv, addr := newServerMode(t, mode)
		srv.SetInitial(0, 50)
		srv.SetInitial(1, 60)
		c := dial(t, addr, 8)
		w, err := c.WatchTagged(77, 0, 1)
		if err != nil {
			t.Fatalf("WatchTagged: %v", err)
		}
		defer w.Close()
		deadline := time.Now().Add(5 * time.Second)
		v := 50.0
		for c.Stats().TaggedPushes == 0 {
			v += 100
			srv.Set(0, v)
			if time.Now().After(deadline) {
				t.Fatalf("no tagged push arrived")
			}
			time.Sleep(time.Millisecond)
		}
		// Unsubscribing clears the tag server-side: subsequent pushes for a
		// re-subscribed key are untagged.
		if err := c.Unsubscribe(0); err != nil {
			t.Fatalf("Unsubscribe: %v", err)
		}
		if err := c.Subscribe(0); err != nil {
			t.Fatalf("Subscribe: %v", err)
		}
		base := c.Stats()
		for i := 0; i < 50; i++ {
			v += 100
			srv.Set(0, v)
		}
		time.Sleep(50 * time.Millisecond)
		st := c.Stats()
		if st.ValueRefreshes <= base.ValueRefreshes {
			t.Fatalf("no pushes after re-subscribe")
		}
		if st.TaggedPushes != base.TaggedPushes {
			t.Errorf("pushes still tagged after unsubscribe: %d -> %d", base.TaggedPushes, st.TaggedPushes)
		}
	})
}
