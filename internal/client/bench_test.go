package client

// Benchmarks of the networked hot path over loopback TCP, comparing the v1
// one-frame-per-request protocol against the v2 batched/pipelined protocol.
// The headline numbers are recorded in BENCH_net.json at the repo root:
//
//	go test -run '^$' -bench 'BenchmarkNetPipeline|BenchmarkQueryFanout' -benchtime 2s ./internal/client

import (
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"

	"apcache/internal/core"
	"apcache/internal/netproto"
	"apcache/internal/server"
	"apcache/internal/workload"
)

func benchServer(b *testing.B, keys int, connMode string) (*server.Server, string) {
	b.Helper()
	// Alpha 0 freezes the widths at InitialWidth, so a Delta-0 query keeps
	// refetching every key on every iteration: the benchmark measures the
	// steady-state transport cost, not a workload that converges to
	// all-exact intervals and stops fetching.
	srv := server.New(server.Config{
		Params:       core.Params{Cvr: 1, Cqr: 2, Alpha: 0, Lambda0: 0, Lambda1: math.Inf(1)},
		InitialWidth: 10,
		Seed:         1,
		ConnMode:     connMode,
	})
	if connMode != "" && srv.ConnMode() != connMode {
		b.Skipf("conn mode %q unsupported on this platform", connMode)
	}
	for k := 0; k < keys; k++ {
		srv.SetInitial(k, float64(k))
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Close() })
	return srv, addr.String()
}

func benchDial(b *testing.B, addr string, keys, proto int) *Client {
	b.Helper()
	c, err := DialConfig(addr, Config{CacheSize: keys, ProtoVersion: proto})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	return c
}

// BenchmarkNetPipeline drives the mixed workload — mostly single exact
// reads, with a fanout SUM query mixed in — from parallel goroutines over
// one connection. v1 is the one-frame-per-request baseline; v2 pipelines
// the reads into Batch frames and collapses each query's refresh set into
// one ReadMulti.
func BenchmarkNetPipeline(b *testing.B) {
	const keys = 256
	const queryKeys = 32
	for _, proto := range []int{netproto.Version1, netproto.Version2} {
		for _, mode := range []string{server.ConnModeGoroutine, server.ConnModePoller} {
			b.Run(fmt.Sprintf("proto=v%d/connmode=%s", proto, mode), func(b *testing.B) {
				_, addr := benchServer(b, keys, mode)
				c := benchDial(b, addr, keys, proto)
				all := make([]int, keys)
				for k := range all {
					all[k] = k
				}
				if err := c.SubscribeMulti(all); err != nil {
					b.Fatal(err)
				}
				var seed atomic.Int64
				b.ReportAllocs()
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					rng := rand.New(rand.NewSource(seed.Add(1)))
					qkeys := make([]int, queryKeys)
					for pb.Next() {
						if rng.Intn(8) == 0 {
							for i := range qkeys {
								qkeys[i] = rng.Intn(keys)
							}
							if _, err := c.Query(workload.Query{Kind: workload.Sum, Keys: qkeys, Delta: 0}); err != nil {
								b.Error(err)
								return
							}
						} else {
							if _, err := c.ReadExact(rng.Intn(keys)); err != nil {
								b.Error(err)
								return
							}
						}
					}
				})
			})
		}
	}
}

// BenchmarkQueryFanout measures one bounded-aggregate query whose precision
// constraint forces a refresh of every key: K sequential round trips on v1
// versus a single ReadMulti round trip on v2.
func BenchmarkQueryFanout(b *testing.B) {
	const keys = 64
	for _, proto := range []int{netproto.Version1, netproto.Version2} {
		for _, mode := range []string{server.ConnModeGoroutine, server.ConnModePoller} {
			b.Run(fmt.Sprintf("proto=v%d/connmode=%s", proto, mode), func(b *testing.B) {
				_, addr := benchServer(b, keys, mode)
				c := benchDial(b, addr, keys, proto)
				all := make([]int, keys)
				for k := range all {
					all[k] = k
				}
				if err := c.SubscribeMulti(all); err != nil {
					b.Fatal(err)
				}
				q := workload.Query{Kind: workload.Sum, Keys: all, Delta: 0}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := c.Query(q); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
