package client

// Benchmark of the continuous-query engine against its poll-equivalent: a
// standing SUM(64 keys, Delta) registration maintained server-side versus a
// client loop re-running the same bounded Query after every source update.
// Each iteration is one source update step; refreshes/op is the wire
// refresh traffic that step cost (QueryUpdate frames for the standing
// query; pushes plus exact reads for the poll loop). The headline numbers
// are recorded in BENCH_cq.json at the repo root:
//
//	go test -run '^$' -bench BenchmarkCQStanding -benchtime 2s ./internal/client

import (
	"math"
	"math/rand"
	"testing"

	"apcache/internal/core"
	"apcache/internal/server"
	"apcache/internal/workload"
)

func cqBenchServer(b *testing.B, keys int, connMode string) (*server.Server, string) {
	b.Helper()
	srv := server.New(server.Config{
		Params:       core.Params{Cvr: 1, Cqr: 2, Alpha: 1, Lambda0: 0, Lambda1: math.Inf(1)},
		InitialWidth: 10,
		Seed:         1,
		ConnMode:     connMode,
	})
	if connMode != "" && srv.ConnMode() != connMode {
		b.Skipf("conn mode %q unsupported on this platform", connMode)
	}
	for k := 0; k < keys; k++ {
		srv.SetInitial(k, 100)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Close() })
	return srv, addr.String()
}

func BenchmarkCQStanding(b *testing.B) {
	const nKeys = 64
	const delta = 64.0
	keys := make([]int, nKeys)
	for k := range keys {
		keys[k] = k
	}

	newWalks := func() []*workload.RandomWalk {
		walks := make([]*workload.RandomWalk, nKeys)
		for k := range walks {
			walks[k] = workload.NewRandomWalk(100, 0.5, 4, rand.New(rand.NewSource(int64(k))))
		}
		return walks
	}

	for _, mode := range []string{server.ConnModeGoroutine, server.ConnModePoller} {
		b.Run("standing/connmode="+mode, func(b *testing.B) {
			srv, addr := cqBenchServer(b, nKeys, mode)
			c := benchDial(b, addr, nKeys, 0)
			w, err := c.WatchQuery(workload.Sum, delta, keys...)
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			walks := newWalks()
			base := c.Stats()
			pings := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := i % nKeys
				srv.Set(k, walks[k].Step())
				// Drain delivered answers like a live consumer would.
				for {
					select {
					case <-w.Updates():
						continue
					default:
					}
					break
				}
				if i%64 == 63 {
					// Pace the driver: an unpaced in-process Set loop outruns
					// the reply path by orders of magnitude over what any
					// real source sustains, and measures queue overflow
					// instead of steady state. The round trip bounds the
					// un-drained backlog at 64 updates.
					if err := c.Ping(); err != nil {
						b.Fatal(err)
					}
					pings++
				}
			}
			b.StopTimer()
			if err := w.Err(); err != nil {
				b.Fatalf("standing query died mid-benchmark: %v", err)
			}
			st := c.Stats()
			b.ReportMetric(float64(st.FramesReceived-base.FramesReceived-pings)/float64(b.N), "refreshes/op")
		})
		b.Run("poll/connmode="+mode, func(b *testing.B) {
			srv, addr := cqBenchServer(b, nKeys, mode)
			c := benchDial(b, addr, nKeys, 0)
			if err := c.SubscribeMulti(keys); err != nil {
				b.Fatal(err)
			}
			q := workload.Query{Kind: workload.Sum, Keys: keys, Delta: delta}
			walks := newWalks()
			base := c.Stats()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := i % nKeys
				srv.Set(k, walks[k].Step())
				if _, err := c.Query(q); err != nil {
					b.Fatal(err)
				}
				if i%64 == 63 {
					// Same pacing as the standing loop: locally-answered
					// queries never block, and on a small GOMAXPROCS an
					// unpaced driver starves the server's writer goroutine,
					// deferring pushes the poll client needs for sound
					// answers. The round trip lets them drain.
					if err := c.Ping(); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.StopTimer()
			st := c.Stats()
			b.ReportMetric(float64(st.ValueRefreshes-base.ValueRefreshes+st.QueryRefreshes-base.QueryRefreshes)/float64(b.N), "refreshes/op")
		})
	}
}
