// Tests of the API v1 surface: context plumbing (deadlines, cancellation,
// correlation-slot hygiene), the typed error taxonomy across the wire, and
// the RTT-adaptive refinement ramp.
package client

import (
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"apcache/internal/aperrs"
	"apcache/internal/netproto"
	"apcache/internal/query"
	"apcache/internal/workload"
)

func TestExpiredContextWritesNoFrame(t *testing.T) {
	srv, addr := newServer(t)
	srv.SetInitial(0, 1)
	c := dial(t, addr, 10)
	before := c.Stats().FramesSent
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := c.ReadExactCtx(ctx, 0); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if _, err := c.ReadMultiCtx(ctx, []int{0}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("ReadMulti err = %v, want context.DeadlineExceeded", err)
	}
	if err := c.PingCtx(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Ping err = %v, want context.DeadlineExceeded", err)
	}
	if n := c.PendingCalls(); n != 0 {
		t.Errorf("%d correlation slots leaked by expired-context calls", n)
	}
	// Nothing touched the wire. The writer is asynchronous, so a stray
	// frame would not necessarily be visible instantly — prove the counter
	// is exact by round-tripping a Ping (exactly one more frame).
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if sent := c.Stats().FramesSent - before; sent != 1 {
		t.Errorf("expired-context calls wrote %d frames, want 0", sent-1)
	}
}

func TestCancelMidCallFreesCorrelationSlot(t *testing.T) {
	s, addr := newStubServer(t)
	c := dialCfg(t, addr, Config{CacheSize: 4, ProtoVersion: netproto.Version1, Timeout: time.Minute})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.ReadExactCtx(ctx, 9)
		done <- err
	}()
	// Wait until the call is registered, then cancel it.
	deadline := time.Now().Add(5 * time.Second)
	for c.PendingCalls() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("call never registered")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := c.PendingCalls(); n != 0 {
		t.Fatalf("%d correlation slots leaked after cancellation", n)
	}
	// The late response must be treated as unsolicited: interval installed,
	// connection healthy.
	close(s.release)
	deadline = time.Now().Add(5 * time.Second)
	for {
		if iv, ok := c.Get(9); ok && iv.Valid(42) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("late response's interval never installed")
		}
		time.Sleep(time.Millisecond)
	}
	if err := c.Ping(); err != nil {
		t.Errorf("Ping after cancelled call: %v", err)
	}
}

func TestCancelMidReadMulti(t *testing.T) {
	// Cancellation racing a pipelined multi-chunk read: every outstanding
	// chunk's slot must be freed, and the client must stay usable.
	srv, addr := newServer(t)
	const keys = 300 // 3 chunks at MaxBatch 128
	all := make([]int, keys)
	for k := 0; k < keys; k++ {
		all[k] = k
		srv.SetInitial(k, float64(k))
	}
	c := dial(t, addr, keys)
	for trial := 0; trial < 20; trial++ {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			_, err := c.ReadMultiCtx(ctx, all)
			done <- err
		}()
		time.Sleep(time.Duration(trial%5) * 100 * time.Microsecond)
		cancel()
		err := <-done
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("trial %d: err = %v, want nil or context.Canceled", trial, err)
		}
		deadline := time.Now().Add(5 * time.Second)
		for c.PendingCalls() != 0 {
			if time.Now().After(deadline) {
				t.Fatalf("trial %d: %d correlation slots leaked", trial, c.PendingCalls())
			}
			time.Sleep(time.Millisecond)
		}
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("client unhealthy after cancel storm: %v", err)
	}
}

func TestCancelBetweenRefinementRounds(t *testing.T) {
	// A MAX query over uncached keys refines one key per round on a v1
	// connection. The stub answers the first round's fetch and parks every
	// later one; cancelling then must end the query mid-ramp with
	// context.Canceled instead of waiting out the remaining rounds.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	firstAnswered := make(chan struct{})
	var reads atomic.Int64
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		for {
			msg, err := netproto.ReadMsg(conn)
			if err != nil {
				conn.Close()
				return
			}
			if m, ok := msg.(*netproto.Read); ok {
				if reads.Add(1) == 1 {
					netproto.Write(conn, &netproto.Refresh{
						ID: m.ID, Key: m.Key, Kind: netproto.KindQueryInitiated,
						Value: 5, Lo: 5, Hi: 5,
					})
					close(firstAnswered)
				}
				// Later rounds: never answered; the cancel must win.
			}
		}
	}()
	c := dialCfg(t, ln.Addr().String(), Config{CacheSize: 8, ProtoVersion: netproto.Version1, Timeout: time.Minute})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		<-firstAnswered
		cancel()
	}()
	_, qerr := c.QueryCtx(ctx, workload.Query{Kind: workload.Max, Keys: []int{1, 2, 3}, Delta: 0})
	if !errors.Is(qerr, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", qerr)
	}
	// Mid-ramp means rounds 2 and 3 never both ran: at most the in-flight
	// second fetch was issued, never the third.
	if n := reads.Load(); n > 2 {
		t.Errorf("cancelled query issued %d fetch rounds, want <= 2", n)
	}
	if n := c.PendingCalls(); n != 0 {
		t.Errorf("%d correlation slots leaked", n)
	}
}

func TestCancelRacesClose(t *testing.T) {
	srv, addr := newServer(t)
	for k := 0; k < 8; k++ {
		srv.SetInitial(k, float64(k))
	}
	c, err := DialConfig(addr, Config{CacheSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ctx, cancel := context.WithCancel(context.Background())
				go func() {
					time.Sleep(time.Duration(g) * 50 * time.Microsecond)
					cancel()
				}()
				var err error
				switch g % 3 {
				case 0:
					_, err = c.ReadExactCtx(ctx, g)
				case 1:
					_, err = c.ReadMultiCtx(ctx, []int{0, 1, 2, 3})
				default:
					_, err = c.QueryCtx(ctx, workload.Query{Kind: workload.Max, Keys: []int{4, 5, 6}, Delta: 0})
				}
				if err != nil && !errors.Is(err, context.Canceled) {
					return // closed underneath us: expected
				}
				cancel()
			}
		}(g)
	}
	time.Sleep(20 * time.Millisecond)
	if err := c.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	close(stop)
	wg.Wait()
	if _, err := c.ReadExactCtx(context.Background(), 0); !errors.Is(err, ErrClosed) {
		t.Errorf("post-close err = %v, want ErrClosed", err)
	}
}

func TestDefaultTimeoutMatchesTaxonomy(t *testing.T) {
	_, addr := newStubServer(t)
	c := dialCfg(t, addr, Config{CacheSize: 4, ProtoVersion: netproto.Version1, Timeout: 50 * time.Millisecond})
	_, err := c.ReadExact(9)
	if !errors.Is(err, aperrs.ErrTimeout) {
		t.Errorf("err = %v, want ErrTimeout", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v should also match context.DeadlineExceeded", err)
	}
	// A per-call deadline overrides the default and fails with the
	// context's own error.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err = c.ReadExactCtx(ctx, 9)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("ctx deadline err = %v, want context.DeadlineExceeded", err)
	}
	if n := c.PendingCalls(); n != 0 {
		t.Errorf("%d correlation slots leaked by timeouts", n)
	}
}

func TestUnknownKeyTypedAcrossWire(t *testing.T) {
	// The acceptance property of the error taxonomy: errors.Is/As resolves
	// an unknown-key failure from a v2 server exactly as in-process.
	srv, addr := newServer(t)
	srv.SetInitial(0, 1)
	c := dial(t, addr, 10)
	if c.Proto() < netproto.Version3 {
		t.Fatalf("want v3+ connection, got v%d", c.Proto())
	}
	_, err := c.ReadExactCtx(context.Background(), 42)
	if !errors.Is(err, aperrs.ErrUnknownKey) {
		t.Fatalf("ReadExact err = %v, want ErrUnknownKey match", err)
	}
	var ke *aperrs.KeyError
	if !errors.As(err, &ke) || ke.Key != 42 {
		t.Fatalf("errors.As key = %+v, want 42", ke)
	}
	if err := c.Subscribe(43); !errors.Is(err, aperrs.ErrUnknownKey) {
		t.Fatalf("Subscribe err = %v, want ErrUnknownKey match", err)
	}
	err = c.SubscribeMulti([]int{0, 44})
	if !errors.Is(err, aperrs.ErrUnknownKey) {
		t.Fatalf("SubscribeMulti err = %v, want ErrUnknownKey match", err)
	}
	if !errors.As(err, &ke) || ke.Key != 44 {
		t.Fatalf("SubscribeMulti key = %+v, want 44", ke)
	}
	if _, err := c.Query(workload.Query{Kind: workload.Sum, Keys: []int{0, 45}, Delta: 0}); !errors.Is(err, aperrs.ErrUnknownKey) {
		t.Fatalf("Query err = %v, want ErrUnknownKey match", err)
	}
}

func TestUnknownKeyGenericOnOlderProtocols(t *testing.T) {
	// v1 and v2 connections have no structured error frame: the failure is
	// still a ServerError, but carries no taxonomy identity.
	srv, addr := newServer(t)
	srv.SetInitial(0, 1)
	for _, ver := range []int{netproto.Version1, netproto.Version2} {
		c := dialCfg(t, addr, Config{CacheSize: 10, ProtoVersion: ver})
		_, err := c.ReadExact(42)
		var se *ServerError
		if !errors.As(err, &se) {
			t.Fatalf("v%d: err = %T %v, want *ServerError", ver, err, err)
		}
		if errors.Is(err, aperrs.ErrUnknownKey) {
			t.Errorf("v%d error unexpectedly carries taxonomy identity", ver)
		}
	}
}

func TestAdaptiveRampFromRTT(t *testing.T) {
	srv, addr := newServer(t)
	srv.SetInitial(0, 1)
	c := dialCfg(t, addr, Config{CacheSize: 10}) // RampFactor unset: adaptive
	// Before any sample: the static default.
	c.SeedSmoothedRTT(0)
	if r := c.ResolvedRamp(); r != query.DefaultRamp {
		t.Errorf("ramp with no RTT sample = %g, want DefaultRamp %g", r, query.DefaultRamp)
	}
	// Low-latency link: near-minimal ramp.
	c.SeedSmoothedRTT(10 * time.Microsecond)
	if r := c.ResolvedRamp(); r < 1 || r > 1.5 {
		t.Errorf("ramp at 10µs RTT = %g, want ~1.1", r)
	}
	// High-latency link: clamped aggressive ramp.
	c.SeedSmoothedRTT(100 * time.Millisecond)
	if r := c.ResolvedRamp(); r != MaxAdaptiveRamp {
		t.Errorf("ramp at 100ms RTT = %g, want clamp %g", r, MaxAdaptiveRamp)
	}
	// A real call populates the EWMA.
	c.SeedSmoothedRTT(0)
	if _, err := c.ReadExact(0); err != nil {
		t.Fatal(err)
	}
	if c.Stats().SmoothedRTT <= 0 {
		t.Errorf("SmoothedRTT not recorded after a call")
	}
	// An explicit RampFactor pins the ramp regardless of RTT.
	cp := dialCfg(t, addr, Config{CacheSize: 10, RampFactor: 3})
	cp.SeedSmoothedRTT(100 * time.Millisecond)
	if r := cp.ResolvedRamp(); r != 3 {
		t.Errorf("pinned ramp = %g, want 3", r)
	}
}
