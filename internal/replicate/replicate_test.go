package replicate

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"apcache/internal/core"
)

// fire always triggers probabilistic adjustments.
type fire struct{}

func (fire) Float64() float64 { return 0 }

func config(n int) Config {
	return Config{
		Replicas:     n,
		Params:       core.Params{Cvr: 1, Cqr: 2, Alpha: 1, Lambda0: 0, Lambda1: math.Inf(1)},
		InitialShare: 4,
		RNG:          fire{},
	}
}

func TestWriteBuffersUntilShareExceeded(t *testing.T) {
	g, err := New(config(2))
	if err != nil {
		t.Fatal(err)
	}
	if g.Write(0, 3) { // |3| <= share 4
		t.Fatalf("small write propagated")
	}
	if g.True() != 3 {
		t.Fatalf("True = %g", g.True())
	}
	if !g.Write(0, 3) { // |6| > 4 -> push
		t.Fatalf("overflow write did not propagate")
	}
	st := g.Stats()
	if st.Pushes != 1 || st.Cost != 1 {
		t.Errorf("stats %+v", st)
	}
	// Push grew replica 0's share to 8.
	if g.Share(0) != 8 {
		t.Errorf("share after push %g, want 8", g.Share(0))
	}
}

func TestReadSoundAndPrecise(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := config(4)
	cfg.RNG = rng
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		g.Write(rng.Intn(4), rng.Float64()*6-3)
		if i%10 == 0 {
			delta := rng.Float64() * 30
			iv := g.Read(delta)
			if !iv.Valid(g.True()) {
				t.Fatalf("step %d: %v excludes true value %g", i, iv, g.True())
			}
			if iv.Width() > delta+1e-9 {
				t.Fatalf("step %d: width %g > delta %g", i, iv.Width(), delta)
			}
		}
	}
}

func TestExactReadDrainsEverything(t *testing.T) {
	g, err := New(config(3))
	if err != nil {
		t.Fatal(err)
	}
	g.Write(0, 2)
	g.Write(1, -1)
	g.Write(2, 3)
	iv := g.Read(0)
	if !iv.IsExact() || iv.Lo != 4 {
		t.Fatalf("exact read %v, want [4, 4]", iv)
	}
	if g.Stats().Syncs != 3 {
		t.Errorf("syncs = %d, want 3", g.Stats().Syncs)
	}
}

func TestLooseReadIsFree(t *testing.T) {
	g, err := New(config(2)) // total slack 8, worst-case width 16
	if err != nil {
		t.Fatal(err)
	}
	g.Write(0, 2)
	before := g.Stats()
	iv := g.Read(100)
	if g.Stats().Syncs != before.Syncs {
		t.Errorf("loose read synced")
	}
	if !iv.Valid(2) {
		t.Errorf("result %v excludes 2", iv)
	}
}

func TestHotWriterEarnsLargerShare(t *testing.T) {
	// The adaptive claim: a replica with heavy write traffic should end up
	// with a larger slack share than an idle one, amortizing its pushes.
	rng := rand.New(rand.NewSource(2))
	cfg := config(2)
	cfg.RNG = rng
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		g.Write(0, rng.Float64()*4-2) // hot
		if i%50 == 0 {
			g.Write(1, rng.Float64()*0.02-0.01) // nearly idle
		}
		if i%20 == 0 {
			g.Read(10 + rng.Float64()*20)
		}
	}
	if g.Share(0) <= g.Share(1) {
		t.Errorf("hot writer share %g not above idle share %g", g.Share(0), g.Share(1))
	}
}

func TestSyncShrinksShare(t *testing.T) {
	g, err := New(config(1))
	if err != nil {
		t.Fatal(err)
	}
	g.Write(0, 1)
	g.Read(0) // sync -> shrink share 4 -> 2
	if g.Share(0) != 2 {
		t.Errorf("share after sync %g, want 2", g.Share(0))
	}
	st := g.Stats()
	if st.Syncs != 1 || st.Pushes != 0 {
		t.Errorf("stats %+v", st)
	}
	if st.Cost != 2 { // one Cqr
		t.Errorf("cost %g, want 2", st.Cost)
	}
}

func TestConfigValidate(t *testing.T) {
	good := config(2)
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bad := []Config{
		{Replicas: 0, Params: good.Params, InitialShare: 1, RNG: fire{}},
		{Replicas: 1, Params: core.Params{Cvr: -1, Cqr: 1}, InitialShare: 1, RNG: fire{}},
		{Replicas: 1, Params: good.Params, InitialShare: -1, RNG: fire{}},
		{Replicas: 1, Params: good.Params, InitialShare: 1, RNG: nil},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
		if _, err := New(c); err == nil {
			t.Errorf("New accepted bad config %d", i)
		}
	}
}

func TestPanics(t *testing.T) {
	g, _ := New(config(2))
	cases := []func(){
		func() { g.Write(5, 1) },
		func() { g.Write(-1, 1) },
		func() { g.Read(-1) },
		func() { g.Read(math.NaN()) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestQuickReadAlwaysSound(t *testing.T) {
	f := func(seed int64, nRaw uint8, ops []int8) bool {
		n := int(nRaw)%5 + 1
		rng := rand.New(rand.NewSource(seed))
		cfg := config(n)
		cfg.RNG = rng
		g, err := New(cfg)
		if err != nil {
			return false
		}
		for k, op := range ops {
			g.Write(k%n, float64(op)/8)
			if k%5 == 0 {
				delta := math.Abs(float64(op))
				iv := g.Read(delta)
				if !iv.Valid(g.True()) {
					return false
				}
				if iv.Width() > delta+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickPendingNeverExceedsShare(t *testing.T) {
	f := func(seed int64, ops []int8) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := config(3)
		cfg.RNG = rng
		g, err := New(cfg)
		if err != nil {
			return false
		}
		for k, op := range ops {
			g.Write(k%3, float64(op)/4)
			// Invariant: every replica's buffered writes fit its share.
			for i, r := range g.replicas {
				if math.Abs(r.pending) > r.share()+1e-9 {
					_ = i
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
