// Package replicate implements adaptive precision setting in a symmetric
// replication architecture — the second future-work direction of the
// paper's Section 5 ("building on work on adaptive exact replication
// [WJH97] and on replicating interval approximations [YV00]").
//
// The setting follows Yu and Vahdat's TACT-style numeric error bounding
// [YV00]: a logical numeric value is the sum of contributions accumulated at
// n replicas (a distributed counter or gauge). Each replica i may buffer
// local writes up to a slack share s_i before propagating them to the
// group; the logical value read anywhere is then known to within the total
// outstanding slack, Sum(s_i). Two traffic kinds mirror the paper's two
// refresh kinds:
//
//   - a push (value-initiated analog, cost Cvr): replica i's buffered
//     writes exceed s_i, so it must propagate;
//   - a sync (query-initiated analog, cost Cqr): a read needs the value
//     within delta < Sum(s_i), so replicas are drained until the remaining
//     slack fits.
//
// The contribution transplanted from the paper: each replica's share is set
// by the same probabilistic controller — grown by (1+alpha) with probability
// min(theta,1) on a push, shrunk with probability min(1/theta,1) on a sync —
// so the slack allocation adapts per replica to its local write rate and to
// the read precision demand, with no rate monitoring.
package replicate

import (
	"fmt"
	"math"
	"sort"

	"apcache/internal/core"
	"apcache/internal/interval"
)

// Config describes a replica group.
type Config struct {
	// Replicas is n >= 1.
	Replicas int
	// Params configures the share controllers; Cvr is the cost of one
	// push, Cqr the cost of one sync.
	Params core.Params
	// InitialShare seeds every replica's slack share.
	InitialShare float64
	// RNG drives the probabilistic share adjustments.
	RNG core.Rand
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Replicas < 1 {
		return fmt.Errorf("replicate: Replicas must be >= 1, got %d", c.Replicas)
	}
	if err := c.Params.Validate(); err != nil {
		return err
	}
	if c.InitialShare < 0 || math.IsNaN(c.InitialShare) {
		return fmt.Errorf("replicate: bad InitialShare %g", c.InitialShare)
	}
	if c.RNG == nil {
		return fmt.Errorf("replicate: nil RNG")
	}
	return nil
}

// replica is one member's state.
type replica struct {
	ctrl    *core.Controller
	pending float64 // buffered (unpropagated) local writes
}

// share returns the replica's current slack share (its controller's
// effective width).
func (r *replica) share() float64 { return r.ctrl.EffectiveWidth() }

// Group is a symmetric replica group over one logical numeric value. It is
// not safe for concurrent use.
type Group struct {
	cfg      Config
	replicas []*replica
	base     float64 // globally agreed portion of the value

	pushes, syncs int
	cost          float64
}

// New builds a group.
func New(cfg Config) (*Group, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &Group{cfg: cfg}
	for i := 0; i < cfg.Replicas; i++ {
		g.replicas = append(g.replicas, &replica{
			ctrl: core.NewController(cfg.Params, cfg.InitialShare, cfg.RNG),
		})
	}
	return g, nil
}

// Replicas returns n.
func (g *Group) Replicas() int { return len(g.replicas) }

// True returns the exact logical value (base plus all buffered writes) —
// the quantity only an oracle sees; reads go through Read.
func (g *Group) True() float64 {
	v := g.base
	for _, r := range g.replicas {
		v += r.pending
	}
	return v
}

// Slack returns the total outstanding slack Sum(s_i): the width of the
// interval any replica can assert around the agreed base.
func (g *Group) Slack() float64 {
	var s float64
	for _, r := range g.replicas {
		s += r.share()
	}
	return s
}

// Share returns replica i's current slack share.
func (g *Group) Share(i int) float64 { return g.replicas[i].share() }

// Write applies a local delta at replica i. If the replica's buffered
// writes exceed its share it propagates: the buffer folds into the base, one
// push is charged, and the share grows per the controller. It reports
// whether a push occurred.
func (g *Group) Write(i int, delta float64) bool {
	if i < 0 || i >= len(g.replicas) {
		panic(fmt.Sprintf("replicate: replica %d out of range 0..%d", i, len(g.replicas)-1))
	}
	r := g.replicas[i]
	r.pending += delta
	if math.Abs(r.pending) <= r.share() {
		return false
	}
	g.propagate(r)
	r.ctrl.OnRefresh(core.ValueInitiated)
	return true
}

// propagate folds replica r's buffer into the agreed base.
func (g *Group) propagate(r *replica) {
	g.base += r.pending
	r.pending = 0
	g.pushes++
	g.cost += g.cfg.Params.Cvr
}

// Read returns an interval of width at most delta containing the logical
// value. While the outstanding slack exceeds delta it syncs replicas in
// decreasing-share order (draining the largest uncertainty first), charging
// one sync each and shrinking the synced replica's share per the controller.
func (g *Group) Read(delta float64) interval.Interval {
	if delta < 0 || math.IsNaN(delta) {
		panic(fmt.Sprintf("replicate: bad delta %g", delta))
	}
	// Order replicas by decreasing share.
	order := make([]int, len(g.replicas))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return g.replicas[order[a]].share() > g.replicas[order[b]].share()
	})
	synced := make(map[int]bool)
	residual := func() float64 {
		var s float64
		for j, r := range g.replicas {
			if !synced[j] {
				s += r.share()
			}
		}
		return s
	}
	for _, i := range order {
		// Each unsynced replica j may hold buffered writes anywhere in
		// [-s_j, s_j], so the answer interval has width 2*residual.
		if 2*residual() <= delta {
			break
		}
		r := g.replicas[i]
		g.propagate(r)
		g.cost += g.cfg.Params.Cqr - g.cfg.Params.Cvr // reclassify as a sync
		g.pushes--
		g.syncs++
		r.ctrl.OnRefresh(core.QueryInitiated)
		synced[i] = true
	}
	res := residual()
	return interval.Interval{Lo: g.base - res, Hi: g.base + res}
}

// Stats reports traffic counts and cost.
type Stats struct {
	// Pushes and Syncs count propagations by trigger.
	Pushes, Syncs int
	// Cost is the total weighted traffic cost.
	Cost float64
}

// Stats snapshots the counters.
func (g *Group) Stats() Stats {
	return Stats{Pushes: g.pushes, Syncs: g.syncs, Cost: g.cost}
}
