//go:build !race

package netproto

// raceEnabled reports whether the race detector is active; allocation-count
// assertions are skipped under it (instrumentation and sync.Pool behavior
// change the numbers).
const raceEnabled = false
