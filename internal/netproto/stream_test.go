package netproto

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
)

// streamFrames is a representative frame mix: every hot type, a Batch with
// mixed cargo, and the optional trailing CqrCost field both present and
// absent.
func streamFrames(t *testing.T) ([]Message, []byte) {
	t.Helper()
	msgs := []Message{
		&Hello{ID: 1, Version: 3, MaxBatch: 64},
		&HelloAck{ID: 1, Version: 3, MaxBatch: 64, CqrCost: 1500},
		&Subscribe{ID: 2, Key: 7},
		&Refresh{ID: 2, Key: 7, Kind: KindInitial, Value: 3.5, Lo: 1, Hi: 5, OriginalWidth: 4},
		&ReadMulti{ID: 3, Keys: []int64{1, 2, 3}},
		&RefreshBatch{ID: 3, Items: []RefreshItem{
			{Key: 1, Kind: KindQueryInitiated, Value: 1, Lo: 1, Hi: 1},
			{Key: 2, Kind: KindQueryInitiated, Value: 2, Lo: 2, Hi: 2},
		}},
		&RefreshBatch{ID: 0, Items: []RefreshItem{
			{Key: 9, Kind: KindValueInitiated, Value: 4, Lo: 3, Hi: 5, OriginalWidth: 2},
		}, CqrCost: 2750},
		&Batch{Msgs: []Message{
			&Read{ID: 4, Key: 1},
			&Ping{ID: 5},
			&Subscribe{ID: 6, Key: 2},
		}},
		&Error2{ID: 7, Code: CodeUnknownKey, Key: 42, Msg: "unknown key 42"},
		&Pong{ID: 5},
	}
	var wire []byte
	var err error
	for _, m := range msgs {
		wire, err = AppendFrame(wire, m)
		if err != nil {
			t.Fatalf("AppendFrame(%T): %v", m, err)
		}
	}
	return msgs, wire
}

// snapshot deep-copies a decoded message out of the decoder's reused boxes
// so it can be compared after the stream moves on.
func snapshot(t *testing.T, m Message) Message {
	t.Helper()
	switch v := m.(type) {
	case *Batch:
		cp := &Batch{}
		for _, sub := range v.Msgs {
			cp.Msgs = append(cp.Msgs, snapshot(t, sub))
		}
		return cp
	case *RefreshBatch:
		cp := *v
		cp.Items = append([]RefreshItem(nil), v.Items...)
		return &cp
	case *ReadMulti:
		cp := *v
		cp.Keys = append([]int64(nil), v.Keys...)
		return &cp
	case *SubscribeMulti:
		cp := *v
		cp.Keys = append([]int64(nil), v.Keys...)
		return &cp
	default:
		cp := reflect.New(reflect.TypeOf(m).Elem())
		cp.Elem().Set(reflect.ValueOf(m).Elem())
		return cp.Interface().(Message)
	}
}

// feedChunks drives a StreamDecoder with the wire bytes split into chunks
// of the given size and returns the decoded messages.
func feedChunks(t *testing.T, wire []byte, chunk int) []Message {
	t.Helper()
	sd := NewStreamDecoder()
	var got []Message
	for off := 0; off < len(wire); off += chunk {
		end := off + chunk
		if end > len(wire) {
			end = len(wire)
		}
		// Feed through a scratch copy that is poisoned afterwards, proving
		// the decoder does not retain chunk memory.
		scratch := append([]byte(nil), wire[off:end]...)
		err := sd.Feed(scratch, func(m Message) error {
			got = append(got, snapshot(t, m))
			return nil
		})
		if err != nil {
			t.Fatalf("Feed(chunk %d at %d): %v", chunk, off, err)
		}
		for i := range scratch {
			scratch[i] = 0xAA
		}
	}
	if sd.Pending() != 0 {
		t.Fatalf("chunk %d: %d bytes still pending after full stream", chunk, sd.Pending())
	}
	return got
}

// TestStreamDecoderChunkSizes decodes the same stream at every pathological
// chunking — including one byte at a time, the partial-frame torture case —
// and requires exact parity with the blocking Decoder's view.
func TestStreamDecoderChunkSizes(t *testing.T) {
	msgs, wire := streamFrames(t)
	for _, chunk := range []int{1, 2, 3, 4, 5, 7, 16, len(wire)} {
		t.Run(fmt.Sprintf("chunk=%d", chunk), func(t *testing.T) {
			got := feedChunks(t, wire, chunk)
			if len(got) != len(msgs) {
				t.Fatalf("decoded %d messages, want %d", len(got), len(msgs))
			}
			for i := range msgs {
				if !reflect.DeepEqual(got[i], msgs[i]) {
					t.Errorf("message %d: got %#v, want %#v", i, got[i], msgs[i])
				}
			}
		})
	}
}

// TestStreamDecoderMatchesDecoder is a parity check against the io.Reader
// Decoder over the same bytes.
func TestStreamDecoderMatchesDecoder(t *testing.T) {
	_, wire := streamFrames(t)
	d := NewDecoder(bytes.NewReader(wire))
	var want []Message
	for {
		m, err := d.Decode()
		if err != nil {
			break
		}
		want = append(want, snapshot(t, m))
	}
	got := feedChunks(t, wire, 3)
	if len(got) != len(want) {
		t.Fatalf("stream decoded %d messages, Decoder %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("message %d: stream %#v, Decoder %#v", i, got[i], want[i])
		}
	}
}

func TestStreamDecoderRejectsBadFrames(t *testing.T) {
	cases := []struct {
		name string
		wire []byte
	}{
		{"zero-length", []byte{0, 0, 0, 0, byte(TPing)}},
		{"oversized", []byte{0xFF, 0xFF, 0xFF, 0x7F, byte(TPing)}},
		{"unknown-type", func() []byte {
			b, _ := AppendFrame(nil, &Ping{ID: 1})
			b[4] = 0xEE
			return b
		}()},
		{"truncated-body", func() []byte {
			b, _ := AppendFrame(nil, &Refresh{ID: 1, Key: 2})
			b[0]-- // shrink the declared length: body decode must fail
			return b[:len(b)-1]
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sd := NewStreamDecoder()
			err := sd.Feed(tc.wire, func(Message) error { return nil })
			if err == nil {
				t.Fatalf("Feed accepted %s frame", tc.name)
			}
		})
	}
}

// TestStreamDecoderEmitError verifies a handler error aborts the feed.
func TestStreamDecoderEmitError(t *testing.T) {
	_, wire := streamFrames(t)
	sd := NewStreamDecoder()
	boom := fmt.Errorf("handler rejected")
	n := 0
	err := sd.Feed(wire, func(Message) error {
		n++
		if n == 2 {
			return boom
		}
		return nil
	})
	if err != boom {
		t.Fatalf("Feed error = %v, want the handler's", err)
	}
	if n != 2 {
		t.Fatalf("emit ran %d times, want 2", n)
	}
}

// TestStreamDecodeAllocs locks the incremental decoder into the same
// zero-allocation budget as the blocking Decoder: steady-state feeding of
// whole and split frames must not allocate.
func TestStreamDecodeAllocs(t *testing.T) {
	if testing.CoverMode() != "" {
		t.Skip("coverage instrumentation allocates")
	}
	var wire []byte
	var err error
	for _, m := range []Message{
		&Read{ID: 1, Key: 2},
		&Refresh{ID: 1, Key: 2, Kind: KindQueryInitiated, Value: 1, Lo: 0, Hi: 2},
		&RefreshBatch{ID: 0, Items: []RefreshItem{
			{Key: 1, Kind: KindValueInitiated, Value: 1, Lo: 0, Hi: 2},
			{Key: 2, Kind: KindValueInitiated, Value: 2, Lo: 1, Hi: 3},
		}},
	} {
		wire, err = AppendFrame(wire, m)
		if err != nil {
			t.Fatal(err)
		}
	}
	sd := NewStreamDecoder()
	emit := func(Message) error { return nil }
	// Warm the pending buffer's capacity.
	if err := sd.Feed(wire[:7], emit); err != nil {
		t.Fatal(err)
	}
	if err := sd.Feed(wire[7:], emit); err != nil {
		t.Fatal(err)
	}
	split := len(wire) / 2
	avg := testing.AllocsPerRun(200, func() {
		if err := sd.Feed(wire[:split], emit); err != nil {
			t.Fatal(err)
		}
		if err := sd.Feed(wire[split:], emit); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0 {
		t.Fatalf("steady-state Feed allocates %.1f times per stream, want 0", avg)
	}
}
