package netproto

import (
	"bytes"
	"testing"
)

// FuzzReadMsg feeds arbitrary byte streams to the frame decoder: it must
// never panic, and anything it accepts must re-encode to a frame it accepts
// again (decode/encode/decode fixpoint).
func FuzzReadMsg(f *testing.F) {
	// Seed with valid frames of every type.
	seeds := []Message{
		&Subscribe{ID: 1, Key: 2},
		&Unsubscribe{ID: 3, Key: 4},
		&Read{ID: 5, Key: 6},
		&Ping{ID: 7},
		&Refresh{ID: 8, Key: 9, Kind: KindValueInitiated, Value: 1, Lo: 0, Hi: 2, OriginalWidth: 2},
		&Pong{ID: 10},
		&ErrorMsg{ID: 11, Msg: "nope"},
		&Hello{ID: 12, Version: Version2, MaxBatch: 128},
		&HelloAck{ID: 13, Version: Version2, MaxBatch: 64},
		&ReadMulti{ID: 14, Keys: []int64{1, 2, 3}},
		&SubscribeMulti{ID: 15, Keys: []int64{-7, 0}},
		&RefreshBatch{ID: 16, Items: []RefreshItem{
			{Key: 1, Kind: KindInitial, Value: 1, Lo: 0, Hi: 2, OriginalWidth: 2},
			{Key: 2, Kind: KindQueryInitiated, Value: 5, Lo: 5, Hi: 5, OriginalWidth: 0},
		}},
		&Batch{Msgs: []Message{
			&Subscribe{ID: 17, Key: 1},
			&Read{ID: 18, Key: 2},
			&Ping{ID: 19},
		}},
		// Pushes coalesced under ID 0, the writer's hot frame.
		&RefreshBatch{ID: 0, Items: []RefreshItem{
			{Key: 3, Kind: KindValueInitiated, Value: 9, Lo: 8, Hi: 10, OriginalWidth: 2},
		}},
		// v4: continuous queries and tagged subscriptions/pushes.
		&RegisterQuery{ID: 20, QID: 1, Kind: AggSum, Delta: 4, Keys: []int64{1, 2, 3}},
		&RegisterQuery{ID: 21, QID: 2, Kind: AggAvg, Delta: 0.5, Keys: []int64{-9}},
		&QueryUpdate{ID: 22, QID: 1, Value: 6, Lo: 4, Hi: 8},
		&QueryUpdate{ID: 0, QID: 2, Value: -9, Lo: -9, Hi: -9},
		&UnregisterQuery{ID: 23, QID: 1},
		&Subscribe{ID: 24, Key: 5, Tag: 7},
		&Refresh{ID: 0, Key: 5, Kind: KindValueInitiated, Value: 3, Lo: 2, Hi: 4, OriginalWidth: 2, Tag: 7},
	}
	for _, m := range seeds {
		var buf bytes.Buffer
		if err := Write(&buf, m); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x05})
	f.Add([]byte{0x01, 0x00, 0x00, 0x00, 0x00})
	// Zero-length batch: header + type TBatch + u16 count 0 (must be rejected).
	f.Add([]byte{0x03, 0x00, 0x00, 0x00, byte(TBatch), 0x00, 0x00})
	// Nested batch: an outer Batch whose single sub-message is itself a Batch
	// (must be rejected, not recursed into).
	{
		inner := &Batch{Msgs: []Message{&Ping{ID: 1}}}
		outer := &Batch{Msgs: []Message{inner}}
		var buf bytes.Buffer
		if err := Write(&buf, outer); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := ReadMsg(bytes.NewReader(data))
		// The reusing Decoder must agree with ReadMsg on accept/reject and
		// on the decoded type.
		dmsg, derr := NewDecoder(bytes.NewReader(data)).Decode()
		if (err == nil) != (derr == nil) {
			t.Fatalf("ReadMsg err=%v but Decoder err=%v", err, derr)
		}
		if err != nil {
			return // rejection is fine; panics are not
		}
		if msg.msgType() != dmsg.msgType() {
			t.Fatalf("ReadMsg type %v but Decoder type %v", msg.msgType(), dmsg.msgType())
		}
		var buf bytes.Buffer
		if err := Write(&buf, msg); err != nil {
			t.Fatalf("re-encode of accepted message failed: %v", err)
		}
		// AppendFrame must produce the identical frame bytes.
		frame, err := AppendFrame(nil, msg)
		if err != nil {
			t.Fatalf("AppendFrame of accepted message failed: %v", err)
		}
		if !bytes.Equal(frame, buf.Bytes()) {
			t.Fatalf("AppendFrame bytes differ from Write")
		}
		if _, err := ReadMsg(&buf); err != nil {
			t.Fatalf("re-decode of re-encoded message failed: %v", err)
		}
	})
}
