package netproto

import (
	"bytes"
	"testing"
)

// FuzzReadMsg feeds arbitrary byte streams to the frame decoder: it must
// never panic, and anything it accepts must re-encode to a frame it accepts
// again (decode/encode/decode fixpoint).
func FuzzReadMsg(f *testing.F) {
	// Seed with valid frames of every type.
	seeds := []Message{
		&Subscribe{ID: 1, Key: 2},
		&Unsubscribe{ID: 3, Key: 4},
		&Read{ID: 5, Key: 6},
		&Ping{ID: 7},
		&Refresh{ID: 8, Key: 9, Kind: KindValueInitiated, Value: 1, Lo: 0, Hi: 2, OriginalWidth: 2},
		&Pong{ID: 10},
		&ErrorMsg{ID: 11, Msg: "nope"},
	}
	for _, m := range seeds {
		var buf bytes.Buffer
		if err := Write(&buf, m); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x05})
	f.Add([]byte{0x01, 0x00, 0x00, 0x00, 0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := ReadMsg(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine; panics are not
		}
		var buf bytes.Buffer
		if err := Write(&buf, msg); err != nil {
			t.Fatalf("re-encode of accepted message failed: %v", err)
		}
		if _, err := ReadMsg(&buf); err != nil {
			t.Fatalf("re-decode of re-encoded message failed: %v", err)
		}
	})
}
