// Package netproto defines the wire protocol between approximate-caching
// clients and source servers: length-prefixed binary frames over a reliable
// stream (TCP in cmd/apcache-server and cmd/apcache-client).
//
// The protocol mirrors the paper's refresh model. Clients subscribe to keys
// and receive an initial approximation; the server pushes a Refresh whenever
// an update invalidates a cached interval (value-initiated); a client whose
// query needs more precision sends Read and receives the exact value plus a
// fresh interval (query-initiated). Requests carry an ID echoed by the
// matching response; server-initiated pushes use ID 0.
package netproto

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// MsgType identifies a frame's payload.
type MsgType uint8

// Message types. Client-to-server types come first.
const (
	TSubscribe MsgType = iota + 1
	TUnsubscribe
	TRead
	TPing
	TRefresh
	TPong
	TError
)

// String returns the type name.
func (t MsgType) String() string {
	switch t {
	case TSubscribe:
		return "Subscribe"
	case TUnsubscribe:
		return "Unsubscribe"
	case TRead:
		return "Read"
	case TPing:
		return "Ping"
	case TRefresh:
		return "Refresh"
	case TPong:
		return "Pong"
	case TError:
		return "Error"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// RefreshKind is carried inside Refresh frames.
type RefreshKind uint8

// Refresh kinds: initial subscription, value-initiated push, query-initiated
// response.
const (
	KindInitial RefreshKind = iota
	KindValueInitiated
	KindQueryInitiated
)

// Message is implemented by every frame payload.
type Message interface {
	msgType() MsgType
	encode(b []byte) []byte
	decode(b []byte) error
}

// Subscribe registers interest in Key; the server responds with a Refresh
// (KindInitial) echoing ID.
type Subscribe struct {
	ID  uint64
	Key int64
}

// Unsubscribe withdraws interest in Key. Used by exact-caching style
// clients; the adaptive algorithm's caches evict silently and never send it.
type Unsubscribe struct {
	ID  uint64
	Key int64
}

// Read requests the exact value of Key (a query-initiated refresh); the
// server responds with a Refresh (KindQueryInitiated) echoing ID.
type Read struct {
	ID  uint64
	Key int64
}

// Ping solicits a Pong; used for liveness tests.
type Ping struct {
	ID uint64
}

// Refresh delivers an approximation (and exact value) for Key.
type Refresh struct {
	ID            uint64 // echoes the triggering request; 0 for pushes
	Key           int64
	Kind          RefreshKind
	Value         float64
	Lo, Hi        float64
	OriginalWidth float64
}

// Pong answers a Ping.
type Pong struct {
	ID uint64
}

// ErrorMsg reports a request failure.
type ErrorMsg struct {
	ID  uint64
	Msg string
}

// MaxFrame bounds accepted frame sizes; real frames are tiny, so anything
// larger indicates a corrupt or hostile stream.
const MaxFrame = 1 << 16

const headerLen = 5 // uint32 length + uint8 type

// Write encodes m as one frame on w.
func Write(w io.Writer, m Message) error {
	body := m.encode(make([]byte, 0, 64))
	if len(body) > MaxFrame {
		return fmt.Errorf("netproto: frame too large (%d bytes)", len(body))
	}
	frame := make([]byte, headerLen+len(body))
	binary.LittleEndian.PutUint32(frame, uint32(len(body)+1))
	frame[4] = byte(m.msgType())
	copy(frame[headerLen:], body)
	_, err := w.Write(frame)
	if err != nil {
		return fmt.Errorf("netproto: write %s: %w", m.msgType(), err)
	}
	return nil
}

// ReadMsg decodes the next frame from r.
func ReadMsg(r io.Reader) (Message, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err // io.EOF passes through for clean shutdown
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n == 0 {
		return nil, fmt.Errorf("netproto: zero-length frame")
	}
	if n > MaxFrame {
		return nil, fmt.Errorf("netproto: frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n-1)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("netproto: short frame body: %w", err)
	}
	var m Message
	switch MsgType(hdr[4]) {
	case TSubscribe:
		m = &Subscribe{}
	case TUnsubscribe:
		m = &Unsubscribe{}
	case TRead:
		m = &Read{}
	case TPing:
		m = &Ping{}
	case TRefresh:
		m = &Refresh{}
	case TPong:
		m = &Pong{}
	case TError:
		m = &ErrorMsg{}
	default:
		return nil, fmt.Errorf("netproto: unknown message type %d", hdr[4])
	}
	if err := m.decode(body); err != nil {
		return nil, err
	}
	return m, nil
}

// --- encoding helpers ---

func putU64(b []byte, v uint64) []byte {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], v)
	return append(b, tmp[:]...)
}

func putF64(b []byte, v float64) []byte { return putU64(b, math.Float64bits(v)) }

type reader struct {
	b   []byte
	err error
}

func (r *reader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 8 {
		r.err = fmt.Errorf("netproto: truncated field")
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[:8])
	r.b = r.b[8:]
	return v
}

func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *reader) u8() uint8 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 1 {
		r.err = fmt.Errorf("netproto: truncated field")
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *reader) rest() []byte {
	b := r.b
	r.b = nil
	return b
}

func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if len(r.b) != 0 {
		return fmt.Errorf("netproto: %d trailing bytes", len(r.b))
	}
	return nil
}

// --- per-message implementations ---

func (m *Subscribe) msgType() MsgType { return TSubscribe }
func (m *Subscribe) encode(b []byte) []byte {
	return putU64(putU64(b, m.ID), uint64(m.Key))
}
func (m *Subscribe) decode(b []byte) error {
	r := reader{b: b}
	m.ID = r.u64()
	m.Key = int64(r.u64())
	return r.done()
}

func (m *Unsubscribe) msgType() MsgType { return TUnsubscribe }
func (m *Unsubscribe) encode(b []byte) []byte {
	return putU64(putU64(b, m.ID), uint64(m.Key))
}
func (m *Unsubscribe) decode(b []byte) error {
	r := reader{b: b}
	m.ID = r.u64()
	m.Key = int64(r.u64())
	return r.done()
}

func (m *Read) msgType() MsgType { return TRead }
func (m *Read) encode(b []byte) []byte {
	return putU64(putU64(b, m.ID), uint64(m.Key))
}
func (m *Read) decode(b []byte) error {
	r := reader{b: b}
	m.ID = r.u64()
	m.Key = int64(r.u64())
	return r.done()
}

func (m *Ping) msgType() MsgType       { return TPing }
func (m *Ping) encode(b []byte) []byte { return putU64(b, m.ID) }
func (m *Ping) decode(b []byte) error {
	r := reader{b: b}
	m.ID = r.u64()
	return r.done()
}

func (m *Refresh) msgType() MsgType { return TRefresh }
func (m *Refresh) encode(b []byte) []byte {
	b = putU64(b, m.ID)
	b = putU64(b, uint64(m.Key))
	b = append(b, byte(m.Kind))
	b = putF64(b, m.Value)
	b = putF64(b, m.Lo)
	b = putF64(b, m.Hi)
	b = putF64(b, m.OriginalWidth)
	return b
}
func (m *Refresh) decode(b []byte) error {
	r := reader{b: b}
	m.ID = r.u64()
	m.Key = int64(r.u64())
	m.Kind = RefreshKind(r.u8())
	m.Value = r.f64()
	m.Lo = r.f64()
	m.Hi = r.f64()
	m.OriginalWidth = r.f64()
	if err := r.done(); err != nil {
		return err
	}
	if m.Kind > KindQueryInitiated {
		return fmt.Errorf("netproto: bad refresh kind %d", m.Kind)
	}
	return nil
}

func (m *Pong) msgType() MsgType       { return TPong }
func (m *Pong) encode(b []byte) []byte { return putU64(b, m.ID) }
func (m *Pong) decode(b []byte) error {
	r := reader{b: b}
	m.ID = r.u64()
	return r.done()
}

func (m *ErrorMsg) msgType() MsgType { return TError }
func (m *ErrorMsg) encode(b []byte) []byte {
	b = putU64(b, m.ID)
	return append(b, m.Msg...)
}
func (m *ErrorMsg) decode(b []byte) error {
	r := reader{b: b}
	m.ID = r.u64()
	m.Msg = string(r.rest())
	return r.done()
}
