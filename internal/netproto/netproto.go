// Package netproto defines the wire protocol between approximate-caching
// clients and source servers: length-prefixed binary frames over a reliable
// stream (TCP in cmd/apcache-server and cmd/apcache-client).
//
// The protocol mirrors the paper's refresh model. Clients subscribe to keys
// and receive an initial approximation; the server pushes a Refresh whenever
// an update invalidates a cached interval (value-initiated); a client whose
// query needs more precision sends Read and receives the exact value plus a
// fresh interval (query-initiated). Requests carry an ID echoed by the
// matching response; server-initiated pushes use ID 0.
//
// # Protocol versions
//
// Version 1 is strictly one message per frame. Version 2 adds batching on
// top of the same frame format: a Hello/HelloAck handshake negotiates the
// version and batch limit, ReadMulti/SubscribeMulti carry many keys under
// one request ID and are answered by a single RefreshBatch, Batch wraps
// several independent sub-messages into one frame (the pipelining container
// both endpoints use to amortize framing and syscalls), and RefreshBatch
// with ID 0 coalesces value-initiated pushes. A peer that never sends Hello
// is a v1 peer and must only ever be sent v1 frames. Batches are never
// nested and never empty; both are rejected at decode time.
package netproto

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"apcache/internal/aperrs"
)

// errTooLarge builds the shared over-limit error for a batch-carrying
// message, wrapping aperrs.ErrBatchTooLarge so both the sending and the
// decoding side surface an errors.Is-able failure.
func errTooLarge(what string, n int) error {
	return fmt.Errorf("netproto: %s of %d items exceeds limit %d: %w", what, n, MaxBatchItems, aperrs.ErrBatchTooLarge)
}

// MsgType identifies a frame's payload.
type MsgType uint8

// Message types. Client-to-server types come first; the v2 batching types
// extend the v1 set without renumbering it.
const (
	TSubscribe MsgType = iota + 1
	TUnsubscribe
	TRead
	TPing
	TRefresh
	TPong
	TError
	THello
	THelloAck
	TReadMulti
	TSubscribeMulti
	TRefreshBatch
	TBatch
	TError2
	TRegisterQuery
	TQueryUpdate
	TUnregisterQuery
)

// Protocol versions negotiated by Hello/HelloAck. Hello carries the highest
// version the client speaks; the ack's version is the minimum of both
// peers' offers, and each frame is only ever sent to a peer whose
// negotiated version includes it.
const (
	Version1 = 1
	// Version2 adds batching: Hello/HelloAck, ReadMulti/SubscribeMulti,
	// RefreshBatch, Batch.
	Version2 = 2
	// Version3 extends v2 with the structured Error2 frame; everything
	// else is unchanged. A v3 server still answers v2 peers with the
	// free-text ErrorMsg, so mixed-version fleets upgrade without
	// connection teardowns on unknown frame types.
	Version3 = 3
	// Version4 adds continuous queries (RegisterQuery/QueryUpdate/
	// UnregisterQuery) and push tagging: Subscribe and Refresh grow a
	// trailing optional Tag field that attributes a push to the watch or
	// query that caused its subscription. All v4 frames and fields are
	// only ever sent to peers that negotiated v4; a v4 client talking to
	// an older server gets a typed "unsupported" error from its own
	// library instead of wedging the connection.
	Version4 = 4
)

// MaxBatchItems caps the sub-messages in a Batch frame and the entries in a
// ReadMulti/SubscribeMulti/RefreshBatch; larger counts are rejected at
// decode time (with MaxFrame this bounds decoder allocations).
const MaxBatchItems = 1024

// String returns the type name.
func (t MsgType) String() string {
	switch t {
	case TSubscribe:
		return "Subscribe"
	case TUnsubscribe:
		return "Unsubscribe"
	case TRead:
		return "Read"
	case TPing:
		return "Ping"
	case TRefresh:
		return "Refresh"
	case TPong:
		return "Pong"
	case TError:
		return "Error"
	case THello:
		return "Hello"
	case THelloAck:
		return "HelloAck"
	case TReadMulti:
		return "ReadMulti"
	case TSubscribeMulti:
		return "SubscribeMulti"
	case TRefreshBatch:
		return "RefreshBatch"
	case TBatch:
		return "Batch"
	case TError2:
		return "Error2"
	case TRegisterQuery:
		return "RegisterQuery"
	case TQueryUpdate:
		return "QueryUpdate"
	case TUnregisterQuery:
		return "UnregisterQuery"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// RefreshKind is carried inside Refresh frames.
type RefreshKind uint8

// Refresh kinds: initial subscription, value-initiated push, query-initiated
// response.
const (
	KindInitial RefreshKind = iota
	KindValueInitiated
	KindQueryInitiated
)

// Message is implemented by every frame payload.
type Message interface {
	msgType() MsgType
	encode(b []byte) []byte
	decode(b []byte) error
}

// Subscribe registers interest in Key; the server responds with a Refresh
// (KindInitial) echoing ID.
//
// Tag attributes the subscription to a client-side consumer (a Watch or a
// query); the server stamps it onto every value-initiated push for Key so
// the client can route without a key-indexed lookup. It is a v4 trailing
// optional field: encoded only when nonzero, and senders must leave it 0 on
// connections below v4 (older decoders reject trailing bytes). The server
// keeps one tag per (connection, key): the latest Subscribe wins.
type Subscribe struct {
	ID  uint64
	Key int64
	Tag uint64
}

// Unsubscribe withdraws interest in Key. Used by exact-caching style
// clients; the adaptive algorithm's caches evict silently and never send it.
type Unsubscribe struct {
	ID  uint64
	Key int64
}

// Read requests the exact value of Key (a query-initiated refresh); the
// server responds with a Refresh (KindQueryInitiated) echoing ID.
type Read struct {
	ID  uint64
	Key int64
}

// Ping solicits a Pong; used for liveness tests.
type Ping struct {
	ID uint64
}

// Refresh delivers an approximation (and exact value) for Key.
//
// Tag echoes the tag registered by a tagged Subscribe on value-initiated
// pushes (0 when the subscription was untagged). Like Subscribe.Tag it is a
// v4 trailing optional field: encoded only when nonzero, never sent below
// v4. Tagged pushes travel as standalone Refresh frames — RefreshBatch
// items carry no tag, so the push coalescer must not fold them in.
type Refresh struct {
	ID            uint64 // echoes the triggering request; 0 for pushes
	Key           int64
	Kind          RefreshKind
	Value         float64
	Lo, Hi        float64
	OriginalWidth float64
	Tag           uint64
}

// Pong answers a Ping.
type Pong struct {
	ID uint64
}

// ErrorMsg reports a request failure. It is the v1/v2 error frame:
// free-text only. Connections that negotiated v3 use Error2, which adds a
// machine-readable code and key so client-side errors.Is/As works across
// the wire.
type ErrorMsg struct {
	ID  uint64
	Msg string
}

// ErrCode classifies a request failure on the wire so the receiving side
// can reconstruct a typed error instead of string-matching the message.
type ErrCode uint16

// Wire error codes. CodeGeneric is the catch-all (and what a v1 ErrorMsg
// maps to); the others correspond to the apcache error taxonomy.
const (
	CodeGeneric ErrCode = iota
	CodeUnknownKey
	CodeBatchTooLarge
	CodeUnsupported
)

// String returns the code name.
func (c ErrCode) String() string {
	switch c {
	case CodeGeneric:
		return "generic"
	case CodeUnknownKey:
		return "unknown-key"
	case CodeBatchTooLarge:
		return "batch-too-large"
	case CodeUnsupported:
		return "unsupported"
	default:
		return fmt.Sprintf("ErrCode(%d)", uint16(c))
	}
}

// Error2 is the v3 error frame: a structured failure report. Code
// classifies the failure, Key carries the offending key for CodeUnknownKey
// (0 otherwise), and Msg is the human-readable detail. Servers send Error2
// only on connections that negotiated protocol v3; older peers get
// ErrorMsg (sending it earlier would tear down a v2 peer's connection on
// an unknown frame type).
type Error2 struct {
	ID   uint64
	Code ErrCode
	Key  int64
	Msg  string
}

// Hello opens a v2 session: it must be the first frame a v2 client sends.
// Version is the highest protocol version the client speaks; MaxBatch is the
// largest batch it is willing to receive. A server answers with HelloAck
// (accept) or ErrorMsg (decline; the client then stays on v1 frames).
type Hello struct {
	ID       uint64
	Version  uint8
	MaxBatch uint16
}

// HelloAck accepts a Hello. Version and MaxBatch carry the negotiated
// protocol version and batch limit (the min of both peers' offers).
// CqrCost advertises the server's measured per-key refresh latency in
// nanoseconds (0 = no measurement yet), the denominator of the client's
// RTT-adaptive refinement ramp. It rides only on v3 connections: the field
// is appended to the frame when the negotiated Version is >= Version3 and
// omitted otherwise, because older decoders reject trailing bytes.
type HelloAck struct {
	ID       uint64
	Version  uint8
	MaxBatch uint16
	CqrCost  uint64
}

// ReadMulti requests the exact values of Keys under one request ID; the
// server answers with a single RefreshBatch whose items are in Keys order,
// or one ErrorMsg for the whole request. v2 only.
type ReadMulti struct {
	ID   uint64
	Keys []int64
}

// SubscribeMulti registers interest in Keys under one request ID; the server
// answers with a single RefreshBatch of initial approximations in Keys
// order, or one ErrorMsg for the whole request. v2 only.
type SubscribeMulti struct {
	ID   uint64
	Keys []int64
}

// RefreshItem is one approximation inside a RefreshBatch: a Refresh without
// the per-message ID (the batch carries one ID for all items).
type RefreshItem struct {
	Key           int64
	Kind          RefreshKind
	Value         float64
	Lo, Hi        float64
	OriginalWidth float64
}

// RefreshBatch delivers several approximations in one frame: the response to
// a ReadMulti/SubscribeMulti (echoing its ID) or, with ID 0, a coalesced run
// of value-initiated pushes. v2 only.
//
// CqrCost piggybacks a refreshed per-key refresh-cost measurement
// (nanoseconds) on batches bound for v3 peers, so a long-lived client
// tracks the server's cost drift without re-handshaking; 0 means "no
// update" and encodes nothing. Like HelloAck.CqrCost it is a trailing
// optional field: senders must leave it 0 on connections below v3 (older
// decoders reject trailing bytes), and decoders accept its absence.
type RefreshBatch struct {
	ID      uint64
	Items   []RefreshItem
	CqrCost uint64
}

// Batch wraps several independent sub-messages into one frame, preserving
// order. Batches never nest and are never empty. v2 only.
type Batch struct {
	Msgs []Message
}

// AggKind selects the aggregate a continuous query maintains. The values
// mirror internal/workload's AggKind so query plans translate one-to-one.
type AggKind uint8

// Aggregates a RegisterQuery may request.
const (
	AggSum AggKind = iota
	AggMax
	AggMin
	AggAvg
)

// String returns the aggregate name.
func (k AggKind) String() string {
	switch k {
	case AggSum:
		return "SUM"
	case AggMax:
		return "MAX"
	case AggMin:
		return "MIN"
	case AggAvg:
		return "AVG"
	default:
		return fmt.Sprintf("AggKind(%d)", uint8(k))
	}
}

// RegisterQuery registers a standing bounded aggregate over Keys with
// precision budget Delta: the server keeps the answer interval current and
// pushes a QueryUpdate whenever it changes. QID is a client-chosen nonzero
// handle scoping the query within the connection; the server acks the
// registration with a QueryUpdate echoing ID and carrying the initial
// answer, and stamps QID on every subsequent push. v4 only.
type RegisterQuery struct {
	ID    uint64
	QID   uint64
	Kind  AggKind
	Delta float64
	Keys  []int64
}

// QueryUpdate delivers the current answer interval [Lo, Hi] of the standing
// query QID. Value is the server's center estimate (the aggregate of the
// cached centers). ID echoes the RegisterQuery on the registration ack and
// is 0 on pushes. v4 only.
type QueryUpdate struct {
	ID     uint64
	QID    uint64
	Value  float64
	Lo, Hi float64
}

// UnregisterQuery withdraws the standing query QID. Fire-and-forget like
// Unsubscribe: the server tears the query down and sends no response. v4
// only.
type UnregisterQuery struct {
	ID  uint64
	QID uint64
}

// MaxFrame bounds accepted frame sizes; real frames are tiny, so anything
// larger indicates a corrupt or hostile stream.
const MaxFrame = 1 << 16

const headerLen = 5 // uint32 length + uint8 type

// batchLen returns the item count of batch-carrying messages (0 for plain
// messages), so frame encoders can reject counts the decoder would refuse.
func batchLen(m Message) int {
	switch b := m.(type) {
	case *ReadMulti:
		return len(b.Keys)
	case *SubscribeMulti:
		return len(b.Keys)
	case *RefreshBatch:
		return len(b.Items)
	case *RegisterQuery:
		return len(b.Keys)
	case *Batch:
		return len(b.Msgs)
	default:
		return 0
	}
}

// checkBatchLimits validates every batch count carried by m — including the
// sub-messages of a Batch — in a single pass over the message. Oversized
// counts are rejected at the sender rather than silently truncating their
// uint16 fields: every decoder would refuse them anyway, tearing down the
// peer's connection instead of surfacing the error where it was made.
func checkBatchLimits(m Message) error {
	b, ok := m.(*Batch)
	if !ok {
		if n := batchLen(m); n > MaxBatchItems {
			return errTooLarge(m.msgType().String(), n)
		}
		return nil
	}
	if len(b.Msgs) > MaxBatchItems {
		return errTooLarge(b.msgType().String(), len(b.Msgs))
	}
	for _, sub := range b.Msgs {
		if n := batchLen(sub); n > MaxBatchItems {
			return errTooLarge(sub.msgType().String(), n)
		}
	}
	return nil
}

// AppendFrame appends m's complete wire frame — header and body — to dst and
// returns the extended slice. It is the hot-path encoder: a caller that
// reuses dst across frames encodes without allocating, and a run of frames
// appended to one buffer goes to the kernel in a single write. On error dst
// is returned with its original length.
func AppendFrame(dst []byte, m Message) ([]byte, error) {
	if err := checkBatchLimits(m); err != nil {
		return dst, err
	}
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, byte(m.msgType()))
	dst = m.encode(dst)
	n := len(dst) - start - headerLen + 1 // body bytes plus the type byte
	if n > MaxFrame {
		return dst[:start], fmt.Errorf("netproto: frame too large (%d bytes)", n)
	}
	binary.LittleEndian.PutUint32(dst[start:], uint32(n))
	return dst, nil
}

// Write encodes m as one frame on w: the compatibility wrapper around
// AppendFrame, using a pooled scratch buffer and a single w.Write call.
func Write(w io.Writer, m Message) error {
	bp := getBuf()
	frame, err := AppendFrame((*bp)[:0], m)
	*bp = frame[:0]
	if err != nil {
		putBuf(bp)
		return err
	}
	_, err = w.Write(frame)
	putBuf(bp)
	if err != nil {
		return fmt.Errorf("netproto: write %s: %w", m.msgType(), err)
	}
	return nil
}

// readFrame reads one frame from r, using scratch's storage for both the
// header and the body so the read path allocates nothing when the caller
// reuses the returned slice. Shared by ReadMsg and Decoder.Decode.
func readFrame(r io.Reader, scratch []byte) (MsgType, []byte, error) {
	scratch = grow(scratch, headerLen)
	if _, err := io.ReadFull(r, scratch); err != nil {
		return 0, scratch[:0], err // io.EOF passes through for clean shutdown
	}
	n := binary.LittleEndian.Uint32(scratch[:4])
	t := MsgType(scratch[4])
	if n == 0 {
		return 0, scratch[:0], fmt.Errorf("netproto: zero-length frame")
	}
	if n > MaxFrame {
		return 0, scratch[:0], fmt.Errorf("netproto: frame of %d bytes exceeds limit", n)
	}
	scratch = grow(scratch, int(n-1))
	if _, err := io.ReadFull(r, scratch); err != nil {
		return 0, scratch, fmt.Errorf("netproto: short frame body: %w", err)
	}
	return t, scratch, nil
}

// grow returns b resized to n bytes, reallocating only when capacity is
// short.
func grow(b []byte, n int) []byte {
	if cap(b) >= n {
		return b[:n]
	}
	return make([]byte, n)
}

// ReadMsg decodes the next frame from r into a freshly allocated message the
// caller may retain. Connection read loops should use a Decoder instead,
// which reuses message and buffer storage across frames.
func ReadMsg(r io.Reader) (Message, error) {
	bp := getBuf()
	defer putBuf(bp)
	t, body, err := readFrame(r, (*bp)[:0])
	*bp = body
	if err != nil {
		return nil, err
	}
	m, err := newMessage(t)
	if err != nil {
		return nil, err
	}
	if err := m.decode(body); err != nil {
		return nil, err
	}
	return m, nil
}

// newMessage returns a zero message of the given type.
func newMessage(t MsgType) (Message, error) {
	switch t {
	case TSubscribe:
		return &Subscribe{}, nil
	case TUnsubscribe:
		return &Unsubscribe{}, nil
	case TRead:
		return &Read{}, nil
	case TPing:
		return &Ping{}, nil
	case TRefresh:
		return &Refresh{}, nil
	case TPong:
		return &Pong{}, nil
	case TError:
		return &ErrorMsg{}, nil
	case THello:
		return &Hello{}, nil
	case THelloAck:
		return &HelloAck{}, nil
	case TReadMulti:
		return &ReadMulti{}, nil
	case TSubscribeMulti:
		return &SubscribeMulti{}, nil
	case TRefreshBatch:
		return &RefreshBatch{}, nil
	case TBatch:
		return &Batch{}, nil
	case TError2:
		return &Error2{}, nil
	case TRegisterQuery:
		return &RegisterQuery{}, nil
	case TQueryUpdate:
		return &QueryUpdate{}, nil
	case TUnregisterQuery:
		return &UnregisterQuery{}, nil
	default:
		return nil, fmt.Errorf("netproto: unknown message type %d", uint8(t))
	}
}

// --- encoding helpers ---

func putU64(b []byte, v uint64) []byte {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], v)
	return append(b, tmp[:]...)
}

func putF64(b []byte, v float64) []byte { return putU64(b, math.Float64bits(v)) }

func putU16(b []byte, v uint16) []byte {
	var tmp [2]byte
	binary.LittleEndian.PutUint16(tmp[:], v)
	return append(b, tmp[:]...)
}

type reader struct {
	b   []byte
	err error
}

func (r *reader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 8 {
		r.err = fmt.Errorf("netproto: truncated field")
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[:8])
	r.b = r.b[8:]
	return v
}

func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *reader) u8() uint8 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 1 {
		r.err = fmt.Errorf("netproto: truncated field")
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *reader) u16() uint16 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 2 {
		r.err = fmt.Errorf("netproto: truncated field")
		return 0
	}
	v := binary.LittleEndian.Uint16(r.b[:2])
	r.b = r.b[2:]
	return v
}

// take slices off the next n bytes.
func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.b) < n {
		r.err = fmt.Errorf("netproto: truncated field")
		return nil
	}
	v := r.b[:n]
	r.b = r.b[n:]
	return v
}

func (r *reader) rest() []byte {
	b := r.b
	r.b = nil
	return b
}

func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if len(r.b) != 0 {
		return fmt.Errorf("netproto: %d trailing bytes", len(r.b))
	}
	return nil
}

// --- per-message implementations ---

func (m *Subscribe) msgType() MsgType { return TSubscribe }
func (m *Subscribe) encode(b []byte) []byte {
	b = putU64(putU64(b, m.ID), uint64(m.Key))
	if m.Tag != 0 {
		// Trailing optional field, v4 only: the sender gates on the
		// negotiated version (older decoders reject trailing bytes).
		b = putU64(b, m.Tag)
	}
	return b
}
func (m *Subscribe) decode(b []byte) error {
	r := reader{b: b}
	m.ID = r.u64()
	m.Key = int64(r.u64())
	// The explicit zero matters on reused decode boxes: an untagged frame
	// must not leak the previous subscription's tag.
	m.Tag = 0
	if r.err == nil && len(r.b) > 0 {
		m.Tag = r.u64()
	}
	return r.done()
}

func (m *Unsubscribe) msgType() MsgType { return TUnsubscribe }
func (m *Unsubscribe) encode(b []byte) []byte {
	return putU64(putU64(b, m.ID), uint64(m.Key))
}
func (m *Unsubscribe) decode(b []byte) error {
	r := reader{b: b}
	m.ID = r.u64()
	m.Key = int64(r.u64())
	return r.done()
}

func (m *Read) msgType() MsgType { return TRead }
func (m *Read) encode(b []byte) []byte {
	return putU64(putU64(b, m.ID), uint64(m.Key))
}
func (m *Read) decode(b []byte) error {
	r := reader{b: b}
	m.ID = r.u64()
	m.Key = int64(r.u64())
	return r.done()
}

func (m *Ping) msgType() MsgType       { return TPing }
func (m *Ping) encode(b []byte) []byte { return putU64(b, m.ID) }
func (m *Ping) decode(b []byte) error {
	r := reader{b: b}
	m.ID = r.u64()
	return r.done()
}

func (m *Refresh) msgType() MsgType { return TRefresh }
func (m *Refresh) encode(b []byte) []byte {
	b = putU64(b, m.ID)
	b = putU64(b, uint64(m.Key))
	b = append(b, byte(m.Kind))
	b = putF64(b, m.Value)
	b = putF64(b, m.Lo)
	b = putF64(b, m.Hi)
	b = putF64(b, m.OriginalWidth)
	if m.Tag != 0 {
		// Trailing optional field, v4 only: the sender gates on the
		// negotiated version (older decoders reject trailing bytes).
		b = putU64(b, m.Tag)
	}
	return b
}
func (m *Refresh) decode(b []byte) error {
	r := reader{b: b}
	m.ID = r.u64()
	m.Key = int64(r.u64())
	m.Kind = RefreshKind(r.u8())
	m.Value = r.f64()
	m.Lo = r.f64()
	m.Hi = r.f64()
	m.OriginalWidth = r.f64()
	// The explicit zero matters on reused decode boxes: an untagged push
	// must not leak the previous refresh's tag.
	m.Tag = 0
	if r.err == nil && len(r.b) > 0 {
		m.Tag = r.u64()
	}
	if err := r.done(); err != nil {
		return err
	}
	if m.Kind > KindQueryInitiated {
		return fmt.Errorf("netproto: bad refresh kind %d", m.Kind)
	}
	return nil
}

func (m *Pong) msgType() MsgType       { return TPong }
func (m *Pong) encode(b []byte) []byte { return putU64(b, m.ID) }
func (m *Pong) decode(b []byte) error {
	r := reader{b: b}
	m.ID = r.u64()
	return r.done()
}

func (m *ErrorMsg) msgType() MsgType { return TError }
func (m *ErrorMsg) encode(b []byte) []byte {
	b = putU64(b, m.ID)
	return append(b, m.Msg...)
}
func (m *ErrorMsg) decode(b []byte) error {
	r := reader{b: b}
	m.ID = r.u64()
	m.Msg = string(r.rest())
	return r.done()
}

func (m *Error2) msgType() MsgType { return TError2 }
func (m *Error2) encode(b []byte) []byte {
	b = putU64(b, m.ID)
	b = putU16(b, uint16(m.Code))
	b = putU64(b, uint64(m.Key))
	return append(b, m.Msg...)
}
func (m *Error2) decode(b []byte) error {
	r := reader{b: b}
	m.ID = r.u64()
	m.Code = ErrCode(r.u16())
	m.Key = int64(r.u64())
	m.Msg = string(r.rest())
	return r.done()
}

func (m *Hello) msgType() MsgType { return THello }
func (m *Hello) encode(b []byte) []byte {
	b = putU64(b, m.ID)
	b = append(b, m.Version)
	return putU16(b, m.MaxBatch)
}
func (m *Hello) decode(b []byte) error {
	r := reader{b: b}
	m.ID = r.u64()
	m.Version = r.u8()
	m.MaxBatch = r.u16()
	if err := r.done(); err != nil {
		return err
	}
	if m.Version == 0 {
		return fmt.Errorf("netproto: hello with version 0")
	}
	return nil
}

func (m *HelloAck) msgType() MsgType { return THelloAck }
func (m *HelloAck) encode(b []byte) []byte {
	b = putU64(b, m.ID)
	b = append(b, m.Version)
	b = putU16(b, m.MaxBatch)
	if m.Version >= Version3 {
		b = putU64(b, m.CqrCost)
	}
	return b
}
func (m *HelloAck) decode(b []byte) error {
	r := reader{b: b}
	m.ID = r.u64()
	m.Version = r.u8()
	m.MaxBatch = r.u16()
	// CqrCost exists only on v3+ frames, and even there it is read
	// leniently so a v3 peer predating the field still negotiates cleanly.
	// The explicit zero matters on the reused decode boxes: a short frame
	// must not leak the previous ack's cost.
	m.CqrCost = 0
	if int(m.Version) >= Version3 && len(r.b) > 0 {
		m.CqrCost = r.u64()
	}
	if err := r.done(); err != nil {
		return err
	}
	if m.Version == 0 {
		return fmt.Errorf("netproto: hello ack with version 0")
	}
	return nil
}

// encodeKeys/decodeKeys implement the shared u16-count + keys layout of
// ReadMulti and SubscribeMulti. Empty and oversized key sets are rejected:
// an empty multi-request has no meaningful response frame.
func encodeKeys(b []byte, id uint64, keys []int64) []byte {
	b = putU64(b, id)
	b = putU16(b, uint16(len(keys)))
	for _, k := range keys {
		b = putU64(b, uint64(k))
	}
	return b
}

// decodeKeys decodes into keys' backing array when its capacity suffices, so
// a reused message decodes without allocating.
func decodeKeys(b []byte, keys []int64, what string) (id uint64, out []int64, err error) {
	r := reader{b: b}
	id = r.u64()
	n := int(r.u16())
	if r.err == nil {
		if n == 0 {
			return 0, keys, fmt.Errorf("netproto: empty %s", what)
		}
		if n > MaxBatchItems {
			return 0, keys, errTooLarge(what, n)
		}
	}
	keys = keys[:0]
	if cap(keys) < n {
		keys = make([]int64, 0, n)
	}
	for i := 0; i < n; i++ {
		keys = append(keys, int64(r.u64()))
	}
	if err := r.done(); err != nil {
		return 0, keys, err
	}
	return id, keys, nil
}

func (m *ReadMulti) msgType() MsgType       { return TReadMulti }
func (m *ReadMulti) encode(b []byte) []byte { return encodeKeys(b, m.ID, m.Keys) }
func (m *ReadMulti) decode(b []byte) error {
	id, keys, err := decodeKeys(b, m.Keys, "ReadMulti")
	m.Keys = keys
	if err != nil {
		return err
	}
	m.ID = id
	return nil
}

func (m *SubscribeMulti) msgType() MsgType       { return TSubscribeMulti }
func (m *SubscribeMulti) encode(b []byte) []byte { return encodeKeys(b, m.ID, m.Keys) }
func (m *SubscribeMulti) decode(b []byte) error {
	id, keys, err := decodeKeys(b, m.Keys, "SubscribeMulti")
	m.Keys = keys
	if err != nil {
		return err
	}
	m.ID = id
	return nil
}

func (m *RefreshBatch) msgType() MsgType { return TRefreshBatch }
func (m *RefreshBatch) encode(b []byte) []byte {
	b = putU64(b, m.ID)
	b = putU16(b, uint16(len(m.Items)))
	for _, it := range m.Items {
		b = putU64(b, uint64(it.Key))
		b = append(b, byte(it.Kind))
		b = putF64(b, it.Value)
		b = putF64(b, it.Lo)
		b = putF64(b, it.Hi)
		b = putF64(b, it.OriginalWidth)
	}
	if m.CqrCost > 0 {
		// Trailing optional field, v3 only: the sender gates on the
		// negotiated version (a v2 decoder rejects trailing bytes).
		b = putU64(b, m.CqrCost)
	}
	return b
}
func (m *RefreshBatch) decode(b []byte) error {
	r := reader{b: b}
	m.ID = r.u64()
	n := int(r.u16())
	if r.err == nil {
		if n == 0 {
			return fmt.Errorf("netproto: empty RefreshBatch")
		}
		if n > MaxBatchItems {
			return errTooLarge("RefreshBatch", n)
		}
	}
	m.Items = m.Items[:0]
	if cap(m.Items) < n {
		m.Items = make([]RefreshItem, 0, n)
	}
	for i := 0; i < n; i++ {
		it := RefreshItem{
			Key:  int64(r.u64()),
			Kind: RefreshKind(r.u8()),
		}
		it.Value = r.f64()
		it.Lo = r.f64()
		it.Hi = r.f64()
		it.OriginalWidth = r.f64()
		if r.err == nil && it.Kind > KindQueryInitiated {
			return fmt.Errorf("netproto: bad refresh kind %d in batch item %d", it.Kind, i)
		}
		m.Items = append(m.Items, it)
	}
	// The trailing cost field is optional (absent on v2 frames and on v3
	// frames with no update). The explicit zero matters on reused decode
	// boxes: a batch without the field must not leak the previous one's.
	m.CqrCost = 0
	if r.err == nil && len(r.b) > 0 {
		m.CqrCost = r.u64()
	}
	return r.done()
}

// Refresh converts item i into a standalone Refresh carrying the batch's ID.
func (m *RefreshBatch) Refresh(i int) *Refresh {
	it := m.Items[i]
	return &Refresh{
		ID: m.ID, Key: it.Key, Kind: it.Kind,
		Value: it.Value, Lo: it.Lo, Hi: it.Hi, OriginalWidth: it.OriginalWidth,
	}
}

// Item converts a standalone Refresh into a batch item (dropping the ID).
func (m *Refresh) Item() RefreshItem {
	return RefreshItem{
		Key: m.Key, Kind: m.Kind,
		Value: m.Value, Lo: m.Lo, Hi: m.Hi, OriginalWidth: m.OriginalWidth,
	}
}

func (m *Batch) msgType() MsgType { return TBatch }
func (m *Batch) encode(b []byte) []byte {
	b = putU16(b, uint16(len(m.Msgs)))
	for _, sub := range m.Msgs {
		// Encode each sub-message in place and backpatch its length, so a
		// Batch costs no scratch buffer per sub. A sub body can never
		// overflow the uint16 silently: AppendFrame's whole-frame cap
		// (MaxFrame) is tighter and rejects the frame.
		b = append(b, byte(sub.msgType()))
		at := len(b)
		b = putU16(b, 0)
		b = sub.encode(b)
		binary.LittleEndian.PutUint16(b[at:], uint16(len(b)-at-2))
	}
	return b
}
func (m *Batch) decode(b []byte) error { return m.decodeWith(b, newMessage) }

// decodeWith decodes using newMsg to obtain sub-message boxes: newMessage on
// the allocating ReadMsg path, a Decoder's arena on the reusing path.
func (m *Batch) decodeWith(b []byte, newMsg func(MsgType) (Message, error)) error {
	r := reader{b: b}
	n := int(r.u16())
	if r.err == nil {
		if n == 0 {
			return fmt.Errorf("netproto: empty Batch")
		}
		if n > MaxBatchItems {
			return errTooLarge("Batch", n)
		}
	}
	m.Msgs = m.Msgs[:0]
	if cap(m.Msgs) < n {
		m.Msgs = make([]Message, 0, n)
	}
	for i := 0; i < n; i++ {
		t := MsgType(r.u8())
		bodyLen := int(r.u16())
		body := r.take(bodyLen)
		if r.err != nil {
			break
		}
		if t == TBatch {
			return fmt.Errorf("netproto: nested Batch rejected")
		}
		sub, err := newMsg(t)
		if err != nil {
			return err
		}
		if err := sub.decode(body); err != nil {
			return err
		}
		m.Msgs = append(m.Msgs, sub)
	}
	return r.done()
}

func (m *RegisterQuery) msgType() MsgType { return TRegisterQuery }
func (m *RegisterQuery) encode(b []byte) []byte {
	b = putU64(b, m.ID)
	b = putU64(b, m.QID)
	b = append(b, byte(m.Kind))
	b = putF64(b, m.Delta)
	b = putU16(b, uint16(len(m.Keys)))
	for _, k := range m.Keys {
		b = putU64(b, uint64(k))
	}
	return b
}
func (m *RegisterQuery) decode(b []byte) error {
	r := reader{b: b}
	m.ID = r.u64()
	m.QID = r.u64()
	m.Kind = AggKind(r.u8())
	m.Delta = r.f64()
	n := int(r.u16())
	if r.err == nil {
		if n == 0 {
			return fmt.Errorf("netproto: empty RegisterQuery")
		}
		if n > MaxBatchItems {
			return errTooLarge("RegisterQuery", n)
		}
	}
	m.Keys = m.Keys[:0]
	if cap(m.Keys) < n {
		m.Keys = make([]int64, 0, n)
	}
	for i := 0; i < n; i++ {
		m.Keys = append(m.Keys, int64(r.u64()))
	}
	if err := r.done(); err != nil {
		return err
	}
	if m.Kind > AggAvg {
		return fmt.Errorf("netproto: bad aggregate kind %d", m.Kind)
	}
	if m.QID == 0 {
		return fmt.Errorf("netproto: RegisterQuery with QID 0")
	}
	if math.IsNaN(m.Delta) || m.Delta < 0 {
		return fmt.Errorf("netproto: bad query delta %v", m.Delta)
	}
	return nil
}

func (m *QueryUpdate) msgType() MsgType { return TQueryUpdate }
func (m *QueryUpdate) encode(b []byte) []byte {
	b = putU64(b, m.ID)
	b = putU64(b, m.QID)
	b = putF64(b, m.Value)
	b = putF64(b, m.Lo)
	b = putF64(b, m.Hi)
	return b
}
func (m *QueryUpdate) decode(b []byte) error {
	r := reader{b: b}
	m.ID = r.u64()
	m.QID = r.u64()
	m.Value = r.f64()
	m.Lo = r.f64()
	m.Hi = r.f64()
	return r.done()
}

func (m *UnregisterQuery) msgType() MsgType { return TUnregisterQuery }
func (m *UnregisterQuery) encode(b []byte) []byte {
	return putU64(putU64(b, m.ID), m.QID)
}
func (m *UnregisterQuery) decode(b []byte) error {
	r := reader{b: b}
	m.ID = r.u64()
	m.QID = r.u64()
	return r.done()
}
