// StreamDecoder: the non-blocking receive path. Where Decoder pulls frames
// out of a blocking io.Reader, StreamDecoder is pushed arbitrary byte chunks
// as a readiness-driven read loop produces them — a chunk may end in the
// middle of a frame header or body — and emits each complete frame as it
// forms. It shares Decoder's reuse discipline (per-type boxes, a typed arena
// for Batch sub-messages), so an event-driven connection core decodes
// without allocating in steady state and an idle connection retains no
// buffer at all: only the bytes of an incomplete trailing frame are carried
// between chunks.

package netproto

import "fmt"

// A StreamDecoder incrementally decodes frames from byte chunks.
//
// Release semantics match Decoder: every Message passed to emit is valid
// only during that emit call — the next frame reclaims its storage — and is
// not a pool member (never pass it to Release). A StreamDecoder is not safe
// for concurrent use; each connection owns exactly one, and only one
// goroutine may Feed it at a time.
type StreamDecoder struct {
	boxes Decoder // reused message boxes and Batch arena; its reader is nil
	pend  []byte  // carry-over bytes of an incomplete trailing frame
}

// NewStreamDecoder returns an empty StreamDecoder.
func NewStreamDecoder() *StreamDecoder { return &StreamDecoder{} }

// Pending reports how many bytes of an incomplete frame are buffered,
// waiting for the rest to arrive.
func (s *StreamDecoder) Pending() int { return len(s.pend) }

// Feed consumes chunk, invoking emit once per complete frame in stream
// order. Bytes of a trailing incomplete frame are copied into the decoder's
// carry buffer, so the caller may reuse chunk as soon as Feed returns (read
// buffers can be shared across connections). A malformed frame or a non-nil
// error from emit aborts the feed and poisons nothing beyond this stream:
// the caller is expected to tear the connection down.
func (s *StreamDecoder) Feed(chunk []byte, emit func(Message) error) error {
	src := chunk
	if len(s.pend) > 0 {
		s.pend = append(s.pend, chunk...)
		src = s.pend
	}
	off := 0
	for {
		m, n, err := s.next(src[off:])
		if err != nil {
			s.pend = s.pend[:0]
			return err
		}
		if n == 0 {
			break // incomplete frame: wait for more bytes
		}
		off += n
		if err := emit(m); err != nil {
			s.pend = s.pend[:0]
			return err
		}
	}
	rest := src[off:]
	if len(s.pend) > 0 {
		// rest aliases pend's tail; copy handles the forward overlap.
		s.pend = s.pend[:copy(s.pend, rest)]
	} else if len(rest) > 0 {
		s.pend = append(s.pend[:0], rest...)
	}
	if len(s.pend) == 0 && cap(s.pend) > maxPooledBuf {
		// One oversized frame must not pin its high-water mark on an
		// otherwise idle connection.
		s.pend = nil
	}
	return nil
}

// next decodes the first frame of b, returning the message and the bytes
// consumed. n == 0 with a nil error means b holds only a partial frame.
func (s *StreamDecoder) next(b []byte) (m Message, n int, err error) {
	if len(b) < headerLen {
		return nil, 0, nil
	}
	ln := int(uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24)
	if ln == 0 {
		return nil, 0, fmt.Errorf("netproto: zero-length frame")
	}
	if ln > MaxFrame {
		return nil, 0, fmt.Errorf("netproto: frame of %d bytes exceeds limit", ln)
	}
	total := headerLen - 1 + ln // 4 length bytes + type byte + body
	if len(b) < total {
		return nil, 0, nil
	}
	t := MsgType(b[4])
	body := b[headerLen:total]
	if t == TBatch {
		s.boxes.arena.reset()
		if err := s.boxes.batch.decodeWith(body, s.boxes.arena.get); err != nil {
			return nil, 0, err
		}
		return &s.boxes.batch, total, nil
	}
	m, err = s.boxes.box(t)
	if err != nil {
		return nil, 0, err
	}
	if err := m.decode(body); err != nil {
		return nil, 0, err
	}
	return m, total, nil
}
