// Pooling for the wire hot path: scratch buffers for frame encode/decode
// and reusable boxes for the high-volume message types, so a connection in
// steady state sends and receives frames without heap allocation.
//
// Ownership discipline for pooled messages: the code that obtains a message
// from Get* hands ownership down the pipeline with the message (e.g. by
// enqueuing it on a connection's write queue); whoever finally encodes — or
// drops — it calls Release exactly once. Release also accepts messages that
// were heap-allocated rather than pooled, so producers may mix freely.
// Messages returned by a Decoder are NOT pool members and must never be
// passed to Release: the Decoder reclaims them itself on the next Decode.

package netproto

import "sync"

// bufPool holds scratch byte slices (boxed to keep Put allocation-free) used
// by Write and ReadMsg, and available to connection writers via GetBuf.
var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}

func getBuf() *[]byte { return bufPool.Get().(*[]byte) }

// maxPooledBuf caps the capacity the buffer pool retains: a buffer grown by
// one exceptional multi-frame burst is dropped to the GC instead of pinning
// its high-water mark in the pool forever.
const maxPooledBuf = 1 << 17

// putBuf truncates before pooling so every buffer handed out — including by
// the public GetBuf — honors the length-0 guarantee.
func putBuf(b *[]byte) {
	if cap(*b) > maxPooledBuf {
		return
	}
	*b = (*b)[:0]
	bufPool.Put(b)
}

// GetBuf returns a pooled scratch buffer of length 0 for assembling frames
// with AppendFrame. PutBuf returns it; the buffer must not be used after.
func GetBuf() *[]byte { return getBuf() }

// PutBuf returns a buffer obtained from GetBuf to the pool.
func PutBuf(b *[]byte) { putBuf(b) }

var (
	refreshPool      = sync.Pool{New: func() any { return new(Refresh) }}
	refreshBatchPool = sync.Pool{New: func() any { return new(RefreshBatch) }}
	readPool         = sync.Pool{New: func() any { return new(Read) }}
	readMultiPool    = sync.Pool{New: func() any { return new(ReadMulti) }}
	batchPool        = sync.Pool{New: func() any { return new(Batch) }}
	queryUpdatePool  = sync.Pool{New: func() any { return new(QueryUpdate) }}
)

// GetRefresh returns a zeroed *Refresh from the message pool.
func GetRefresh() *Refresh { return refreshPool.Get().(*Refresh) }

// GetRefreshBatch returns a *RefreshBatch with ID 0 and empty Items; the
// Items slice keeps its previous capacity for reuse.
func GetRefreshBatch() *RefreshBatch { return refreshBatchPool.Get().(*RefreshBatch) }

// GetRead returns a zeroed *Read from the message pool.
func GetRead() *Read { return readPool.Get().(*Read) }

// GetReadMulti returns a *ReadMulti with ID 0 and empty Keys; the Keys slice
// keeps its previous capacity for reuse.
func GetReadMulti() *ReadMulti { return readMultiPool.Get().(*ReadMulti) }

// GetBatch returns a *Batch with empty Msgs, keeping its previous capacity.
func GetBatch() *Batch { return batchPool.Get().(*Batch) }

// GetQueryUpdate returns a zeroed *QueryUpdate from the message pool; the
// standing-query push path emits one per answer change.
func GetQueryUpdate() *QueryUpdate { return queryUpdatePool.Get().(*QueryUpdate) }

// Release returns m's storage to the message pools when m is one of the
// pooled high-volume types; other types are left to the garbage collector.
// Releasing a *Batch releases its sub-messages too. The caller must hold the
// only reference; m (and, for a Batch, its subs) must not be used after.
func Release(m Message) {
	switch v := m.(type) {
	case *Refresh:
		*v = Refresh{}
		refreshPool.Put(v)
	case *RefreshBatch:
		v.ID = 0
		v.Items = v.Items[:0]
		v.CqrCost = 0
		refreshBatchPool.Put(v)
	case *Read:
		*v = Read{}
		readPool.Put(v)
	case *ReadMulti:
		v.ID = 0
		v.Keys = v.Keys[:0]
		readMultiPool.Put(v)
	case *QueryUpdate:
		*v = QueryUpdate{}
		queryUpdatePool.Put(v)
	case *Batch:
		for i, sub := range v.Msgs {
			Release(sub)
			v.Msgs[i] = nil
		}
		v.Msgs = v.Msgs[:0]
		batchPool.Put(v)
	}
}
