package netproto

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := ReadMsg(&buf)
	if err != nil {
		t.Fatalf("ReadMsg: %v", err)
	}
	return got
}

func TestRoundTripSubscribe(t *testing.T) {
	got := roundTrip(t, &Subscribe{ID: 7, Key: -3}).(*Subscribe)
	if got.ID != 7 || got.Key != -3 {
		t.Errorf("got %+v", got)
	}
}

func TestRoundTripUnsubscribe(t *testing.T) {
	got := roundTrip(t, &Unsubscribe{ID: 9, Key: 12}).(*Unsubscribe)
	if got.ID != 9 || got.Key != 12 {
		t.Errorf("got %+v", got)
	}
}

func TestRoundTripRead(t *testing.T) {
	got := roundTrip(t, &Read{ID: 1, Key: 99}).(*Read)
	if got.ID != 1 || got.Key != 99 {
		t.Errorf("got %+v", got)
	}
}

func TestRoundTripPingPong(t *testing.T) {
	if got := roundTrip(t, &Ping{ID: 5}).(*Ping); got.ID != 5 {
		t.Errorf("ping %+v", got)
	}
	if got := roundTrip(t, &Pong{ID: 6}).(*Pong); got.ID != 6 {
		t.Errorf("pong %+v", got)
	}
}

func TestRoundTripRefresh(t *testing.T) {
	in := &Refresh{
		ID: 42, Key: 3, Kind: KindValueInitiated,
		Value: 1.5, Lo: 1, Hi: 2, OriginalWidth: 1,
	}
	got := roundTrip(t, in).(*Refresh)
	if *got != *in {
		t.Errorf("got %+v, want %+v", got, in)
	}
}

func TestRoundTripRefreshInfinities(t *testing.T) {
	in := &Refresh{
		ID: 0, Key: 1, Kind: KindInitial,
		Value: 0, Lo: math.Inf(-1), Hi: math.Inf(1), OriginalWidth: math.Inf(1),
	}
	got := roundTrip(t, in).(*Refresh)
	if !math.IsInf(got.Lo, -1) || !math.IsInf(got.Hi, 1) || !math.IsInf(got.OriginalWidth, 1) {
		t.Errorf("infinities lost: %+v", got)
	}
}

func TestRoundTripError(t *testing.T) {
	got := roundTrip(t, &ErrorMsg{ID: 2, Msg: "unknown key"}).(*ErrorMsg)
	if got.ID != 2 || got.Msg != "unknown key" {
		t.Errorf("got %+v", got)
	}
	// Empty message is fine too.
	if got := roundTrip(t, &ErrorMsg{ID: 3}).(*ErrorMsg); got.Msg != "" {
		t.Errorf("got %+v", got)
	}
}

func TestMultipleFramesSequential(t *testing.T) {
	var buf bytes.Buffer
	msgs := []Message{
		&Subscribe{ID: 1, Key: 10},
		&Refresh{ID: 1, Key: 10, Kind: KindInitial, Value: 5, Lo: 4, Hi: 6, OriginalWidth: 2},
		&Ping{ID: 2},
	}
	for _, m := range msgs {
		if err := Write(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i := range msgs {
		got, err := ReadMsg(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.msgType() != msgs[i].msgType() {
			t.Errorf("frame %d type %v, want %v", i, got.msgType(), msgs[i].msgType())
		}
	}
	if _, err := ReadMsg(&buf); err != io.EOF {
		t.Errorf("expected EOF after frames, got %v", err)
	}
}

func TestReadErrors(t *testing.T) {
	// Unknown type.
	var buf bytes.Buffer
	frame := make([]byte, 5+8)
	binary.LittleEndian.PutUint32(frame, 9)
	frame[4] = 200
	buf.Write(frame)
	if _, err := ReadMsg(&buf); err == nil {
		t.Errorf("unknown type accepted")
	}
	// Oversize frame.
	buf.Reset()
	binary.LittleEndian.PutUint32(frame, MaxFrame+1)
	frame[4] = byte(TPing)
	buf.Write(frame)
	if _, err := ReadMsg(&buf); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Errorf("oversize frame: %v", err)
	}
	// Zero length.
	buf.Reset()
	binary.LittleEndian.PutUint32(frame, 0)
	buf.Write(frame[:5])
	if _, err := ReadMsg(&buf); err == nil {
		t.Errorf("zero-length frame accepted")
	}
	// Truncated body.
	buf.Reset()
	binary.LittleEndian.PutUint32(frame, 9)
	frame[4] = byte(TPing)
	buf.Write(frame[:7])
	if _, err := ReadMsg(&buf); err == nil {
		t.Errorf("truncated body accepted")
	}
}

func TestDecodeTruncatedFields(t *testing.T) {
	// A Subscribe frame whose body is too short for its fields.
	var buf bytes.Buffer
	body := make([]byte, 4) // needs 16
	frame := make([]byte, 5+len(body))
	binary.LittleEndian.PutUint32(frame, uint32(len(body)+1))
	frame[4] = byte(TSubscribe)
	copy(frame[5:], body)
	buf.Write(frame)
	if _, err := ReadMsg(&buf); err == nil {
		t.Errorf("truncated fields accepted")
	}
}

func TestDecodeTrailingBytes(t *testing.T) {
	var buf bytes.Buffer
	body := make([]byte, 17) // Subscribe wants exactly 16
	frame := make([]byte, 5+len(body))
	binary.LittleEndian.PutUint32(frame, uint32(len(body)+1))
	frame[4] = byte(TSubscribe)
	buf.Write(frame)
	if _, err := ReadMsg(&buf); err == nil {
		t.Errorf("trailing bytes accepted")
	}
}

func TestBadRefreshKindRejected(t *testing.T) {
	m := &Refresh{ID: 1, Key: 1, Kind: 9, Value: 1, Lo: 0, Hi: 2, OriginalWidth: 2}
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadMsg(&buf); err == nil {
		t.Errorf("bad refresh kind accepted")
	}
}

func TestMsgTypeString(t *testing.T) {
	names := map[MsgType]string{
		TSubscribe: "Subscribe", TUnsubscribe: "Unsubscribe", TRead: "Read",
		TPing: "Ping", TRefresh: "Refresh", TPong: "Pong", TError: "Error",
	}
	for ty, want := range names {
		if got := ty.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", ty, got, want)
		}
	}
	if got := MsgType(99).String(); got != "MsgType(99)" {
		t.Errorf("unknown type string %q", got)
	}
}

func TestQuickRefreshRoundTrip(t *testing.T) {
	f := func(id uint64, key int64, kindRaw uint8, v, lo, hi, w float64) bool {
		in := &Refresh{
			ID: id, Key: key, Kind: RefreshKind(kindRaw % 3),
			Value: v, Lo: lo, Hi: hi, OriginalWidth: w,
		}
		var buf bytes.Buffer
		if err := Write(&buf, in); err != nil {
			return false
		}
		got, err := ReadMsg(&buf)
		if err != nil {
			return false
		}
		out, ok := got.(*Refresh)
		if !ok {
			return false
		}
		// NaN != NaN, so compare bit patterns.
		eq := func(a, b float64) bool {
			return math.Float64bits(a) == math.Float64bits(b)
		}
		return out.ID == in.ID && out.Key == in.Key && out.Kind == in.Kind &&
			eq(out.Value, in.Value) && eq(out.Lo, in.Lo) && eq(out.Hi, in.Hi) &&
			eq(out.OriginalWidth, in.OriginalWidth)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickErrorMsgRoundTrip(t *testing.T) {
	f := func(id uint64, msg string) bool {
		if len(msg) > MaxFrame-16 {
			return true
		}
		in := &ErrorMsg{ID: id, Msg: msg}
		var buf bytes.Buffer
		if err := Write(&buf, in); err != nil {
			return false
		}
		got, err := ReadMsg(&buf)
		if err != nil {
			return false
		}
		out := got.(*ErrorMsg)
		return out.ID == id && out.Msg == msg
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
