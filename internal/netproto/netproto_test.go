package netproto

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"apcache/internal/aperrs"
)

func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := ReadMsg(&buf)
	if err != nil {
		t.Fatalf("ReadMsg: %v", err)
	}
	return got
}

func TestRoundTripSubscribe(t *testing.T) {
	got := roundTrip(t, &Subscribe{ID: 7, Key: -3}).(*Subscribe)
	if got.ID != 7 || got.Key != -3 {
		t.Errorf("got %+v", got)
	}
}

func TestRoundTripUnsubscribe(t *testing.T) {
	got := roundTrip(t, &Unsubscribe{ID: 9, Key: 12}).(*Unsubscribe)
	if got.ID != 9 || got.Key != 12 {
		t.Errorf("got %+v", got)
	}
}

func TestRoundTripRead(t *testing.T) {
	got := roundTrip(t, &Read{ID: 1, Key: 99}).(*Read)
	if got.ID != 1 || got.Key != 99 {
		t.Errorf("got %+v", got)
	}
}

func TestRoundTripPingPong(t *testing.T) {
	if got := roundTrip(t, &Ping{ID: 5}).(*Ping); got.ID != 5 {
		t.Errorf("ping %+v", got)
	}
	if got := roundTrip(t, &Pong{ID: 6}).(*Pong); got.ID != 6 {
		t.Errorf("pong %+v", got)
	}
}

func TestRoundTripRefresh(t *testing.T) {
	in := &Refresh{
		ID: 42, Key: 3, Kind: KindValueInitiated,
		Value: 1.5, Lo: 1, Hi: 2, OriginalWidth: 1,
	}
	got := roundTrip(t, in).(*Refresh)
	if *got != *in {
		t.Errorf("got %+v, want %+v", got, in)
	}
}

func TestRoundTripRefreshInfinities(t *testing.T) {
	in := &Refresh{
		ID: 0, Key: 1, Kind: KindInitial,
		Value: 0, Lo: math.Inf(-1), Hi: math.Inf(1), OriginalWidth: math.Inf(1),
	}
	got := roundTrip(t, in).(*Refresh)
	if !math.IsInf(got.Lo, -1) || !math.IsInf(got.Hi, 1) || !math.IsInf(got.OriginalWidth, 1) {
		t.Errorf("infinities lost: %+v", got)
	}
}

func TestRoundTripError(t *testing.T) {
	got := roundTrip(t, &ErrorMsg{ID: 2, Msg: "unknown key"}).(*ErrorMsg)
	if got.ID != 2 || got.Msg != "unknown key" {
		t.Errorf("got %+v", got)
	}
	// Empty message is fine too.
	if got := roundTrip(t, &ErrorMsg{ID: 3}).(*ErrorMsg); got.Msg != "" {
		t.Errorf("got %+v", got)
	}
}

func TestRoundTripError2(t *testing.T) {
	in := &Error2{ID: 4, Code: CodeUnknownKey, Key: -17, Msg: "unknown key -17"}
	got := roundTrip(t, in).(*Error2)
	if *got != *in {
		t.Errorf("got %+v, want %+v", got, in)
	}
	// Empty message and zero code survive too.
	if got := roundTrip(t, &Error2{ID: 5}).(*Error2); got.Code != CodeGeneric || got.Key != 0 || got.Msg != "" {
		t.Errorf("got %+v", got)
	}
	// A Decoder decodes it through its reusable box.
	var buf bytes.Buffer
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	d := NewDecoder(&buf)
	msg, err := d.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := msg.(*Error2); !ok || *got != *in {
		t.Errorf("Decoder got %#v, want %+v", msg, in)
	}
}

func TestMultipleFramesSequential(t *testing.T) {
	var buf bytes.Buffer
	msgs := []Message{
		&Subscribe{ID: 1, Key: 10},
		&Refresh{ID: 1, Key: 10, Kind: KindInitial, Value: 5, Lo: 4, Hi: 6, OriginalWidth: 2},
		&Ping{ID: 2},
	}
	for _, m := range msgs {
		if err := Write(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i := range msgs {
		got, err := ReadMsg(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.msgType() != msgs[i].msgType() {
			t.Errorf("frame %d type %v, want %v", i, got.msgType(), msgs[i].msgType())
		}
	}
	if _, err := ReadMsg(&buf); err != io.EOF {
		t.Errorf("expected EOF after frames, got %v", err)
	}
}

func TestReadErrors(t *testing.T) {
	// Unknown type.
	var buf bytes.Buffer
	frame := make([]byte, 5+8)
	binary.LittleEndian.PutUint32(frame, 9)
	frame[4] = 200
	buf.Write(frame)
	if _, err := ReadMsg(&buf); err == nil {
		t.Errorf("unknown type accepted")
	}
	// Oversize frame.
	buf.Reset()
	binary.LittleEndian.PutUint32(frame, MaxFrame+1)
	frame[4] = byte(TPing)
	buf.Write(frame)
	if _, err := ReadMsg(&buf); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Errorf("oversize frame: %v", err)
	}
	// Zero length.
	buf.Reset()
	binary.LittleEndian.PutUint32(frame, 0)
	buf.Write(frame[:5])
	if _, err := ReadMsg(&buf); err == nil {
		t.Errorf("zero-length frame accepted")
	}
	// Truncated body.
	buf.Reset()
	binary.LittleEndian.PutUint32(frame, 9)
	frame[4] = byte(TPing)
	buf.Write(frame[:7])
	if _, err := ReadMsg(&buf); err == nil {
		t.Errorf("truncated body accepted")
	}
}

func TestDecodeTruncatedFields(t *testing.T) {
	// A Subscribe frame whose body is too short for its fields.
	var buf bytes.Buffer
	body := make([]byte, 4) // needs 16
	frame := make([]byte, 5+len(body))
	binary.LittleEndian.PutUint32(frame, uint32(len(body)+1))
	frame[4] = byte(TSubscribe)
	copy(frame[5:], body)
	buf.Write(frame)
	if _, err := ReadMsg(&buf); err == nil {
		t.Errorf("truncated fields accepted")
	}
}

func TestDecodeTrailingBytes(t *testing.T) {
	var buf bytes.Buffer
	body := make([]byte, 17) // Subscribe wants exactly 16
	frame := make([]byte, 5+len(body))
	binary.LittleEndian.PutUint32(frame, uint32(len(body)+1))
	frame[4] = byte(TSubscribe)
	buf.Write(frame)
	if _, err := ReadMsg(&buf); err == nil {
		t.Errorf("trailing bytes accepted")
	}
}

func TestBadRefreshKindRejected(t *testing.T) {
	m := &Refresh{ID: 1, Key: 1, Kind: 9, Value: 1, Lo: 0, Hi: 2, OriginalWidth: 2}
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadMsg(&buf); err == nil {
		t.Errorf("bad refresh kind accepted")
	}
}

func TestRoundTripHello(t *testing.T) {
	got := roundTrip(t, &Hello{ID: 4, Version: Version2, MaxBatch: 128}).(*Hello)
	if got.ID != 4 || got.Version != Version2 || got.MaxBatch != 128 {
		t.Errorf("got %+v", got)
	}
	ack := roundTrip(t, &HelloAck{ID: 4, Version: Version2, MaxBatch: 64}).(*HelloAck)
	if ack.ID != 4 || ack.Version != Version2 || ack.MaxBatch != 64 {
		t.Errorf("got %+v", ack)
	}
}

func TestHelloAckCostVersionGated(t *testing.T) {
	// v3 acks carry the measured-cost field end to end.
	ack := roundTrip(t, &HelloAck{ID: 9, Version: Version3, MaxBatch: 64, CqrCost: 12345}).(*HelloAck)
	if ack.CqrCost != 12345 {
		t.Errorf("v3 CqrCost = %d, want 12345", ack.CqrCost)
	}
	// A v2 ack must encode without the field — a v2 peer's strict decoder
	// rejects trailing bytes — so the cost is dropped, not smuggled.
	v2 := roundTrip(t, &HelloAck{ID: 9, Version: Version2, MaxBatch: 64, CqrCost: 12345}).(*HelloAck)
	if v2.CqrCost != 0 {
		t.Errorf("v2 CqrCost = %d, want 0 (field is v3-only on the wire)", v2.CqrCost)
	}
	var short, long []byte
	short = (&HelloAck{ID: 1, Version: Version2, MaxBatch: 1}).encode(short)
	long = (&HelloAck{ID: 1, Version: Version3, MaxBatch: 1}).encode(long)
	if len(short) != 11 || len(long) != 19 {
		t.Errorf("encoded lengths v2=%d v3=%d, want 11 and 19", len(short), len(long))
	}
}

func TestHelloAckCostLenientDecode(t *testing.T) {
	// A v3 ack without the field (an older v3 peer) still decodes, and a
	// reused message box must not leak the previous ack's cost into it.
	m := &HelloAck{}
	withCost := (&HelloAck{ID: 2, Version: Version3, MaxBatch: 8, CqrCost: 777}).encode(nil)
	if err := m.decode(withCost); err != nil || m.CqrCost != 777 {
		t.Fatalf("decode with cost: %v, CqrCost %d", err, m.CqrCost)
	}
	legacy := []byte(nil)
	legacy = putU64(legacy, 3)
	legacy = append(legacy, Version3)
	legacy = putU16(legacy, 8)
	if err := m.decode(legacy); err != nil {
		t.Fatalf("legacy v3 ack rejected: %v", err)
	}
	if m.CqrCost != 0 {
		t.Errorf("reused box leaked CqrCost %d from previous decode", m.CqrCost)
	}
}

func TestHelloVersionZeroRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, &Hello{ID: 1, Version: 0, MaxBatch: 8}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadMsg(&buf); err == nil {
		t.Errorf("hello with version 0 accepted")
	}
}

func TestRoundTripReadMulti(t *testing.T) {
	in := &ReadMulti{ID: 11, Keys: []int64{3, -1, 7}}
	got := roundTrip(t, in).(*ReadMulti)
	if got.ID != 11 || len(got.Keys) != 3 || got.Keys[0] != 3 || got.Keys[1] != -1 || got.Keys[2] != 7 {
		t.Errorf("got %+v", got)
	}
	sub := roundTrip(t, &SubscribeMulti{ID: 12, Keys: []int64{5}}).(*SubscribeMulti)
	if sub.ID != 12 || len(sub.Keys) != 1 || sub.Keys[0] != 5 {
		t.Errorf("got %+v", sub)
	}
}

func TestEmptyMultiRejected(t *testing.T) {
	for _, m := range []Message{
		&ReadMulti{ID: 1},
		&SubscribeMulti{ID: 2},
		&RefreshBatch{ID: 3},
	} {
		var buf bytes.Buffer
		if err := Write(&buf, m); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadMsg(&buf); err == nil {
			t.Errorf("empty %T accepted", m)
		}
	}
}

func TestRoundTripRefreshBatch(t *testing.T) {
	in := &RefreshBatch{ID: 9, Items: []RefreshItem{
		{Key: 1, Kind: KindInitial, Value: 5, Lo: 4, Hi: 6, OriginalWidth: 2},
		{Key: 2, Kind: KindValueInitiated, Value: -1, Lo: math.Inf(-1), Hi: math.Inf(1), OriginalWidth: math.Inf(1)},
		{Key: 3, Kind: KindQueryInitiated, Value: 7, Lo: 7, Hi: 7, OriginalWidth: 0},
	}}
	got := roundTrip(t, in).(*RefreshBatch)
	if got.ID != 9 || len(got.Items) != 3 {
		t.Fatalf("got %+v", got)
	}
	for i := range in.Items {
		a, b := got.Items[i], in.Items[i]
		if a.Key != b.Key || a.Kind != b.Kind ||
			math.Float64bits(a.Value) != math.Float64bits(b.Value) ||
			math.Float64bits(a.Lo) != math.Float64bits(b.Lo) ||
			math.Float64bits(a.Hi) != math.Float64bits(b.Hi) ||
			math.Float64bits(a.OriginalWidth) != math.Float64bits(b.OriginalWidth) {
			t.Errorf("item %d: got %+v, want %+v", i, a, b)
		}
	}
	// Item/Refresh conversions round-trip too.
	r := got.Refresh(0)
	if r.ID != 9 || r.Key != 1 || r.Item() != got.Items[0] {
		t.Errorf("Refresh(0) = %+v", r)
	}
}

func TestRefreshBatchBadKindRejected(t *testing.T) {
	in := &RefreshBatch{ID: 1, Items: []RefreshItem{{Key: 1, Kind: 7, Value: 1, Lo: 0, Hi: 2, OriginalWidth: 2}}}
	var buf bytes.Buffer
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadMsg(&buf); err == nil {
		t.Errorf("bad kind in batch item accepted")
	}
}

func TestRoundTripBatch(t *testing.T) {
	in := &Batch{Msgs: []Message{
		&Subscribe{ID: 1, Key: 10},
		&Read{ID: 2, Key: 11},
		&Ping{ID: 3},
		&ErrorMsg{ID: 4, Msg: "nope"},
		&Refresh{ID: 5, Key: 12, Kind: KindQueryInitiated, Value: 1, Lo: 0, Hi: 2, OriginalWidth: 2},
	}}
	got := roundTrip(t, in).(*Batch)
	if len(got.Msgs) != len(in.Msgs) {
		t.Fatalf("batch of %d, want %d", len(got.Msgs), len(in.Msgs))
	}
	for i := range in.Msgs {
		if got.Msgs[i].msgType() != in.Msgs[i].msgType() {
			t.Errorf("msg %d type %v, want %v", i, got.Msgs[i].msgType(), in.Msgs[i].msgType())
		}
	}
	if r := got.Msgs[1].(*Read); r.ID != 2 || r.Key != 11 {
		t.Errorf("inner read %+v", r)
	}
	if e := got.Msgs[3].(*ErrorMsg); e.Msg != "nope" {
		t.Errorf("inner error %+v", e)
	}
}

func TestEmptyBatchRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, &Batch{}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadMsg(&buf); err == nil {
		t.Errorf("empty batch accepted")
	}
}

func TestNestedBatchRejected(t *testing.T) {
	inner := &Batch{Msgs: []Message{&Ping{ID: 1}}}
	outer := &Batch{Msgs: []Message{inner}}
	var buf bytes.Buffer
	if err := Write(&buf, outer); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadMsg(&buf); err == nil || !strings.Contains(err.Error(), "nested") {
		t.Errorf("nested batch: %v", err)
	}
}

func TestOversizedBatchCountRejected(t *testing.T) {
	// Hand-build a Batch frame claiming MaxBatchItems+1 sub-messages.
	var body []byte
	body = putU16(body, uint16(MaxBatchItems+1))
	frame := make([]byte, 5+len(body))
	binary.LittleEndian.PutUint32(frame, uint32(len(body)+1))
	frame[4] = byte(TBatch)
	copy(frame[5:], body)
	if _, err := ReadMsg(bytes.NewReader(frame)); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Errorf("oversized batch count: %v", err)
	}
	// Same for a ReadMulti key count.
	body = body[:0]
	body = putU64(body, 1)
	body = putU16(body, uint16(MaxBatchItems+1))
	frame = make([]byte, 5+len(body))
	binary.LittleEndian.PutUint32(frame, uint32(len(body)+1))
	frame[4] = byte(TReadMulti)
	copy(frame[5:], body)
	if _, err := ReadMsg(bytes.NewReader(frame)); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Errorf("oversized readmulti count: %v", err)
	}
}

func TestQuickBatchRoundTrip(t *testing.T) {
	f := func(ids []uint64, keys []int64) bool {
		if len(ids) == 0 || len(ids) > 64 {
			return true
		}
		in := &Batch{}
		for i, id := range ids {
			var k int64
			if len(keys) > 0 {
				k = keys[i%len(keys)]
			}
			switch i % 3 {
			case 0:
				in.Msgs = append(in.Msgs, &Read{ID: id, Key: k})
			case 1:
				in.Msgs = append(in.Msgs, &Ping{ID: id})
			default:
				in.Msgs = append(in.Msgs, &Subscribe{ID: id, Key: k})
			}
		}
		var buf bytes.Buffer
		if err := Write(&buf, in); err != nil {
			return false
		}
		got, err := ReadMsg(&buf)
		if err != nil {
			return false
		}
		out, ok := got.(*Batch)
		if !ok || len(out.Msgs) != len(in.Msgs) {
			return false
		}
		for i := range in.Msgs {
			if out.Msgs[i].msgType() != in.Msgs[i].msgType() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMsgTypeString(t *testing.T) {
	names := map[MsgType]string{
		TSubscribe: "Subscribe", TUnsubscribe: "Unsubscribe", TRead: "Read",
		TPing: "Ping", TRefresh: "Refresh", TPong: "Pong", TError: "Error",
		THello: "Hello", THelloAck: "HelloAck", TReadMulti: "ReadMulti",
		TSubscribeMulti: "SubscribeMulti", TRefreshBatch: "RefreshBatch", TBatch: "Batch",
	}
	for ty, want := range names {
		if got := ty.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", ty, got, want)
		}
	}
	if got := MsgType(99).String(); got != "MsgType(99)" {
		t.Errorf("unknown type string %q", got)
	}
}

func TestQuickRefreshRoundTrip(t *testing.T) {
	f := func(id uint64, key int64, kindRaw uint8, v, lo, hi, w float64) bool {
		in := &Refresh{
			ID: id, Key: key, Kind: RefreshKind(kindRaw % 3),
			Value: v, Lo: lo, Hi: hi, OriginalWidth: w,
		}
		var buf bytes.Buffer
		if err := Write(&buf, in); err != nil {
			return false
		}
		got, err := ReadMsg(&buf)
		if err != nil {
			return false
		}
		out, ok := got.(*Refresh)
		if !ok {
			return false
		}
		// NaN != NaN, so compare bit patterns.
		eq := func(a, b float64) bool {
			return math.Float64bits(a) == math.Float64bits(b)
		}
		return out.ID == in.ID && out.Key == in.Key && out.Kind == in.Kind &&
			eq(out.Value, in.Value) && eq(out.Lo, in.Lo) && eq(out.Hi, in.Hi) &&
			eq(out.OriginalWidth, in.OriginalWidth)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickErrorMsgRoundTrip(t *testing.T) {
	f := func(id uint64, msg string) bool {
		if len(msg) > MaxFrame-16 {
			return true
		}
		in := &ErrorMsg{ID: id, Msg: msg}
		var buf bytes.Buffer
		if err := Write(&buf, in); err != nil {
			return false
		}
		got, err := ReadMsg(&buf)
		if err != nil {
			return false
		}
		out := got.(*ErrorMsg)
		return out.ID == id && out.Msg == msg
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestBatchLimitBoundary: exactly MaxBatchItems is the largest legal count
// and must survive a full round trip for every batch-carrying type; one more
// is rejected at the sender (exercised in TestWriteRejectsOversizedBatches).
func TestBatchLimitBoundary(t *testing.T) {
	keys := make([]int64, MaxBatchItems)
	for i := range keys {
		keys[i] = int64(i)
	}
	msgs := make([]Message, MaxBatchItems)
	for i := range msgs {
		msgs[i] = &Ping{ID: uint64(i)}
	}
	items := make([]RefreshItem, MaxBatchItems)
	for i := range items {
		items[i] = RefreshItem{Key: int64(i), Kind: KindValueInitiated, Value: 1, Lo: 0, Hi: 2, OriginalWidth: 2}
	}
	for _, m := range []Message{
		&ReadMulti{ID: 1, Keys: keys},
		&SubscribeMulti{ID: 2, Keys: keys},
		&Batch{Msgs: msgs},
		&RefreshBatch{ID: 3, Items: items},
	} {
		got := roundTrip(t, m)
		if n := batchLen(got); n != MaxBatchItems {
			t.Errorf("%s round-tripped %d items, want %d", m.msgType(), n, MaxBatchItems)
		}
	}
}

func TestWriteRejectsOversizedBatches(t *testing.T) {
	var buf bytes.Buffer
	keys := make([]int64, MaxBatchItems+1)
	if err := Write(&buf, &ReadMulti{ID: 1, Keys: keys}); !errors.Is(err, aperrs.ErrBatchTooLarge) {
		t.Errorf("oversized ReadMulti: err = %v, want ErrBatchTooLarge match", err)
	}
	msgs := make([]Message, MaxBatchItems+1)
	for i := range msgs {
		msgs[i] = &Ping{ID: uint64(i)}
	}
	if err := Write(&buf, &Batch{Msgs: msgs}); !errors.Is(err, aperrs.ErrBatchTooLarge) {
		t.Errorf("oversized Batch: err = %v, want ErrBatchTooLarge match", err)
	}
	items := make([]RefreshItem, MaxBatchItems+1)
	if err := Write(&buf, &RefreshBatch{ID: 1, Items: items}); !errors.Is(err, aperrs.ErrBatchTooLarge) {
		t.Errorf("oversized RefreshBatch: err = %v, want ErrBatchTooLarge match", err)
	}
}
