package netproto

import (
	"bytes"
	"testing"
)

// TestWireAllocs locks in the steady-state allocation budget of the wire
// codec: encoding into a reused buffer and decoding through a Decoder are
// both allocation-free once warm. CI runs this as its allocation-regression
// gate (`go test -run TestWireAllocs ./internal/...`).
func TestWireAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}

	refresh := &Refresh{ID: 1, Key: 2, Kind: KindValueInitiated, Value: 1, Lo: 0, Hi: 2, OriginalWidth: 2}
	items := make([]RefreshItem, 64)
	for i := range items {
		items[i] = RefreshItem{Key: int64(i), Kind: KindValueInitiated, Value: 1, Lo: 0, Hi: 2, OriginalWidth: 2}
	}
	keys := make([]int64, 64)
	for i := range keys {
		keys[i] = int64(i)
	}
	reads := make([]Message, 32)
	for i := range reads {
		reads[i] = &Read{ID: uint64(i), Key: int64(i)}
	}
	msgs := []Message{
		refresh,
		&RefreshBatch{ID: 0, Items: items},
		&Read{ID: 3, Key: 4},
		&ReadMulti{ID: 5, Keys: keys},
		&Batch{Msgs: reads},
	}

	// Encode: AppendFrame into a caller-owned buffer allocates nothing.
	buf := make([]byte, 0, 1<<15)
	for _, m := range msgs {
		m := m
		if n := testing.AllocsPerRun(200, func() {
			var err error
			buf, err = AppendFrame(buf[:0], m)
			if err != nil {
				t.Fatal(err)
			}
		}); n != 0 {
			t.Errorf("AppendFrame(%s): %v allocs/op, want 0", m.msgType(), n)
		}
	}

	// Decode: a Decoder replaying a warm stream allocates nothing.
	var stream []byte
	var err error
	for _, m := range msgs {
		stream, err = AppendFrame(stream, m)
		if err != nil {
			t.Fatal(err)
		}
	}
	r := bytes.NewReader(stream)
	d := NewDecoder(r)
	decodeAll := func() {
		r.Reset(stream)
		for range msgs {
			if _, err := d.Decode(); err != nil {
				t.Fatal(err)
			}
		}
	}
	decodeAll() // warm the body buffer, boxes, and arena
	if n := testing.AllocsPerRun(200, decodeAll); n != 0 {
		t.Errorf("Decoder.Decode: %v allocs/op over %d frames, want 0", n, len(msgs))
	}

	// Pooled message round trips are allocation-free once the pool is warm.
	if n := testing.AllocsPerRun(200, func() {
		rm := GetReadMulti()
		rm.Keys = append(rm.Keys[:0], keys...)
		buf, err = AppendFrame(buf[:0], rm)
		if err != nil {
			t.Fatal(err)
		}
		Release(rm)
	}); n != 0 {
		t.Errorf("pooled ReadMulti cycle: %v allocs/op, want 0", n)
	}
}
