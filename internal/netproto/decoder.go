// Decoder: the zero-allocation receive path. One Decoder owns one stream's
// decode state — a reusable body buffer, one box per message type, and a
// typed arena for Batch sub-messages — so a connection's read loop decodes
// frames without allocating in steady state.

package netproto

import "io"

// A Decoder reads frames from one stream, reusing message and buffer
// storage across calls.
//
// Release semantics: every Message returned by Decode — including the
// sub-messages of a returned *Batch — is valid only until the next Decode
// call, which reclaims its storage. A caller that retains a message across
// frames, or hands it to another goroutine, must copy it first. Messages
// returned by Decode are not pool members and must never be passed to
// Release.
//
// A Decoder is not safe for concurrent use; each connection's read loop
// owns exactly one. The allocating ReadMsg remains for callers that want to
// retain what they decode.
type Decoder struct {
	r    io.Reader
	body []byte

	subscribe    Subscribe
	unsubscribe  Unsubscribe
	read         Read
	ping         Ping
	refresh      Refresh
	pong         Pong
	errMsg       ErrorMsg
	err2         Error2
	hello        Hello
	helloAck     HelloAck
	readMulti    ReadMulti
	subMulti     SubscribeMulti
	refreshBatch RefreshBatch
	registerQ    RegisterQuery
	queryUpdate  QueryUpdate
	unregisterQ  UnregisterQuery
	batch        Batch
	arena        subArena
}

// NewDecoder returns a Decoder reading from r. Wrap the connection in a
// bufio.Reader first: the Decoder issues two small reads per frame.
func NewDecoder(r io.Reader) *Decoder { return &Decoder{r: r} }

// Decode reads and decodes the next frame. io.EOF passes through unwrapped
// for clean shutdown, like ReadMsg. The returned Message is valid only
// until the next Decode call.
func (d *Decoder) Decode() (Message, error) {
	t, body, err := readFrame(d.r, d.body[:0])
	d.body = body
	if err != nil {
		return nil, err
	}
	if t == TBatch {
		d.arena.reset()
		if err := d.batch.decodeWith(body, d.arena.get); err != nil {
			return nil, err
		}
		return &d.batch, nil
	}
	m, err := d.box(t)
	if err != nil {
		return nil, err
	}
	if err := m.decode(body); err != nil {
		return nil, err
	}
	return m, nil
}

// box returns the Decoder's reusable message of the given type.
func (d *Decoder) box(t MsgType) (Message, error) {
	switch t {
	case TSubscribe:
		return &d.subscribe, nil
	case TUnsubscribe:
		return &d.unsubscribe, nil
	case TRead:
		return &d.read, nil
	case TPing:
		return &d.ping, nil
	case TRefresh:
		return &d.refresh, nil
	case TPong:
		return &d.pong, nil
	case TError:
		return &d.errMsg, nil
	case TError2:
		return &d.err2, nil
	case THello:
		return &d.hello, nil
	case THelloAck:
		return &d.helloAck, nil
	case TReadMulti:
		return &d.readMulti, nil
	case TSubscribeMulti:
		return &d.subMulti, nil
	case TRefreshBatch:
		return &d.refreshBatch, nil
	case TRegisterQuery:
		return &d.registerQ, nil
	case TQueryUpdate:
		return &d.queryUpdate, nil
	case TUnregisterQuery:
		return &d.unregisterQ, nil
	default:
		return newMessage(t) // reports the unknown type
	}
}

// subArena hands out sub-message boxes for Batch decoding, reusing typed
// backing arrays across frames. Growing a backing slice leaves previously
// returned pointers valid — they keep pointing into the old array, which
// stays alive exactly as long as they do.
type subArena struct {
	subscribes []Subscribe
	unsubs     []Unsubscribe
	reads      []Read
	pings      []Ping
	refreshes  []Refresh
	pongs      []Pong
	errs       []ErrorMsg
}

func (a *subArena) reset() {
	a.subscribes = a.subscribes[:0]
	a.unsubs = a.unsubs[:0]
	a.reads = a.reads[:0]
	a.pings = a.pings[:0]
	a.refreshes = a.refreshes[:0]
	a.pongs = a.pongs[:0]
	a.errs = a.errs[:0]
}

// get returns a box for one Batch sub-message. The hot request/response
// types come from the arena; anything else (multi-key, handshake) is not
// legal batch cargo on any code path that matters, so it just allocates.
func (a *subArena) get(t MsgType) (Message, error) {
	switch t {
	case TSubscribe:
		a.subscribes = append(a.subscribes, Subscribe{})
		return &a.subscribes[len(a.subscribes)-1], nil
	case TUnsubscribe:
		a.unsubs = append(a.unsubs, Unsubscribe{})
		return &a.unsubs[len(a.unsubs)-1], nil
	case TRead:
		a.reads = append(a.reads, Read{})
		return &a.reads[len(a.reads)-1], nil
	case TPing:
		a.pings = append(a.pings, Ping{})
		return &a.pings[len(a.pings)-1], nil
	case TRefresh:
		a.refreshes = append(a.refreshes, Refresh{})
		return &a.refreshes[len(a.refreshes)-1], nil
	case TPong:
		a.pongs = append(a.pongs, Pong{})
		return &a.pongs[len(a.pongs)-1], nil
	case TError:
		a.errs = append(a.errs, ErrorMsg{})
		return &a.errs[len(a.errs)-1], nil
	default:
		return newMessage(t)
	}
}
