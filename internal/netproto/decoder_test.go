package netproto

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// encodeAll appends every message as one frame into a single buffer.
func encodeAll(t *testing.T, msgs ...Message) []byte {
	t.Helper()
	var buf []byte
	var err error
	for _, m := range msgs {
		buf, err = AppendFrame(buf, m)
		if err != nil {
			t.Fatalf("AppendFrame(%s): %v", m.msgType(), err)
		}
	}
	return buf
}

func TestAppendFrameMatchesWrite(t *testing.T) {
	msgs := []Message{
		&Subscribe{ID: 1, Key: -2},
		&Read{ID: 2, Key: 3},
		&Refresh{ID: 3, Key: 4, Kind: KindQueryInitiated, Value: 1, Lo: 0, Hi: 2, OriginalWidth: 2},
		&ReadMulti{ID: 4, Keys: []int64{9, 8, 7}},
		&RefreshBatch{ID: 5, Items: []RefreshItem{{Key: 1, Kind: KindInitial, Value: 1, Lo: 0, Hi: 2, OriginalWidth: 2}}},
		&Batch{Msgs: []Message{&Ping{ID: 6}, &Read{ID: 7, Key: 1}}},
		&ErrorMsg{ID: 8, Msg: "boom"},
	}
	for _, m := range msgs {
		var w bytes.Buffer
		if err := Write(&w, m); err != nil {
			t.Fatalf("Write(%s): %v", m.msgType(), err)
		}
		got, err := AppendFrame(nil, m)
		if err != nil {
			t.Fatalf("AppendFrame(%s): %v", m.msgType(), err)
		}
		if !bytes.Equal(got, w.Bytes()) {
			t.Errorf("%s: AppendFrame bytes differ from Write:\n  %x\n  %x", m.msgType(), got, w.Bytes())
		}
	}
}

func TestAppendFramePreservesPrefixOnError(t *testing.T) {
	prefix := encodeAll(t, &Ping{ID: 1})
	withLen := len(prefix)
	out, err := AppendFrame(prefix, &ReadMulti{ID: 2, Keys: make([]int64, MaxBatchItems+1)})
	if err == nil {
		t.Fatal("oversized ReadMulti accepted")
	}
	if len(out) != withLen {
		t.Errorf("dst length %d after failed append, want %d", len(out), withLen)
	}
	if _, err := ReadMsg(bytes.NewReader(out)); err != nil {
		t.Errorf("prefix corrupted by failed append: %v", err)
	}
}

func TestDecoderRoundTripsEveryType(t *testing.T) {
	msgs := []Message{
		&Subscribe{ID: 1, Key: 10},
		&Unsubscribe{ID: 2, Key: 11},
		&Read{ID: 3, Key: 12},
		&Ping{ID: 4},
		&Refresh{ID: 5, Key: 13, Kind: KindValueInitiated, Value: 1, Lo: 0, Hi: 2, OriginalWidth: 2},
		&Pong{ID: 6},
		&ErrorMsg{ID: 7, Msg: "nope"},
		&Hello{ID: 8, Version: Version2, MaxBatch: 128},
		&HelloAck{ID: 9, Version: Version2, MaxBatch: 64},
		&ReadMulti{ID: 10, Keys: []int64{1, 2, 3}},
		&SubscribeMulti{ID: 11, Keys: []int64{-4}},
		&RefreshBatch{ID: 12, Items: []RefreshItem{{Key: 5, Kind: KindInitial, Value: 9, Lo: 8, Hi: 10, OriginalWidth: 2}}},
		&Batch{Msgs: []Message{&Read{ID: 13, Key: 6}, &Ping{ID: 14}, &ErrorMsg{ID: 15, Msg: "x"}}},
	}
	stream := encodeAll(t, msgs...)
	d := NewDecoder(bytes.NewReader(stream))
	for i, want := range msgs {
		got, err := d.Decode()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.msgType() != want.msgType() {
			t.Fatalf("frame %d: type %v, want %v", i, got.msgType(), want.msgType())
		}
		switch w := want.(type) {
		case *Refresh:
			if g := got.(*Refresh); *g != *w {
				t.Errorf("frame %d: %+v, want %+v", i, g, w)
			}
		case *ReadMulti:
			g := got.(*ReadMulti)
			if g.ID != w.ID || len(g.Keys) != len(w.Keys) || g.Keys[0] != w.Keys[0] {
				t.Errorf("frame %d: %+v, want %+v", i, g, w)
			}
		case *ErrorMsg:
			if g := got.(*ErrorMsg); g.Msg != w.Msg {
				t.Errorf("frame %d: %+v, want %+v", i, g, w)
			}
		case *Batch:
			g := got.(*Batch)
			if len(g.Msgs) != len(w.Msgs) {
				t.Fatalf("frame %d: batch of %d, want %d", i, len(g.Msgs), len(w.Msgs))
			}
			for j := range w.Msgs {
				if g.Msgs[j].msgType() != w.Msgs[j].msgType() {
					t.Errorf("frame %d sub %d: type %v, want %v", i, j, g.Msgs[j].msgType(), w.Msgs[j].msgType())
				}
			}
			if r := g.Msgs[0].(*Read); r.ID != 13 || r.Key != 6 {
				t.Errorf("frame %d: inner read %+v", i, r)
			}
		}
	}
	if _, err := d.Decode(); err != io.EOF {
		t.Errorf("expected io.EOF at stream end, got %v", err)
	}
}

// TestDecoderReusesMessages documents the release semantics: a message
// returned by Decode is overwritten by the next Decode of the same type.
func TestDecoderReusesMessages(t *testing.T) {
	stream := encodeAll(t,
		&Refresh{ID: 1, Key: 1, Kind: KindInitial, Value: 1, Lo: 0, Hi: 2, OriginalWidth: 2},
		&Refresh{ID: 2, Key: 2, Kind: KindValueInitiated, Value: 5, Lo: 4, Hi: 6, OriginalWidth: 2},
	)
	d := NewDecoder(bytes.NewReader(stream))
	first, err := d.Decode()
	if err != nil {
		t.Fatal(err)
	}
	r1 := first.(*Refresh)
	if r1.ID != 1 {
		t.Fatalf("first refresh %+v", r1)
	}
	second, err := d.Decode()
	if err != nil {
		t.Fatal(err)
	}
	r2 := second.(*Refresh)
	if r1 != r2 {
		t.Fatalf("expected the same reused box, got distinct %p %p", r1, r2)
	}
	if r1.ID != 2 || r1.Key != 2 {
		t.Errorf("reused box not overwritten: %+v", r1)
	}
}

// TestDecoderBatchArenaDistinctBoxes: sub-messages within one Batch must be
// distinct even when they share a type.
func TestDecoderBatchArenaDistinctBoxes(t *testing.T) {
	stream := encodeAll(t, &Batch{Msgs: []Message{
		&Read{ID: 1, Key: 10},
		&Read{ID: 2, Key: 20},
		&Read{ID: 3, Key: 30},
	}})
	d := NewDecoder(bytes.NewReader(stream))
	got, err := d.Decode()
	if err != nil {
		t.Fatal(err)
	}
	b := got.(*Batch)
	for i, want := range []int64{10, 20, 30} {
		r := b.Msgs[i].(*Read)
		if r.ID != uint64(i+1) || r.Key != want {
			t.Errorf("sub %d: %+v", i, r)
		}
	}
}

func TestDecoderRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"zero length":  {0, 0, 0, 0, byte(TPing)},
		"unknown type": {2, 0, 0, 0, 200, 1},
		"oversize":     {0xff, 0xff, 0xff, 0xff, byte(TPing)},
		"empty batch":  {3, 0, 0, 0, byte(TBatch), 0, 0},
	}
	for name, data := range cases {
		d := NewDecoder(bytes.NewReader(data))
		if _, err := d.Decode(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	// Nested batch through the arena path.
	inner := encodeAll(t, &Ping{ID: 1})
	_ = inner
	var buf bytes.Buffer
	if err := Write(&buf, &Batch{Msgs: []Message{&Batch{Msgs: []Message{&Ping{ID: 1}}}}}); err != nil {
		t.Fatal(err)
	}
	d := NewDecoder(&buf)
	if _, err := d.Decode(); err == nil || !strings.Contains(err.Error(), "nested") {
		t.Errorf("nested batch via Decoder: %v", err)
	}
}

// TestPooledMessageRoundTrip: Get*/Release cycles hand back usable boxes
// with their slice capacity intact.
func TestPooledMessageRoundTrip(t *testing.T) {
	rb := GetRefreshBatch()
	rb.ID = 9
	rb.Items = append(rb.Items, RefreshItem{Key: 1, Kind: KindInitial, Value: 1, Lo: 0, Hi: 2, OriginalWidth: 2})
	frame, err := AppendFrame(nil, rb)
	if err != nil {
		t.Fatal(err)
	}
	Release(rb)
	got, err := ReadMsg(bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	if g := got.(*RefreshBatch); g.ID != 9 || len(g.Items) != 1 || g.Items[0].Key != 1 {
		t.Errorf("round trip %+v", got)
	}

	b := GetBatch()
	r := GetRead()
	r.ID, r.Key = 3, 4
	b.Msgs = append(b.Msgs, r)
	frame, err = AppendFrame(nil, b)
	if err != nil {
		t.Fatal(err)
	}
	Release(b) // releases the inner Read too
	got, err = ReadMsg(bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	if g := got.(*Batch); len(g.Msgs) != 1 || g.Msgs[0].(*Read).Key != 4 {
		t.Errorf("round trip %+v", got)
	}
}
