package bench

import (
	"fmt"
	"math"

	"apcache/internal/core"
	"apcache/internal/plot"
	"apcache/internal/sim"
	"apcache/internal/workload"
)

// walkSimConfig is the Section 4.2 steady-state setting: one source whose
// value performs a random walk with step uniform on [0.5, 1.5], queried
// every Tq seconds with davg and sigma as given.
func walkSimConfig(theta, tq, davg, sigma float64, opt Options) sim.Config {
	cvr, cqr := thetaCosts(theta)
	duration := 200000.0
	if opt.Quick {
		duration = 20000
	}
	return sim.Config{
		NumSources:   1,
		Params:       core.Params{Cvr: cvr, Cqr: cqr, Alpha: 1, Lambda0: 0, Lambda1: math.Inf(1)},
		InitialWidth: 4,
		Updates:      sim.WalkUpdates(0.5, 1.5),
		Tq:           tq,
		QueryKinds:   []workload.AggKind{workload.Sum},
		KeysPerQuery: 1,
		Constraints:  workload.ConstraintDist{Avg: davg, Sigma: sigma},
		Duration:     duration,
		Warmup:       duration / 10,
		Seed:         opt.Seed + 11,
		RecordKey:    -1,
	}
}

func init() {
	register(&Experiment{
		ID:    "fig2",
		Title: "Figure 2: analytical cost rate and refresh probabilities vs interval width",
		Paper: "Omega is V-shaped with minimum W* exactly where Pvr and Pqr cross (K1=1, K2=1/200, theta=1)",
		Run:   runFig2,
	})
	register(&Experiment{
		ID:    "fig3",
		Title: "Figure 3: measured cost rate and refresh probabilities vs fixed interval width",
		Paper: "measured Pvr ~ 1/W^2, Pqr ~ W; minimum cost where they cross; adaptive run converges near W*",
		Run:   runFig3,
	})
	register(&Experiment{
		ID:    "conv",
		Title: "Section 4.2 in-text: adaptive convergence across (Tq, davg, theta)",
		Paper: "adaptive performance within ~5% of the best fixed width in all 8 scenarios",
		Run:   runConvergence,
	})
}

func runFig2(opt Options) (*Report, error) {
	m := core.Model{K1: 1, K2: 1.0 / 200, Cvr: 1, Cqr: 2}
	ws, pvr, pqr, omega := m.Curve(2, 20, 19)
	rep := &Report{ID: "fig2", Title: "Figure 2 (analytical)"}
	tb := plot.NewTable("W", "Pvr", "Pqr", "Omega")
	for i := range ws {
		tb.AddRow(plot.FormatG(ws[i]), plot.FormatG(pvr[i]), plot.FormatG(pqr[i]), plot.FormatG(omega[i]))
	}
	rep.Tables = append(rep.Tables, tb)
	ch := &plot.Chart{Title: "Fig 2: cost rate and refresh probabilities (theta=1)", XLabel: "interval width W", YLabel: "probability / cost rate"}
	ch.Add("Pvr", ws, pvr)
	ch.Add("Pqr", ws, pqr)
	ch.Add("Omega", ws, omega)
	rep.Charts = append(rep.Charts, ch)

	wopt := m.OptimalWidth()
	rep.Note("analytical W* = %.4g; crossover width = %.4g (identical by construction)", wopt, m.CrossoverWidth())
	rep.Note("Omega(W*) = %.4g", m.Omega(wopt))
	return rep, nil
}

func runFig3(opt Options) (*Report, error) {
	rep := &Report{ID: "fig3", Title: "Figure 3 (measured, random walk)"}
	tb := plot.NewTable("W", "Pvr", "Pqr", "Omega")
	var ws, pvrs, pqrs, omegas []float64
	bestW, bestCost := 0.0, math.Inf(1)
	for w := 1.0; w <= 10; w++ {
		cfg := walkSimConfig(1, 2, 20, 1, opt)
		cfg.Policy = sim.FixedWidthPolicy(w)
		res, err := sim.Run(cfg)
		if err != nil {
			return nil, err
		}
		ws = append(ws, w)
		pvrs = append(pvrs, res.Pvr)
		pqrs = append(pqrs, res.Pqr)
		omegas = append(omegas, res.CostRate)
		tb.AddRow(plot.FormatG(w), plot.FormatG(res.Pvr), plot.FormatG(res.Pqr), plot.FormatG(res.CostRate))
		if res.CostRate < bestCost {
			bestW, bestCost = w, res.CostRate
		}
	}
	rep.Tables = append(rep.Tables, tb)
	ch := &plot.Chart{Title: "Fig 3: measured rates vs fixed width (theta=1, Tq=2, davg=20)", XLabel: "interval width W", YLabel: "rate per second"}
	ch.Add("Pvr", ws, pvrs)
	ch.Add("Pqr", ws, pqrs)
	ch.Add("Omega", ws, omegas)
	rep.Charts = append(rep.Charts, ch)

	// Adaptive run on the same workload: small alpha for the steady-state
	// convergence claim, alpha=1 for the recommended dynamic setting.
	for _, alpha := range []float64{0.1, 1} {
		cfg := walkSimConfig(1, 2, 20, 1, opt)
		cfg.Params.Alpha = alpha
		res, err := sim.Run(cfg)
		if err != nil {
			return nil, err
		}
		gap := (res.CostRate - bestCost) / bestCost * 100
		rep.Note("adaptive alpha=%.2g: mean width %.3g (best fixed W=%g), cost %.4g = best fixed %+.1f%%",
			alpha, res.MeanWidth.Mean(), bestW, res.CostRate, gap)
	}
	rep.Note("paper: adaptive converged to W=3.11, within 1%% of optimal")
	return rep, nil
}

func runConvergence(opt Options) (*Report, error) {
	rep := &Report{ID: "conv", Title: "Section 4.2: convergence across scenarios"}
	tb := plot.NewTable("Tq", "davg", "theta", "best fixed W", "best fixed cost", "adaptive cost", "gap %")
	for _, tq := range []float64{1, 2} {
		for _, davg := range []float64{10, 20} {
			for _, theta := range []float64{1, 4} {
				bestW, bestCost := 0.0, math.Inf(1)
				for w := 0.5; w <= 12; w += 0.5 {
					cfg := walkSimConfig(theta, tq, davg, 1, opt)
					cfg.Policy = sim.FixedWidthPolicy(w)
					res, err := sim.Run(cfg)
					if err != nil {
						return nil, err
					}
					if res.CostRate < bestCost {
						bestW, bestCost = w, res.CostRate
					}
				}
				cfg := walkSimConfig(theta, tq, davg, 1, opt)
				cfg.Params.Alpha = 0.1
				res, err := sim.Run(cfg)
				if err != nil {
					return nil, err
				}
				gap := (res.CostRate - bestCost) / bestCost * 100
				tb.AddRow(plot.FormatG(tq), plot.FormatG(davg), plot.FormatG(theta),
					plot.FormatG(bestW), plot.FormatG(bestCost), plot.FormatG(res.CostRate),
					fmt.Sprintf("%+.1f", gap))
			}
		}
	}
	rep.Tables = append(rep.Tables, tb)
	rep.Note("paper: within 5%% of optimal in all scenarios (steady state)")
	return rep, nil
}
