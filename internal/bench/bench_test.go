package bench

import (
	"math"
	"strconv"
	"strings"
	"testing"
)

func quickOpts() Options { return Options{Quick: true, Seed: 42} }

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig2", "fig3", "conv", "fig45", "fig6", "fig789",
		"sigma", "maxq", "fig1011", "fig1213", "fig1415", "variants", "ablation",
		"storemix"}
	for _, id := range want {
		if _, ok := Get(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(All()), len(want))
	}
	ids := IDs()
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Errorf("IDs not sorted: %v", ids)
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, ok := Get("nope"); ok {
		t.Errorf("unknown id found")
	}
}

// parseCell converts a table cell back to a float.
func parseCell(t *testing.T, s string) float64 {
	t.Helper()
	if s == "inf" {
		return math.Inf(1)
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q is not numeric: %v", s, err)
	}
	return v
}

func TestFig2Shape(t *testing.T) {
	rep, err := runFig2(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	tb := rep.Tables[0]
	// Omega must be V-shaped: decreasing then increasing.
	var omegas []float64
	for _, row := range tb.Rows {
		omegas = append(omegas, parseCell(t, row[3]))
	}
	minIdx := 0
	for i, v := range omegas {
		if v < omegas[minIdx] {
			minIdx = i
		}
	}
	if minIdx == 0 || minIdx == len(omegas)-1 {
		t.Errorf("Omega minimum at boundary (idx %d), not V-shaped", minIdx)
	}
	for i := 1; i <= minIdx; i++ {
		if omegas[i] > omegas[i-1]+1e-9 {
			t.Errorf("Omega not decreasing before minimum at row %d", i)
		}
	}
	for i := minIdx + 1; i < len(omegas); i++ {
		if omegas[i] < omegas[i-1]-1e-9 {
			t.Errorf("Omega not increasing after minimum at row %d", i)
		}
	}
}

func TestFig3Shape(t *testing.T) {
	rep, err := runFig3(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	tb := rep.Tables[0]
	first, last := tb.Rows[0], tb.Rows[len(tb.Rows)-1]
	// Pvr falls and Pqr rises across the width sweep.
	if parseCell(t, first[1]) <= parseCell(t, last[1]) {
		t.Errorf("Pvr did not fall with width: %s -> %s", first[1], last[1])
	}
	if parseCell(t, first[2]) >= parseCell(t, last[2]) {
		t.Errorf("Pqr did not rise with width: %s -> %s", first[2], last[2])
	}
	// Interior minimum for Omega.
	minIdx, minV := 0, math.Inf(1)
	for i, row := range tb.Rows {
		if v := parseCell(t, row[3]); v < minV {
			minIdx, minV = i, v
		}
	}
	if minIdx == 0 || minIdx == len(tb.Rows)-1 {
		t.Errorf("measured Omega minimum at boundary (W=%s)", tb.Rows[minIdx][0])
	}
	if len(rep.Notes) < 2 {
		t.Errorf("missing adaptive notes")
	}
}

func TestConvergenceShape(t *testing.T) {
	rep, err := runConvergence(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	tb := rep.Tables[0]
	if len(tb.Rows) != 8 {
		t.Fatalf("got %d scenarios, want 8", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		gap, err := strconv.ParseFloat(strings.TrimPrefix(row[6], "+"), 64)
		if err != nil {
			t.Fatalf("gap cell %q: %v", row[6], err)
		}
		// Quick runs are noisy; the steady-state gap must still be small.
		if gap > 25 {
			t.Errorf("scenario %v: adaptive %s%% worse than best fixed", row[:3], row[6])
		}
	}
}

func TestFig45Produces(t *testing.T) {
	rep, err := runFig45(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Charts) != 2 {
		t.Fatalf("got %d charts, want 2", len(rep.Charts))
	}
	if len(rep.Notes) != 2 {
		t.Fatalf("got %d notes, want 2", len(rep.Notes))
	}
	// Mean width under davg=500K must exceed mean width under davg=50K
	// (Figures 4 vs 5: wide intervals for loose constraints).
	var widths []float64
	for _, note := range rep.Notes {
		i := strings.LastIndex(note, "width ")
		rest := note[i+len("width "):]
		rest = strings.Fields(rest)[0]
		v, err := strconv.ParseFloat(rest, 64)
		if err != nil {
			t.Fatalf("parsing note %q: %v", note, err)
		}
		widths = append(widths, v)
	}
	if widths[1] <= widths[0] {
		t.Errorf("davg=500K width %g <= davg=50K width %g", widths[1], widths[0])
	}
}

func TestFig789Shape(t *testing.T) {
	rep, err := runFig789(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	tb := rep.Tables[0]
	// Column 1 is lambda1=lambda0: flat in davg (same cost every row).
	base := parseCell(t, tb.Rows[0][1])
	for _, row := range tb.Rows[1:] {
		v := parseCell(t, row[1])
		if math.Abs(v-base)/math.Max(base, 1e-9) > 0.15 {
			t.Errorf("lambda1=lambda0 not flat: %g vs %g", v, base)
		}
	}
	// At the largest davg, lambda1=inf must beat lambda1=lambda0.
	last := tb.Rows[len(tb.Rows)-1]
	if parseCell(t, last[3]) >= parseCell(t, last[1]) {
		t.Errorf("lambda1=inf (%s) not cheaper than lambda1=lambda0 (%s) at large davg", last[3], last[1])
	}
}

func TestSigmaSmall(t *testing.T) {
	rep, err := runSigma(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Tables[0].Rows {
		diff := math.Abs(parseCell(t, row[3]))
		if diff > 50 {
			t.Errorf("sigma sensitivity %g%% at davg=%s implausibly large", diff, row[0])
		}
	}
}

func TestMaxQShape(t *testing.T) {
	rep, err := runMaxQ(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// At davg=0 lambda1=inf must be at least as good as lambda1=lambda0
	// for MAX queries (candidate elimination).
	row0 := rep.Tables[0].Rows[0]
	l0 := parseCell(t, row0[1])
	inf := parseCell(t, row0[2])
	if inf > l0*1.1 {
		t.Errorf("MAX davg=0: lambda1=inf %g much worse than lambda1=lambda0 %g", inf, l0)
	}
}

func TestFig1011Shape(t *testing.T) {
	rep, err := runExactComparison(quickOpts(), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 2 {
		t.Fatalf("got %d tables, want 2 (theta=1, theta=4)", len(rep.Tables))
	}
	for ti, tb := range rep.Tables {
		for _, row := range tb.Rows {
			exactCost := parseCell(t, row[1])
			oursL0 := parseCell(t, row[2])
			ours500 := parseCell(t, row[5])
			// Claim 1: lambda1=lambda0 tracks exact caching. The paper
			// reports a near-precise match; our reconstruction keeps a
			// boundary-probing overhead of up to ~35% on busy sources
			// (each cache/don't-cache cycle pays one extra VIR at
			// theta=1), so assert tracking within 50%.
			if math.Abs(oursL0-exactCost)/math.Max(exactCost, 1e-9) > 0.5 {
				t.Errorf("table %d Tq=%s: ours l1=l0 %g vs exact %g diverge", ti, row[0], oursL0, exactCost)
			}
			// Claim 2: at davg=500K, lambda1=inf beats exact caching. At
			// slow query rates (Tq=5) every policy converges toward the
			// cheap don't-cache floor, so the strict win is asserted only
			// for Tq <= 2 (where the paper's separation is large) and
			// near-parity elsewhere.
			if tq := parseCell(t, row[0]); tq <= 2 {
				if ours500 >= exactCost {
					t.Errorf("table %d Tq=%s: ours inf davg=500K %g not cheaper than exact %g", ti, row[0], ours500, exactCost)
				}
			} else if ours500 > exactCost*1.15 {
				t.Errorf("table %d Tq=%s: ours inf davg=500K %g above exact %g at slow rate", ti, row[0], ours500, exactCost)
			}
		}
	}
}

func TestFig1213Runs(t *testing.T) {
	rep, err := runExactComparison(quickOpts(), true)
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range rep.Tables {
		if len(tb.Headers) != 3 {
			t.Errorf("small-cache table has %d columns, want 3", len(tb.Headers))
		}
		for _, row := range tb.Rows {
			if parseCell(t, row[1]) <= 0 || parseCell(t, row[2]) <= 0 {
				t.Errorf("non-positive cost in row %v", row)
			}
		}
	}
}

func TestFig1415Shape(t *testing.T) {
	rep, err := runDivergenceComparison(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 2 {
		t.Fatalf("got %d tables, want 2 (Tq=1, Tq=5)", len(rep.Tables))
	}
	for ti, tb := range rep.Tables {
		rows := tb.Rows
		// Both algorithms get cheaper as davg grows.
		if parseCell(t, rows[len(rows)-1][1]) >= parseCell(t, rows[0][1]) {
			t.Errorf("table %d: ours does not improve with davg", ti)
		}
		if parseCell(t, rows[len(rows)-1][2]) >= parseCell(t, rows[0][2]) {
			t.Errorf("table %d: divergence does not improve with davg", ti)
		}
	}
	// Competitiveness claim, restricted to davg > 0: at davg = 0 our
	// reconstruction's Divergence baseline locks the g=0 exact-copy policy
	// while the paper's algorithm probes by design (see EXPERIMENTS.md).
	// For davg > 0 every point must be within 35% and ours must win or tie
	// somewhere (the paper reports a modest improvement; our DC
	// reconstruction recomputes from ground-truth windows, which narrows
	// the gap).
	oursWins := false
	for ti, tb := range rep.Tables {
		for _, row := range tb.Rows[1:] {
			ours := parseCell(t, row[1])
			dc := parseCell(t, row[2])
			if ours > dc*1.35 {
				t.Errorf("table %d davg=%s: ours %g much worse than divergence %g", ti, row[0], ours, dc)
			}
			if ours <= dc*1.05 {
				oursWins = true
			}
		}
	}
	if !oursWins {
		t.Errorf("ours never competitive at any davg > 0")
	}
}

func TestVariantsRun(t *testing.T) {
	rep, err := runVariants(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 2 {
		t.Fatalf("got %d tables, want 2 (unbiased, biased)", len(rep.Tables))
	}
	for _, tb := range rep.Tables {
		if len(tb.Rows) != 3 {
			t.Errorf("variant table has %d rows, want 3", len(tb.Rows))
		}
	}
}

func TestThetaCosts(t *testing.T) {
	cvr, cqr := thetaCosts(4)
	if cvr != 4 || cqr != 2 {
		t.Errorf("thetaCosts(4) = %g, %g", cvr, cqr)
	}
	// Verify the mapping: theta = 2*Cvr/Cqr.
	if got := 2 * cvr / cqr; got != 4 {
		t.Errorf("round trip theta = %g", got)
	}
}

func TestNetmonTraceMemoized(t *testing.T) {
	a, err := netmonTrace(4, 300, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := netmonTrace(4, 300, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("trace not memoized")
	}
	if a.Hosts() != 4 {
		t.Errorf("TopN not applied: %d hosts", a.Hosts())
	}
}

func TestAblationShape(t *testing.T) {
	rep, err := runAblation(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	tb := rep.Tables[0]
	if len(tb.Rows) != 5 {
		t.Fatalf("got %d rows, want 5", len(tb.Rows))
	}
	full := parseCell(t, tb.Rows[0][1])
	ungated := parseCell(t, tb.Rows[1][1])
	misTheta := parseCell(t, tb.Rows[4][1])
	// The two analysis-backed choices must matter: ablating either the
	// probability gates or the theta calibration costs at least 10%.
	if ungated < full*1.10 {
		t.Errorf("ungated %g not clearly worse than full %g", ungated, full)
	}
	if misTheta < full*1.10 {
		t.Errorf("mis-set theta %g not clearly worse than full %g", misTheta, full)
	}
}

func TestStoreMixExperimentRuns(t *testing.T) {
	e, ok := Get("storemix")
	if !ok {
		t.Fatal("storemix not registered")
	}
	rep, err := e.Run(quickOpts())
	if err != nil {
		t.Fatalf("storemix: %v", err)
	}
	if len(rep.Tables) == 0 {
		t.Fatal("storemix produced no tables")
	}
	// 3 mixes x 2 shard counts x 2 read paths.
	if got := len(rep.Tables[0].Rows); got != 12 {
		t.Errorf("storemix table has %d rows, want 12", got)
	}
}

func TestOpMixDistribution(t *testing.T) {
	for _, mix := range StoreMixes {
		if mix.SetPct+mix.GetPct+mix.ReadPct != 100 {
			t.Errorf("%s: percentages sum to %d, want 100",
				mix.Name, mix.SetPct+mix.GetPct+mix.ReadPct)
		}
	}
}
