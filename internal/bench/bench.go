// Package bench implements the experiment harness that regenerates every
// table and figure of the paper's performance study (Section 4). Each
// experiment is a named runner producing tables and charts whose rows and
// series mirror the paper's; cmd/apcache-sim executes them by id and
// bench_test.go exposes each as a testing.B benchmark.
//
// Absolute numbers differ from the paper (the network-monitoring substrate
// is synthetic; see internal/trace), but the shapes the paper reports —
// which policy wins, roughly by what factor, and where crossovers fall — are
// preserved and asserted by the shape tests in this package.
package bench

import (
	"fmt"
	"sort"
	"sync"

	"apcache/internal/plot"
	"apcache/internal/trace"
)

// Options tunes experiment execution.
type Options struct {
	// Quick shrinks run durations and sweep densities for CI and unit
	// tests; shapes remain, precision drops.
	Quick bool
	// Seed drives all randomness; runs are deterministic given (Quick,
	// Seed).
	Seed int64
}

// Report is one experiment's output.
type Report struct {
	ID    string
	Title string
	// Tables hold the rows the paper's figures plot.
	Tables []*plot.Table
	// Charts are ASCII renderings of the same data.
	Charts []*plot.Chart
	// Notes record paper-vs-measured observations.
	Notes []string
}

// Note appends a formatted note.
func (r *Report) Note(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Experiment is one registered figure/table reproduction.
type Experiment struct {
	// ID is the registry key (e.g. "fig3").
	ID string
	// Title describes the artifact reproduced.
	Title string
	// Paper summarizes what the paper's version shows.
	Paper string
	// Run executes the experiment.
	Run func(Options) (*Report, error)
}

var registry = map[string]*Experiment{}
var registryOrder []string

func register(e *Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("bench: duplicate experiment id " + e.ID)
	}
	registry[e.ID] = e
	registryOrder = append(registryOrder, e.ID)
}

// Get returns the experiment with the given id.
func Get(id string) (*Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All returns every experiment in registration order.
func All() []*Experiment {
	out := make([]*Experiment, 0, len(registryOrder))
	for _, id := range registryOrder {
		out = append(out, registry[id])
	}
	return out
}

// IDs returns the sorted experiment ids.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// traceCache memoizes generated network-monitoring traces per (hosts,
// duration, seed) so multi-series experiments reuse the same data, matching
// the paper's single recorded data set.
var (
	traceMu    sync.Mutex
	traceCache = map[string]*trace.Trace{}
)

// netmonTrace returns the deterministic synthetic network-monitoring trace.
func netmonTrace(hosts, duration int, seed int64) (*trace.Trace, error) {
	key := fmt.Sprintf("%d/%d/%d", hosts, duration, seed)
	traceMu.Lock()
	defer traceMu.Unlock()
	if tr, ok := traceCache[key]; ok {
		return tr, nil
	}
	cfg := trace.Config{Hosts: hosts * 2, Duration: duration, Window: 60, MaxRate: trace.DefaultMaxRate, Seed: seed}
	tr, err := trace.Generate(cfg)
	if err != nil {
		return nil, err
	}
	top := tr.TopN(hosts)
	traceCache[key] = top
	return top, nil
}

// thetaCosts maps a cost factor theta = 2*Cvr/Cqr onto the (Cvr, Cqr) pair
// the study uses: Cqr = 2 (request + response), Cvr = theta (Section 4.3:
// theta = 1 for plain update propagation, theta = 4 for two-phase locking).
func thetaCosts(theta float64) (cvr, cqr float64) { return theta, 2 }
