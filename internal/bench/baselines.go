package bench

import (
	"math"
	"math/rand"

	"apcache/internal/core"
	"apcache/internal/divergence"
	"apcache/internal/exact"
	"apcache/internal/plot"
	"apcache/internal/sim"
	"apcache/internal/workload"
)

func init() {
	register(&Experiment{
		ID:    "fig1011",
		Title: "Figures 10-11: vs adaptive exact caching (WJH97), full cache (kappa=n)",
		Paper: "ours with lambda1=lambda0 matches exact caching; lambda1=inf wins big once davg > 0",
		Run:   func(o Options) (*Report, error) { return runExactComparison(o, false) },
	})
	register(&Experiment{
		ID:    "fig1213",
		Title: "Figures 12-13: vs adaptive exact caching (WJH97), small cache (kappa<n)",
		Paper: "with limited cache the lambda1=lambda0 curve still matches exact caching",
		Run:   func(o Options) (*Report, error) { return runExactComparison(o, true) },
	})
	register(&Experiment{
		ID:    "fig1415",
		Title: "Figures 14-15: vs Divergence Caching (HSW94), stale-count approximations",
		Paper: "ours (theta'=Cvr/Cqr) modestly outperforms Divergence Caching across davg; both drop as davg grows",
		Run:   runDivergenceComparison,
	})
	register(&Experiment{
		ID:    "variants",
		Title: "Section 4.5: unsuccessful variants (uncentered, time-varying, history window)",
		Paper: "centered constant intervals win on unbiased data; uncentered/linear-growth help slightly on biased walks",
		Run:   runVariants,
	})
}

// runExactComparison regenerates Figures 10-13: cost rate vs query period
// for (a) WJH97 exact caching with its best x, (b) ours with
// lambda1=lambda0 (the exact-caching special case), and for the full-cache
// figures (c) ours with lambda1=inf at davg in {0, 100K, 500K}.
func runExactComparison(opt Options, smallCache bool) (*Report, error) {
	id := "fig1011"
	if smallCache {
		id = "fig1213"
	}
	rep := &Report{ID: id, Title: "Comparison against exact caching"}
	hosts, duration, keys := 50, 7200, 10
	if opt.Quick {
		hosts, duration, keys = 16, 1800, 5
	}
	kappa := 0 // full
	if smallCache {
		kappa = hosts * 2 / 5 // paper: 20 of 50
	}
	tr, err := netmonTrace(hosts, duration, opt.Seed+101)
	if err != nil {
		return nil, err
	}
	tqs := []float64{0.5, 1, 2, 5}
	if opt.Quick {
		tqs = []float64{1, 5}
	}
	xSweep := exact.DefaultXSweep()
	if opt.Quick {
		xSweep = []int{9, 27}
	}

	for _, theta := range []float64{1, 4} {
		cvr, cqr := thetaCosts(theta)
		headers := []string{"Tq", "exact caching (best x)", "ours lambda1=lambda0"}
		if !smallCache {
			headers = append(headers, "ours inf davg=0", "ours inf davg=100K", "ours inf davg=500K")
		}
		tb := plot.NewTable(headers...)
		ch := &plot.Chart{
			Title:  "theta=" + plot.FormatG(theta) + " kappa=" + plot.FormatG(float64(kappaOr(kappa, hosts))) + ": cost vs Tq",
			XLabel: "query period Tq", YLabel: "cost rate",
		}
		nSeries := 2
		if !smallCache {
			nSeries = 5
		}
		curves := make([][]float64, nSeries)
		for _, tq := range tqs {
			row := []string{plot.FormatG(tq)}
			// (a) WJH97 with best x.
			ecfg := exact.Config{
				NumSources: hosts, CacheSize: kappa,
				Cvr: cvr, Cqr: cqr, X: 9,
				Updates: func(key int, rng *rand.Rand) workload.UpdateSource {
					return workload.NewPlayback(tr.Series[key])
				},
				Tq: tq, KeysPerQuery: keys,
				Duration: float64(duration), Warmup: float64(duration) / 10,
				Seed: opt.Seed + 7,
			}
			ex, _, err := exact.BestX(ecfg, xSweep)
			if err != nil {
				return nil, err
			}
			row = append(row, plot.FormatG(ex.CostRate))
			curves[0] = append(curves[0], ex.CostRate)

			// (b) ours in the exact-caching special case.
			p := netmonParams{
				theta: theta, tq: tq, alpha: 1,
				lambda0: 1 * kilo, lambda1: 1 * kilo,
				kappa:       kappa,
				constraints: workload.ConstraintDist{Avg: 100 * kilo, Sigma: 0.5},
			}
			cfg, err := netmonSimConfig(p, opt)
			if err != nil {
				return nil, err
			}
			res, err := sim.Run(cfg)
			if err != nil {
				return nil, err
			}
			row = append(row, plot.FormatG(res.CostRate))
			curves[1] = append(curves[1], res.CostRate)

			// (c) ours with lambda1=inf at three davg values (full cache
			// figures only).
			if !smallCache {
				for i, davg := range []float64{0, 100 * kilo, 500 * kilo} {
					p := netmonParams{
						theta: theta, tq: tq, alpha: 1,
						lambda0: 1 * kilo, lambda1: math.Inf(1),
						kappa:       kappa,
						constraints: workload.ConstraintDist{Avg: davg, Sigma: 0.5},
					}
					cfg, err := netmonSimConfig(p, opt)
					if err != nil {
						return nil, err
					}
					res, err := sim.Run(cfg)
					if err != nil {
						return nil, err
					}
					row = append(row, plot.FormatG(res.CostRate))
					curves[2+i] = append(curves[2+i], res.CostRate)
				}
			}
			tb.AddRow(row...)
		}
		names := []string{"exact caching", "ours l1=l0", "ours inf davg=0", "ours inf davg=100K", "ours inf davg=500K"}
		for i := 0; i < nSeries; i++ {
			ch.Add(names[i], tqs, curves[i])
		}
		rep.Tables = append(rep.Tables, tb)
		rep.Charts = append(rep.Charts, ch)
	}
	if smallCache {
		rep.Note("paper (Figs 12-13): with kappa<n the lambda1=lambda0 curve still tracks exact caching")
	} else {
		rep.Note("paper (Figs 10-11): lambda1=lambda0 almost precisely matches exact caching; lambda1=inf is far cheaper at davg=100K/500K")
	}
	return rep, nil
}

func kappaOr(kappa, n int) int {
	if kappa == 0 {
		return n
	}
	return kappa
}

// regimeGate implements the comparison's update process: updates arrive
// every second during "fast" phases and every fifth second during "slow"
// phases, alternating every 600 seconds with a per-key phase offset. The
// regime switching is what separates incremental adaptation (ours) from
// window-projection resets (HSW94): the projections lag each switch.
func regimeGate(now float64, key int) bool {
	phase := int(now+float64(key)*137) / 600
	if phase%2 == 0 {
		return true // fast: one update per second
	}
	return int(now)%5 == 0 // slow: one update per five seconds
}

// gatedCounter is the matching update source for the main simulator: a
// cumulative update counter that increments when the gate opens.
type gatedCounter struct {
	key int
	t   float64
	v   float64
}

func (g *gatedCounter) Value() float64 { return g.v }

func (g *gatedCounter) Step() float64 {
	g.t++
	if regimeGate(g.t, g.key) {
		g.v++
	}
	return g.v
}

// runDivergenceComparison regenerates Figures 14-15: our algorithm in
// stale-count mode vs the HSW94 Divergence Caching reconstruction, sweeping
// the average staleness constraint for Tq in {1, 5}.
func runDivergenceComparison(opt Options) (*Report, error) {
	rep := &Report{ID: "fig1415", Title: "Comparison against Divergence Caching"}
	duration := 60000.0
	if opt.Quick {
		duration = 10000
	}
	// HSW94 reasons per object; one source with comparable read and write
	// rates exposes the whole caching-policy spectrum (g=0 exact copies
	// through g=inf uncached).
	nSources := 1
	davgs := []float64{0, 2, 4, 6, 8, 10, 12, 14}
	if opt.Quick {
		davgs = []float64{0, 4, 8, 14}
	}
	for _, tq := range []float64{1, 5} {
		tb := plot.NewTable("davg", "ours (stale mode)", "Divergence Caching")
		ch := &plot.Chart{Title: "Tq=" + plot.FormatG(tq) + ": cost vs davg (stale-count)", XLabel: "davg", YLabel: "cost rate"}
		var ours, dc []float64
		for _, davg := range davgs {
			constraints := workload.ConstraintDist{Avg: davg, Sigma: 1}

			// Ours: stale-count mode through the main simulator. The
			// "value" is the cumulative update count (one update per
			// second); intervals are one-sided [v, v+W].
			lambda1 := math.Inf(1)
			if davg == 0 {
				lambda1 = 1 // paper: lambda1 = lambda0 when davg = 0
			}
			params := core.Params{
				Cvr: 1, Cqr: 2, Alpha: 1,
				Lambda0: 1, Lambda1: lambda1,
				Mode: core.ModeStaleCount,
			}
			cfg := sim.Config{
				NumSources: nSources,
				Params:     params,
				Policy: func(key int, rng *rand.Rand) core.WidthPolicy {
					return divergence.NewStalePolicy(core.NewController(params, 4, rng))
				},
				Updates: func(key int, rng *rand.Rand) workload.UpdateSource {
					// Monotonic update counter driven by the shared
					// regime-switching gate.
					return &gatedCounter{key: key}
				},
				Tq:           tq,
				QueryKinds:   []workload.AggKind{workload.Sum},
				KeysPerQuery: 1,
				Constraints:  constraints,
				Duration:     duration,
				Warmup:       duration / 10,
				Seed:         opt.Seed + 13,
				RecordKey:    -1,
			}
			res, err := sim.Run(cfg)
			if err != nil {
				return nil, err
			}

			dcfg := divergence.Config{
				NumSources: nSources,
				Cvr:        1, Cqr: 2,
				K: 23, GMax: 200,
				Tq:          tq,
				Constraints: constraints,
				UpdateGate:  regimeGate,
				Duration:    duration,
				Warmup:      duration / 10,
				Seed:        opt.Seed + 13,
			}
			dres, err := divergence.Run(dcfg)
			if err != nil {
				return nil, err
			}
			ours = append(ours, res.CostRate)
			dc = append(dc, dres.CostRate)
			tb.AddRow(plot.FormatG(davg), plot.FormatG(res.CostRate), plot.FormatG(dres.CostRate))
		}
		ch.Add("ours", davgs, ours)
		ch.Add("divergence", davgs, dc)
		rep.Tables = append(rep.Tables, tb)
		rep.Charts = append(rep.Charts, ch)
	}
	rep.Note("paper: our algorithm shows a modest improvement over Divergence Caching (Cvr=1, Cqr=2, theta'=0.5, k=23)")
	return rep, nil
}

// runVariants regenerates the Section 4.5 findings: compare the main
// centered algorithm against the uncentered, time-varying, and
// history-window variants on unbiased and biased random walks.
func runVariants(opt Options) (*Report, error) {
	rep := &Report{ID: "variants", Title: "Section 4.5 variants"}
	duration := 100000.0
	if opt.Quick {
		duration = 15000
	}
	type variant struct {
		name   string
		policy sim.PolicyFactory
	}
	params := core.Params{Cvr: 1, Cqr: 2, Alpha: 1, Lambda0: 0, Lambda1: math.Inf(1)}
	mkVariants := func() []variant {
		return []variant{
			{"centered (main)", nil},
			{"uncentered", func(key int, rng *rand.Rand) core.WidthPolicy {
				return core.NewUncenteredController(params, 4, rng)
			}},
			{"history r=3", func(key int, rng *rand.Rand) core.WidthPolicy {
				return core.NewHistoryController(params, 4, 3)
			}},
		}
	}
	for _, walk := range []struct {
		name   string
		upProb float64
	}{
		{"unbiased walk", 0.5},
		{"biased walk (p_up=0.9)", 0.9},
	} {
		tb := plot.NewTable("variant", "cost rate", "vs main %")
		var mainCost float64
		for i, v := range mkVariants() {
			cfg := sim.Config{
				NumSources:   1,
				Params:       params,
				InitialWidth: 4,
				Policy:       v.policy,
				Updates: func(key int, rng *rand.Rand) workload.UpdateSource {
					return workload.NewBiasedWalk(0, 0.5, 1.5, walk.upProb, rng)
				},
				Tq:           2,
				QueryKinds:   []workload.AggKind{workload.Sum},
				KeysPerQuery: 1,
				Constraints:  workload.ConstraintDist{Avg: 20, Sigma: 1},
				Duration:     duration,
				Warmup:       duration / 10,
				Seed:         opt.Seed + 17,
				RecordKey:    -1,
			}
			res, err := sim.Run(cfg)
			if err != nil {
				return nil, err
			}
			if i == 0 {
				mainCost = res.CostRate
				tb.AddRow(v.name+" ["+walk.name+"]", plot.FormatG(res.CostRate), "-")
				continue
			}
			rel := (res.CostRate - mainCost) / mainCost * 100
			tb.AddRow(v.name+" ["+walk.name+"]", plot.FormatG(res.CostRate), plot.FormatG(rel))
		}
		rep.Tables = append(rep.Tables, tb)
	}
	rep.Note("paper: on unbiased data the centered constant-interval algorithm wins; on biased walks uncentered/time-varying intervals help slightly")
	return rep, nil
}
