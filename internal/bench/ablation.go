package bench

import (
	"math"
	"math/rand"

	"apcache/internal/core"
	"apcache/internal/interval"
	"apcache/internal/plot"
	"apcache/internal/sim"
	"apcache/internal/workload"
)

// This file implements ablations of the algorithm's three load-bearing
// design choices, beyond what the paper itself evaluates:
//
//  1. probabilistic gating — the min(theta,1)/min(1/theta,1) adjustment
//     probabilities that encode the cost ratio; ablated by adjusting on
//     every refresh regardless of theta;
//  2. original-width retention — the source keeps the pre-threshold width;
//     ablated by storing the thresholded width instead (with a cap so the
//     state stays finite);
//  3. cost-factor calibration — theta derived from the true Cvr/Cqr;
//     ablated by running a theta=1 controller in a theta=4 cost
//     environment.

func init() {
	register(&Experiment{
		ID:    "ablation",
		Title: "Ablation: gating, width retention, and theta calibration",
		Paper: "not in the paper; isolates the design choices Section 2 builds in",
		Run:   runAblation,
	})
}

// ungatedController adjusts on every refresh, ignoring the probability
// gates. At theta != 1 this balances the refresh *rates* instead of the
// cost-weighted rates, landing at the wrong width.
type ungatedController struct {
	params core.Params
	width  float64
}

func (u *ungatedController) Width() float64 { return u.width }
func (u *ungatedController) EffectiveWidth() float64 {
	return core.EffectiveWidth(u.params, u.width)
}
func (u *ungatedController) OnRefresh(kind core.RefreshKind) float64 {
	if kind == core.ValueInitiated {
		if u.width == 0 {
			u.width = math.Max(u.params.Lambda0, 1)
		} else {
			u.width *= 1 + u.params.Alpha
		}
	} else {
		u.width /= 1 + u.params.Alpha
	}
	return u.EffectiveWidth()
}
func (u *ungatedController) NewInterval(v float64) interval.Interval {
	return interval.Centered(v, u.EffectiveWidth())
}
func (u *ungatedController) RefreshInterval(kind core.RefreshKind, v float64) interval.Interval {
	u.OnRefresh(kind)
	return u.NewInterval(v)
}

var _ core.WidthPolicy = (*ungatedController)(nil)

// unretainedController stores the *effective* width instead of the original
// one. Once the width crosses a threshold the multiplicative update loses
// its footing: zero widths need reseeding and infinite widths are clamped to
// 2*lambda1 to keep the state finite — exactly the pathologies the paper's
// retention rule avoids.
type unretainedController struct {
	inner *core.Controller
}

func (u *unretainedController) Width() float64          { return u.inner.Width() }
func (u *unretainedController) EffectiveWidth() float64 { return u.inner.EffectiveWidth() }
func (u *unretainedController) OnRefresh(kind core.RefreshKind) float64 {
	out := u.inner.OnRefresh(kind)
	eff := u.inner.EffectiveWidth()
	switch {
	case eff == 0:
		u.inner.SetWidth(0)
	case math.IsInf(eff, 1):
		u.inner.SetWidth(2 * u.inner.Params().Lambda1)
	default:
		u.inner.SetWidth(eff)
	}
	return out
}
func (u *unretainedController) NewInterval(v float64) interval.Interval {
	return u.inner.NewInterval(v)
}
func (u *unretainedController) RefreshInterval(kind core.RefreshKind, v float64) interval.Interval {
	u.OnRefresh(kind)
	return u.NewInterval(v)
}

var _ core.WidthPolicy = (*unretainedController)(nil)

func runAblation(opt Options) (*Report, error) {
	rep := &Report{ID: "ablation", Title: "Design-choice ablations"}
	hosts, duration, keys := 50, 7200, 10
	if opt.Quick {
		hosts, duration, keys = 16, 1800, 5
	}
	tr, err := netmonTrace(hosts, duration, opt.Seed+101)
	if err != nil {
		return nil, err
	}
	// Environment: theta=4 costs (where gating matters), moderate
	// constraints, finite lambda1 (where retention matters).
	costs := core.Params{
		Cvr: 4, Cqr: 2, Alpha: 1,
		Lambda0: 1 * kilo, Lambda1: math.Inf(1),
	}
	base := func() sim.Config {
		return sim.Config{
			NumSources:   hosts,
			Params:       costs,
			InitialWidth: 10000,
			Updates:      sim.PlaybackUpdates(tr.Series),
			Tq:           1,
			QueryKinds:   []workload.AggKind{workload.Sum},
			KeysPerQuery: keys,
			Constraints:  workload.ConstraintDist{Avg: 100 * kilo, Sigma: 0.5},
			Duration:     float64(duration),
			Warmup:       float64(duration) / 10,
			Seed:         opt.Seed + 23,
			RecordKey:    -1,
		}
	}

	type variant struct {
		name   string
		mutate func(*sim.Config)
	}
	variants := []variant{
		{"full algorithm (gated, retained, theta=4)", func(*sim.Config) {}},
		{"no probability gating", func(c *sim.Config) {
			c.Policy = func(key int, rng *rand.Rand) core.WidthPolicy {
				return &ungatedController{params: costs, width: 10000}
			}
		}},
		{"no original-width retention (lambda1=200K)", func(c *sim.Config) {
			p := costs
			p.Lambda1 = 200 * kilo
			c.Policy = func(key int, rng *rand.Rand) core.WidthPolicy {
				return &unretainedController{inner: core.NewController(p, 10000, rng)}
			}
		}},
		{"retained baseline at lambda1=200K", func(c *sim.Config) {
			p := costs
			p.Lambda1 = 200 * kilo
			c.Params = p
		}},
		{"mis-set theta (controller thinks theta=1)", func(c *sim.Config) {
			p := costs
			p.Cvr, p.Cqr = 1, 2 // theta = 1 in the controller's eyes
			c.Policy = func(key int, rng *rand.Rand) core.WidthPolicy {
				return core.NewController(p, 10000, rng)
			}
		}},
	}
	tb := plot.NewTable("configuration", "cost rate", "vs full %")
	var full float64
	for i, v := range variants {
		cfg := base()
		v.mutate(&cfg)
		res, err := sim.Run(cfg)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			full = res.CostRate
			tb.AddRow(v.name, plot.FormatG(res.CostRate), "-")
			continue
		}
		rel := (res.CostRate - full) / full * 100
		tb.AddRow(v.name, plot.FormatG(res.CostRate), plot.FormatG(rel))
	}
	rep.Tables = append(rep.Tables, tb)
	rep.Note("positive percentages = the ablated variant costs more; gating and theta calibration dominate (+40%% to +60%% depending on scale)")
	rep.Note("the retention ablation needs its cap at 2*lambda1 to stay live at all — without it a width that crosses lambda1 is stored as infinity and never recovers; with the cap it is a defensible alternative design that performs on par with the paper's rule")
	return rep, nil
}
