package bench

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"apcache/internal/cache"
	"apcache/internal/core"
	"apcache/internal/plot"
	"apcache/internal/shard"
	"apcache/internal/source"
	"apcache/internal/workload"
)

// OpMix describes one concurrent-store workload mix for the contention
// ablations: the percentages of Set (value updates), Get (lock-free
// approximate reads), and ReadExact (query-initiated refreshes) out of 100,
// plus an optional zipf skew on key selection. The historical benchmark mix
// is Mixed; ReadHeavy is the regime the paper's cache targets (most reads
// answered from the cached interval), and ZipfReadHeavy adds the hot-key
// skew that the shared admission budget exists for.
type OpMix struct {
	Name                    string
	SetPct, GetPct, ReadPct int
	// ZipfS, when positive, draws keys zipf-skewed with this exponent
	// instead of uniformly.
	ZipfS float64
}

// The store mixes exercised by the "storemix" experiment and by the root
// package's BenchmarkStoreReadHeavy/BenchmarkStoreReadSkewed.
var (
	Mixed         = OpMix{Name: "mixed-70/25/5", SetPct: 70, GetPct: 25, ReadPct: 5}
	ReadHeavy     = OpMix{Name: "read-heavy-90/10", SetPct: 10, GetPct: 90}
	ZipfReadHeavy = OpMix{Name: "zipf-read-heavy-90/10", SetPct: 10, GetPct: 90, ZipfS: 1.1}
)

// StoreMixes lists every mix the ablation sweeps.
var StoreMixes = []OpMix{Mixed, ReadHeavy, ZipfReadHeavy}

// Op draws the next operation of the mix: 0 = Set, 1 = Get, 2 = ReadExact.
func (m OpMix) Op(rng *rand.Rand) int {
	r := rng.Intn(100)
	switch {
	case r < m.SetPct:
		return 0
	case r < m.SetPct+m.GetPct:
		return 1
	default:
		return 2
	}
}

func init() {
	register(&Experiment{
		ID:    "storemix",
		Title: "Store contention ablation: seqlock read path under op mixes and skew",
		Paper: "not in the paper; measures the implementation's lock-free read path against its mutex baseline",
		Run:   runStoreMix,
	})
}

// mixShard is one shard of the miniature concurrent store the ablation
// drives: the same source + seqlock-cache assembly as apcache.Store, rebuilt
// here from the internal pieces (the bench package cannot import the root
// package without an import cycle through the root benchmarks).
type mixShard struct {
	mu    sync.Mutex
	src   *source.Source
	cache *cache.SeqCache
	_     [64 - 24]byte
}

type mixStore struct {
	shards []*mixShard
	locked bool // route Get through the shard mutex (the pre-seqlock baseline)
}

func newMixStore(shards, keys, cacheSize int, locked bool, seed int64) *mixStore {
	params := core.Params{Cvr: 1, Cqr: 2, Alpha: 1, Lambda1: math.Inf(1)}
	base := cacheSize / (2 * shards)
	if base < 1 {
		base = 1
	}
	pool := cacheSize - base*shards
	if pool < 0 {
		pool = 0
	}
	budget := cache.NewBudget(pool)
	ms := &mixStore{shards: make([]*mixShard, shards), locked: locked}
	for i := range ms.shards {
		rng := rand.New(rand.NewSource(seed + int64(i)))
		sh := &mixShard{cache: cache.NewSeq(base, budget)}
		sh.src = source.New(func(cacheID, key int) core.WidthPolicy {
			return core.NewController(params, 10, rng)
		})
		ms.shards[i] = sh
	}
	for k := 0; k < keys; k++ {
		sh := ms.shardFor(k)
		sh.src.SetInitial(k, float64(k))
		r := sh.src.Subscribe(0, k)
		sh.cache.Put(r.Key, r.Interval, r.OriginalWidth)
	}
	return ms
}

func (ms *mixStore) shardFor(key int) *mixShard {
	return ms.shards[shard.Index(key, len(ms.shards))]
}

func (ms *mixStore) set(key int, v float64) {
	sh := ms.shardFor(key)
	sh.mu.Lock()
	for _, r := range sh.src.Set(key, v) {
		sh.cache.Put(r.Key, r.Interval, r.OriginalWidth)
	}
	sh.mu.Unlock()
}

func (ms *mixStore) get(key int) bool {
	sh := ms.shardFor(key)
	if ms.locked {
		sh.mu.Lock()
		defer sh.mu.Unlock()
	}
	_, ok := sh.cache.Get(key)
	return ok
}

func (ms *mixStore) read(key int) float64 {
	sh := ms.shardFor(key)
	sh.mu.Lock()
	r := sh.src.Read(0, key)
	sh.cache.Put(r.Key, r.Interval, r.OriginalWidth)
	sh.mu.Unlock()
	return r.Value
}

// runStoreMix sweeps the op mixes over the seqlock store and the
// locked-reads baseline, reporting wall-clock throughput plus the
// deterministic occupancy invariants (these must hold exactly regardless of
// scheduling).
func runStoreMix(opt Options) (*Report, error) {
	rep := &Report{ID: "storemix", Title: "Concurrent store op-mix ablation"}
	keys, cacheSize, goroutines, opsPerG := 1024, 256, 8, 30000
	if opt.Quick {
		opsPerG = 6000
	}
	tb := plot.NewTable("mix", "shards", "read path", "ops/sec", "hit rate", "borrowed", "evict+reject")
	for _, mix := range StoreMixes {
		var zipf *workload.ZipfKeys
		if mix.ZipfS > 0 {
			zipf = workload.NewZipfKeys(keys, mix.ZipfS)
		}
		for _, shards := range []int{1, 8} {
			for _, locked := range []bool{true, false} {
				ms := newMixStore(shards, keys, cacheSize, locked, opt.Seed)
				var wg sync.WaitGroup
				start := time.Now()
				for g := 0; g < goroutines; g++ {
					wg.Add(1)
					go func(g int) {
						defer wg.Done()
						rng := rand.New(rand.NewSource(opt.Seed + int64(g)*101))
						for i := 0; i < opsPerG; i++ {
							k := rng.Intn(keys)
							if zipf != nil {
								k = zipf.Sample(rng)
							}
							switch mix.Op(rng) {
							case 0:
								ms.set(k, rng.Float64()*1000)
							case 1:
								ms.get(k)
							default:
								ms.read(k)
							}
						}
					}(g)
				}
				wg.Wait()
				elapsed := time.Since(start)
				opsPerSec := float64(goroutines*opsPerG) / elapsed.Seconds()

				// Deterministic sum invariants, scheduling-independent.
				var totLen, totCap, totBorrowed, admits, evicts int
				var hits, misses int
				for _, sh := range ms.shards {
					cs := sh.cache.Stats()
					totLen += sh.cache.Len()
					totCap += sh.cache.Capacity()
					totBorrowed += sh.cache.Borrowed()
					admits += cs.Admits
					evicts += cs.Evicts
					hits += cs.Hits
					misses += cs.Misses
					if sh.cache.Len() > sh.cache.Capacity() {
						return nil, fmt.Errorf("storemix: shard occupancy %d exceeds capacity %d", sh.cache.Len(), sh.cache.Capacity())
					}
				}
				if totLen > cacheSize || totCap > cacheSize {
					return nil, fmt.Errorf("storemix: aggregate occupancy/capacity %d/%d exceeds cap %d", totLen, totCap, cacheSize)
				}
				if admits-evicts != totLen {
					return nil, fmt.Errorf("storemix: admits-evicts %d disagrees with occupancy %d", admits-evicts, totLen)
				}
				hitRate := 0.0
				if hits+misses > 0 {
					hitRate = float64(hits) / float64(hits+misses)
				}
				path := "seqlock"
				if locked {
					path = "mutex"
				}
				var pressure int
				for _, sh := range ms.shards {
					cs := sh.cache.Stats()
					pressure += cs.Evicts + cs.Rejects
				}
				tb.AddRow(mix.Name, plot.FormatG(float64(shards)), path,
					plot.FormatG(opsPerSec), plot.FormatG(hitRate),
					plot.FormatG(float64(totBorrowed)), plot.FormatG(float64(pressure)))
			}
		}
	}
	rep.Tables = append(rep.Tables, tb)
	rep.Note("seqlock vs mutex rows isolate the read-path contention; zipf rows show the shared admission budget borrowing capacity toward hot shards")
	rep.Note("throughput is wall-clock and machine-dependent; the occupancy invariants checked during the run are exact")
	return rep, nil
}
