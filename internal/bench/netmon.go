package bench

import (
	"math"

	"apcache/internal/core"
	"apcache/internal/plot"
	"apcache/internal/sim"
	"apcache/internal/stats"
	"apcache/internal/trace"
	"apcache/internal/workload"
)

// netmonParams bundles the knobs for one network-monitoring run.
type netmonParams struct {
	theta       float64
	tq          float64
	constraints workload.ConstraintDist
	alpha       float64
	lambda0     float64
	lambda1     float64
	kappa       int // 0 = all
	kinds       []workload.AggKind
	// size overrides (0 = use the experiment defaults)
	hosts, duration, keys int
}

// netmonSimConfig builds the Section 4.3 environment: n sources playing the
// network trace, one cache, SUM (or MAX) queries over 10 random sources.
func netmonSimConfig(p netmonParams, opt Options) (sim.Config, error) {
	hosts, duration, keys := 50, 7200, 10
	if opt.Quick {
		hosts, duration, keys = 16, 1800, 5
	}
	if p.hosts > 0 {
		hosts = p.hosts
	}
	if p.duration > 0 {
		duration = p.duration
	}
	if p.keys > 0 {
		keys = p.keys
	}
	tr, err := netmonTrace(hosts, duration, opt.Seed+101)
	if err != nil {
		return sim.Config{}, err
	}
	cvr, cqr := thetaCosts(p.theta)
	kinds := p.kinds
	if kinds == nil {
		kinds = []workload.AggKind{workload.Sum}
	}
	return sim.Config{
		NumSources: hosts,
		CacheSize:  p.kappa,
		Params: core.Params{
			Cvr: cvr, Cqr: cqr,
			Alpha:   p.alpha,
			Lambda0: p.lambda0,
			Lambda1: p.lambda1,
		},
		InitialWidth: 10000,
		Updates:      sim.PlaybackUpdates(tr.Series),
		Tq:           p.tq,
		QueryKinds:   kinds,
		KeysPerQuery: keys,
		Constraints:  p.constraints,
		Duration:     float64(duration),
		Warmup:       float64(duration) / 10,
		Seed:         opt.Seed + 7,
		RecordKey:    -1,
	}, nil
}

const kilo = 1000.0

func init() {
	register(&Experiment{
		ID:    "fig45",
		Title: "Figures 4-5: source value and cached interval over time",
		Paper: "small davg (50K) selects narrow intervals; large davg (500K) selects wide ones",
		Run:   runFig45,
	})
	register(&Experiment{
		ID:    "fig6",
		Title: "Figure 6: effect of the adaptivity parameter alpha (12 series)",
		Paper: "alpha = 1 is a good overall setting across Tq, constraint ranges, and theta",
		Run:   runFig6,
	})
	register(&Experiment{
		ID:    "fig789",
		Title: "Figures 7-9: settings of the upper threshold lambda1 vs davg, per query period",
		Paper: "lambda1=lambda0 is flat in davg and best only at davg=0; lambda1=inf wins for davg>0; small lambda1 is a compromise",
		Run:   runFig789,
	})
	register(&Experiment{
		ID:    "sigma",
		Title: "Section 4.4 in-text: sensitivity to the precision-constraint variation sigma",
		Paper: "cost difference between sigma=0 and sigma=1 is small (1.9% at davg=100K, 5.5% at 10K, <1% at 5K)",
		Run:   runSigma,
	})
	register(&Experiment{
		ID:    "maxq",
		Title: "Section 4.4/4.6 in-text: MAX queries keep lambda1=inf best even at davg=0",
		Paper: "for MAX queries, intervals eliminate candidates, so approximate caching helps even for exact answers",
		Run:   runMaxQ,
	})
}

func runFig45(opt Options) (*Report, error) {
	rep := &Report{ID: "fig45", Title: "Figures 4-5 (value and interval trace)"}
	hosts, duration := 50, 7200
	if opt.Quick {
		hosts, duration = 16, 1800
	}
	tr, err := netmonTrace(hosts, duration, opt.Seed+101)
	if err != nil {
		return nil, err
	}
	// Pick the recorded host as in the paper: one that becomes active
	// after inactivity — choose the host with the largest single-step jump.
	recordKey := mostBurstyHost(tr)
	for _, davg := range []float64{50 * kilo, 500 * kilo} {
		p := netmonParams{
			theta: 1, tq: 1, alpha: 1,
			lambda0: 0, lambda1: math.Inf(1),
			constraints: workload.ConstraintDist{Avg: davg, Sigma: 1},
		}
		cfg, err := netmonSimConfig(p, opt)
		if err != nil {
			return nil, err
		}
		cfg.RecordKey = recordKey
		res, err := sim.Run(cfg)
		if err != nil {
			return nil, err
		}
		lo, hi := chartWindow(res, cfg.Duration)
		ch := &plot.Chart{
			Title:  plot.FormatG(davg) + " davg: value (o) inside cached interval (* lo, + hi)",
			XLabel: "time (s)", YLabel: "traffic level",
			Width: 72, Height: 18,
		}
		addSeriesWindow(ch, "lo", res.Lo, lo, hi)
		addSeriesWindow(ch, "hi", res.Hi, lo, hi)
		addSeriesWindow(ch, "value", res.Value, lo, hi)
		rep.Charts = append(rep.Charts, ch)
		rep.Note("davg=%s: mean interval width %.4g (narrow for small davg, wide for large)",
			plot.FormatG(davg), res.MeanWidth.Mean())
	}
	return rep, nil
}

// mostBurstyHost returns the index of the host with the largest single-step
// value jump, a proxy for "became active after a period of inactivity".
func mostBurstyHost(tr *trace.Trace) int {
	best, bestJump := 0, 0.0
	for h := 0; h < tr.Hosts(); h++ {
		s := tr.Host(h)
		for i := 1; i < len(s); i++ {
			if j := math.Abs(s[i] - s[i-1]); j > bestJump {
				best, bestJump = h, j
			}
		}
	}
	return best
}

// chartWindow picks a 1000-second window centered on the recorded series'
// largest value movement.
func chartWindow(res sim.Result, duration float64) (lo, hi float64) {
	bestT, bestJump := duration/2, 0.0
	pts := res.Value.Points
	for i := 1; i < len(pts); i++ {
		if j := math.Abs(pts[i].V - pts[i-1].V); j > bestJump {
			bestT, bestJump = pts[i].T, j
		}
	}
	lo = math.Max(0, bestT-500)
	return lo, math.Min(duration, lo+1000)
}

func addSeriesWindow(ch *plot.Chart, name string, s stats.Series, lo, hi float64) {
	pts := s.Window(lo, hi)
	if len(pts) == 0 {
		return
	}
	xs := make([]float64, len(pts))
	ys := make([]float64, len(pts))
	for i, p := range pts {
		xs[i], ys[i] = p.T, p.V
	}
	ch.Add(name, xs, ys)
}

func runFig6(opt Options) (*Report, error) {
	rep := &Report{ID: "fig6", Title: "Figure 6 (adaptivity parameter alpha)"}
	alphas := []float64{0.1, 0.25, 0.5, 1, 2, 4, 10}
	if opt.Quick {
		alphas = []float64{0.25, 1, 4}
	}
	type series struct {
		theta, tq  float64
		dmin, dmax float64
	}
	var sweeps []series
	for _, theta := range []float64{1, 4} {
		for _, tq := range []float64{0.5, 1, 6} {
			for _, rng := range [][2]float64{{50 * kilo, 150 * kilo}, {0, 100 * kilo}} {
				sweeps = append(sweeps, series{theta: theta, tq: tq, dmin: rng[0], dmax: rng[1]})
			}
		}
	}
	if opt.Quick {
		sweeps = sweeps[:4]
	}
	headers := []string{"theta,Tq,dmin,dmax \\ alpha"}
	for _, a := range alphas {
		headers = append(headers, plot.FormatG(a))
	}
	tb := plot.NewTable(headers...)
	bestAlphaVotes := map[float64]int{}
	for _, s := range sweeps {
		row := []string{plot.FormatG(s.theta) + ";" + plot.FormatG(s.tq) + ";" +
			plot.FormatG(s.dmin) + ";" + plot.FormatG(s.dmax)}
		bestAlpha, bestCost := 0.0, math.Inf(1)
		for _, a := range alphas {
			p := netmonParams{
				theta: s.theta, tq: s.tq, alpha: a,
				lambda0: 0, lambda1: math.Inf(1),
				constraints: workload.FromRange(s.dmin, s.dmax),
			}
			cfg, err := netmonSimConfig(p, opt)
			if err != nil {
				return nil, err
			}
			res, err := sim.Run(cfg)
			if err != nil {
				return nil, err
			}
			row = append(row, plot.FormatG(res.CostRate))
			if res.CostRate < bestCost {
				bestAlpha, bestCost = a, res.CostRate
			}
		}
		bestAlphaVotes[bestAlpha]++
		tb.AddRow(row...)
	}
	rep.Tables = append(rep.Tables, tb)
	votes := ""
	for _, a := range alphas {
		if bestAlphaVotes[a] > 0 {
			votes += plot.FormatG(a) + ":" + plot.FormatG(float64(bestAlphaVotes[a])) + " "
		}
	}
	rep.Note("best-alpha votes across series: %s(paper: alpha=1 is a good overall setting)", votes)
	return rep, nil
}

func runFig789(opt Options) (*Report, error) {
	rep := &Report{ID: "fig789", Title: "Figures 7-9 (upper threshold lambda1)"}
	davgs := []float64{0, 25 * kilo, 50 * kilo, 100 * kilo, 200 * kilo, 500 * kilo}
	tqs := []float64{0.5, 1, 2}
	if opt.Quick {
		davgs = []float64{0, 50 * kilo, 500 * kilo}
		tqs = []float64{1}
	}
	lambda1s := []struct {
		name string
		val  float64
	}{
		{"lambda1=lambda0 (1K)", 1 * kilo},
		{"lambda1=2K", 2 * kilo},
		{"lambda1=inf", math.Inf(1)},
	}
	for _, tq := range tqs {
		tb := plot.NewTable(append([]string{"davg \\ setting"}, lambda1s[0].name, lambda1s[1].name, lambda1s[2].name)...)
		ch := &plot.Chart{Title: "Fig 7-9 (Tq=" + plot.FormatG(tq) + "): cost vs davg", XLabel: "davg", YLabel: "cost rate"}
		curves := make([][]float64, len(lambda1s))
		for _, davg := range davgs {
			row := []string{plot.FormatG(davg)}
			for i, l1 := range lambda1s {
				p := netmonParams{
					theta: 1, tq: tq, alpha: 1,
					lambda0:     1 * kilo,
					lambda1:     l1.val,
					constraints: workload.ConstraintDist{Avg: davg, Sigma: 0.5},
				}
				cfg, err := netmonSimConfig(p, opt)
				if err != nil {
					return nil, err
				}
				res, err := sim.Run(cfg)
				if err != nil {
					return nil, err
				}
				row = append(row, plot.FormatG(res.CostRate))
				curves[i] = append(curves[i], res.CostRate)
			}
			tb.AddRow(row...)
		}
		for i, l1 := range lambda1s {
			ch.Add(l1.name, davgs, curves[i])
		}
		rep.Tables = append(rep.Tables, tb)
		rep.Charts = append(rep.Charts, ch)
	}
	rep.Note("paper: lambda1=lambda0 is flat in davg; lambda1=inf dominates once davg is large; for mixed workloads use lambda1=inf")
	return rep, nil
}

func runSigma(opt Options) (*Report, error) {
	rep := &Report{ID: "sigma", Title: "Section 4.4 (sigma sensitivity)"}
	tb := plot.NewTable("davg", "cost sigma=0", "cost sigma=1", "diff %")
	davgs := []float64{5 * kilo, 10 * kilo, 100 * kilo}
	if opt.Quick {
		davgs = []float64{10 * kilo, 100 * kilo}
	}
	for _, davg := range davgs {
		var costs [2]float64
		for i, sg := range []float64{0, 1} {
			p := netmonParams{
				theta: 1, tq: 1, alpha: 1,
				lambda0: 1 * kilo, lambda1: math.Inf(1),
				constraints: workload.ConstraintDist{Avg: davg, Sigma: sg},
			}
			cfg, err := netmonSimConfig(p, opt)
			if err != nil {
				return nil, err
			}
			res, err := sim.Run(cfg)
			if err != nil {
				return nil, err
			}
			costs[i] = res.CostRate
		}
		diff := (costs[1] - costs[0]) / costs[0] * 100
		tb.AddRow(plot.FormatG(davg), plot.FormatG(costs[0]), plot.FormatG(costs[1]),
			plot.FormatG(diff))
	}
	rep.Tables = append(rep.Tables, tb)
	rep.Note("paper: 1.9%% at davg=100K, 5.5%% at 10K, <1%% at 5K — degradation from wide constraint distributions is small")
	return rep, nil
}

func runMaxQ(opt Options) (*Report, error) {
	rep := &Report{ID: "maxq", Title: "MAX queries: lambda1 settings at davg=0 and beyond"}
	tb := plot.NewTable("davg", "lambda1=lambda0", "lambda1=inf")
	davgs := []float64{0, 50 * kilo, 500 * kilo}
	// Candidate elimination needs the paper's full population skew: even
	// in quick mode, keep 40 hosts and 10 keys per query (shorter run).
	hosts, duration, keys := 0, 0, 0
	if opt.Quick {
		hosts, duration, keys = 40, 2400, 10
	}
	for _, davg := range davgs {
		var row []string
		row = append(row, plot.FormatG(davg))
		for _, l1 := range []float64{1 * kilo, math.Inf(1)} {
			p := netmonParams{
				theta: 1, tq: 1, alpha: 1,
				lambda0: 1 * kilo, lambda1: l1,
				constraints: workload.ConstraintDist{Avg: davg, Sigma: 0.5},
				kinds:       []workload.AggKind{workload.Max},
				hosts:       hosts, duration: duration, keys: keys,
			}
			cfg, err := netmonSimConfig(p, opt)
			if err != nil {
				return nil, err
			}
			res, err := sim.Run(cfg)
			if err != nil {
				return nil, err
			}
			row = append(row, plot.FormatG(res.CostRate))
		}
		tb.AddRow(row...)
	}
	rep.Tables = append(rep.Tables, tb)
	rep.Note("paper: for MAX queries lambda1=inf gives the best performance for all davg including 0, because intervals eliminate candidates")
	return rep, nil
}
