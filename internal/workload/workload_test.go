package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRandomWalkStepsWithinRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := NewRandomWalk(100, 0.5, 1.5, rng)
	prev := w.Value()
	for i := 0; i < 1000; i++ {
		v := w.Step()
		d := math.Abs(v - prev)
		if d < 0.5-1e-12 || d > 1.5+1e-12 {
			t.Fatalf("step %d magnitude %g outside [0.5, 1.5]", i, d)
		}
		prev = v
	}
}

func TestRandomWalkUnbiasedStaysNearStart(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w := NewRandomWalk(0, 0.5, 1.5, rng)
	n := 20000
	for i := 0; i < n; i++ {
		w.Step()
	}
	// Final displacement of an unbiased walk has std sqrt(n*E[s^2]) ~= 147
	// here; 6 sigma gives a deterministic-seed-safe bound of ~900.
	if math.Abs(w.Value()) > 900 {
		t.Errorf("unbiased walk drifted: final position %g", w.Value())
	}
}

func TestBiasedWalkDrifts(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w := NewBiasedWalk(0, 0.5, 1.5, 0.9, rng)
	for i := 0; i < 5000; i++ {
		w.Step()
	}
	// Expected drift: 5000 * 1 * (0.9 - 0.1) = 4000.
	if w.Value() < 3000 {
		t.Errorf("biased walk value %g, want >= 3000", w.Value())
	}
}

func TestWalkPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []func(){
		func() { NewRandomWalk(0, -1, 1, rng) },
		func() { NewRandomWalk(0, 2, 1, rng) },
		func() { NewBiasedWalk(0, 0, 1, 1.5, rng) },
		func() { NewRandomWalk(0, 0, 1, nil) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestPlayback(t *testing.T) {
	p := NewPlayback([]float64{1, 2, 3})
	if p.Value() != 1 {
		t.Fatalf("initial value %g", p.Value())
	}
	if p.Step() != 2 || p.Step() != 3 {
		t.Fatalf("playback sequence wrong")
	}
	if !p.Exhausted() {
		t.Errorf("not exhausted at end")
	}
	if p.Step() != 3 {
		t.Errorf("playback did not hold final value")
	}
	if p.Len() != 3 {
		t.Errorf("Len = %d", p.Len())
	}
	defer func() {
		if recover() == nil {
			t.Errorf("empty playback did not panic")
		}
	}()
	NewPlayback(nil)
}

func TestConstraintDist(t *testing.T) {
	c := ConstraintDist{Avg: 100, Sigma: 0.5}
	if c.Min() != 50 || c.Max() != 150 {
		t.Fatalf("range [%g, %g], want [50, 150]", c.Min(), c.Max())
	}
	rng := rand.New(rand.NewSource(4))
	var s float64
	for i := 0; i < 10000; i++ {
		v := c.Sample(rng)
		if v < 50 || v > 150 {
			t.Fatalf("sample %g outside range", v)
		}
		s += v
	}
	mean := s / 10000
	if math.Abs(mean-100) > 2 {
		t.Errorf("sample mean %g, want ~100", mean)
	}
}

func TestConstraintDistZeroAvg(t *testing.T) {
	c := ConstraintDist{Avg: 0, Sigma: 1}
	rng := rand.New(rand.NewSource(5))
	if got := c.Sample(rng); got != 0 {
		t.Errorf("zero-average constraint sampled %g", got)
	}
}

func TestConstraintSigmaZeroIsConstant(t *testing.T) {
	c := ConstraintDist{Avg: 42, Sigma: 0}
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 100; i++ {
		if got := c.Sample(rng); got != 42 {
			t.Fatalf("sigma=0 sampled %g, want 42", got)
		}
	}
}

func TestFromRange(t *testing.T) {
	c := FromRange(50, 150)
	if math.Abs(c.Avg-100) > 1e-12 || math.Abs(c.Sigma-0.5) > 1e-12 {
		t.Errorf("FromRange(50,150) = %+v, want avg 100 sigma 0.5", c)
	}
	c = FromRange(0, 100)
	if c.Avg != 50 || c.Sigma != 1 {
		t.Errorf("FromRange(0,100) = %+v, want avg 50 sigma 1", c)
	}
	z := FromRange(0, 0)
	if z.Avg != 0 {
		t.Errorf("FromRange(0,0) = %+v", z)
	}
	defer func() {
		if recover() == nil {
			t.Errorf("FromRange(10,5) did not panic")
		}
	}()
	FromRange(10, 5)
}

func TestQueryGen(t *testing.T) {
	g := &QueryGen{
		Kinds:        []AggKind{Sum},
		NumSources:   50,
		KeysPerQuery: 10,
		Constraints:  ConstraintDist{Avg: 100, Sigma: 1},
		RNG:          rand.New(rand.NewSource(7)),
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	for i := 0; i < 200; i++ {
		q := g.Next()
		if q.Kind != Sum {
			t.Fatalf("kind %v", q.Kind)
		}
		if len(q.Keys) != 10 {
			t.Fatalf("got %d keys", len(q.Keys))
		}
		seen := map[int]bool{}
		for _, k := range q.Keys {
			if k < 0 || k >= 50 {
				t.Fatalf("key %d out of range", k)
			}
			if seen[k] {
				t.Fatalf("duplicate key %d", k)
			}
			seen[k] = true
		}
		if q.Delta < 0 || q.Delta > 200 {
			t.Fatalf("delta %g out of [0, 200]", q.Delta)
		}
	}
}

func TestQueryGenMixedKinds(t *testing.T) {
	g := &QueryGen{
		Kinds:        []AggKind{Sum, Max},
		NumSources:   10,
		KeysPerQuery: 5,
		Constraints:  ConstraintDist{Avg: 10},
		RNG:          rand.New(rand.NewSource(8)),
	}
	counts := map[AggKind]int{}
	for i := 0; i < 1000; i++ {
		counts[g.Next().Kind]++
	}
	if counts[Sum] < 300 || counts[Max] < 300 {
		t.Errorf("kind mix skewed: %v", counts)
	}
}

func TestQueryGenValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	base := QueryGen{Kinds: []AggKind{Sum}, NumSources: 10, KeysPerQuery: 5, RNG: rng}
	bad := []QueryGen{
		{NumSources: 10, KeysPerQuery: 5, RNG: rng},
		{Kinds: []AggKind{Sum}, NumSources: 0, KeysPerQuery: 1, RNG: rng},
		{Kinds: []AggKind{Sum}, NumSources: 10, KeysPerQuery: 0, RNG: rng},
		{Kinds: []AggKind{Sum}, NumSources: 10, KeysPerQuery: 11, RNG: rng},
		{Kinds: []AggKind{Sum}, NumSources: 10, KeysPerQuery: 5, RNG: nil},
		{Kinds: []AggKind{Sum}, NumSources: 10, KeysPerQuery: 5, RNG: rng, Constraints: ConstraintDist{Avg: -1}},
		{Kinds: []AggKind{Sum}, NumSources: 10, KeysPerQuery: 5, RNG: rng, Constraints: ConstraintDist{Avg: 1, Sigma: 2}},
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("base should validate: %v", err)
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("case %d validated", i)
		}
	}
}

func TestAggKindString(t *testing.T) {
	names := map[AggKind]string{Sum: "SUM", Max: "MAX", Min: "MIN", Avg: "AVG"}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if AggKind(9).String() != "AggKind(9)" {
		t.Errorf("unknown kind string %q", AggKind(9).String())
	}
}

func TestQuickSampleDistinct(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		n := int(nRaw)%50 + 1
		k := int(kRaw)%n + 1
		rng := rand.New(rand.NewSource(seed))
		got := sampleDistinct(rng, n, k)
		if len(got) != k {
			return false
		}
		seen := map[int]bool{}
		for _, v := range got {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickWalkBoundedDrift(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := NewRandomWalk(0, 1, 1, rng) // fixed unit steps
		for i := 0; i < 100; i++ {
			w.Step()
		}
		// After 100 unit steps the position is in [-100, 100] and has the
		// parity of 100.
		v := w.Value()
		return math.Abs(v) <= 100 && math.Abs(math.Mod(v, 2)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZipfKeysSkew(t *testing.T) {
	z := NewZipfKeys(10, 1.2)
	if z.N() != 10 {
		t.Fatalf("N = %d", z.N())
	}
	rng := rand.New(rand.NewSource(9))
	counts := make([]int, 10)
	for i := 0; i < 20000; i++ {
		k := z.Sample(rng)
		if k < 0 || k >= 10 {
			t.Fatalf("sample %d out of range", k)
		}
		counts[k]++
	}
	if counts[0] <= counts[5] || counts[5] <= counts[9] {
		t.Errorf("no skew: %v", counts)
	}
	// Key 0 should carry a substantial share under s=1.2.
	if counts[0] < 4000 {
		t.Errorf("key 0 drew only %d of 20000", counts[0])
	}
}

func TestZipfSampleDistinct(t *testing.T) {
	z := NewZipfKeys(6, 1)
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 50; trial++ {
		got := z.SampleDistinct(rng, 4)
		seen := map[int]bool{}
		for _, k := range got {
			if k < 0 || k >= 6 || seen[k] {
				t.Fatalf("bad distinct sample %v", got)
			}
			seen[k] = true
		}
	}
	// Sampling all keys works (rejection terminates).
	if got := z.SampleDistinct(rng, 6); len(got) != 6 {
		t.Errorf("full sample %v", got)
	}
}

func TestZipfPanics(t *testing.T) {
	cases := []func(){
		func() { NewZipfKeys(0, 1) },
		func() { NewZipfKeys(5, 0) },
		func() { NewZipfKeys(5, math.NaN()) },
		func() { NewZipfKeys(3, 1).SampleDistinct(rand.New(rand.NewSource(1)), 4) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestQueryGenZipf(t *testing.T) {
	g := &QueryGen{
		Kinds:        []AggKind{Sum},
		NumSources:   20,
		KeysPerQuery: 3,
		Constraints:  ConstraintDist{Avg: 10},
		RNG:          rand.New(rand.NewSource(11)),
		Zipf:         NewZipfKeys(20, 1.5),
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	hot := 0
	for i := 0; i < 500; i++ {
		q := g.Next()
		for _, k := range q.Keys {
			if k < 3 {
				hot++
			}
		}
	}
	if hot < 500 {
		t.Errorf("hot keys drawn only %d times; skew not applied", hot)
	}
	// Mismatched Zipf size fails validation.
	g.Zipf = NewZipfKeys(5, 1)
	if err := g.Validate(); err == nil {
		t.Errorf("mismatched Zipf accepted")
	}
}
