// Package workload generates the update streams and query loads of the
// performance study (Section 4.1): per-second value updates from random
// walks or trace playback, and bounded-aggregate queries issued every Tq
// seconds with precision constraints sampled uniformly from
// [davg*(1-sigma), davg*(1+sigma)].
package workload

import (
	"fmt"
	"math"
)

// Rand is the randomness source used by generators; *math/rand.Rand
// satisfies it.
type Rand interface {
	Float64() float64
	Intn(n int) int
}

// UpdateSource produces the successive exact values of one source data item,
// one value per time step.
type UpdateSource interface {
	// Value returns the current exact value.
	Value() float64
	// Step advances one time step and returns the new value.
	Step() float64
}

// RandomWalk is the Section 4.2 synthetic update stream: every time step the
// value moves up or down by an amount sampled uniformly from [StepLo,
// StepHi]. The unbiased walk has UpProb = 0.5; Section 4.5's biased walks
// use larger values.
type RandomWalk struct {
	value  float64
	stepLo float64
	stepHi float64
	upProb float64
	rng    Rand
}

// NewRandomWalk returns an unbiased random walk starting at start with step
// sizes uniform on [stepLo, stepHi]. The paper's Section 4.2 walk uses
// [0.5, 1.5].
func NewRandomWalk(start, stepLo, stepHi float64, rng Rand) *RandomWalk {
	return NewBiasedWalk(start, stepLo, stepHi, 0.5, rng)
}

// NewBiasedWalk returns a walk that moves up with probability upProb.
func NewBiasedWalk(start, stepLo, stepHi, upProb float64, rng Rand) *RandomWalk {
	if stepLo < 0 || stepHi < stepLo {
		panic(fmt.Sprintf("workload: bad step range [%g, %g]", stepLo, stepHi))
	}
	if upProb < 0 || upProb > 1 {
		panic(fmt.Sprintf("workload: bad up-probability %g", upProb))
	}
	if rng == nil {
		panic("workload: nil Rand")
	}
	return &RandomWalk{value: start, stepLo: stepLo, stepHi: stepHi, upProb: upProb, rng: rng}
}

// Value returns the current walk position.
func (w *RandomWalk) Value() float64 { return w.value }

// Step advances the walk one time step.
func (w *RandomWalk) Step() float64 {
	step := w.stepLo + w.rng.Float64()*(w.stepHi-w.stepLo)
	if w.rng.Float64() < w.upProb {
		w.value += step
	} else {
		w.value -= step
	}
	return w.value
}

// Playback replays a recorded value sequence (used for the network
// monitoring traces). After the last sample it holds the final value.
type Playback struct {
	samples []float64
	pos     int
}

// NewPlayback wraps a sample sequence; it panics on an empty sequence.
func NewPlayback(samples []float64) *Playback {
	if len(samples) == 0 {
		panic("workload: empty playback")
	}
	return &Playback{samples: samples}
}

// Value returns the current sample.
func (p *Playback) Value() float64 { return p.samples[p.pos] }

// Step advances to the next sample, holding the last one at end of trace.
func (p *Playback) Step() float64 {
	if p.pos < len(p.samples)-1 {
		p.pos++
	}
	return p.samples[p.pos]
}

// Exhausted reports whether the playback has reached its final sample.
func (p *Playback) Exhausted() bool { return p.pos >= len(p.samples)-1 }

// Len returns the total number of samples.
func (p *Playback) Len() int { return len(p.samples) }

// AggKind enumerates the bounded-aggregate query types. The study uses SUM
// and MAX (Section 4.1); MIN and AVG are the natural companions supported by
// the same machinery.
type AggKind int

const (
	// Sum asks for the sum of the selected values.
	Sum AggKind = iota
	// Max asks for the maximum.
	Max
	// Min asks for the minimum.
	Min
	// Avg asks for the arithmetic mean.
	Avg
)

// String returns the aggregate name.
func (k AggKind) String() string {
	switch k {
	case Sum:
		return "SUM"
	case Max:
		return "MAX"
	case Min:
		return "MIN"
	case Avg:
		return "AVG"
	default:
		return fmt.Sprintf("AggKind(%d)", int(k))
	}
}

// Query is one bounded-aggregate query: compute Kind over the values named
// by Keys with result-interval width at most Delta.
type Query struct {
	Kind AggKind
	Keys []int
	// Delta is the precision constraint: the maximum acceptable width of
	// the result interval. Delta = 0 demands an exact answer.
	Delta float64
}

// ConstraintDist describes the precision-constraint distribution of Section
// 4.1: uniform between Min() = Avg*(1-Sigma) and Max() = Avg*(1+Sigma).
type ConstraintDist struct {
	// Avg is davg, the average precision constraint.
	Avg float64
	// Sigma is the variation: 0 pins every query at Avg; 1 spreads them
	// over [0, 2*Avg].
	Sigma float64
}

// Min returns davg*(1-sigma).
func (c ConstraintDist) Min() float64 { return c.Avg * (1 - c.Sigma) }

// Max returns davg*(1+sigma).
func (c ConstraintDist) Max() float64 { return c.Avg * (1 + c.Sigma) }

// Sample draws one constraint.
func (c ConstraintDist) Sample(rng Rand) float64 {
	if c.Avg == 0 {
		return 0
	}
	lo, hi := c.Min(), c.Max()
	return lo + rng.Float64()*(hi-lo)
}

// FromRange builds the distribution matching an explicit [min, max]
// constraint range, the parameterization used by Figure 6's series labels.
func FromRange(min, max float64) ConstraintDist {
	if min < 0 || max < min {
		panic(fmt.Sprintf("workload: bad constraint range [%g, %g]", min, max))
	}
	avg := (min + max) / 2
	if avg == 0 {
		return ConstraintDist{}
	}
	return ConstraintDist{Avg: avg, Sigma: (max - min) / (2 * avg)}
}

// QueryGen draws the study's queries: every period a query of one of Kinds
// (uniformly chosen) over KeysPerQuery distinct sources out of NumSources,
// with a constraint from Constraints.
type QueryGen struct {
	// Kinds are the aggregate types to rotate among; the study uses
	// {Sum} or {Max} per run.
	Kinds []AggKind
	// NumSources is the number of data sources n.
	NumSources int
	// KeysPerQuery is how many randomly selected sources each query
	// touches (10 in Section 4.3).
	KeysPerQuery int
	// Constraints is the precision-constraint distribution.
	Constraints ConstraintDist
	// RNG drives all sampling.
	RNG Rand
	// Zipf, when non-nil, skews key selection toward low-numbered keys
	// (hot sources) instead of the default uniform choice. Build it with
	// NewZipfKeys.
	Zipf *ZipfKeys
}

// ZipfKeys samples keys with a Zipf-like skew: key k is drawn with
// probability proportional to 1/(k+1)^S. It models hot-spot query loads over
// monitoring data, where a few sources attract most of the attention.
type ZipfKeys struct {
	cdf []float64
}

// NewZipfKeys builds a sampler over n keys with exponent s > 0. Larger s
// concentrates more probability on the first keys.
func NewZipfKeys(n int, s float64) *ZipfKeys {
	if n <= 0 || s <= 0 || math.IsNaN(s) {
		panic(fmt.Sprintf("workload: bad Zipf parameters n=%d s=%g", n, s))
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += 1 / math.Pow(float64(k+1), s)
		cdf[k] = sum
	}
	for k := range cdf {
		cdf[k] /= sum
	}
	return &ZipfKeys{cdf: cdf}
}

// N returns the number of keys covered.
func (z *ZipfKeys) N() int { return len(z.cdf) }

// Sample draws one key.
func (z *ZipfKeys) Sample(rng Rand) int {
	u := rng.Float64()
	// Binary search the CDF.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// SampleDistinct draws k distinct keys by rejection.
func (z *ZipfKeys) SampleDistinct(rng Rand, k int) []int {
	if k > len(z.cdf) {
		panic(fmt.Sprintf("workload: cannot sample %d distinct of %d keys", k, len(z.cdf)))
	}
	seen := make(map[int]bool, k)
	out := make([]int, 0, k)
	for len(out) < k {
		key := z.Sample(rng)
		if !seen[key] {
			seen[key] = true
			out = append(out, key)
		}
	}
	return out
}

// Validate reports whether the generator is well formed.
func (g *QueryGen) Validate() error {
	switch {
	case len(g.Kinds) == 0:
		return fmt.Errorf("workload: no aggregate kinds")
	case g.NumSources <= 0:
		return fmt.Errorf("workload: NumSources must be positive, got %d", g.NumSources)
	case g.KeysPerQuery <= 0 || g.KeysPerQuery > g.NumSources:
		return fmt.Errorf("workload: KeysPerQuery %d out of range 1..%d", g.KeysPerQuery, g.NumSources)
	case g.Constraints.Avg < 0 || math.IsNaN(g.Constraints.Avg):
		return fmt.Errorf("workload: negative constraint average %g", g.Constraints.Avg)
	case g.Constraints.Sigma < 0 || g.Constraints.Sigma > 1:
		return fmt.Errorf("workload: sigma %g out of [0, 1]", g.Constraints.Sigma)
	case g.RNG == nil:
		return fmt.Errorf("workload: nil RNG")
	case g.Zipf != nil && g.Zipf.N() != g.NumSources:
		return fmt.Errorf("workload: Zipf covers %d keys, want %d", g.Zipf.N(), g.NumSources)
	}
	return nil
}

// Next draws the next query. It panics if the generator is invalid; callers
// validate at configuration time.
func (g *QueryGen) Next() Query {
	kind := g.Kinds[0]
	if len(g.Kinds) > 1 {
		kind = g.Kinds[g.RNG.Intn(len(g.Kinds))]
	}
	var keys []int
	if g.Zipf != nil {
		keys = g.Zipf.SampleDistinct(g.RNG, g.KeysPerQuery)
	} else {
		keys = sampleDistinct(g.RNG, g.NumSources, g.KeysPerQuery)
	}
	return Query{
		Kind:  kind,
		Keys:  keys,
		Delta: g.Constraints.Sample(g.RNG),
	}
}

// sampleDistinct draws k distinct ints from [0, n) via a partial
// Fisher-Yates shuffle.
func sampleDistinct(rng Rand, n, k int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + rng.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx[:k]
}
