package cache

import (
	"fmt"
	"sync/atomic"
)

// Budget is a shared pool of spare cache slots that a group of shard caches
// draws on before resorting to eviction. Splitting a capacity cap evenly
// across shards wastes it under skew: a hot shard evicts at its static cap
// while a cold shard's share sits idle. With a Budget, each shard reserves
// only a small guaranteed base and borrows the rest from the pool on demand
// (TryAcquire, one slot per admission beyond the base), returning slots as
// entries are dropped (Release). The aggregate bound — sum of bases plus the
// pool — is exact: the group can never hold more entries than the configured
// total, but any single shard may grow far past its even share if the others
// leave slack.
//
// All operations are single atomic RMWs; a Budget is safe for concurrent use
// from every shard.
type Budget struct {
	slack atomic.Int64
}

// NewBudget returns a pool of the given number of slots (non-negative).
func NewBudget(slots int) *Budget {
	if slots < 0 {
		panic(fmt.Sprintf("cache: negative budget %d", slots))
	}
	b := &Budget{}
	b.slack.Store(int64(slots))
	return b
}

// TryAcquire claims one slot, reporting whether one was available.
func (b *Budget) TryAcquire() bool {
	for {
		cur := b.slack.Load()
		if cur <= 0 {
			return false
		}
		if b.slack.CompareAndSwap(cur, cur-1) {
			return true
		}
	}
}

// Release returns one slot to the pool.
func (b *Budget) Release() { b.slack.Add(1) }

// Slack returns the number of currently unclaimed slots.
func (b *Budget) Slack() int { return int(b.slack.Load()) }
