package cache

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Budget is a shared pool of spare cache slots that a group of shard caches
// draws on before resorting to eviction. Splitting a capacity cap evenly
// across shards wastes it under skew: a hot shard evicts at its static cap
// while a cold shard's share sits idle. With a Budget, each shard reserves
// only a small guaranteed base and borrows the rest from the pool on demand
// (one slot per admission beyond the base), returning slots as entries are
// dropped (Release). The aggregate bound — sum of bases plus the pool — is
// exact: the group can never hold more entries than the configured total,
// but any single shard may grow far past its even share if the others leave
// slack.
//
// Beyond the FCFS slack counter, the budget ranks its borrowers by recent
// eviction pressure. Each borrowing cache registers a Lender; when a shard
// under pressure finds the pool empty, the budget flags the calmest other
// borrower (lowest pressure, strictly below the requester's) to return one
// of its loaned slots, which it repays on its next write. Lukewarm shards
// thus hand slack back before hot shards are forced to evict, instead of
// the first borrower keeping its loan forever.
//
// Hot-path operations (Acquire, Release) are lock-free; Register takes a
// mutex but runs only at cache construction. A Budget is safe for
// concurrent use from every shard.
type Budget struct {
	slack atomic.Int64
	total int64

	// members is the registered-lender list behind an atomic pointer so
	// Acquire's reclaim scan never locks; regMu serializes Register's
	// copy-on-write appends.
	regMu   sync.Mutex
	members atomic.Pointer[[]*Lender]
}

// Lender is one borrower's account with a shared Budget: how many pool
// slots it currently holds (borrowed), how many of those the budget has
// flagged for return (owed), and its recent eviction pressure (the ranking
// signal). borrowed and pressure are written by the owning cache's writer
// (externally serialized, like all SeqCache writes); owed is bumped by
// other shards' Acquire calls, so all three are atomics.
type Lender struct {
	borrowed atomic.Int64
	owed     atomic.Int64
	pressure atomic.Int64
}

// pressureBump is the pressure added per capacity-pressure event (eviction
// or rejection). Put decays pressure by 1/16 per write, so a shard stops
// looking hot within a few dozen quiet writes of its last eviction.
const pressureBump = 1 << 10

// Borrowed returns how many pool slots the lender currently holds.
func (l *Lender) Borrowed() int { return int(l.borrowed.Load()) }

// Owed returns how many of the lender's slots are flagged for return.
func (l *Lender) Owed() int { return int(l.owed.Load()) }

// Pressure returns the lender's decayed eviction-pressure score.
func (l *Lender) Pressure() int64 { return l.pressure.Load() }

// bump records one capacity-pressure event (evict or reject).
func (l *Lender) bump() { l.pressure.Add(pressureBump) }

// decay ages the pressure score by one write. Single-writer (the owning
// cache's lock holder), so the load/store pair cannot race another decay.
func (l *Lender) decay() {
	if p := l.pressure.Load(); p > 0 {
		l.pressure.Store(p - (p+15)/16)
	}
}

// NewBudget returns a pool of the given number of slots (non-negative).
func NewBudget(slots int) *Budget {
	if slots < 0 {
		panic(fmt.Sprintf("cache: negative budget %d", slots))
	}
	b := &Budget{total: int64(slots)}
	b.slack.Store(int64(slots))
	empty := []*Lender{}
	b.members.Store(&empty)
	return b
}

// Register adds a borrower to the budget's lender ranking and returns its
// account. Each borrowing cache registers exactly once, at construction.
func (b *Budget) Register() *Lender {
	l := &Lender{}
	b.regMu.Lock()
	old := *b.members.Load()
	next := make([]*Lender, len(old)+1)
	copy(next, old)
	next[len(old)] = l
	b.members.Store(&next)
	b.regMu.Unlock()
	return l
}

// TryAcquire claims one slot without a lender account, reporting whether
// one was available. Borrowers with an account use Acquire, which also
// feeds the pressure ranking.
func (b *Budget) TryAcquire() bool {
	for {
		cur := b.slack.Load()
		if cur <= 0 {
			return false
		}
		if b.slack.CompareAndSwap(cur, cur-1) {
			return true
		}
	}
}

// Acquire claims one slot for m, reporting success. When the pool is empty
// it instead flags the calmest other borrower — lowest eviction pressure,
// and strictly calmer than m — to return a loaned slot (repaid on that
// borrower's next write), so the next acquisition under sustained pressure
// finds slack that was idling on a lukewarm shard.
func (b *Budget) Acquire(m *Lender) bool {
	if b.TryAcquire() {
		m.borrowed.Add(1)
		return true
	}
	b.flagReclaim(m)
	return false
}

// flagReclaim marks one loaned slot of the lowest-pressure borrower (other
// than the requester) for return. The strict pressure comparison is the
// hysteresis that stops two equally hot shards from endlessly stealing the
// same slot from each other.
func (b *Budget) flagReclaim(requester *Lender) {
	var calmest *Lender
	var calmestP int64
	for _, l := range *b.members.Load() {
		if l == requester {
			continue
		}
		if l.borrowed.Load() <= l.owed.Load() {
			continue // nothing left to reclaim from this borrower
		}
		p := l.pressure.Load()
		if calmest == nil || p < calmestP {
			calmest, calmestP = l, p
		}
	}
	if calmest == nil {
		return
	}
	if requester != nil && calmestP >= requester.pressure.Load() {
		return // no borrower is calmer than the requester; let it evict
	}
	calmest.owed.Add(1)
}

// Release returns one slot to the pool, clamped to the constructed total: a
// mismatched Release is dropped instead of silently inflating the slack —
// and with it the aggregate cache cap — past the configured size.
func (b *Budget) Release() {
	for {
		cur := b.slack.Load()
		if cur >= b.total {
			return
		}
		if b.slack.CompareAndSwap(cur, cur+1) {
			return
		}
	}
}

// releaseFrom is Release for an accounted borrower: the loan is decremented
// first, and an outstanding reclaim flag is satisfied by the return.
func (b *Budget) releaseFrom(m *Lender) {
	m.borrowed.Add(-1)
	if m.owed.Load() > 0 {
		m.owed.Add(-1)
	}
	b.Release()
}

// Slack returns the number of currently unclaimed slots.
func (b *Budget) Slack() int { return int(b.slack.Load()) }

// Total returns the pool size the budget was constructed with.
func (b *Budget) Total() int { return int(b.total) }
