// Tests of the shared admission budget: the clamped Release (a mismatched
// release must not inflate the aggregate cache cap) and the pressure-ranked
// lending that makes lukewarm shards hand slack back before hot shards
// evict.
package cache

import (
	"testing"

	"apcache/internal/interval"
)

func TestBudgetReleaseClampedToTotal(t *testing.T) {
	b := NewBudget(2)
	// Mismatched releases on a full pool are dropped, not banked.
	for i := 0; i < 5; i++ {
		b.Release()
	}
	if got := b.Slack(); got != 2 {
		t.Fatalf("Slack after over-release = %d, want 2 (clamped to total)", got)
	}
	if !b.TryAcquire() || !b.TryAcquire() {
		t.Fatalf("pool of 2 did not yield 2 slots")
	}
	if b.TryAcquire() {
		t.Fatalf("over-released pool yielded a third slot: aggregate cap inflated")
	}
	// Legitimate releases restore exactly the constructed total.
	for i := 0; i < 10; i++ {
		b.Release()
	}
	if got := b.Slack(); got != 2 {
		t.Errorf("Slack = %d, want 2", got)
	}
}

func TestBudgetZeroTotalStaysEmpty(t *testing.T) {
	b := NewBudget(0)
	b.Release()
	if b.TryAcquire() {
		t.Fatalf("zero-slot budget yielded a slot after a stray Release")
	}
}

func TestBudgetAcquireFlagsCalmestBorrower(t *testing.T) {
	b := NewBudget(2)
	calm := b.Register()
	warm := b.Register()
	hot := b.Register()
	// calm and warm each borrow one slot, draining the pool.
	if !b.Acquire(calm) || !b.Acquire(warm) {
		t.Fatalf("could not drain pool of 2")
	}
	warm.pressure.Store(3 * pressureBump)
	hot.pressure.Store(10 * pressureBump)
	// The hot member's failed acquisition must flag the calmest borrower
	// (calm, pressure 0), not the warm one.
	if b.Acquire(hot) {
		t.Fatalf("acquisition succeeded on an empty pool")
	}
	if calm.Owed() != 1 {
		t.Errorf("calm.Owed = %d, want 1", calm.Owed())
	}
	if warm.Owed() != 0 {
		t.Errorf("warm.Owed = %d, want 0 (warm is not the calmest borrower)", warm.Owed())
	}
}

func TestBudgetReclaimHysteresis(t *testing.T) {
	b := NewBudget(1)
	a := b.Register()
	z := b.Register()
	if !b.Acquire(a) {
		t.Fatalf("could not drain pool")
	}
	// Both members equally hot: no reclaim — two peers must not steal the
	// same slot back and forth.
	a.pressure.Store(5 * pressureBump)
	z.pressure.Store(5 * pressureBump)
	if b.Acquire(z) {
		t.Fatalf("acquisition succeeded on an empty pool")
	}
	if a.Owed() != 0 {
		t.Errorf("equally hot borrower flagged for reclaim (owed %d)", a.Owed())
	}
	// Strictly hotter requester does reclaim.
	z.pressure.Store(6 * pressureBump)
	b.Acquire(z)
	if a.Owed() != 1 {
		t.Errorf("calmer borrower not flagged (owed %d, want 1)", a.Owed())
	}
}

func TestBudgetNeverReclaimsNonBorrowers(t *testing.T) {
	b := NewBudget(1)
	idle := b.Register() // never borrows
	hot := b.Register()
	if !b.TryAcquire() {
		t.Fatalf("could not drain pool")
	}
	hot.pressure.Store(pressureBump)
	b.Acquire(hot)
	if idle.Owed() != 0 {
		t.Errorf("member with no loan flagged for reclaim (owed %d)", idle.Owed())
	}
}

// TestSeqCacheRepaysReclaimedSlots drives the full lending loop through two
// SeqCaches sharing one budget: the lukewarm cache borrows the pool dry,
// the hot cache's eviction pressure flags a reclaim, and the lukewarm
// cache's next write returns the slot — which the hot cache then borrows
// instead of evicting again.
func TestSeqCacheRepaysReclaimedSlots(t *testing.T) {
	iv := func(w float64) interval.Interval { return interval.Interval{Lo: 0, Hi: w} }
	b := NewBudget(1)
	luke := NewSeq(1, b)
	hot := NewSeq(1, b)

	luke.Put(0, iv(1), 1) // fills the base slot
	luke.Put(1, iv(2), 2) // borrows the pool's only slot
	if luke.Borrowed() != 1 || b.Slack() != 0 {
		t.Fatalf("setup: borrowed=%d slack=%d, want 1, 0", luke.Borrowed(), b.Slack())
	}

	// The hot cache fills its base, then churns: every further admission
	// finds the pool empty and must evict, bumping its pressure. The first
	// failed acquisition already flags the lukewarm cache.
	hot.Put(100, iv(9), 9)
	for k := 101; k < 105; k++ {
		hot.Put(k, iv(float64(105-k)), float64(105-k)) // narrower each time: evicts
	}
	if hot.Stats().Evicts == 0 {
		t.Fatalf("hot cache never evicted; churn setup broken")
	}
	if luke.lender.Owed() == 0 {
		t.Fatalf("lukewarm borrower never flagged for reclaim")
	}

	// The lukewarm cache's next write repays: one of its entries is evicted
	// (it is full at base+1) and the slot returns to the pool.
	luke.Put(0, iv(1), 1)
	if luke.Borrowed() != 0 {
		t.Errorf("lukewarm cache still holds the loan (borrowed %d)", luke.Borrowed())
	}
	if b.Slack() != 1 {
		t.Fatalf("repaid slot not in the pool (slack %d)", b.Slack())
	}
	if got := luke.Len(); got != 1 {
		t.Errorf("lukewarm cache len = %d after repayment, want 1", got)
	}

	// The hot cache's next admission borrows the repaid slot: no eviction.
	evBefore := hot.Stats().Evicts
	hot.Put(200, iv(100), 100) // wide candidate would lose the competition
	if hot.Stats().Evicts != evBefore {
		t.Errorf("hot cache evicted despite repaid slack")
	}
	if !hot.Contains(200) {
		t.Errorf("hot cache did not admit key 200 via the repaid slot")
	}
	if hot.Borrowed() != 1 {
		t.Errorf("hot.Borrowed = %d, want 1", hot.Borrowed())
	}
}

// TestSeqCacheRepayPrefersFreeCapacity: a lukewarm borrower with headroom
// (live below capacity) must repay without evicting anything.
func TestSeqCacheRepayPrefersFreeCapacity(t *testing.T) {
	iv := interval.Interval{Lo: 0, Hi: 1}
	b := NewBudget(1)
	luke := NewSeq(2, b)
	hot := NewSeq(1, b)
	luke.Put(0, iv, 1)
	luke.Put(1, iv, 1)
	luke.Put(2, iv, 1) // borrows: live 3 = base 2 + 1
	luke.Drop(2)       // live 2, but Drop already returned the loan
	// Re-borrow so a loan is outstanding while live < capacity.
	if !b.Acquire(luke.lender) {
		t.Fatalf("could not re-borrow")
	}
	hot.Put(100, iv, 1)
	hot.lender.pressure.Store(pressureBump)
	b.Acquire(hot.lender) // flags luke
	evBefore := luke.Stats().Evicts
	luke.Put(0, iv, 1) // repays from free capacity
	if luke.Stats().Evicts != evBefore {
		t.Errorf("repayment evicted despite free capacity")
	}
	if luke.Borrowed() != 0 || b.Slack() != 1 {
		t.Errorf("loan not repaid: borrowed=%d slack=%d", luke.Borrowed(), b.Slack())
	}
	if luke.Len() != 2 {
		t.Errorf("len = %d, want 2 (no entry lost)", luke.Len())
	}
}
