// Package cache implements the client-side store of interval approximations.
//
// A cache holds up to kappa approximations. When space runs out it evicts
// the entry with the widest original (pre-threshold) width, "since they are
// the least precise approximations and thus contribute least to overall
// cache precision" (Section 2). Eviction decisions use original widths, not
// the 0/Inf widths produced by the thresholds, and evictions are silent: the
// source is not notified, so it may keep refreshing an evicted entry, at
// which point the cache decides afresh whether the refreshed approximation
// is worth (re)admitting.
package cache

import (
	"fmt"
	"math"
	"sort"

	"apcache/internal/interval"
)

// Entry is one cached approximation.
type Entry struct {
	// Key identifies the source value.
	Key int
	// Interval is the effective approximation served to queries.
	Interval interval.Interval
	// OriginalWidth is the source's pre-threshold width, the eviction rank.
	OriginalWidth float64
}

// Cache stores up to a fixed number of approximations. It is not safe for
// concurrent use; the networked client wraps it with a mutex.
type Cache struct {
	capacity int
	entries  map[int]*Entry

	hits, misses   int
	admits, evicts int
	rejects        int
}

// New returns a cache holding at most capacity entries. Capacity must be
// positive.
func New(capacity int) *Cache {
	if capacity <= 0 {
		panic(fmt.Sprintf("cache: capacity must be positive, got %d", capacity))
	}
	return &Cache{capacity: capacity, entries: make(map[int]*Entry, capacity)}
}

// Capacity returns the maximum number of entries.
func (c *Cache) Capacity() int { return c.capacity }

// Len returns the current number of entries.
func (c *Cache) Len() int { return len(c.entries) }

// Get returns the approximation for key. The second result is false when
// the key is not cached (queries then treat it as unbounded).
func (c *Cache) Get(key int) (interval.Interval, bool) {
	e, ok := c.entries[key]
	if !ok {
		c.misses++
		return interval.Interval{}, false
	}
	c.hits++
	return e.Interval, true
}

// Peek is Get without touching the hit/miss statistics.
func (c *Cache) Peek(key int) (interval.Interval, bool) {
	e, ok := c.entries[key]
	if !ok {
		return interval.Interval{}, false
	}
	return e.Interval, true
}

// Contains reports whether key is cached without touching statistics.
func (c *Cache) Contains(key int) bool {
	_, ok := c.entries[key]
	return ok
}

// Put installs an approximation for key. If the key is already present its
// entry is replaced in place. Otherwise, if the cache is full, the candidate
// competes with the residents: the widest original width loses — possibly
// the candidate itself, which is then not admitted (Section 2: "the modified
// approximation may be cached and another evicted, or the modified
// approximation may still be the widest and remain uncached").
//
// Put returns the key that was evicted to make room, or (0, false) if
// nothing was evicted (including the case where the candidate was rejected —
// check Admitted via Contains if needed).
func (c *Cache) Put(key int, iv interval.Interval, originalWidth float64) (evicted int, didEvict bool) {
	if math.IsNaN(originalWidth) || originalWidth < 0 {
		panic(fmt.Sprintf("cache: bad original width %g", originalWidth))
	}
	if e, ok := c.entries[key]; ok {
		e.Interval = iv
		e.OriginalWidth = originalWidth
		return 0, false
	}
	if len(c.entries) < c.capacity {
		c.entries[key] = &Entry{Key: key, Interval: iv, OriginalWidth: originalWidth}
		c.admits++
		return 0, false
	}
	// Full: find the widest resident.
	widestKey, widest := 0, math.Inf(-1)
	for k, e := range c.entries {
		if e.OriginalWidth > widest || (e.OriginalWidth == widest && k < widestKey) {
			widestKey, widest = k, e.OriginalWidth
		}
	}
	if originalWidth >= widest {
		// The candidate is at least as wide as every resident: reject it.
		c.rejects++
		return 0, false
	}
	delete(c.entries, widestKey)
	c.evicts++
	c.entries[key] = &Entry{Key: key, Interval: iv, OriginalWidth: originalWidth}
	c.admits++
	return widestKey, true
}

// Drop removes key if present, returning whether it was cached. Drop models
// an explicit invalidation; per the paper no source notification occurs.
func (c *Cache) Drop(key int) bool {
	if _, ok := c.entries[key]; !ok {
		return false
	}
	delete(c.entries, key)
	c.evicts++
	return true
}

// Keys returns the cached keys in ascending order.
func (c *Cache) Keys() []int {
	keys := make([]int, 0, len(c.entries))
	for k := range c.entries {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// Entries returns copies of all entries ordered by ascending key.
func (c *Cache) Entries() []Entry {
	out := make([]Entry, 0, len(c.entries))
	for _, k := range c.Keys() {
		out = append(out, *c.entries[k])
	}
	return out
}

// Stats reports the cache's cumulative counters.
type Stats struct {
	Hits, Misses   int
	Admits, Evicts int
	Rejects        int
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	return Stats{Hits: c.hits, Misses: c.misses, Admits: c.admits, Evicts: c.evicts, Rejects: c.rejects}
}

// HitRate returns hits/(hits+misses), or 0 with no lookups.
func (c *Cache) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}
