package cache

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"apcache/internal/interval"
)

func TestSeqCachePutGetParity(t *testing.T) {
	c := NewSeq(2, nil)
	if c.Capacity() != 2 || c.Len() != 0 {
		t.Fatalf("fresh cache cap/len = %d/%d", c.Capacity(), c.Len())
	}
	if _, ok := c.Get(1); ok {
		t.Errorf("empty cache hit")
	}
	c.Put(1, interval.Centered(10, 4), 4)
	c.Put(2, interval.Centered(20, 8), 8)
	iv, ok := c.Get(1)
	if !ok || iv != interval.Centered(10, 4) {
		t.Errorf("Get(1) = %v, %v", iv, ok)
	}
	// Replacement in place.
	c.Put(1, interval.Centered(11, 2), 2)
	if iv, _ = c.Get(1); iv != interval.Centered(11, 2) {
		t.Errorf("replaced Get(1) = %v", iv)
	}
	// Full: a narrower candidate evicts the widest resident (key 2).
	evicted, did := c.Put(3, interval.Centered(30, 1), 1)
	if !did || evicted != 2 {
		t.Errorf("Put(3) evicted %d, %v; want 2, true", evicted, did)
	}
	if c.Contains(2) {
		t.Errorf("evicted key still cached")
	}
	// A wider candidate is rejected.
	if _, did := c.Put(4, interval.Centered(40, 50), 50); did {
		t.Errorf("widest candidate evicted a resident")
	}
	if c.Contains(4) {
		t.Errorf("rejected candidate admitted")
	}
	st := c.Stats()
	if st.Admits != 3 || st.Evicts != 1 || st.Rejects != 1 {
		t.Errorf("stats %+v, want 3 admits, 1 evict, 1 reject", st)
	}
	if got := c.Keys(); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("Keys() = %v, want [1 3]", got)
	}
	es := c.Entries()
	if len(es) != 2 || es[0].Key != 1 || es[1].Key != 3 || es[1].OriginalWidth != 1 {
		t.Errorf("Entries() = %+v", es)
	}
}

func TestSeqCacheDrop(t *testing.T) {
	c := NewSeq(4, nil)
	c.Put(7, interval.Exact(1), 0)
	if !c.Drop(7) || c.Drop(7) {
		t.Errorf("Drop semantics wrong")
	}
	if c.Len() != 0 || c.Contains(7) {
		t.Errorf("dropped key lingers")
	}
	// The tombstoned slot is reusable.
	c.Put(7, interval.Exact(2), 0)
	if iv, ok := c.Get(7); !ok || iv != interval.Exact(2) {
		t.Errorf("re-added key Get = %v, %v", iv, ok)
	}
}

func TestSeqCacheGrowsPastTableSize(t *testing.T) {
	// Base far beyond the initial probe table forces several rebuilds.
	c := NewSeq(10000, nil)
	for k := 0; k < 10000; k++ {
		c.Put(k, interval.Centered(float64(k), 2), 2)
	}
	if c.Len() != 10000 {
		t.Fatalf("Len = %d, want 10000", c.Len())
	}
	for k := 0; k < 10000; k += 97 {
		if iv, ok := c.Get(k); !ok || !iv.Valid(float64(k)) {
			t.Fatalf("key %d: Get = %v, %v", k, iv, ok)
		}
	}
}

func TestSeqCacheBudgetBorrowing(t *testing.T) {
	pool := NewBudget(3)
	a := NewSeq(1, pool)
	b := NewSeq(1, pool)
	// Shard a grows past its base by borrowing the whole pool.
	for k := 0; k < 4; k++ {
		a.Put(k, interval.Centered(float64(k), 1), 1)
	}
	if a.Len() != 4 || a.Borrowed() != 3 || a.Capacity() != 4 {
		t.Fatalf("a len/borrowed/cap = %d/%d/%d, want 4/3/4", a.Len(), a.Borrowed(), a.Capacity())
	}
	if pool.Slack() != 0 {
		t.Fatalf("pool slack %d, want 0", pool.Slack())
	}
	// Shard b is now capped at its base: admission falls back to eviction.
	b.Put(100, interval.Centered(0, 8), 8)
	if evicted, did := b.Put(101, interval.Centered(0, 2), 2); !did || evicted != 100 {
		t.Errorf("b.Put(101) = %d, %v; want eviction of 100", evicted, did)
	}
	if b.Borrowed() != 0 {
		t.Errorf("b borrowed %d slots from an empty pool", b.Borrowed())
	}
	// Dropping from a returns slots for b to claim.
	a.Drop(0)
	if pool.Slack() != 1 || a.Borrowed() != 2 {
		t.Fatalf("after drop: slack %d, a borrowed %d; want 1, 2", pool.Slack(), a.Borrowed())
	}
	b.Put(102, interval.Centered(0, 9), 9)
	if b.Len() != 2 || b.Borrowed() != 1 {
		t.Errorf("b len/borrowed = %d/%d, want 2/1 after reclaiming slack", b.Len(), b.Borrowed())
	}
}

func TestSeqCacheBadWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("negative width did not panic")
		}
	}()
	NewSeq(1, nil).Put(0, interval.Exact(0), -1)
}

// TestSeqCacheTornReads hammers one writer (serialized, as the shard mutex
// would) against many readers. Every interval ever written has Lo = -Hi, so
// any torn read — mixing endpoints of two refreshes — is detectable.
func TestSeqCacheTornReads(t *testing.T) {
	const keys, readers, writes = 64, 4, 20000
	c := NewSeq(keys, nil)
	for k := 0; k < keys; k++ {
		c.Put(k, interval.Interval{Lo: -1, Hi: 1}, 2)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := rng.Intn(keys)
				if iv, ok := c.Get(k); ok && iv.Lo != -iv.Hi {
					t.Errorf("torn read on key %d: %v", k, iv)
					return
				}
			}
		}(r)
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < writes; i++ {
		h := rng.Float64() * 1e9
		c.Put(rng.Intn(keys), interval.Interval{Lo: -h, Hi: h}, 2*h)
		if i%1024 == 0 {
			runtime.Gosched() // give single-P runs a chance to interleave readers
		}
	}
	close(stop)
	wg.Wait()
}

// TestSeqCacheConcurrentMembership races readers against a writer that
// churns membership (inserts, evictions, drops, rebuilds). Readers must
// never crash, block, or observe an interval under an impossible key.
func TestSeqCacheConcurrentMembership(t *testing.T) {
	const keySpace = 256
	pool := NewBudget(16)
	c := NewSeq(8, pool)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r) + 7))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := rng.Intn(keySpace)
				if iv, ok := c.Get(k); ok {
					// Every write for key k centers on k with width <= 4.
					if !iv.Valid(float64(k)) || iv.Width() > 4 || math.IsNaN(iv.Width()) {
						t.Errorf("key %d: impossible interval %v", k, iv)
						return
					}
				}
			}
		}(r)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 30000; i++ {
		k := rng.Intn(keySpace)
		switch rng.Intn(4) {
		case 0:
			c.Drop(k)
		default:
			c.Put(k, interval.Centered(float64(k), rng.Float64()*4), rng.Float64()*4)
		}
	}
	close(stop)
	wg.Wait()
	if c.Len() > c.Capacity() {
		t.Errorf("len %d exceeds capacity %d", c.Len(), c.Capacity())
	}
	st := c.Stats()
	if got := st.Admits - st.Evicts; got != c.Len() {
		t.Errorf("admits-evicts = %d disagrees with len %d", got, c.Len())
	}
}
