package cache

import (
	"math"
	"sync/atomic"

	"apcache/internal/shard"
)

// SeqValues is a lock-free exact-value table for the networked server's
// shards, built from the same ingredients as SeqCache's key index: an
// open-addressing probe table of padded atomic slots keyed by the HIGH bits
// of the shard hash, published states that only move empty -> full within
// one table, and growth by building a fresh table and swapping it in with
// one atomic pointer store (in-flight readers keep probing the frozen old
// table).
//
// Two deliberate simplifications relative to SeqCache:
//
//   - No tombstones. The protocol never deletes a source key (the paper's
//     source keeps subscriptions even for evicted entries), so slots never
//     need reclaiming and a reader that finds an empty slot has a definitive
//     miss — no recycled-slot revalidation required.
//
//   - No per-entry seqlock. The payload is one float64, stored as a single
//     atomic word, so a reader can never observe a torn value; the seqlock
//     machinery exists in SeqCache only because an interval is two words
//     that must be mutually consistent.
//
// Concurrency contract: Store is writer-only (externally serialized — the
// server calls it while holding the owning shard's mutex, ordered after the
// source-map update so a key visible here is always known to the source);
// Load, Contains, and Len may run from any goroutine at any time and never
// block a writer. A reader racing a writer may see the value as it was an
// instant ago — the same linearization slack a mutex would hide.
type SeqValues struct {
	table atomic.Pointer[valTable]
	live  atomic.Int64
}

// valSlot is padded to 32 bytes — two slots per cache line — so a probe's
// loads never straddle a line boundary. state publishes last: a reader that
// observes valFull is guaranteed to see the slot's key and bits.
type valSlot struct {
	key   atomic.Int64
	bits  atomic.Uint64
	state atomic.Uint32
	_     [32 - 20]byte
}

const (
	valEmpty uint32 = iota
	valFull
)

// valTable is one immutable-size probe table; shift positions the high hash
// bits onto the slot index.
type valTable struct {
	shift uint
	slots []valSlot
}

// NewSeqValues returns an empty table.
func NewSeqValues() *SeqValues {
	v := &SeqValues{}
	v.table.Store(newValTable(minSeqTable))
	return v
}

func newValTable(size int) *valTable {
	return &valTable{shift: uint(64 - log2(size)), slots: make([]valSlot, size)}
}

// Len returns the number of stored keys.
func (v *SeqValues) Len() int { return int(v.live.Load()) }

// lookup returns the slot holding key in the current table, or nil. Safe
// from any goroutine: with no tombstones an empty slot ends every probe
// chain for good.
func (v *SeqValues) lookup(key int) *valSlot {
	t := v.table.Load()
	mask := len(t.slots) - 1
	i := int(shard.Mix(key) >> t.shift)
	for probes := 0; probes <= mask; probes++ {
		s := &t.slots[i]
		if s.state.Load() == valEmpty {
			return nil
		}
		if s.key.Load() == int64(key) {
			return s
		}
		i = (i + 1) & mask
	}
	return nil
}

// Load returns the value stored for key. Lock-free.
func (v *SeqValues) Load(key int) (float64, bool) {
	if s := v.lookup(key); s != nil {
		return math.Float64frombits(s.bits.Load()), true
	}
	return 0, false
}

// Contains reports whether key is present. Lock-free.
func (v *SeqValues) Contains(key int) bool { return v.lookup(key) != nil }

// Store installs or updates key's value. Writer-only (externally
// serialized).
func (v *SeqValues) Store(key int, val float64) {
	bits := math.Float64bits(val)
	if s := v.lookup(key); s != nil {
		s.bits.Store(bits)
		return
	}
	t := v.table.Load()
	if (int(v.live.Load())+1)*4 > len(t.slots)*3 {
		t = v.grow()
	}
	mask := len(t.slots) - 1
	i := int(shard.Mix(key) >> t.shift)
	for t.slots[i].state.Load() == valFull {
		i = (i + 1) & mask
	}
	s := &t.slots[i]
	s.key.Store(int64(key))
	s.bits.Store(bits)
	s.state.Store(valFull) // publish last: readers check state first
	v.live.Add(1)
}

// grow publishes a doubled table. Readers still probing the old table see a
// frozen (and thereafter at worst slightly stale) snapshot; the next Load
// picks up the new pointer.
func (v *SeqValues) grow() *valTable {
	old := v.table.Load()
	size := minSeqTable
	for size < 2*(int(v.live.Load())+1) { // load factor <= 1/2 post-growth
		size <<= 1
	}
	t := newValTable(size)
	mask := size - 1
	for si := range old.slots {
		s := &old.slots[si]
		if s.state.Load() != valFull {
			continue
		}
		k := s.key.Load()
		i := int(shard.Mix(int(k)) >> t.shift)
		for t.slots[i].state.Load() == valFull {
			i = (i + 1) & mask
		}
		t.slots[i].key.Store(k)
		t.slots[i].bits.Store(s.bits.Load())
		t.slots[i].state.Store(valFull)
	}
	v.table.Store(t)
	return t
}
