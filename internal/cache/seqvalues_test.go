// Tests of the lock-free exact-value table: correctness of the probe
// table through growth, and race coverage for concurrent readers against a
// serialized writer (the server's usage pattern).
package cache

import (
	"math"
	"sync"
	"testing"
)

func TestSeqValuesStoreLoad(t *testing.T) {
	v := NewSeqValues()
	if _, ok := v.Load(0); ok {
		t.Fatalf("empty table reported a value")
	}
	if v.Contains(7) {
		t.Fatalf("empty table contains 7")
	}
	v.Store(7, 3.5)
	if got, ok := v.Load(7); !ok || got != 3.5 {
		t.Fatalf("Load(7) = %g, %v, want 3.5", got, ok)
	}
	v.Store(7, -1.25) // update in place
	if got, ok := v.Load(7); !ok || got != -1.25 {
		t.Fatalf("updated Load(7) = %g, %v, want -1.25", got, ok)
	}
	if v.Len() != 1 {
		t.Fatalf("Len = %d, want 1", v.Len())
	}
	// Special float values survive the bits round trip.
	v.Store(8, math.Inf(1))
	if got, _ := v.Load(8); !math.IsInf(got, 1) {
		t.Errorf("Load(8) = %g, want +Inf", got)
	}
	v.Store(9, 0.0)
	if got, ok := v.Load(9); !ok || got != 0 {
		t.Errorf("Load(9) = %g, %v, want 0, true", got, ok)
	}
}

func TestSeqValuesGrowth(t *testing.T) {
	v := NewSeqValues()
	const n = 10_000 // forces several table rebuilds past minSeqTable
	for k := 0; k < n; k++ {
		v.Store(k, float64(k)*1.5)
	}
	if v.Len() != n {
		t.Fatalf("Len = %d, want %d", v.Len(), n)
	}
	for k := 0; k < n; k++ {
		if got, ok := v.Load(k); !ok || got != float64(k)*1.5 {
			t.Fatalf("Load(%d) = %g, %v", k, got, ok)
		}
	}
	if _, ok := v.Load(n); ok {
		t.Fatalf("absent key found after growth")
	}
}

func TestSeqValuesConcurrentReaders(t *testing.T) {
	v := NewSeqValues()
	const keys = 512
	for k := 0; k < keys; k++ {
		v.Store(k, float64(k))
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := (i*7 + g) % (2 * keys)
				got, ok := v.Load(k)
				if k < keys {
					// Values only move k -> k+const increments; any
					// observed value must be >= the seed.
					if !ok || got < float64(k) {
						t.Errorf("Load(%d) = %g, %v during writes", k, got, ok)
						return
					}
				}
				// Keys >= keys appear concurrently; both outcomes are
				// legal, but a hit must carry the written value.
				if k >= keys && ok && got != float64(k) {
					t.Errorf("Load(%d) = %g after concurrent insert", k, got)
					return
				}
			}
		}(g)
	}
	// One serialized writer: in-place updates plus inserts that force
	// growth mid-read.
	for round := 0; round < 50; round++ {
		for k := 0; k < keys; k++ {
			v.Store(k, float64(k+round))
		}
		v.Store(keys+round, float64(keys+round))
	}
	close(stop)
	wg.Wait()
}
