package cache

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"apcache/internal/interval"
)

func TestPutGet(t *testing.T) {
	c := New(4)
	c.Put(1, interval.Interval{Lo: 0, Hi: 10}, 10)
	iv, ok := c.Get(1)
	if !ok || iv.Lo != 0 || iv.Hi != 10 {
		t.Fatalf("Get(1) = %v, %v", iv, ok)
	}
	if _, ok := c.Get(2); ok {
		t.Fatalf("Get(2) hit on empty key")
	}
	if c.Len() != 1 || c.Capacity() != 4 {
		t.Errorf("len/cap = %d/%d", c.Len(), c.Capacity())
	}
}

func TestPutReplacesInPlace(t *testing.T) {
	c := New(1)
	c.Put(1, interval.Exact(5), 0)
	evicted, did := c.Put(1, interval.Interval{Lo: 0, Hi: 10}, 10)
	if did {
		t.Fatalf("in-place replace evicted key %d", evicted)
	}
	iv, _ := c.Get(1)
	if iv.Width() != 10 {
		t.Errorf("replacement not applied: %v", iv)
	}
}

func TestEvictWidestOriginalWidth(t *testing.T) {
	c := New(2)
	c.Put(1, interval.Centered(0, 100), 100)
	c.Put(2, interval.Centered(0, 5), 5)
	evicted, did := c.Put(3, interval.Centered(0, 50), 50)
	if !did || evicted != 1 {
		t.Fatalf("evicted %d (%v), want key 1 (widest)", evicted, did)
	}
	if !c.Contains(3) || !c.Contains(2) || c.Contains(1) {
		t.Errorf("cache contents wrong: %v", c.Keys())
	}
}

func TestRejectWidestCandidate(t *testing.T) {
	c := New(2)
	c.Put(1, interval.Centered(0, 10), 10)
	c.Put(2, interval.Centered(0, 20), 20)
	_, did := c.Put(3, interval.Centered(0, 30), 30)
	if did {
		t.Fatalf("widest candidate caused an eviction")
	}
	if c.Contains(3) {
		t.Fatalf("widest candidate was admitted")
	}
	if got := c.Stats().Rejects; got != 1 {
		t.Errorf("rejects = %d, want 1", got)
	}
}

func TestEvictionUsesOriginalNotEffectiveWidth(t *testing.T) {
	// An entry whose effective interval is exact (width 0 via lambda0) but
	// whose original width is large must still be the eviction victim
	// (Section 2: eviction "is based on original widths, not on 0 or
	// infinity widths due to thresholds").
	c := New(2)
	c.Put(1, interval.Exact(5), 80) // thresholded to exact, original 80
	c.Put(2, interval.Centered(0, 10), 10)
	evicted, did := c.Put(3, interval.Centered(0, 20), 20)
	if !did || evicted != 1 {
		t.Fatalf("evicted %d, want key 1 by original width", evicted)
	}
}

func TestDrop(t *testing.T) {
	c := New(2)
	c.Put(1, interval.Exact(1), 0)
	if !c.Drop(1) {
		t.Fatalf("Drop(1) = false")
	}
	if c.Drop(1) {
		t.Fatalf("double Drop(1) = true")
	}
	if c.Len() != 0 {
		t.Errorf("Len = %d after drop", c.Len())
	}
}

func TestKeysAndEntriesSorted(t *testing.T) {
	c := New(5)
	for _, k := range []int{4, 1, 3} {
		c.Put(k, interval.Exact(float64(k)), float64(k))
	}
	keys := c.Keys()
	if len(keys) != 3 || keys[0] != 1 || keys[1] != 3 || keys[2] != 4 {
		t.Errorf("Keys = %v", keys)
	}
	entries := c.Entries()
	for i, e := range entries {
		if e.Key != keys[i] {
			t.Errorf("Entries[%d].Key = %d, want %d", i, e.Key, keys[i])
		}
	}
}

func TestStatsAndHitRate(t *testing.T) {
	c := New(2)
	c.Put(1, interval.Exact(1), 0)
	c.Get(1)
	c.Get(1)
	c.Get(9)
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 1 || s.Admits != 1 {
		t.Errorf("stats = %+v", s)
	}
	if got := c.HitRate(); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("HitRate = %g", got)
	}
	empty := New(1)
	if empty.HitRate() != 0 {
		t.Errorf("empty HitRate = %g", empty.HitRate())
	}
}

func TestPeekDoesNotTouchStats(t *testing.T) {
	c := New(2)
	c.Put(1, interval.Exact(1), 0)
	c.Peek(1)
	c.Peek(2)
	s := c.Stats()
	if s.Hits != 0 || s.Misses != 0 {
		t.Errorf("Peek touched stats: %+v", s)
	}
}

func TestNewPanicsOnBadCapacity(t *testing.T) {
	for _, cap := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", cap)
				}
			}()
			New(cap)
		}()
	}
}

func TestPutPanicsOnBadWidth(t *testing.T) {
	c := New(1)
	for _, w := range []float64{-1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Put with width %g did not panic", w)
				}
			}()
			c.Put(1, interval.Exact(0), w)
		}()
	}
}

func TestQuickNeverExceedsCapacity(t *testing.T) {
	f := func(seed int64, capRaw, opsRaw uint8) bool {
		capacity := int(capRaw)%8 + 1
		ops := int(opsRaw)
		rng := rand.New(rand.NewSource(seed))
		c := New(capacity)
		for i := 0; i < ops; i++ {
			key := rng.Intn(16)
			switch rng.Intn(3) {
			case 0, 1:
				w := rng.Float64() * 100
				c.Put(key, interval.Centered(0, w), w)
			case 2:
				c.Drop(key)
			}
			if c.Len() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickEvictionVictimIsWidest(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(4)
		widths := map[int]float64{}
		for k := 0; k < 4; k++ {
			w := rng.Float64() * 100
			widths[k] = w
			c.Put(k, interval.Centered(0, w), w)
		}
		newW := rng.Float64() * 100
		evicted, did := c.Put(99, interval.Centered(0, newW), newW)
		if !did {
			// Rejected: candidate must be >= all residents.
			for _, w := range widths {
				if newW < w {
					return false
				}
			}
			return true
		}
		// Evicted key must have had the maximum width among residents.
		for _, w := range widths {
			if widths[evicted] < w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
