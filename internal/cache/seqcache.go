package cache

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync/atomic"

	"apcache/internal/interval"
	"apcache/internal/shard"
	"apcache/internal/stats"
)

// SeqCache is the concurrent variant of Cache used by the sharded Store: the
// same admission and eviction policy (widest original width loses), but with
// a read path that takes no lock of any kind.
//
// Concurrency contract: WRITERS MUST BE EXTERNALLY SERIALIZED — the Store
// calls Put/Drop/Entries only while holding the owning shard's mutex.
// Readers (Get, Peek, Contains, Len, Capacity, Stats) may run from any
// goroutine at any time, including concurrently with a writer, and never
// block it.
//
// Two structures make that safe:
//
//   - Each entry is a seqlock: an even/odd version counter beside the
//     interval's endpoint bits. The writer bumps the counter to odd, stores
//     the new endpoints, and bumps it back to even; a reader rereads until it
//     observes the same even version on both sides of its loads, so it can
//     never return a torn [Lo, Hi] pair mixing two refreshes.
//
//   - The key index is an open-addressing table of atomic slots probed with
//     the HIGH bits of the shard hash (the low bits are constant within a
//     shard). Slot states only move empty -> full -> tombstone -> full within
//     one table, so a reader that finds an empty slot can safely conclude a
//     miss; growth and tombstone compaction build a fresh table and publish
//     it with one atomic pointer store, leaving in-flight readers on a frozen
//     (and therefore still consistent, at worst slightly stale) snapshot.
//     Because a tombstoned slot can be re-used for a different key while a
//     reader is parked on it, entries carry their own immutable key and the
//     reader re-validates against it after resolving the pointer.
//
// A reader racing a writer may observe the cache as it was an instant ago —
// an entry that was just dropped, or not yet the one just admitted. That is
// the same linearization slack a mutex would hide, and the approximations
// themselves remain exactly as valid as the protocol guarantees.
type SeqCache struct {
	base   int     // guaranteed slots, before any borrowing
	budget *Budget // shared slack pool; nil means the base is a hard cap
	lender *Lender // this cache's borrowing account with the budget

	table atomic.Pointer[seqTable]

	// Reader-bumped hit/miss accounting, striped by key bits across padded
	// counter blocks. A single pair of atomics here would put every reader
	// of the shard on one cache line and serialize the lock-free Get path
	// almost as thoroughly as the mutex it replaced; with the stripes,
	// concurrent readers of different keys land on different lines and the
	// counters stay exact (Stats sums the stripes).
	hitmiss *stats.Stripes

	// Writer-owned state; live is an atomic only so lock-free
	// Stats/Len/Capacity readers can load it. The borrowed-slot count lives
	// in the lender account, shared with the budget's pressure ranking.
	live    atomic.Int64
	tombs   int
	admits  atomic.Int64
	evicts  atomic.Int64
	rejects atomic.Int64
}

// Slot states. Within one table a slot only ever moves empty -> full and
// full <-> tombstone; empty slots stay empty until the table is replaced, so
// probe chains never shrink under a reader.
const (
	slotEmpty uint32 = iota
	slotTomb
	slotFull
)

// seqSlot is padded to 32 bytes: exactly two slots per cache line, so a
// probe's three loads never span a line boundary.
type seqSlot struct {
	state atomic.Uint32
	key   atomic.Int64
	e     atomic.Pointer[seqEntry]
	_     [32 - 24]byte
}

// seqTable is one immutable-size probe table. shift positions the high hash
// bits onto the slot index.
type seqTable struct {
	shift uint
	slots []seqSlot
}

// seqEntry is one cached approximation behind a seqlock. key never changes
// after creation; the interval and width fields change only under the
// version protocol. The struct is padded to exactly one cache line (and so
// allocated line-aligned by the size-class allocator): a refresh writing one
// entry must not invalidate readers parked on a neighboring entry, and a
// reader's [seq, lo, hi] loads must not straddle two lines.
type seqEntry struct {
	key  int64
	seq  atomic.Uint32
	lo   atomic.Uint64
	hi   atomic.Uint64
	orig atomic.Uint64 // original (pre-threshold) width bits, the eviction rank
	_    [64 - 40]byte
}

// write installs a new approximation. Writer-only (externally serialized).
func (e *seqEntry) write(iv interval.Interval, originalWidth float64) {
	e.seq.Add(1) // odd: readers hold off
	e.lo.Store(math.Float64bits(iv.Lo))
	e.hi.Store(math.Float64bits(iv.Hi))
	e.orig.Store(math.Float64bits(originalWidth))
	e.seq.Add(1) // even again: new value published
}

// read returns a consistent [Lo, Hi] snapshot, retrying torn sequences.
func (e *seqEntry) read() interval.Interval {
	for spin := 0; ; spin++ {
		s1 := e.seq.Load()
		if s1&1 == 0 {
			lo := e.lo.Load()
			hi := e.hi.Load()
			if e.seq.Load() == s1 {
				return interval.Interval{Lo: math.Float64frombits(lo), Hi: math.Float64frombits(hi)}
			}
		}
		if spin%16 == 15 {
			// The writer holding the odd sequence was preempted; let it run.
			runtime.Gosched()
		}
	}
}

// originalWidth reads the eviction rank. Writer-only contexts may also read
// it directly; going through the seqlock keeps it safe from either side.
func (e *seqEntry) originalWidth() float64 {
	for spin := 0; ; spin++ {
		s1 := e.seq.Load()
		if s1&1 == 0 {
			w := e.orig.Load()
			if e.seq.Load() == s1 {
				return math.Float64frombits(w)
			}
		}
		if spin%16 == 15 {
			runtime.Gosched()
		}
	}
}

const minSeqTable = 16

// Read-counter striping: stripes and the counters per stripe.
const (
	readStripes = 32
	cHit        = 0
	cMiss       = 1
)

// readStripe picks a key's hit/miss stripe from mix bits that neither the
// shard selector (low bits) nor the probe table (top bits shifted by table
// size) pins down for typical sizes.
func readStripe(h uint64) int {
	return int((h >> 16) & (readStripes - 1))
}

// NewSeq returns a concurrent cache with the given guaranteed base capacity,
// optionally borrowing extra slots from a shared budget. Base must be
// positive.
func NewSeq(base int, budget *Budget) *SeqCache {
	if base <= 0 {
		panic(fmt.Sprintf("cache: capacity must be positive, got %d", base))
	}
	c := &SeqCache{base: base, budget: budget, hitmiss: stats.NewStripes(readStripes, 2)}
	if budget != nil {
		c.lender = budget.Register()
	}
	c.table.Store(newSeqTable(minSeqTable))
	return c
}

func newSeqTable(size int) *seqTable {
	return &seqTable{shift: uint(64 - log2(size)), slots: make([]seqSlot, size)}
}

// log2 of a power of two.
func log2(n int) int {
	b := 0
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}

// Base returns the guaranteed (pre-borrowing) capacity.
func (c *SeqCache) Base() int { return c.base }

// Capacity returns the current maximum entry count: the guaranteed base plus
// whatever the cache has borrowed from the shared budget. Unlike the
// sequential Cache it is a moving bound, growing under pressure while the
// pool has slack and shrinking as entries are dropped or reclaimed by the
// budget's pressure ranking.
func (c *SeqCache) Capacity() int { return c.base + c.Borrowed() }

// Borrowed returns how many slots are currently on loan from the budget.
func (c *SeqCache) Borrowed() int {
	if c.lender == nil {
		return 0
	}
	return c.lender.Borrowed()
}

// Len returns the current number of entries.
func (c *SeqCache) Len() int { return int(c.live.Load()) }

// lookup returns the live entry for key, or nil, without touching counters.
// Safe from any goroutine.
func (c *SeqCache) lookup(key int) *seqEntry {
	return c.lookupHash(key, shard.Mix(key))
}

// lookupHash is lookup with the key's mix precomputed, so the hot Get path
// hashes each key exactly once.
func (c *SeqCache) lookupHash(key int, h uint64) *seqEntry {
	t := c.table.Load()
	mask := len(t.slots) - 1
	i := int(h >> t.shift)
	for probes := 0; probes <= mask; probes++ {
		s := &t.slots[i]
		switch s.state.Load() {
		case slotEmpty:
			return nil
		case slotFull:
			if s.key.Load() == int64(key) {
				// The slot may be recycled for a different key between the
				// state and pointer loads; the entry's immutable key settles it.
				if e := s.e.Load(); e != nil && e.key == int64(key) {
					return e
				}
			}
		}
		i = (i + 1) & mask
	}
	return nil
}

// Get returns the approximation for key. Lock-free; never blocks a writer.
func (c *SeqCache) Get(key int) (interval.Interval, bool) {
	h := shard.Mix(key)
	if e := c.lookupHash(key, h); e != nil {
		iv := e.read()
		c.hitmiss.Inc(readStripe(h), cHit)
		return iv, true
	}
	c.hitmiss.Inc(readStripe(h), cMiss)
	return interval.Interval{}, false
}

// Peek is Get without touching the hit/miss statistics.
func (c *SeqCache) Peek(key int) (interval.Interval, bool) {
	if e := c.lookup(key); e != nil {
		return e.read(), true
	}
	return interval.Interval{}, false
}

// Contains reports whether key is cached without touching statistics.
func (c *SeqCache) Contains(key int) bool { return c.lookup(key) != nil }

// findSlot returns the index of key's live slot in t, or -1. Writer-only.
func (c *SeqCache) findSlot(t *seqTable, key int) int {
	mask := len(t.slots) - 1
	i := int(shard.Mix(key) >> t.shift)
	for probes := 0; probes <= mask; probes++ {
		s := &t.slots[i]
		switch s.state.Load() {
		case slotEmpty:
			return -1
		case slotFull:
			if s.key.Load() == int64(key) {
				return i
			}
		}
		i = (i + 1) & mask
	}
	return -1
}

// insert places a new entry, growing or compacting the table first if the
// load factor (live plus tombstones) would exceed 3/4. Writer-only; the key
// must not already be present.
func (c *SeqCache) insert(e *seqEntry) {
	t := c.table.Load()
	if (int(c.live.Load())+c.tombs+1)*4 > len(t.slots)*3 {
		t = c.rebuild()
	}
	mask := len(t.slots) - 1
	i := int(shard.Mix(int(e.key)) >> t.shift)
	firstTomb := -1
	for {
		s := &t.slots[i]
		st := s.state.Load()
		if st == slotEmpty {
			if firstTomb >= 0 {
				i, s = firstTomb, &t.slots[firstTomb]
				c.tombs--
			}
			s.key.Store(e.key)
			s.e.Store(e)
			s.state.Store(slotFull) // publish last: readers check state first
			c.live.Add(1)
			return
		}
		if st == slotTomb && firstTomb < 0 {
			firstTomb = i
		}
		i = (i + 1) & mask
	}
}

// rebuild publishes a fresh table sized for the live entries (doubling
// headroom, tombstones discarded). In-flight readers keep probing the frozen
// old table, which remains internally consistent forever.
func (c *SeqCache) rebuild() *seqTable {
	old := c.table.Load()
	size := minSeqTable
	for size < 2*(int(c.live.Load())+1) { // target load factor <= 1/2 post-rebuild
		size <<= 1
	}
	t := newSeqTable(size)
	mask := size - 1
	for si := range old.slots {
		s := &old.slots[si]
		if s.state.Load() != slotFull {
			continue
		}
		e := s.e.Load()
		i := int(shard.Mix(int(e.key)) >> t.shift)
		for t.slots[i].state.Load() == slotFull {
			i = (i + 1) & mask
		}
		t.slots[i].key.Store(e.key)
		t.slots[i].e.Store(e)
		t.slots[i].state.Store(slotFull)
	}
	c.tombs = 0
	c.table.Store(t)
	return t
}

// removeAt tombstones slot i of the current table. Writer-only.
func (c *SeqCache) removeAt(t *seqTable, i int) {
	t.slots[i].state.Store(slotTomb)
	c.tombs++
	c.live.Add(-1)
}

// widestEntry returns the widest resident entry's key, slot index, and
// original width (ties broken toward the smaller key), skipping the exclude
// key; (-1 index) when no eligible entry exists. Writer-only.
func (c *SeqCache) widestEntry(t *seqTable, exclude int) (key, idx int, width float64) {
	key, idx, width = 0, -1, math.Inf(-1)
	for i := range t.slots {
		s := &t.slots[i]
		if s.state.Load() != slotFull {
			continue
		}
		e := s.e.Load()
		k := int(e.key)
		if k == exclude {
			continue
		}
		w := e.originalWidth()
		if w > width || (w == width && k < key) {
			key, idx, width = k, i, w
		}
	}
	return key, idx, width
}

// repay settles any slots the budget has flagged for return (a hotter shard
// found the pool empty), before the current write consumes space: unused
// borrowed capacity is handed back directly, and a full cache evicts its
// widest entry — excluding the key being written — to free the slot. Each
// returned slot releases pool slack for the flagging shard's next
// acquisition. Writer-only.
func (c *SeqCache) repay(t *seqTable, exclude int) {
	if c.lender == nil {
		return
	}
	for c.lender.owed.Load() > 0 && c.lender.borrowed.Load() > 0 {
		if int(c.live.Load()) >= c.Capacity() {
			_, idx, _ := c.widestEntry(t, exclude)
			if idx < 0 {
				break // only the excluded key is resident; keep the loan
			}
			c.removeAt(t, idx)
			c.evicts.Add(1)
		}
		c.budget.releaseFrom(c.lender)
	}
	if c.lender.borrowed.Load() == 0 && c.lender.owed.Load() > 0 {
		// Over-flagged: nothing is on loan anymore, so the residual owed
		// count must not linger and tax future borrowing.
		c.lender.owed.Store(0)
	}
}

// Put installs an approximation for key, with the same policy as
// Cache.Put: in-place replacement for resident keys; admission while below
// capacity; then one borrowed budget slot if the shared pool has slack; and
// only then the eviction competition, where the widest original width loses
// — possibly the candidate itself, which is then rejected.
//
// Every Put first repays slots the budget has reclaimed for hotter shards
// and ages this cache's eviction-pressure score; evictions and rejections
// bump the score, ranking the cache in the budget's lending order.
//
// Put returns the key that was evicted to make room, or (0, false) if
// nothing was evicted. Writer-only.
func (c *SeqCache) Put(key int, iv interval.Interval, originalWidth float64) (evicted int, didEvict bool) {
	if math.IsNaN(originalWidth) || originalWidth < 0 {
		panic(fmt.Sprintf("cache: bad original width %g", originalWidth))
	}
	t := c.table.Load()
	if c.lender != nil {
		c.lender.decay()
		c.repay(t, key)
	}
	if i := c.findSlot(t, key); i >= 0 {
		t.slots[i].e.Load().write(iv, originalWidth)
		return 0, false
	}
	admit := func() {
		e := &seqEntry{key: int64(key)}
		e.write(iv, originalWidth)
		c.insert(e)
		c.admits.Add(1)
	}
	if int(c.live.Load()) < c.Capacity() {
		admit()
		return 0, false
	}
	if c.lender != nil && c.budget.Acquire(c.lender) {
		admit()
		return 0, false
	}
	// Full and no slack anywhere: eviction competition over original widths.
	widestKey, widestIdx, widest := c.widestEntry(t, key)
	if widestIdx < 0 || originalWidth >= widest {
		// The candidate is at least as wide as every resident: reject it.
		c.rejects.Add(1)
		if c.lender != nil {
			c.lender.bump()
		}
		return 0, false
	}
	c.removeAt(t, widestIdx)
	c.evicts.Add(1)
	if c.lender != nil {
		c.lender.bump()
	}
	admit()
	return widestKey, true
}

// Drop removes key if present, returning whether it was cached. A borrowed
// slot freed by the drop goes back to the shared budget (settling any
// reclaim flag first). Writer-only.
func (c *SeqCache) Drop(key int) bool {
	t := c.table.Load()
	i := c.findSlot(t, key)
	if i < 0 {
		return false
	}
	c.removeAt(t, i)
	c.evicts.Add(1)
	if c.lender != nil && c.lender.borrowed.Load() > 0 {
		c.budget.releaseFrom(c.lender)
	}
	return true
}

// Keys returns the cached keys in ascending order. Writer-only (the
// sequential snapshot callers hold every shard lock).
func (c *SeqCache) Keys() []int {
	t := c.table.Load()
	keys := make([]int, 0, c.Len())
	for i := range t.slots {
		if t.slots[i].state.Load() == slotFull {
			keys = append(keys, int(t.slots[i].e.Load().key))
		}
	}
	sort.Ints(keys)
	return keys
}

// Entries returns copies of all entries ordered by ascending key. Writer-only.
func (c *SeqCache) Entries() []Entry {
	t := c.table.Load()
	out := make([]Entry, 0, c.Len())
	for i := range t.slots {
		if t.slots[i].state.Load() != slotFull {
			continue
		}
		e := t.slots[i].e.Load()
		out = append(out, Entry{Key: int(e.key), Interval: e.read(), OriginalWidth: e.originalWidth()})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Key < out[b].Key })
	return out
}

// Entry returns a copy of key's cached entry, if present. Like Entries it
// is writer-only: snapshot callers hold the owning shard's lock.
func (c *SeqCache) Entry(key int) (Entry, bool) {
	if e := c.lookup(key); e != nil {
		return Entry{Key: key, Interval: e.read(), OriginalWidth: e.originalWidth()}, true
	}
	return Entry{}, false
}

// Stats returns a snapshot of the counters. Lock-free.
func (c *SeqCache) Stats() Stats {
	return Stats{
		Hits:    int(c.hitmiss.Sum(cHit)),
		Misses:  int(c.hitmiss.Sum(cMiss)),
		Admits:  int(c.admits.Load()),
		Evicts:  int(c.evicts.Load()),
		Rejects: int(c.rejects.Load()),
	}
}
