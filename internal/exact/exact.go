// Package exact implements the adaptive exact-caching baseline the study
// compares against (Section 4.6), derived from the replication algorithm of
// Wolfson, Jajodia and Huang [WJH97]: per data value, count requested reads
// r and writes w; every x accesses reevaluate, caching the value iff the
// projected cost of caching (w remote writes, w*Cvr) is below the projected
// cost of not caching (r remote reads, r*Cqr). With limited cache space,
// values with the lowest cost difference Cnc - Cc are evicted and — unlike
// the approximate-caching protocol — the source is notified, so it stops
// pushing updates for evicted values.
//
// Exact caching has no approximations, so query precision constraints are
// irrelevant: a cached value is exact and free to read; an uncached value
// must be fetched remotely no matter how loose the constraint. This is why
// the exact-caching curves in Figures 10-13 are flat in davg.
package exact

import (
	"fmt"
	"math"
	"math/rand"

	"apcache/internal/stats"
	"apcache/internal/workload"
)

// Config describes one exact-caching simulation run.
type Config struct {
	// NumSources is n.
	NumSources int
	// CacheSize is kappa; 0 means NumSources.
	CacheSize int
	// Cvr and Cqr are the refresh costs (remote write / remote read).
	Cvr, Cqr float64
	// X is the reevaluation window: each value's caching decision is
	// recomputed whenever its r+w reaches X. The study sweeps X from 3 to
	// 45 and reports the best.
	X int
	// Updates builds each source's update stream.
	Updates func(key int, rng *rand.Rand) workload.UpdateSource
	// Tq is the query period in seconds.
	Tq float64
	// KeysPerQuery is how many sources each query touches.
	KeysPerQuery int
	// Duration and Warmup are in seconds.
	Duration, Warmup float64
	// Seed makes the run deterministic.
	Seed int64
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.NumSources <= 0:
		return fmt.Errorf("exact: NumSources must be positive, got %d", c.NumSources)
	case c.CacheSize < 0 || c.CacheSize > c.NumSources:
		return fmt.Errorf("exact: CacheSize %d out of range 0..%d", c.CacheSize, c.NumSources)
	case c.Cvr < 0 || c.Cqr <= 0:
		return fmt.Errorf("exact: bad costs Cvr=%g Cqr=%g", c.Cvr, c.Cqr)
	case c.X < 1:
		return fmt.Errorf("exact: X must be >= 1, got %d", c.X)
	case c.Updates == nil:
		return fmt.Errorf("exact: Updates factory is required")
	case c.Tq <= 0:
		return fmt.Errorf("exact: Tq must be positive, got %g", c.Tq)
	case c.KeysPerQuery <= 0 || c.KeysPerQuery > c.NumSources:
		return fmt.Errorf("exact: KeysPerQuery %d out of range 1..%d", c.KeysPerQuery, c.NumSources)
	case c.Duration <= 0:
		return fmt.Errorf("exact: Duration must be positive, got %g", c.Duration)
	case c.Warmup < 0 || c.Warmup >= c.Duration:
		return fmt.Errorf("exact: Warmup %g out of range [0, %g)", c.Warmup, c.Duration)
	}
	return nil
}

// Result carries one run's measurements.
type Result struct {
	// CostRate is the post-warm-up average cost per second.
	CostRate float64
	// Pvr and Pqr are the measured refresh (write-propagation / remote
	// read) rates per second.
	Pvr, Pqr float64
	// Cached is the number of values cached at the end of the run.
	Cached int
	// Reevaluations counts caching-decision recomputations.
	Reevaluations int
}

// valueState is the per-value bookkeeping of the WJH97 algorithm.
type valueState struct {
	cached bool
	r, w   int // accesses since the last reevaluation
}

// benefit is the projected saving from caching: Cnc - Cc = r*Cqr - w*Cvr.
func (v *valueState) benefit(cvr, cqr float64) float64 {
	return float64(v.r)*cqr - float64(v.w)*cvr
}

// Run executes one exact-caching simulation.
func Run(cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	kappa := cfg.CacheSize
	if kappa == 0 {
		kappa = cfg.NumSources
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	updates := make([]workload.UpdateSource, cfg.NumSources)
	values := make([]float64, cfg.NumSources)
	states := make([]*valueState, cfg.NumSources)
	for i := range updates {
		updates[i] = cfg.Updates(i, rng)
		values[i] = updates[i].Value()
		states[i] = &valueState{}
	}
	cachedCount := 0
	meter := stats.NewCostMeter(cfg.Warmup)
	res := Result{}

	// reevaluate applies the WJH97 decision rule for key, evicting the
	// lowest-benefit resident if admission needs space.
	reevaluate := func(key int) {
		st := states[key]
		if st.r+st.w < cfg.X {
			return
		}
		res.Reevaluations++
		cc := float64(st.w) * cfg.Cvr
		cnc := float64(st.r) * cfg.Cqr
		want := cc < cnc
		switch {
		case want && !st.cached:
			if cachedCount < kappa {
				st.cached = true
				cachedCount++
			} else {
				// Evict the resident with the lowest benefit if the
				// candidate beats it; the source is notified (free).
				worst, worstB := -1, math.Inf(1)
				for k, other := range states {
					if other.cached && other.benefit(cfg.Cvr, cfg.Cqr) < worstB {
						worst, worstB = k, other.benefit(cfg.Cvr, cfg.Cqr)
					}
				}
				if worst >= 0 && st.benefit(cfg.Cvr, cfg.Cqr) > worstB {
					states[worst].cached = false
					st.cached = true
				}
			}
		case !want && st.cached:
			st.cached = false
			cachedCount--
		}
		st.r, st.w = 0, 0
	}

	// sampleKeys draws KeysPerQuery distinct keys.
	sampleKeys := func() []int {
		idx := make([]int, cfg.NumSources)
		for i := range idx {
			idx[i] = i
		}
		for i := 0; i < cfg.KeysPerQuery; i++ {
			j := i + rng.Intn(cfg.NumSources-i)
			idx[i], idx[j] = idx[j], idx[i]
		}
		return idx[:cfg.KeysPerQuery]
	}

	nextUpdate, nextQuery := 1.0, cfg.Tq
	for {
		now := math.Min(nextUpdate, nextQuery)
		if now > cfg.Duration {
			break
		}
		if nextUpdate <= nextQuery {
			// Update event: every source advances; a changed value counts
			// as a write and, if cached, must be propagated (cost Cvr).
			for i, u := range updates {
				v := u.Step()
				if v == values[i] {
					continue
				}
				values[i] = v
				states[i].w++
				if states[i].cached {
					meter.ValueRefresh(now, cfg.Cvr)
				}
				reevaluate(i)
			}
			nextUpdate++
		} else {
			// Query event: every touched key is a read; uncached keys are
			// fetched remotely (cost Cqr).
			for _, k := range sampleKeys() {
				states[k].r++
				if !states[k].cached {
					meter.QueryRefresh(now, cfg.Cqr)
				}
				reevaluate(k)
			}
			nextQuery += cfg.Tq
		}
	}
	meter.Tick(cfg.Duration)

	res.CostRate = meter.Rate()
	res.Pvr, res.Pqr = meter.RefreshRates()
	res.Cached = cachedCount
	return res, nil
}

// BestX sweeps X over xs and returns the lowest cost rate found with the X
// achieving it, mirroring the study's per-run tuning ("we first determined
// the best setting for parameter x ... which varied from 3 to 45").
func BestX(cfg Config, xs []int) (best Result, bestX int, err error) {
	if len(xs) == 0 {
		return Result{}, 0, fmt.Errorf("exact: empty X sweep")
	}
	best.CostRate = math.Inf(1)
	for _, x := range xs {
		c := cfg
		c.X = x
		r, runErr := Run(c)
		if runErr != nil {
			return Result{}, 0, runErr
		}
		if r.CostRate < best.CostRate {
			best, bestX = r, x
		}
	}
	return best, bestX, nil
}

// DefaultXSweep returns the study's X range, 3..45 in steps of 6.
func DefaultXSweep() []int {
	var xs []int
	for x := 3; x <= 45; x += 6 {
		xs = append(xs, x)
	}
	return xs
}
