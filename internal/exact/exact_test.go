package exact

import (
	"math"
	"math/rand"
	"testing"

	"apcache/internal/workload"
)

func baseConfig() Config {
	return Config{
		NumSources: 5,
		Cvr:        1,
		Cqr:        2,
		X:          9,
		Updates: func(key int, rng *rand.Rand) workload.UpdateSource {
			return workload.NewRandomWalk(0, 0.5, 1.5, rng)
		},
		Tq:           2,
		KeysPerQuery: 3,
		Duration:     3000,
		Warmup:       300,
		Seed:         1,
	}
}

func TestRunProducesActivity(t *testing.T) {
	res, err := Run(baseConfig())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.CostRate <= 0 {
		t.Errorf("CostRate = %g", res.CostRate)
	}
	if res.Reevaluations == 0 {
		t.Errorf("no reevaluations")
	}
}

func TestDeterministic(t *testing.T) {
	a, _ := Run(baseConfig())
	b, _ := Run(baseConfig())
	if a.CostRate != b.CostRate || a.Reevaluations != b.Reevaluations {
		t.Errorf("same-seed runs differ")
	}
}

func TestReadHeavyWorkloadCaches(t *testing.T) {
	// Values that never change but are read constantly should end up
	// cached (w=0 => Cc=0 < Cnc).
	cfg := baseConfig()
	cfg.Updates = func(key int, rng *rand.Rand) workload.UpdateSource {
		return workload.NewPlayback(make([]float64, 10)) // constant zero
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached != cfg.NumSources {
		t.Errorf("cached %d of %d constant values", res.Cached, cfg.NumSources)
	}
	// Steady state: everything cached, nothing changes: zero cost.
	if res.CostRate > 0.2 {
		t.Errorf("cost rate %g for constant data, want ~0", res.CostRate)
	}
}

func TestWriteHeavyWorkloadDoesNotCache(t *testing.T) {
	// Rarely-queried, constantly-written values should not be cached:
	// with Tq large, reads are rare.
	cfg := baseConfig()
	cfg.Tq = 50
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached != 0 {
		t.Errorf("cached %d write-heavy values, want 0", res.Cached)
	}
	// Cost rate approaches the remote-read rate: KeysPerQuery/Tq * Cqr.
	want := float64(cfg.KeysPerQuery) / cfg.Tq * cfg.Cqr
	if math.Abs(res.CostRate-want) > want*0.5 {
		t.Errorf("cost rate %g, want ~%g", res.CostRate, want)
	}
}

func TestCapacityRespected(t *testing.T) {
	cfg := baseConfig()
	cfg.CacheSize = 2
	cfg.Updates = func(key int, rng *rand.Rand) workload.UpdateSource {
		return workload.NewPlayback(make([]float64, 10))
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached > 2 {
		t.Errorf("cached %d > capacity 2", res.Cached)
	}
}

func TestBestXFindsMinimum(t *testing.T) {
	cfg := baseConfig()
	best, bestX, err := BestX(cfg, []int{3, 9, 21, 45})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, x := range []int{3, 9, 21, 45} {
		c := cfg
		c.X = x
		r, _ := Run(c)
		if r.CostRate < best.CostRate-1e-12 {
			t.Errorf("BestX missed better X=%d (%g < %g)", x, r.CostRate, best.CostRate)
		}
		if x == bestX {
			found = true
		}
	}
	if !found {
		t.Errorf("bestX=%d not in sweep", bestX)
	}
}

func TestBestXEmptySweep(t *testing.T) {
	if _, _, err := BestX(baseConfig(), nil); err == nil {
		t.Errorf("empty sweep accepted")
	}
}

func TestDefaultXSweep(t *testing.T) {
	xs := DefaultXSweep()
	if xs[0] != 3 || xs[len(xs)-1] != 45 {
		t.Errorf("sweep = %v, want 3..45", xs)
	}
}

func TestConfigValidate(t *testing.T) {
	good := baseConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.NumSources = 0 },
		func(c *Config) { c.CacheSize = 99 },
		func(c *Config) { c.Cqr = 0 },
		func(c *Config) { c.Cvr = -1 },
		func(c *Config) { c.X = 0 },
		func(c *Config) { c.Updates = nil },
		func(c *Config) { c.Tq = 0 },
		func(c *Config) { c.KeysPerQuery = 0 },
		func(c *Config) { c.KeysPerQuery = 99 },
		func(c *Config) { c.Duration = 0 },
		func(c *Config) { c.Warmup = 99999 },
	}
	for i, mut := range mutations {
		cfg := baseConfig()
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
		if _, err := Run(cfg); err == nil {
			t.Errorf("Run accepted mutation %d", i)
		}
	}
}

func TestBenefitFormula(t *testing.T) {
	v := &valueState{r: 5, w: 2}
	if got := v.benefit(1, 2); got != 8 { // 5*2 - 2*1
		t.Errorf("benefit = %g, want 8", got)
	}
}
