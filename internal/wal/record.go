// Package wal implements the write-ahead durability layer: an append-only,
// per-shard log of the store's learned state — exact values, adaptive
// interval widths, and subscriptions — that a restarted process replays over
// the newest snapshot to resume with the precision settings it had learned
// before the crash, instead of re-paying the whole adaptation transient from
// cold-start widths.
//
// # Record format
//
// Every record is length-prefixed and checksummed:
//
//	[len uint32 LE] [crc32c(payload) uint32 LE] [payload]
//	payload := lsn uvarint | op byte | key zigzag varint | val float64 LE (OpValue/OpWidth only)
//
// The LSN (log sequence number) is assigned from one counter shared by all
// shards of a Log, so the union of the shard files totally orders a run's
// records even though each shard appends independently. Snapshots record the
// highest LSN they fold in; replay skips records at or below it, which is
// what makes the crash window between "snapshot renamed" and "log truncated"
// safe — re-replaying folded records is prevented by the LSN gate, not by
// any multi-file atomicity the filesystem cannot give.
//
// Decoding is paranoid by design: a bad length, a checksum mismatch, an
// unknown op, trailing payload bytes, or a semantically invalid field (NaN
// value, negative width) all mark the record — and everything after it — as
// a torn tail. Recovery truncates the file there and proceeds with the valid
// prefix rather than rejecting the log, so a power cut mid-append costs at
// most the unacknowledged suffix.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// Op identifies a record kind.
type Op byte

// Record kinds. OpValue and OpWidth carry a float64 in Val; OpSub/OpUnsub
// carry only the key; OpSnapshot is the compaction marker — its Key holds
// the sequence number of the snapshot the truncated log now extends.
const (
	OpValue    Op = 1 // exact value written: Key, Val
	OpWidth    Op = 2 // learned interval width updated: Key, Val
	OpSub      Op = 3 // key subscribed/tracked: Key
	OpUnsub    Op = 4 // key unsubscribed/forgotten: Key
	OpSnapshot Op = 5 // compaction marker: Key = snapshot sequence
)

func (o Op) String() string {
	switch o {
	case OpValue:
		return "value"
	case OpWidth:
		return "width"
	case OpSub:
		return "sub"
	case OpUnsub:
		return "unsub"
	case OpSnapshot:
		return "snapshot"
	}
	return fmt.Sprintf("op(%d)", byte(o))
}

// Record is one logical log entry.
type Record struct {
	// LSN is the record's log sequence number, assigned by Log.Stage.
	LSN uint64
	// Op is the record kind.
	Op Op
	// Key is the subject key (or the snapshot sequence for OpSnapshot).
	Key int64
	// Val carries the exact value (OpValue) or the learned width (OpWidth).
	Val float64
}

// castagnoli is the CRC32C polynomial table (hardware-accelerated on
// amd64/arm64), the same checksum most storage engines use for log records.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// maxPayload bounds a sane record payload; anything longer is corruption
// (the widest record is under 32 bytes).
const maxPayload = 64

// recHeader is the fixed frame prefix: length + checksum.
const recHeader = 8

// appendRecord encodes r onto dst and returns the extended slice.
func appendRecord(dst []byte, r Record) []byte {
	var payload [maxPayload]byte
	p := payload[:0]
	p = binary.AppendUvarint(p, r.LSN)
	p = append(p, byte(r.Op))
	p = binary.AppendVarint(p, r.Key)
	switch r.Op {
	case OpValue, OpWidth:
		p = binary.LittleEndian.AppendUint64(p, math.Float64bits(r.Val))
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(p)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(p, castagnoli))
	return append(dst, p...)
}

// decodeRecord parses one record frame from the front of data. It returns
// the record and the number of bytes consumed, or an error when the frame is
// torn, checksum-corrupt, or semantically invalid — the caller treats the
// error position as the log's valid end.
func decodeRecord(data []byte) (Record, int, error) {
	if len(data) < recHeader {
		return Record{}, 0, fmt.Errorf("wal: torn header: %d bytes", len(data))
	}
	n := binary.LittleEndian.Uint32(data)
	sum := binary.LittleEndian.Uint32(data[4:])
	if n == 0 || n > maxPayload {
		return Record{}, 0, fmt.Errorf("wal: implausible record length %d", n)
	}
	if len(data) < recHeader+int(n) {
		return Record{}, 0, fmt.Errorf("wal: torn payload: have %d of %d bytes", len(data)-recHeader, n)
	}
	payload := data[recHeader : recHeader+int(n)]
	if crc32.Checksum(payload, castagnoli) != sum {
		return Record{}, 0, fmt.Errorf("wal: checksum mismatch")
	}
	var r Record
	lsn, c := binary.Uvarint(payload)
	if c <= 0 {
		return Record{}, 0, fmt.Errorf("wal: bad lsn varint")
	}
	r.LSN = lsn
	rest := payload[c:]
	if len(rest) == 0 {
		return Record{}, 0, fmt.Errorf("wal: missing op")
	}
	r.Op = Op(rest[0])
	rest = rest[1:]
	key, c := binary.Varint(rest)
	if c <= 0 {
		return Record{}, 0, fmt.Errorf("wal: bad key varint")
	}
	r.Key = key
	rest = rest[c:]
	switch r.Op {
	case OpValue, OpWidth:
		if len(rest) != 8 {
			return Record{}, 0, fmt.Errorf("wal: %s record with %d value bytes", r.Op, len(rest))
		}
		r.Val = math.Float64frombits(binary.LittleEndian.Uint64(rest))
	case OpSub, OpUnsub, OpSnapshot:
		if len(rest) != 0 {
			return Record{}, 0, fmt.Errorf("wal: %s record with %d trailing bytes", r.Op, len(rest))
		}
	default:
		return Record{}, 0, fmt.Errorf("wal: unknown op %d", byte(r.Op))
	}
	if err := r.validate(); err != nil {
		return Record{}, 0, err
	}
	return r, recHeader + int(n), nil
}

// validate rejects records whose fields would corrupt a restored store —
// the same class of state PR 6's snapshot validation refuses to load. A
// checksum-valid frame with an invalid field is treated exactly like a torn
// one: replay truncates there and recovers the prefix.
func (r Record) validate() error {
	switch r.Op {
	case OpValue:
		if math.IsNaN(r.Val) || math.IsInf(r.Val, 0) {
			return fmt.Errorf("wal: key %d: invalid value %g", r.Key, r.Val)
		}
	case OpWidth:
		if math.IsNaN(r.Val) || math.IsInf(r.Val, 0) || r.Val < 0 {
			return fmt.Errorf("wal: key %d: invalid width %g", r.Key, r.Val)
		}
	case OpSnapshot:
		if r.Key < 0 {
			return fmt.Errorf("wal: negative snapshot sequence %d", r.Key)
		}
	}
	return nil
}
