package wal

import (
	"io/fs"
	"os"
	"path/filepath"
	"sort"
)

// File is the slice of *os.File the log needs. Writes go through it so a
// fault-injecting implementation can tear them mid-record.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Truncate(size int64) error
	Close() error
}

// FS is the filesystem seam every durability path runs through — appends,
// snapshot writes, renames, truncation, and recovery reads. Production code
// uses OSFS; crash-fault tests substitute a FaultFS that injects short
// writes, fsync errors, rename failures, and power-cut write caps without
// needing a real power cut.
type FS interface {
	// OpenFile opens name with os.OpenFile semantics.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes name.
	Remove(name string) error
	// Truncate cuts name to size bytes (recovery uses it to discard a torn
	// log tail in place).
	Truncate(name string, size int64) error
	// ReadFile returns name's full contents.
	ReadFile(name string) ([]byte, error)
	// ReadDir lists the file names in dir, sorted.
	ReadDir(dir string) ([]string, error)
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string, perm os.FileMode) error
}

// OSFS is the real filesystem.
var OSFS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldname, newname string) error   { return os.Rename(oldname, newname) }
func (osFS) Remove(name string) error               { return os.Remove(name) }
func (osFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }
func (osFS) ReadFile(name string) ([]byte, error)   { return os.ReadFile(name) }
func (osFS) MkdirAll(dir string, perm os.FileMode) error {
	return os.MkdirAll(dir, perm)
}

func (osFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		// A missing directory lists as empty: recovery treats it as a fresh
		// deployment and Open creates it.
		if _, ok := err.(*fs.PathError); ok && os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// SyncDir fsyncs a directory so a rename performed in it is itself durable.
// Best-effort: not every FS implementation (or platform) supports it.
func SyncDir(dir string) {
	if d, err := os.Open(filepath.Clean(dir)); err == nil {
		d.Sync()
		d.Close()
	}
}
