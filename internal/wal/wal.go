package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// Fsync policies: when an appended record is forced to stable storage.
type Policy int

const (
	// FsyncInterval batches appends in memory and group-commits them —
	// one write plus one fsync per shard — every Options.Interval. An
	// append returns immediately; a crash loses at most the last interval.
	// This is the default: it keeps the append hot path syscall-free.
	FsyncInterval Policy = iota
	// FsyncAlways makes Commit wait until the record is fsynced. Appends
	// that arrive while a flush is in flight join the next group commit,
	// so one fsync acknowledges every writer that boarded the batch.
	FsyncAlways
	// FsyncNone writes to the OS on the flush interval but never fsyncs
	// (except on Close/Sync); durability is whatever the kernel provides.
	FsyncNone
)

func (p Policy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNone:
		return "none"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParsePolicy maps the CLI spelling of a policy to its value.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "", "interval":
		return FsyncInterval, nil
	case "none":
		return FsyncNone, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval, or none)", s)
}

// DefaultInterval is the group-commit window when Options.Interval is 0.
const DefaultInterval = 2 * time.Millisecond

// Options parameterizes Open.
type Options struct {
	// Dir is the log directory (created if missing).
	Dir string
	// Shards is the number of independent append streams; callers map
	// their lock shards onto them so appends from different shards never
	// contend on one file.
	Shards int
	// Policy selects the fsync policy (default FsyncInterval).
	Policy Policy
	// Interval is the group-commit window for FsyncInterval and the write
	// window for FsyncNone (default DefaultInterval).
	Interval time.Duration
	// FS is the filesystem seam (default OSFS).
	FS FS
	// StartLSN seeds the sequence counter: the first staged record gets
	// StartLSN+1. Recovery passes the highest LSN it replayed so fresh
	// records always sort after everything already on disk.
	StartLSN uint64
}

// Log is a per-shard write-ahead log. Appends are two-phase: Stage encodes
// records into the owning shard's buffer (callers do this while holding the
// lock that orders the state change), Commit waits for the configured
// durability after that lock is released, so an fsync never executes inside
// anyone's shard critical section and concurrent writers share flushes.
//
// A write or fsync failure is sticky: the log stops accepting appends and
// reports the error from every later Stage, Commit, Sync, and Close —
// durability is never silently degraded.
type Log struct {
	fs       FS
	dir      string
	policy   Policy
	interval time.Duration

	lsn     atomic.Uint64 // last assigned sequence number
	records atomic.Int64  // data records appended since open/reset
	bytes   atomic.Int64  // bytes appended since open/reset

	files []*shardFile

	stop     chan struct{} // closes the background flusher
	flushxit chan struct{} // flusher exited
	closed   atomic.Bool
}

// commitBatch is one group commit: every Stage that lands in the buffer
// while the previous flush is on the disk shares the next one.
type commitBatch struct {
	done chan struct{}
	err  error
}

type shardFile struct {
	mu       sync.Mutex
	f        File
	path     string
	buf      []byte // staged, not yet written
	spare    []byte // recycled flush buffer
	staged   uint64 // highest LSN staged into buf
	durable  uint64 // highest LSN known flushed+synced (FsyncAlways)
	cur      *commitBatch
	flushing bool
	err      error // sticky failure

	// inflight counts writeSync calls running with mu released; idle is
	// broadcast when it returns to zero. Rewrite waits on it before swapping
	// the file handle — closing a handle another goroutine is writing
	// through would turn a clean compaction into a sticky failure.
	inflight int
	idle     *sync.Cond
}

// FileName returns the log file name for a shard index.
func FileName(shard int) string { return fmt.Sprintf("wal-%04d.log", shard) }

// Open creates or opens the log files for opts.Shards shards under
// opts.Dir. Existing files are appended to; run recovery (ScanDir) first if
// their contents matter.
func Open(opts Options) (*Log, error) {
	if opts.Shards <= 0 {
		return nil, fmt.Errorf("wal: open: %d shards", opts.Shards)
	}
	if opts.FS == nil {
		opts.FS = OSFS
	}
	if opts.Interval <= 0 {
		opts.Interval = DefaultInterval
	}
	if err := opts.FS.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	l := &Log{
		fs:       opts.FS,
		dir:      opts.Dir,
		policy:   opts.Policy,
		interval: opts.Interval,
		files:    make([]*shardFile, opts.Shards),
		stop:     make(chan struct{}),
		flushxit: make(chan struct{}),
	}
	l.lsn.Store(opts.StartLSN)
	for i := range l.files {
		path := filepath.Join(opts.Dir, FileName(i))
		f, err := opts.FS.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			for _, sf := range l.files[:i] {
				sf.f.Close()
			}
			return nil, fmt.Errorf("wal: open %s: %w", path, err)
		}
		sf := &shardFile{f: f, path: path}
		sf.idle = sync.NewCond(&sf.mu)
		l.files[i] = sf
	}
	if l.policy == FsyncAlways {
		close(l.flushxit) // no background flusher to wait for
	} else {
		go l.flushLoop()
	}
	return l, nil
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// Policy returns the configured fsync policy.
func (l *Log) Policy() Policy { return l.policy }

// LastLSN returns the highest sequence number assigned so far. With no
// concurrent Stage calls (e.g. under a caller's stop-the-world lock) it is
// exactly the LSN a snapshot taken now folds in.
func (l *Log) LastLSN() uint64 { return l.lsn.Load() }

// Records returns the number of data records appended since the log was
// opened, reset, or rewritten — the numerator of the compaction ratio.
func (l *Log) Records() int64 { return l.records.Load() }

// Bytes returns the bytes appended since open/reset/rewrite.
func (l *Log) Bytes() int64 { return l.bytes.Load() }

// Err returns the sticky failure, if any shard's append stream has one.
func (l *Log) Err() error {
	for _, sf := range l.files {
		sf.mu.Lock()
		err := sf.err
		sf.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// Stage encodes recs into shard's buffer, assigning consecutive LSNs, and
// returns the last one as the commit token. Callers invoke it while holding
// the lock that serializes the corresponding state change, so buffer order
// matches state order; the encode is a memcpy, no syscall. A zero token
// means nothing was staged (empty recs or sticky failure).
func (l *Log) Stage(shard int, recs ...Record) uint64 {
	if len(recs) == 0 {
		return 0
	}
	sf := l.files[shard]
	sf.mu.Lock()
	defer sf.mu.Unlock()
	if sf.err != nil {
		return 0
	}
	before := len(sf.buf)
	for i := range recs {
		recs[i].LSN = l.lsn.Add(1)
		sf.buf = appendRecord(sf.buf, recs[i])
		if recs[i].Op != OpSnapshot {
			l.records.Add(1)
		}
	}
	l.bytes.Add(int64(len(sf.buf) - before))
	sf.staged = recs[len(recs)-1].LSN
	return sf.staged
}

// Commit makes the records staged up to token durable per the policy:
// FsyncAlways joins the shard's group commit and returns once an fsync
// covers the token; FsyncInterval and FsyncNone return immediately (the
// background flusher owns durability). A zero token is a no-op.
func (l *Log) Commit(shard int, token uint64) error {
	if token == 0 {
		return nil
	}
	sf := l.files[shard]
	if l.policy != FsyncAlways {
		sf.mu.Lock()
		err := sf.err
		sf.mu.Unlock()
		return err
	}
	sf.mu.Lock()
	if sf.err != nil {
		err := sf.err
		sf.mu.Unlock()
		return err
	}
	if sf.durable >= token {
		sf.mu.Unlock()
		return nil
	}
	b := sf.cur
	if b == nil {
		b = &commitBatch{done: make(chan struct{})}
		sf.cur = b
	}
	if sf.flushing {
		// A leader is on the disk; our batch flushes when it loops.
		sf.mu.Unlock()
		<-b.done
		return b.err
	}
	// Become the leader: flush batches until the buffer drains. Writers
	// that stage while we are in writeSync join sf.cur and are committed by
	// the next loop iteration — the group commit.
	sf.flushing = true
	for sf.cur != nil {
		cb := sf.cur
		sf.cur = nil
		if sf.err != nil {
			cb.err = sf.err
			close(cb.done)
			continue
		}
		data := sf.buf
		upto := sf.staged
		f := sf.f
		sf.buf = sf.spare[:0]
		sf.spare = nil
		sf.inflight++
		sf.mu.Unlock()
		err := writeSync(f, data, true)
		sf.mu.Lock()
		if sf.inflight--; sf.inflight == 0 {
			sf.idle.Broadcast()
		}
		sf.spare = data[:0]
		if err != nil {
			sf.err = err
		} else if upto > sf.durable {
			sf.durable = upto
		}
		cb.err = err
		close(cb.done)
	}
	sf.flushing = false
	sf.mu.Unlock()
	return b.err
}

// Append is Stage followed by Commit, for callers with no lock to split
// them around.
func (l *Log) Append(shard int, recs ...Record) error {
	token := l.Stage(shard, recs...)
	if token == 0 && len(recs) > 0 {
		// Stage refused: surface the sticky failure instead of acking.
		sf := l.files[shard]
		sf.mu.Lock()
		err := sf.err
		sf.mu.Unlock()
		return err
	}
	return l.Commit(shard, token)
}

// writeSync writes data fully and optionally fsyncs.
func writeSync(f File, data []byte, sync bool) error {
	for len(data) > 0 {
		n, err := f.Write(data)
		if err != nil {
			return err
		}
		data = data[n:]
	}
	if sync {
		return f.Sync()
	}
	return nil
}

// flushLoop is the background group-committer for FsyncInterval/FsyncNone.
func (l *Log) flushLoop() {
	defer close(l.flushxit)
	tick := time.NewTicker(l.interval)
	defer tick.Stop()
	sync := l.policy == FsyncInterval
	for {
		select {
		case <-tick.C:
			for _, sf := range l.files {
				sf.flush(sync)
			}
		case <-l.stop:
			return
		}
	}
}

// flush writes the shard's staged buffer (and fsyncs when sync is set),
// recording any failure as sticky.
func (sf *shardFile) flush(sync bool) error {
	sf.mu.Lock()
	if sf.err != nil {
		err := sf.err
		sf.mu.Unlock()
		return err
	}
	if len(sf.buf) == 0 && !sync {
		sf.mu.Unlock()
		return nil
	}
	data := sf.buf
	upto := sf.staged
	f := sf.f
	sf.buf = sf.spare[:0]
	sf.spare = nil
	sf.inflight++
	sf.mu.Unlock()
	err := writeSync(f, data, sync)
	sf.mu.Lock()
	if sf.inflight--; sf.inflight == 0 {
		sf.idle.Broadcast()
	}
	sf.spare = data[:0]
	if err != nil {
		sf.err = err
	} else if sync && upto > sf.durable {
		sf.durable = upto
	}
	sf.mu.Unlock()
	return err
}

// Sync forces every shard's staged records to stable storage regardless of
// policy — the drain hook: a graceful shutdown calls it so the recovered
// state matches the final delivered state exactly.
func (l *Log) Sync() error {
	var first error
	for _, sf := range l.files {
		if err := sf.flush(true); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Reset truncates every shard file and stamps each with an OpSnapshot
// marker for snapSeq: the log now extends that snapshot. The caller must
// guarantee no concurrent Stage (compaction holds every state lock). Records
// already folded into the snapshot that a crash resurrects are skipped at
// replay by the snapshot's LSN gate, so the truncations need no atomicity.
func (l *Log) Reset(snapSeq uint64) error {
	var first error
	for i, sf := range l.files {
		sf.mu.Lock()
		sf.buf = sf.buf[:0]
		if sf.err == nil {
			if err := sf.f.Truncate(0); err != nil {
				sf.err = fmt.Errorf("wal: reset %s: %w", sf.path, err)
			}
		}
		err := sf.err
		sf.mu.Unlock()
		if err != nil {
			if first == nil {
				first = err
			}
			continue
		}
		if err := l.Append(i, Record{Op: OpSnapshot, Key: int64(snapSeq)}); err != nil && first == nil {
			first = err
		}
		if l.policy != FsyncAlways {
			if err := sf.flush(true); err != nil && first == nil {
				first = err
			}
		}
	}
	if first == nil {
		l.records.Store(0)
		l.bytes.Store(0)
	}
	return first
}

// Rewrite replaces each shard file with exactly the records state returns
// for it (plus an OpSnapshot marker for snapSeq), via a temp file, fsync,
// and atomic rename — compaction for callers whose full state lives in the
// log itself rather than a separate snapshot file. Individual shard files
// swap atomically; a crash between shards leaves a mix of old and new files,
// each internally consistent, which replay merges per key. The caller must
// guarantee no concurrent Stage; commits and flushes still in flight for
// earlier stages are waited out per shard before its handle is swapped.
func (l *Log) Rewrite(snapSeq uint64, state func(shard int) []Record) error {
	var first error
	var recs int64
	for i, sf := range l.files {
		shardRecs := state(i)
		recs += int64(len(shardRecs))
		if err := l.rewriteShard(sf, snapSeq, shardRecs); err != nil && first == nil {
			first = err
		}
	}
	if first == nil {
		l.records.Store(recs)
		l.bytes.Store(0)
	}
	return first
}

func (l *Log) rewriteShard(sf *shardFile, snapSeq uint64, recs []Record) error {
	sf.mu.Lock()
	defer sf.mu.Unlock()
	// Wait out any writeSync still running against the old handle: Stage is
	// excluded by the caller's contract, but a Commit whose records were
	// staged before the caller's lock sweep — or the background flusher —
	// may still be on the disk.
	for sf.inflight > 0 {
		sf.idle.Wait()
	}
	if sf.err != nil {
		return sf.err
	}
	sf.buf = sf.buf[:0]
	tmp := sf.path + ".tmp"
	var buf []byte
	buf = appendRecord(buf, Record{LSN: l.lsn.Add(1), Op: OpSnapshot, Key: int64(snapSeq)})
	for _, r := range recs {
		r.LSN = l.lsn.Add(1)
		buf = appendRecord(buf, r)
	}
	f, err := l.fs.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: rewrite %s: %w", sf.path, err)
	}
	if err := writeSync(f, buf, true); err != nil {
		f.Close()
		l.fs.Remove(tmp)
		return fmt.Errorf("wal: rewrite %s: %w", sf.path, err)
	}
	if err := f.Close(); err != nil {
		l.fs.Remove(tmp)
		return fmt.Errorf("wal: rewrite %s: %w", sf.path, err)
	}
	if err := l.fs.Rename(tmp, sf.path); err != nil {
		l.fs.Remove(tmp)
		return fmt.Errorf("wal: rewrite %s: %w", sf.path, err)
	}
	// Swap the append handle to the new file.
	nf, err := l.fs.OpenFile(sf.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		sf.err = fmt.Errorf("wal: rewrite reopen %s: %w", sf.path, err)
		return sf.err
	}
	sf.f.Close()
	sf.f = nf
	return nil
}

// Close flushes and fsyncs every shard, stops the background flusher, and
// closes the files. It returns the sticky failure, if any — the only place
// an FsyncInterval deployment learns its tail was never made durable.
func (l *Log) Close() error {
	if l.closed.Swap(true) {
		return l.Err()
	}
	close(l.stop)
	<-l.flushxit
	err := l.Sync()
	for _, sf := range l.files {
		sf.mu.Lock()
		if cerr := sf.f.Close(); cerr != nil && err == nil {
			err = cerr
		}
		sf.mu.Unlock()
	}
	if err == nil {
		err = l.Err()
	}
	return err
}
