package wal

import (
	"errors"
	"os"
	"sync"
)

// ErrPowerCut is returned by every FaultFS operation once its write budget
// is exhausted: the moment the simulated machine lost power, nothing later
// reaches the disk.
var ErrPowerCut = errors.New("wal: simulated power cut")

// FaultFS wraps an FS with scriptable storage faults, the disk-side sibling
// of internal/faultnet: short writes that tear a record in half, fsync and
// rename failures, and a byte budget that simulates a power cut at an exact
// write offset. Crash-fault tests drive it to prove that recovery survives a
// failure injected at every step of the append/snapshot/truncate protocol.
//
// Fault settings apply to writes in the order the wrapped code issues them,
// so a test that sets a budget of N bytes cuts power at precisely the N-th
// appended byte regardless of how the log batches its writes.
type FaultFS struct {
	base FS

	mu          sync.Mutex
	writeBudget int64 // bytes still allowed to reach the disk; -1 = unlimited
	cut         bool  // budget exhausted: every later op fails
	shortWrite  int64 // next write applies only this many bytes; -1 = off
	syncErr     error // non-nil: Sync calls fail with it
	renameErr   error // non-nil: Rename calls fail with it

	bytesWritten int64
	syncs        int64
}

// NewFaultFS wraps base (OSFS when nil) with no faults armed.
func NewFaultFS(base FS) *FaultFS {
	if base == nil {
		base = OSFS
	}
	return &FaultFS{base: base, writeBudget: -1, shortWrite: -1}
}

// CutPowerAfter arms the power cut: the next n bytes of writes are applied,
// everything after them — including the tail of the write that crosses the
// boundary — is lost, and every subsequent operation fails with ErrPowerCut.
func (f *FaultFS) CutPowerAfter(n int64) {
	f.mu.Lock()
	f.writeBudget = n
	f.cut = n <= 0
	f.mu.Unlock()
}

// ShortWriteOnce makes the next write apply only its first n bytes and
// return an error, simulating a torn append without killing the filesystem.
func (f *FaultFS) ShortWriteOnce(n int64) {
	f.mu.Lock()
	f.shortWrite = n
	f.mu.Unlock()
}

// FailSyncs makes every Sync fail with err (nil disarms).
func (f *FaultFS) FailSyncs(err error) {
	f.mu.Lock()
	f.syncErr = err
	f.mu.Unlock()
}

// FailRenames makes every Rename fail with err (nil disarms).
func (f *FaultFS) FailRenames(err error) {
	f.mu.Lock()
	f.renameErr = err
	f.mu.Unlock()
}

// BytesWritten reports how many bytes reached the underlying filesystem.
func (f *FaultFS) BytesWritten() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.bytesWritten
}

// Syncs reports how many Sync calls reached the underlying filesystem.
func (f *FaultFS) Syncs() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.syncs
}

func (f *FaultFS) alive() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.cut {
		return ErrPowerCut
	}
	return nil
}

func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if err := f.alive(); err != nil {
		return nil, err
	}
	file, err := f.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: file}, nil
}

func (f *FaultFS) Rename(oldname, newname string) error {
	if err := f.alive(); err != nil {
		return err
	}
	f.mu.Lock()
	rerr := f.renameErr
	f.mu.Unlock()
	if rerr != nil {
		return rerr
	}
	return f.base.Rename(oldname, newname)
}

func (f *FaultFS) Remove(name string) error {
	if err := f.alive(); err != nil {
		return err
	}
	return f.base.Remove(name)
}

func (f *FaultFS) Truncate(name string, size int64) error {
	if err := f.alive(); err != nil {
		return err
	}
	return f.base.Truncate(name, size)
}

func (f *FaultFS) ReadFile(name string) ([]byte, error) { return f.base.ReadFile(name) }
func (f *FaultFS) ReadDir(dir string) ([]string, error) { return f.base.ReadDir(dir) }
func (f *FaultFS) MkdirAll(dir string, perm os.FileMode) error {
	if err := f.alive(); err != nil {
		return err
	}
	return f.base.MkdirAll(dir, perm)
}

type faultFile struct {
	fs *FaultFS
	f  File
}

func (ff *faultFile) Write(p []byte) (int, error) {
	fs := ff.fs
	fs.mu.Lock()
	if fs.cut {
		fs.mu.Unlock()
		return 0, ErrPowerCut
	}
	allow := int64(len(p))
	short := false
	if fs.shortWrite >= 0 {
		if fs.shortWrite < allow {
			allow = fs.shortWrite
			short = true
		}
		fs.shortWrite = -1
	}
	cutting := false
	if fs.writeBudget >= 0 {
		if allow >= fs.writeBudget {
			allow = fs.writeBudget
			cutting = true
			fs.cut = true
		}
		fs.writeBudget -= allow
	}
	fs.bytesWritten += allow
	fs.mu.Unlock()

	n, err := ff.f.Write(p[:allow])
	if err != nil {
		return n, err
	}
	if cutting {
		return n, ErrPowerCut
	}
	if short {
		return n, errors.New("wal: simulated short write")
	}
	return n, nil
}

func (ff *faultFile) Sync() error {
	fs := ff.fs
	fs.mu.Lock()
	if fs.cut {
		fs.mu.Unlock()
		return ErrPowerCut
	}
	serr := fs.syncErr
	if serr == nil {
		fs.syncs++
	}
	fs.mu.Unlock()
	if serr != nil {
		return serr
	}
	return ff.f.Sync()
}

func (ff *faultFile) Truncate(size int64) error {
	if err := ff.fs.alive(); err != nil {
		return err
	}
	return ff.f.Truncate(size)
}

func (ff *faultFile) Close() error { return ff.f.Close() }
