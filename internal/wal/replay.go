package wal

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"
)

// ScanResult is what recovery learns from the log directory.
type ScanResult struct {
	// Records holds every valid data record from every shard file, sorted
	// by LSN — the total order the records were staged in, reconstructed
	// across shards. OpSnapshot markers are folded into SnapSeq, not listed.
	Records []Record
	// MaxLSN is the highest LSN seen (including markers); a reopened Log
	// must start above it.
	MaxLSN uint64
	// SnapSeq is the highest snapshot sequence named by an OpSnapshot
	// marker: the log claims to extend that snapshot. Zero when no marker
	// survived (fresh log, or the marker itself was torn off).
	SnapSeq uint64
	// Truncated counts files whose torn or corrupted tails were cut off in
	// place; the dropped suffix was never acknowledged as durable.
	Truncated int
}

// IsLogName reports whether name is a shard log file (not a temp file or a
// snapshot).
func IsLogName(name string) bool {
	return strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log")
}

// ScanDir reads every shard log under dir, truncating torn tails in place,
// and merges the surviving records into LSN order. It reads whatever
// wal-*.log files exist regardless of the shard count that wrote them, so
// recovery works across restarts that change Options.Shards. A missing
// directory is an empty log.
func ScanDir(fsys FS, dir string) (ScanResult, error) {
	if fsys == nil {
		fsys = OSFS
	}
	var res ScanResult
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return res, fmt.Errorf("wal: scan %s: %w", dir, err)
	}
	for _, name := range names {
		if !IsLogName(name) {
			continue
		}
		recs, truncated, err := scanFile(fsys, filepath.Join(dir, name))
		if err != nil {
			return res, err
		}
		if truncated {
			res.Truncated++
		}
		for _, r := range recs {
			if r.LSN > res.MaxLSN {
				res.MaxLSN = r.LSN
			}
			if r.Op == OpSnapshot {
				if seq := uint64(r.Key); seq > res.SnapSeq {
					res.SnapSeq = seq
				}
				continue
			}
			res.Records = append(res.Records, r)
		}
	}
	sort.SliceStable(res.Records, func(i, j int) bool {
		return res.Records[i].LSN < res.Records[j].LSN
	})
	return res, nil
}

// scanFile decodes one shard file's records. The first torn, corrupt, or
// invalid frame ends the file: everything before it is the valid prefix,
// and the file is truncated there so the next append continues from a clean
// boundary instead of interleaving new records with garbage.
func scanFile(fsys FS, path string) ([]Record, bool, error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return nil, false, fmt.Errorf("wal: scan %s: %w", path, err)
	}
	var recs []Record
	off := 0
	for off < len(data) {
		r, n, err := decodeRecord(data[off:])
		if err != nil {
			if terr := fsys.Truncate(path, int64(off)); terr != nil {
				return nil, false, fmt.Errorf("wal: truncate torn tail of %s at %d: %w", path, off, terr)
			}
			return recs, true, nil
		}
		recs = append(recs, r)
		off += n
	}
	return recs, false, nil
}
